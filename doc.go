// Package polyvalues implements the polyvalue mechanism of Warren A.
// Montgomery, "Polyvalues: A Tool for Implementing Atomic Updates to
// Distributed Data" (SOSP 1979): atomic updates to distributed data that
// keep processing when failures strike the two-phase commit window.
//
// When a participant site of a two-phase commit hears neither complete
// nor abort promptly, a classic system blocks the updated items until the
// failure is repaired.  With polyvalues the site instead installs, for
// each updated item, the set of possible values tagged with the condition
// under which each is correct — {⟨new, T⟩, ⟨old, ¬T⟩} — and keeps going.
// Later transactions can read such items: they fork into alternative
// executions, one per possible input combination, and write (possibly
// poly-) values whose conditions are complete and disjoint by
// construction.  When the failure is repaired and T's outcome becomes
// known, dependent polyvalues everywhere are reduced back to simple
// values by a distributed notification protocol.
//
// The package is a facade re-exporting the library's layers:
//
//   - Polyvalue algebra: Poly, Pair, Cond, Simple, Uncertain, Compose —
//     the paper's §3 data structures and simplification rules.
//   - Transactions: T, Program — deterministic transaction bodies written
//     in a small guarded-assignment language; Executor runs them against
//     polyvalued state (§3.2 polytransactions).
//   - Cluster: a goroutine-per-site distributed database over a simulated
//     network with failure injection, implementing the full §3.1 update
//     protocol, §3.3 outcome propagation, and a blocking-2PC baseline.
//   - Analysis: ModelParams (the §4.1 closed-form model, Table 1) and
//     SimParams/SimRun (the §4.2 discrete-event simulation, Table 2).
//
// See the examples/ directory for runnable §5 application scenarios
// (funds transfer, reservations, inventory control) and bench_test.go for
// the harness that regenerates every table and figure in the paper.
package polyvalues
