GO ?= go

.PHONY: check lint vet build test race bench bench-smoke bench-scaling tables fuzz-smoke cluster-demo chaos chaos-smoke chaos-demo diskchaos diskchaos-smoke frontier overload overload-smoke telemetry-smoke consensus consensus-smoke georep georep-smoke

check: lint vet build race ## everything CI runs

# gofmt must be clean; staticcheck runs when the binary is installed
# (CI installs it, offline dev machines may not have it).
lint:
	@unformatted="$$(gofmt -l .)"; \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping"; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# Short seeded polybench runs (in-process + 3-process TCP) gated against
# the checked-in baseline — the same job CI runs.
bench-smoke:
	scripts/bench_smoke.sh

# Lane scaling matrix (ISSUE 9): seeded durable bank runs across
# GOMAXPROCS 1/4/16 with lanes off vs 16, merged into one BENCH JSON and
# gated on lanes@16 beating lanes-off by at least 2x at the same width.
bench-scaling:
	scripts/bench_scaling.sh

tables:
	$(GO) run ./cmd/polytables

# Short fuzzing passes over every wire-format decoder (one -fuzz run per
# target; go test only accepts a single fuzz target at a time).
fuzz-smoke:
	$(GO) test -run=^$$ -fuzz=FuzzMessageDecode -fuzztime=10s ./internal/wire
	$(GO) test -run=^$$ -fuzz=FuzzPaxosDecode -fuzztime=10s ./internal/wire
	$(GO) test -run=^$$ -fuzz=FuzzAntiEntropyDecode -fuzztime=10s ./internal/wire
	$(GO) test -run=^$$ -fuzz=FuzzPolyDecode -fuzztime=10s ./internal/wire
	$(GO) test -run=^$$ -fuzz=FuzzBatchDecode -fuzztime=10s ./internal/wire
	$(GO) test -run=^$$ -fuzz=FuzzRecover -fuzztime=10s ./internal/storage

# Full crash-recovery torture: seeded faults (drops, dup, delay,
# corruption, partitions, resets), crash points, and kill+restart cycles
# against a 3-site TCP cluster, asserting conservation, zero residual
# polyvalues, WAL idempotence, and no goroutine leaks.
chaos:
	$(GO) test -race -count=1 -v -run TestChaos ./internal/harness

# Short seeded torture for CI: same assertions, smaller schedule.
chaos-smoke:
	$(GO) test -race -count=1 -short -run TestChaosTortureSeeded ./internal/harness

# Full storage-fault torture: fsync failures, torn writes, ENOSPC,
# slow-disk windows and recovery-read bit-flips injected under every
# site's WAL, woven with kill-9 cycles, asserting the fsyncgate
# discipline (durability panics, rebuild-only revival), conservation,
# and a clean crash-recovery frontier sweep over every final WAL.
diskchaos:
	$(GO) test -race -count=1 -v -run TestDiskChaos ./internal/harness

# Short seeded disk torture for CI: same assertions, smaller schedule.
diskchaos-smoke:
	$(GO) test -race -count=1 -short -run TestDiskChaosTortureSeeded ./internal/harness

# Deterministic ALICE-style crash-recovery frontier sweep: recover a
# recorded WAL from every frame boundary and torn tail, asserting clean
# recovery, fixpoint idempotence, and exact torn-tail equivalence.
frontier:
	$(GO) test -race -count=1 -v -run 'TestCrashRecoveryFrontier|TestFrontierSweep' ./internal/storage

# Full overload torture: offered load above the admission cap through a
# 60s+ partition with tight polyvalue budgets and transaction deadlines,
# asserting bounded polyvalue population, conservation, shed submissions,
# detector suspects, and a return to polyvalue mode after the heal.
overload:
	$(GO) test -race -count=1 -v -run TestOverloadTortureSeeded ./internal/harness

# Short overload torture for CI: same assertions, ~3s partition.
overload-smoke:
	$(GO) test -race -count=1 -short -v -run TestOverloadTortureSeeded ./internal/harness

# Full Paxos Commit decision-plane torture: the unit-level consensus and
# cluster paxos suites, then the chaos harness on a 5-site TCP cluster
# with the paxos plane, killing F=2 acceptors plus the armed victim each
# cycle and asserting durable consistent decisions, conservation, and
# acceptor-state GC.
consensus:
	$(GO) test -race -count=1 ./internal/consensus
	$(GO) test -race -count=1 -run TestPaxos ./internal/cluster
	$(GO) test -race -count=1 -v -run TestConsensusChaosSeeded ./internal/harness

# Short decision-plane torture for CI: same assertions, one kill cycle.
consensus-smoke:
	$(GO) test -race -count=1 ./internal/consensus
	$(GO) test -race -count=1 -run TestPaxos ./internal/cluster
	$(GO) test -race -count=1 -short -v -run TestConsensusChaosSeeded ./internal/harness

# Full geo-replication torture: a 5-site cluster with k=3 replicas and a
# 2/2 write/read quorum rides out a long partition — quorum writes keep
# committing on the majority side while write-all blocks — then heals and
# lets anti-entropy gossip alone (the coordinator stays dead) reduce every
# stranded polyvalue and converge every replica, with conservation
# asserted throughout.
georep:
	$(GO) test -race -count=1 -v -run TestGeoRep ./internal/harness

# Short seeded geo-replication run for CI: same assertions, one partition.
georep-smoke:
	$(GO) test -race -count=1 -short -v -run TestGeoRepSeeded ./internal/harness

# Boot a 3-process cluster with -spans and -telemetry, commit a
# transfer, and check /metrics, /healthz, /trace and the control-port
# SPANS dump agree — ending with polytrace reconstructing a complete
# causal timeline for the committed transaction.
telemetry-smoke:
	scripts/telemetry_smoke.sh

# Boot a real 3-process cluster on loopback TCP, transfer between
# accounts, kill the coordinator mid-commit, watch polyvalues install,
# restart it, and assert conservation after the reduction.
cluster-demo:
	scripts/cluster_demo.sh

# Drive the fault plane through polynode control ports: partitions,
# drops and corruption against a live 3-process cluster, healed live,
# ending with conservation intact.
chaos-demo:
	scripts/chaos_demo.sh
