GO ?= go

.PHONY: check vet build test race bench tables

check: vet build race ## everything CI runs

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

tables:
	$(GO) run ./cmd/polytables
