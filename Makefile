GO ?= go

.PHONY: check vet build test race bench tables fuzz-smoke cluster-demo

check: vet build race ## everything CI runs

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

tables:
	$(GO) run ./cmd/polytables

# Short fuzzing passes over every wire-format decoder (one -fuzz run per
# target; go test only accepts a single fuzz target at a time).
fuzz-smoke:
	$(GO) test -run=^$$ -fuzz=FuzzMessageDecode -fuzztime=10s ./internal/wire
	$(GO) test -run=^$$ -fuzz=FuzzPolyDecode -fuzztime=10s ./internal/wire

# Boot a real 3-process cluster on loopback TCP, transfer between
# accounts, kill the coordinator mid-commit, watch polyvalues install,
# restart it, and assert conservation after the reduction.
cluster-demo:
	scripts/cluster_demo.sh
