package polyvalues

import (
	"repro/internal/expr"
	"repro/internal/polytxn"
	"repro/internal/txn"
)

// ---------------------------------------------------------------------
// Transactions and polytransaction execution
// ---------------------------------------------------------------------

// Txn is an identified deterministic transaction: a program of guarded
// assignments over named items ("src = src - 50 if src >= 50; ...").
type Txn = txn.T

// Outcome is a transaction's fate: Pending, Committed, or Aborted.
type Outcome = txn.Outcome

// Transaction outcomes.
const (
	OutcomePending   = txn.Pending
	OutcomeCommitted = txn.Committed
	OutcomeAborted   = txn.Aborted
)

// NewTxn parses a transaction body.
func NewTxn(id TID, src string) (Txn, error) { return txn.New(id, src) }

// MustTxn is NewTxn that panics on parse errors.
func MustTxn(id TID, src string) Txn { return txn.MustNew(id, src) }

// NewIDGen returns a generator of process-unique transaction IDs with the
// given prefix.
func NewIDGen(prefix string) *txn.IDGen { return txn.NewIDGen(prefix) }

// HistoryEntry pairs a transaction with its outcome for SerialApply.
type HistoryEntry = txn.HistoryEntry

// SerialApply executes the committed transactions of a history in order —
// the atomicity oracle polyvalue executions must match once all outcomes
// are known.
func SerialApply(initial map[string]Value, history []HistoryEntry) (map[string]Value, error) {
	return txn.SerialApply(initial, history)
}

// Executor runs transactions and queries against polyvalued state,
// implementing §3.2 alternative-transaction partitioning.
type Executor = polytxn.Executor

// ExecResult is the outcome of a (poly)transaction's compute phase.
type ExecResult = polytxn.Result

// Program is a parsed transaction body.
type Program = expr.Program

// ParseProgram compiles transaction source text.
func ParseProgram(src string) (Program, error) { return expr.Parse(src) }

// Expr is a parsed read-only expression.
type Expr = expr.Node

// ParseExpr compiles a read-only query expression.
func ParseExpr(src string) (Expr, error) { return expr.ParseExpr(src) }

// Env supplies item values to Program.Eval.
type Env = expr.Env

// MapEnv is a map-backed Env with Nil fallback.
type MapEnv = expr.MapEnv
