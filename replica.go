package polyvalues

import (
	"repro/internal/expr"
	"repro/internal/protocol"
	"repro/internal/replica"
)

// ---------------------------------------------------------------------
// Replication (§3: "an item that is replicated at several sites can be
// viewed as a set of individual items, one for each site")
// ---------------------------------------------------------------------

// ReplicaName returns the physical name of a logical item's i-th
// replica.
func ReplicaName(logical string, i int) string { return replica.Name(logical, i) }

// ReplicaLogical splits a physical replica name back into its logical
// item and index.
func ReplicaLogical(physical string) (logical string, i int, ok bool) {
	return replica.Logical(physical)
}

// ReplicateProgram rewrites a logical-item transaction into a write-all /
// read-one transaction over k replicas, reading from replica readFrom.
func ReplicateProgram(p Program, k, readFrom int) (Program, error) {
	return replica.Rewrite(expr.Program(p), k, readFrom)
}

// ReplicateExpr rewrites a logical read-only expression to read from the
// given replica.
func ReplicateExpr(src string, readFrom int) (string, error) {
	return replica.RewriteExpr(src, readFrom)
}

// ReplicaPlacement returns a cluster Placement that puts each logical
// item's replicas on distinct sites.
func ReplicaPlacement(sites []SiteID) func(string) SiteID {
	inner := replica.Placement(sites)
	return func(item string) protocol.SiteID { return inner(item) }
}
