package polyvalues

import (
	"repro/internal/model"
	"repro/internal/protocol"
	"repro/internal/sim"
)

// ---------------------------------------------------------------------
// §4.1 analytic model (Table 1)
// ---------------------------------------------------------------------

// ModelParams are the six database parameters of §4.1 (U, F, I, R, Y, D).
type ModelParams = model.Params

// Table1Row pairs a parameter set with the paper's printed prediction.
type Table1Row = model.Table1Row

// Table1 returns the paper's Table 1 parameter sets and predictions.
func Table1() []Table1Row { return model.Table1() }

// FormatTable1 renders the paper-vs-model comparison.
func FormatTable1() string { return model.FormatTable1() }

// ---------------------------------------------------------------------
// §4.2 discrete-event simulation (Table 2)
// ---------------------------------------------------------------------

// SimParams configures one §4.2 simulation run.
type SimParams = sim.Params

// SimResult reports one run's measurements.
type SimResult = sim.Result

// SimRun executes one simulation.
func SimRun(p SimParams) (SimResult, error) { return sim.Run(p) }

// Table2Row is one row of the paper's Table 2.
type Table2Row = sim.Table2Row

// Table2 returns the paper's six simulated parameter sets.
func Table2() []Table2Row { return sim.Table2() }

// Table2Result pairs a row with this implementation's measurement.
type Table2Result = sim.Table2Result

// RunTable2 executes every Table 2 row.
func RunTable2(seed int64, warmup, measure float64) ([]Table2Result, error) {
	return sim.RunTable2(seed, warmup, measure)
}

// FormatTable2 renders measured-vs-paper columns.
func FormatTable2(results []Table2Result) string { return sim.FormatTable2(results) }

// Table2Stats aggregates a Table 2 row over several seeds.
type Table2Stats = sim.Table2Stats

// RunTable2Multi executes every Table 2 row several times and reports
// mean ± standard error.
func RunTable2Multi(runs int, baseSeed int64, warmup, measure float64) ([]Table2Stats, error) {
	return sim.RunTable2Multi(runs, baseSeed, warmup, measure)
}

// FormatTable2Multi renders the multi-seed comparison.
func FormatTable2Multi(stats []Table2Stats) string { return sim.FormatTable2Multi(stats) }

// ---------------------------------------------------------------------
// Figure 1 (the update-protocol state machine)
// ---------------------------------------------------------------------

// ProtocolState is a participant's Figure 1 state (idle/compute/wait).
type ProtocolState = protocol.PState

// ProtocolEvent is an input to the participant machine.
type ProtocolEvent = protocol.PEvent

// ProtocolAction is what the runtime must do after a transition.
type ProtocolAction = protocol.PAction

// Figure1Transitions enumerates the update protocol's full transition
// relation (Figure 1 of the paper).
func Figure1Transitions() []struct {
	From   protocol.PState
	Event  protocol.PEvent
	To     protocol.PState
	Action protocol.PAction
} {
	return protocol.Transitions()
}
