package polyvalues

import (
	"testing"
	"time"
)

// These tests exercise the public facade end to end, the way a library
// consumer would: polyvalue algebra, polytransaction execution, the
// cluster, and the analysis tooling.

func TestFacadePolyvalueAlgebra(t *testing.T) {
	bal := Uncertain("T1", Simple(Int(60)), Simple(Int(100)))
	if _, certain := bal.IsCertain(); certain {
		t.Fatal("uncertain value reported certain")
	}
	min, max, ok := bal.MinMax()
	if !ok || min != 60 || max != 100 {
		t.Errorf("MinMax = %g,%g,%v", min, max, ok)
	}
	resolved := bal.Resolve("T1", true)
	if v, ok := resolved.IsCertain(); !ok || !v.Equal(Int(60)) {
		t.Errorf("Resolve = %v", resolved)
	}
	c, err := ParseCond("T1&!T2 | T3")
	if err != nil || c.NumProducts() != 2 {
		t.Errorf("ParseCond: %v, %v", c, err)
	}
	if !Committed("T1").Or(Aborted("T1")).IsTrue() {
		t.Error("T1 | !T1 should be true")
	}
	if !CondTrue().And(CondFalse()).IsFalse() {
		t.Error("true & false should be false")
	}
	p, err := NewPoly([]Pair{
		{Val: Int(1), Cond: Committed("T9")},
		{Val: Int(2), Cond: Aborted("T9")},
	})
	if err != nil || p.NumPairs() != 2 {
		t.Errorf("NewPoly: %v, %v", p, err)
	}
	merged := Compose([]Alternative{
		{Cond: Committed("T9"), Val: Simple(Bool(true))},
		{Cond: Aborted("T9"), Val: Simple(Bool(true))},
	})
	if _, certain := merged.IsCertain(); !certain {
		t.Errorf("Compose should merge equal alternatives: %v", merged)
	}
}

func TestFacadeExecutor(t *testing.T) {
	tx := MustTxn("T1", "approved = bal >= 50")
	ex := &Executor{}
	res, err := ex.Execute(tx, func(item string) Poly {
		return Uncertain("T9", Simple(Int(500)), Simple(Int(450)))
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Certain {
		t.Errorf("authorization should be certain: %v", res.Writes["approved"])
	}
	node, err := ParseExpr("bal + 1")
	if err != nil {
		t.Fatal(err)
	}
	q, err := ex.EvalQuery(node, func(string) Poly {
		return Uncertain("T9", Simple(Int(1)), Simple(Int(2)))
	})
	if err != nil || q.NumPairs() != 2 {
		t.Errorf("EvalQuery: %v, %v", q, err)
	}
}

func TestFacadeSerialApply(t *testing.T) {
	final, err := SerialApply(map[string]Value{"x": Int(10)}, []HistoryEntry{
		{Txn: MustTxn("T1", "x = x * 3"), Outcome: OutcomeCommitted},
		{Txn: MustTxn("T2", "x = 0"), Outcome: OutcomeAborted},
	})
	if err != nil || !final["x"].Equal(Int(30)) {
		t.Errorf("SerialApply: %v, %v", final, err)
	}
	if OutcomePending.String() != "pending" {
		t.Error("outcome alias broken")
	}
}

func TestFacadeCluster(t *testing.T) {
	c, err := NewCluster(ClusterConfig{
		Sites: []SiteID{"s1", "s2"},
		Net:   NetConfig{Latency: 5 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Load("x", Simple(Int(5))); err != nil {
		t.Fatal(err)
	}
	h, err := c.Submit("s1", "x = x + 1")
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(time.Second)
	if h.Status() != StatusCommitted {
		t.Fatalf("status = %v", h.Status())
	}
	if v, _ := c.Read("x").IsCertain(); !v.Equal(Int(6)) {
		t.Errorf("x = %v", c.Read("x"))
	}
	var st ClusterStats = c.Stats()
	if st.Committed != 1 {
		t.Errorf("stats = %+v", st)
	}
	qh, err := c.Query("s2", "x * 10")
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(time.Second)
	if p, qerr, done := qh.Result(); !done || qerr != nil {
		t.Errorf("query: %v %v %v", p, qerr, done)
	} else if v, _ := p.IsCertain(); !v.Equal(Int(60)) {
		t.Errorf("query result = %v", p)
	}
	if StatusPending.String() != "pending" || StatusAborted.String() != "aborted" {
		t.Error("status aliases broken")
	}
	if PolicyPolyvalue.String() != "polyvalue" || PolicyBlocking.String() != "blocking" {
		t.Error("policy aliases broken")
	}
}

func TestFacadeWorkload(t *testing.T) {
	g, err := NewWorkload(WorkloadConfig{Kind: WorkloadBank, Items: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseProgram(g.Next()); err != nil {
		t.Errorf("workload txn does not parse: %v", err)
	}
	if WorkloadReservations.String() != "reservations" || WorkloadInventory.String() != "inventory" {
		t.Error("workload kind aliases broken")
	}
}

func TestFacadeAnalysis(t *testing.T) {
	if len(Table1()) != 11 || len(Table2()) != 6 {
		t.Error("table definitions wrong")
	}
	p := ModelParams{U: 10, F: 0.01, I: 10000, R: 0.01, Y: 0, D: 1}
	if p.SteadyState() < 11 || p.SteadyState() > 11.2 {
		t.Errorf("steady state = %g", p.SteadyState())
	}
	r, err := SimRun(SimParams{Model: p, Seed: 1, Warmup: 200, Measure: 1000})
	if err != nil || r.Transactions == 0 {
		t.Errorf("SimRun: %+v, %v", r, err)
	}
	if FormatTable1() == "" {
		t.Error("FormatTable1 empty")
	}
	results, err := RunTable2(1, 100, 500)
	if err != nil || FormatTable2(results) == "" {
		t.Errorf("RunTable2: %v", err)
	}
	if len(Figure1Transitions()) != 7 {
		t.Errorf("Figure 1 has %d edges", len(Figure1Transitions()))
	}
	if _, ok := AsInt(Int(3)); !ok {
		t.Error("AsInt alias broken")
	}
	if _, ok := AsFloat(Float(1.5)); !ok {
		t.Error("AsFloat alias broken")
	}
	var n Value = Nil{}
	if n.Kind().String() != "nil" {
		t.Error("Nil alias broken")
	}
	if !Str("a").Equal(Str("a")) {
		t.Error("Str alias broken")
	}
	g := NewIDGen("x")
	if g.Next() == g.Next() {
		t.Error("IDGen broken")
	}
}

func TestFacadeMinimize(t *testing.T) {
	// Cond is a type alias, so Quine-McCluskey minimization is available
	// directly on facade conditions.
	c, err := ParseCond("T1&T2 | T1&!T2")
	if err != nil {
		t.Fatal(err)
	}
	if m := c.Minimize(); !m.Equal(Committed("T1")) {
		t.Errorf("Minimize = %v", m)
	}
}

func TestFacadeReplication(t *testing.T) {
	if ReplicaName("bal", 2) != "bal_r2" {
		t.Error("ReplicaName wrong")
	}
	logical, i, ok := ReplicaLogical("bal_r2")
	if !ok || logical != "bal" || i != 2 {
		t.Errorf("ReplicaLogical = %q,%d,%v", logical, i, ok)
	}
	p, err := ParseProgram("bal = bal - 1")
	if err != nil {
		t.Fatal(err)
	}
	r, err := ReplicateProgram(p, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.WriteSet()) != 2 {
		t.Errorf("replicated write set = %v", r.WriteSet())
	}
	src, err := ReplicateExpr("bal", 1)
	if err != nil || src != "bal_r1" {
		t.Errorf("ReplicateExpr = %q, %v", src, err)
	}
	place := ReplicaPlacement([]SiteID{"a", "b", "c"})
	if place(ReplicaName("x", 0)) == place(ReplicaName("x", 1)) {
		t.Error("replicas co-located")
	}
}

func TestFacadeObservability(t *testing.T) {
	c, err := NewCluster(ClusterConfig{Sites: []SiteID{"a", "b"}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Load("x", Simple(Int(5))); err != nil {
		t.Fatal(err)
	}
	h, _ := c.Submit("a", "x = x + 1")
	c.RunFor(time.Second)
	if h.Status() != StatusCommitted {
		t.Fatal("setup failed")
	}
	snap := c.Snapshot()
	if v, ok := snap["x"].IsCertain(); !ok || !v.Equal(Int(6)) {
		t.Errorf("snapshot x = %v", snap["x"])
	}
	owner := c.Placement("x")
	info, err := c.SiteInfo(owner)
	if err != nil || info.Items != 1 {
		t.Errorf("SiteInfo = %+v, %v", info, err)
	}
	if v := c.CheckInvariants(); len(v) != 0 {
		t.Errorf("violations: %v", v)
	}
}

func TestFacadeQueryCertain(t *testing.T) {
	c, err := NewCluster(ClusterConfig{Sites: []SiteID{"a", "b"}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Load("x", Simple(Int(5))); err != nil {
		t.Fatal(err)
	}
	qh, err := c.QueryCertain("a", "x + 1", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(time.Second)
	p, qerr, done := qh.Result()
	if !done || qerr != nil {
		t.Fatalf("QueryCertain: %v %v", qerr, done)
	}
	if v, _ := p.IsCertain(); !v.Equal(Int(6)) {
		t.Errorf("result = %v", p)
	}
	if ErrStillUncertain == nil {
		t.Error("ErrStillUncertain not exported")
	}
}

func TestFacadeTable2Multi(t *testing.T) {
	stats, err := RunTable2Multi(2, 1, 200, 800)
	if err != nil || len(stats) != 6 {
		t.Fatalf("RunTable2Multi: %v, %d rows", err, len(stats))
	}
	if FormatTable2Multi(stats) == "" {
		t.Error("empty format")
	}
}

func TestFacadeExperiment(t *testing.T) {
	rep, err := RunExperiment(Experiment{
		Sites: 2, Items: 4, Txns: 6, Workload: WorkloadBank, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Committed == 0 || rep.Availability() != 1 {
		t.Errorf("report = %+v", rep)
	}
	var s ExperimentSample
	if len(rep.Series) > 0 {
		s = rep.Series[0]
	}
	_ = s
	if rep.Stats.Committed == 0 {
		t.Error("cluster stats missing")
	}
}
