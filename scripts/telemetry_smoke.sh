#!/usr/bin/env bash
# telemetry_smoke.sh — boot a real 3-process polyvalue cluster with the
# observability plane enabled (-spans, -telemetry), commit a transfer,
# and check every window into the run agrees:
#
#   /metrics   serves valid OpenMetrics (committed counter, blocked-item
#              accountant series, trace gauges, # EOF terminator)
#   /healthz   reports the site and its commit count
#   /trace     returns the committed transaction's causal timeline
#   SPANS      control-port dumps merge under polytrace into a COMPLETE
#              timeline for the committed transaction
#
# Usage: scripts/telemetry_smoke.sh   (or: make telemetry-smoke)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/polytel.XXXXXX")"
BIN="$WORK/polynode"
TRACE="$WORK/polytrace"

declare -A PID=()
cleanup() {
    for site in "${!PID[@]}"; do
        kill -9 "${PID[$site]}" 2>/dev/null || true
    done
    rm -rf "$WORK"
}
trap cleanup EXIT

say()  { printf '\033[1m== %s\033[0m\n' "$*"; }
fail() {
    printf 'FAIL: %s\n' "$*" >&2
    for f in "$WORK"/*.log; do echo "--- $f"; cat "$f"; done >&2
    # DEMO_LOG_DIR: CI sets this so node logs and span dumps survive the
    # mktemp cleanup and can be uploaded as a build artifact.
    if [[ -n "${DEMO_LOG_DIR:-}" ]]; then
        mkdir -p "$DEMO_LOG_DIR"
        cp "$WORK"/*.log "$WORK"/span-*.json "$DEMO_LOG_DIR"/ 2>/dev/null || true
    fi
    exit 1
}

say "building polynode and polytrace"
(cd "$ROOT" && go build -o "$BIN" ./cmd/polynode && go build -o "$TRACE" ./cmd/polytrace)

# Pick nine free loopback ports: transport, control, telemetry per site.
read -r PA PB PC CA CB CC TA TB TC < <(python3 - <<'EOF'
import socket
socks = [socket.socket() for _ in range(9)]
for s in socks: s.bind(("127.0.0.1", 0))
print(" ".join(str(s.getsockname()[1]) for s in socks))
for s in socks: s.close()
EOF
)
PEERS="A=127.0.0.1:$PA,B=127.0.0.1:$PB,C=127.0.0.1:$PC"
declare -A CTRL=([A]="127.0.0.1:$CA" [B]="127.0.0.1:$CB" [C]="127.0.0.1:$CC")
declare -A TEL=([A]="127.0.0.1:$TA" [B]="127.0.0.1:$TB" [C]="127.0.0.1:$TC")

start_node() { # site
    local site="$1"
    "$BIN" -site "$site" -peers "$PEERS" -control "${CTRL[$site]}" \
        -telemetry "${TEL[$site]}" -spans 8192 \
        -data "$WORK/wal" -wait-timeout 150ms -retry-interval 150ms \
        -place acct1=B,acct2=C \
        >>"$WORK/$site.log" 2>&1 &
    PID[$site]=$!
    disown
}

call() { # site command...
    local site="$1"; shift
    "$BIN" -call "${CTRL[$site]}" "$@"
}

scrape() { # site path
    curl -fsS --max-time 5 "http://${TEL[$1]}$2"
}

wait_ready() { # site
    local site="$1"
    for _ in $(seq 1 100); do
        if call "$site" PING >/dev/null 2>&1; then return 0; fi
        sleep 0.1
    done
    fail "node $site never answered PING"
}

say "starting 3 polynode processes with -spans and -telemetry"
mkdir -p "$WORK/wal"
for site in A B C; do start_node "$site"; done
for site in A B C; do wait_ready "$site"; done

call B LOAD acct1 100 >/dev/null || fail "LOAD acct1"
call C LOAD acct2 100 >/dev/null || fail "LOAD acct2"

say "committing a transfer through coordinator A"
OUT=$(call A SUBMIT 'acct1 = acct1 - 30 if acct1 >= 30; acct2 = acct2 + 30 if acct1 >= 30')
echo "$OUT"
[[ "$OUT" == OK\ committed* ]] || fail "transfer did not commit: $OUT"
TID=$(echo "$OUT" | awk '{print $3}')
[[ -n "$TID" ]] || fail "no transaction ID in SUBMIT response"

say "scraping /metrics on every site"
for site in A B C; do
    M=$(scrape "$site" /metrics) || fail "$site /metrics unreachable"
    echo "$M" | grep -q '^# EOF$'            || fail "$site /metrics missing # EOF terminator"
    echo "$M" | grep -q 'txn_committed'      || fail "$site /metrics missing txn_committed"
    echo "$M" | grep -q 'trace_spans_retained' || fail "$site /metrics missing trace gauges"
done
scrape A /metrics | grep -E 'txn_committed|item_blocked_seconds_sum' | head -5 | sed 's/^/   /'
# The coordinator committed once; its counter must say so.
C_A=$(scrape A /metrics | awk '/^txn_committed_total/{print $2; exit}')
[[ "${C_A:-0}" -ge 1 ]] || fail "coordinator txn_committed_total = ${C_A:-missing}, want >= 1"

say "checking /healthz"
for site in A B C; do
    H=$(scrape "$site" /healthz) || fail "$site /healthz unreachable"
    echo "$H" | grep -q "\"site\": *\"$site\"" || fail "$site /healthz missing site field: $H"
done
scrape A /healthz | sed 's/^/   /'

say "fetching the committed transaction's timeline from /trace"
T=$(scrape A "/trace?txn=$TID") || fail "A /trace unreachable"
echo "$T" | grep -q "\"tid\": *\"$TID\"" || fail "/trace response does not mention $TID: $T"

say "dumping spans from every control port and merging with polytrace"
for site in A B C; do
    call "$site" SPANS | sed -n 's/^| //p' > "$WORK/span-$site.json"
    [[ -s "$WORK/span-$site.json" ]] || fail "$site SPANS dump empty"
done
"$TRACE" -txn "$TID" "$WORK"/span-*.json | sed 's/^/   /'
RES=$("$TRACE" -txn "$TID" "$WORK"/span-*.json | tail -1)
[[ "$RES" == *"0 incomplete"* ]] || fail "merged timeline incomplete: $RES"

say "telemetry smoke — PASS"
