#!/usr/bin/env bash
# bench_smoke.sh — short, seeded polybench runs gating CI against gross
# throughput regressions.  Two settings mirror the benchmark trajectory:
# an in-process 3-site TCP cluster and a real 3-process TCP cluster,
# both on the bank workload with a fixed seed.  The second run compares
# against the checked-in bench_baseline.json and fails the job if
# commit throughput fell more than 30% below any same-named setting.
#
# The baseline numbers are deliberately conservative (far below what the
# benchmark machines in EXPERIMENTS.md sustain): shared CI runners are
# slow and noisy, and this gate exists to catch order-of-magnitude
# regressions (an accidentally serialized hot path, a checkpoint storm),
# not single-digit drift.  Retune the trajectory locally with
# `cmd/polybench` at the settings recorded in EXPERIMENTS.md.
#
# Usage: scripts/bench_smoke.sh [out.json]   (or: make bench-smoke)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

OUT="${1:-BENCH_smoke_$(git rev-parse --short HEAD 2>/dev/null || echo dev).json}"
BIN="$(mktemp -d "${TMPDIR:-/tmp}/polybench.XXXXXX")/polybench"
trap 'rm -rf "$(dirname "$BIN")"' EXIT

go build -o "$BIN" ./cmd/polybench

rm -f "$OUT"
"$BIN" -mode inproc -sites 3 -workload bank -txns 2000 -workers 64 \
    -items 1024 -seed 1 -out "$OUT" -compare bench_baseline.json
"$BIN" -mode procs -sites 3 -workload bank -txns 1000 -workers 32 \
    -items 1024 -seed 1 -out "$OUT" -compare bench_baseline.json

echo "bench-smoke OK: $OUT"
