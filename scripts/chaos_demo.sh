#!/usr/bin/env bash
# chaos_demo.sh — drive the fault-injection plane through polynode
# control ports: boot a real 3-process cluster, degrade the network live
# (drops, delays, frame corruption, a partition), run transfers through
# the weather, arm a crash point, kill -9 the victim, restart it from
# its WAL, heal everything, and assert the money is conserved with zero
# residual polyvalues.
#
# Usage: scripts/chaos_demo.sh   (or: make chaos-demo)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/polychaos.XXXXXX")"
BIN="$WORK/polynode"

declare -A PID=()
cleanup() {
    for site in "${!PID[@]}"; do
        kill -9 "${PID[$site]}" 2>/dev/null || true
    done
    rm -rf "$WORK"
}
trap cleanup EXIT

say()  { printf '\033[1m== %s\033[0m\n' "$*"; }
fail() {
    printf 'FAIL: %s\n' "$*" >&2
    for f in "$WORK"/*.log; do echo "--- $f"; cat "$f"; done >&2
    # DEMO_LOG_DIR: CI sets this so node logs survive the mktemp cleanup
    # and can be uploaded as a build artifact.
    if [[ -n "${DEMO_LOG_DIR:-}" ]]; then
        mkdir -p "$DEMO_LOG_DIR"
        cp "$WORK"/*.log "$DEMO_LOG_DIR"/ 2>/dev/null || true
    fi
    exit 1
}

say "building polynode"
(cd "$ROOT" && go build -o "$BIN" ./cmd/polynode)

read -r PA PB PC CA CB CC < <(python3 - <<'EOF'
import socket
socks = [socket.socket() for _ in range(6)]
for s in socks: s.bind(("127.0.0.1", 0))
print(" ".join(str(s.getsockname()[1]) for s in socks))
for s in socks: s.close()
EOF
)
PEERS="A=127.0.0.1:$PA,B=127.0.0.1:$PB,C=127.0.0.1:$PC"
declare -A CTRL=([A]="127.0.0.1:$CA" [B]="127.0.0.1:$CB" [C]="127.0.0.1:$CC")
SEED=20260806

start_node() { # site
    local site="$1"
    "$BIN" -site "$site" -peers "$PEERS" -control "${CTRL[$site]}" \
        -data "$WORK/wal" -wait-timeout 150ms -retry-interval 150ms \
        -fault-seed "$SEED" -place acct1=B,acct2=C \
        >>"$WORK/$site.log" 2>&1 &
    PID[$site]=$!
    disown
}

call() { # site command...
    local site="$1"; shift
    "$BIN" -call "${CTRL[$site]}" "$@"
}

wait_ready() { # site
    local site="$1"
    for _ in $(seq 1 100); do
        if call "$site" PING >/dev/null 2>&1; then return 0; fi
        sleep 0.1
    done
    fail "node $site never answered PING"
}

say "starting 3 polynode processes (A, B, C), fault seed $SEED"
mkdir -p "$WORK/wal"
for site in A B C; do start_node "$site"; done
for site in A B C; do wait_ready "$site"; done

call B LOAD acct1 100 >/dev/null || fail "LOAD acct1"
call C LOAD acct2 100 >/dev/null || fail "LOAD acct2"

TRANSFER='acct1 = acct1 - 10 if acct1 >= 10; acct2 = acct2 + 10 if acct1 >= 10'

say "degrading the network through the FAULT verb"
call A FAULT 'drop to=B p=0.15'                 | tail -1
call A FAULT 'delay p=0.3 min=5ms max=40ms'     | tail -1
call B FAULT 'corrupt to=C p=0.2'               | tail -1
call C FAULT 'dup p=0.1'                        | tail -1
call A FAULT status | sed 's/^/   /'

say "running 6 transfers through the bad weather"
COMMITTED=0
for i in $(seq 1 6); do
    OUT=$(call A SUBMIT "$TRANSFER" || true)
    echo "   [$i] $OUT"
    [[ "$OUT" == OK\ committed* ]] && COMMITTED=$((COMMITTED + 1))
done
[[ "$COMMITTED" -ge 1 ]] || fail "nothing committed under fault weather"

say "partitioning A from B (heals itself after 2s), then one more transfer"
call A FAULT 'partition a=A b=B heal=2s' | tail -1
call A ASYNC "$TRANSFER" >/dev/null
sleep 2.5

say "arming crash point after-decision-log on A, then a doomed transfer"
call A CRASHPOINTS | sed 's/^/   /'
call A ARMCRASH after-decision-log | tail -1
call A ASYNC "$TRANSFER" >/dev/null
sleep 1

say "killing A (kill -9) and restarting it over the same WAL"
kill -9 "${PID[A]}"
wait "${PID[A]}" 2>/dev/null || true
unset 'PID[A]'
sleep 0.5
start_node A
wait_ready A

say "healing all faults on every node"
for site in A B C; do
    call "$site" FAULT heal  >/dev/null
    call "$site" FAULT clear >/dev/null
done

say "waiting for full quiescence (certain values, zero polyvalues)"
V1=""; V2=""
for _ in $(seq 1 200); do
    R1=$(call B READ acct1 | sed 's/^OK //'); R2=$(call C READ acct2 | sed 's/^OK //')
    N1=$(call B POLY | awk '{print $2}');     N2=$(call C POLY | awk '{print $2}')
    if [[ "$R1" == certain\ * && "$R2" == certain\ * && "$N1" == 0 && "$N2" == 0 ]]; then
        V1=${R1#certain }; V2=${R2#certain }
        break
    fi
    sleep 0.1
done
[[ -n "$V1" && -n "$V2" ]] || fail "cluster never quiesced (acct1='$R1' acct2='$R2' polys=$N1/$N2)"
echo "   acct1=$V1 acct2=$V2"

[[ $((V1 + V2)) -eq 200 ]] || fail "conservation violated: $V1 + $V2 != 200"
say "conservation holds through drops, corruption, partition and crash: $V1 + $V2 = 200 — PASS"
