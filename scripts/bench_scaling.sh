#!/usr/bin/env bash
# bench_scaling.sh — the lane scaling matrix and its CI gate (ISSUE 9).
#
# Runs the seeded durable bank workload over a real 3-process cluster at
# GOMAXPROCS 1, 4 and 16, with the classic single event loop (lanes off)
# and with 16 key-sharded execution lanes, merging all six settings into
# one BENCH_<rev>.json.  Durable runs make every site event wait for its
# WAL records before its outputs leave the site: lanes off pays one
# serialized fsync per WAL-writing event, lanes on shares one
# group-commit fsync across every event parked in the flush window —
# that amortization is what the gate measures.
#
# The gate: lanes@16 must beat lanes-off by at least MIN_RATIO (default
# 2.0) at GOMAXPROCS=16.  Both arms run at the same scheduler width with
# the same seed, so the ratio isolates the engine change; the 1/4/16
# curve is recorded alongside for the README performance table.
#
# Usage: scripts/bench_scaling.sh [out.json]   (or: make bench-scaling)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

# MIN_RATIO is the gate: 2.0 is what a quiet machine shows (see
# EXPERIMENTS.md); CI overrides it downward because shared runners are
# noisy — like bench_baseline.json, the CI setting exists to catch a
# lost amortization (ratio collapsing to ~1), not single-run jitter.
OUT="${1:-BENCH_$(git rev-parse --short HEAD 2>/dev/null || echo dev).json}"
MIN_RATIO="${MIN_RATIO:-2.0}"
TXNS="${TXNS:-2400}"
BINDIR="$(mktemp -d "${TMPDIR:-/tmp}/benchscaling.XXXXXX")"
trap 'rm -rf "$BINDIR"' EXIT

go build -o "$BINDIR/polybench" ./cmd/polybench
go build -o "$BINDIR/benchgate" ./cmd/benchgate

for G in 1 4 16; do
    for LANES in 0 16; do
        label="bank-procs-3site-durable-gmp${G}"
        extra=()
        if [ "$LANES" -gt 0 ]; then
            label="${label}-lanes${LANES}"
            extra=(-group-commit-window 1ms)
        fi
        echo "=== $label ==="
        GOMAXPROCS="$G" "$BINDIR/polybench" \
            -mode procs -sites 3 -workload bank -txns "$TXNS" -workers 96 \
            -items 2048 -seed 1 -durable -lanes "$LANES" "${extra[@]}" \
            -label "$label" -out "$OUT"
    done
done

"$BINDIR/benchgate" -file "$OUT" \
    -baseline bank-procs-3site-durable-gmp16 \
    -candidate bank-procs-3site-durable-gmp16-lanes16 \
    -min-ratio "$MIN_RATIO"

echo "bench-scaling OK: $OUT"
