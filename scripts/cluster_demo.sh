#!/usr/bin/env bash
# cluster_demo.sh — boot a real 3-process polyvalue cluster on loopback,
# run a bank transfer through it, kill the coordinator mid-commit, watch
# the participants install polyvalues over real sockets, restart the
# coordinator from its WAL, and assert the polyvalues reduce with the
# total conserved.
#
# Usage: scripts/cluster_demo.sh   (or: make cluster-demo)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/polydemo.XXXXXX")"
BIN="$WORK/polynode"

declare -A PID=()
cleanup() {
    for site in "${!PID[@]}"; do
        kill -9 "${PID[$site]}" 2>/dev/null || true
    done
    rm -rf "$WORK"
}
trap cleanup EXIT

say()  { printf '\033[1m== %s\033[0m\n' "$*"; }
fail() {
    printf 'FAIL: %s\n' "$*" >&2
    for f in "$WORK"/*.log; do echo "--- $f"; cat "$f"; done >&2
    # DEMO_LOG_DIR: CI sets this so node logs survive the mktemp cleanup
    # and can be uploaded as a build artifact.
    if [[ -n "${DEMO_LOG_DIR:-}" ]]; then
        mkdir -p "$DEMO_LOG_DIR"
        cp "$WORK"/*.log "$DEMO_LOG_DIR"/ 2>/dev/null || true
    fi
    exit 1
}

say "building polynode"
(cd "$ROOT" && go build -o "$BIN" ./cmd/polynode)

# Pick six free loopback ports: three transport, three control.
read -r PA PB PC CA CB CC < <(python3 - <<'EOF'
import socket
socks = [socket.socket() for _ in range(6)]
for s in socks: s.bind(("127.0.0.1", 0))
print(" ".join(str(s.getsockname()[1]) for s in socks))
for s in socks: s.close()
EOF
)
PEERS="A=127.0.0.1:$PA,B=127.0.0.1:$PB,C=127.0.0.1:$PC"
declare -A CTRL=([A]="127.0.0.1:$CA" [B]="127.0.0.1:$CB" [C]="127.0.0.1:$CC")

start_node() { # site
    local site="$1"
    "$BIN" -site "$site" -peers "$PEERS" -control "${CTRL[$site]}" \
        -data "$WORK/wal" -wait-timeout 150ms -retry-interval 150ms -stats \
        -place acct1=B,acct2=C \
        >>"$WORK/$site.log" 2>&1 &
    PID[$site]=$!
    disown
}

call() { # site command...
    local site="$1"; shift
    "$BIN" -call "${CTRL[$site]}" "$@"
}

wait_ready() { # site
    local site="$1"
    for _ in $(seq 1 100); do
        if call "$site" PING >/dev/null 2>&1; then return 0; fi
        sleep 0.1
    done
    fail "node $site never answered PING"
}

say "starting 3 polynode processes (A, B, C)"
mkdir -p "$WORK/wal"
for site in A B C; do start_node "$site"; done
for site in A B C; do wait_ready "$site"; done

OWNER1=$(call A OWNER acct1 | awk '{print $2}')
OWNER2=$(call A OWNER acct2 | awk '{print $2}')
say "placement: acct1 -> $OWNER1, acct2 -> $OWNER2"

call "$OWNER1" LOAD acct1 100 >/dev/null || fail "LOAD acct1"
call "$OWNER2" LOAD acct2 100 >/dev/null || fail "LOAD acct2"

TRANSFER='acct1 = acct1 - 30 if acct1 >= 30; acct2 = acct2 + 30 if acct1 >= 30'

say "transfer 30 from acct1 to acct2 through coordinator A"
OUT=$(call A SUBMIT "$TRANSFER")
echo "$OUT"
[[ "$OUT" == OK\ committed* ]] || fail "transfer did not commit: $OUT"

read_item() { # owner item -> prints "certain 70" / "poly ..."
    call "$1" READ "$2" | sed 's/^OK //'
}
[[ "$(read_item "$OWNER1" acct1)" == "certain 70" ]]  || fail "acct1 != 70 after commit"
[[ "$(read_item "$OWNER2" acct2)" == "certain 130" ]] || fail "acct2 != 130 after commit"

say "arming failpoint: A will crash at its next COMMIT decision"
call A ARMCRASH >/dev/null

say "submitting a second transfer; the decision will never leave A"
call A ASYNC "$TRANSFER" >/dev/null

say "waiting for participants to time out and install polyvalues"
poly_count() { call "$1" POLY | awk '{print $2}'; }
for _ in $(seq 1 100); do
    n1=$(poly_count "$OWNER1"); n2=$(poly_count "$OWNER2")
    if [[ "$n1" -ge 1 && "$n2" -ge 1 ]]; then break; fi
    sleep 0.1
done
[[ "$n1" -ge 1 && "$n2" -ge 1 ]] || fail "polyvalues never installed (owner1=$n1 owner2=$n2)"
echo "   $OWNER1: $(read_item "$OWNER1" acct1)"
echo "   $OWNER2: $(read_item "$OWNER2" acct2)"
say "items remain readable as polyvalues while the outcome is unknown"

say "killing coordinator process A (kill -9)"
kill -9 "${PID[A]}"
wait "${PID[A]}" 2>/dev/null || true
unset 'PID[A]'

sleep 0.5

say "restarting A over the same WAL directory"
start_node A
wait_ready A

say "waiting for outcome requests to reach A (presumed abort) and the polyvalues to reduce"
V1=""; V2=""
for _ in $(seq 1 150); do
    R1=$(read_item "$OWNER1" acct1); R2=$(read_item "$OWNER2" acct2)
    if [[ "$R1" == certain\ * && "$R2" == certain\ * ]]; then
        V1=${R1#certain }; V2=${R2#certain }
        break
    fi
    sleep 0.1
done
[[ -n "$V1" && -n "$V2" ]] || fail "polyvalues never reduced (acct1='$R1' acct2='$R2')"
echo "   acct1=$V1 acct2=$V2"

[[ "$V1" == "70" ]]  || fail "acct1 = $V1, want 70 (second transfer presumed aborted)"
[[ "$V2" == "130" ]] || fail "acct2 = $V2, want 130 (second transfer presumed aborted)"
[[ $((V1 + V2)) -eq 200 ]] || fail "conservation violated: $V1 + $V2 != 200"

say "conservation holds: $V1 + $V2 = 200 — PASS"
