package guard

import (
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/protocol"
	"repro/internal/transport"
	"repro/internal/vclock"
)

// fakeTransport records sends and lets tests inject inbound deliveries.
type fakeTransport struct {
	mu       sync.Mutex
	sent     []protocol.Message
	handlers map[protocol.SiteID]transport.Handler
}

func newFakeTransport() *fakeTransport {
	return &fakeTransport{handlers: map[protocol.SiteID]transport.Handler{}}
}

func (f *fakeTransport) Send(msg protocol.Message) {
	f.mu.Lock()
	f.sent = append(f.sent, msg)
	f.mu.Unlock()
}

func (f *fakeTransport) Register(site protocol.SiteID, h transport.Handler) {
	f.mu.Lock()
	f.handlers[site] = h
	f.mu.Unlock()
}

func (f *fakeTransport) SetDown(protocol.SiteID, bool) {}
func (f *fakeTransport) IsDown(protocol.SiteID) bool   { return false }
func (f *fakeTransport) Close() error                  { return nil }

func (f *fakeTransport) deliver(to protocol.SiteID, msg protocol.Message) {
	f.mu.Lock()
	h := f.handlers[to]
	f.mu.Unlock()
	if h != nil {
		h(msg)
	}
}

func (f *fakeTransport) sentTo(to protocol.SiteID, kind protocol.MsgKind) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, m := range f.sent {
		if m.To == to && m.Kind == kind {
			n++
		}
	}
	return n
}

// newSimDetector builds a detector over a fake transport driven by a
// deterministic discrete-event clock.
func newSimDetector(t *testing.T, reg *metrics.Registry) (*Detector, *fakeTransport, *vclock.Scheduler) {
	t.Helper()
	ft := newFakeTransport()
	clk := vclock.NewScheduler()
	d := NewDetector(ft, DetectorConfig{
		Self:         "A",
		Peers:        []protocol.SiteID{"A", "B", "C"},
		Interval:     100 * time.Millisecond,
		SuspectAfter: 3,
		Clock:        clk,
		Metrics:      reg,
	})
	return d, ft, clk
}

func TestDetectorSuspectsSilentPeer(t *testing.T) {
	reg := metrics.NewRegistry()
	d, ft, clk := newSimDetector(t, reg)
	received := 0
	d.Register("A", func(protocol.Message) { received++ })

	// B keeps talking, C stays silent.
	heard := clk.After(50*time.Millisecond, func() {})
	_ = heard
	for i := 0; i < 5; i++ {
		clk.RunUntil(vclock.Time(i+1) * 100 * time.Millisecond)
		ft.deliver("A", protocol.Message{Kind: protocol.MsgReadReq, From: "B", To: "A"})
	}
	if d.Suspected("B") {
		t.Fatal("talking peer must stay alive")
	}
	if !d.Suspected("C") {
		t.Fatal("silent peer must be suspected after 3 intervals")
	}
	if reg.Gauge("transport.peer.state", metrics.L("peer", "C")).Value() != 1 {
		t.Fatal("suspect gauge not raised for C")
	}
	if received == 0 {
		t.Fatal("protocol traffic must reach the wrapped handler")
	}

	// The breaker fast-fails protocol traffic to C but lets heartbeats
	// through.
	before := ft.sentTo("C", protocol.MsgComplete)
	d.Send(protocol.Message{Kind: protocol.MsgComplete, From: "A", To: "C"})
	if ft.sentTo("C", protocol.MsgComplete) != before {
		t.Fatal("send to suspected peer must fast-fail")
	}
	if reg.Counter("transport.breaker.fastfail", metrics.L("peer", "C")).Value() != 1 {
		t.Fatal("fastfail not counted")
	}
	if ft.sentTo("C", protocol.MsgHeartbeat) == 0 {
		t.Fatal("heartbeats must still flow to a suspected peer")
	}

	// C comes back: one inbound message reopens the breaker.
	ft.deliver("A", protocol.Message{Kind: protocol.MsgHeartbeat, From: "C", To: "A"})
	if d.Suspected("C") {
		t.Fatal("inbound traffic must clear suspicion")
	}
	d.Send(protocol.Message{Kind: protocol.MsgComplete, From: "A", To: "C"})
	if ft.sentTo("C", protocol.MsgComplete) != before+1 {
		t.Fatal("send after recovery must pass")
	}
	if reg.Counter("transport.peer.recoveries").Value() != 1 {
		t.Fatal("recovery not counted")
	}
	if err := d.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

func TestDetectorConsumesHeartbeats(t *testing.T) {
	d, ft, _ := newSimDetector(t, nil)
	var got []protocol.Message
	d.Register("A", func(m protocol.Message) { got = append(got, m) })
	ft.deliver("A", protocol.Message{Kind: protocol.MsgHeartbeat, From: "B", To: "A"})
	ft.deliver("A", protocol.Message{Kind: protocol.MsgReady, From: "B", To: "A"})
	if len(got) != 1 || got[0].Kind != protocol.MsgReady {
		t.Fatalf("handler saw %v, want only the ready", got)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

func TestDetectorWallClockLifecycle(t *testing.T) {
	// Smoke the default (private wall clock) construction path: ticks
	// fire on real time and Close tears everything down.
	ft := newFakeTransport()
	d := NewDetector(ft, DetectorConfig{
		Self:         "A",
		Peers:        []protocol.SiteID{"A", "B"},
		Interval:     5 * time.Millisecond,
		SuspectAfter: 2,
	})
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if ft.sentTo("B", protocol.MsgHeartbeat) > 0 && d.Suspected("B") {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if ft.sentTo("B", protocol.MsgHeartbeat) == 0 {
		t.Fatal("no heartbeats sent on the wall clock")
	}
	if !d.Suspected("B") {
		t.Fatal("never-heard peer must become suspect on the wall clock")
	}
	if err := d.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// Closing twice is fine.
	if err := d.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}
