package guard

import (
	"testing"

	"repro/internal/metrics"
)

func TestAdmissionCreditGate(t *testing.T) {
	reg := metrics.NewRegistry()
	a := NewAdmission(2, reg, "A")
	if !a.TryAcquire() || !a.TryAcquire() {
		t.Fatal("under-limit acquires must succeed")
	}
	if a.TryAcquire() {
		t.Fatal("acquire over the limit must shed")
	}
	if got := reg.Counter("site.admission.shed", metrics.L("site", "A")).Value(); got != 1 {
		t.Fatalf("shed counter = %d, want 1", got)
	}
	a.Release()
	if !a.TryAcquire() {
		t.Fatal("released credit must be reusable")
	}
	if n := a.Inflight(); n != 2 {
		t.Fatalf("inflight = %d, want 2", n)
	}
}

func TestAdmissionUnlimited(t *testing.T) {
	a := NewAdmission(0, nil, "A")
	for i := 0; i < 1000; i++ {
		if !a.TryAcquire() {
			t.Fatal("unlimited gate must never shed")
		}
	}
	if a.Inflight() != 0 {
		t.Fatal("unlimited gate must not track inflight")
	}
}

func TestAdmissionReleaseClampsAtZero(t *testing.T) {
	a := NewAdmission(1, nil, "A")
	a.Release() // unmatched
	if a.Inflight() != 0 {
		t.Fatal("inflight went negative")
	}
	if !a.TryAcquire() {
		t.Fatal("gate wedged by unmatched release")
	}
}

func TestBudgetDegradeAndRestore(t *testing.T) {
	reg := metrics.NewRegistry()
	b := NewBudget(4, 8, reg, "A")
	if !b.Enabled() || b.Degraded() {
		t.Fatal("fresh budget must be enabled and in poly mode")
	}
	if d := b.Update(3, 0); d != 0 || b.Degraded() {
		t.Fatal("under-cap update must not degrade")
	}
	if d := b.Update(4, 0); d != 1 || !b.Degraded() {
		t.Fatal("reaching the poly cap must degrade")
	}
	if d := b.Update(4, 0); d != 0 {
		t.Fatal("repeated over-cap update must not re-transition")
	}
	if d := b.Update(3, 0); d != -1 || b.Degraded() {
		t.Fatal("dropping below the cap must restore poly mode")
	}
	// Dependency cap degrades independently.
	if d := b.Update(0, 8); d != 1 || !b.Degraded() {
		t.Fatal("reaching the dep cap must degrade")
	}
	mode := reg.Gauge("site.budget.mode", metrics.L("site", "A"))
	if mode.Value() != 1 {
		t.Fatalf("mode gauge = %v, want 1", mode.Value())
	}
	if got := reg.Counter("site.budget.degradations", metrics.L("site", "A")).Value(); got != 2 {
		t.Fatalf("degradations = %d, want 2", got)
	}
	if got := reg.Counter("site.budget.restores", metrics.L("site", "A")).Value(); got != 1 {
		t.Fatalf("restores = %d, want 1", got)
	}
}

func TestBudgetDisabled(t *testing.T) {
	b := NewBudget(0, 0, nil, "A")
	if b.Enabled() {
		t.Fatal("capless budget must be disabled")
	}
	if d := b.Update(1<<20, 1<<20); d != 0 || b.Degraded() {
		t.Fatal("disabled budget must never degrade")
	}
}
