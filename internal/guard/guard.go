// Package guard is the overload-protection plane: the pieces that keep a
// site's resource usage bounded when the paper's steady-state assumptions
// (§4: failures are rare, partitions are short) stop holding.
//
//   - Admission is a per-site credit gate on in-flight coordinated
//     transactions: over the cap, submissions are shed immediately
//     instead of queueing without bound.
//   - Budget caps the local polyvalue population and §3.3
//     dependency-table size; at the cap, in-doubt participants degrade
//     to classic blocking 2PC (hold locks, install nothing) — the paper
//     presents polyvalues as an optional overlay on two-phase commit,
//     which makes plain 2PC the principled fallback.  Reduction on
//     repair frees budget and restores polyvalue mode.
//   - Detector (detector.go) is a transport-level heartbeat failure
//     detector with a circuit breaker that fast-fails sends to
//     suspected peers, bounding retry queue growth toward dead sites.
package guard

import (
	"sync"

	"repro/internal/metrics"
)

// Admission is a credit gate on concurrently in-flight work.  Each
// admitted unit holds one credit from acquire until release; at the
// limit, TryAcquire fails (and counts the shed) instead of blocking.
// Safe for concurrent use.
type Admission struct {
	mu       sync.Mutex
	limit    int
	inflight int

	shed     *metrics.Counter // site.admission.shed{site}
	inflGage *metrics.Gauge   // site.admission.inflight{site}
}

// NewAdmission builds a gate admitting at most limit units (limit <= 0
// means unlimited — TryAcquire always succeeds and nothing is counted).
// reg may be nil.
func NewAdmission(limit int, reg *metrics.Registry, site string) *Admission {
	a := &Admission{limit: limit}
	if reg != nil {
		l := metrics.L("site", site)
		a.shed = reg.Counter("site.admission.shed", l)
		a.inflGage = reg.Gauge("site.admission.inflight", l)
	}
	return a
}

// Limit returns the configured cap (<= 0 when unlimited).
func (a *Admission) Limit() int { return a.limit }

// TryAcquire takes one credit, or reports (and counts) a shed when none
// remain.
func (a *Admission) TryAcquire() bool {
	if a.limit <= 0 {
		return true
	}
	a.mu.Lock()
	if a.inflight >= a.limit {
		a.mu.Unlock()
		if a.shed != nil {
			a.shed.Inc()
		}
		return false
	}
	a.inflight++
	n := a.inflight
	a.mu.Unlock()
	if a.inflGage != nil {
		a.inflGage.Set(int64(n))
	}
	return true
}

// Release returns one credit.  Calling without a matching acquire is a
// programming error; the gate clamps at zero rather than going negative.
func (a *Admission) Release() {
	if a.limit <= 0 {
		return
	}
	a.mu.Lock()
	if a.inflight > 0 {
		a.inflight--
	}
	n := a.inflight
	a.mu.Unlock()
	if a.inflGage != nil {
		a.inflGage.Set(int64(n))
	}
}

// Inflight returns the credits currently held.
func (a *Admission) Inflight() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inflight
}

// Budget tracks one site's polyvalue/dependency caps and the degraded
// (blocking-2PC) mode they gate.  Not safe for concurrent use: the
// owning site goroutine is the only mutator, as with the rest of a
// site's protocol state.  The mode gauge gives observers a race-free
// view.
type Budget struct {
	maxPoly, maxDeps int
	degraded         bool

	mode         *metrics.Gauge   // site.budget.mode{site}: 0 poly, 1 blocking
	degradations *metrics.Counter // site.budget.degradations{site}
	restores     *metrics.Counter // site.budget.restores{site}
}

// NewBudget builds a budget with the given caps; a cap <= 0 is
// unlimited.  When both are unlimited the budget is inert (Enabled
// false, never degrades).  reg may be nil.
func NewBudget(maxPoly, maxDeps int, reg *metrics.Registry, site string) *Budget {
	b := &Budget{maxPoly: maxPoly, maxDeps: maxDeps}
	if reg != nil {
		l := metrics.L("site", site)
		b.mode = reg.Gauge("site.budget.mode", l)
		b.degradations = reg.Counter("site.budget.degradations", l)
		b.restores = reg.Counter("site.budget.restores", l)
	}
	return b
}

// Enabled reports whether any cap is configured.
func (b *Budget) Enabled() bool { return b.maxPoly > 0 || b.maxDeps > 0 }

// Degraded reports whether the site is currently in blocking-2PC mode.
func (b *Budget) Degraded() bool { return b.degraded }

// OverPolyWith reports whether a polyvalue population of n would exceed
// the cap — the headroom check for multi-item installs, which keeps the
// population at or below the cap even when one transaction installs
// several polyvalues at once.
func (b *Budget) OverPolyWith(n int) bool { return b.maxPoly > 0 && n > b.maxPoly }

// Update re-evaluates the mode against current resource counts and
// returns the transition: +1 entered degraded mode, -1 restored
// polyvalue mode, 0 no change.  The site enters degraded mode when
// either count reaches its cap and leaves it only when both drop back
// below — at the cap the next in-doubt transaction would exceed it.
func (b *Budget) Update(polyCount, depCount int) int {
	if !b.Enabled() {
		return 0
	}
	over := (b.maxPoly > 0 && polyCount >= b.maxPoly) ||
		(b.maxDeps > 0 && depCount >= b.maxDeps)
	switch {
	case over && !b.degraded:
		b.degraded = true
		if b.mode != nil {
			b.mode.Set(1)
			b.degradations.Inc()
		}
		return 1
	case !over && b.degraded:
		b.degraded = false
		if b.mode != nil {
			b.mode.Set(0)
			b.restores.Inc()
		}
		return -1
	}
	return 0
}
