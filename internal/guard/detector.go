package guard

import (
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/protocol"
	"repro/internal/transport"
	"repro/internal/vclock"
)

// DetectorConfig parameterizes a peer failure detector.
type DetectorConfig struct {
	// Self is the site this process hosts (never probed or suspected).
	Self protocol.SiteID
	// Peers is the full cluster membership; Self is skipped.
	Peers []protocol.SiteID
	// Interval paces heartbeats (default 100ms).
	Interval time.Duration
	// SuspectAfter is how many silent intervals mark a peer suspected
	// (default 3: a peer is suspect once nothing — heartbeat or protocol
	// traffic — arrived for SuspectAfter·Interval).
	SuspectAfter int
	// Clock drives the heartbeat timer.  nil means a private wall clock
	// (stopped on Close); the simulated runtime passes its scheduler so
	// detector events interleave deterministically.
	Clock vclock.Clock
	// Metrics, when set, receives transport.peer.state{peer} (0 alive,
	// 1 suspect), transport.peer.suspects / transport.peer.recoveries
	// transition counters, transport.breaker.fastfail{peer}, and
	// network.dropped{reason="suspect"}.
	Metrics *metrics.Registry
	// Logf, when set, receives suspect/alive transitions.
	Logf func(format string, args ...any)
}

func (c *DetectorConfig) fillDefaults() {
	if c.Interval <= 0 {
		c.Interval = 100 * time.Millisecond
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 3
	}
}

// peerState is the detector's view of one peer.
type peerState struct {
	lastSeen vclock.Time
	suspect  bool

	state    *metrics.Gauge   // transport.peer.state{peer}
	fastfail *metrics.Counter // transport.breaker.fastfail{peer}
}

// Detector wraps a Transport with transport-level failure detection: it
// heartbeats every peer each Interval, treats any inbound traffic as
// proof of life, and suspects a peer after SuspectAfter silent
// intervals.  A circuit breaker fast-fails sends to suspected peers —
// the message is dropped immediately (lost-datagram semantics the
// protocol's retry machinery already absorbs) instead of growing a
// send queue toward a dead site — and reopens the moment the peer is
// heard from again.  Heartbeats always pass the breaker: they are the
// probe that detects recovery.
type Detector struct {
	inner transport.Transport
	cfg   DetectorConfig
	clk   vclock.Clock
	// ownWall is set when the detector created its own clock; Close
	// stops it.
	ownWall *vclock.Wall

	mu     sync.Mutex
	peers  map[protocol.SiteID]*peerState
	timer  vclock.TimerID
	closed bool

	suspects   *metrics.Counter // transport.peer.suspects
	recoveries *metrics.Counter // transport.peer.recoveries
	heartbeats *metrics.Counter // transport.heartbeats.sent
	dropped    *metrics.Counter // network.dropped{reason="suspect"}
}

// NewDetector wraps inner with a failure detector and starts the
// heartbeat loop.  All peers start alive with a full grace period.
func NewDetector(inner transport.Transport, cfg DetectorConfig) *Detector {
	cfg.fillDefaults()
	d := &Detector{inner: inner, cfg: cfg, clk: cfg.Clock, peers: map[protocol.SiteID]*peerState{}}
	if d.clk == nil {
		d.ownWall = vclock.NewWall()
		d.clk = d.ownWall
	}
	if reg := cfg.Metrics; reg != nil {
		d.suspects = reg.Counter("transport.peer.suspects")
		d.recoveries = reg.Counter("transport.peer.recoveries")
		d.heartbeats = reg.Counter("transport.heartbeats.sent")
		d.dropped = reg.Counter("network.dropped", metrics.L("reason", "suspect"))
	}
	now := d.clk.Now()
	for _, id := range cfg.Peers {
		if id == cfg.Self {
			continue
		}
		ps := &peerState{lastSeen: now}
		if reg := cfg.Metrics; reg != nil {
			l := metrics.L("peer", string(id))
			ps.state = reg.Gauge("transport.peer.state", l)
			ps.fastfail = reg.Counter("transport.breaker.fastfail", l)
		}
		d.peers[id] = ps
	}
	d.mu.Lock()
	d.timer = d.clk.After(d.cfg.Interval, d.tick)
	d.mu.Unlock()
	return d
}

// tick runs once per interval: sweep for newly-silent peers, then
// heartbeat everyone (suspected peers included — that probe is what
// detects their recovery).
func (d *Detector) tick() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	now := d.clk.Now()
	deadline := vclock.Time(d.cfg.SuspectAfter) * d.cfg.Interval
	var newlySuspect []protocol.SiteID
	targets := make([]protocol.SiteID, 0, len(d.peers))
	for id, ps := range d.peers {
		targets = append(targets, id)
		if !ps.suspect && now-ps.lastSeen >= deadline {
			ps.suspect = true
			if ps.state != nil {
				ps.state.Set(1)
			}
			newlySuspect = append(newlySuspect, id)
		}
	}
	d.timer = d.clk.After(d.cfg.Interval, d.tick)
	d.mu.Unlock()
	for _, id := range newlySuspect {
		if d.suspects != nil {
			d.suspects.Inc()
		}
		d.logf("suspect %s (silent %v)", id, deadline)
	}
	for _, id := range targets {
		d.inner.Send(protocol.Message{Kind: protocol.MsgHeartbeat, From: d.cfg.Self, To: id})
		if d.heartbeats != nil {
			d.heartbeats.Inc()
		}
	}
}

// markAlive records proof of life from a peer, reopening the breaker if
// it was suspected.
func (d *Detector) markAlive(id protocol.SiteID) {
	if id == d.cfg.Self || id == "" {
		return
	}
	d.mu.Lock()
	ps, ok := d.peers[id]
	if !ok {
		d.mu.Unlock()
		return
	}
	ps.lastSeen = d.clk.Now()
	recovered := ps.suspect
	ps.suspect = false
	if recovered && ps.state != nil {
		ps.state.Set(0)
	}
	d.mu.Unlock()
	if recovered {
		if d.recoveries != nil {
			d.recoveries.Inc()
		}
		d.logf("peer %s alive again", id)
	}
}

// Suspected reports whether a peer is currently suspected.
func (d *Detector) Suspected(id protocol.SiteID) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	ps, ok := d.peers[id]
	return ok && ps.suspect
}

// Suspects returns the currently-suspected peers.
func (d *Detector) Suspects() []protocol.SiteID {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []protocol.SiteID
	for id, ps := range d.peers {
		if ps.suspect {
			out = append(out, id)
		}
	}
	return out
}

// Send applies the circuit breaker: non-heartbeat traffic to a
// suspected peer is dropped (and counted) without touching the inner
// transport's queues.
func (d *Detector) Send(msg protocol.Message) {
	if msg.Kind != protocol.MsgHeartbeat && msg.To != d.cfg.Self {
		d.mu.Lock()
		ps, ok := d.peers[msg.To]
		suspect := ok && ps.suspect
		d.mu.Unlock()
		if suspect {
			if ps.fastfail != nil {
				ps.fastfail.Inc()
			}
			if d.dropped != nil {
				d.dropped.Inc()
			}
			return
		}
	}
	d.inner.Send(msg)
}

// Register installs h behind the detector's inbound filter: every
// delivered message is proof the sender lives, and heartbeats are
// consumed here rather than reaching the site.
func (d *Detector) Register(site protocol.SiteID, h transport.Handler) {
	d.inner.Register(site, func(msg protocol.Message) {
		d.markAlive(msg.From)
		if msg.Kind == protocol.MsgHeartbeat {
			return
		}
		h(msg)
	})
}

// RegisterBatch forwards whole-frame delivery when the inner transport
// supports it, filtering heartbeats out of the batch in place.  A no-op
// otherwise (the plain Register path still delivers).
func (d *Detector) RegisterBatch(site protocol.SiteID, h transport.BatchHandler) {
	br, ok := d.inner.(transport.BatchReceiver)
	if !ok {
		return
	}
	br.RegisterBatch(site, func(msgs []protocol.Message) {
		kept := msgs[:0]
		for _, m := range msgs {
			d.markAlive(m.From)
			if m.Kind == protocol.MsgHeartbeat {
				continue
			}
			kept = append(kept, m)
		}
		if len(kept) > 0 {
			h(kept)
		}
	})
}

// SetDown passes through to the inner transport.
func (d *Detector) SetDown(site protocol.SiteID, down bool) { d.inner.SetDown(site, down) }

// IsDown passes through to the inner transport.
func (d *Detector) IsDown(site protocol.SiteID) bool { return d.inner.IsDown(site) }

// Close stops the heartbeat loop (and the private clock, when one was
// created) and closes the inner transport.
func (d *Detector) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	d.clk.Cancel(d.timer)
	d.mu.Unlock()
	if d.ownWall != nil {
		d.ownWall.Stop()
	}
	return d.inner.Close()
}

func (d *Detector) logf(format string, args ...any) {
	if d.cfg.Logf != nil {
		d.cfg.Logf(format, args...)
	}
}

var _ transport.Transport = (*Detector)(nil)
var _ transport.BatchReceiver = (*Detector)(nil)
