// Package value defines the simple ("exact") values stored in database
// items.  The paper's model treats item values abstractly; real
// applications (§5: funds transfer, reservations, inventory) need typed
// scalars, equality (polyvalue simplification rule 2 merges pairs with
// equal values), ordering (the reservation example grants if the *largest*
// possible count is under capacity), and a wire encoding (WAL, network).
package value

import (
	"encoding/binary"
	"fmt"
	"math"
)

// V is a simple scalar value: one of Int, Float, Str, Bool, or Nil.
// Implementations are immutable.
type V interface {
	// Kind discriminates the concrete type.
	Kind() Kind
	// Equal reports whether the two values are the same value of the same
	// kind.  Cross-kind comparisons are false (Int(1) != Float(1)).
	Equal(V) bool
	// String renders the value for humans.
	String() string
	// appendBinary appends the kind-tagged encoding.
	appendBinary(dst []byte) []byte
}

// Kind enumerates the scalar types.
type Kind uint8

const (
	KindNil Kind = iota
	KindInt
	KindFloat
	KindStr
	KindBool
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindNil:
		return "nil"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindStr:
		return "str"
	case KindBool:
		return "bool"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Nil is the absent value: the content of an item that has never been
// written.  Transactions may legitimately read and overwrite it.
type Nil struct{}

// Int is a 64-bit integer scalar (account balances, reservation counts).
type Int int64

// Float is a 64-bit floating-point scalar (process-control measurements).
type Float float64

// Str is a string scalar.
type Str string

// Bool is a boolean scalar (authorization decisions).
type Bool bool

func (Nil) Kind() Kind   { return KindNil }
func (Int) Kind() Kind   { return KindInt }
func (Float) Kind() Kind { return KindFloat }
func (Str) Kind() Kind   { return KindStr }
func (Bool) Kind() Kind  { return KindBool }

func (Nil) Equal(o V) bool { _, ok := o.(Nil); return ok }

func (v Int) Equal(o V) bool { w, ok := o.(Int); return ok && v == w }

func (v Float) Equal(o V) bool {
	w, ok := o.(Float)
	// NaN is deliberately equal to itself so polyvalue merging stays a
	// proper equivalence relation.
	return ok && (v == w || (math.IsNaN(float64(v)) && math.IsNaN(float64(w))))
}

func (v Str) Equal(o V) bool { w, ok := o.(Str); return ok && v == w }

func (v Bool) Equal(o V) bool { w, ok := o.(Bool); return ok && v == w }

func (Nil) String() string     { return "nil" }
func (v Int) String() string   { return fmt.Sprintf("%d", int64(v)) }
func (v Float) String() string { return fmt.Sprintf("%g", float64(v)) }
func (v Str) String() string   { return fmt.Sprintf("%q", string(v)) }
func (v Bool) String() string  { return fmt.Sprintf("%t", bool(v)) }

// Compare orders two values.  Values of different kinds order by kind;
// within a kind the natural order applies.  The boolean result follows
// the strings.Compare convention.  ok is false when either value is Nil
// and the other is not comparable in a meaningful way; callers that only
// deal in numerics can ignore ok after validating kinds.
func Compare(a, b V) (cmp int, ok bool) {
	if a.Kind() != b.Kind() {
		switch {
		case a.Kind() < b.Kind():
			return -1, false
		case a.Kind() > b.Kind():
			return 1, false
		}
	}
	switch x := a.(type) {
	case Nil:
		return 0, true
	case Int:
		y := b.(Int)
		switch {
		case x < y:
			return -1, true
		case x > y:
			return 1, true
		}
		return 0, true
	case Float:
		y := b.(Float)
		switch {
		case x < y:
			return -1, true
		case x > y:
			return 1, true
		}
		return 0, true
	case Str:
		y := b.(Str)
		switch {
		case x < y:
			return -1, true
		case x > y:
			return 1, true
		}
		return 0, true
	case Bool:
		y := b.(Bool)
		switch {
		case !bool(x) && bool(y):
			return -1, true
		case bool(x) && !bool(y):
			return 1, true
		}
		return 0, true
	default:
		return 0, false
	}
}

// AsInt extracts an integer, converting Float values with integral value.
func AsInt(v V) (int64, bool) {
	switch x := v.(type) {
	case Int:
		return int64(x), true
	case Float:
		if float64(x) == math.Trunc(float64(x)) && !math.IsInf(float64(x), 0) {
			return int64(x), true
		}
	}
	return 0, false
}

// AsFloat extracts a numeric value as float64.
func AsFloat(v V) (float64, bool) {
	switch x := v.(type) {
	case Int:
		return float64(x), true
	case Float:
		return float64(x), true
	}
	return 0, false
}

// IsNumeric reports whether v is Int or Float.
func IsNumeric(v V) bool {
	k := v.Kind()
	return k == KindInt || k == KindFloat
}

func (Nil) appendBinary(dst []byte) []byte { return append(dst, byte(KindNil)) }

func (v Int) appendBinary(dst []byte) []byte {
	dst = append(dst, byte(KindInt))
	return binary.AppendVarint(dst, int64(v))
}

func (v Float) appendBinary(dst []byte) []byte {
	dst = append(dst, byte(KindFloat))
	return binary.BigEndian.AppendUint64(dst, math.Float64bits(float64(v)))
}

func (v Str) appendBinary(dst []byte) []byte {
	dst = append(dst, byte(KindStr))
	dst = binary.AppendUvarint(dst, uint64(len(v)))
	return append(dst, v...)
}

func (v Bool) appendBinary(dst []byte) []byte {
	dst = append(dst, byte(KindBool))
	if v {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// AppendBinary appends v's kind-tagged encoding to dst.
func AppendBinary(dst []byte, v V) []byte { return v.appendBinary(dst) }

// MarshalBinary encodes v.
func MarshalBinary(v V) []byte { return v.appendBinary(nil) }

// DecodeBinary decodes one value from the front of buf, returning the
// value and bytes consumed.
func DecodeBinary(buf []byte) (V, int, error) {
	if len(buf) == 0 {
		return nil, 0, fmt.Errorf("value: empty buffer")
	}
	kind := Kind(buf[0])
	off := 1
	switch kind {
	case KindNil:
		return Nil{}, off, nil
	case KindInt:
		x, n := binary.Varint(buf[off:])
		if n <= 0 {
			return nil, 0, fmt.Errorf("value: truncated int")
		}
		return Int(x), off + n, nil
	case KindFloat:
		if len(buf) < off+8 {
			return nil, 0, fmt.Errorf("value: truncated float")
		}
		bits := binary.BigEndian.Uint64(buf[off:])
		return Float(math.Float64frombits(bits)), off + 8, nil
	case KindStr:
		ln, n := binary.Uvarint(buf[off:])
		if n <= 0 {
			return nil, 0, fmt.Errorf("value: truncated string length")
		}
		off += n
		if ln > uint64(len(buf)-off) { // uint64 compare: no overflow
			return nil, 0, fmt.Errorf("value: truncated string")
		}
		return Str(buf[off : off+int(ln)]), off + int(ln), nil
	case KindBool:
		if len(buf) < off+1 {
			return nil, 0, fmt.Errorf("value: truncated bool")
		}
		return Bool(buf[off] == 1), off + 1, nil
	default:
		return nil, 0, fmt.Errorf("value: unknown kind %d", kind)
	}
}
