package value

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestKinds(t *testing.T) {
	cases := []struct {
		v V
		k Kind
	}{
		{Nil{}, KindNil}, {Int(3), KindInt}, {Float(2.5), KindFloat},
		{Str("x"), KindStr}, {Bool(true), KindBool},
	}
	for _, c := range cases {
		if c.v.Kind() != c.k {
			t.Errorf("%v.Kind() = %v, want %v", c.v, c.v.Kind(), c.k)
		}
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		KindNil: "nil", KindInt: "int", KindFloat: "float",
		KindStr: "str", KindBool: "bool", Kind(99): "kind(99)",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestEqual(t *testing.T) {
	if !Int(5).Equal(Int(5)) || Int(5).Equal(Int(6)) {
		t.Error("Int equality wrong")
	}
	if Int(1).Equal(Float(1)) {
		t.Error("cross-kind equality should be false")
	}
	if !Str("a").Equal(Str("a")) || Str("a").Equal(Str("b")) {
		t.Error("Str equality wrong")
	}
	if !Bool(true).Equal(Bool(true)) || Bool(true).Equal(Bool(false)) {
		t.Error("Bool equality wrong")
	}
	if !(Nil{}).Equal(Nil{}) || (Nil{}).Equal(Int(0)) {
		t.Error("Nil equality wrong")
	}
	nan := Float(math.NaN())
	if !nan.Equal(nan) {
		t.Error("NaN must equal itself for polyvalue merging")
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b V
		cmp  int
		ok   bool
	}{
		{Int(1), Int(2), -1, true},
		{Int(2), Int(2), 0, true},
		{Int(3), Int(2), 1, true},
		{Float(1.5), Float(2.5), -1, true},
		{Str("a"), Str("b"), -1, true},
		{Bool(false), Bool(true), -1, true},
		{Bool(true), Bool(true), 0, true},
		{Nil{}, Nil{}, 0, true},
		{Int(1), Float(1), -1, false}, // cross-kind: ordered by kind, not ok
	}
	for _, c := range cases {
		cmp, ok := Compare(c.a, c.b)
		if cmp != c.cmp || ok != c.ok {
			t.Errorf("Compare(%v, %v) = %d,%v want %d,%v", c.a, c.b, cmp, ok, c.cmp, c.ok)
		}
	}
}

func TestAsIntAsFloat(t *testing.T) {
	if n, ok := AsInt(Int(7)); !ok || n != 7 {
		t.Errorf("AsInt(Int(7)) = %d,%v", n, ok)
	}
	if n, ok := AsInt(Float(3.0)); !ok || n != 3 {
		t.Errorf("AsInt(Float(3.0)) = %d,%v", n, ok)
	}
	if _, ok := AsInt(Float(3.5)); ok {
		t.Error("AsInt(3.5) should fail")
	}
	if _, ok := AsInt(Str("3")); ok {
		t.Error("AsInt(Str) should fail")
	}
	if f, ok := AsFloat(Int(2)); !ok || f != 2 {
		t.Errorf("AsFloat(Int(2)) = %g,%v", f, ok)
	}
	if _, ok := AsFloat(Bool(true)); ok {
		t.Error("AsFloat(Bool) should fail")
	}
	if !IsNumeric(Int(1)) || !IsNumeric(Float(1)) || IsNumeric(Str("x")) {
		t.Error("IsNumeric wrong")
	}
}

func TestStrings(t *testing.T) {
	cases := map[string]V{
		"nil": Nil{}, "42": Int(42), "2.5": Float(2.5),
		`"hi"`: Str("hi"), "true": Bool(true),
	}
	for want, v := range cases {
		if v.String() != want {
			t.Errorf("%T.String() = %q, want %q", v, v.String(), want)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	vals := []V{
		Nil{}, Int(0), Int(-12345), Int(math.MaxInt64), Float(3.14159),
		Float(math.Inf(1)), Str(""), Str("hello world"), Bool(true), Bool(false),
	}
	for _, v := range vals {
		data := MarshalBinary(v)
		back, n, err := DecodeBinary(data)
		if err != nil {
			t.Fatalf("decode %v: %v", v, err)
		}
		if n != len(data) {
			t.Errorf("decode %v consumed %d of %d bytes", v, n, len(data))
		}
		if !back.Equal(v) {
			t.Errorf("round trip %v -> %v", v, back)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := DecodeBinary(nil); err == nil {
		t.Error("empty buffer accepted")
	}
	if _, _, err := DecodeBinary([]byte{200}); err == nil {
		t.Error("unknown kind accepted")
	}
	// Truncate each encoding by one byte.
	for _, v := range []V{Int(300), Float(1.5), Str("abc"), Bool(true)} {
		data := MarshalBinary(v)
		if _, _, err := DecodeBinary(data[:len(data)-1]); err == nil {
			t.Errorf("truncated %v accepted", v)
		}
	}
}

// randValue generates an arbitrary scalar.
func randValue(r *rand.Rand) V {
	switch r.Intn(5) {
	case 0:
		return Nil{}
	case 1:
		return Int(r.Int63n(2000) - 1000)
	case 2:
		return Float(r.NormFloat64() * 100)
	case 3:
		letters := []byte("abcdefgh")
		n := r.Intn(8)
		b := make([]byte, n)
		for i := range b {
			b[i] = letters[r.Intn(len(letters))]
		}
		return Str(b)
	default:
		return Bool(r.Intn(2) == 0)
	}
}

type valuePair struct{ A, B V }

func (valuePair) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(valuePair{A: randValue(r), B: randValue(r)})
}

func TestPropEqualSymmetricAndBinaryStable(t *testing.T) {
	f := func(p valuePair) bool {
		if p.A.Equal(p.B) != p.B.Equal(p.A) {
			return false
		}
		back, n, err := DecodeBinary(MarshalBinary(p.A))
		if err != nil || n != len(MarshalBinary(p.A)) {
			return false
		}
		return back.Equal(p.A)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPropCompareConsistentWithEqual(t *testing.T) {
	f := func(p valuePair) bool {
		cmp, ok := Compare(p.A, p.B)
		if p.A.Equal(p.B) {
			return ok && cmp == 0
		}
		// Unequal same-kind values must not compare equal (except the
		// Nil/Nil case which is always equal).
		if p.A.Kind() == p.B.Kind() && ok && cmp == 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
