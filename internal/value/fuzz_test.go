package value

import "testing"

// FuzzDecodeBinary: arbitrary bytes must never panic the scalar decoder;
// whatever decodes must re-encode/decode to an equal value.
func FuzzDecodeBinary(f *testing.F) {
	for _, v := range []V{Nil{}, Int(-3), Float(2.5), Str("abc"), Bool(true)} {
		f.Add(MarshalBinary(v))
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x01, 0x02})
	f.Fuzz(func(t *testing.T, data []byte) {
		v, n, err := DecodeBinary(data)
		if err != nil {
			return
		}
		if n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		back, m, err := DecodeBinary(MarshalBinary(v))
		if err != nil || m != len(MarshalBinary(v)) {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !back.Equal(v) {
			t.Fatalf("round trip changed %v to %v", v, back)
		}
	})
}
