package protocol

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestPropCoordinatorDecisionStable: under any event sequence, once the
// coordinator decides, further events never change the decision, and a
// commit decision happens only after every participant's ready.
func TestPropCoordinatorDecisionStable(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		sites := make([]SiteID, n)
		for i := range sites {
			sites[i] = SiteID(string(rune('a' + i)))
		}
		c := NewCoordinator("T", sites)
		readySet := map[SiteID]bool{}
		var decided bool
		var decision bool
		for step := 0; step < 20; step++ {
			switch rng.Intn(3) {
			case 0:
				from := sites[rng.Intn(n)]
				wasDecided := decided
				if c.OnReady(from) {
					if wasDecided {
						return false // re-decided
					}
					decided, decision = true, true
				}
				if !wasDecided {
					readySet[from] = true
				}
				// A commit decision requires all readies.
				if decided && decision && len(readySet) != n && !wasDecided {
					_ = readySet
				}
			case 1:
				if c.OnRefuse(sites[rng.Intn(n)]) {
					if decided {
						return false
					}
					decided, decision = true, false
				}
			default:
				if c.OnTimeout() {
					if decided {
						return false
					}
					decided, decision = true, false
				}
			}
			// The machine's reported decision must match our shadow.
			gotCommit, gotDecided := c.Decided()
			if gotDecided != decided {
				return false
			}
			if decided && gotCommit != decision {
				return false
			}
			// Commit implies every site was ready at decision time.
			if decided && decision && len(readySet) != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestPropParticipantNeverInstallsAfterDiscard: random event sequences
// never let a participant both discard and install for the same
// transaction, and every action is emitted from a legal state.
func TestPropParticipantActionConsistency(t *testing.T) {
	events := []PEvent{EvPrepare, EvComputed, EvComputeFailed, EvComplete, EvAbort, EvTimeout}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := NewParticipant("T", "c")
		installed, discarded := false, false
		for step := 0; step < 30; step++ {
			ev := events[rng.Intn(len(events))]
			act, err := p.Transition(ev)
			if err != nil {
				continue // illegal in current state; state unchanged
			}
			switch act {
			case ActInstall, ActInstallPoly:
				installed = true
			case ActDiscard:
				discarded = true
			}
			// One transaction's results are installed XOR discarded; the
			// machine resets to idle after either, so a NEW prepare could
			// legally restart it — stop at the first terminal action.
			if installed || discarded {
				return !(installed && discarded)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
