package protocol

import (
	"testing"
)

// TestFigure1Conformance drives the participant through every edge of
// Figure 1 and verifies the transition relation matches the paper's
// state diagram exactly: idle --prepare--> compute; compute --computed-->
// wait (send ready); compute --{failure,abort}--> idle (discard); wait
// --complete--> idle (install); wait --abort--> idle (discard); wait
// --timeout--> idle (install polyvalues).
func TestFigure1Conformance(t *testing.T) {
	for _, tr := range Transitions() {
		p := NewParticipant("T1", "coord")
		// Walk the machine into tr.From.
		switch tr.From {
		case StateCompute:
			mustTransition(t, p, EvPrepare, ActCompute)
		case StateWait:
			mustTransition(t, p, EvPrepare, ActCompute)
			mustTransition(t, p, EvComputed, ActSendReady)
		}
		if p.State() != tr.From {
			t.Fatalf("setup failed: at %v, want %v", p.State(), tr.From)
		}
		act, err := p.Transition(tr.Event)
		if err != nil {
			t.Fatalf("%v --%v-->: %v", tr.From, tr.Event, err)
		}
		if act != tr.Action {
			t.Errorf("%v --%v--> action %v, want %v", tr.From, tr.Event, act, tr.Action)
		}
		if p.State() != tr.To {
			t.Errorf("%v --%v--> state %v, want %v", tr.From, tr.Event, p.State(), tr.To)
		}
	}
}

// TestFigure1Completeness: the enumerated relation covers exactly the
// legal (state, event) pairs; everything else errors and leaves the state
// unchanged.
func TestFigure1Completeness(t *testing.T) {
	legal := map[PState]map[PEvent]bool{}
	for _, tr := range Transitions() {
		if legal[tr.From] == nil {
			legal[tr.From] = map[PEvent]bool{}
		}
		legal[tr.From][tr.Event] = true
	}
	states := []PState{StateIdle, StateCompute, StateWait}
	events := []PEvent{EvPrepare, EvComputed, EvComputeFailed, EvComplete, EvAbort, EvTimeout}
	for _, st := range states {
		for _, ev := range events {
			p := NewParticipant("T1", "coord")
			switch st {
			case StateCompute:
				mustTransition(t, p, EvPrepare, ActCompute)
			case StateWait:
				mustTransition(t, p, EvPrepare, ActCompute)
				mustTransition(t, p, EvComputed, ActSendReady)
			}
			act, err := p.Transition(ev)
			if legal[st][ev] {
				if err != nil {
					t.Errorf("legal %v --%v--> errored: %v", st, ev, err)
				}
				continue
			}
			if err == nil {
				t.Errorf("illegal %v --%v--> accepted with action %v", st, ev, act)
			}
			if p.State() != st {
				t.Errorf("illegal event moved state %v -> %v", st, p.State())
			}
			if act != ActNone {
				t.Errorf("illegal event produced action %v", act)
			}
		}
	}
}

func mustTransition(t *testing.T, p *Participant, ev PEvent, want PAction) {
	t.Helper()
	act, err := p.Transition(ev)
	if err != nil {
		t.Fatalf("transition %v: %v", ev, err)
	}
	if act != want {
		t.Fatalf("transition %v: action %v, want %v", ev, act, want)
	}
}

func TestParticipantHappyPath(t *testing.T) {
	p := NewParticipant("T1", "c")
	mustTransition(t, p, EvPrepare, ActCompute)
	mustTransition(t, p, EvComputed, ActSendReady)
	mustTransition(t, p, EvComplete, ActInstall)
	if p.State() != StateIdle {
		t.Errorf("final state %v", p.State())
	}
}

func TestParticipantTimeoutInstallsPolyvalues(t *testing.T) {
	p := NewParticipant("T1", "c")
	mustTransition(t, p, EvPrepare, ActCompute)
	mustTransition(t, p, EvComputed, ActSendReady)
	mustTransition(t, p, EvTimeout, ActInstallPoly)
	if p.State() != StateIdle {
		t.Errorf("final state %v — the site must return to idle and keep processing", p.State())
	}
}

func TestCoordinatorCommit(t *testing.T) {
	c := NewCoordinator("T1", []SiteID{"a", "b", "c"})
	if c.State() != CCollecting {
		t.Fatalf("initial state %v", c.State())
	}
	if c.OnReady("a") || c.OnReady("b") {
		t.Error("decided before all readies")
	}
	if !c.OnReady("c") {
		t.Error("final ready did not decide commit")
	}
	committed, decided := c.Decided()
	if !decided || !committed {
		t.Errorf("Decided = %v,%v", committed, decided)
	}
}

func TestCoordinatorDecisionImmutable(t *testing.T) {
	c := NewCoordinator("T1", []SiteID{"a"})
	if !c.OnReady("a") {
		t.Fatal("ready did not decide")
	}
	if c.OnTimeout() {
		t.Error("timeout after commit changed decision")
	}
	if c.OnRefuse("a") {
		t.Error("refuse after commit changed decision")
	}
	if committed, _ := c.Decided(); !committed {
		t.Error("decision mutated")
	}
	// And the abort side.
	c2 := NewCoordinator("T2", []SiteID{"a", "b"})
	if !c2.OnTimeout() {
		t.Fatal("timeout did not decide abort")
	}
	if c2.OnReady("a") || c2.OnReady("b") {
		t.Error("late readies changed aborted decision")
	}
	if committed, decided := c2.Decided(); committed || !decided {
		t.Errorf("Decided = %v,%v", committed, decided)
	}
}

func TestCoordinatorDuplicateAndUnknownReady(t *testing.T) {
	c := NewCoordinator("T1", []SiteID{"a", "b"})
	c.OnReady("a")
	if c.OnReady("a") {
		t.Error("duplicate ready decided commit")
	}
	if c.OnReady("zz") {
		t.Error("unknown site's ready decided commit")
	}
	if !c.OnReady("b") {
		t.Error("final ready did not decide")
	}
}

func TestCoordinatorRefuseAborts(t *testing.T) {
	c := NewCoordinator("T1", []SiteID{"a", "b"})
	c.OnReady("a")
	if !c.OnRefuse("b") {
		t.Error("refuse did not decide abort")
	}
	if c.State() != CAborted {
		t.Errorf("state %v", c.State())
	}
}

func TestCoordinatorParticipants(t *testing.T) {
	c := NewCoordinator("T1", []SiteID{"b", "a"})
	ps := c.Participants()
	if len(ps) != 2 || ps[0] != "a" || ps[1] != "b" {
		t.Errorf("Participants = %v", ps)
	}
}

func TestStringers(t *testing.T) {
	if StateIdle.String() != "idle" || StateCompute.String() != "compute" || StateWait.String() != "wait" {
		t.Error("PState strings wrong")
	}
	if PState(9).String() != "state(9)" || PEvent(99).String() != "event(99)" ||
		PAction(99).String() != "action(99)" || CState(99).String() != "cstate(99)" ||
		MsgKind(99).String() != "msg(99)" {
		t.Error("fallback strings wrong")
	}
	for _, e := range []PEvent{EvPrepare, EvComputed, EvComputeFailed, EvComplete, EvAbort, EvTimeout} {
		if e.String() == "" {
			t.Error("empty event name")
		}
	}
	for _, k := range []MsgKind{MsgReadReq, MsgReadRep, MsgPrepare, MsgReady, MsgRefuse, MsgComplete, MsgAbort, MsgOutcomeReq, MsgOutcomeInfo, MsgOutcomeAck} {
		if k.String() == "" {
			t.Error("empty message kind name")
		}
	}
	m := Message{Kind: MsgReady, From: "a", To: "b", TID: "T1"}
	if m.String() != "ready a->b tid=T1" {
		t.Errorf("Message.String = %q", m.String())
	}
}
