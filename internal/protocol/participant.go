package protocol

import (
	"fmt"

	"repro/internal/polyvalue"
	"repro/internal/txn"
)

// PState is a participant's per-transaction state, exactly Figure 1 of
// the paper: idle, compute, wait.
type PState uint8

const (
	// StateIdle: "a site is ready to begin a new transaction".
	StateIdle PState = iota
	// StateCompute: "a site computes the results of a transaction".
	StateCompute
	// StateWait: results computed, ready sent, awaiting the outcome.
	StateWait
)

// String names the state as in Figure 1.
func (s PState) String() string {
	switch s {
	case StateIdle:
		return "idle"
	case StateCompute:
		return "compute"
	case StateWait:
		return "wait"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// PEvent is an input to the participant machine.
type PEvent uint8

const (
	// EvPrepare: a prepare message arrived (begin compute phase).
	EvPrepare PEvent = iota + 1
	// EvComputed: local computation finished successfully.
	EvComputed
	// EvComputeFailed: local computation could not finish (lock conflict,
	// type error, or a failure preventing it) — "that site simply
	// discards the computation performed".
	EvComputeFailed
	// EvComplete: the coordinator's complete message arrived.
	EvComplete
	// EvAbort: the coordinator's abort message arrived.
	EvAbort
	// EvTimeout: neither complete nor abort arrived promptly.
	EvTimeout
)

// String names the event.
func (e PEvent) String() string {
	switch e {
	case EvPrepare:
		return "prepare"
	case EvComputed:
		return "computed"
	case EvComputeFailed:
		return "compute-failed"
	case EvComplete:
		return "complete"
	case EvAbort:
		return "abort"
	case EvTimeout:
		return "timeout"
	default:
		return fmt.Sprintf("event(%d)", uint8(e))
	}
}

// PAction is the output the runtime must perform after a transition.
type PAction uint8

const (
	// ActNone: nothing to do.
	ActNone PAction = iota
	// ActCompute: run the compute phase (evaluate the transaction against
	// local + supplied remote values).
	ActCompute
	// ActSendReady: report readiness to the coordinator and arm the
	// wait-phase timer.
	ActSendReady
	// ActDiscard: drop any computed results; the transaction is over at
	// this site.
	ActDiscard
	// ActInstall: make the computed results current; the transaction
	// committed.
	ActInstall
	// ActInstallPoly: the outcome is unknown — install polyvalues
	// {<new, T>, <old, !T>} for each updated item and return to idle.
	ActInstallPoly
)

// String names the action.
func (a PAction) String() string {
	switch a {
	case ActNone:
		return "none"
	case ActCompute:
		return "compute"
	case ActSendReady:
		return "send-ready"
	case ActDiscard:
		return "discard"
	case ActInstall:
		return "install"
	case ActInstallPoly:
		return "install-poly"
	default:
		return fmt.Sprintf("action(%d)", uint8(a))
	}
}

// Participant is the per-transaction state machine run by each site
// involved in a transaction.  It is a pure Mealy machine; the runtime
// owns timers, storage and messaging and performs the returned actions.
type Participant struct {
	TID         txn.ID
	Coordinator SiteID
	state       PState

	// Computed holds the new values for local items once the compute
	// phase finishes; the runtime stores them here so Install /
	// InstallPoly actions can use them.
	Computed map[string]polyvalue.Poly
	// Previous holds the pre-transaction values of the same items, needed
	// to build {<new, T>, <old, !T>} polyvalues.
	Previous map[string]polyvalue.Poly

	ins *Instruments
}

// NewParticipant returns a participant in the idle state.
func NewParticipant(tid txn.ID, coord SiteID) *Participant {
	return &Participant{TID: tid, Coordinator: coord, state: StateIdle}
}

// State returns the current Figure 1 state.
func (p *Participant) State() PState { return p.state }

// Transition consumes an event and returns the action the runtime must
// perform.  Illegal (state, event) combinations return an error and leave
// the state unchanged; the runtime treats these as protocol violations
// (in practice they arise only from duplicated or very late messages,
// which the runtime filters before calling Transition).
func (p *Participant) Transition(ev PEvent) (PAction, error) {
	act, err := p.transition(ev)
	if err == nil {
		p.countTransition(ev, act)
	}
	return act, err
}

func (p *Participant) transition(ev PEvent) (PAction, error) {
	switch p.state {
	case StateIdle:
		if ev == EvPrepare {
			p.state = StateCompute
			return ActCompute, nil
		}
	case StateCompute:
		switch ev {
		case EvComputed:
			p.state = StateWait
			return ActSendReady, nil
		case EvComputeFailed, EvAbort:
			// "If a failure delays the completion of the compute phase
			// ... that site simply discards the computation performed."
			p.state = StateIdle
			return ActDiscard, nil
		}
	case StateWait:
		switch ev {
		case EvComplete:
			p.state = StateIdle
			return ActInstall, nil
		case EvAbort:
			p.state = StateIdle
			return ActDiscard, nil
		case EvTimeout:
			// "If neither a complete nor an abort message is received ...
			// it installs polyvalues for the results of that transaction."
			p.state = StateIdle
			return ActInstallPoly, nil
		}
	}
	return ActNone, fmt.Errorf("protocol: participant %s in %s cannot handle %s", p.TID, p.state, ev)
}

// Transitions enumerates the full transition relation of Figure 1, for
// the conformance test and the cmd/polytables figure renderer.
func Transitions() []struct {
	From   PState
	Event  PEvent
	To     PState
	Action PAction
} {
	return []struct {
		From   PState
		Event  PEvent
		To     PState
		Action PAction
	}{
		{StateIdle, EvPrepare, StateCompute, ActCompute},
		{StateCompute, EvComputed, StateWait, ActSendReady},
		{StateCompute, EvComputeFailed, StateIdle, ActDiscard},
		{StateCompute, EvAbort, StateIdle, ActDiscard},
		{StateWait, EvComplete, StateIdle, ActInstall},
		{StateWait, EvAbort, StateIdle, ActDiscard},
		{StateWait, EvTimeout, StateIdle, ActInstallPoly},
	}
}
