// Package protocol implements the paper's update protocol (§3.1,
// Figure 1): a two-phase commit in which a participant that times out in
// the wait phase installs polyvalues instead of blocking.
//
// The participant and coordinator are pure state machines: they consume
// events and emit actions, with no transport, storage, or clock of their
// own.  The cluster runtime (goroutine actors over a simulated network)
// and the Figure 1 conformance tests drive the same code.
package protocol

import (
	"fmt"
	"time"

	"repro/internal/polyvalue"
	"repro/internal/txn"
)

// SiteID names a site (a node holding a partition of the database).
type SiteID string

// MsgKind enumerates protocol messages.
type MsgKind uint8

const (
	// MsgReadReq asks a site for the current (possibly poly) values of
	// named items, on behalf of a transaction's compute phase.
	MsgReadReq MsgKind = iota + 1
	// MsgReadRep returns the requested values.
	MsgReadRep
	// MsgPrepare carries the transaction to a participant: program source
	// plus the values of remote read items, so the participant can
	// compute new values for the items it holds.
	MsgPrepare
	// MsgReady reports a participant finished its compute phase
	// ("it then reports that it is ready ... by sending a ready message").
	MsgReady
	// MsgRefuse reports the participant cannot perform the transaction
	// (lock conflict or computation error); the coordinator will abort.
	MsgRefuse
	// MsgComplete instructs participants to install computed results.
	MsgComplete
	// MsgAbort instructs participants to discard computed results.
	MsgAbort
	// MsgOutcomeReq asks the coordinator (or any site that knows) for the
	// outcome of a transaction, during failure recovery (§3.3).
	MsgOutcomeReq
	// MsgOutcomeInfo announces a transaction's outcome so holders of
	// dependent polyvalues can reduce them (§3.3).
	MsgOutcomeInfo
	// MsgOutcomeAck tells the coordinator a participant has fully settled
	// the transaction, so the coordinator can eventually forget the
	// outcome record (§3.3: "any data structures used to keep track of
	// the transaction outcome should be quickly deleted when no longer
	// needed").
	MsgOutcomeAck
	// MsgHeartbeat is a transport-level liveness probe: the failure
	// detector sends one per interval to every peer and treats any
	// inbound traffic as proof of life.  Carries no transaction state;
	// sites ignore it (the detector consumes it below the cluster).
	MsgHeartbeat
)

// String names the message kind.
func (k MsgKind) String() string {
	switch k {
	case MsgReadReq:
		return "read-req"
	case MsgReadRep:
		return "read-rep"
	case MsgPrepare:
		return "prepare"
	case MsgReady:
		return "ready"
	case MsgRefuse:
		return "refuse"
	case MsgComplete:
		return "complete"
	case MsgAbort:
		return "abort"
	case MsgOutcomeReq:
		return "outcome-req"
	case MsgOutcomeInfo:
		return "outcome-info"
	case MsgOutcomeAck:
		return "outcome-ack"
	case MsgHeartbeat:
		return "heartbeat"
	default:
		return fmt.Sprintf("msg(%d)", uint8(k))
	}
}

// Message is one protocol message.  Fields beyond Kind/TID/From/To are
// populated per kind; unused fields are zero.
type Message struct {
	Kind MsgKind
	TID  txn.ID
	From SiteID
	To   SiteID

	// MsgReadReq: items requested.  MsgPrepare: the items this
	// participant holds (its share of the write set).
	Items []string
	// MsgReadReq: whether the read is on behalf of an update transaction
	// and must lock the items (false for §3.4 read-only queries).
	Lock bool
	// MsgReadRep and MsgPrepare: item values (current values for
	// read-rep; remote read values for prepare).
	Values map[string]polyvalue.Poly
	// MsgPrepare: transaction body source text.
	Program string
	// MsgPrepare: the coordinator to whom ready is sent and from whom
	// the outcome can later be requested.
	Coordinator SiteID
	// MsgRefuse: human-readable reason, for tracing.
	Reason string
	// MsgReady: the participant held only read items and has already
	// released them (the classic read-only 2PC optimization); it needs no
	// complete/abort and must not be waited on for outcome acks.
	ReadOnly bool
	// MsgOutcomeInfo: the outcome.
	Committed bool
	// MsgReadReq and MsgPrepare: the transaction's remaining time budget
	// as of the send, zero when no deadline is set.  Remaining time
	// rather than an absolute instant, because wall clocks of separate
	// processes share no epoch; the receiver re-anchors it against its
	// own clock.  Expired work is aborted (coordinator) or resolved per
	// policy (participant) instead of camping on locks.
	Deadline time.Duration
	// MsgReadReq and MsgPrepare: the coordinator's root span ID for this
	// transaction, so participant-side spans parent into the same causal
	// tree.  Zero when span tracing is off — the common case — and then
	// absent from the wire encoding entirely (see internal/wire payload
	// version 4), so tracing costs nothing when unused.
	TraceCtx uint64
}

// String renders a compact trace line for the message.
func (m Message) String() string {
	return fmt.Sprintf("%s %s->%s tid=%s", m.Kind, m.From, m.To, m.TID)
}
