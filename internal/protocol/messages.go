// Package protocol implements the paper's update protocol (§3.1,
// Figure 1): a two-phase commit in which a participant that times out in
// the wait phase installs polyvalues instead of blocking.
//
// The participant and coordinator are pure state machines: they consume
// events and emit actions, with no transport, storage, or clock of their
// own.  The cluster runtime (goroutine actors over a simulated network)
// and the Figure 1 conformance tests drive the same code.
package protocol

import (
	"fmt"
	"time"

	"repro/internal/polyvalue"
	"repro/internal/txn"
)

// SiteID names a site (a node holding a partition of the database).
type SiteID string

// MsgKind enumerates protocol messages.
type MsgKind uint8

const (
	// MsgReadReq asks a site for the current (possibly poly) values of
	// named items, on behalf of a transaction's compute phase.
	MsgReadReq MsgKind = iota + 1
	// MsgReadRep returns the requested values.
	MsgReadRep
	// MsgPrepare carries the transaction to a participant: program source
	// plus the values of remote read items, so the participant can
	// compute new values for the items it holds.
	MsgPrepare
	// MsgReady reports a participant finished its compute phase
	// ("it then reports that it is ready ... by sending a ready message").
	MsgReady
	// MsgRefuse reports the participant cannot perform the transaction
	// (lock conflict or computation error); the coordinator will abort.
	MsgRefuse
	// MsgComplete instructs participants to install computed results.
	MsgComplete
	// MsgAbort instructs participants to discard computed results.
	MsgAbort
	// MsgOutcomeReq asks the coordinator (or any site that knows) for the
	// outcome of a transaction, during failure recovery (§3.3).
	MsgOutcomeReq
	// MsgOutcomeInfo announces a transaction's outcome so holders of
	// dependent polyvalues can reduce them (§3.3).
	MsgOutcomeInfo
	// MsgOutcomeAck tells the coordinator a participant has fully settled
	// the transaction, so the coordinator can eventually forget the
	// outcome record (§3.3: "any data structures used to keep track of
	// the transaction outcome should be quickly deleted when no longer
	// needed").
	MsgOutcomeAck
	// MsgHeartbeat is a transport-level liveness probe: the failure
	// detector sends one per interval to every peer and treats any
	// inbound traffic as proof of life.  Carries no transaction state;
	// sites ignore it (the detector consumes it below the cluster).
	MsgHeartbeat

	// The MsgPaxos* kinds implement the Paxos Commit decision plane
	// (Gray & Lamport, "Consensus on Transaction Commit"): one Paxos
	// instance per participant-vote, replicated across 2F+1 acceptor
	// sites so the commit/abort decision survives F failures.  All of
	// them use wire payload version 5 (Ballot / Participants /
	// PaxosState fields below).

	// MsgPaxosBegin is the registrar record: the coordinator tells every
	// acceptor the transaction's participant set (the instance set of
	// the decision) and its own identity, so a takeover leader can learn
	// both from any quorum.
	MsgPaxosBegin
	// MsgPaxosPrepare is Paxos phase 1a for every instance of one
	// transaction at once: a would-be leader asks acceptors to promise
	// Ballot and report what they have accepted.
	MsgPaxosPrepare
	// MsgPaxosPromise is phase 1b: the acceptor's promise for Ballot,
	// carrying its accepted (ballot, vote) per instance in PaxosState
	// and the participant set it learned from MsgPaxosBegin.
	MsgPaxosPromise
	// MsgPaxosAccept is phase 2a: a proposal to accept the PaxosState
	// entries at Ballot.  At ballot 0 it is the participant's own vote
	// sent straight to the acceptors (the fast path); at higher ballots
	// it comes from a takeover leader.  Coordinator names the leader the
	// acceptor's 2b reply must go to.
	MsgPaxosAccept
	// MsgPaxosAccepted is phase 2b: the acceptor durably accepted the
	// PaxosState entries at Ballot.
	MsgPaxosAccepted
	// MsgPaxosReject is the nack for phases 1a/2a: the acceptor has
	// promised a higher ballot (carried in Ballot) and the sender must
	// retry above it.
	MsgPaxosReject
	// MsgPaxosDecision is the learn message: the leader that saw a
	// choice quorum tells acceptors the final outcome (Committed), so
	// they can persist it, answer outcome inquiries, and garbage-collect
	// instance state.
	MsgPaxosDecision

	// The MsgAntiEntropy* kinds implement the epidemic outcome/version
	// gossip plane (Bayou-style anti-entropy): sites periodically
	// exchange compact digests of known transaction outcomes and local
	// replica versions with a random peer, so dependency-table knowledge
	// and fresh replica values cross partitions without coordinator
	// involvement.  All of them use wire payload version 6 (the Versions
	// / Outcomes fields below).

	// MsgAntiEntropyDigest opens one gossip round: the initiator's
	// recent transaction outcomes (Outcomes) and the effective versions
	// of the replicas it hosts, keyed by LOGICAL item name (Versions —
	// replicas have different physical names on each site, so gossip
	// speaks the logical namespace).
	MsgAntiEntropyDigest
	// MsgAntiEntropyReply answers a digest: outcomes the initiator was
	// missing (Outcomes), fresher replica values the responder holds
	// (Versions + Values, logical names), and the logical items the
	// responder wants newer values for (Items).
	MsgAntiEntropyReply
	// MsgAntiEntropyUpdate closes the round: the initiator ships the
	// newer values the responder asked for (Versions + Values, logical
	// names).
	MsgAntiEntropyUpdate

	// MsgReadRelease tells a probed site the coordinator assembled its
	// quorum without it: drop the transaction's read locks if they are
	// still idle (never prepared), otherwise ignore.  Unlike MsgAbort it
	// never records an outcome, so it is safe to send to sites whose
	// probe may have been lost — a stale or misdelivered release is a
	// no-op.
	MsgReadRelease
)

// Paxos reports whether k is one of the Paxos Commit decision-plane
// kinds (wire payload version 5).
func (k MsgKind) Paxos() bool {
	return k >= MsgPaxosBegin && k <= MsgPaxosDecision
}

// AntiEntropy reports whether k is one of the gossip-plane kinds (wire
// payload version 6).
func (k MsgKind) AntiEntropy() bool {
	return k >= MsgAntiEntropyDigest && k <= MsgAntiEntropyUpdate
}

// String names the message kind.
func (k MsgKind) String() string {
	switch k {
	case MsgReadReq:
		return "read-req"
	case MsgReadRep:
		return "read-rep"
	case MsgPrepare:
		return "prepare"
	case MsgReady:
		return "ready"
	case MsgRefuse:
		return "refuse"
	case MsgComplete:
		return "complete"
	case MsgAbort:
		return "abort"
	case MsgOutcomeReq:
		return "outcome-req"
	case MsgOutcomeInfo:
		return "outcome-info"
	case MsgOutcomeAck:
		return "outcome-ack"
	case MsgHeartbeat:
		return "heartbeat"
	case MsgPaxosBegin:
		return "paxos-begin"
	case MsgPaxosPrepare:
		return "paxos-prepare"
	case MsgPaxosPromise:
		return "paxos-promise"
	case MsgPaxosAccept:
		return "paxos-accept"
	case MsgPaxosAccepted:
		return "paxos-accepted"
	case MsgPaxosReject:
		return "paxos-reject"
	case MsgPaxosDecision:
		return "paxos-decision"
	case MsgAntiEntropyDigest:
		return "anti-entropy-digest"
	case MsgAntiEntropyReply:
		return "anti-entropy-reply"
	case MsgAntiEntropyUpdate:
		return "anti-entropy-update"
	case MsgReadRelease:
		return "read-release"
	default:
		return fmt.Sprintf("msg(%d)", uint8(k))
	}
}

// Message is one protocol message.  Fields beyond Kind/TID/From/To are
// populated per kind; unused fields are zero.
type Message struct {
	Kind MsgKind
	TID  txn.ID
	From SiteID
	To   SiteID

	// MsgReadReq: items requested.  MsgPrepare: the items this
	// participant holds (its share of the write set).
	Items []string
	// MsgReadReq: whether the read is on behalf of an update transaction
	// and must lock the items (false for §3.4 read-only queries).
	Lock bool
	// MsgReadRep and MsgPrepare: item values (current values for
	// read-rep; remote read values for prepare).
	Values map[string]polyvalue.Poly
	// MsgPrepare: transaction body source text.
	Program string
	// MsgPrepare: the coordinator to whom ready is sent and from whom
	// the outcome can later be requested.
	Coordinator SiteID
	// MsgRefuse: human-readable reason, for tracing.
	Reason string
	// MsgReady: the participant held only read items and has already
	// released them (the classic read-only 2PC optimization); it needs no
	// complete/abort and must not be waited on for outcome acks.
	ReadOnly bool
	// MsgOutcomeInfo: the outcome.
	Committed bool
	// MsgReadReq and MsgPrepare: the transaction's remaining time budget
	// as of the send, zero when no deadline is set.  Remaining time
	// rather than an absolute instant, because wall clocks of separate
	// processes share no epoch; the receiver re-anchors it against its
	// own clock.  Expired work is aborted (coordinator) or resolved per
	// policy (participant) instead of camping on locks.
	Deadline time.Duration
	// MsgReadReq and MsgPrepare: the coordinator's root span ID for this
	// transaction, so participant-side spans parent into the same causal
	// tree.  Zero when span tracing is off — the common case — and then
	// absent from the wire encoding entirely (see internal/wire payload
	// version 4), so tracing costs nothing when unused.
	TraceCtx uint64

	// MsgPaxos* only (wire payload version 5; zero elsewhere):

	// Ballot is the Paxos ballot the message speaks for: the proposal
	// ballot on prepare/accept, the promised ballot on promise/accepted,
	// and the conflicting higher promise on reject.  Ballot 0 is the
	// coordinator's fast path.
	Ballot uint32
	// Participants is the registrar payload: the transaction's
	// participant set (== the decision's Paxos instance set), carried on
	// MsgPaxosBegin and echoed back on MsgPaxosPromise.
	Participants []SiteID
	// PaxosState carries per-instance entries: proposals on
	// MsgPaxosAccept, durably accepted state on MsgPaxosAccepted and
	// MsgPaxosPromise.
	PaxosState []PaxosInst

	// Quorum replication / anti-entropy (wire payload version 6; zero
	// elsewhere):

	// Versions carries item versions.  On MsgReadRep it maps each
	// requested physical replica item to the replying site's effective
	// version (max of committed and pending); on MsgPrepare it maps each
	// written physical item to the version the transaction will install
	// on commit; on the MsgAntiEntropy* kinds it maps LOGICAL item names
	// to replica versions.
	Versions map[string]uint64
	// Outcomes carries gossip'd transaction outcomes on the
	// MsgAntiEntropy* kinds, sorted by transaction ID.
	Outcomes []OutcomeRec
}

// OutcomeRec is one gossip'd transaction outcome.
type OutcomeRec struct {
	TID       txn.ID
	Committed bool
}

// Vote is a ballot value in one Paxos Commit instance: the participant's
// verdict on its share of the transaction.
type Vote uint8

const (
	// VoteNone marks a free instance (no value accepted yet).
	VoteNone Vote = iota
	// VotePrepared is the participant's "ready" vote.
	VotePrepared
	// VoteAborted is the participant's refusal, or a takeover leader's
	// proposal for an instance whose participant never voted.
	VoteAborted
)

// String names the vote.
func (v Vote) String() string {
	switch v {
	case VoteNone:
		return "none"
	case VotePrepared:
		return "prepared"
	case VoteAborted:
		return "aborted"
	default:
		return fmt.Sprintf("vote(%d)", uint8(v))
	}
}

// PaxosInst is one Paxos-instance entry on a paxos message: the state of
// (or a proposal for) the instance deciding Instance's vote.
type PaxosInst struct {
	// Instance names the participant whose vote this instance decides.
	Instance SiteID
	// Ballot is the ballot the vote was (or is to be) accepted at.
	Ballot uint32
	// Vote is the instance's value.
	Vote Vote
}

// String renders a compact trace line for the message.
func (m Message) String() string {
	return fmt.Sprintf("%s %s->%s tid=%s", m.Kind, m.From, m.To, m.TID)
}
