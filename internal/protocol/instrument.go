package protocol

import "repro/internal/metrics"

// The protocol state machines are pure — no transport, storage, or clock
// — so their instrumentation is likewise pure event counting: every
// transition and decision is recorded against an attached registry.
// Phase *timings* live with the runtime that owns the clock (the cluster
// site loop), which observes protocol.phase.seconds there.

// Instrument attaches a metrics registry to the coordinator; decisions
// and received votes are then counted as protocol.coordinator.* series.
func (c *Coordinator) Instrument(reg *metrics.Registry) { c.reg = reg }

// Instrument attaches a metrics registry to the participant; every state
// transition is then counted as a protocol.participant.transitions
// series labelled by event and resulting action.
func (p *Participant) Instrument(reg *metrics.Registry) { p.reg = reg }

// countCoord records one coordinator-side event.
func (c *Coordinator) count(name string, labels ...metrics.Label) {
	if c.reg != nil {
		c.reg.Counter(name, labels...).Inc()
	}
}

// decision records the commit/abort decision with its cause.
func (c *Coordinator) decision(outcome, cause string) {
	c.count("protocol.coordinator.decisions",
		metrics.L("outcome", outcome), metrics.L("cause", cause))
}

// countTransition records one successful participant transition.
func (p *Participant) countTransition(ev PEvent, act PAction) {
	if p.reg != nil {
		p.reg.Counter("protocol.participant.transitions",
			metrics.L("event", ev.String()), metrics.L("action", act.String())).Inc()
	}
}
