package protocol

import (
	"sync"

	"repro/internal/metrics"
)

// The protocol state machines are pure — no transport, storage, or clock
// — so their instrumentation is likewise pure event counting: every
// transition and decision is recorded against an attached registry.
// Phase *timings* live with the runtime that owns the clock (the cluster
// site loop), which observes protocol.phase.seconds there.
//
// Machines are per-transaction and Instrument is called for each one, so
// the registry's series are resolved once per registry (not per machine,
// and certainly not per event) and cached in an Instruments table; the
// per-event cost is an atomic increment on a prebuilt counter.

const (
	pEventSlots  = int(EvTimeout) + 1
	pActionSlots = int(ActInstallPoly) + 1
)

// Instruments caches the protocol counter series of one registry.
type Instruments struct {
	readyReceived *metrics.Counter
	commitAllOK   *metrics.Counter // decision commit/all-ready
	abortRefused  *metrics.Counter // decision abort/refused
	abortTimeout  *metrics.Counter // decision abort/ready-timeout
	transitions   [pEventSlots][pActionSlots]*metrics.Counter
	reg           *metrics.Registry // fallback for out-of-range enum values
}

// instrumentsCache maps *metrics.Registry → *Instruments.
var instrumentsCache sync.Map

// InstrumentsFor returns the (shared, concurrency-safe) counter table for
// a registry, building it on first use.  Returns nil for a nil registry.
func InstrumentsFor(reg *metrics.Registry) *Instruments {
	if reg == nil {
		return nil
	}
	if v, ok := instrumentsCache.Load(reg); ok {
		return v.(*Instruments)
	}
	ins := &Instruments{
		readyReceived: reg.Counter("protocol.coordinator.ready.received"),
		commitAllOK: reg.Counter("protocol.coordinator.decisions",
			metrics.L("outcome", "commit"), metrics.L("cause", "all-ready")),
		abortRefused: reg.Counter("protocol.coordinator.decisions",
			metrics.L("outcome", "abort"), metrics.L("cause", "refused")),
		abortTimeout: reg.Counter("protocol.coordinator.decisions",
			metrics.L("outcome", "abort"), metrics.L("cause", "ready-timeout")),
		reg: reg,
	}
	for ev := 0; ev < pEventSlots; ev++ {
		for act := 0; act < pActionSlots; act++ {
			ins.transitions[ev][act] = reg.Counter("protocol.participant.transitions",
				metrics.L("event", PEvent(ev).String()), metrics.L("action", PAction(act).String()))
		}
	}
	if v, loaded := instrumentsCache.LoadOrStore(reg, ins); loaded {
		return v.(*Instruments)
	}
	return ins
}

// Instrument attaches a metrics registry to the coordinator; decisions
// and received votes are then counted as protocol.coordinator.* series.
func (c *Coordinator) Instrument(reg *metrics.Registry) { c.ins = InstrumentsFor(reg) }

// Instrument attaches a metrics registry to the participant; every state
// transition is then counted as a protocol.participant.transitions
// series labelled by event and resulting action.
func (p *Participant) Instrument(reg *metrics.Registry) { p.ins = InstrumentsFor(reg) }

// countReady records one received ready vote.
func (c *Coordinator) countReady() {
	if c.ins != nil {
		c.ins.readyReceived.Inc()
	}
}

// decision records the commit/abort decision with its cause.
func (c *Coordinator) decision(outcome, cause string) {
	if c.ins == nil {
		return
	}
	switch cause {
	case "all-ready":
		c.ins.commitAllOK.Inc()
	case "refused":
		c.ins.abortRefused.Inc()
	case "ready-timeout":
		c.ins.abortTimeout.Inc()
	default:
		c.ins.reg.Counter("protocol.coordinator.decisions",
			metrics.L("outcome", outcome), metrics.L("cause", cause)).Inc()
	}
}

// countTransition records one successful participant transition.
func (p *Participant) countTransition(ev PEvent, act PAction) {
	if p.ins == nil {
		return
	}
	if int(ev) < pEventSlots && int(act) < pActionSlots {
		p.ins.transitions[ev][act].Inc()
		return
	}
	p.ins.reg.Counter("protocol.participant.transitions",
		metrics.L("event", ev.String()), metrics.L("action", act.String())).Inc()
}
