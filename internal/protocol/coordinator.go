package protocol

import (
	"fmt"
	"sort"

	"repro/internal/txn"
)

// CState is the coordinator's per-transaction state.
type CState uint8

const (
	// CCollecting: prepares sent, awaiting ready messages.
	CCollecting CState = iota + 1
	// CCommitted: all readies arrived; complete messages sent.
	CCommitted
	// CAborted: a refusal or timeout occurred; abort messages sent.
	CAborted
)

// String names the coordinator state.
func (s CState) String() string {
	switch s {
	case CCollecting:
		return "collecting"
	case CCommitted:
		return "committed"
	case CAborted:
		return "aborted"
	default:
		return fmt.Sprintf("cstate(%d)", uint8(s))
	}
}

// Coordinator tracks one transaction's commit decision: it collects ready
// messages from every participant and decides complete ("after the
// transaction coordinator has received ready messages from all sites ...
// it sends out complete messages") or abort ("if ready messages are not
// promptly received").
//
// Once decided, the decision is immutable — this is the essential 2PC
// property; late readies or duplicate timeouts cannot change it.
type Coordinator struct {
	TID          txn.ID
	state        CState
	participants map[SiteID]bool // true once ready received
	ins          *Instruments
}

// NewCoordinator starts collecting for the given participant set.
func NewCoordinator(tid txn.ID, participants []SiteID) *Coordinator {
	m := make(map[SiteID]bool, len(participants))
	for _, s := range participants {
		m[s] = false
	}
	return &Coordinator{TID: tid, state: CCollecting, participants: m}
}

// State returns the current decision state.
func (c *Coordinator) State() CState { return c.state }

// Decided reports whether an outcome has been fixed, and what it is.
func (c *Coordinator) Decided() (committed, decided bool) {
	switch c.state {
	case CCommitted:
		return true, true
	case CAborted:
		return false, true
	default:
		return false, false
	}
}

// Participants returns the participant set, sorted.
func (c *Coordinator) Participants() []SiteID {
	out := make([]SiteID, 0, len(c.participants))
	for s := range c.participants {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// OnReady records a ready message.  It returns true when this ready
// completes the set and the coordinator has just decided to commit; the
// runtime must then durably record the outcome and send complete
// messages.  Readies from unknown sites or after a decision are ignored.
func (c *Coordinator) OnReady(from SiteID) (decidedCommit bool) {
	if c.state != CCollecting {
		return false
	}
	if _, ok := c.participants[from]; !ok {
		return false
	}
	c.participants[from] = true
	c.countReady()
	for _, ready := range c.participants {
		if !ready {
			return false
		}
	}
	c.state = CCommitted
	c.decision("commit", "all-ready")
	return true
}

// OnRefuse records a refusal; if the transaction was still undecided it
// is now aborted and the runtime must record the outcome and send abort
// messages.  Returns whether the abort decision was made by this call.
func (c *Coordinator) OnRefuse(from SiteID) (decidedAbort bool) {
	if c.state != CCollecting {
		return false
	}
	c.state = CAborted
	c.decision("abort", "refused")
	return true
}

// OnTimeout fires when ready messages were not promptly received.
// Returns whether the abort decision was made by this call.
func (c *Coordinator) OnTimeout() (decidedAbort bool) {
	if c.state != CCollecting {
		return false
	}
	c.state = CAborted
	c.decision("abort", "ready-timeout")
	return true
}
