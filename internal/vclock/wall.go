package vclock

import (
	"sync"
	"time"
)

// Clock is the time source protocol-level code schedules against.  The
// deterministic *Scheduler implements it for simulations and tests; Wall
// implements it over real time for multi-process clusters (cmd/polynode
// over a TCP transport).
type Clock interface {
	// Now returns the current instant (duration since the clock's epoch).
	Now() Time
	// After schedules fn to run d from now and returns a cancellation ID.
	After(d time.Duration, fn func()) TimerID
	// At schedules fn at the absolute instant t (in the past: runs
	// promptly).
	At(t Time, fn func()) TimerID
	// Cancel drops a scheduled call; it reports whether an event was
	// actually cancelled.
	Cancel(id TimerID) bool
}

var (
	_ Clock = (*Scheduler)(nil)
	_ Clock = (*Wall)(nil)
)

// Wall is a Clock over real time.  Unlike Scheduler it is safe for
// concurrent use: callbacks fire on their own goroutines (time.AfterFunc)
// and may themselves schedule or cancel.  Callers needing serialization
// (the cluster's site runtime) provide their own, exactly as they do for
// concurrent message delivery.
type Wall struct {
	epoch time.Time

	mu     sync.Mutex
	nextID TimerID
	timers map[TimerID]*time.Timer
	closed bool
}

// NewWall returns a wall clock with its epoch at the moment of the call.
func NewWall() *Wall {
	return &Wall{epoch: time.Now(), timers: map[TimerID]*time.Timer{}}
}

// Now returns the time elapsed since the clock's epoch.
func (w *Wall) Now() Time { return time.Since(w.epoch) }

// After schedules fn to run d from now on its own goroutine.  After Stop,
// scheduling is a no-op returning 0.
func (w *Wall) After(d time.Duration, fn func()) TimerID {
	if d < 0 {
		d = 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0
	}
	w.nextID++
	id := w.nextID
	w.timers[id] = time.AfterFunc(d, func() {
		w.mu.Lock()
		_, live := w.timers[id]
		delete(w.timers, id)
		w.mu.Unlock()
		if live {
			fn()
		}
	})
	return id
}

// At schedules fn at the absolute instant t.
func (w *Wall) At(t Time, fn func()) TimerID {
	return w.After(t-w.Now(), fn)
}

// Cancel stops a pending timer.  A timer that already started running
// (or finished) is not cancellable; returns false.
func (w *Wall) Cancel(id TimerID) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	tm, ok := w.timers[id]
	if !ok {
		return false
	}
	delete(w.timers, id)
	tm.Stop()
	return true
}

// Pending returns the number of timers not yet fired or cancelled.
func (w *Wall) Pending() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.timers)
}

// Stop cancels every pending timer and refuses new ones.  Callbacks
// already started keep running; Stop does not wait for them.
func (w *Wall) Stop() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.closed = true
	for id, tm := range w.timers {
		tm.Stop()
		delete(w.timers, id)
	}
}
