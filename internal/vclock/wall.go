package vclock

import (
	"sync"
	"sync/atomic"
	"time"
)

// Clock is the time source protocol-level code schedules against.  The
// deterministic *Scheduler implements it for simulations and tests; Wall
// implements it over real time for multi-process clusters (cmd/polynode
// over a TCP transport).
type Clock interface {
	// Now returns the current instant (duration since the clock's epoch).
	Now() Time
	// After schedules fn to run d from now and returns a cancellation ID.
	After(d time.Duration, fn func()) TimerID
	// At schedules fn at the absolute instant t (in the past: runs
	// promptly).
	At(t Time, fn func()) TimerID
	// Cancel drops a scheduled call; it reports whether an event was
	// actually cancelled.
	Cancel(id TimerID) bool
}

var (
	_ Clock = (*Scheduler)(nil)
	_ Clock = (*Wall)(nil)
)

// wallShards spreads the timer table over independently-locked shards:
// every transaction arms and cancels several timers (wait-phase, retry,
// outcome GC), so a single mutex becomes the contention point under a
// concurrent load generator.  Power of two, indexed by id&(wallShards-1).
const wallShards = 16

type wallShard struct {
	mu     sync.Mutex
	timers map[TimerID]*time.Timer
}

// Wall is a Clock over real time.  Unlike Scheduler it is safe for
// concurrent use: callbacks fire on their own goroutines (time.AfterFunc)
// and may themselves schedule or cancel.  Callers needing serialization
// (the cluster's site runtime) provide their own, exactly as they do for
// concurrent message delivery.
type Wall struct {
	epoch  time.Time
	nextID atomic.Uint64
	closed atomic.Bool
	shards [wallShards]wallShard
}

// NewWall returns a wall clock with its epoch at the moment of the call.
func NewWall() *Wall {
	w := &Wall{epoch: time.Now()}
	for i := range w.shards {
		w.shards[i].timers = map[TimerID]*time.Timer{}
	}
	return w
}

// Now returns the time elapsed since the clock's epoch.
func (w *Wall) Now() Time { return time.Since(w.epoch) }

func (w *Wall) shard(id TimerID) *wallShard {
	return &w.shards[uint64(id)&(wallShards-1)]
}

// After schedules fn to run d from now on its own goroutine.  After Stop,
// scheduling is a no-op returning 0.
func (w *Wall) After(d time.Duration, fn func()) TimerID {
	if d < 0 {
		d = 0
	}
	if w.closed.Load() {
		return 0
	}
	id := TimerID(w.nextID.Add(1))
	sh := w.shard(id)
	sh.mu.Lock()
	sh.timers[id] = time.AfterFunc(d, func() {
		sh.mu.Lock()
		_, live := sh.timers[id]
		delete(sh.timers, id)
		sh.mu.Unlock()
		if live && !w.closed.Load() {
			fn()
		}
	})
	sh.mu.Unlock()
	// A Stop that raced the arm above may have swept its shard before the
	// insert landed; honour it.
	if w.closed.Load() {
		w.Cancel(id)
		return 0
	}
	return id
}

// At schedules fn at the absolute instant t.
func (w *Wall) At(t Time, fn func()) TimerID {
	return w.After(t-w.Now(), fn)
}

// Cancel stops a pending timer.  A timer that already started running
// (or finished) is not cancellable; returns false.
func (w *Wall) Cancel(id TimerID) bool {
	if id == 0 {
		return false
	}
	sh := w.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	tm, ok := sh.timers[id]
	if !ok {
		return false
	}
	delete(sh.timers, id)
	tm.Stop()
	return true
}

// Pending returns the number of timers not yet fired or cancelled.
func (w *Wall) Pending() int {
	n := 0
	for i := range w.shards {
		sh := &w.shards[i]
		sh.mu.Lock()
		n += len(sh.timers)
		sh.mu.Unlock()
	}
	return n
}

// Stop cancels every pending timer and refuses new ones.  Callbacks
// already started keep running; Stop does not wait for them.
func (w *Wall) Stop() {
	w.closed.Store(true)
	for i := range w.shards {
		sh := &w.shards[i]
		sh.mu.Lock()
		for id, tm := range sh.timers {
			tm.Stop()
			delete(sh.timers, id)
		}
		sh.mu.Unlock()
	}
}
