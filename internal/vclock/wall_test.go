package vclock

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestWallFires(t *testing.T) {
	w := NewWall()
	defer w.Stop()
	done := make(chan struct{})
	w.After(5*time.Millisecond, func() { close(done) })
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("timer never fired")
	}
	if w.Pending() != 0 {
		t.Errorf("pending = %d after fire", w.Pending())
	}
}

func TestWallCancel(t *testing.T) {
	w := NewWall()
	defer w.Stop()
	var fired atomic.Int32
	id := w.After(20*time.Millisecond, func() { fired.Add(1) })
	if !w.Cancel(id) {
		t.Fatal("cancel of pending timer returned false")
	}
	if w.Cancel(id) {
		t.Error("double cancel returned true")
	}
	time.Sleep(60 * time.Millisecond)
	if fired.Load() != 0 {
		t.Error("cancelled timer fired")
	}
}

func TestWallAtPastRunsPromptly(t *testing.T) {
	w := NewWall()
	defer w.Stop()
	done := make(chan struct{})
	w.At(-time.Hour, func() { close(done) })
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("past-instant timer never fired")
	}
}

func TestWallStop(t *testing.T) {
	w := NewWall()
	var fired atomic.Int32
	for i := 0; i < 10; i++ {
		w.After(10*time.Millisecond, func() { fired.Add(1) })
	}
	w.Stop()
	if id := w.After(time.Millisecond, func() { fired.Add(1) }); id != 0 {
		t.Error("scheduling after Stop returned a live ID")
	}
	time.Sleep(50 * time.Millisecond)
	if fired.Load() != 0 {
		t.Errorf("%d timers fired after Stop", fired.Load())
	}
}

// TestWallConcurrent exercises the clock from many goroutines under the
// race detector: schedule, cancel, and callbacks that reschedule.
func TestWallConcurrent(t *testing.T) {
	w := NewWall()
	defer w.Stop()
	var wg sync.WaitGroup
	var fired atomic.Int32
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ids := make([]TimerID, 0, 50)
			for i := 0; i < 50; i++ {
				d := time.Duration(i%5) * time.Millisecond
				ids = append(ids, w.After(d, func() {
					fired.Add(1)
					if fired.Load()%7 == 0 {
						w.After(time.Millisecond, func() {})
					}
				}))
			}
			for i, id := range ids {
				if i%3 == 0 {
					w.Cancel(id)
				}
			}
		}(g)
	}
	wg.Wait()
	deadline := time.Now().Add(2 * time.Second)
	for w.Pending() > 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if w.Pending() != 0 {
		t.Errorf("pending = %d after drain", w.Pending())
	}
	if w.Now() <= 0 {
		t.Error("Now did not advance")
	}
}
