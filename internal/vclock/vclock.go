// Package vclock provides deterministic simulated time: a discrete-event
// scheduler with cancellable timers.
//
// The commit protocol's behaviour is timeout-driven (a site that hears
// neither complete nor abort "promptly" installs polyvalues), so tests
// and benchmarks must control time exactly.  All protocol-level code
// takes a *Scheduler rather than reading the wall clock; the live cluster
// runtime drives one from real time, while tests and the §4.2 simulator
// advance it explicitly.
//
// Scheduler is not safe for concurrent use; each runtime owns one and
// serializes access (the simulation loop, or the cluster's event
// goroutine).
package vclock

import (
	"container/heap"
	"time"
)

// Time is a simulated instant, measured as a duration since the
// scheduler's epoch.
type Time = time.Duration

// TimerID identifies a scheduled event for cancellation.  The zero value
// is never a valid ID.
type TimerID uint64

// event is one scheduled callback.
type event struct {
	at       Time
	seq      uint64 // FIFO tie-break for events at the same instant
	id       TimerID
	fn       func()
	canceled bool
	index    int // heap index
}

// eventHeap orders events by (time, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Scheduler is a discrete-event clock.  The zero value is ready to use
// at time 0.
type Scheduler struct {
	now     Time
	nextSeq uint64
	nextID  TimerID
	heap    eventHeap
	byID    map[TimerID]*event
}

// NewScheduler returns an empty scheduler at time zero.
func NewScheduler() *Scheduler {
	return &Scheduler{byID: map[TimerID]*event{}}
}

// Now returns the current simulated time.
func (s *Scheduler) Now() Time { return s.now }

// At schedules fn to run at the absolute instant t.  Scheduling in the
// past runs at the current instant (as the next step).  The returned ID
// cancels the event.
func (s *Scheduler) At(t Time, fn func()) TimerID {
	if s.byID == nil {
		s.byID = map[TimerID]*event{}
	}
	if t < s.now {
		t = s.now
	}
	s.nextSeq++
	s.nextID++
	e := &event{at: t, seq: s.nextSeq, id: s.nextID, fn: fn}
	heap.Push(&s.heap, e)
	s.byID[e.id] = e
	return e.id
}

// After schedules fn to run d from now.
func (s *Scheduler) After(d time.Duration, fn func()) TimerID {
	return s.At(s.now+d, fn)
}

// Cancel drops a scheduled event.  Cancelling an already-fired or unknown
// ID is a no-op; it returns whether an event was actually cancelled.
func (s *Scheduler) Cancel(id TimerID) bool {
	e, ok := s.byID[id]
	if !ok || e.canceled {
		return false
	}
	e.canceled = true
	delete(s.byID, id)
	return true
}

// Pending returns the number of live (non-cancelled) scheduled events.
func (s *Scheduler) Pending() int { return len(s.byID) }

// Step runs the next scheduled event, advancing the clock to its instant.
// It returns false if nothing is scheduled.
func (s *Scheduler) Step() bool {
	for s.heap.Len() > 0 {
		e := heap.Pop(&s.heap).(*event)
		if e.canceled {
			continue
		}
		delete(s.byID, e.id)
		s.now = e.at
		e.fn()
		return true
	}
	return false
}

// RunUntil executes events in order until the clock would pass t; the
// clock finishes at exactly t.  Events scheduled at t run.
func (s *Scheduler) RunUntil(t Time) {
	for s.heap.Len() > 0 {
		// Peek.
		e := s.heap[0]
		if e.canceled {
			heap.Pop(&s.heap)
			continue
		}
		if e.at > t {
			break
		}
		s.Step()
	}
	if s.now < t {
		s.now = t
	}
}

// Drain runs every scheduled event (including those scheduled by event
// callbacks) until none remain or the step budget is exhausted, and
// returns the number of events run.  A budget ≤ 0 means unbounded.
func (s *Scheduler) Drain(budget int) int {
	steps := 0
	for s.Step() {
		steps++
		if budget > 0 && steps >= budget {
			break
		}
	}
	return steps
}
