package vclock

import (
	"testing"
	"time"
)

func TestZeroValueUsable(t *testing.T) {
	var s Scheduler
	ran := false
	s.After(time.Second, func() { ran = true })
	if !s.Step() || !ran {
		t.Error("zero-value scheduler broken")
	}
}

func TestOrdering(t *testing.T) {
	s := NewScheduler()
	var order []int
	s.After(3*time.Second, func() { order = append(order, 3) })
	s.After(1*time.Second, func() { order = append(order, 1) })
	s.After(2*time.Second, func() { order = append(order, 2) })
	s.Drain(0)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if s.Now() != 3*time.Second {
		t.Errorf("Now = %v", s.Now())
	}
}

func TestFIFOAtSameInstant(t *testing.T) {
	s := NewScheduler()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		s.At(time.Second, func() { order = append(order, i) })
	}
	s.Drain(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events reordered: %v", order)
		}
	}
}

func TestCancel(t *testing.T) {
	s := NewScheduler()
	ran := false
	id := s.After(time.Second, func() { ran = true })
	if !s.Cancel(id) {
		t.Error("Cancel returned false for live timer")
	}
	if s.Cancel(id) {
		t.Error("double Cancel returned true")
	}
	if s.Cancel(999999) {
		t.Error("Cancel of unknown ID returned true")
	}
	s.Drain(0)
	if ran {
		t.Error("cancelled event ran")
	}
	if s.Pending() != 0 {
		t.Errorf("Pending = %d", s.Pending())
	}
}

func TestScheduleInPast(t *testing.T) {
	s := NewScheduler()
	s.After(5*time.Second, func() {})
	s.Step()
	ran := false
	s.At(time.Second, func() { ran = true }) // in the past
	s.Step()
	if !ran {
		t.Error("past event did not run")
	}
	if s.Now() != 5*time.Second {
		t.Errorf("past event moved clock backwards: %v", s.Now())
	}
}

func TestRunUntil(t *testing.T) {
	s := NewScheduler()
	var ran []int
	s.After(1*time.Second, func() { ran = append(ran, 1) })
	s.After(2*time.Second, func() { ran = append(ran, 2) })
	s.After(5*time.Second, func() { ran = append(ran, 5) })
	s.RunUntil(2 * time.Second)
	if len(ran) != 2 {
		t.Errorf("ran = %v", ran)
	}
	if s.Now() != 2*time.Second {
		t.Errorf("Now = %v", s.Now())
	}
	// Idle advance: no events between 2s and 4s.
	s.RunUntil(4 * time.Second)
	if s.Now() != 4*time.Second {
		t.Errorf("idle RunUntil: Now = %v", s.Now())
	}
	if s.Pending() != 1 {
		t.Errorf("Pending = %d", s.Pending())
	}
}

func TestEventsScheduleEvents(t *testing.T) {
	s := NewScheduler()
	count := 0
	var reschedule func()
	reschedule = func() {
		count++
		if count < 10 {
			s.After(time.Second, reschedule)
		}
	}
	s.After(time.Second, reschedule)
	s.Drain(0)
	if count != 10 {
		t.Errorf("count = %d", count)
	}
	if s.Now() != 10*time.Second {
		t.Errorf("Now = %v", s.Now())
	}
}

func TestDrainBudget(t *testing.T) {
	s := NewScheduler()
	// Self-perpetuating event chain: only the budget stops it.
	var tick func()
	n := 0
	tick = func() { n++; s.After(time.Millisecond, tick) }
	s.After(time.Millisecond, tick)
	if steps := s.Drain(100); steps != 100 || n != 100 {
		t.Errorf("steps = %d, n = %d", steps, n)
	}
}

func TestCancelInsideEvent(t *testing.T) {
	s := NewScheduler()
	var id TimerID
	ran := false
	s.After(time.Second, func() { s.Cancel(id) })
	id = s.After(2*time.Second, func() { ran = true })
	s.Drain(0)
	if ran {
		t.Error("event cancelled from another event still ran")
	}
}
