package cluster

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/network"
	"repro/internal/protocol"
	"repro/internal/trace"
)

// newPaxosCluster builds a 5-site paxos-plane cluster (acceptor group =
// all five sites, F = 2) with items prefixed a*..e* placed on A..E.
func newPaxosCluster(t *testing.T, spans *trace.SpanLog) *Cluster {
	t.Helper()
	c, err := New(Config{
		Sites:         []protocol.SiteID{"A", "B", "C", "D", "E"},
		Net:           network.Config{Latency: 10 * time.Millisecond, Seed: 42},
		DecisionPlane: PlanePaxos,
		Spans:         spans,
		Placement: func(item string) protocol.SiteID {
			switch item[0] {
			case 'a':
				return "A"
			case 'b':
				return "B"
			case 'c':
				return "C"
			case 'd':
				return "D"
			default:
				return "E"
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestDecisionPlaneValidation(t *testing.T) {
	_, err := New(Config{Sites: []protocol.SiteID{"A"}, DecisionPlane: "raft"})
	if err == nil {
		t.Fatal("unknown decision plane accepted")
	}
}

// TestPaxosPlaneCommit: the fast path — a distributed transfer commits
// through ballot-0 consensus, values settle, and every acceptor
// garbage-collects its instance state.
func TestPaxosPlaneCommit(t *testing.T) {
	c := newPaxosCluster(t, nil)
	loadInt(t, c, "bsrc", 100)
	loadInt(t, c, "cdst", 0)
	h, err := c.Submit("A", "bsrc = bsrc - 40; cdst = cdst + 40")
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(5 * time.Second)
	if h.Status() != StatusCommitted {
		t.Fatalf("status = %v (%s)", h.Status(), h.Reason())
	}
	if got := readInt(t, c, "bsrc"); got != 60 {
		t.Errorf("bsrc = %d", got)
	}
	if got := readInt(t, c, "cdst"); got != 40 {
		t.Errorf("cdst = %d", got)
	}
	if polys := c.PolyItems(); len(polys) != 0 {
		t.Errorf("poly items after clean commit: %v", polys)
	}
	if v := c.CheckInvariants(); len(v) != 0 {
		t.Errorf("invariant violations: %v", v)
	}
}

// TestPaxosPlaneRefuseAbort: a write-lock conflict refuses, and the
// coordinator may announce the abort without waiting for consensus (the
// refuser's Aborted vote makes commit unchoosable forever).
func TestPaxosPlaneRefuseAbort(t *testing.T) {
	c := newPaxosCluster(t, nil)
	loadInt(t, c, "bsrc", 100)
	loadInt(t, c, "cdst", 0)
	loadInt(t, c, "ddst", 0)
	h1, _ := c.Submit("A", "bsrc = bsrc - 10; cdst = cdst + 10")
	h2, _ := c.Submit("E", "bsrc = bsrc - 10; ddst = ddst + 10")
	c.RunFor(5 * time.Second)
	st1, st2 := h1.Status(), h2.Status()
	if st1 == StatusCommitted && st2 == StatusCommitted {
		// Both may commit if they serialized cleanly; that's fine too.
	} else if st1 != StatusCommitted && st2 != StatusCommitted {
		t.Fatalf("both aborted: %v (%s) / %v (%s)", st1, h1.Reason(), st2, h2.Reason())
	}
	total := readInt(t, c, "bsrc") + readInt(t, c, "cdst") + readInt(t, c, "ddst")
	if total != 100 {
		t.Errorf("conservation violated: total = %d", total)
	}
	if v := c.CheckInvariants(); len(v) != 0 {
		t.Errorf("invariant violations: %v", v)
	}
}

// TestPaxosCoordinatorCrashTakeover: the coordinator dies the instant it
// would finalize COMMIT — every ready collected, nothing logged or
// announced.  In the wal plane the participants stay in doubt until the
// coordinator returns; in the paxos plane their takeovers reveal the
// quorum of ballot-0 Prepared votes and drive the transaction to COMMIT
// with the coordinator still dead.
func TestPaxosCoordinatorCrashTakeover(t *testing.T) {
	c := newPaxosCluster(t, nil)
	loadInt(t, c, "bsrc", 100)
	loadInt(t, c, "cdst", 0)
	if err := c.ArmCrash("A", CrashBeforeDecision); err != nil {
		t.Fatal(err)
	}
	h, _ := c.Submit("A", "bsrc = bsrc - 40; cdst = cdst + 40")
	c.RunFor(30 * time.Second)

	if !c.IsDown("A") {
		t.Fatal("failpoint did not crash the coordinator")
	}
	if h.Status() != StatusPending {
		t.Fatalf("handle status = %v, want pending (client never hears)", h.Status())
	}
	// The decision was reached WITHOUT the coordinator.
	if got := readInt(t, c, "bsrc"); got != 60 {
		t.Errorf("bsrc = %d, want 60 (takeover must commit)", got)
	}
	if got := readInt(t, c, "cdst"); got != 40 {
		t.Errorf("cdst = %d, want 40", got)
	}
	if polys := c.PolyItems(); len(polys) != 0 {
		t.Errorf("residual polyvalues: %v", polys)
	}
	c.Restart("A")
	c.RunFor(15 * time.Second)
	if v := c.CheckInvariants(); len(v) != 0 {
		t.Errorf("invariant violations after coordinator recovery: %v", v)
	}
}

// TestPaxosAcceptorCrashMatrix is the ISSUE's acceptance scenario: with
// 2F+1 = 5 acceptors, kill each pair of F = 2 acceptors at their
// ballot-0 accept (one before its durable write, one after) AND the
// coordinator at the decision instant.  Every in-flight transaction
// must still reach a durable consistent decision among the survivors,
// conservation must hold, and recovery replay must be idempotent.
func TestPaxosAcceptorCrashMatrix(t *testing.T) {
	pairs := [][2]protocol.SiteID{
		{"B", "C"}, {"B", "D"}, {"B", "E"},
		{"C", "D"}, {"C", "E"}, {"D", "E"},
	}
	for _, pair := range pairs {
		pair := pair
		t.Run(fmt.Sprintf("%s+%s", pair[0], pair[1]), func(t *testing.T) {
			c := newPaxosCluster(t, nil)
			loadInt(t, c, "bsrc", 100)
			loadInt(t, c, "cdst", 0)
			if err := c.ArmCrash(pair[0], CrashBeforePaxosAccept); err != nil {
				t.Fatal(err)
			}
			if err := c.ArmCrash(pair[1], CrashAfterPaxosAccept); err != nil {
				t.Fatal(err)
			}
			if err := c.ArmCrash("A", CrashBeforeDecision); err != nil {
				t.Fatal(err)
			}
			c.Submit("A", "bsrc = bsrc - 40; cdst = cdst + 40")
			c.RunFor(30 * time.Second)

			// All three failpoints must actually have fired.
			for _, id := range []protocol.SiteID{"A", pair[0], pair[1]} {
				if !c.IsDown(id) {
					t.Fatalf("site %s did not crash at its failpoint", id)
				}
			}
			// The crashed sites come back; the decision reached by the
			// survivors must be replayed onto them idempotently.
			for _, id := range []protocol.SiteID{"A", pair[0], pair[1]} {
				c.Restart(id)
			}
			c.RunFor(30 * time.Second)

			// Every site that knows the outcome must agree, and the values
			// must conserve the total under either outcome.
			total := readInt(t, c, "bsrc") + readInt(t, c, "cdst")
			if total != 100 {
				t.Errorf("conservation violated: total = %d", total)
			}
			if polys := c.PolyItems(); len(polys) != 0 {
				t.Errorf("residual polyvalues: %v", polys)
			}
			// Idempotent replay: crash/restart an involved acceptor again;
			// its WAL replay must not change anything.
			c.Crash(pair[1])
			c.Restart(pair[1])
			c.RunFor(10 * time.Second)
			if total := readInt(t, c, "bsrc") + readInt(t, c, "cdst"); total != 100 {
				t.Errorf("conservation violated after replay: total = %d", total)
			}
			if v := c.CheckInvariants(); len(v) != 0 {
				t.Errorf("invariant violations: %v", v)
			}
		})
	}
}

// TestPaxosQuorumSpans: a paxos-plane commit's trace carries the
// plane/quorum attributes on its root and at least a quorum of distinct
// sites contributed paxos.accept spans — the completeness contract the
// polytrace audit enforces.
func TestPaxosQuorumSpans(t *testing.T) {
	spans := trace.NewSpanLog(4096)
	c := newPaxosCluster(t, spans)
	loadInt(t, c, "bsrc", 100)
	loadInt(t, c, "cdst", 0)
	h, _ := c.Submit("A", "bsrc = bsrc - 40; cdst = cdst + 40")
	c.RunFor(5 * time.Second)
	if h.Status() != StatusCommitted {
		t.Fatalf("status = %v (%s)", h.Status(), h.Reason())
	}
	var root *trace.Span
	acceptSites := map[string]bool{}
	for _, sp := range spans.Spans() {
		sp := sp
		switch sp.Kind {
		case trace.RootKind:
			root = &sp
		case spanPaxosAccept:
			acceptSites[sp.Site] = true
		}
	}
	if root == nil {
		t.Fatal("no root span recorded")
	}
	if root.Attrs["plane"] != "paxos" {
		t.Errorf("root plane attr = %q", root.Attrs["plane"])
	}
	if root.Attrs["quorum"] != "3" {
		t.Errorf("root quorum attr = %q", root.Attrs["quorum"])
	}
	if len(acceptSites) < 3 {
		t.Errorf("paxos.accept spans from %d sites, want >= quorum 3", len(acceptSites))
	}
}
