package cluster

import (
	"errors"
	"testing"
	"time"

	"repro/internal/value"
)

// intVal shortens assertions on integer results.
func intVal(n int64) value.V { return value.Int(n) }

// TestQueryCertainWaitsForResolution: §3.4's withhold option — the query
// blocks while the answer is a polyvalue and completes with a certain
// value once the failure is repaired and the uncertainty resolves.
func TestQueryCertainWaitsForResolution(t *testing.T) {
	c := newTestCluster(t, PolicyPolyvalue)
	loadInt(t, c, "bx", 100)
	c.ArmCrashBeforeDecision("A")
	_, _ = c.Submit("A", "bx = bx - 40")
	c.RunFor(2 * time.Second)

	qh, err := c.QueryCertain("C", "bx", 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// The answer is withheld while uncertain.
	c.RunFor(3 * time.Second)
	if _, _, done := qh.Result(); done {
		t.Fatal("withheld query completed while uncertain")
	}
	// Repair; the next poll sees the certain value.
	c.Restart("A")
	c.RunFor(30 * time.Second)
	p, qerr, done := qh.Result()
	if !done || qerr != nil {
		t.Fatalf("withheld query: done=%v err=%v", done, qerr)
	}
	if v, certain := p.IsCertain(); !certain || !v.Equal(intVal(100)) {
		t.Errorf("result = %v, want certain 100 (presumed abort)", p)
	}
}

// TestQueryCertainDeadline: if the uncertainty outlives the wait, the
// handle completes with ErrStillUncertain plus the uncertain answer.
func TestQueryCertainDeadline(t *testing.T) {
	c := newTestCluster(t, PolicyPolyvalue)
	loadInt(t, c, "bx", 100)
	c.ArmCrashBeforeDecision("A")
	_, _ = c.Submit("A", "bx = bx - 40")
	c.RunFor(2 * time.Second)

	qh, err := c.QueryCertain("C", "bx", 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(10 * time.Second) // A stays down; uncertainty persists
	p, qerr, done := qh.Result()
	if !done {
		t.Fatal("deadline did not complete the query")
	}
	if !errors.Is(qerr, ErrStillUncertain) {
		t.Fatalf("err = %v, want ErrStillUncertain", qerr)
	}
	if p.NumPairs() != 2 {
		t.Errorf("uncertain answer not delivered: %v", p)
	}
}

// TestQueryCertainImmediateWhenCertain: no failure → completes on the
// first round like a plain query.
func TestQueryCertainImmediateWhenCertain(t *testing.T) {
	c := newTestCluster(t, PolicyPolyvalue)
	loadInt(t, c, "bx", 7)
	qh, err := c.QueryCertain("A", "bx * 2", 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(time.Second)
	p, qerr, done := qh.Result()
	if !done || qerr != nil {
		t.Fatalf("certain query: done=%v err=%v", done, qerr)
	}
	if v, _ := p.IsCertain(); !v.Equal(intVal(14)) {
		t.Errorf("result = %v", p)
	}
}

func TestQueryCertainValidation(t *testing.T) {
	c := newTestCluster(t, PolicyPolyvalue)
	if _, err := c.QueryCertain("nope", "1", time.Second); err == nil {
		t.Error("unknown site accepted")
	}
	if _, err := c.QueryCertain("A", "1 +", time.Second); err == nil {
		t.Error("bad expression accepted")
	}
	if _, err := c.QueryCertain("A", "1", 0); err == nil {
		t.Error("zero wait accepted")
	}
}

// TestQueryCertainCoordinatorCrash: a withheld query must not hang when
// its coordinating site crashes mid-wait.
func TestQueryCertainCoordinatorCrash(t *testing.T) {
	c := newTestCluster(t, PolicyPolyvalue)
	loadInt(t, c, "bx", 100)
	c.ArmCrashBeforeDecision("A")
	_, _ = c.Submit("A", "bx = bx - 40")
	c.RunFor(2 * time.Second)
	qh, err := c.QueryCertain("C", "bx", 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(time.Second)
	c.Crash("C")
	c.RunFor(5 * time.Second)
	if _, qerr, done := qh.Result(); !done || qerr == nil {
		t.Errorf("withheld query on crashed coordinator: done=%v err=%v", done, qerr)
	}
}
