package cluster

import (
	"repro/internal/metrics"
	"repro/internal/polyvalue"
	"repro/internal/protocol"
	"repro/internal/vclock"
)

// Metric series maintained by the cluster runtime:
//
//	txn.submitted / txn.committed / txn.aborted / txn.indoubt /
//	txn.refused                      — outcome counters (the Stats view)
//	txn.latency.seconds              — committed-transaction latency
//	protocol.phase.seconds{phase=}   — read, prepare, wait, settle
//	poly.installs / poly.reductions  — per-item lifecycle counters
//	poly.forks                       — polytransaction outputs that were
//	                                   themselves uncertain (§3.2 spread)
//	poly.population                  — live polyvalued-item gauge
//	poly.lifetime.seconds            — install→reduction per item, the
//	                                   paper's §4 figure-level quantity
//	txn.decision.resends             — coordinator complete/abort
//	                                   retransmissions to unacked sites
//	txn.outcome.retries              — participant outcome-inquiry
//	                                   retries (backoff-paced)
//	txn.deadline.exceeded{role=}     — end-to-end deadline expiries seen
//	                                   by coordinators / participants
//	txn.degraded.blocking            — in-doubt transactions that held
//	                                   their locks (blocking 2PC) because
//	                                   the polyvalue budget was exhausted
//	paxos.votes / paxos.accepts /    — PlanePaxos decision plane:
//	paxos.rejects / paxos.takeovers /  ballot-0 votes cast, durable
//	paxos.decisions                    acceptor accepts, promise/accept
//	                                   nacks, takeover rounds started,
//	                                   and decisions reached by takeover
//	                                   leaders (fast-path decisions land
//	                                   in txn.committed/aborted directly)
//	antientropy.rounds /             — quorum-replication gossip plane:
//	antientropy.outcomes.learned /     rounds initiated, transaction
//	antientropy.items.copied           outcomes first learned via gossip
//	                                   (each one a potential polyvalue
//	                                   reduction with no coordinator
//	                                   involved), and stale replica
//	                                   values converged by value copy
//	site.admission.shed{site}        — submissions shed over the cap
//	site.admission.inflight{site}    — credits currently held
//	site.budget.mode{site}           — 0 polyvalue, 1 blocking (degraded)
//	site.budget.degradations{site} / site.budget.restores{site}
//	site.inbox.depth{site} / site.inbox.hwm{site} / site.inbox.shed{site}
//	site.durability.panics{site}     — fsyncgate self-crashes: times a
//	                                   site killed its incarnation after
//	                                   a failed WAL write/fsync rather
//	                                   than ack durability it may not
//	                                   have (restart then refuses until
//	                                   the node is rebuilt from disk)
//	storage.corrupt.reads{site}      — recovery read passes whose bytes
//	                                   were damaged in the read path and
//	                                   healed on re-read (CRC-detected
//	                                   latent corruption, quarantined
//	                                   when persistent)
//	storage.fault.injected{kind}     — disk faults injected by a
//	                                   configured storage.FaultFS
//	                                   (fsync | torn | enospc |
//	                                   readflip | slow)
//	item.blocked.seconds{site,cause}  — the blocking accountant: how long
//	                                   each locked item was unreadable and
//	                                   why (lock | indoubt | degraded);
//	                                   its _sum is the blocked-item-seconds
//	                                   quantity the paper's availability
//	                                   claim is about (see spans.go)
//	poly.residency.seconds{site}     — per-site install→reduction interval
//	                                   (the site-sliced poly.lifetime)
//
// When span tracing is enabled (Config.Spans), trace.spans.dropped and
// trace.spans.retained describe the span log's occupancy.
//
// The network and storage layers add network.* and storage.wal.* series
// to the same registry; the protocol state machines add protocol.* event
// counters.

// lifeKey identifies one polyvalued item at one site for lifetime
// tracking (the same item name can be polyvalued at several sites when
// uncertainty propagates).
type lifeKey struct {
	site protocol.SiteID
	item string
}

// initMetrics registers every cluster-level series against the registry
// and caches the hot-path instruments.  Called once from New.
func (c *Cluster) initMetrics(reg *metrics.Registry) {
	c.reg = reg
	c.submitted = reg.Counter("txn.submitted")
	c.committed = reg.Counter("txn.committed")
	c.aborted = reg.Counter("txn.aborted")
	c.inDoubt = reg.Counter("txn.indoubt")
	c.refused = reg.Counter("txn.refused")
	c.latency = reg.Histogram("txn.latency.seconds")
	c.polyInstalls = reg.Counter("poly.installs")
	c.polyReductions = reg.Counter("poly.reductions")
	c.polyForks = reg.Counter("poly.forks")
	c.population = reg.Gauge("poly.population")
	c.lifetime = reg.Histogram("poly.lifetime.seconds")
	c.phaseRead = reg.Histogram("protocol.phase.seconds", metrics.L("phase", "read"))
	c.phasePrepare = reg.Histogram("protocol.phase.seconds", metrics.L("phase", "prepare"))
	c.phaseWait = reg.Histogram("protocol.phase.seconds", metrics.L("phase", "wait"))
	c.phaseSettle = reg.Histogram("protocol.phase.seconds", metrics.L("phase", "settle"))
	c.decisionResends = reg.Counter("txn.decision.resends")
	c.outcomeRetries = reg.Counter("txn.outcome.retries")
	c.deadlineCoord = reg.Counter("txn.deadline.exceeded", metrics.L("role", "coordinator"))
	c.deadlinePart = reg.Counter("txn.deadline.exceeded", metrics.L("role", "participant"))
	c.degradedTxns = reg.Counter("txn.degraded.blocking")
	c.paxosVotes = reg.Counter("paxos.votes")
	c.paxosAccepts = reg.Counter("paxos.accepts")
	c.paxosRejects = reg.Counter("paxos.rejects")
	c.paxosTakeovers = reg.Counter("paxos.takeovers")
	c.paxosDecisions = reg.Counter("paxos.decisions")
	c.aeRounds = reg.Counter("antientropy.rounds")
	c.aeOutcomesLearned = reg.Counter("antientropy.outcomes.learned")
	c.aeItemsCopied = reg.Counter("antientropy.items.copied")
	c.installAt = map[lifeKey]vclock.Time{}
	c.residency = map[protocol.SiteID]*metrics.Histogram{}
	if c.wall != nil && c.cfg.Lanes > 1 {
		// Hot-path histograms are observed concurrently in lane mode:
		// committed-latency lands in outbox flushes outside the site
		// mutex, and an in-process bench shares one registry across
		// several node clusters.  Stripe them so the histogram mutex
		// stops serializing lanes; sim clusters never reach here and
		// keep the exact single-lock reservoir.
		for _, h := range []*metrics.Histogram{
			c.latency, c.lifetime,
			c.phaseRead, c.phasePrepare, c.phaseWait, c.phaseSettle,
		} {
			h.Stripe(c.cfg.Lanes)
		}
	}
}

// Metrics exposes the cluster's registry for snapshots, diffs and text
// export.
func (c *Cluster) Metrics() *metrics.Registry { return c.reg }

// trackPut maintains the polyvalue population gauge and the lifetime
// histogram across an item-store write: a certain→uncertain transition is
// an install (timestamped with the simulated clock), uncertain→certain a
// reduction whose lifetime is observed.  Runs on the writing site's
// goroutine; cluster events are serialized, so the map needs no lock.
func (c *Cluster) trackPut(site protocol.SiteID, item string, before, after polyvalue.Poly) {
	_, wasCertain := before.IsCertain()
	_, isCertain := after.IsCertain()
	if wasCertain == isCertain {
		return
	}
	key := lifeKey{site: site, item: item}
	now := c.clk.Now()
	if isCertain {
		c.population.Add(-1)
		if t, ok := c.installAt[key]; ok {
			c.lifetime.Observe((now - t).Seconds())
			c.residencyHist(site).Observe((now - t).Seconds())
			delete(c.installAt, key)
		}
		return
	}
	c.population.Add(1)
	c.installAt[key] = now
}

// residencyHist returns (registering on first use) the per-site
// polyvalue residency histogram: the same install→reduction interval as
// poly.lifetime.seconds, broken out by the site holding the item.
func (c *Cluster) residencyHist(site protocol.SiteID) *metrics.Histogram {
	h, ok := c.residency[site]
	if !ok {
		h = c.reg.Histogram("poly.residency.seconds", metrics.L("site", string(site)))
		c.residency[site] = h
	}
	return h
}

// seedLifecycle accounts for polyvalues already present in a recovered
// store at cluster construction (file-backed DataDir restarts): they
// join the population gauge with their install time taken as the
// cluster's epoch.
func (c *Cluster) seedLifecycle(site protocol.SiteID, items []string) {
	for _, item := range items {
		c.population.Add(1)
		c.installAt[lifeKey{site: site, item: item}] = c.clk.Now()
	}
}
