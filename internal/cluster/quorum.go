package cluster

import (
	"sort"

	"repro/internal/expr"
	"repro/internal/polyvalue"
	"repro/internal/protocol"
	"repro/internal/replica"
	"repro/internal/trace"
	"repro/internal/txn"
	"repro/internal/vclock"
)

// Quorum replication (cfg.Replication set): transactions and queries
// are written against LOGICAL item names and the coordinator speaks to
// each item's K physical replicas (<logical>_r<i>, placed on distinct
// sites by replica.Placement).
//
// Read phase: probe all K replicas of every accessed logical with read
// locks.  A logical is satisfied once R (read-only) or max(R, W)
// (written) distinct replicas answered; unreachable sites are simply
// never waited for — this is what keeps the majority side of a
// partition serving while write-all would stall.  Each reply carries
// the replica's EFFECTIVE version (max of committed and pending), so
// the winner pick below always sees the newest value a read quorum can
// prove, and two concurrent transactions can never mint the same
// version number.
//
// Prepare phase: per logical, the winner is the reply with the highest
// effective version (ties broken toward the lowest replica index); the
// write set is the first W responding replica indices, stamped with
// version winner+1.  The program is rewritten onto those physical
// names (replica.RewritePlan) and prepared only at the responding
// sites — respondents hosting no write replica vote ready-read-only
// and leave early, probed sites that never answered self-release via
// the lock timeout.  Replicas outside the write quorum go stale and
// are converged later by the anti-entropy plane (antientropy.go).
type quorumCtx struct {
	// replies[logical][replicaIndex] is the collected probe response.
	replies map[string]map[int]replicaReply
	// needed[logical] is how many distinct replica responses the
	// logical requires before the quorum is satisfied.
	needed map[string]int
	// written marks logicals in the transaction's write set.
	written map[string]bool
	// responded records the sites whose read replies arrived; the
	// participant set is narrowed to exactly these at prepare time.
	responded map[protocol.SiteID]bool
}

// replicaReply is one replica's answer to the read probe.
type replicaReply struct {
	val polyvalue.Poly
	ver uint64
}

// satisfied reports whether every tracked logical reached its quorum.
func (q *quorumCtx) satisfied() bool {
	for logical, need := range q.needed {
		if len(q.replies[logical]) < need {
			return false
		}
	}
	return true
}

// winner returns the freshest reply for a logical: highest effective
// version, ties broken toward the lowest replica index (so every
// coordinator picks the same winner from the same replies).
func (q *quorumCtx) winner(logical string) (val polyvalue.Poly, idx int, ver uint64) {
	first := true
	for i, r := range q.replies[logical] {
		if first || r.ver > ver || (r.ver == ver && i < idx) {
			val, idx, ver = r.val, i, r.ver
			first = false
		}
	}
	return val, idx, ver
}

// sortedLogicals returns the tracked logical names in sorted order.
func (q *quorumCtx) sortedLogicals() []string {
	out := make([]string, 0, len(q.needed))
	for logical := range q.needed {
		out = append(out, logical)
	}
	sort.Strings(out)
	return out
}

// beginQuorumTxn is beginTxn for quorum replication: validate the
// logical names, then probe all K replicas of every accessed item.
func (s *Site) beginQuorumTxn(t txn.T, h *Handle) {
	rep := s.c.cfg.Replication
	ctx := &coordCtx{
		tid: t.ID, t: t, handle: h,
		readWait: map[protocol.SiteID]bool{},
		values:   map[string]polyvalue.Poly{},
		startAt:  s.c.clk.Now(),
	}
	if d := s.c.cfg.TxnDeadline; d > 0 {
		ctx.deadline = ctx.startAt + vclock.Time(d)
	}
	if s.spansOn() {
		ctx.span = s.c.cfg.Spans.NextID()
	}
	for _, logical := range t.Items() {
		if err := replica.CheckName(logical); err != nil {
			s.c.aborted.Inc()
			s.decideHandle(h, StatusAborted, "replica: "+err.Error())
			s.recordTxnRoot(ctx, StatusAborted, "replica: "+err.Error(), true)
			return
		}
	}
	q := &quorumCtx{
		replies:   map[string]map[int]replicaReply{},
		needed:    map[string]int{},
		written:   map[string]bool{},
		responded: map[protocol.SiteID]bool{},
	}
	ctx.quorum = q
	for _, logical := range t.WriteSet() {
		q.written[logical] = true
	}
	probe := map[protocol.SiteID][]string{}
	for _, logical := range t.Items() {
		need := rep.R
		if q.written[logical] && rep.W > need {
			need = rep.W
		}
		q.needed[logical] = need
		q.replies[logical] = map[int]replicaReply{}
		for i := 0; i < rep.K; i++ {
			phys := replica.Name(logical, i)
			owner := s.c.Placement(phys)
			probe[owner] = append(probe[owner], phys)
		}
	}
	// All probed sites are participants until prepare narrows the set:
	// a read-phase abort then fans to every site that might hold locks.
	ctx.participants = sortedSites(probe)
	s.coords[t.ID] = ctx
	if ctx.deadline > 0 {
		ctx.deadlineTimer = s.after(s.c.cfg.TxnDeadline, func() { s.onTxnDeadline(t.ID) })
	}
	for _, site := range ctx.participants {
		items := probe[site]
		sort.Strings(items)
		ctx.readWait[site] = true
		s.send(protocol.Message{
			Kind: protocol.MsgReadReq, TID: t.ID, To: site,
			Items: items, Lock: true, Coordinator: s.id,
			Deadline: s.remainingDeadline(ctx),
			TraceCtx: s.traceCtx(ctx),
		})
	}
	ctx.readTimer = s.after(s.c.cfg.ReadyTimeout, func() { s.onReadTimeout(ctx.tid) })
}

// beginQuorumQuery scatters a read-only query to all K replicas of
// every referenced logical and evaluates against the R-quorum winners.
// No locks: a query needs R reachable replicas per item, nothing more —
// reads keep working on the majority side of a partition.
func (s *Site) beginQuorumQuery(qid txn.ID, node expr.Node, qh *QueryHandle, certainBy vclock.Time) {
	rep := s.c.cfg.Replication
	ctx := &coordCtx{
		tid: qid, isQuery: true, qh: qh, qnode: node, qCertainBy: certainBy,
		readWait: map[protocol.SiteID]bool{},
		values:   map[string]polyvalue.Poly{},
	}
	q := &quorumCtx{
		replies:   map[string]map[int]replicaReply{},
		needed:    map[string]int{},
		written:   map[string]bool{},
		responded: map[protocol.SiteID]bool{},
	}
	ctx.quorum = q
	set := map[string]bool{}
	exprVars(node, set)
	probe := map[protocol.SiteID][]string{}
	for logical := range set {
		if err := replica.CheckName(logical); err != nil {
			s.completeQuery(qh, polyvalue.Poly{}, err)
			return
		}
		q.needed[logical] = rep.R
		q.replies[logical] = map[int]replicaReply{}
		for i := 0; i < rep.K; i++ {
			phys := replica.Name(logical, i)
			probe[s.c.Placement(phys)] = append(probe[s.c.Placement(phys)], phys)
		}
	}
	s.coords[qid] = ctx
	if len(probe) == 0 {
		s.finishQuery(ctx)
		return
	}
	for _, site := range sortedSites(probe) {
		items := probe[site]
		sort.Strings(items)
		ctx.readWait[site] = true
		s.send(protocol.Message{
			Kind: protocol.MsgReadReq, TID: qid, To: site,
			Items: items, Lock: false, Coordinator: s.id,
		})
	}
	ctx.readTimer = s.after(s.c.cfg.ReadyTimeout, func() { s.onReadTimeout(qid) })
}

// onQuorumReadRep folds one probe response in and fires the next phase
// once every logical reached its quorum.  Late replies after that are
// dropped by onReadRep's ctx.prepared guard (transactions) or the
// deleted context (queries).
func (s *Site) onQuorumReadRep(ctx *coordCtx, msg protocol.Message) {
	delete(ctx.readWait, msg.From)
	q := ctx.quorum
	q.responded[msg.From] = true
	for phys, p := range msg.Values {
		logical, i, ok := replica.Logical(phys)
		if !ok {
			continue
		}
		if _, tracked := q.needed[logical]; !tracked {
			continue
		}
		q.replies[logical][i] = replicaReply{val: p, ver: msg.Versions[phys]}
	}
	if !q.satisfied() {
		return
	}
	s.c.clk.Cancel(ctx.readTimer)
	if ctx.isQuery {
		// Evaluate against the freshest value each read quorum saw,
		// keyed back to the logical names the expression references.
		for _, logical := range q.sortedLogicals() {
			val, _, _ := q.winner(logical)
			ctx.values[logical] = val
		}
		s.finishQuery(ctx)
		return
	}
	s.sendQuorumPrepares(ctx)
}

// sendQuorumPrepares rewrites the logical program onto the winning
// physical replicas and distributes it to the responding sites.
func (s *Site) sendQuorumPrepares(ctx *coordCtx) {
	if s.maybeCrash(CrashBeforePrepare, ctx.tid) {
		return
	}
	if ctx.deadline > 0 && s.c.clk.Now() >= ctx.deadline {
		s.c.deadlineCoord.Inc()
		s.decide(ctx, false, reasonDeadline)
		return
	}
	q := ctx.quorum
	rep := s.c.cfg.Replication
	ctx.prepared = true
	ctx.prepareAt = s.c.clk.Now()
	s.c.phaseRead.Observe((ctx.prepareAt - ctx.startAt).Seconds())
	if s.spansOn() {
		s.recordSpan(trace.Span{Kind: spanPhaseRead, TID: string(ctx.tid),
			Parent: ctx.span, Start: ctx.startAt, End: ctx.prepareAt})
	}

	// Winner pick, write-set selection and version mint, per logical.
	plan := replica.Plan{Reads: map[string]int{}, Writes: map[string][]int{}}
	newVer := map[string]uint64{}
	physVals := map[string]polyvalue.Poly{}
	for _, logical := range q.sortedLogicals() {
		val, idx, ver := q.winner(logical)
		plan.Reads[logical] = idx
		physVals[replica.Name(logical, idx)] = val
		if !q.written[logical] {
			continue
		}
		idxs := make([]int, 0, len(q.replies[logical]))
		for i := range q.replies[logical] {
			idxs = append(idxs, i)
		}
		sort.Ints(idxs)
		plan.Writes[logical] = idxs[:rep.W]
		newVer[logical] = ver + 1
	}
	rewritten, err := replica.RewritePlan(ctx.t.Program, plan)
	if err != nil {
		s.decide(ctx, false, "replica rewrite: "+err.Error())
		return
	}
	ctx.values = physVals

	// Only respondents participate in the commit round; probed sites
	// that never answered hold no vote — this is the line that lets
	// W-of-K commit ride out a partition.  Tell them to drop their read
	// locks now rather than wait out the lock timeout: a reachable site
	// whose reply simply lost the quorum race would otherwise refuse
	// every overlapping transaction for the full timeout.  (If the site
	// is the unreachable one, the release is lost with everything else
	// and the lock timeout still reclaims its locks.)
	for site := range ctx.readWait {
		s.send(protocol.Message{Kind: protocol.MsgReadRelease, TID: ctx.tid, To: site})
	}
	resp := make([]protocol.SiteID, 0, len(q.responded))
	for site := range q.responded {
		resp = append(resp, site)
	}
	sort.Slice(resp, func(i, j int) bool { return resp[i] < resp[j] })
	ctx.participants = resp
	ctx.machine = protocol.NewCoordinator(ctx.tid, ctx.participants)
	ctx.machine.Instrument(s.c.reg)
	if s.paxosPlane() {
		s.paxosBegin(ctx)
	}

	depTIDs := map[txn.ID]bool{}
	for _, p := range physVals {
		for _, dep := range p.DependsOn() {
			depTIDs[dep] = true
		}
	}
	writeOwner := map[protocol.SiteID][]string{}
	for logical, idxs := range plan.Writes {
		for _, i := range idxs {
			phys := replica.Name(logical, i)
			owner := s.c.Placement(phys)
			writeOwner[owner] = append(writeOwner[owner], phys)
		}
	}
	ctx.readOnly = map[protocol.SiteID]bool{}
	for _, site := range ctx.participants {
		items := writeOwner[site]
		sort.Strings(items)
		roOpt := len(items) == 0 && !s.c.cfg.DisableReadOnlyOpt
		var vals map[string]polyvalue.Poly
		var vers map[string]uint64
		if !roOpt {
			vals = copyValues(physVals)
			for dep := range depTIDs {
				if site != s.id {
					_ = s.store.AddDepSite(dep, string(site))
				}
			}
			vers = make(map[string]uint64, len(items))
			for _, phys := range items {
				logical, _, _ := replica.Logical(phys)
				vers[phys] = newVer[logical]
			}
		}
		s.send(protocol.Message{
			Kind: protocol.MsgPrepare, TID: ctx.tid, To: site,
			Items: items, Values: vals, Versions: vers,
			Program: rewritten.String(), Coordinator: s.id,
			Deadline: s.remainingDeadline(ctx),
			TraceCtx: s.traceCtx(ctx),
		})
	}
	ctx.readyTimer = s.after(s.c.cfg.ReadyTimeout, func() { s.onReadyTimeout(ctx.tid) })
}
