// Package cluster is the distributed-database runtime: one goroutine per
// site, a simulated network, and the paper's update protocol end to end —
// read collection, two-phase commit, wait-phase timeout with polyvalue
// installation (§3.1), polytransaction execution (§3.2), and distributed
// outcome propagation (§3.3).
//
// Determinism: although each site runs as its own goroutine, every
// message delivery and timer fires from the cluster's single
// discrete-event scheduler, and the dispatching event blocks until the
// target site finishes processing.  At most one goroutine is ever active,
// so a run is a pure function of (configuration, seed, submitted work) —
// which is what lets the failure-injection tests assert exact outcomes.
package cluster

import (
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/protocol"
	"repro/internal/storage"
	"repro/internal/trace"
	"repro/internal/transport"
)

// Policy selects the participant's behaviour when the wait phase times
// out.
type Policy uint8

const (
	// PolicyPolyvalue is the paper's mechanism: install polyvalues for
	// the transaction's updates and return to idle, keeping the items
	// available (§3.1).
	PolicyPolyvalue Policy = iota
	// PolicyBlocking is the classic 2PC baseline: hold the items locked
	// until the outcome is learned.  Used by the A1 ablation benchmark.
	PolicyBlocking
	// PolicyArbitrary is the paper's §2.3 "relaxed consistency" baseline:
	// the in-doubt site makes an arbitrary local decision to complete or
	// abort.  Processing continues (like polyvalues) but atomicity can be
	// violated — some sites may apply a transaction others discarded.
	// Used by the A3 ablation benchmark.
	PolicyArbitrary
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PolicyBlocking:
		return "blocking"
	case PolicyArbitrary:
		return "arbitrary"
	default:
		return "polyvalue"
	}
}

// DecisionPlane selects where the commit/abort decision lives.
type DecisionPlane string

const (
	// PlaneWAL is the classic plane (and the default): the decision is
	// a single record in the coordinator's WAL, and a dead coordinator
	// leaves in-doubt participants waiting (polyvalues keep the data
	// available meanwhile).
	PlaneWAL DecisionPlane = "wal"
	// PlanePaxos replicates the decision with Paxos Commit (Gray &
	// Lamport): one Paxos instance per participant-vote across 2F+1
	// acceptor sites.  Any site can drive an in-doubt transaction to a
	// durable decision after up to F acceptor failures plus the
	// coordinator — presumed abort is replaced by consensus takeover.
	PlanePaxos DecisionPlane = "paxos"
)

// ReplicationConfig turns on k-way quorum replication.  Transactions
// and queries are written against LOGICAL item names; the coordinator
// probes all K physical replicas (<logical>_r<i>) with read locks,
// proceeds once any W (writes) / R (reads) respond, picks the freshest
// value by version, and stamps every replica write with a new version.
// W+R > K guarantees every read quorum overlaps every write quorum, so
// the freshest committed value is always seen.  Replicas missed by a
// commit converge later through the anti-entropy gossip plane.
type ReplicationConfig struct {
	// K is the number of replicas per logical item (1 ≤ K ≤ len(Sites)).
	K int
	// W is the write quorum: a transaction commits onto the first W
	// replicas whose sites answered the read probe.
	W int
	// R is the read quorum: how many replica responses a read needs
	// before the freshest version is trusted.
	R int
}

// AntiEntropyConfig tunes the gossip plane that runs alongside quorum
// replication: each site periodically exchanges compact digests of
// known transaction outcomes and hosted replica versions with a random
// peer, pulling missing outcomes (reducing stranded polyvalues) and
// fresher replica values with no coordinator involvement.
type AntiEntropyConfig struct {
	// Interval paces gossip rounds per site (default 1s, simulated).
	Interval time.Duration
	// Fanout is how many peers each round contacts (default 1).
	Fanout int
	// MaxOutcomes caps the transaction outcomes per digest (default 64;
	// the window rotates across rounds so every outcome is eventually
	// offered).
	MaxOutcomes int
	// MaxItems caps the logical-item versions per digest (default 128,
	// same rotation).
	MaxItems int
}

// Config parameterizes a cluster.
type Config struct {
	// Sites lists the site identifiers; at least one.
	Sites []protocol.SiteID
	// Net configures latency/jitter/seed of the simulated network.
	Net network.Config
	// WaitTimeout is how long a participant waits for complete/abort
	// before installing polyvalues (or blocking, per Policy).
	// Default 250ms (simulated).
	WaitTimeout time.Duration
	// ReadyTimeout is how long the coordinator collects ready messages
	// before aborting.  Default 250ms (simulated).
	ReadyTimeout time.Duration
	// LockTimeout is how long a read-locked participant waits for the
	// prepare message before unilaterally releasing (the coordinator must
	// have failed before prepare; it can never commit without our ready).
	// Default: WaitTimeout.
	LockTimeout time.Duration
	// RetryInterval paces outcome-request retries from in-doubt sites.
	// Default 500ms (simulated).
	RetryInterval time.Duration
	// RetryBackoffMax caps the exponential backoff applied to outcome
	// inquiries and coordinator decision retransmissions: retry N waits
	// about RetryInterval·2^(N-1) (±50% jitter), never more than this.
	// Default 8×RetryInterval.
	RetryBackoffMax time.Duration
	// OutcomeTTL is how long an outcome record is retained after every
	// participant has acknowledged it (coordinator side) or after local
	// dependencies are cleared (participant side), before being
	// garbage-collected per §3.3.  0 means the default 5s (simulated);
	// negative disables GC entirely.
	OutcomeTTL time.Duration
	// CheckpointBytes triggers a WAL compaction whenever a site's log
	// exceeds this size (and twice its post-compaction size, so stores
	// whose live state alone exceeds the threshold are not compacted on
	// every message).  0 means the default 256 KiB; negative disables
	// auto-checkpointing.
	CheckpointBytes int
	// Policy selects wait-phase timeout behaviour.  Default
	// PolicyPolyvalue.
	Policy Policy
	// DecisionPlane selects where the commit/abort decision lives:
	// PlaneWAL (default) logs it on the coordinator only; PlanePaxos
	// replicates it across an acceptor group with Paxos Commit, making
	// the decision reachable after coordinator loss.
	DecisionPlane DecisionPlane
	// PaxosAcceptors sizes the PlanePaxos acceptor group (2F+1; even
	// values are rounded down to the next odd).  The group is the
	// sorted-membership prefix, so every site derives the same set.  0
	// means min(5, len(Sites)) rounded down to odd.
	PaxosAcceptors int
	// AdmissionLimit caps in-flight coordinated transactions per site;
	// over the cap, SubmitProgram sheds with ErrOverload (counted as
	// site.admission.shed) instead of queueing without bound.  0 or
	// negative means unlimited.
	AdmissionLimit int
	// TxnDeadline is the end-to-end time budget attached to every
	// submitted transaction.  The coordinator aborts expired work; the
	// remaining budget rides read-req and prepare messages, and a
	// participant whose deadline expires in the wait phase resolves per
	// Policy (polyvalues, blocking, or arbitrary) without waiting out the
	// full WaitTimeout.  0 or negative disables deadlines.
	TxnDeadline time.Duration
	// MaxPolyBudget caps the per-site polyvalue population.  At the cap
	// an in-doubt participant degrades to classic blocking 2PC — locks
	// held, nothing installed — until reductions free budget (the paper
	// presents polyvalues as an optional overlay on two-phase commit, so
	// plain 2PC is the principled fallback).  0 or negative means
	// unlimited.
	MaxPolyBudget int
	// MaxDepBudget caps the per-site §3.3 dependency-table size, with
	// the same degradation as MaxPolyBudget.  0 or negative means
	// unlimited.
	MaxDepBudget int
	// Tracer receives protocol events; nil means no tracing.
	Tracer trace.Tracer
	// Spans, when set, receives structured per-transaction spans from
	// every site of this cluster: coordinator phases, participant
	// compute/wait/blocked intervals, polyvalue installs and reductions,
	// lock hold windows, and budget transitions.  Nil (the default)
	// disables span tracing entirely — no span is recorded and no trace
	// context is stamped on the wire, so the canonical payload encoding
	// is unchanged.  Harnesses keep the log outside the cluster so spans
	// survive crash/restart cycles.
	Spans *trace.SpanLog
	// Metrics, when set, is the registry all cluster/network/protocol/
	// storage series are registered against — share one registry across
	// clusters to aggregate, or leave nil for a private registry
	// (retrievable via Cluster.Metrics).
	Metrics *metrics.Registry
	// Placement maps an item to its owning site; nil means FNV-hash over
	// Sites.  Must be deterministic.
	Placement func(item string) protocol.SiteID
	// DisableReadOnlyOpt turns off the read-only participant
	// optimization: by default a participant holding only read items
	// votes ready-read-only, releases immediately, and is excluded from
	// the decision round.
	DisableReadOnlyOpt bool
	// DisableOnePhaseOpt turns off the §2.1 "lock avoidance"
	// optimization: by default a transaction whose items all live on the
	// coordinating site commits locally in one step — no prepare/ready
	// round, no in-doubt window, no messages at all.
	DisableOnePhaseOpt bool
	// MaxAlternatives caps polytransaction fan-out (0 = package default).
	MaxAlternatives int
	// SimBatch, when set, wraps the simulated fabric in a
	// transport.Batcher so the deterministic runtime exercises the same
	// message-coalescing seam (and batch wire codec) the TCP transport
	// uses.  Flush timing runs on the discrete-event scheduler, so runs
	// stay reproducible.  Nil means unbatched sim sends, as before.
	SimBatch *transport.BatchParams
	// DataDir, when set, backs every site's store with a file WAL
	// (<DataDir>/<site>.wal).  A cluster re-created over the same
	// directory recovers each site's durable state — including in-doubt
	// transactions, which convert to polyvalues exactly as a site restart
	// would.  Close flushes and closes the logs.
	DataDir string
	// Replication, when set, turns on quorum replication over logical
	// item names (see ReplicationConfig).  Nil (the default) keeps the
	// classic single-copy protocol.  When set and Placement is nil, the
	// replica-aware placement (each logical item's replicas on distinct
	// sites) is installed automatically.
	Replication *ReplicationConfig
	// AntiEntropy tunes the gossip plane; only active with Replication.
	// Nil means defaults.
	AntiEntropy *AntiEntropyConfig
	// Suspected, when set, steers anti-entropy peer selection away from
	// sites the failure detector currently suspects — gossip rounds are
	// not wasted on peers whose messages a breaker would drop anyway.
	// Must be safe for concurrent use.
	Suspected func(protocol.SiteID) bool
	// Lanes > 1 splits each site's event execution across that many
	// key-sharded lanes (goroutines), routed by transaction ID.  Lanes
	// are a wall-clock-mode (NewNode) optimization only: protocol state
	// stays under a single per-site mutex, so lanes overlap only the
	// blocking group-commit fsync waits, never protocol logic.
	// Simulated clusters (New) ignore Lanes entirely and remain
	// single-threaded and seed-reproducible.
	Lanes int
	// SyncWAL, with DataDir set, makes every site event durable before
	// its outputs (protocol sends, client decisions) leave the site:
	// WAL frames route through a group-commit stage and each event
	// waits for its records to be fsynced before externalizing.  With
	// Lanes <= 1 the fsync is paid inline per event (serialized); with
	// Lanes > 1 concurrent events share one fsync per flush batch.
	SyncWAL bool
	// GroupCommitWindow adds a fixed accumulation delay before each
	// group-commit flush (larger batches, higher latency).  Zero — the
	// default — flushes as soon as the flusher is free, which still
	// groups every frame that arrived during the previous fsync.
	GroupCommitWindow time.Duration
	// DiskFS, with DataDir set, is the filesystem the site's WAL lives
	// on.  Nil means the real filesystem (storage.OSFS); tests and
	// torture harnesses pass a *storage.FaultFS to inject fsync
	// failures, torn writes, ENOSPC, read corruption and slow-disk
	// delays underneath the durability path.
	DiskFS storage.FS
}

func (c *Config) fillDefaults() {
	if c.WaitTimeout <= 0 {
		c.WaitTimeout = 250 * time.Millisecond
	}
	if c.ReadyTimeout <= 0 {
		c.ReadyTimeout = 250 * time.Millisecond
	}
	if c.LockTimeout <= 0 {
		c.LockTimeout = c.WaitTimeout
	}
	if c.RetryInterval <= 0 {
		c.RetryInterval = 500 * time.Millisecond
	}
	if c.RetryBackoffMax <= 0 {
		c.RetryBackoffMax = 8 * c.RetryInterval
	}
	if c.OutcomeTTL == 0 {
		c.OutcomeTTL = 5 * time.Second
	}
	if c.CheckpointBytes == 0 {
		c.CheckpointBytes = 256 << 10
	}
	if c.Tracer == nil {
		c.Tracer = trace.Nop{}
	}
	if c.DecisionPlane == "" {
		c.DecisionPlane = PlaneWAL
	}
	if c.Replication != nil {
		// Copy before defaulting so the caller's struct is not mutated.
		ae := AntiEntropyConfig{}
		if c.AntiEntropy != nil {
			ae = *c.AntiEntropy
		}
		if ae.Interval <= 0 {
			ae.Interval = time.Second
		}
		if ae.Fanout <= 0 {
			ae.Fanout = 1
		}
		if ae.MaxOutcomes <= 0 {
			ae.MaxOutcomes = 64
		}
		if ae.MaxItems <= 0 {
			ae.MaxItems = 128
		}
		c.AntiEntropy = &ae
	}
}

func validDecisionPlane(p DecisionPlane) error {
	switch p {
	case "", PlaneWAL, PlanePaxos:
		return nil
	}
	return fmt.Errorf("cluster: unknown decision plane %q (have %q, %q)", p, PlaneWAL, PlanePaxos)
}

func validReplication(cfg *Config) error {
	r := cfg.Replication
	if r == nil {
		return nil
	}
	if r.K < 1 {
		return fmt.Errorf("cluster: replication needs K ≥ 1, got %d", r.K)
	}
	if r.K > len(cfg.Sites) {
		return fmt.Errorf("cluster: replication K=%d exceeds the %d configured sites", r.K, len(cfg.Sites))
	}
	if r.W < 1 || r.W > r.K {
		return fmt.Errorf("cluster: write quorum W=%d outside [1, K=%d]", r.W, r.K)
	}
	if r.R < 1 || r.R > r.K {
		return fmt.Errorf("cluster: read quorum R=%d outside [1, K=%d]", r.R, r.K)
	}
	if r.W+r.R <= r.K {
		return fmt.Errorf("cluster: quorums must overlap: W+R=%d must exceed K=%d", r.W+r.R, r.K)
	}
	return nil
}
