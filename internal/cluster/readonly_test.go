package cluster

import (
	"testing"
	"time"

	"repro/internal/network"
	"repro/internal/polyvalue"
	"repro/internal/protocol"
	"repro/internal/value"
)

// countMsgs runs fn against a fresh cluster and returns how many
// messages the network carried.
func newROCluster(t *testing.T, disable bool) *Cluster {
	t.Helper()
	c, err := New(Config{
		Sites: []protocol.SiteID{"A", "B", "C"},
		Net:   network.Config{Latency: 10 * time.Millisecond},
		Placement: func(item string) protocol.SiteID {
			switch item[0] {
			case 'a':
				return "A"
			case 'b':
				return "B"
			default:
				return "C"
			}
		},
		DisableReadOnlyOpt: disable,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// TestReadOnlyParticipantCommits: a transaction with a read-only
// participant commits correctly under the optimization.
func TestReadOnlyParticipantCommits(t *testing.T) {
	c := newROCluster(t, false)
	loadInt(t, c, "bsrc", 500)
	h, _ := c.Submit("A", "cflag = bsrc >= 100") // B is read-only
	c.RunFor(time.Second)
	if h.Status() != StatusCommitted {
		t.Fatalf("status = %v (%s)", h.Status(), h.Reason())
	}
	if v, ok := c.Read("cflag").IsCertain(); !ok || !v.Equal(value.Bool(true)) {
		t.Errorf("cflag = %v", c.Read("cflag"))
	}
}

// TestReadOnlyOptSavesMessages: the optimization strictly reduces
// message count for the same transaction.
func TestReadOnlyOptSavesMessages(t *testing.T) {
	run := func(disable bool) int64 {
		c := newROCluster(t, disable)
		loadInt(t, c, "bsrc", 500)
		h, _ := c.Submit("A", "cflag = bsrc >= 100")
		c.RunFor(30 * time.Second) // include ack/GC traffic
		if h.Status() != StatusCommitted {
			t.Fatalf("status = %v", h.Status())
		}
		return c.NetStats().Sent
	}
	with := run(false)
	without := run(true)
	if with >= without {
		t.Errorf("optimization did not save messages: %d vs %d", with, without)
	}
}

// TestReadOnlyParticipantFreedEarly: the read-only site's items unlock
// at ready time, before the coordinator even decides — a transaction
// arriving in that window succeeds.
func TestReadOnlyParticipantFreedEarly(t *testing.T) {
	c := newROCluster(t, false)
	loadInt(t, c, "bsrc", 500)
	// Slow the decision down by partitioning C (the write site) so its
	// ready is delayed... simpler: just verify bsrc is writable right
	// after B's ready would have been sent (~30ms in).
	h1, _ := c.Submit("A", "cflag = bsrc >= 100")
	c.RunFor(35 * time.Millisecond) // B voted ready-read-only by now
	h2, _ := c.Submit("B", "bsrc = bsrc + 1")
	c.RunFor(2 * time.Second)
	if h1.Status() != StatusCommitted {
		t.Fatalf("h1 = %v (%s)", h1.Status(), h1.Reason())
	}
	if h2.Status() != StatusCommitted {
		t.Fatalf("h2 = %v (%s) — read lock not released early", h2.Status(), h2.Reason())
	}
	if got := readInt(t, c, "bsrc"); got != 501 {
		t.Errorf("bsrc = %d", got)
	}
}

// TestReadOnlyDisabledStillCorrect: with the optimization off, the
// read-only site runs the full protocol and everything still works.
func TestReadOnlyDisabledStillCorrect(t *testing.T) {
	c := newROCluster(t, true)
	loadInt(t, c, "bsrc", 500)
	h, _ := c.Submit("A", "cflag = bsrc >= 100")
	c.RunFor(time.Second)
	if h.Status() != StatusCommitted {
		t.Fatalf("status = %v (%s)", h.Status(), h.Reason())
	}
	if v, ok := c.Read("cflag").IsCertain(); !ok || !v.Equal(value.Bool(true)) {
		t.Errorf("cflag = %v", c.Read("cflag"))
	}
}

// TestReadOnlyWithPolyvaluedInput: the optimization composes with §3.2 —
// the read site ships a polyvalue, the write site composes alternatives,
// and the read site still exits early.
func TestReadOnlyWithPolyvaluedInput(t *testing.T) {
	c := newROCluster(t, false)
	if err := c.Load("bsrc", polyvalue.Uncertain("T9",
		polyvalue.Simple(value.Int(500)), polyvalue.Simple(value.Int(450)))); err != nil {
		t.Fatal(err)
	}
	h, _ := c.Submit("A", "ccopy = bsrc + 1")
	c.RunFor(time.Second)
	if h.Status() != StatusCommitted {
		t.Fatalf("status = %v (%s)", h.Status(), h.Reason())
	}
	out := c.Read("ccopy")
	if out.NumPairs() != 2 {
		t.Fatalf("ccopy = %v", out)
	}
	min, max, _ := out.MinMax()
	if min != 451 || max != 501 {
		t.Errorf("ccopy range = [%g, %g]", min, max)
	}
}
