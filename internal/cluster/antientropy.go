package cluster

import (
	"hash/fnv"
	"sort"

	"repro/internal/polyvalue"
	"repro/internal/protocol"
	"repro/internal/replica"
	"repro/internal/txn"
	"repro/internal/vclock"
)

// Anti-entropy gossip (quorum replication only): every AntiEntropy
// Interval each site opens a round with a deterministically-chosen peer
// and they exchange (1) transaction outcomes — the epidemic §3.3
// channel that reduces stranded polyvalues when the coordinator that
// decided them is dead — and (2) versioned replica values, converging
// the replicas a W-of-K commit skipped.  Three messages per round:
//
//	Digest (initiator → peer):  my recent outcomes; committed versions
//	                            of the logicals I host
//	Reply  (peer → initiator):  outcomes you were missing; my fresher
//	                            values; the logicals I want from you
//	Update (initiator → peer):  the wanted values
//
// Value copies are guarded four ways: the incoming value must be
// certain, the local replica must be certain (gossip never overwrites
// a polyvalue — reduction owns that), unlocked (no live transaction is
// mid-flight on it), and strictly older by version.  Outcome learning
// has no such guard: resolveOutcome already handles every local state.
func (s *Site) armGossip() {
	ae := s.c.cfg.AntiEntropy
	// Jitter the interval (hash, not PRNG — simulated runs must stay
	// deterministic) so sites don't gossip in lockstep.
	h := fnv.New64a()
	h.Write([]byte(s.id))
	h.Write([]byte{byte(s.aeRound), byte(s.aeRound >> 8), byte(s.aeRound >> 16)})
	jitter := 0.75 + float64(h.Sum64()%1024)/2048 // 0.75x .. 1.25x
	d := vclock.Time(float64(ae.Interval) * jitter)
	s.aeTimer = s.after(d, func() {
		s.aeRound++
		s.gossipRound()
		s.armGossip()
	})
}

// gossipRound opens one round: pick Fanout peers and send each a
// digest of our outcomes and hosted replica versions.
func (s *Site) gossipRound() {
	peers := s.gossipPeers()
	if len(peers) == 0 {
		return
	}
	outs, vers := s.buildDigest()
	if len(outs) == 0 && len(vers) == 0 {
		return
	}
	s.c.aeRounds.Inc()
	for _, peer := range peers {
		s.send(protocol.Message{
			Kind: protocol.MsgAntiEntropyDigest, To: peer,
			Outcomes: outs, Versions: vers,
		})
	}
}

// gossipPeers picks Fanout peers for this round, deterministically from
// (site, round), skipping self and — when the Suspected hook is wired —
// peers the failure detector currently distrusts (a breaker would drop
// the messages anyway; spend the round on someone reachable).
func (s *Site) gossipPeers() []protocol.SiteID {
	var candidates []protocol.SiteID
	for _, id := range s.c.order {
		if id == s.id {
			continue
		}
		if sus := s.c.cfg.Suspected; sus != nil && sus(id) {
			continue
		}
		candidates = append(candidates, id)
	}
	if len(candidates) == 0 {
		return nil
	}
	n := s.c.cfg.AntiEntropy.Fanout
	if n > len(candidates) {
		n = len(candidates)
	}
	h := fnv.New64a()
	h.Write([]byte(s.id))
	h.Write([]byte{byte(s.aeRound), byte(s.aeRound >> 8), byte(s.aeRound >> 16)})
	start := int(h.Sum64() % uint64(len(candidates)))
	out := make([]protocol.SiteID, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, candidates[(start+i)%len(candidates)])
	}
	return out
}

// buildDigest summarizes this site's gossip-relevant state: known
// outcomes sorted by transaction ID and the committed version of every
// logical whose replicas we host.  Both lists are capped; the windows
// rotate with the round counter so a backlog larger than one digest is
// still fully offered over successive rounds.
func (s *Site) buildDigest() ([]protocol.OutcomeRec, map[string]uint64) {
	ae := s.c.cfg.AntiEntropy
	known := s.store.OutcomesSnapshot()
	tids := make([]string, 0, len(known))
	for tid := range known {
		tids = append(tids, string(tid))
	}
	sort.Strings(tids)
	tids = rotateWindow(tids, ae.MaxOutcomes, s.aeRound)
	outs := make([]protocol.OutcomeRec, 0, len(tids))
	for _, tid := range tids {
		outs = append(outs, protocol.OutcomeRec{TID: txn.ID(tid), Committed: known[txn.ID(tid)]})
	}

	byLogical := map[string]uint64{}
	for phys, ver := range s.store.VersionsSnapshot() {
		logical, _, ok := replica.Logical(phys)
		if !ok {
			continue
		}
		if ver > byLogical[logical] {
			byLogical[logical] = ver
		}
	}
	logicals := make([]string, 0, len(byLogical))
	for logical := range byLogical {
		logicals = append(logicals, logical)
	}
	sort.Strings(logicals)
	logicals = rotateWindow(logicals, ae.MaxItems, s.aeRound)
	vers := make(map[string]uint64, len(logicals))
	for _, logical := range logicals {
		vers[logical] = byLogical[logical]
	}
	return outs, vers
}

// rotateWindow returns up to max entries of a sorted list, starting at
// an offset that advances with the round number.
func rotateWindow(list []string, max, round int) []string {
	if len(list) <= max {
		return list
	}
	start := (round * max) % len(list)
	out := make([]string, 0, max)
	for i := 0; i < max; i++ {
		out = append(out, list[(start+i)%len(list)])
	}
	return out
}

// onAEDigest answers one gossip round: learn the offered outcomes,
// then reply with outcomes the initiator was missing, fresher values
// for the logicals it advertised, and a want-list for the ones where
// the initiator is ahead of us.
func (s *Site) onAEDigest(msg protocol.Message) {
	s.learnOutcomes(msg.Outcomes)

	ae := s.c.cfg.AntiEntropy
	offered := make(map[txn.ID]bool, len(msg.Outcomes))
	for _, rec := range msg.Outcomes {
		offered[rec.TID] = true
	}
	known := s.store.OutcomesSnapshot()
	missing := make([]string, 0, len(known))
	for tid := range known {
		if !offered[tid] {
			missing = append(missing, string(tid))
		}
	}
	sort.Strings(missing)
	missing = rotateWindow(missing, ae.MaxOutcomes, s.aeRound)
	outs := make([]protocol.OutcomeRec, 0, len(missing))
	for _, tid := range missing {
		outs = append(outs, protocol.OutcomeRec{TID: txn.ID(tid), Committed: known[txn.ID(tid)]})
	}

	vers := map[string]uint64{}
	vals := map[string]polyvalue.Poly{}
	var wants []string
	logicals := make([]string, 0, len(msg.Versions))
	for logical := range msg.Versions {
		logicals = append(logicals, logical)
	}
	sort.Strings(logicals)
	for _, logical := range logicals {
		theirs := msg.Versions[logical]
		val, mine, hosted := s.hostedReplica(logical)
		if !hosted {
			continue
		}
		if mine > theirs {
			if _, certain := val.IsCertain(); certain && len(vals) < ae.MaxItems {
				vers[logical] = mine
				vals[logical] = val
			}
		} else if mine < theirs && len(wants) < ae.MaxItems {
			wants = append(wants, logical)
		}
	}
	if len(outs) == 0 && len(vers) == 0 && len(wants) == 0 {
		return
	}
	s.send(protocol.Message{
		Kind: protocol.MsgAntiEntropyReply, To: msg.From,
		Outcomes: outs, Versions: vers, Values: vals, Items: wants,
	})
}

// onAEReply closes our side of a round we initiated: learn outcomes,
// apply the peer's fresher values, and ship the values it asked for.
func (s *Site) onAEReply(msg protocol.Message) {
	s.learnOutcomes(msg.Outcomes)
	s.applyReplicaValues(msg)
	if len(msg.Items) == 0 {
		return
	}
	vers := map[string]uint64{}
	vals := map[string]polyvalue.Poly{}
	for _, logical := range msg.Items {
		val, ver, hosted := s.hostedReplica(logical)
		if !hosted || ver == 0 {
			continue
		}
		if _, certain := val.IsCertain(); !certain {
			continue
		}
		vers[logical] = ver
		vals[logical] = val
	}
	if len(vers) == 0 {
		return
	}
	s.send(protocol.Message{
		Kind: protocol.MsgAntiEntropyUpdate, To: msg.From,
		Versions: vers, Values: vals,
	})
}

// onAEUpdate applies the round-closing value shipment.
func (s *Site) onAEUpdate(msg protocol.Message) {
	s.applyReplicaValues(msg)
}

// learnOutcomes folds gossip'd outcomes into the local store via the
// ordinary resolution path: unknown outcomes reduce dependent
// polyvalues, wake blocked participants, settle prepared entries and
// propagate further per §3.3 — exactly as if the coordinator itself
// had answered.  This is the channel that un-strands polyvalues whose
// coordinator died after deciding.
func (s *Site) learnOutcomes(recs []protocol.OutcomeRec) {
	for _, rec := range recs {
		if _, known := s.store.Outcome(rec.TID); known {
			continue
		}
		s.c.aeOutcomesLearned.Inc()
		s.c.trace("%s gossip-learned outcome of %s: commit=%v", s.id, rec.TID, rec.Committed)
		s.resolveOutcome(rec.TID, rec.Committed)
	}
}

// applyReplicaValues copies gossip'd logical values onto the stale
// local replicas that may accept them (see the guards on the package
// comment above).
func (s *Site) applyReplicaValues(msg protocol.Message) {
	logicals := make([]string, 0, len(msg.Values))
	for logical := range msg.Values {
		logicals = append(logicals, logical)
	}
	sort.Strings(logicals)
	for _, logical := range logicals {
		val := msg.Values[logical]
		ver := msg.Versions[logical]
		if ver == 0 {
			continue
		}
		if _, certain := val.IsCertain(); !certain {
			continue
		}
		for i := 0; i < s.c.cfg.Replication.K; i++ {
			phys := replica.Name(logical, i)
			if s.c.Placement(phys) != s.id {
				continue
			}
			if _, locked := s.locks[phys]; locked {
				continue
			}
			local := s.store.Get(phys)
			if _, certain := local.IsCertain(); !certain {
				continue // reduction owns polyvalued replicas
			}
			if ver <= s.store.EffectiveVersion(phys) {
				continue
			}
			if err := s.put(phys, val); err != nil {
				s.c.trace("%s gossip copy %s: %v", s.id, phys, err)
				continue
			}
			if _, err := s.store.SetVersion(phys, ver); err != nil {
				s.c.trace("%s gossip version %s: %v", s.id, phys, err)
				continue
			}
			s.c.aeItemsCopied.Inc()
			s.c.trace("%s gossip-converged %s to version %d", s.id, phys, ver)
		}
	}
}

// hostedReplica returns the freshest committed local replica of a
// logical item: its value, version, and whether this site hosts any
// replica of it at all.
func (s *Site) hostedReplica(logical string) (val polyvalue.Poly, ver uint64, hosted bool) {
	for i := 0; i < s.c.cfg.Replication.K; i++ {
		phys := replica.Name(logical, i)
		if s.c.Placement(phys) != s.id {
			continue
		}
		v := s.store.Version(phys)
		if !hosted || v > ver {
			val, ver = s.store.Get(phys), v
		}
		hosted = true
	}
	return val, ver, hosted
}
