package cluster

import (
	"net"
	"testing"
	"time"

	"repro/internal/polyvalue"
	"repro/internal/protocol"
	"repro/internal/replica"
	"repro/internal/transport"
	"repro/internal/value"
)

// newQuorumNodeHarness boots a 3-site node cluster (separate Cluster
// instances over TCP, as polybench/polynode run them) with k=3/W=2/R=2
// replication and the default hashed placement, which is what spreads
// the physical replica names across sites.
func newQuorumNodeHarness(t *testing.T) *nodeHarness {
	t.Helper()
	h := &nodeHarness{
		t:     t,
		dir:   t.TempDir(),
		peers: map[protocol.SiteID]string{},
		nodes: map[protocol.SiteID]*Cluster{},
	}
	lns := map[protocol.SiteID]net.Listener{}
	for _, id := range nodeSites {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		lns[id] = ln
		h.peers[id] = ln.Addr().String()
	}
	for _, id := range nodeSites {
		ln := lns[id]
		fab := transport.NewTCPWithListener(transport.TCPConfig{
			Self:       id,
			Peers:      h.peers,
			BackoffMin: 5 * time.Millisecond,
			BackoffMax: 100 * time.Millisecond,
			Seed:       int64(len(id)),
		}, ln)
		node, err := NewNode(Config{
			Sites:         nodeSites,
			WaitTimeout:   100 * time.Millisecond,
			ReadyTimeout:  500 * time.Millisecond,
			RetryInterval: 100 * time.Millisecond,
			DataDir:       h.dir,
			Replication:   &ReplicationConfig{K: 3, W: 2, R: 2},
		}, id, fab)
		if err != nil {
			t.Fatalf("NewNode(%s): %v", id, err)
		}
		h.nodes[id] = node
	}
	t.Cleanup(func() {
		for _, n := range h.nodes {
			if n != nil {
				n.Close()
			}
		}
	})
	return h
}

// TestNodeQuorumCommit drives a replicated transfer across real TCP
// nodes — the exact configuration polybench's inproc replication mode
// runs — and requires back-to-back transactions on the same items to
// commit without tripping over residual probe locks.
func TestNodeQuorumCommit(t *testing.T) {
	h := newQuorumNodeHarness(t)
	for item, v := range map[string]int64{"acct1": 100, "acct2": 100} {
		for _, id := range nodeSites {
			if err := h.nodes[id].LoadReplicated(item, polyvalue.Simple(value.Int(v))); err != nil {
				t.Fatalf("load %s at %s: %v", item, id, err)
			}
		}
	}

	// Several sequential transfers: each one probes (and read-locks) all
	// three replicas of both accounts, so any lock residue from txn N
	// aborts txn N+1.
	want := int64(100)
	for i := 0; i < 5; i++ {
		hd, err := h.nodes["A"].Submit("A", transferSrc(10))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		st, done := hd.Wait(10 * time.Second)
		if !done || st != StatusCommitted {
			t.Fatalf("txn %d: status=%v done=%v reason=%q", i, st, done, hd.Reason())
		}
		want -= 10
	}

	// Every replica of acct1 must converge on the final balance.
	deadline := time.Now().Add(10 * time.Second)
	for i := 0; i < 3; i++ {
		phys := replica.Name("acct1", i)
		var got polyvalue.Poly
		for time.Now().Before(deadline) {
			var holder *Cluster
			for _, id := range nodeSites {
				if h.nodes[id].Local(phys) {
					holder = h.nodes[id]
					break
				}
			}
			if holder == nil {
				t.Fatalf("no node hosts %s", phys)
			}
			got = holder.Read(phys)
			if v, ok := got.IsCertain(); ok {
				if iv, ok := v.(value.Int); ok && int64(iv) == want {
					break
				}
			}
			time.Sleep(10 * time.Millisecond)
		}
		if v, ok := got.IsCertain(); !ok {
			t.Errorf("%s still uncertain: %v", phys, got)
		} else if iv, _ := v.(value.Int); int64(iv) != want {
			t.Errorf("%s = %v, want %d", phys, v, want)
		}
	}
}
