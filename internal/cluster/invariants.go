package cluster

import (
	"fmt"
	"sort"

	"repro/internal/polyvalue"
	"repro/internal/protocol"
	"repro/internal/replica"
)

// CheckInvariants validates the cluster's global well-formedness and
// returns a description of every violation (empty = healthy).  The full
// set of checks assumes a quiescent cluster — all submitted transactions
// settled, all failures healed, outcome propagation drained; mid-run
// some conditions (locks held, prepared entries, await loops) are
// legitimately transient, so those checks are only meaningful at
// quiescence.  Failure-injection tests call this after their settle
// phase to prove the paper's §3.3 cleanup claims.
//
// Checks, per site:
//
//  1. every stored polyvalue satisfies the complete-and-disjoint
//     invariant (§3);
//  2. every dependency a stored polyvalue has is covered by a §3.3
//     dependency-table entry listing that item at that site (otherwise
//     outcome news could never reduce it);
//  3. no await entry exists for a transaction whose outcome the site
//     already knows (it should have been resolved and cleared);
//  4. no locks are held (quiescence);
//  5. under the polyvalue policy, no prepared entries remain
//     (quiescence: every in-doubt window was converted or settled).
//
// Under quorum replication one cross-site check is added:
//
//  7. replica convergence — every live replica of a logical item holds
//     the same certain value at the same version (anti-entropy has
//     drained; a W-of-K commit left no permanently stale copy).
func (c *Cluster) CheckInvariants() []string {
	var violations []string
	for _, id := range c.order {
		site := c.sites[id]
		if site == nil {
			continue // node mode: remote sites are other processes
		}
		site.do(func() {
			st := site.store
			// 1 & 2: polyvalue well-formedness and dependency coverage.
			for _, item := range st.Items() {
				p := st.Get(item)
				if _, certain := p.IsCertain(); certain {
					continue
				}
				if !p.WellFormed() {
					violations = append(violations,
						fmt.Sprintf("site %s: item %q holds ill-formed polyvalue %s", id, item, p))
				}
				for _, dep := range p.DependsOn() {
					items, _ := st.Deps(dep)
					covered := false
					for _, it := range items {
						if it == item {
							covered = true
							break
						}
					}
					if !covered {
						violations = append(violations,
							fmt.Sprintf("site %s: item %q depends on %s but the dependency table does not cover it", id, item, dep))
					}
				}
			}
			// 3: awaits imply unknown outcomes.
			for tid := range st.Awaits() {
				if _, known := st.Outcome(tid); known {
					violations = append(violations,
						fmt.Sprintf("site %s: await entry for %s whose outcome is already known", id, tid))
				}
			}
			// 4: no locks at quiescence.
			if n := len(site.locks); n != 0 {
				violations = append(violations,
					fmt.Sprintf("site %s: %d locks held at quiescence", id, n))
			}
			// 5: no prepared entries at quiescence (polyvalue policy).
			if c.cfg.Policy == PolicyPolyvalue {
				if n := len(st.PreparedTxns()); n != 0 {
					violations = append(violations,
						fmt.Sprintf("site %s: %d prepared entries at quiescence", id, n))
				}
			}
			// 6: paxos plane — every registered decision has settled and
			// its acceptor state was garbage-collected.
			if c.cfg.DecisionPlane == PlanePaxos {
				for _, tid := range st.PaxosTxns() {
					if _, known := st.Outcome(tid); known {
						violations = append(violations,
							fmt.Sprintf("site %s: paxos acceptor state for %s outlived its known outcome", id, tid))
					} else {
						violations = append(violations,
							fmt.Sprintf("site %s: undecided paxos state for %s at quiescence", id, tid))
					}
				}
			}
		})
	}
	// 7: replica convergence (quorum replication only).  Runs outside
	// the per-site loop — it compares replicas ACROSS sites — reading
	// the thread-safe stores directly and the transport's crash view
	// (down sites legitimately hold stale replicas until they rejoin
	// and gossip catches them up).
	if c.cfg.Replication != nil {
		type rep struct {
			site protocol.SiteID
			item string
			p    polyvalue.Poly
			ver  uint64
		}
		byLogical := map[string][]rep{}
		for _, id := range c.order {
			site := c.sites[id]
			if site == nil || c.fab.IsDown(id) {
				continue
			}
			for _, item := range site.store.Items() {
				logical, _, ok := replica.Logical(item)
				if !ok {
					continue
				}
				byLogical[logical] = append(byLogical[logical],
					rep{site: id, item: item, p: site.store.Get(item), ver: site.store.Version(item)})
			}
		}
		logicals := make([]string, 0, len(byLogical))
		for logical := range byLogical {
			logicals = append(logicals, logical)
		}
		sort.Strings(logicals)
		for _, logical := range logicals {
			reps := byLogical[logical]
			ref := reps[0]
			for _, r := range reps {
				if _, certain := r.p.IsCertain(); !certain {
					violations = append(violations,
						fmt.Sprintf("site %s: replica %s still uncertain at quiescence: %s", r.site, r.item, r.p))
					continue
				}
				if !r.p.Equal(ref.p) || r.ver != ref.ver {
					violations = append(violations,
						fmt.Sprintf("replica divergence on %q: %s@%s=%s v%d vs %s@%s=%s v%d",
							logical, r.item, r.site, r.p, r.ver, ref.item, ref.site, ref.p, ref.ver))
				}
			}
		}
	}
	return violations
}
