package cluster

import (
	"fmt"
)

// CheckInvariants validates the cluster's global well-formedness and
// returns a description of every violation (empty = healthy).  The full
// set of checks assumes a quiescent cluster — all submitted transactions
// settled, all failures healed, outcome propagation drained; mid-run
// some conditions (locks held, prepared entries, await loops) are
// legitimately transient, so those checks are only meaningful at
// quiescence.  Failure-injection tests call this after their settle
// phase to prove the paper's §3.3 cleanup claims.
//
// Checks, per site:
//
//  1. every stored polyvalue satisfies the complete-and-disjoint
//     invariant (§3);
//  2. every dependency a stored polyvalue has is covered by a §3.3
//     dependency-table entry listing that item at that site (otherwise
//     outcome news could never reduce it);
//  3. no await entry exists for a transaction whose outcome the site
//     already knows (it should have been resolved and cleared);
//  4. no locks are held (quiescence);
//  5. under the polyvalue policy, no prepared entries remain
//     (quiescence: every in-doubt window was converted or settled).
func (c *Cluster) CheckInvariants() []string {
	var violations []string
	for _, id := range c.order {
		site := c.sites[id]
		if site == nil {
			continue // node mode: remote sites are other processes
		}
		site.do(func() {
			st := site.store
			// 1 & 2: polyvalue well-formedness and dependency coverage.
			for _, item := range st.Items() {
				p := st.Get(item)
				if _, certain := p.IsCertain(); certain {
					continue
				}
				if !p.WellFormed() {
					violations = append(violations,
						fmt.Sprintf("site %s: item %q holds ill-formed polyvalue %s", id, item, p))
				}
				for _, dep := range p.DependsOn() {
					items, _ := st.Deps(dep)
					covered := false
					for _, it := range items {
						if it == item {
							covered = true
							break
						}
					}
					if !covered {
						violations = append(violations,
							fmt.Sprintf("site %s: item %q depends on %s but the dependency table does not cover it", id, item, dep))
					}
				}
			}
			// 3: awaits imply unknown outcomes.
			for tid := range st.Awaits() {
				if _, known := st.Outcome(tid); known {
					violations = append(violations,
						fmt.Sprintf("site %s: await entry for %s whose outcome is already known", id, tid))
				}
			}
			// 4: no locks at quiescence.
			if n := len(site.locks); n != 0 {
				violations = append(violations,
					fmt.Sprintf("site %s: %d locks held at quiescence", id, n))
			}
			// 5: no prepared entries at quiescence (polyvalue policy).
			if c.cfg.Policy == PolicyPolyvalue {
				if n := len(st.PreparedTxns()); n != 0 {
					violations = append(violations,
						fmt.Sprintf("site %s: %d prepared entries at quiescence", id, n))
				}
			}
			// 6: paxos plane — every registered decision has settled and
			// its acceptor state was garbage-collected.
			if c.cfg.DecisionPlane == PlanePaxos {
				for _, tid := range st.PaxosTxns() {
					if _, known := st.Outcome(tid); known {
						violations = append(violations,
							fmt.Sprintf("site %s: paxos acceptor state for %s outlived its known outcome", id, tid))
					} else {
						violations = append(violations,
							fmt.Sprintf("site %s: undecided paxos state for %s at quiescence", id, tid))
					}
				}
			}
		})
	}
	return violations
}
