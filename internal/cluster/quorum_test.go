package cluster

import (
	"strings"
	"testing"
	"time"

	"repro/internal/network"
	"repro/internal/polyvalue"
	"repro/internal/protocol"
	"repro/internal/replica"
	"repro/internal/value"
)

// newQuorumCluster builds a 5-site simulated cluster running k=3
// replication with a 2/2 write/read quorum.
func newQuorumCluster(t *testing.T, mut func(*Config)) *Cluster {
	t.Helper()
	cfg := Config{
		Sites:       []protocol.SiteID{"A", "B", "C", "D", "E"},
		Net:         network.Config{Latency: 10 * time.Millisecond, Seed: 7},
		Replication: &ReplicationConfig{K: 3, W: 2, R: 2},
	}
	if mut != nil {
		mut(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// replicaVals reads every replica of a logical item directly from the
// hosting stores: (value, version) per replica index.
func replicaVals(c *Cluster, logical string) (vals []polyvalue.Poly, vers []uint64) {
	k := c.cfg.Replication.K
	for i := 0; i < k; i++ {
		phys := replica.Name(logical, i)
		st := c.Store(c.Placement(phys))
		vals = append(vals, st.Get(phys))
		vers = append(vers, st.Version(phys))
	}
	return vals, vers
}

func TestQuorumConfigValidation(t *testing.T) {
	base := func() Config {
		return Config{Sites: []protocol.SiteID{"A", "B", "C"}}
	}
	for _, tc := range []struct {
		rep  ReplicationConfig
		want string
	}{
		{ReplicationConfig{K: 0, W: 1, R: 1}, "K ≥ 1"},
		{ReplicationConfig{K: 4, W: 2, R: 3}, "exceeds"},
		{ReplicationConfig{K: 3, W: 0, R: 3}, "write quorum"},
		{ReplicationConfig{K: 3, W: 4, R: 3}, "write quorum"},
		{ReplicationConfig{K: 3, W: 3, R: 0}, "read quorum"},
		{ReplicationConfig{K: 3, W: 1, R: 1}, "must exceed"},
	} {
		cfg := base()
		rep := tc.rep
		cfg.Replication = &rep
		if _, err := New(cfg); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("K=%d W=%d R=%d: err = %v, want %q", rep.K, rep.W, rep.R, err, tc.want)
		}
	}
	cfg := base()
	cfg.Replication = &ReplicationConfig{K: 3, W: 2, R: 2}
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	c.Close()
}

// TestQuorumCommitAndConverge: a healthy cluster commits onto a write
// quorum, and anti-entropy converges the replica the commit skipped.
func TestQuorumCommitAndConverge(t *testing.T) {
	c := newQuorumCluster(t, nil)
	if err := c.LoadReplicated("bal", polyvalue.Simple(value.Int(100))); err != nil {
		t.Fatal(err)
	}
	h, err := c.Submit("A", "bal = bal - 30")
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(time.Second)
	if h.Status() != StatusCommitted {
		t.Fatalf("status = %v (%s)", h.Status(), h.Reason())
	}
	// A write quorum (2 of 3) must hold the new value at version 2
	// immediately; all 3 replicas must converge once gossip runs.
	vals, vers := replicaVals(c, "bal")
	fresh := 0
	for i := range vals {
		if v, ok := vals[i].IsCertain(); ok {
			if n, _ := value.AsInt(v); n == 70 && vers[i] == 2 {
				fresh++
			}
		}
	}
	if fresh < 2 {
		t.Fatalf("write quorum not satisfied: %d fresh replicas (vals=%v vers=%v)", fresh, vals, vers)
	}
	c.RunFor(10 * time.Second)
	vals, vers = replicaVals(c, "bal")
	for i := range vals {
		v, ok := vals[i].IsCertain()
		if !ok {
			t.Fatalf("replica %d uncertain after convergence window: %v", i, vals[i])
		}
		if n, _ := value.AsInt(v); n != 70 || vers[i] != 2 {
			t.Errorf("replica %d = %v v%d, want 70 v2", i, v, vers[i])
		}
	}
	if v := c.CheckInvariants(); len(v) != 0 {
		t.Fatalf("invariants: %v", v)
	}
	if c.aeItemsCopied.Value() == 0 {
		t.Error("no anti-entropy value copies recorded")
	}
}

// TestQuorumQueryFreshest: a read quorum returns the freshest committed
// value even when one replica is stale.
func TestQuorumQueryFreshest(t *testing.T) {
	c := newQuorumCluster(t, nil)
	if err := c.LoadReplicated("bal", polyvalue.Simple(value.Int(100))); err != nil {
		t.Fatal(err)
	}
	h, _ := c.Submit("B", "bal = bal + 11")
	c.RunFor(time.Second)
	if h.Status() != StatusCommitted {
		t.Fatalf("setup commit failed: %s", h.Reason())
	}
	qh, err := c.Query("C", "bal")
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(time.Second)
	p, qerr, done := qh.Result()
	if qerr != nil || !done {
		t.Fatalf("query err=%v done=%v", qerr, done)
	}
	v, ok := p.IsCertain()
	if !ok {
		t.Fatalf("query uncertain: %v", p)
	}
	if n, _ := value.AsInt(v); n != 111 {
		t.Errorf("query = %v, want 111", v)
	}
}

// TestQuorumCommitDuringPartition: with one replica-hosting site cut
// off, a 2-of-3 write quorum still commits; write-all (W=K) on the same
// topology aborts.  After the heal, gossip converges the cut replica.
func TestQuorumCommitDuringPartition(t *testing.T) {
	c := newQuorumCluster(t, nil)
	if err := c.LoadReplicated("bal", polyvalue.Simple(value.Int(100))); err != nil {
		t.Fatal(err)
	}
	owners := replica.Sites(c.Placement, "bal", 3)
	victim := owners[2]
	// Pick a coordinator that is not the victim.
	coord := protocol.SiteID("")
	for _, id := range c.Sites() {
		if id != victim {
			coord = id
			break
		}
	}
	for _, id := range c.Sites() {
		if id != victim {
			c.Partition(victim, id)
		}
	}
	h, err := c.Submit(coord, "bal = bal - 25")
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(2 * time.Second)
	if h.Status() != StatusCommitted {
		t.Fatalf("quorum write during partition: %v (%s)", h.Status(), h.Reason())
	}
	// The victim's replica is stale until the heal.
	st := c.Store(victim)
	stalePhys := ""
	for i := 0; i < 3; i++ {
		phys := replica.Name("bal", i)
		if c.Placement(phys) == victim {
			stalePhys = phys
		}
	}
	if stalePhys != "" {
		if v, _ := st.Get(stalePhys).IsCertain(); true {
			if n, _ := value.AsInt(v); n != 100 {
				t.Fatalf("victim replica changed during partition: %v", v)
			}
		}
	}
	c.HealAll()
	c.RunFor(15 * time.Second)
	vals, vers := replicaVals(c, "bal")
	for i := range vals {
		v, ok := vals[i].IsCertain()
		if !ok {
			t.Fatalf("replica %d uncertain after heal: %v", i, vals[i])
		}
		if n, _ := value.AsInt(v); n != 75 || vers[i] != 2 {
			t.Errorf("replica %d = %v v%d, want 75 v2", i, v, vers[i])
		}
	}
	if v := c.CheckInvariants(); len(v) != 0 {
		t.Fatalf("invariants: %v", v)
	}
}

// TestWriteAllBlocksDuringPartition: the same partition with W=K=3
// cannot assemble its write set — the transaction aborts instead of
// committing (the availability gap quorum replication closes).
func TestWriteAllBlocksDuringPartition(t *testing.T) {
	c := newQuorumCluster(t, func(cfg *Config) {
		cfg.Replication = &ReplicationConfig{K: 3, W: 3, R: 1}
	})
	if err := c.LoadReplicated("bal", polyvalue.Simple(value.Int(100))); err != nil {
		t.Fatal(err)
	}
	owners := replica.Sites(c.Placement, "bal", 3)
	victim := owners[2]
	coord := protocol.SiteID("")
	for _, id := range c.Sites() {
		if id != victim {
			coord = id
			break
		}
	}
	for _, id := range c.Sites() {
		if id != victim {
			c.Partition(victim, id)
		}
	}
	h, err := c.Submit(coord, "bal = bal - 25")
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(2 * time.Second)
	if h.Status() != StatusAborted {
		t.Fatalf("write-all during partition: %v, want abort", h.Status())
	}
}

// TestQuorumGossipReducesStrandedPolyvalue: a participant left in doubt
// by a dead coordinator learns the outcome from a third site's gossip —
// no coordinator involvement, no direct inquiry success — and reduces
// its polyvalue.
func TestQuorumGossipReducesStrandedPolyvalue(t *testing.T) {
	c := newQuorumCluster(t, func(cfg *Config) {
		cfg.OutcomeTTL = -1 // keep outcomes alive for gossip
	})
	if err := c.LoadReplicated("bal", polyvalue.Simple(value.Int(100))); err != nil {
		t.Fatal(err)
	}
	owners := replica.Sites(c.Placement, "bal", 3)
	// Coordinate from a non-owner so the coordinator's crash does not
	// take a replica down with it.
	coord := protocol.SiteID("")
	for _, id := range c.Sites() {
		isOwner := false
		for _, o := range owners {
			if id == o {
				isOwner = true
			}
		}
		if !isOwner {
			coord = id
			break
		}
	}
	if coord == "" {
		t.Fatal("no non-owner coordinator available")
	}
	// Cut one owner off mid-protocol: it votes ready (probe+prepare get
	// through) but never hears the outcome, times out, installs
	// polyvalues.  The coordinator decides with the remaining quorum,
	// then dies before any retransmission can reach the victim.
	victim := owners[0]
	h, err := c.Submit(coord, "bal = bal - 40")
	if err != nil {
		t.Fatal(err)
	}
	// Let read probes, prepares and readies land (t≈40ms at 10ms fixed
	// latency), then cut the victim off from EVERY other site before the
	// complete arrives at t≈50ms: it is in doubt with no outcome source —
	// not the coordinator, not gossip.
	c.RunFor(45 * time.Millisecond)
	for _, id := range c.Sites() {
		if id != victim {
			c.Partition(victim, id)
		}
	}
	c.RunFor(2 * time.Second)
	if h.Status() != StatusCommitted {
		t.Fatalf("commit with W quorum: %v (%s)", h.Status(), h.Reason())
	}
	// The victim's wait phase timed out: it holds a polyvalue.  Crash
	// the coordinator (wiping its retransmission state), then heal: the
	// ONLY remaining channel to the outcome is gossip from the other
	// participants.
	if n := len(c.Store(victim).PolyItems()); n == 0 {
		t.Fatal("victim holds no polyvalue while cut off from the outcome")
	}
	c.Crash(coord)
	c.HealAll()
	c.RunFor(20 * time.Second)
	if n := len(c.Store(victim).PolyItems()); n != 0 {
		t.Fatalf("victim still holds %d polyvalues after gossip window", n)
	}
	if c.aeOutcomesLearned.Value() == 0 {
		t.Error("outcome was not learned via gossip")
	}
	c.HealAll()
	c.Restart(coord)
	c.RunFor(10 * time.Second)
	if v := c.CheckInvariants(); len(v) != 0 {
		t.Fatalf("invariants: %v", v)
	}
}

// TestQuorumRejectsReplicaNames: programs must use logical names.
func TestQuorumRejectsReplicaNames(t *testing.T) {
	c := newQuorumCluster(t, nil)
	h, err := c.Submit("A", "bal_r0 = bal_r0 + 1")
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(time.Second)
	if h.Status() != StatusAborted || !strings.Contains(h.Reason(), "replica") {
		t.Fatalf("status = %v (%s), want replica-namespace abort", h.Status(), h.Reason())
	}
}
