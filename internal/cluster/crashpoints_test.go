package cluster

import (
	"testing"
	"time"

	"repro/internal/network"
	"repro/internal/protocol"
)

// abcPlacement is the 3-site placement every crash-point scenario uses:
// items prefixed a*/b*/c* live on sites A/B/C.
func abcPlacement(item string) protocol.SiteID {
	switch item[0] {
	case 'a':
		return "A"
	case 'b':
		return "B"
	default:
		return "C"
	}
}

func TestArmCrashValidation(t *testing.T) {
	c := newTestCluster(t, PolicyPolyvalue)
	if err := c.ArmCrash("A", "no-such-point"); err == nil {
		t.Error("unknown crash point accepted")
	}
	if err := c.ArmCrash("Z", CrashBeforeReady); err == nil {
		t.Error("unknown site accepted")
	}
	if err := c.ArmCrash("A", CrashBeforePrepare); err != nil {
		t.Errorf("valid arm rejected: %v", err)
	}
	pts := CrashPoints()
	if len(pts) != 8 {
		t.Errorf("CrashPoints() = %v, want 8 points", pts)
	}
	for _, p := range pts {
		if !validCrashPoint(p) {
			t.Errorf("listed point %q not valid", p)
		}
	}
}

// TestCrashBeforePrepare: the coordinator dies after collecting reads,
// before any prepare leaves.  Participants hold read locks with no
// transaction coming and recover via the lock timeout; nothing was ever
// at risk of committing.
func TestCrashBeforePrepare(t *testing.T) {
	c := newTestCluster(t, PolicyPolyvalue)
	loadInt(t, c, "bsrc", 100)
	loadInt(t, c, "cdst", 0)
	if err := c.ArmCrash("A", CrashBeforePrepare); err != nil {
		t.Fatal(err)
	}
	h, _ := c.Submit("A", "bsrc = bsrc - 40; cdst = cdst + 40")
	c.RunFor(2 * time.Second)

	if !c.IsDown("A") {
		t.Fatal("failpoint did not crash the coordinator")
	}
	if h.Status() != StatusPending {
		t.Fatalf("handle status = %v, want pending (client never hears)", h.Status())
	}
	if got := readInt(t, c, "bsrc"); got != 100 {
		t.Errorf("bsrc = %d, want 100 (untouched)", got)
	}
	if got := readInt(t, c, "cdst"); got != 0 {
		t.Errorf("cdst = %d, want 0 (untouched)", got)
	}
	if polys := c.PolyItems(); len(polys) != 0 {
		t.Errorf("polyvalues with no prepare ever sent: %v", polys)
	}
	c.Restart("A")
	c.RunFor(2 * time.Second)
	if v := c.CheckInvariants(); len(v) != 0 {
		t.Errorf("invariant violations after recovery: %v", v)
	}
}

// TestCrashBeforeReady: a participant dies after durably logging its
// prepared record but before its ready message leaves.  The coordinator
// aborts on ready timeout; the restarted participant recovers the
// in-doubt record from its WAL, installs polyvalues, and its inquiry
// learns the abort — values end unchanged.
func TestCrashBeforeReady(t *testing.T) {
	c := newTestCluster(t, PolicyPolyvalue)
	loadInt(t, c, "bsrc", 100)
	loadInt(t, c, "cdst", 0)
	if err := c.ArmCrash("B", CrashBeforeReady); err != nil {
		t.Fatal(err)
	}
	h, _ := c.Submit("A", "bsrc = bsrc - 40; cdst = cdst + 40")
	c.RunFor(2 * time.Second)

	if !c.IsDown("B") {
		t.Fatal("failpoint did not crash the participant")
	}
	if h.Status() != StatusAborted {
		t.Fatalf("status = %v, want aborted on ready timeout", h.Status())
	}
	if got := readInt(t, c, "cdst"); got != 0 {
		t.Errorf("cdst = %d, want 0 (aborted)", got)
	}
	// B recovers its prepared record from the WAL, goes in doubt, and
	// the inquiry resolves to abort.
	c.Restart("B")
	c.RunFor(15 * time.Second)
	if got := readInt(t, c, "bsrc"); got != 100 {
		t.Errorf("bsrc = %d, want 100 after learned abort", got)
	}
	if polys := c.PolyItems(); len(polys) != 0 {
		t.Errorf("polyvalues survived recovery: %v", polys)
	}
	if v := c.CheckInvariants(); len(v) != 0 {
		t.Errorf("invariant violations: %v", v)
	}
}

// TestCrashAfterReady: a participant dies the instant after sending
// ready — the paper's wait-phase window with the prepared record
// already durable.  The coordinator commits on the full ready set; the
// restarted participant converts the recovered record to polyvalues and
// the outcome inquiry reduces them to the committed values.
func TestCrashAfterReady(t *testing.T) {
	c := newTestCluster(t, PolicyPolyvalue)
	loadInt(t, c, "bsrc", 100)
	loadInt(t, c, "cdst", 0)
	if err := c.ArmCrash("B", CrashAfterReady); err != nil {
		t.Fatal(err)
	}
	h, _ := c.Submit("A", "bsrc = bsrc - 40; cdst = cdst + 40")
	c.RunFor(2 * time.Second)

	if !c.IsDown("B") {
		t.Fatal("failpoint did not crash the participant")
	}
	if h.Status() != StatusCommitted {
		t.Fatalf("status = %v (%s), want committed — B's ready was sent", h.Status(), h.Reason())
	}
	if got := readInt(t, c, "cdst"); got != 40 {
		t.Errorf("cdst = %d, want 40", got)
	}
	c.Restart("B")
	c.RunFor(15 * time.Second)
	if got := readInt(t, c, "bsrc"); got != 60 {
		t.Errorf("bsrc = %d, want 60 after recovery", got)
	}
	if polys := c.PolyItems(); len(polys) != 0 {
		t.Errorf("polyvalues survived recovery: %v", polys)
	}
	if v := c.CheckInvariants(); len(v) != 0 {
		t.Errorf("invariant violations: %v", v)
	}
}

// TestCrashAfterDecisionLog: the coordinator logs COMMIT durably and
// dies before announcing it.  Participants time out into polyvalues;
// when the coordinator restarts, their inquiries pull the outcome from
// its recovered log and every polyvalue reduces to the committed value.
// This is the window decision retransmission cannot cover (the resend
// state is volatile) — the paper's §3.3 inquiry loop is the only way
// home.
func TestCrashAfterDecisionLog(t *testing.T) {
	c := newTestCluster(t, PolicyPolyvalue)
	loadInt(t, c, "bsrc", 100)
	loadInt(t, c, "cdst", 0)
	if err := c.ArmCrash("A", CrashAfterDecisionLog); err != nil {
		t.Fatal(err)
	}
	h, _ := c.Submit("A", "bsrc = bsrc - 40; cdst = cdst + 40")
	c.RunFor(2 * time.Second)

	if !c.IsDown("A") {
		t.Fatal("failpoint did not crash the coordinator")
	}
	if h.Status() != StatusPending {
		t.Fatalf("status = %v, want pending (decision logged, never announced)", h.Status())
	}
	if len(c.PolyItems()) != 2 {
		t.Fatalf("participants should be in doubt: polys = %v", c.PolyItems())
	}
	c.Restart("A")
	c.RunFor(15 * time.Second)
	if got := readInt(t, c, "bsrc"); got != 60 {
		t.Errorf("bsrc = %d, want 60 (commit was durable)", got)
	}
	if got := readInt(t, c, "cdst"); got != 40 {
		t.Errorf("cdst = %d, want 40 (commit was durable)", got)
	}
	if polys := c.PolyItems(); len(polys) != 0 {
		t.Errorf("polyvalues survived recovery: %v", polys)
	}
	if st := c.Stats(); st.InDoubt == 0 {
		t.Error("no in-doubt windows counted — scenario did not exercise the wait phase")
	}
	if v := c.CheckInvariants(); len(v) != 0 {
		t.Errorf("invariant violations: %v", v)
	}
}

// TestCrashMidWALAppend: a participant's prepared-record append tears
// half-way (file-backed WAL) and the site dies with the fragment on
// disk.  The record never became durable, so the restarted site has no
// memory of the transaction; the coordinator aborts on ready timeout
// and the torn tail is truncated on the next append.
func TestCrashMidWALAppend(t *testing.T) {
	c, err := New(Config{
		Sites:     []protocol.SiteID{"A", "B", "C"},
		Net:       network.Config{Latency: 10 * time.Millisecond},
		Policy:    PolicyPolyvalue,
		Placement: abcPlacement,
		DataDir:   t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	loadInt(t, c, "bsrc", 100)
	loadInt(t, c, "cdst", 0)
	if err := c.ArmCrash("B", CrashMidWALAppend); err != nil {
		t.Fatal(err)
	}
	h, _ := c.Submit("A", "bsrc = bsrc - 40; cdst = cdst + 40")
	c.RunFor(2 * time.Second)

	if !c.IsDown("B") {
		t.Fatal("torn append did not crash the participant")
	}
	if h.Status() != StatusAborted {
		t.Fatalf("status = %v, want aborted (B's ready never sent)", h.Status())
	}
	c.Restart("B")
	c.RunFor(5 * time.Second)
	if got := readInt(t, c, "bsrc"); got != 100 {
		t.Errorf("bsrc = %d, want 100 (prepared record was torn, nothing recovered)", got)
	}
	if got := readInt(t, c, "cdst"); got != 0 {
		t.Errorf("cdst = %d, want 0", got)
	}
	if polys := c.PolyItems(); len(polys) != 0 {
		t.Errorf("polyvalues from a torn (never durable) prepare: %v", polys)
	}
	// The log stays usable after the torn tail: a fresh transaction on B
	// commits and appends cleanly past the truncated fragment.
	h2, _ := c.Submit("B", "bsrc = bsrc - 10")
	c.RunFor(2 * time.Second)
	if h2.Status() != StatusCommitted {
		t.Fatalf("post-tear transaction: %v (%s)", h2.Status(), h2.Reason())
	}
	if got := readInt(t, c, "bsrc"); got != 90 {
		t.Errorf("bsrc = %d, want 90", got)
	}
	if v := c.CheckInvariants(); len(v) != 0 {
		t.Errorf("invariant violations: %v", v)
	}
}

// TestDecisionResendRecoversDroppedComplete: the commit decision's
// complete messages are lost to a brief partition, but the participants
// never even notice — the coordinator's retransmission loop redelivers
// before the (long) wait timeout, so no polyvalue is ever installed and
// no participant inquiry ever fires.  Proves the retransmission path
// recovers dropped decisions on its own.
func TestDecisionResendRecoversDroppedComplete(t *testing.T) {
	c, err := New(Config{
		Sites: []protocol.SiteID{"A", "B", "C"},
		Net:   network.Config{Latency: 10 * time.Millisecond},
		// Wait timeout far beyond the test horizon: if retransmission
		// didn't work, participants would still be in doubt at the end.
		WaitTimeout:   time.Minute,
		RetryInterval: 100 * time.Millisecond,
		Policy:        PolicyPolyvalue,
		Placement:     abcPlacement,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	loadInt(t, c, "bsrc", 100)
	loadInt(t, c, "cdst", 0)
	// Timeline with L=10ms: reads done at 20ms, prepares arrive 30ms,
	// readies arrive 40ms (decision + completes sent), completes would
	// arrive 50ms.  Cut both links over [45ms, 60ms]: the in-flight
	// completes are dropped at delivery time, the links are healthy
	// again before the first retransmission (≥90ms) fires.
	c.sched.After(45*time.Millisecond, func() {
		c.Partition("A", "B")
		c.Partition("A", "C")
	})
	c.sched.After(60*time.Millisecond, c.HealAll)
	h, _ := c.Submit("A", "bsrc = bsrc - 40; cdst = cdst + 40")
	c.RunFor(5 * time.Second)

	if h.Status() != StatusCommitted {
		t.Fatalf("status = %v (%s)", h.Status(), h.Reason())
	}
	if got := readInt(t, c, "bsrc"); got != 60 {
		t.Errorf("bsrc = %d, want 60", got)
	}
	if got := readInt(t, c, "cdst"); got != 40 {
		t.Errorf("cdst = %d, want 40", got)
	}
	reg := c.Metrics()
	if got := reg.Counter("txn.decision.resends").Value(); got == 0 {
		t.Error("no decision retransmissions counted — what redelivered the completes?")
	}
	if got := reg.Counter("txn.outcome.retries").Value(); got != 0 {
		t.Errorf("outcome retries = %d, want 0 (no participant should have gone in doubt)", got)
	}
	if st := c.Stats(); st.InDoubt != 0 {
		t.Errorf("InDoubt = %d, want 0 — retransmission should beat the wait timeout", st.InDoubt)
	}
	if polys := c.PolyItems(); len(polys) != 0 {
		t.Errorf("polyvalues installed despite retransmission: %v", polys)
	}
	if v := c.CheckInvariants(); len(v) != 0 {
		t.Errorf("invariant violations: %v", v)
	}
}
