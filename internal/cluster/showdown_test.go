package cluster

import (
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/protocol"
	"repro/internal/trace"
)

// showdownResult is one decision plane's measurements from the seeded
// coordinator-outage schedule: the three-plane head-to-head table
// EXPERIMENTS.md records.
type showdownResult struct {
	// availAfter is how long after the crash a fresh transfer touching a
	// stranded item first commits (probe resubmitted every 250ms).
	availAfter time.Duration
	// decisionAfter is when the stranded transfer's outcome was applied
	// at a participant (poly.reduce or part.blocked span end).
	decisionAfter time.Duration
	// residualPolys counts poly items at the end of the 30s outage.
	residualPolys int
	// indoubt/degraded are blocked item-seconds over the outage.
	indoubt, degraded float64
	// committed is the stranded transfer's final outcome.
	committed bool
}

// runShowdown runs the showdown schedule under one plane/policy pair: a
// 5-site cluster, a distributed transfer whose coordinator is killed at
// the decision instant (every participant ready and in doubt), a 30s
// coordinator outage probed for item availability, then recovery.
func runShowdown(t *testing.T, plane DecisionPlane, policy Policy) showdownResult {
	t.Helper()
	spans := trace.NewSpanLog(8192)
	c, err := New(Config{
		Sites:         []protocol.SiteID{"A", "B", "C", "D", "E"},
		Net:           network.Config{Latency: 10 * time.Millisecond, Seed: 7},
		DecisionPlane: plane,
		Policy:        policy,
		Spans:         spans,
		Placement: func(item string) protocol.SiteID {
			switch item[0] {
			case 'a':
				return "A"
			case 'b':
				return "B"
			case 'c':
				return "C"
			case 'd':
				return "D"
			default:
				return "E"
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	loadInt(t, c, "bsrc", 100)
	loadInt(t, c, "cdst", 0)
	loadInt(t, c, "ddst", 0)

	if err := c.ArmCrash("A", CrashBeforeDecision); err != nil {
		t.Fatal(err)
	}
	h, err := c.Submit("A", "bsrc = bsrc - 40; cdst = cdst + 40")
	if err != nil {
		t.Fatal(err)
	}

	const outage = 30 * time.Second
	const step = 250 * time.Millisecond
	res := showdownResult{availAfter: -1}
	var probe *Handle
	for elapsed := time.Duration(0); elapsed < outage; elapsed += step {
		c.RunFor(step)
		if res.availAfter >= 0 {
			continue
		}
		if probe != nil && probe.Status() == StatusCommitted {
			res.availAfter = elapsed
			continue
		}
		if probe == nil || probe.Status() == StatusAborted {
			// The probe conflicts with the stranded transfer's source
			// item; refused attempts are resubmitted until one commits.
			probe, err = c.Submit("D", "bsrc = bsrc - 1; ddst = ddst + 1")
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	if h.Status() != StatusPending {
		t.Fatalf("stranded handle = %v, want pending (client never hears)", h.Status())
	}
	res.residualPolys = len(c.PolyItems())
	c.SyncBlockedAccounting()
	reg := c.Metrics()
	for _, site := range []string{"A", "B", "C", "D", "E"} {
		l := metrics.L("site", site)
		res.indoubt += reg.Histogram("item.blocked.seconds", l, metrics.L("cause", causeInDoubt)).Sum()
		res.degraded += reg.Histogram("item.blocked.seconds", l, metrics.L("cause", causeDegraded)).Sum()
	}

	c.Restart("A")
	for elapsed := outage; elapsed < outage+30*time.Second; elapsed += step {
		c.RunFor(step)
		if res.availAfter >= 0 {
			continue
		}
		if probe != nil && probe.Status() == StatusCommitted {
			res.availAfter = elapsed
			continue
		}
		if probe == nil || probe.Status() == StatusAborted {
			probe, err = c.Submit("D", "bsrc = bsrc - 1; ddst = ddst + 1")
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	c.RunFor(10 * time.Second)

	// The decision instant: when a participant applied the outcome —
	// polyvalue reduction under the polyvalue policy, unblocking under
	// the blocking policy.
	for _, sp := range spans.ByTID(string(h.TID)) {
		if sp.Kind != spanPolyReduce && sp.Kind != spanPartBlocked {
			continue
		}
		at := time.Duration(sp.End)
		if res.decisionAfter == 0 || at < res.decisionAfter {
			res.decisionAfter = at
		}
	}
	res.committed = readInt(t, c, "cdst") == 40

	// End-state sanity under every plane: conservation, no residual
	// polyvalues, clean invariants, and the probe eventually committed.
	total := readInt(t, c, "bsrc") + readInt(t, c, "cdst") + readInt(t, c, "ddst")
	if total != 100 {
		t.Errorf("conservation violated: total = %d", total)
	}
	if polys := c.PolyItems(); len(polys) != 0 {
		t.Errorf("residual polyvalues after recovery: %v", polys)
	}
	if v := c.CheckInvariants(); len(v) != 0 {
		t.Errorf("invariant violations: %v", v)
	}
	if res.availAfter < 0 {
		t.Error("probe transfer never committed")
	}
	return res
}

// TestDecisionPlaneShowdownSim is the three-plane head-to-head on the
// simulated fabric (deterministic; the numbers EXPERIMENTS.md quotes):
// polyvalue continuation over the wal plane, Paxos Commit, and classic
// blocking 2PC, all facing the same coordinator kill at the decision
// instant.  The planes must separate exactly as the papers predict:
//
//   - wal+polyvalues: items become available at the wait timeout
//     (availability restored in ~1s) but the *decision* waits for the
//     coordinator's restart, and the presumed abort then discards the
//     transfer — residual polyvalues ride out the whole outage.
//   - paxos: the takeover reveals the quorum of ballot-0 Prepared votes
//     and COMMITS in seconds, coordinator still dead — availability AND
//     certainty, no residual polyvalues, and the transfer survives.
//   - blocking 2PC: the stranded participants camp on the items for the
//     entire outage (blocked item-seconds ≈ outage), and the transfer
//     still dies by presumed abort at recovery.
func TestDecisionPlaneShowdownSim(t *testing.T) {
	wal := runShowdown(t, PlaneWAL, PolicyPolyvalue)
	paxos := runShowdown(t, PlanePaxos, PolicyPolyvalue)
	blocking := runShowdown(t, PlaneWAL, PolicyBlocking)

	row := func(name string, r showdownResult) {
		outcome := "aborted"
		if r.committed {
			outcome = "committed"
		}
		t.Logf("%-12s avail=%v decision=%v residual_polys=%d indoubt=%.3fs degraded=%.3fs outcome=%s",
			name, r.availAfter, r.decisionAfter, r.residualPolys, r.indoubt, r.degraded, outcome)
	}
	row("wal+poly", wal)
	row("paxos", paxos)
	row("blocking2pc", blocking)

	// Availability: both polyvalue planes restore it quickly; blocking
	// 2PC holds the items for the whole 30s outage.
	if wal.availAfter > 5*time.Second || paxos.availAfter > 5*time.Second {
		t.Errorf("polyvalue planes should restore availability in seconds: wal=%v paxos=%v",
			wal.availAfter, paxos.availAfter)
	}
	if blocking.availAfter < 25*time.Second {
		t.Errorf("blocking plane restored availability at %v, want after the outage", blocking.availAfter)
	}
	// Certainty: only paxos decides during the outage — and it commits.
	if paxos.decisionAfter > 10*time.Second {
		t.Errorf("paxos decision at %v, want within seconds of the crash", paxos.decisionAfter)
	}
	if !paxos.committed {
		t.Error("paxos plane aborted a fully-prepared transfer")
	}
	if wal.decisionAfter < 25*time.Second || wal.committed {
		t.Errorf("wal plane: decision=%v committed=%v, want presumed abort after restart",
			wal.decisionAfter, wal.committed)
	}
	if blocking.decisionAfter < 25*time.Second || blocking.committed {
		t.Errorf("blocking plane: decision=%v committed=%v, want presumed abort after restart",
			blocking.decisionAfter, blocking.committed)
	}
	// Residual uncertainty at the end of the outage.
	if paxos.residualPolys != 0 {
		t.Errorf("paxos left %d residual polyvalues mid-outage", paxos.residualPolys)
	}
	if wal.residualPolys == 0 {
		t.Error("wal plane should carry residual polyvalues through the outage")
	}
	// Blocked item-seconds: only the blocking plane pays.
	if wal.indoubt+wal.degraded != 0 || paxos.indoubt+paxos.degraded != 0 {
		t.Errorf("polyvalue planes accrued blocking: wal=%.3f paxos=%.3f",
			wal.indoubt+wal.degraded, paxos.indoubt+paxos.degraded)
	}
	if blocking.indoubt < 20 {
		t.Errorf("blocking plane indoubt = %.3fs, want >= 20s of camping", blocking.indoubt)
	}
}
