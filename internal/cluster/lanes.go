package cluster

import (
	"hash/fnv"

	"repro/internal/polyvalue"
	"repro/internal/txn"
)

// Lane engine (wall-clock mode only).
//
// A classic site is ONE goroutine draining ONE inbox: every event —
// message handling, client submits, timers — is serialized, so a
// blocking fsync inside any event stalls the whole site.  With
// Config.Lanes > 1 a wall-clock site adds N lane goroutines, each
// draining its own queue; events are routed to a lane by transaction ID
// (the original inbox remains as the "global lane" for TID-less work:
// timers, anti-entropy gossip, control operations).
//
// Lanes do NOT parallelize protocol logic.  Every event, on every lane,
// runs under the site's single stateMu, so the lock table, dependency
// table, and every other protocol map see exactly the serialized
// execution the paper's site model assumes — the per-TID routing only
// fixes WHICH queue an event waits in, and per-source FIFO order is
// preserved because all of one transaction's messages land on one lane.
// What lanes overlap is everything an event does OUTSIDE the mutex:
// the durable group-commit wait.  Under Config.SyncWAL, an event's
// outputs (protocol sends, client decisions, query completions) are
// staged in a per-event outbox and released only after the event's WAL
// records are fsynced — output commit.  With one lane that fsync is
// paid inline, serialized; with N lanes, N events park in
// GroupLog.WaitSynced concurrently and one fsync retires all of them.
//
// Simulated clusters (New) never create lanes and never create a group
// log, so they keep the exact legacy path: one goroutine, no mutex, no
// outbox, seed-reproducible.

// outbox stages one event's externally visible outputs until its WAL
// records are durable.  Ops run in staging order, outside stateMu.
// Drops are the fsyncgate alternative: when the durability wait fails,
// the outputs are discarded and the drops run instead — releasing
// client admission credits and failing query handles for a site that
// just crashed itself, without acking anything the disk may not hold.
type outbox struct {
	ops   []func()
	drops []func()
}

func (ob *outbox) add(op func())     { ob.ops = append(ob.ops, op) }
func (ob *outbox) addDrop(op func()) { ob.drops = append(ob.drops, op) }

// laneFor maps a transaction ID to a lane index, or -1 (the global
// inbox) when lanes are off or the event has no transaction identity.
func (s *Site) laneFor(tid txn.ID) int {
	if s.laneQs == nil || tid == "" {
		return -1
	}
	h := fnv.New32a()
	h.Write([]byte(tid))
	return int(h.Sum32() % uint32(len(s.laneQs)))
}

// queueFor picks the event queue for a lane index from laneFor.
func (s *Site) queueFor(lane int) chan siteEvent {
	if lane < 0 || s.laneQs == nil {
		return s.inbox
	}
	return s.laneQs[lane]
}

// postLane is post() onto a specific lane queue.
func (s *Site) postLane(lane int, fn func()) {
	select {
	case s.queueFor(lane) <- siteEvent{fn: fn}:
	case <-s.quit:
	}
}

// doLane is do() onto a specific lane queue.
func (s *Site) doLane(lane int, fn func()) {
	done := make(chan struct{})
	select {
	case s.queueFor(lane) <- siteEvent{fn: fn, done: done}:
		select {
		case <-done:
		case <-s.quit:
		}
	case <-s.quit:
	}
}

// tryDoLane is tryDo() onto a specific lane queue.
func (s *Site) tryDoLane(lane int, fn func()) bool {
	select {
	case s.queueFor(lane) <- siteEvent{fn: fn}:
		return true
	case <-s.quit:
		return true
	default:
		return false
	}
}

// laneLoop drains one lane queue; exec provides the serialization.
func (s *Site) laneLoop(q chan siteEvent) {
	for {
		select {
		case <-s.quit:
			return
		case ev := <-q:
			s.exec(ev)
		}
	}
}

// exec runs one event.  Legacy mode (no lanes, no durable sync) is the
// seed path, byte-for-byte: run the closure, ack.  Otherwise the event
// runs under stateMu with an outbox, then (durable mode) waits for its
// WAL records before releasing its outputs.
func (s *Site) exec(ev siteEvent) {
	if s.laneQs == nil && s.glog == nil {
		ev.fn()
		if ev.done != nil {
			close(ev.done)
		}
		return
	}
	var ob outbox
	s.stateMu.Lock()
	var before uint64
	if s.glog != nil {
		before = s.glog.Seq()
	}
	s.outbox = &ob
	ev.fn()
	s.outbox = nil
	var target uint64
	if s.glog != nil {
		// Conservative output commit: an event that wrote WAL frames
		// waits for them; an event that wrote nothing but has outputs
		// still waits for ALL currently unsynced frames, because its
		// outputs may externalize state some earlier unsynced event
		// installed (e.g. relaying an outcome another event just
		// logged).  Pure-internal events (no frames, no outputs) skip
		// the wait entirely.
		if after := s.glog.Seq(); after > before || len(ob.ops) > 0 {
			target = after
		}
	}
	s.stateMu.Unlock()
	if target > 0 {
		var err error
		if s.laneQs == nil {
			err = s.glog.Flush()
		} else {
			err = s.glog.WaitSynced(target)
		}
		if err != nil {
			// fsyncgate: the WAL frames this event depends on never
			// reached the disk (the flush error is sticky in the
			// GroupLog, so durability is gone for the rest of this
			// incarnation).  The site must NOT release the staged
			// outputs — no Prepared, no Committed, no client decision —
			// because each would ack state the disk may have dropped.
			// Crash the site instead and run only the drop actions.
			s.stateMu.Lock()
			s.durabilityPanic("", err)
			s.stateMu.Unlock()
			for _, op := range ob.drops {
				op()
			}
			if ev.done != nil {
				close(ev.done)
			}
			return
		}
	}
	for _, op := range ob.ops {
		op()
	}
	if ev.done != nil {
		close(ev.done)
	}
}

// decideHandle resolves a client transaction handle.  In outbox mode
// the resolution is staged and delivered after the event's records are
// durable — the client must not observe a commit the site could still
// forget.  The committed-latency observation rides along because the
// handle only learns its latency once the decide lands.
func (s *Site) decideHandle(h *Handle, st Status, reason string) {
	now := s.c.clk.Now()
	if ob := s.outbox; ob != nil {
		ob.add(func() {
			h.decide(st, reason, now)
			if st == StatusCommitted {
				if lat, ok := h.Latency(); ok {
					s.c.latency.Observe(lat.Seconds())
				}
			}
		})
		// On a failed durability wait the decision is withheld (the
		// handle stays pending, like any crashed coordinator's), but
		// its admission credit must come home.
		ob.addDrop(h.releaseAdmission)
		return
	}
	h.decide(st, reason, now)
	if st == StatusCommitted {
		if lat, ok := h.Latency(); ok {
			s.c.latency.Observe(lat.Seconds())
		}
	}
}

// completeQuery resolves a query handle, staged like decideHandle.
func (s *Site) completeQuery(qh *QueryHandle, p polyvalue.Poly, err error) {
	if ob := s.outbox; ob != nil {
		ob.add(func() { qh.complete(p, err) })
		// Queries carry no durability promise; on a failed wait they
		// fail fast instead of hanging on a dead site.
		ob.addDrop(func() { qh.complete(polyvalue.Poly{}, errSiteDown) })
		return
	}
	qh.complete(p, err)
}
