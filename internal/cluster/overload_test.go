package cluster

import (
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/protocol"
	"repro/internal/transport"
)

// newOverloadCluster builds the usual 3-site a*/b*/c* cluster with the
// overload knobs under test.
func newOverloadCluster(t *testing.T, mutate func(*Config)) *Cluster {
	t.Helper()
	cfg := Config{
		Sites:         []protocol.SiteID{"A", "B", "C"},
		Net:           network.Config{Latency: 10 * time.Millisecond},
		WaitTimeout:   100 * time.Millisecond,
		ReadyTimeout:  500 * time.Millisecond,
		RetryInterval: 100 * time.Millisecond,
		Placement: func(item string) protocol.SiteID {
			switch item[0] {
			case 'a':
				return "A"
			case 'b':
				return "B"
			default:
				return "C"
			}
		},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func counterValue(c *Cluster, name string, labels ...metrics.Label) int64 {
	return c.Metrics().Counter(name, labels...).Value()
}

func gaugeValue(c *Cluster, name string, labels ...metrics.Label) int64 {
	return c.Metrics().Gauge(name, labels...).Value()
}

// TestAdmissionShedsOverCap: submissions beyond the in-flight cap shed
// with ErrOverload, and deciding the admitted work returns the credit.
func TestAdmissionShedsOverCap(t *testing.T) {
	c := newOverloadCluster(t, func(cfg *Config) { cfg.AdmissionLimit = 1 })
	loadInt(t, c, "a1", 0)
	loadInt(t, c, "b1", 0)

	h1, err := c.Submit("A", "b1 = a1 + 1")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := c.Submit("A", "b1 = a1 + 1"); !errors.Is(err, ErrOverload) {
			t.Fatalf("submit %d over cap: err = %v, want ErrOverload", i, err)
		}
	}
	if got := counterValue(c, "site.admission.shed", metrics.L("site", "A")); got != 2 {
		t.Errorf("shed counter = %d, want 2", got)
	}
	if got := gaugeValue(c, "site.admission.inflight", metrics.L("site", "A")); got != 1 {
		t.Errorf("inflight gauge = %d, want 1", got)
	}

	c.RunFor(2 * time.Second)
	if h1.Status() != StatusCommitted {
		t.Fatalf("admitted txn: %v (%s)", h1.Status(), h1.Reason())
	}
	if got := gaugeValue(c, "site.admission.inflight", metrics.L("site", "A")); got != 0 {
		t.Errorf("inflight after decide = %d, want 0", got)
	}
	// Credit returned: the gate admits again.
	h2, err := c.Submit("A", "b1 = a1 + 2")
	if err != nil {
		t.Fatalf("submit after release: %v", err)
	}
	c.RunFor(2 * time.Second)
	if h2.Status() != StatusCommitted {
		t.Fatalf("post-release txn: %v (%s)", h2.Status(), h2.Reason())
	}
}

// TestAdmissionCreditReleasedOnCrash: a coordinator crash leaves the
// handle pending forever, but must return the admission credit.
func TestAdmissionCreditReleasedOnCrash(t *testing.T) {
	c := newOverloadCluster(t, func(cfg *Config) { cfg.AdmissionLimit = 1 })
	loadInt(t, c, "b1", 0)

	c.ArmCrashBeforeDecision("A")
	h, err := c.Submit("A", "b1 = b1 + 1")
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(2 * time.Second)
	if h.Status() != StatusPending {
		t.Fatalf("crashed coordinator's handle: %v", h.Status())
	}
	if got := gaugeValue(c, "site.admission.inflight", metrics.L("site", "A")); got != 0 {
		t.Errorf("inflight after crash = %d, want 0 (credit leaked)", got)
	}
	c.Restart("A")
	if _, err := c.Submit("A", "b1 = b1 + 2"); err != nil {
		t.Fatalf("submit after crash released credit: %v", err)
	}
}

// TestDeadlineExpiresInSim: a partition outlasting the transaction
// deadline aborts the transaction with the deadline reason, before the
// (longer) read timeout would have.
func TestDeadlineExpiresInSim(t *testing.T) {
	c := newOverloadCluster(t, func(cfg *Config) { cfg.TxnDeadline = 100 * time.Millisecond })
	loadInt(t, c, "b1", 7)
	c.Partition("A", "B")

	h, err := c.Submit("A", "b1 = b1 + 1")
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(2 * time.Second)
	if h.Status() != StatusAborted || h.Reason() != reasonDeadline {
		t.Fatalf("status = %v (%q), want aborted (%q)", h.Status(), h.Reason(), reasonDeadline)
	}
	if got := counterValue(c, "txn.deadline.exceeded", metrics.L("role", "coordinator")); got != 1 {
		t.Errorf("coordinator deadline counter = %d, want 1", got)
	}
	c.HealAll()
	c.RunFor(2 * time.Second)
	if got := readInt(t, c, "b1"); got != 7 {
		t.Errorf("b1 = %d after deadline abort, want 7", got)
	}
	if problems := c.CheckInvariants(); len(problems) > 0 {
		t.Errorf("invariants: %v", problems)
	}
}

// TestDeadlineParticipantWaitClamped: a deadline tighter than the wait
// timeout resolves an in-doubt participant as soon as the budget runs
// out — it does not camp on its locks for the full WaitTimeout.
func TestDeadlineParticipantWaitClamped(t *testing.T) {
	c := newOverloadCluster(t, func(cfg *Config) {
		cfg.TxnDeadline = 100 * time.Millisecond
		cfg.WaitTimeout = 10 * time.Second // deadline must pre-empt this
	})
	loadInt(t, c, "b1", 7)
	c.ArmCrashBeforeDecision("A")

	h, err := c.Submit("A", "b1 = b1 + 1")
	if err != nil {
		t.Fatal(err)
	}
	// Far less than WaitTimeout: only the deadline can resolve B here.
	c.RunFor(500 * time.Millisecond)
	if h.Status() != StatusPending {
		t.Fatalf("handle = %v, want pending (coordinator crashed)", h.Status())
	}
	if got := counterValue(c, "txn.deadline.exceeded", metrics.L("role", "participant")); got != 1 {
		t.Errorf("participant deadline counter = %d, want 1", got)
	}
	if n := c.Store("B").PolyCount(); n != 1 {
		t.Errorf("B polyvalues = %d, want 1 (installed at deadline)", n)
	}
	c.Restart("A")
	c.RunFor(3 * time.Second)
	if got := readInt(t, c, "b1"); got != 7 {
		t.Errorf("b1 = %d after presumed abort, want 7", got)
	}
	if problems := c.CheckInvariants(); len(problems) > 0 {
		t.Errorf("invariants: %v", problems)
	}
}

// TestDeadlineWallClock: the deadline timer also fires on the real
// clock (node runtime).  A single node whose peer address answers
// nothing sees its cross-site transaction abort at the deadline, well
// before the generous read timeout.
func TestDeadlineWallClock(t *testing.T) {
	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// Reserve an address for B, then close it: a peer that never answers.
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrB := lnB.Addr().String()
	lnB.Close()

	fab := transport.NewTCPWithListener(transport.TCPConfig{
		Self:       "A",
		Peers:      map[protocol.SiteID]string{"A": lnA.Addr().String(), "B": addrB},
		BackoffMin: 5 * time.Millisecond,
		BackoffMax: 50 * time.Millisecond,
	}, lnA)
	node, err := NewNode(Config{
		Sites:        []protocol.SiteID{"A", "B"},
		TxnDeadline:  150 * time.Millisecond,
		ReadyTimeout: 10 * time.Second,
		WaitTimeout:  10 * time.Second,
		Placement: func(item string) protocol.SiteID {
			if item[0] == 'b' {
				return "B"
			}
			return "A"
		},
	}, "A", fab)
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	h, err := node.Submit("A", "a1 = b1 + 1")
	if err != nil {
		t.Fatal(err)
	}
	st, decided := h.Wait(5 * time.Second)
	if !decided || st != StatusAborted || h.Reason() != reasonDeadline {
		t.Fatalf("status = %v decided=%v (%q), want aborted (%q)",
			st, decided, h.Reason(), reasonDeadline)
	}
}

// TestBudgetDegradeRestoreConservation: at the polyvalue cap an
// in-doubt participant degrades to blocking 2PC; repair reduces the
// population, restores poly mode, and conserves every value.
func TestBudgetDegradeRestoreConservation(t *testing.T) {
	c := newOverloadCluster(t, func(cfg *Config) { cfg.MaxPolyBudget = 1 })
	loadInt(t, c, "b1", 10)
	loadInt(t, c, "b2", 20)
	loadInt(t, c, "b3", 30)
	siteB := metrics.L("site", "B")

	// Round 1: coordinator A crashes before deciding; B's wait timeout
	// installs a polyvalue for b1 — population hits the cap of 1.
	c.ArmCrashBeforeDecision("A")
	if _, err := c.Submit("A", "b1 = b1 + 1"); err != nil {
		t.Fatal(err)
	}
	c.RunFor(time.Second)
	if n := c.Store("B").PolyCount(); n != 1 {
		t.Fatalf("B polyvalues after round 1 = %d, want 1", n)
	}

	// Round 2: a second coordinator (C) crashes the same way.  B is at
	// its budget now, so it must block on b2 instead of installing.
	c.ArmCrashBeforeDecision("C")
	if _, err := c.Submit("C", "b2 = b2 + 1"); err != nil {
		t.Fatal(err)
	}
	c.RunFor(time.Second)
	if n := c.Store("B").PolyCount(); n != 1 {
		t.Errorf("B polyvalues after round 2 = %d, want 1 (bounded by budget)", n)
	}
	if got := gaugeValue(c, "site.budget.mode", siteB); got != 1 {
		t.Errorf("budget mode = %d, want 1 (degraded)", got)
	}
	if got := counterValue(c, "txn.degraded.blocking"); got != 1 {
		t.Errorf("degraded txns = %d, want 1", got)
	}

	// Repair: both coordinators recover and answer presumed abort; the
	// polyvalue reduces, the blocked participant aborts and releases,
	// and the budget gate reopens.
	c.Restart("A")
	c.Restart("C")
	c.RunFor(5 * time.Second)
	if n := c.Store("B").PolyCount(); n != 0 {
		t.Errorf("B polyvalues after repair = %d, want 0", n)
	}
	if got := gaugeValue(c, "site.budget.mode", siteB); got != 0 {
		t.Errorf("budget mode after repair = %d, want 0 (poly mode restored)", got)
	}
	for item, want := range map[string]int64{"b1": 10, "b2": 20, "b3": 30} {
		if got := readInt(t, c, item); got != want {
			t.Errorf("%s = %d, want %d (conservation)", item, got, want)
		}
	}
	if problems := c.CheckInvariants(); len(problems) > 0 {
		t.Errorf("invariants: %v", problems)
	}

	// Poly mode genuinely resumed: the next in-doubt transaction
	// installs a polyvalue again instead of blocking.
	c.ArmCrashBeforeDecision("A")
	if _, err := c.Submit("A", "b3 = b3 + 1"); err != nil {
		t.Fatal(err)
	}
	c.RunFor(time.Second)
	if n := c.Store("B").PolyCount(); n != 1 {
		t.Errorf("B polyvalues after round 3 = %d, want 1 (poly mode back)", n)
	}
	c.Restart("A")
	c.RunFor(3 * time.Second)
	if problems := c.CheckInvariants(); len(problems) > 0 {
		t.Errorf("final invariants: %v", problems)
	}
}
