package cluster

import (
	"fmt"
	"sort"

	"repro/internal/protocol"
	"repro/internal/storage"
	"repro/internal/txn"
)

// CrashPoint names a one-shot failpoint inside the commit protocol.  A
// site armed at a point crashes (volatile state lost, durable store
// kept) the next time execution reaches it, exactly as a power cut
// there would.  The registry generalizes the original single
// before-decision hook so the torture harness can exercise every
// distinct durability window of the protocol.
type CrashPoint string

const (
	// CrashBeforePrepare fires on the coordinator after all reads
	// arrive, before any prepare message is sent: participants hold
	// read locks with no transaction coming, and recover via the lock
	// timeout.
	CrashBeforePrepare CrashPoint = "before-prepare"
	// CrashBeforeReady fires on a participant after its prepared record
	// is durably logged but before the ready message leaves: the
	// coordinator sees a ready timeout while this site recovers its
	// in-doubt state from the WAL.
	CrashBeforeReady CrashPoint = "before-ready"
	// CrashAfterReady fires on a participant just after sending ready:
	// the paper's wait-phase window, entered with the prepared record
	// already durable.
	CrashAfterReady CrashPoint = "after-ready"
	// CrashBeforeDecision fires on the coordinator the instant it would
	// decide COMMIT — every ready collected, nothing logged or sent.
	// This is the paper's critical moment (the original ARMCRASH hook).
	CrashBeforeDecision CrashPoint = "before-decision"
	// CrashAfterDecisionLog fires on the coordinator after the commit
	// decision is durably logged but before any complete message is
	// sent: participants time out into polyvalues and must extract the
	// outcome from the restarted coordinator's log.
	CrashAfterDecisionLog CrashPoint = "after-decision-log"
	// CrashBeforePaxosAccept fires on a PlanePaxos acceptor when a
	// 2a/vote arrives, before anything is durably accepted: the vote is
	// lost at this acceptor (survivable at up to F of them).
	CrashBeforePaxosAccept CrashPoint = "before-paxos-accept"
	// CrashAfterPaxosAccept fires on a PlanePaxos acceptor right after
	// its durable accept, before the 2b reply leaves: the leader must
	// reach quorum elsewhere or a takeover re-reads this state.
	CrashAfterPaxosAccept CrashPoint = "after-paxos-accept"
	// CrashMidWALAppend tears the site's next durable log write in half
	// (storage.FileLog.TearNext) and crashes: recovery must replay the
	// intact prefix and discard the torn record.  On sites without a
	// file-backed WAL the crash still fires right after the append.
	CrashMidWALAppend CrashPoint = "mid-wal-append"
)

// CrashPoints lists every registered crash point, sorted.
func CrashPoints() []CrashPoint {
	pts := []CrashPoint{
		CrashBeforePrepare, CrashBeforeReady, CrashAfterReady,
		CrashBeforeDecision, CrashAfterDecisionLog, CrashMidWALAppend,
		CrashBeforePaxosAccept, CrashAfterPaxosAccept,
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i] < pts[j] })
	return pts
}

func validCrashPoint(p CrashPoint) bool {
	switch p {
	case CrashBeforePrepare, CrashBeforeReady, CrashAfterReady,
		CrashBeforeDecision, CrashAfterDecisionLog, CrashMidWALAppend,
		CrashBeforePaxosAccept, CrashAfterPaxosAccept:
		return true
	}
	return false
}

// ArmCrash arms a one-shot crash point at a site.  The site crashes the
// next time its protocol execution reaches the point; decision-side
// points only fire for COMMIT decisions (aborts carry no durability
// risk worth interrupting).
func (c *Cluster) ArmCrash(id protocol.SiteID, point CrashPoint) error {
	if !validCrashPoint(point) {
		return fmt.Errorf("cluster: unknown crash point %q (have %v)", point, CrashPoints())
	}
	site, ok := c.sites[id]
	if !ok {
		return fmt.Errorf("cluster: unknown site %q", id)
	}
	site.do(func() { site.armed[point] = true })
	return nil
}

// ArmCrashBeforeDecision makes the site crash the instant it would next
// decide COMMIT as a coordinator — after collecting every ready
// message, before logging or sending complete.  This is the paper's
// "critical moment"; kept as a convenience alias for
// ArmCrash(id, CrashBeforeDecision).
func (c *Cluster) ArmCrashBeforeDecision(id protocol.SiteID) {
	_ = c.ArmCrash(id, CrashBeforeDecision)
}

// maybeCrash fires an armed crash point: the site crashes and the
// point disarms.  Returns true when the crash happened (the caller
// must abandon whatever it was doing — all volatile state is gone).
func (s *Site) maybeCrash(point CrashPoint, tid txn.ID) bool {
	if !s.armed[point] {
		return false
	}
	delete(s.armed, point)
	s.c.trace("%s CRASH at %s of %s", s.id, point, tid)
	s.crash()
	return true
}

// walWrite performs one durable log write, honouring an armed
// mid-wal-append crash: the write tears half-way on file-backed stores
// and the site dies with the torn tail on disk.  Returns crashed=true
// when the site is gone (err is then irrelevant to the caller).
func (s *Site) walWrite(tid txn.ID, write func() error) (crashed bool, err error) {
	if s.armed[CrashMidWALAppend] && s.flog != nil {
		s.flog.TearNext()
	}
	err = write()
	if s.maybeCrash(CrashMidWALAppend, tid) {
		return true, err
	}
	if err != nil && storage.IsTornWrite(err) {
		// A tear armed directly on the FileLog (node-mode kill -9
		// emulation) or injected by a FaultFS torn rule, without the
		// crash point: treat as the crash it models.  The torn fragment
		// self-repairs (truncate on next write / recovery), so this is
		// an ordinary crash, not a durability panic.
		s.c.trace("%s torn WAL write for %s: %v", s.id, tid, err)
		s.crash()
		return true, err
	}
	if err != nil {
		// fsyncgate: any other failure to log (failed fsync, ENOSPC,
		// sticky earlier error) means the disk may hold less than memory
		// believes.  The site must die before acking anything durable.
		s.durabilityPanic(tid, err)
		return true, err
	}
	return false, err
}
