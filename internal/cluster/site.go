package cluster

import (
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"repro/internal/expr"
	"repro/internal/guard"
	"repro/internal/metrics"
	"repro/internal/polytxn"
	"repro/internal/polyvalue"
	"repro/internal/protocol"
	"repro/internal/storage"
	"repro/internal/trace"
	"repro/internal/txn"
	"repro/internal/vclock"
)

// Site is one database node: a goroutine processing one event at a time.
// All fields are owned by the site goroutine; the controller interacts
// only through do().
type Site struct {
	id    protocol.SiteID
	c     *Cluster
	store *storage.Store

	inbox chan siteEvent
	quit  chan struct{}
	once  sync.Once

	// Lane engine (see lanes.go).  laneQs is nil when lanes are off —
	// the seed single-goroutine path.  When set (wall-clock mode,
	// Config.Lanes > 1), events route to laneQs[laneFor(tid)] and every
	// event on every lane runs under stateMu; outbox stages the running
	// event's outputs for post-durability release.  glog is the
	// group-commit WAL stage (Config.SyncWAL with a DataDir); it also
	// activates outbox mode with lanes off, paying the fsync inline.
	laneQs  []chan siteEvent
	stateMu sync.Mutex
	outbox  *outbox
	glog    *storage.GroupLog

	down bool
	// durLost marks an incarnation whose durable log failed a write or
	// fsync (the fsyncgate discipline): the page cache can no longer be
	// trusted, the in-memory store may run ahead of the disk, and the
	// only safe recovery is a full process-style rebuild that re-reads
	// the on-disk bytes.  Set by durabilityPanic; survives crash();
	// restart() refuses while it is set.
	durLost bool
	// armed holds the one-shot crash points set by Cluster.ArmCrash
	// (see crashpoints.go).  Injection state, not protocol state: it
	// survives crash() so a point armed while down fires after restart.
	armed map[CrashPoint]bool
	// flog is the site's file-backed WAL when one exists (DataDir set);
	// the mid-wal-append crash point tears writes through it.
	flog *storage.FileLog
	// walFloor is the WAL size right after the last compaction.  The
	// next checkpoint fires only once the log exceeds both
	// CheckpointBytes and twice this floor: when live state alone is
	// bigger than the configured threshold, a fixed trigger would
	// otherwise re-checkpoint on every message (each compaction ends
	// already over the limit).
	walFloor int

	// locks maps item → holding transaction (no-wait exclusive locks:
	// conflicts refuse, which aborts, which is deadlock-free).
	locks map[string]txn.ID
	// lockedBy is the reverse index: the items each transaction holds,
	// so release is O(items held) instead of a sweep of every lock on
	// the site.
	lockedBy map[txn.ID][]string
	// parts holds per-transaction participant contexts.
	parts map[txn.ID]*partCtx
	// coords holds per-transaction coordinator contexts.
	coords map[txn.ID]*coordCtx
	// retry holds outcome-request retry state for in-doubt transactions.
	retry map[txn.ID]retryState
	// plead holds per-transaction Paxos leader state (coordinator fast
	// path or takeover) when the cluster runs the paxos decision plane.
	plead map[txn.ID]*paxosLead
	// pwatch holds acceptor-side watchdog timers: a site with durable
	// undecided paxos instance state eventually drives the decision
	// itself if no announce reaches it.
	pwatch map[txn.ID]vclock.TimerID
	// ackRetry holds coordinator-side decision-retransmission timers:
	// until every participant acknowledges a decided outcome, the
	// complete/abort is resent with capped exponential backoff.
	ackRetry map[txn.ID]vclock.TimerID
	// notifyRetry holds resend timers for §3.3 outcome notifications
	// that have not been acknowledged by every listed site yet.
	notifyRetry map[txn.ID]vclock.TimerID
	// acks tracks, per decided transaction this site coordinated, which
	// participants have not yet acknowledged the outcome; once empty the
	// outcome record is garbage-collected after OutcomeTTL (§3.3).
	acks map[txn.ID]map[protocol.SiteID]bool
	// decidedAt timestamps coordinator decisions still awaiting their
	// last outcome ack, for the settle-phase histogram.
	decidedAt map[txn.ID]vclock.Time

	// admission gates in-flight coordinated transactions (overload
	// protection); credits are taken in SubmitProgram and returned when
	// the handle decides or the site crashes with the handle pending.
	admission *guard.Admission
	// budget caps the local polyvalue population and dependency-table
	// size; while exhausted, in-doubt participants degrade to blocking
	// 2PC instead of installing more polyvalues.
	budget *guard.Budget
	// inboxDepth/inboxHWM/inboxShed observe the event queue; hwm is the
	// loop-goroutine-local high-water mark behind the gauge.
	inboxDepth *metrics.Gauge
	inboxHWM   *metrics.Gauge
	inboxShed  *metrics.Counter
	// durPanics counts durability panics (site.durability.panics): times
	// this site crashed itself rather than ack work its disk may have
	// dropped.
	durPanics *metrics.Counter
	hwm       int

	// aeTimer is the anti-entropy gossip loop's pending timer (quorum
	// replication only); cancelled by crash, re-armed by restart.
	// aeRound counts rounds initiated, seeding the deterministic peer
	// pick and digest-window rotation.
	aeTimer vclock.TimerID
	aeRound int

	// lockAt timestamps each held lock's acquisition for the blocking
	// accountant (see spans.go); blockedLock/Indoubt/Degraded are the
	// cached item.blocked.seconds{site,cause} histograms it feeds.
	lockAt          map[string]vclock.Time
	blockedLock     *metrics.Histogram
	blockedIndoubt  *metrics.Histogram
	blockedDegraded *metrics.Histogram
	// spanOf remembers the root span of decided transactions this site
	// coordinated, for the settle span recorded when the last outcome
	// ack arrives (the coordinator context is gone by then).
	spanOf map[txn.ID]trace.SpanID
}

// siteEvent is one queued closure for the site goroutine; done, when
// non-nil, is closed after fn runs (the synchronous do() path).
type siteEvent struct {
	fn   func()
	done chan struct{}
}

// siteInboxDepth buffers the event queue so wall-clock posters (TCP
// read loops, timers) hand off without a rendezvous.  The simulated
// runtime's do() waits for completion regardless, so buffering does not
// affect determinism.
const siteInboxDepth = 256

// retryState is one in-doubt transaction's outcome-request loop.
type retryState struct {
	timer       vclock.TimerID
	coordinator protocol.SiteID
	// attempt counts inquiries sent so far, driving the backoff.
	attempt int
}

// partCtx is a participant's volatile state for one transaction.
type partCtx struct {
	tid         txn.ID
	coordinator protocol.SiteID
	machine     *protocol.Participant
	// locked lists local items this transaction holds locks on.
	locked []string
	// writes/previous cover the local write items (set at prepare).
	writes   map[string]polyvalue.Poly
	previous map[string]polyvalue.Poly
	// blocked marks a blocking-policy participant sitting on its locks
	// past the wait timeout.
	blocked bool
	// deadline is the transaction's local expiry instant, re-anchored
	// from the remaining budget the prepare message carried; zero when
	// no deadline is set.
	deadline  vclock.Time
	waitTimer vclock.TimerID
	lockTimer vclock.TimerID
	// readyAt timestamps the ready message for the wait-phase histogram.
	readyAt vclock.Time
	// spanParent is the coordinator's root span ID, learned from the
	// trace context on read-req/prepare messages; zero when tracing is
	// off.
	spanParent trace.SpanID
	// blockedAt/blockCause describe the in-doubt camp of a blocked
	// participant: when it began and which accountant cause (indoubt or
	// degraded) its lock holds accrue to.
	blockedAt  vclock.Time
	blockCause string
}

// coordCtx is a coordinator's volatile state for one transaction or
// query.
type coordCtx struct {
	tid    txn.ID
	t      txn.T
	handle *Handle

	// isQuery marks read-only queries (no prepare/commit phases).
	isQuery bool
	qh      *QueryHandle
	qnode   expr.Node
	// qCertainBy, when non-zero, is §3.4's "withhold" mode: an uncertain
	// answer is re-polled until it becomes certain or this deadline
	// passes.
	qCertainBy vclock.Time

	// readWait counts outstanding read replies; values accumulates them.
	readWait  map[protocol.SiteID]bool
	values    map[string]polyvalue.Poly
	readTimer vclock.TimerID

	// quorum holds the replica bookkeeping when the cluster runs quorum
	// replication (see quorum.go); nil on the classic single-copy path.
	quorum *quorumCtx

	// participants are the sites involved (every site holding an
	// accessed item); machine collects their readies.
	participants []protocol.SiteID
	// readOnly marks participants that voted ready-read-only and left
	// the protocol early; they receive no complete/abort.
	readOnly   map[protocol.SiteID]bool
	machine    *protocol.Coordinator
	readyTimer vclock.TimerID
	prepared   bool
	// deadline is the end-to-end expiry instant (TxnDeadline after
	// submission); the coordinator aborts the transaction when
	// deadlineTimer fires with it still undecided.  Zero when disabled.
	deadline      vclock.Time
	deadlineTimer vclock.TimerID
	// paxosPending marks a coordinator decision already handed to the
	// paxos plane (waiting for consensus before finalizing).
	paxosPending bool
	// startAt/prepareAt bound the read and prepare phases for the
	// per-phase latency histograms.
	startAt   vclock.Time
	prepareAt vclock.Time
	// span is the transaction's root span ID (zero when tracing is off);
	// it rides outgoing read-req/prepare messages as the trace context.
	span trace.SpanID
}

func newSite(c *Cluster, id protocol.SiteID, store *storage.Store, glog *storage.GroupLog) *Site {
	s := &Site{
		id: id, c: c, store: store, glog: glog,
		inbox:       make(chan siteEvent, siteInboxDepth),
		quit:        make(chan struct{}),
		armed:       map[CrashPoint]bool{},
		locks:       map[string]txn.ID{},
		lockedBy:    map[txn.ID][]string{},
		parts:       map[txn.ID]*partCtx{},
		coords:      map[txn.ID]*coordCtx{},
		retry:       map[txn.ID]retryState{},
		plead:       map[txn.ID]*paxosLead{},
		pwatch:      map[txn.ID]vclock.TimerID{},
		ackRetry:    map[txn.ID]vclock.TimerID{},
		notifyRetry: map[txn.ID]vclock.TimerID{},
		acks:        map[txn.ID]map[protocol.SiteID]bool{},
		decidedAt:   map[txn.ID]vclock.Time{},
		lockAt:      map[string]vclock.Time{},
		spanOf:      map[txn.ID]trace.SpanID{},
	}
	l := metrics.L("site", string(id))
	s.admission = guard.NewAdmission(c.cfg.AdmissionLimit, c.reg, string(id))
	s.budget = guard.NewBudget(c.cfg.MaxPolyBudget, c.cfg.MaxDepBudget, c.reg, string(id))
	s.inboxDepth = c.reg.Gauge("site.inbox.depth", l)
	s.inboxHWM = c.reg.Gauge("site.inbox.hwm", l)
	s.inboxShed = c.reg.Counter("site.inbox.shed", l)
	s.durPanics = c.reg.Counter("site.durability.panics", l)
	s.blockedLock = c.reg.Histogram("item.blocked.seconds", l, metrics.L("cause", causeLock))
	s.blockedIndoubt = c.reg.Histogram("item.blocked.seconds", l, metrics.L("cause", causeInDoubt))
	s.blockedDegraded = c.reg.Histogram("item.blocked.seconds", l, metrics.L("cause", causeDegraded))
	if c.wall != nil && c.cfg.Lanes > 1 {
		s.laneQs = make([]chan siteEvent, c.cfg.Lanes)
		for i := range s.laneQs {
			s.laneQs[i] = make(chan siteEvent, siteInboxDepth)
			go s.laneLoop(s.laneQs[i])
		}
	}
	go s.loop()
	if c.cfg.Replication != nil && len(c.cfg.Sites) > 1 {
		// Serialize the timer-ID write onto the site goroutine, like
		// every later re-arm.
		s.do(func() { s.armGossip() })
	}
	return s
}

// loop is the site goroutine: it processes one event at a time and
// acknowledges the synchronous ones, so a dispatching do() blocks until
// the site is done — this serialization is what makes cluster runs
// deterministic in the simulated runtime.  Asynchronous events (post)
// carry no ack channel: the wall-clock runtime pipelines message
// delivery through the buffered inbox without stalling TCP read loops
// on handler completion, while the per-site goroutine still serializes
// all state access.
func (s *Site) loop() {
	for {
		select {
		case <-s.quit:
			return
		case ev := <-s.inbox:
			// Queue depth as observed at dequeue (this event included);
			// the high-water mark is what overload post-mortems read.
			if n := len(s.inbox) + 1; n > s.hwm {
				s.hwm = n
				s.inboxHWM.Set(int64(n))
			}
			s.exec(ev)
			s.inboxDepth.Set(int64(len(s.inbox)))
		}
	}
}

// do runs fn on the site goroutine and waits for completion.  After
// close, fn is silently dropped — late timers and deliveries racing a
// wall-clock shutdown land here.
func (s *Site) do(fn func()) {
	done := make(chan struct{})
	select {
	case s.inbox <- siteEvent{fn: fn, done: done}:
		select {
		case <-done:
		case <-s.quit:
		}
	case <-s.quit:
	}
}

// post queues fn on the site goroutine WITHOUT waiting for it to run —
// the wall-clock fast path.  Events still execute strictly in queue
// order on the one site goroutine; only the caller's rendezvous is
// gone.  Never used by the simulated runtime, whose determinism depends
// on do()'s synchronous handoff.
func (s *Site) post(fn func()) {
	select {
	case s.inbox <- siteEvent{fn: fn}:
	case <-s.quit:
	}
}

// tryDo queues fn like post but sheds instead of blocking when the
// inbox is full: the overload path for non-protocol work (queries) in
// the wall-clock runtime, where a stalled caller would otherwise sit
// behind protocol traffic.  Returns false when the event was shed; a
// closed site reports true (the work is silently dropped, matching
// do/post semantics).
func (s *Site) tryDo(fn func()) bool {
	select {
	case s.inbox <- siteEvent{fn: fn}:
		return true
	case <-s.quit:
		return true
	default:
		return false
	}
}

// close stops the goroutine.  Idempotent; pending do() callers unblock
// without running.
func (s *Site) close() { s.once.Do(func() { close(s.quit) }) }

// onMessage is the network delivery handler.  The simulated runtime
// calls it from scheduler events and needs the synchronous handoff for
// determinism; the wall-clock runtime posts asynchronously so a TCP
// read loop (which may have just decoded a whole batch) queues the
// messages and moves on instead of stalling a round-trip per message.
// onMessageBatch handles a whole same-destination frame as ONE site
// event (wall-clock runtime only: the TCP transport's batch delivery
// path).  The transport hands over ownership of the slice, so it can
// cross the goroutine boundary without a copy.
func (s *Site) onMessageBatch(msgs []protocol.Message) {
	if s.laneQs != nil {
		// Lane fan-out: split the frame into per-lane runs, preserving
		// arrival order within each lane (all of one transaction's
		// messages share a lane, so per-TID FIFO survives).  Each run
		// is one event on its lane.
		for start := 0; start < len(msgs); {
			lane := s.laneFor(msgs[start].TID)
			end := start + 1
			for end < len(msgs) && s.laneFor(msgs[end].TID) == lane {
				end++
			}
			run := msgs[start:end]
			s.postLane(lane, func() {
				if s.down {
					return
				}
				for _, msg := range run {
					s.handle(msg)
				}
			})
			start = end
		}
		return
	}
	s.post(func() {
		if s.down {
			return
		}
		for _, msg := range msgs {
			s.handle(msg)
		}
	})
}

func (s *Site) onMessage(msg protocol.Message) {
	fn := func() {
		if s.down {
			return
		}
		s.handle(msg)
	}
	if s.c.wall != nil {
		s.postLane(s.laneFor(msg.TID), fn)
		return
	}
	s.do(fn)
}

// send traces and transmits a message from this site.  In outbox mode
// (lanes or durable sync active) the transmission is staged and leaves
// the site only after the running event's WAL records are durable; the
// trace line is still emitted at staging time, under stateMu, so the
// trace ring needs no extra synchronization.
func (s *Site) send(msg protocol.Message) {
	msg.From = s.id
	if s.c.tracing {
		s.c.trace("%s send %s", s.id, msg)
	}
	if ob := s.outbox; ob != nil {
		ob.add(func() { s.c.fab.Send(msg) })
		return
	}
	s.c.fab.Send(msg)
}

// after schedules a site-local timer that is automatically ignored if
// the site is down when it fires.
func (s *Site) after(d vclock.Time, fn func()) vclock.TimerID {
	return s.c.clk.After(d, func() {
		s.do(func() {
			if s.down {
				return
			}
			fn()
		})
	})
}

// handle dispatches one delivered message.
func (s *Site) handle(msg protocol.Message) {
	if s.c.tracing {
		s.c.trace("%s recv %s", s.id, msg)
	}
	switch msg.Kind {
	case protocol.MsgReadReq:
		s.onReadReq(msg)
	case protocol.MsgReadRep:
		s.onReadRep(msg)
	case protocol.MsgPrepare:
		s.onPrepare(msg)
	case protocol.MsgReady:
		s.onReady(msg)
	case protocol.MsgRefuse:
		s.onRefuse(msg)
	case protocol.MsgComplete:
		s.onOutcomeMsg(msg.TID, true)
		s.ackOutcome(msg)
	case protocol.MsgAbort:
		s.onAbortMsg(msg)
		s.ackOutcome(msg)
	case protocol.MsgOutcomeReq:
		s.onOutcomeReq(msg)
	case protocol.MsgOutcomeInfo:
		s.resolveOutcome(msg.TID, msg.Committed)
		// Acknowledge so the notifier can strike us from its dependency
		// entry and stop resending (§3.3 delivery must be reliable).
		if msg.From != s.id {
			s.send(protocol.Message{Kind: protocol.MsgOutcomeAck, TID: msg.TID, To: msg.From})
		}
	case protocol.MsgOutcomeAck:
		s.onOutcomeAck(msg)
	case protocol.MsgPaxosBegin:
		s.onPaxosBegin(msg)
	case protocol.MsgPaxosPrepare:
		s.onPaxosPrepare(msg)
	case protocol.MsgPaxosPromise:
		s.onPaxosPromise(msg)
	case protocol.MsgPaxosAccept:
		s.onPaxosAccept(msg)
	case protocol.MsgPaxosAccepted:
		s.onPaxosAccepted(msg)
	case protocol.MsgPaxosReject:
		s.onPaxosReject(msg)
	case protocol.MsgPaxosDecision:
		s.onPaxosDecision(msg)
	case protocol.MsgAntiEntropyDigest:
		s.onAEDigest(msg)
	case protocol.MsgAntiEntropyReply:
		s.onAEReply(msg)
	case protocol.MsgAntiEntropyUpdate:
		s.onAEUpdate(msg)
	case protocol.MsgReadRelease:
		s.onReadRelease(msg)
	}
	if cb := s.c.cfg.CheckpointBytes; cb > 0 && s.store.WALSize() > max(cb, 2*s.walFloor) {
		if n, err := s.store.Checkpoint(); err != nil {
			s.c.trace("%s checkpoint failed: %v", s.id, err)
		} else {
			s.walFloor = n
			s.c.trace("%s checkpointed WAL to %d bytes", s.id, n)
		}
	}
}

// ---------------------------------------------------------------------
// Coordinator side
// ---------------------------------------------------------------------

// beginTxn starts coordinating a transaction (runs on the site
// goroutine).
func (s *Site) beginTxn(t txn.T, h *Handle) {
	if s.down {
		s.decideHandle(h, StatusAborted, "coordinator down")
		s.c.aborted.Inc()
		return
	}
	if s.c.cfg.Replication != nil {
		s.beginQuorumTxn(t, h)
		return
	}
	ctx := &coordCtx{
		tid: t.ID, t: t, handle: h,
		readWait: map[protocol.SiteID]bool{},
		values:   map[string]polyvalue.Poly{},
		startAt:  s.c.clk.Now(),
	}
	if d := s.c.cfg.TxnDeadline; d > 0 {
		ctx.deadline = ctx.startAt + vclock.Time(d)
	}
	if s.spansOn() {
		ctx.span = s.c.cfg.Spans.NextID()
	}
	// Participants: every site holding an accessed item.
	siteItems := map[protocol.SiteID][]string{}
	for _, item := range t.Items() {
		owner := s.c.Placement(item)
		siteItems[owner] = append(siteItems[owner], item)
	}
	for site := range siteItems {
		ctx.participants = append(ctx.participants, site)
	}
	sort.Slice(ctx.participants, func(i, j int) bool { return ctx.participants[i] < ctx.participants[j] })

	// §2.1 lock avoidance: a transaction entirely local to this site
	// needs no atomic-update coordination at all — commit in one step.
	if !s.c.cfg.DisableOnePhaseOpt && len(ctx.participants) == 1 && ctx.participants[0] == s.id {
		s.onePhaseCommit(ctx, h)
		return
	}
	s.coords[t.ID] = ctx
	if ctx.deadline > 0 {
		ctx.deadlineTimer = s.after(s.c.cfg.TxnDeadline, func() { s.onTxnDeadline(t.ID) })
	}

	// Read phase: request the read-set values, with locks.
	readOwner := map[protocol.SiteID][]string{}
	for _, item := range t.ReadSet() {
		owner := s.c.Placement(item)
		readOwner[owner] = append(readOwner[owner], item)
	}
	if len(readOwner) == 0 {
		// Nothing to read; go straight to prepare.
		s.sendPrepares(ctx)
		return
	}
	for _, site := range sortedSites(readOwner) {
		items := readOwner[site]
		ctx.readWait[site] = true
		sort.Strings(items)
		s.send(protocol.Message{
			Kind: protocol.MsgReadReq, TID: t.ID, To: site,
			Items: items, Lock: true, Coordinator: s.id,
			Deadline: s.remainingDeadline(ctx),
			TraceCtx: s.traceCtx(ctx),
		})
	}
	ctx.readTimer = s.after(s.c.cfg.ReadyTimeout, func() { s.onReadTimeout(ctx.tid) })
}

// onePhaseCommit executes a fully-local transaction directly: lock,
// compute, install, unlock.  No protocol window exists in which a remote
// failure could strand the items — the §2.1 observation that avoiding
// the need for an atomic distributed update avoids its hazards.
func (s *Site) onePhaseCommit(ctx *coordCtx, h *Handle) {
	items := ctx.t.Items()
	if !s.lockAll(ctx.tid, items) {
		s.c.refused.Inc()
		s.c.aborted.Inc()
		reason := "refused: lock conflict at " + string(s.id)
		s.decideHandle(h, StatusAborted, reason)
		s.recordTxnRoot(ctx, StatusAborted, reason, true)
		return
	}
	defer s.releaseLocks(ctx.tid)
	ex := &polytxn.Executor{MaxAlternatives: s.c.cfg.MaxAlternatives}
	res, err := ex.Execute(ctx.t, s.store.Get)
	if err != nil {
		s.c.aborted.Inc()
		s.decideHandle(h, StatusAborted, "compute: "+err.Error())
		s.recordTxnRoot(ctx, StatusAborted, "compute: "+err.Error(), true)
		return
	}
	writeItems := make([]string, 0, len(res.Writes))
	for item := range res.Writes {
		writeItems = append(writeItems, item)
	}
	sort.Strings(writeItems)
	for _, item := range writeItems {
		p := res.Writes[item]
		if err := s.put(item, p); err != nil {
			s.c.aborted.Inc()
			s.decideHandle(h, StatusAborted, "wal: "+err.Error())
			s.recordTxnRoot(ctx, StatusAborted, "wal: "+err.Error(), true)
			return
		}
		if _, certain := p.IsCertain(); !certain {
			s.c.polyInstalls.Inc()
			s.c.polyForks.Inc()
			s.c.trace("%s poly-install %s item=%s", s.id, ctx.tid, item)
			for _, dep := range p.DependsOn() {
				_ = s.store.AddDepItem(dep, item)
			}
		}
	}
	s.reduceKnownDeps()
	s.c.committed.Inc()
	s.decideHandle(h, StatusCommitted, "")
	s.recordTxnRoot(ctx, StatusCommitted, "", true)
	s.c.trace("%s one-phase commit of %s", s.id, ctx.tid)
}

// beginQuery starts a read-only query.  A non-zero certainBy deadline
// selects §3.4's withhold mode: uncertain answers are re-polled until
// they resolve or the deadline passes.
func (s *Site) beginQuery(qid txn.ID, node expr.Node, qh *QueryHandle, certainBy vclock.Time) {
	if s.down {
		s.completeQuery(qh, polyvalue.Poly{}, errSiteDown)
		return
	}
	if s.c.cfg.Replication != nil {
		s.beginQuorumQuery(qid, node, qh, certainBy)
		return
	}
	ctx := &coordCtx{
		tid: qid, isQuery: true, qh: qh, qnode: node, qCertainBy: certainBy,
		readWait: map[protocol.SiteID]bool{},
		values:   map[string]polyvalue.Poly{},
	}
	set := map[string]bool{}
	exprVars(node, set)
	readOwner := map[protocol.SiteID][]string{}
	for item := range set {
		owner := s.c.Placement(item)
		readOwner[owner] = append(readOwner[owner], item)
	}
	s.coords[qid] = ctx
	if len(readOwner) == 0 {
		s.finishQuery(ctx)
		return
	}
	for _, site := range sortedSites(readOwner) {
		items := readOwner[site]
		ctx.readWait[site] = true
		sort.Strings(items)
		s.send(protocol.Message{
			Kind: protocol.MsgReadReq, TID: qid, To: site,
			Items: items, Lock: false, Coordinator: s.id,
		})
	}
	ctx.readTimer = s.after(s.c.cfg.ReadyTimeout, func() { s.onReadTimeout(qid) })
}

// onReadRep collects read values; when complete, queries evaluate and
// update transactions move to the prepare phase.
func (s *Site) onReadRep(msg protocol.Message) {
	ctx, ok := s.coords[msg.TID]
	if !ok || ctx.prepared {
		return // late or duplicate
	}
	if !ctx.readWait[msg.From] {
		return
	}
	if ctx.quorum != nil {
		s.onQuorumReadRep(ctx, msg)
		return
	}
	delete(ctx.readWait, msg.From)
	for item, p := range msg.Values {
		ctx.values[item] = p
	}
	if len(ctx.readWait) > 0 {
		return
	}
	s.c.clk.Cancel(ctx.readTimer)
	if ctx.isQuery {
		s.finishQuery(ctx)
		return
	}
	s.sendPrepares(ctx)
}

// finishQuery evaluates the query against the collected values; in
// withhold mode an uncertain answer schedules a re-poll instead of
// completing (§3.4: "withhold those outputs until the uncertainty is
// resolved").
func (s *Site) finishQuery(ctx *coordCtx) {
	ex := &polytxn.Executor{MaxAlternatives: s.c.cfg.MaxAlternatives}
	p, err := ex.EvalQuery(ctx.qnode, func(item string) polyvalue.Poly {
		if v, ok := ctx.values[item]; ok {
			return v
		}
		return polyvalue.Simple(nilValue())
	})
	delete(s.coords, ctx.tid)
	if err == nil && ctx.qCertainBy > 0 {
		if _, certain := p.IsCertain(); !certain {
			if s.c.clk.Now() >= ctx.qCertainBy {
				s.completeQuery(ctx.qh, p, ErrStillUncertain)
				return
			}
			qid, node, qh, deadline := ctx.tid, ctx.qnode, ctx.qh, ctx.qCertainBy
			s.c.clk.After(s.c.cfg.RetryInterval, func() {
				s.do(func() {
					if s.down {
						// Withheld queries must not hang on a crashed
						// coordinator.
						s.completeQuery(qh, polyvalue.Poly{}, errSiteDown)
						return
					}
					s.beginQuery(qid, node, qh, deadline)
				})
			})
			return
		}
	}
	s.completeQuery(ctx.qh, p, err)
}

// remainingDeadline is the time budget left on a coordinated
// transaction, for stamping outgoing protocol messages: zero when no
// deadline is set (and when already expired — the deadline timer owns
// that case; messages never carry a non-positive budget).
func (s *Site) remainingDeadline(ctx *coordCtx) time.Duration {
	if ctx.deadline <= 0 {
		return 0
	}
	rem := ctx.deadline - s.c.clk.Now()
	if rem <= 0 {
		return 0
	}
	return time.Duration(rem)
}

// onTxnDeadline aborts a coordinated transaction whose end-to-end time
// budget ran out before a decision was reached.
func (s *Site) onTxnDeadline(tid txn.ID) {
	ctx, ok := s.coords[tid]
	if !ok || ctx.isQuery {
		return
	}
	s.c.deadlineCoord.Inc()
	s.c.trace("%s deadline exceeded on %s: aborting", s.id, tid)
	s.decide(ctx, false, reasonDeadline)
}

// onReadTimeout aborts a transaction (or fails a query) whose read phase
// stalled — some site holding needed data is unreachable, so per the
// paper the transaction is simply not performed.
func (s *Site) onReadTimeout(tid txn.ID) {
	ctx, ok := s.coords[tid]
	if !ok || ctx.prepared {
		return
	}
	if ctx.isQuery {
		s.completeQuery(ctx.qh, polyvalue.Poly{}, errReadTimeout)
		delete(s.coords, tid)
		return
	}
	s.decide(ctx, false, "read timeout")
}

// sendPrepares distributes the transaction to every participant.
func (s *Site) sendPrepares(ctx *coordCtx) {
	// Failpoint: reads collected, no prepare sent — participants hold
	// read locks they must abandon via the lock timeout.
	if s.maybeCrash(CrashBeforePrepare, ctx.tid) {
		return
	}
	if ctx.deadline > 0 && s.c.clk.Now() >= ctx.deadline {
		// The budget ran out during the read phase; don't start a commit
		// round that is already doomed.
		s.c.deadlineCoord.Inc()
		s.decide(ctx, false, reasonDeadline)
		return
	}
	ctx.prepared = true
	ctx.prepareAt = s.c.clk.Now()
	s.c.phaseRead.Observe((ctx.prepareAt - ctx.startAt).Seconds())
	if s.spansOn() {
		s.recordSpan(trace.Span{Kind: spanPhaseRead, TID: string(ctx.tid),
			Parent: ctx.span, Start: ctx.startAt, End: ctx.prepareAt})
	}
	ctx.machine = protocol.NewCoordinator(ctx.tid, ctx.participants)
	ctx.machine.Instrument(s.c.reg)
	if s.paxosPlane() {
		// Open the replicated decision before any prepare goes out, so
		// the registrar reaches the acceptors ahead of the participants'
		// ballot-0 votes (a vote arriving first is dropped and must be
		// repaired by takeover).
		s.paxosBegin(ctx)
	}

	// §3.3 bookkeeping: forwarding a polyvalue to a participant makes
	// that participant a site "to which polyvalues dependent on T have
	// been sent"; record it so outcome news reaches them.
	depTIDs := map[txn.ID]bool{}
	for _, p := range ctx.values {
		for _, dep := range p.DependsOn() {
			depTIDs[dep] = true
		}
	}

	writeOwner := map[protocol.SiteID][]string{}
	for _, item := range ctx.t.WriteSet() {
		owner := s.c.Placement(item)
		writeOwner[owner] = append(writeOwner[owner], item)
	}
	ctx.readOnly = map[protocol.SiteID]bool{}
	for _, site := range ctx.participants {
		items := writeOwner[site]
		sort.Strings(items)
		// Read-only participants (no local writes) compute nothing, so
		// they need no values and receive no forwarded polyvalues.
		roOpt := len(items) == 0 && !s.c.cfg.DisableReadOnlyOpt
		var vals map[string]polyvalue.Poly
		if !roOpt {
			vals = copyValues(ctx.values)
			for dep := range depTIDs {
				if site != s.id {
					_ = s.store.AddDepSite(dep, string(site))
				}
			}
		}
		s.send(protocol.Message{
			Kind: protocol.MsgPrepare, TID: ctx.tid, To: site,
			Items: items, Values: vals,
			Program: ctx.t.Program.String(), Coordinator: s.id,
			Deadline: s.remainingDeadline(ctx),
			TraceCtx: s.traceCtx(ctx),
		})
	}
	ctx.readyTimer = s.after(s.c.cfg.ReadyTimeout, func() { s.onReadyTimeout(ctx.tid) })
}

// onReady collects a participant's ready; the last one decides commit.
func (s *Site) onReady(msg protocol.Message) {
	ctx, ok := s.coords[msg.TID]
	if !ok || ctx.machine == nil {
		return
	}
	if msg.ReadOnly {
		ctx.readOnly[msg.From] = true
	}
	if ctx.machine.OnReady(msg.From) {
		s.decide(ctx, true, "")
	}
}

// onRefuse aborts the transaction on the first refusal.
func (s *Site) onRefuse(msg protocol.Message) {
	s.c.refused.Inc()
	ctx, ok := s.coords[msg.TID]
	if !ok {
		return
	}
	if ctx.machine == nil {
		// Refusal during the read phase (a read lock conflict).
		s.decide(ctx, false, "refused: "+msg.Reason)
		return
	}
	if ctx.machine.OnRefuse(msg.From) {
		s.decide(ctx, false, "refused: "+msg.Reason)
	}
}

// onReadyTimeout aborts a transaction whose readies did not all arrive
// promptly.
func (s *Site) onReadyTimeout(tid txn.ID) {
	ctx, ok := s.coords[tid]
	if !ok || ctx.machine == nil {
		return
	}
	if ctx.machine.OnTimeout() {
		s.decide(ctx, false, "ready timeout")
	}
}

// decide routes a coordinator decision to the configured decision
// plane: the wal plane (and any decision taken before prepares went
// out, when no vote was ever solicited) finalizes directly; the paxos
// plane must first get the decision chosen by the acceptor group.
func (s *Site) decide(ctx *coordCtx, committed bool, reason string) {
	if s.paxosPlane() && ctx.prepared {
		s.paxosDecide(ctx, committed, reason)
		return
	}
	s.finalizeDecision(ctx, committed, reason)
}

// finalizeDecision fixes and durably records the outcome, then
// broadcasts it.
func (s *Site) finalizeDecision(ctx *coordCtx, committed bool, reason string) {
	// Failpoint: the paper's critical moment — every participant is in
	// the wait phase and the decision never leaves this site.
	if committed && s.maybeCrash(CrashBeforeDecision, ctx.tid) {
		return
	}
	// Durable decision before any complete/abort leaves the site: a
	// crash after this point must answer outcome requests consistently.
	// A log failure here is a durability panic inside walWrite: the site
	// is gone before any complete/abort could leave it.
	crashed, _ := s.walWrite(ctx.tid, func() error {
		return s.store.SetOutcome(ctx.tid, committed)
	})
	if crashed {
		return
	}
	// Failpoint: decision durable, nothing announced — participants
	// must pull the outcome from this site's recovered log.
	if committed && s.maybeCrash(CrashAfterDecisionLog, ctx.tid) {
		return
	}
	kind := protocol.MsgAbort
	if committed {
		kind = protocol.MsgComplete
	}
	// Participants covers every site holding an accessed item, including
	// the read sites contacted during the read phase (they hold locks).
	// Track their outcome acknowledgements so the record can be
	// garbage-collected once everyone has settled (§3.3).
	targets := make([]protocol.SiteID, 0, len(ctx.participants))
	for _, site := range ctx.participants {
		if ctx.readOnly != nil && ctx.readOnly[site] {
			continue // left the protocol at ready time
		}
		targets = append(targets, site)
	}
	now := s.c.clk.Now()
	if ctx.prepared {
		s.c.phasePrepare.Observe((now - ctx.prepareAt).Seconds())
		if s.spansOn() {
			s.recordSpan(trace.Span{Kind: spanPhasePrepare, TID: string(ctx.tid),
				Parent: ctx.span, Start: ctx.prepareAt, End: now})
		}
	}
	// Pipelining: the decision is durable, so the client's fate is
	// sealed — resolve the handle BEFORE fanning the outcome out to
	// participants.  The submitter unblocks one WAL write after the last
	// ready instead of also waiting behind N outcome sends; §3.3's
	// acknowledgement collection (and the resend loop below) proceeds
	// concurrently with whatever the client does next.
	st := StatusAborted
	if committed {
		st = StatusCommitted
		s.c.committed.Inc()
	} else {
		s.c.aborted.Inc()
	}
	s.decideHandle(ctx.handle, st, reason)
	s.recordTxnRoot(ctx, st, reason, false)
	if s.c.cfg.OutcomeTTL >= 0 && len(targets) > 0 {
		waiting := make(map[protocol.SiteID]bool, len(targets))
		for _, site := range targets {
			waiting[site] = true
		}
		s.acks[ctx.tid] = waiting
		s.decidedAt[ctx.tid] = now
		if s.spansOn() {
			s.spanOf[ctx.tid] = ctx.span
		}
	}
	for _, site := range targets {
		s.send(protocol.Message{Kind: kind, TID: ctx.tid, To: site, Committed: committed})
	}
	// A dropped complete/abort must not strand participants until their
	// own inquiry loop fires: retransmit to unacked participants with
	// capped exponential backoff.
	s.armDecisionResend(ctx.tid, committed, 1)
	if s.paxosPlane() && ctx.prepared {
		// Teach the acceptor group the outcome so inquiries resolve
		// there and instance state can be garbage-collected, and retire
		// any leader still running for this transaction.
		if pl, ok := s.plead[ctx.tid]; ok {
			s.c.clk.Cancel(pl.timer)
			delete(s.plead, ctx.tid)
		}
		s.paxosAnnounce(ctx.tid, committed)
	}
	s.c.clk.Cancel(ctx.readTimer)
	s.c.clk.Cancel(ctx.readyTimer)
	s.c.clk.Cancel(ctx.deadlineTimer)
	delete(s.coords, ctx.tid)
}

// ---------------------------------------------------------------------
// Participant side
// ---------------------------------------------------------------------

// onReadReq serves (and for updates, locks) the requested items.
func (s *Site) onReadReq(msg protocol.Message) {
	if msg.Lock {
		if !s.lockAll(msg.TID, msg.Items) {
			s.send(protocol.Message{
				Kind: protocol.MsgRefuse, TID: msg.TID, To: msg.From,
				Reason: "lock conflict at " + string(s.id),
			})
			return
		}
		ctx := s.part(msg.TID, msg.Coordinator)
		ctx.locked = mergeItems(ctx.locked, msg.Items)
		if msg.TraceCtx != 0 {
			ctx.spanParent = trace.SpanID(msg.TraceCtx)
		}
		// If the prepare never arrives (coordinator failed before
		// prepare), release unilaterally: without our ready the
		// transaction cannot commit.  A transaction deadline tighter than
		// the lock timeout bounds the hold the same way — past it the
		// coordinator has aborted, so the prepare is never coming.
		lt := vclock.Time(s.c.cfg.LockTimeout)
		if msg.Deadline > 0 && vclock.Time(msg.Deadline) < lt {
			lt = vclock.Time(msg.Deadline)
		}
		ctx.lockTimer = s.after(lt, func() { s.onLockTimeout(msg.TID) })
	}
	values := map[string]polyvalue.Poly{}
	// Under quorum replication every read reply reports each replica's
	// effective version — max(committed, pending) — so the coordinator's
	// freshest-value pick and next-version mint never race a concurrent
	// prepare into the same version number.
	var vers map[string]uint64
	if s.c.cfg.Replication != nil {
		vers = make(map[string]uint64, len(msg.Items))
	}
	for _, item := range msg.Items {
		p := s.store.Get(item)
		values[item] = p
		if vers != nil {
			vers[item] = s.store.EffectiveVersion(item)
		}
		if msg.Lock {
			// §3.3: sending a polyvalue makes the recipient a site that
			// must learn the outcomes it depends on.
			for _, dep := range p.DependsOn() {
				if msg.From != s.id {
					_ = s.store.AddDepSite(dep, string(msg.From))
				}
			}
		}
	}
	s.send(protocol.Message{
		Kind: protocol.MsgReadRep, TID: msg.TID, To: msg.From, Values: values,
		Versions: vers,
	})
}

// onLockTimeout abandons a read-locked transaction that never prepared.
func (s *Site) onLockTimeout(tid txn.ID) {
	ctx, ok := s.parts[tid]
	if !ok || ctx.machine.State() != protocol.StateIdle {
		return
	}
	s.c.trace("%s abandon read locks of %s (no prepare)", s.id, tid)
	s.releaseLocks(tid)
	delete(s.parts, tid)
}

// onReadRelease drops a probed transaction's idle read locks: the
// coordinator assembled its quorum without this site, so waiting out
// the lock timeout would only refuse unrelated transactions.  Any
// state other than idle (prepared, or no record at all — the probe may
// have been lost) makes this a no-op; it never records an outcome.
func (s *Site) onReadRelease(msg protocol.Message) {
	ctx, ok := s.parts[msg.TID]
	if !ok || ctx.machine.State() != protocol.StateIdle {
		return
	}
	s.c.trace("%s release read locks of %s (not in quorum)", s.id, msg.TID)
	s.c.clk.Cancel(ctx.lockTimer)
	s.releaseLocks(msg.TID)
	delete(s.parts, msg.TID)
}

// onPrepare runs the compute phase for the local share of the write set.
func (s *Site) onPrepare(msg protocol.Message) {
	ctx := s.part(msg.TID, msg.Coordinator)
	s.c.clk.Cancel(ctx.lockTimer)
	if ctx.machine.State() != protocol.StateIdle {
		return // duplicate prepare
	}
	if msg.TraceCtx != 0 {
		ctx.spanParent = trace.SpanID(msg.TraceCtx)
	}
	arriveAt := s.c.clk.Now()
	// computeSpan records this participant's compute-phase span.  It must
	// run after the ready is sent but before the after-ready crash point:
	// a committed transaction then always carries the span of every
	// participant whose ready it counted, which is the completeness
	// invariant cmd/polytrace audits.
	computeSpan := func(vote string, attrs ...string) {
		if !s.spansOn() {
			return
		}
		a := map[string]string{"vote": vote}
		for i := 0; i+1 < len(attrs); i += 2 {
			a[attrs[i]] = attrs[i+1]
		}
		s.recordSpan(trace.Span{Kind: spanPartCompute, TID: string(msg.TID),
			Parent: ctx.spanParent, Start: arriveAt, End: s.c.clk.Now(), Attrs: a})
	}
	if msg.Deadline > 0 {
		// Re-anchor the remaining budget against the local clock (wall
		// clocks of separate processes share no epoch).
		ctx.deadline = s.c.clk.Now() + vclock.Time(msg.Deadline)
	}
	if _, err := ctx.machine.Transition(protocol.EvPrepare); err != nil {
		return
	}
	if len(msg.Items) == 0 && !s.c.cfg.DisableReadOnlyOpt {
		// Read-only participant: the reads were served (and held stable)
		// since the read phase; vote ready-read-only, release, and leave
		// the protocol — no wait phase, no decision message needed.
		s.releaseLocks(msg.TID)
		delete(s.parts, msg.TID)
		s.send(protocol.Message{
			Kind: protocol.MsgReady, TID: msg.TID, To: msg.From, ReadOnly: true,
		})
		// A read-only participant still owns a Paxos instance (it is in
		// the registrar): commit stays unchoosable until it votes.
		s.paxosVote(msg, protocol.VotePrepared)
		computeSpan("ready", "readonly", "true")
		return
	}
	refuse := func(reason string) {
		_, _ = ctx.machine.Transition(protocol.EvComputeFailed)
		s.releaseLocks(msg.TID)
		delete(s.parts, msg.TID)
		s.send(protocol.Message{
			Kind: protocol.MsgRefuse, TID: msg.TID, To: msg.From, Reason: reason,
		})
		// The Aborted vote makes the refusal permanent at the acceptors:
		// no takeover can ever drive this transaction to commit, which
		// is what lets the coordinator announce a refuse-abort without
		// waiting for consensus.
		s.paxosVote(msg, protocol.VoteAborted)
		computeSpan("refuse", "reason", reason)
	}
	// Lock the local write items not already read-locked by this txn.
	var needed []string
	for _, item := range msg.Items {
		if s.locks[item] != msg.TID {
			needed = append(needed, item)
		}
	}
	if !s.lockAll(msg.TID, needed) {
		refuse("write lock conflict at " + string(s.id))
		return
	}
	ctx.locked = mergeItems(ctx.locked, needed)

	t, err := txn.New(msg.TID, msg.Program)
	if err != nil {
		refuse("bad program: " + err.Error())
		return
	}
	// Compute all writes from the coordinator's read snapshot, then keep
	// the local share.  Previous values come from the local store (the
	// items are locked, hence stable).
	ex := &polytxn.Executor{MaxAlternatives: s.c.cfg.MaxAlternatives}
	res, err := ex.Execute(t, func(item string) polyvalue.Poly {
		if v, ok := msg.Values[item]; ok {
			return v
		}
		return s.store.Get(item)
	})
	if err != nil {
		refuse("compute: " + err.Error())
		return
	}
	ctx.writes = map[string]polyvalue.Poly{}
	ctx.previous = map[string]polyvalue.Poly{}
	for _, item := range msg.Items {
		ctx.writes[item] = res.Writes[item]
		ctx.previous[item] = s.store.Get(item)
	}
	// Durably remember the in-doubt window before declaring ready, so a
	// crash in the wait phase recovers into polyvalues, not amnesia.
	if len(ctx.writes) > 0 {
		// A log failure is a durability panic inside walWrite: the site
		// dies without sending ready, which the coordinator treats like
		// any other participant crash — it never sees an ack for state
		// the disk doesn't hold.
		crashed, _ := s.walWrite(msg.TID, func() error {
			return s.store.MarkPrepared(storage.Prepared{
				TID: msg.TID, Coordinator: string(msg.Coordinator),
				Writes: ctx.writes, Previous: ctx.previous,
			})
		})
		if crashed {
			return
		}
		// Quorum replication: durably remember the versions this prepare
		// would assign, so concurrent read probes see them as pending
		// (and a recovered site still settles them at outcome time).
		if len(msg.Versions) > 0 {
			_ = s.store.SetVerPending(msg.TID, msg.Versions)
		}
	}
	// Failpoint: prepared record durable, ready unsent — the
	// coordinator times out while this site recovers in doubt.
	if s.maybeCrash(CrashBeforeReady, msg.TID) {
		return
	}
	if _, err := ctx.machine.Transition(protocol.EvComputed); err != nil {
		return
	}
	s.send(protocol.Message{Kind: protocol.MsgReady, TID: msg.TID, To: msg.From})
	// The ballot-0 Prepared vote travels with the ready (before the
	// after-ready failpoint: a participant that died right after its
	// ready still has its vote replicated, so consensus can commit).
	s.paxosVote(msg, protocol.VotePrepared)
	computeSpan("ready", "items", joinItems(msg.Items))
	// Failpoint: ready sent, wait phase entered — and immediately died.
	if s.maybeCrash(CrashAfterReady, msg.TID) {
		return
	}
	ctx.readyAt = s.c.clk.Now()
	// A deadline expiring mid-wait resolves the participant early (per
	// policy) instead of camping on locks for the full wait timeout: the
	// coordinator has already aborted by then.
	wt := vclock.Time(s.c.cfg.WaitTimeout)
	if ctx.deadline > 0 {
		if rem := ctx.deadline - ctx.readyAt; rem < wt {
			if rem < 0 {
				rem = 0
			}
			wt = rem
		}
	}
	ctx.waitTimer = s.after(wt, func() { s.onWaitTimeout(msg.TID) })
}

// onWaitTimeout fires when neither complete nor abort arrived promptly:
// the §3.1 moment that separates the polyvalue mechanism from blocking
// 2PC.
func (s *Site) onWaitTimeout(tid txn.ID) {
	ctx, ok := s.parts[tid]
	if !ok || ctx.machine.State() != protocol.StateWait {
		return
	}
	now := s.c.clk.Now()
	s.c.inDoubt.Inc()
	s.c.phaseWait.Observe((now - ctx.readyAt).Seconds())
	waitStart := ctx.readyAt
	// Zero readyAt so a later outcome delivery (blocking resume, arbitrary
	// self-decision) does not observe this wait a second time.
	ctx.readyAt = 0
	waitSpan := func(resolution string) {
		if !s.spansOn() {
			return
		}
		s.recordSpan(trace.Span{Kind: spanPartWait, TID: string(tid),
			Parent: ctx.spanParent, Start: waitStart, End: now,
			Attrs: map[string]string{"resolution": resolution}})
	}
	if ctx.deadline > 0 && now >= ctx.deadline {
		s.c.deadlinePart.Inc()
		s.c.trace("%s deadline expired in wait phase of %s", s.id, tid)
	}
	// enterBlocked switches the accountant from cause=lock to the given
	// blocking cause: the ordinary hold so far is flushed, and a fresh
	// interval opens attributed to the in-doubt camp.
	enterBlocked := func(cause string) {
		s.flushBlocked(ctx.locked, causeLock, true)
		ctx.blockedAt = now
		ctx.blockCause = cause
	}
	if s.c.cfg.Policy == PolicyBlocking {
		// Baseline: hold everything until the outcome is known.
		ctx.blocked = true
		enterBlocked(causeInDoubt)
		waitSpan("blocked")
		s.c.trace("%s BLOCKED on %s (holding %d locks)", s.id, tid, len(ctx.locked))
		s.armOutcomeRetry(tid, ctx.coordinator)
		return
	}
	if s.c.cfg.Policy == PolicyArbitrary {
		// §2.3 relaxed consistency: decide locally and move on.  Each
		// site guesses independently, so sites can disagree — the
		// atomicity violation the A3 ablation measures.
		guess := arbitraryChoice(s.id, tid)
		waitSpan("arbitrary")
		s.c.trace("%s ARBITRARY decision for %s: commit=%v", s.id, tid, guess)
		s.onOutcomeMsg(tid, guess)
		return
	}
	if s.budget.Enabled() {
		s.updateBudget()
		if s.budget.Degraded() || s.budget.OverPolyWith(s.store.PolyCount()+len(ctx.writes)) {
			// Graceful degradation: the polyvalue/dependency budget is
			// exhausted (or this install would push past it), so fall back
			// to classic blocking 2PC for this transaction — hold the
			// locks, install nothing, and wait for the outcome.  Memory
			// stays bounded at the cost of availability on exactly the
			// items this transaction touches.
			ctx.blocked = true
			s.c.degradedTxns.Inc()
			enterBlocked(causeDegraded)
			waitSpan("blocked-degraded")
			s.c.trace("%s DEGRADED to blocking on %s (budget exhausted, holding %d locks)",
				s.id, tid, len(ctx.locked))
			s.armOutcomeRetry(tid, ctx.coordinator)
			return
		}
	}
	if _, err := ctx.machine.Transition(protocol.EvTimeout); err != nil {
		return
	}
	waitSpan("polyvalue")
	s.c.trace("%s wait timeout on %s: installing polyvalues", s.id, tid)
	// Durably swap the prepared entry for an await entry: a crash from
	// here on must still know to ask ctx.coordinator for the outcome.
	_ = s.store.SetAwait(tid, string(ctx.coordinator))
	s.installPolyvalues(tid, ctx.writes, ctx.previous)
	if s.spansOn() && len(ctx.writes) > 0 {
		items := make([]string, 0, len(ctx.writes))
		for item := range ctx.writes {
			items = append(items, item)
		}
		s.pointSpan(spanPolyInstall, tid, ctx.spanParent,
			map[string]string{"items": joinItems(items)})
	}
	_ = s.store.ClearPrepared(tid)
	s.releaseLocks(tid)
	delete(s.parts, tid)
	s.armOutcomeRetry(tid, ctx.coordinator)
}

// installPolyvalues writes {<new, T>, <old, !T>} for every updated item
// and records the §3.3 dependency-table rows.
func (s *Site) installPolyvalues(tid txn.ID, writes, previous map[string]polyvalue.Poly) {
	items := make([]string, 0, len(writes))
	for item := range writes {
		items = append(items, item)
	}
	sort.Strings(items)
	for _, item := range items {
		p := polyvalue.Uncertain(tid, writes[item], previous[item])
		if err := s.put(item, p); err != nil {
			s.c.trace("%s put %s: %v", s.id, item, err)
			continue
		}
		if _, certain := p.IsCertain(); certain {
			continue // new equals old: no uncertainty introduced
		}
		s.c.polyInstalls.Inc()
		s.c.trace("%s poly-install %s item=%s", s.id, tid, item)
		for _, dep := range p.DependsOn() {
			_ = s.store.AddDepItem(dep, item)
		}
	}
	s.reduceKnownDeps()
	s.updateBudget()
}

// updateBudget re-evaluates the degradation mode against the live
// polyvalue population and dependency-table size, tracing transitions.
// Cheap (two counters and a comparison), so it runs after every install
// and reduction sweep.
func (s *Site) updateBudget() {
	if !s.budget.Enabled() {
		return
	}
	poly, deps := s.store.PolyCount(), s.store.DepCount()
	switch s.budget.Update(poly, deps) {
	case 1:
		s.c.trace("%s budget exhausted (poly=%d deps=%d): degrading to blocking 2PC", s.id, poly, deps)
		s.pointSpan(spanDegrade, "", 0, budgetAttrs(poly, deps))
	case -1:
		s.c.trace("%s budget freed (poly=%d deps=%d): restoring polyvalue mode", s.id, poly, deps)
		s.pointSpan(spanRestore, "", 0, budgetAttrs(poly, deps))
	}
}

// reduceKnownDeps reduces any dependency whose outcome this site already
// knows — outcome news can race ahead of a polyvalue install, and without
// this check such a polyvalue would never be reduced.
func (s *Site) reduceKnownDeps() {
	for _, dep := range s.store.DepTIDs() {
		if committed, known := s.store.Outcome(dep); known {
			s.reduceDependents(dep, committed)
		}
	}
}

// onOutcomeMsg handles a complete message (or an abort via onAbortMsg):
// if we are still a live participant in the wait phase, act on it;
// otherwise fold it into the general outcome-resolution path.
func (s *Site) onOutcomeMsg(tid txn.ID, committed bool) {
	ctx, ok := s.parts[tid]
	if !ok || ctx.machine.State() != protocol.StateWait {
		s.resolveOutcome(tid, committed)
		return
	}
	ev := protocol.EvAbort
	if committed {
		ev = protocol.EvComplete
	}
	act, err := ctx.machine.Transition(ev)
	if err != nil {
		return
	}
	if ctx.readyAt > 0 {
		s.c.phaseWait.Observe((s.c.clk.Now() - ctx.readyAt).Seconds())
		if s.spansOn() {
			resolution := "abort"
			if committed {
				resolution = "commit"
			}
			s.recordSpan(trace.Span{Kind: spanPartWait, TID: string(tid),
				Parent: ctx.spanParent, Start: ctx.readyAt, End: s.c.clk.Now(),
				Attrs: map[string]string{"resolution": resolution}})
		}
	}
	if act == protocol.ActInstall {
		items := make([]string, 0, len(ctx.writes))
		for item := range ctx.writes {
			items = append(items, item)
		}
		sort.Strings(items)
		for _, item := range items {
			p := ctx.writes[item]
			if err := s.put(item, p); err != nil {
				s.c.trace("%s put %s: %v", s.id, item, err)
				continue
			}
			// A polytransaction's committed result may itself be a
			// polyvalue depending on other transactions: track it.
			if _, certain := p.IsCertain(); !certain {
				s.c.polyInstalls.Inc()
				s.c.polyForks.Inc()
				s.c.trace("%s poly-install %s item=%s", s.id, tid, item)
				for _, dep := range p.DependsOn() {
					_ = s.store.AddDepItem(dep, item)
				}
			}
		}
		s.reduceKnownDeps()
	}
	_ = s.store.ClearPrepared(tid)
	_ = s.store.SetOutcome(tid, committed)
	_ = s.store.SettleVersions(tid, committed)
	s.c.clk.Cancel(ctx.waitTimer)
	s.releaseLocks(tid)
	delete(s.parts, tid)
	// The outcome may also reduce older polyvalues we hold.  (The
	// acknowledgement that lets the coordinator forget the record is sent
	// by the message handler — every complete/abort is acked after
	// processing, whatever state the participant was in.)
	s.reduceDependents(tid, committed)
}

// ackOutcome acknowledges a processed complete/abort so the coordinator
// can garbage-collect the outcome record (§3.3).
func (s *Site) ackOutcome(msg protocol.Message) {
	if msg.From == s.id {
		// Self-delivery: strike ourselves from our own ack set directly.
		s.onOutcomeAck(protocol.Message{Kind: protocol.MsgOutcomeAck, TID: msg.TID, From: s.id})
		return
	}
	s.send(protocol.Message{Kind: protocol.MsgOutcomeAck, TID: msg.TID, To: msg.From})
}

// onOutcomeAck collects acknowledgements: it strikes the sender from any
// §3.3 dependency entry (notification delivered), and when the last
// participant acks a transaction this site coordinated, the outcome
// record is scheduled for deletion.
func (s *Site) onOutcomeAck(msg protocol.Message) {
	_ = s.store.RemoveDepSite(msg.TID, string(msg.From))
	if !s.store.HasDeps(msg.TID) {
		if id, ok := s.notifyRetry[msg.TID]; ok {
			s.c.clk.Cancel(id)
			delete(s.notifyRetry, msg.TID)
		}
	}
	waiting, ok := s.acks[msg.TID]
	if !ok {
		return
	}
	delete(waiting, msg.From)
	if len(waiting) > 0 {
		return
	}
	delete(s.acks, msg.TID)
	if id, ok := s.ackRetry[msg.TID]; ok {
		// Everyone has the outcome: stop retransmitting the decision.
		s.c.clk.Cancel(id)
		delete(s.ackRetry, msg.TID)
	}
	tid := msg.TID
	if t, ok := s.decidedAt[tid]; ok {
		s.c.phaseSettle.Observe((s.c.clk.Now() - t).Seconds())
		if root, traced := s.spanOf[tid]; traced {
			s.recordSpan(trace.Span{Kind: spanPhaseSettle, TID: string(tid),
				Parent: root, Start: t, End: s.c.clk.Now()})
			delete(s.spanOf, tid)
		}
		delete(s.decidedAt, tid)
	}
	s.after(s.c.cfg.OutcomeTTL, func() {
		if _, live := s.acks[tid]; live {
			return
		}
		if s.store.HasDeps(tid) {
			return // still notifying dependent sites; keep the record
		}
		s.store.ForgetOutcome(tid)
		s.c.trace("%s forgot outcome of %s", s.id, tid)
	})
}

// onAbortMsg handles abort for live participants and for transactions
// still in their read phase at this site.
func (s *Site) onAbortMsg(msg protocol.Message) {
	tid := msg.TID
	if ctx, ok := s.parts[tid]; ok {
		switch ctx.machine.State() {
		case protocol.StateIdle:
			// Read-locked, never prepared: just release.
			s.c.clk.Cancel(ctx.lockTimer)
			s.releaseLocks(tid)
			delete(s.parts, tid)
			return
		case protocol.StateWait, protocol.StateCompute:
			s.onOutcomeMsg(tid, false)
			return
		}
	}
	s.resolveOutcome(tid, false)
}

// ---------------------------------------------------------------------
// Outcome propagation and recovery (§3.3)
// ---------------------------------------------------------------------

// armOutcomeRetry keeps asking the coordinator for an outcome until it is
// known locally.
func (s *Site) armOutcomeRetry(tid txn.ID, coordinator protocol.SiteID) {
	s.armOutcomeRetryN(tid, coordinator, 1)
}

// armOutcomeRetryN sends inquiry number attempt and schedules the next
// one under the capped-backoff policy.
func (s *Site) armOutcomeRetryN(tid txn.ID, coordinator protocol.SiteID, attempt int) {
	if committed, known := s.store.Outcome(tid); known {
		s.resolveOutcome(tid, committed)
		return
	}
	if s.paxosPlane() {
		// The decision is replicated: presumed abort is unsound (a
		// takeover may still drive the transaction to COMMIT after the
		// coordinator dies), so in-doubt sites inquire of the acceptor
		// group and eventually take the decision over themselves.
		s.paxosInquire(tid, coordinator, attempt)
		return
	}
	if coordinator == "" || coordinator == s.id {
		// We are the coordinator.  With no live context and no durable
		// decision, the transaction cannot have committed (decisions are
		// logged before any complete is sent): presume abort locally.
		if _, live := s.coords[tid]; live {
			return
		}
		if err := s.store.SetOutcome(tid, false); err != nil {
			s.c.trace("%s self presumed-abort log error for %s: %v", s.id, tid, err)
			return
		}
		s.c.trace("%s self presumed abort for %s", s.id, tid)
		s.resolveOutcome(tid, false)
		return
	}
	s.send(protocol.Message{Kind: protocol.MsgOutcomeReq, TID: tid, To: coordinator})
	if attempt > 1 {
		s.c.outcomeRetries.Inc()
	}
	timer := s.after(s.retryBackoff(tid, attempt), func() {
		if _, known := s.store.Outcome(tid); known {
			return
		}
		s.armOutcomeRetryN(tid, coordinator, attempt+1)
	})
	s.retry[tid] = retryState{timer: timer, coordinator: coordinator, attempt: attempt}
}

// armDecisionResend schedules retransmission of a decided outcome to
// every participant that has not acknowledged it yet, paced by the same
// capped-backoff policy as the inquiry loop.  The final ack cancels it
// (onOutcomeAck); until then a dropped complete/abort is repaired from
// the coordinator side instead of waiting out the participants' own
// inquiry timeouts.
func (s *Site) armDecisionResend(tid txn.ID, committed bool, attempt int) {
	waiting, ok := s.acks[tid]
	if !ok || len(waiting) == 0 {
		return
	}
	s.ackRetry[tid] = s.after(s.retryBackoff(tid, attempt), func() {
		delete(s.ackRetry, tid)
		waiting, ok := s.acks[tid]
		if !ok || len(waiting) == 0 {
			return
		}
		kind := protocol.MsgAbort
		if committed {
			kind = protocol.MsgComplete
		}
		targets := make([]protocol.SiteID, 0, len(waiting))
		for site := range waiting {
			targets = append(targets, site)
		}
		sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })
		for _, site := range targets {
			s.c.trace("%s resend %s of %s to %s (attempt %d)", s.id, kind, tid, site, attempt)
			s.send(protocol.Message{Kind: kind, TID: tid, To: site, Committed: committed})
			s.c.decisionResends.Inc()
		}
		s.armDecisionResend(tid, committed, attempt+1)
	})
}

// retryBackoff returns the delay before retry number attempt (1-based):
// capped exponential backoff with ±50% jitter, mirroring the TCP
// reconnect policy.  The jitter is a hash of (site, tid, attempt)
// rather than a PRNG draw, so simulated runs stay deterministic.
func (s *Site) retryBackoff(tid txn.ID, attempt int) vclock.Time {
	d := s.c.cfg.RetryInterval
	limit := s.c.cfg.RetryBackoffMax
	for i := 1; i < attempt && d < limit; i++ {
		d *= 2
	}
	if d > limit {
		d = limit
	}
	h := fnv.New64a()
	h.Write([]byte(s.id))
	h.Write([]byte(tid))
	h.Write([]byte{byte(attempt), byte(attempt >> 8)})
	jitter := 0.5 + float64(h.Sum64()%1024)/1024
	return vclock.Time(float64(d) * jitter)
}

// onOutcomeReq answers from the durable outcome log; an unknown
// transaction with no live coordinator context is presumed aborted (the
// decision to commit is always logged before any complete is sent, so an
// unlogged transaction cannot have committed).
func (s *Site) onOutcomeReq(msg protocol.Message) {
	if committed, known := s.store.Outcome(msg.TID); known {
		s.send(protocol.Message{Kind: protocol.MsgOutcomeInfo, TID: msg.TID, To: msg.From, Committed: committed})
		return
	}
	if _, live := s.coords[msg.TID]; live {
		return // still deciding; the requester will retry
	}
	if s.paxosPlane() {
		// Never presume abort: the authority is the acceptor group.  An
		// acceptor holding undecided instance state answers by driving
		// the decision to consensus itself (the eventual outcome reaches
		// the requester through its inquiry loop or its own takeover).
		if _, leading := s.plead[msg.TID]; leading {
			return
		}
		if e, ok := s.store.PaxosState(msg.TID); ok {
			seed := siteIDs(e.Participants)
			if len(seed) == 0 {
				seed = []protocol.SiteID{msg.From}
			}
			pl := &paxosLead{seed: seed}
			s.plead[msg.TID] = pl
			s.paxosTakeover(msg.TID, pl)
		}
		return
	}
	if err := s.store.SetOutcome(msg.TID, false); err != nil {
		s.c.trace("%s presumed-abort log error for %s: %v", s.id, msg.TID, err)
		return
	}
	s.c.trace("%s presumed abort for %s", s.id, msg.TID)
	s.send(protocol.Message{Kind: protocol.MsgOutcomeInfo, TID: msg.TID, To: msg.From, Committed: false})
}

// resolveOutcome records a learned outcome, settles any blocked or
// recovered participant state, reduces dependent polyvalues, and
// propagates the news to listed sites (§3.3).
func (s *Site) resolveOutcome(tid txn.ID, committed bool) {
	if prev, known := s.store.Outcome(tid); known && prev != committed {
		s.c.trace("%s CONFLICTING outcome for %s: had %v, got %v", s.id, tid, prev, committed)
		return
	}
	_ = s.store.SetOutcome(tid, committed)
	_ = s.store.SettleVersions(tid, committed)
	if s.paxosPlane() {
		// A decided transaction's acceptor state is dead weight however
		// the outcome arrived (announce, complete/abort, inquiry).
		if _, ok := s.store.PaxosState(tid); ok {
			_ = s.store.ClearPaxos(tid)
		}
		if pl, ok := s.plead[tid]; ok {
			s.c.clk.Cancel(pl.timer)
			delete(s.plead, tid)
		}
	}

	// A blocking-policy participant wakes up here.
	if ctx, ok := s.parts[tid]; ok && ctx.blocked {
		ctx.blocked = false
		if s.spansOn() && ctx.blockedAt > 0 {
			outcome := "abort"
			if committed {
				outcome = "commit"
			}
			s.recordSpan(trace.Span{Kind: spanPartBlocked, TID: string(tid),
				Parent: ctx.spanParent, Start: ctx.blockedAt, End: s.c.clk.Now(),
				Attrs: map[string]string{"cause": ctx.blockCause, "outcome": outcome}})
		}
		s.onOutcomeMsg(tid, committed)
		return
	}
	// A prepared entry without a live context (recovered site under the
	// blocking policy, or lost complete): settle it now.
	if prep, ok := s.store.GetPrepared(tid); ok {
		if _, live := s.parts[tid]; !live {
			if committed {
				items := make([]string, 0, len(prep.Writes))
				for item := range prep.Writes {
					items = append(items, item)
				}
				sort.Strings(items)
				for _, item := range items {
					_ = s.put(item, prep.Writes[item])
				}
			}
			_ = s.store.ClearPrepared(tid)
		}
	}
	s.reduceDependents(tid, committed)
}

// reduceDependents applies a known outcome to every dependent local
// polyvalue, informs every site we sent dependent polyvalues to, and
// deletes the dependency entry.
func (s *Site) reduceDependents(tid txn.ID, committed bool) {
	rs, hadRetry := s.retry[tid]
	if hadRetry {
		s.c.clk.Cancel(rs.timer)
		delete(s.retry, tid)
		// We were in doubt and have now settled: acknowledge so the
		// coordinator can forget the outcome record.
		s.send(protocol.Message{Kind: protocol.MsgOutcomeAck, TID: tid, To: rs.coordinator})
	}
	if coord, ok := s.store.Await(tid); ok {
		_ = s.store.ClearAwait(tid)
		// A crash-recovered in-doubt site may have no retry entry; ack
		// from the durable record instead.
		if !hadRetry {
			s.send(protocol.Message{Kind: protocol.MsgOutcomeAck, TID: tid, To: protocol.SiteID(coord)})
		}
	}
	items, sites := s.store.Deps(tid)
	var reducedItems []string
	for _, item := range items {
		p := s.store.Get(item)
		if !p.Mentions(tid) {
			continue // overwritten since
		}
		reduced := p.Resolve(tid, committed)
		if err := s.put(item, reduced); err != nil {
			s.c.trace("%s reduce %s: %v", s.id, item, err)
			continue
		}
		s.c.polyReductions.Inc()
		s.c.trace("%s poly-reduce %s item=%s", s.id, tid, item)
		reducedItems = append(reducedItems, item)
	}
	if s.spansOn() && len(reducedItems) > 0 {
		outcome := "abort"
		if committed {
			outcome = "commit"
		}
		s.pointSpan(spanPolyReduce, tid, 0,
			map[string]string{"items": joinItems(reducedItems), "outcome": outcome})
	}
	for _, site := range sites {
		s.send(protocol.Message{
			Kind: protocol.MsgOutcomeInfo, TID: tid,
			To: protocol.SiteID(site), Committed: committed,
		})
	}
	if len(sites) == 0 {
		if len(items) > 0 {
			_ = s.store.ClearDeps(tid)
		}
	} else {
		// Keep the entry until every listed site acknowledges; resend
		// periodically (targets may be down right now).
		if id, ok := s.notifyRetry[tid]; ok {
			s.c.clk.Cancel(id)
		}
		s.notifyRetry[tid] = s.after(s.c.cfg.RetryInterval, func() {
			delete(s.notifyRetry, tid)
			if s.store.HasDeps(tid) {
				s.reduceDependents(tid, committed)
			}
		})
	}
	// Participant-side outcome GC: once dependencies are cleared and we
	// are not coordinating this transaction's ack collection, the record
	// is only needed for duplicate suppression — forget it after the TTL.
	if ttl := s.c.cfg.OutcomeTTL; ttl >= 0 {
		if _, coordinating := s.acks[tid]; !coordinating {
			s.after(ttl, func() {
				if _, coordinating := s.acks[tid]; coordinating {
					return
				}
				if s.store.HasDeps(tid) {
					return // unacknowledged notifications still pending
				}
				s.store.ForgetOutcome(tid)
			})
		}
	}
	// Reductions free budget: a degraded site returns to polyvalue mode
	// here once the population and dependency table shrink below cap.
	s.updateBudget()
}

// ---------------------------------------------------------------------
// Failure injection
// ---------------------------------------------------------------------

// crash loses all volatile state; the store survives.
func (s *Site) crash() {
	s.down = true
	s.c.fab.SetDown(s.id, true)
	for tid, ctx := range s.parts {
		s.c.clk.Cancel(ctx.waitTimer)
		s.c.clk.Cancel(ctx.lockTimer)
		// Close the blocking accountant's open intervals under the cause
		// each participant was holding for; the locks themselves are
		// volatile and die with the site.
		cause := causeLock
		if ctx.blockCause != "" {
			cause = ctx.blockCause
		}
		var owned []string
		for _, item := range s.lockedBy[tid] {
			if s.locks[item] == tid {
				owned = append(owned, item)
			}
		}
		s.flushBlocked(owned, cause, false)
	}
	// Anything still stamped (e.g. a mid-flight one-phase hold) closes as
	// an ordinary lock interval.
	if len(s.lockAt) > 0 {
		rest := make([]string, 0, len(s.lockAt))
		for item := range s.lockAt {
			rest = append(rest, item)
		}
		sort.Strings(rest)
		s.flushBlocked(rest, causeLock, false)
	}
	for _, ctx := range s.coords {
		s.c.clk.Cancel(ctx.readTimer)
		s.c.clk.Cancel(ctx.readyTimer)
		s.c.clk.Cancel(ctx.deadlineTimer)
		if ctx.isQuery {
			s.completeQuery(ctx.qh, polyvalue.Poly{}, errSiteDown)
		} else {
			// The handle stays pending forever (the client's view of a
			// crashed coordinator), but its admission credit must not: a
			// site that kept crashing would otherwise leak its way to a
			// permanently closed gate.
			ctx.handle.releaseAdmission()
		}
	}
	for _, rs := range s.retry {
		s.c.clk.Cancel(rs.timer)
	}
	for _, pl := range s.plead {
		s.c.clk.Cancel(pl.timer)
	}
	for _, id := range s.pwatch {
		s.c.clk.Cancel(id)
	}
	for _, id := range s.ackRetry {
		s.c.clk.Cancel(id)
	}
	for _, id := range s.notifyRetry {
		s.c.clk.Cancel(id)
	}
	s.c.clk.Cancel(s.aeTimer)
	s.locks = map[string]txn.ID{}
	s.lockedBy = map[txn.ID][]string{}
	s.parts = map[txn.ID]*partCtx{}
	s.coords = map[txn.ID]*coordCtx{}
	s.retry = map[txn.ID]retryState{}
	s.plead = map[txn.ID]*paxosLead{}
	s.pwatch = map[txn.ID]vclock.TimerID{}
	s.ackRetry = map[txn.ID]vclock.TimerID{}
	s.notifyRetry = map[txn.ID]vclock.TimerID{}
	s.acks = map[txn.ID]map[protocol.SiteID]bool{}
	s.decidedAt = map[txn.ID]vclock.Time{}
	s.lockAt = map[string]vclock.Time{}
	s.spanOf = map[txn.ID]trace.SpanID{}
	s.c.trace("%s crashed", s.id)
}

// durabilityPanic is the fsyncgate discipline's teeth: a write or fsync
// against the site's WAL failed, so the page cache may have silently
// dropped records the protocol was about to ack as durable.  The only
// safe move is to crash this incarnation immediately — before any
// Prepared/Committed leaves the site — and mark it unrestartable until
// the node is rebuilt from the on-disk bytes (which hold a prefix of
// what memory believed).  tid may be zero-valued when the failure is
// not tied to one transaction (e.g. a group-commit flush).
func (s *Site) durabilityPanic(tid txn.ID, err error) {
	if s.durLost {
		return
	}
	s.durLost = true
	s.durPanics.Inc()
	if tid != "" {
		s.c.trace("%s DURABILITY PANIC for %s: %v", s.id, tid, err)
	} else {
		s.c.trace("%s DURABILITY PANIC: %v", s.id, err)
	}
	if !s.down {
		s.crash()
	}
}

// restart recovers from the durable store.  Under the polyvalue policy,
// prepared-but-unresolved transactions become polyvalues immediately so
// the site is fully available; under the blocking policy their items are
// re-locked until the outcome is learned.
func (s *Site) restart() {
	if !s.down {
		return
	}
	if s.durLost {
		// The in-memory store may have run ahead of the disk when the
		// log died; restarting it would resurrect unsynced state.  Only
		// a node rebuild (re-reading the on-disk bytes) recovers.
		s.c.trace("%s restart refused: durability lost, rebuild required", s.id)
		return
	}
	s.down = false
	s.c.fab.SetDown(s.id, false)
	s.recoverDurableState()
	if s.c.cfg.Replication != nil && len(s.c.cfg.Sites) > 1 {
		s.armGossip()
	}
}

// recoverDurableState settles whatever the durable store says was in
// flight: prepared entries become polyvalues (or re-locked items, or
// arbitrary guesses, per policy), known outcomes reduce dependents, and
// await entries resume their outcome-request loops.  Called on site
// restart and, for file-backed clusters, at process start.
func (s *Site) recoverDurableState() {
	s.c.trace("%s recovering with %d prepared txns", s.id, len(s.store.PreparedTxns()))
	for _, prep := range s.store.PreparedTxns() {
		coord := protocol.SiteID(prep.Coordinator)
		if s.c.cfg.Policy == PolicyArbitrary {
			guess := arbitraryChoice(s.id, prep.TID)
			s.c.inDoubt.Inc()
			s.c.trace("%s ARBITRARY recovery decision for %s: commit=%v", s.id, prep.TID, guess)
			if guess {
				items := make([]string, 0, len(prep.Writes))
				for item := range prep.Writes {
					items = append(items, item)
				}
				sort.Strings(items)
				for _, item := range items {
					_ = s.put(item, prep.Writes[item])
				}
			}
			_ = s.store.ClearPrepared(prep.TID)
			continue
		}
		if s.c.cfg.Policy == PolicyBlocking {
			s.recoverBlocking(prep, coord, causeInDoubt)
			continue
		}
		if s.budget.Enabled() {
			// The budget gate applies during recovery too: a site that
			// degraded before the crash (or finds its recovered store at
			// the cap) re-locks in-doubt work instead of installing more
			// polyvalues.
			s.updateBudget()
			if s.budget.Degraded() || s.budget.OverPolyWith(s.store.PolyCount()+len(prep.Writes)) {
				s.c.degradedTxns.Inc()
				s.c.trace("%s DEGRADED recovery of %s: re-locking instead of installing", s.id, prep.TID)
				s.recoverBlocking(prep, coord, causeDegraded)
				continue
			}
		}
		s.c.inDoubt.Inc()
		_ = s.store.SetAwait(prep.TID, prep.Coordinator)
		s.installPolyvalues(prep.TID, prep.Writes, prep.Previous)
		if s.spansOn() && len(prep.Writes) > 0 {
			items := make([]string, 0, len(prep.Writes))
			for item := range prep.Writes {
				items = append(items, item)
			}
			s.pointSpan(spanRecover, prep.TID, 0,
				map[string]string{"mode": "polyvalue", "items": joinItems(items)})
		}
		_ = s.store.ClearPrepared(prep.TID)
		s.armOutcomeRetry(prep.TID, coord)
	}
	// Resume outcome propagation for any dependency entries that predate
	// the crash: entries whose outcome we already know are reduced
	// immediately.
	for _, tid := range s.store.DepTIDs() {
		if committed, known := s.store.Outcome(tid); known {
			s.reduceDependents(tid, committed)
		}
	}
	// Resume the outcome-request loop for every transaction we installed
	// polyvalues for and still lack an outcome on (the durable await
	// table survives any number of crashes).
	for tid, coord := range s.store.Awaits() {
		if committed, known := s.store.Outcome(tid); known {
			s.resolveOutcome(tid, committed)
			continue
		}
		s.armOutcomeRetry(tid, protocol.SiteID(coord))
	}
	if s.paxosPlane() {
		s.paxosRecover()
	}
	s.updateBudget()
}

// recoverBlocking settles one recovered in-doubt transaction the
// blocking-2PC way: re-lock its write items and wait for the outcome.
// Used by the blocking policy always (cause=indoubt), and by the
// polyvalue policy when the budget is exhausted (cause=degraded); the
// cause attributes the re-locked items' blocked time.
func (s *Site) recoverBlocking(prep storage.Prepared, coord protocol.SiteID, cause string) {
	ctx := s.part(prep.TID, coord)
	// Walk the machine into the wait state it died in.
	_, _ = ctx.machine.Transition(protocol.EvPrepare)
	_, _ = ctx.machine.Transition(protocol.EvComputed)
	ctx.blocked = true
	ctx.writes = prep.Writes
	ctx.previous = prep.Previous
	items := make([]string, 0, len(prep.Writes))
	for item := range prep.Writes {
		items = append(items, item)
	}
	sort.Strings(items)
	for _, item := range items {
		s.locks[item] = prep.TID
		s.lockedBy[prep.TID] = append(s.lockedBy[prep.TID], item)
		ctx.locked = append(ctx.locked, item)
	}
	s.stampLocks(items)
	ctx.blockedAt = s.c.clk.Now()
	ctx.blockCause = cause
	if s.spansOn() && len(items) > 0 {
		s.pointSpan(spanRecover, prep.TID, 0,
			map[string]string{"mode": "blocking", "cause": cause, "items": joinItems(items)})
	}
	s.c.inDoubt.Inc()
	s.armOutcomeRetry(prep.TID, coord)
}

// ---------------------------------------------------------------------
// Small helpers
// ---------------------------------------------------------------------

// put writes an item through the polyvalue-lifecycle tracker: certainty
// transitions update the population gauge and lifetime histogram.  All
// site-goroutine item writes go through here; Store.Put is only called
// directly where no cluster is attached (package storage's own users).
func (s *Site) put(item string, p polyvalue.Poly) error {
	before := s.store.Get(item)
	if err := s.store.Put(item, p); err != nil {
		return err
	}
	s.c.trackPut(s.id, item, before, p)
	return nil
}

// part finds or creates the participant context.
func (s *Site) part(tid txn.ID, coordinator protocol.SiteID) *partCtx {
	if ctx, ok := s.parts[tid]; ok {
		return ctx
	}
	ctx := &partCtx{
		tid: tid, coordinator: coordinator,
		machine: protocol.NewParticipant(tid, coordinator),
	}
	ctx.machine.Instrument(s.c.reg)
	s.parts[tid] = ctx
	return ctx
}

// lockAll acquires every item or none.
func (s *Site) lockAll(tid txn.ID, items []string) bool {
	for _, item := range items {
		if holder, held := s.locks[item]; held && holder != tid {
			return false
		}
	}
	for _, item := range items {
		s.locks[item] = tid
	}
	if len(items) > 0 {
		s.lockedBy[tid] = append(s.lockedBy[tid], items...)
		s.stampLocks(items)
	}
	return true
}

// releaseLocks frees every lock held by tid, closing the blocking
// accountant's intervals (attributed to the participant's blocking
// cause when it camped in doubt, plain cause=lock otherwise) and
// recording the transaction's lock-hold span.
func (s *Site) releaseLocks(tid txn.ID) {
	held := s.lockedBy[tid]
	owned := held[:0:0]
	for _, item := range held {
		if s.locks[item] == tid {
			owned = append(owned, item)
		}
	}
	cause := causeLock
	var parent trace.SpanID
	if ctx, ok := s.parts[tid]; ok {
		if ctx.blockCause != "" {
			cause = ctx.blockCause
		}
		parent = ctx.spanParent
	}
	if s.spansOn() && len(owned) > 0 {
		now := s.c.clk.Now()
		start := now
		for _, item := range owned {
			if at, ok := s.lockAt[item]; ok && at < start {
				start = at
			}
		}
		s.recordSpan(trace.Span{Kind: spanLocks, TID: string(tid),
			Parent: parent, Start: start, End: now,
			Attrs: map[string]string{"items": joinItems(owned)}})
	}
	s.flushBlocked(owned, cause, false)
	for _, item := range owned {
		delete(s.locks, item)
	}
	delete(s.lockedBy, tid)
}

func mergeItems(a, b []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range a {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	for _, s := range b {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

func copyValues(m map[string]polyvalue.Poly) map[string]polyvalue.Poly {
	out := make(map[string]polyvalue.Poly, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// arbitraryChoice is the §2.3 baseline's local coin flip, made
// deterministic per (site, transaction) so runs are reproducible.
func arbitraryChoice(site protocol.SiteID, tid txn.ID) bool {
	h := fnv.New32a()
	h.Write([]byte(site))
	h.Write([]byte(tid))
	// FNV's low bit is a pure parity chain of the input's low bits, which
	// correlates across nearby site names; a middle bit is well mixed.
	return (h.Sum32()>>16)&1 == 1
}

// sortedSites returns the keys of a per-site fan-out map in sorted
// order, so sends (and the RNG draws behind their delays) happen in
// the same order every run.
func sortedSites(m map[protocol.SiteID][]string) []protocol.SiteID {
	out := make([]protocol.SiteID, 0, len(m))
	for site := range m {
		out = append(out, site)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// exprVars mirrors polytxn's variable collection for query scatter.
func exprVars(n expr.Node, set map[string]bool) {
	switch x := n.(type) {
	case expr.Lit:
	case expr.Ref:
		set[x.Name] = true
	case expr.Unary:
		exprVars(x.X, set)
	case expr.Binary:
		exprVars(x.L, set)
		exprVars(x.R, set)
	case expr.Call:
		for _, a := range x.Args {
			exprVars(a, set)
		}
	}
}
