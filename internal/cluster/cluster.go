package cluster

import (
	"fmt"
	"hash/fnv"
	"path/filepath"

	"repro/internal/expr"
	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/polyvalue"
	"repro/internal/protocol"
	"repro/internal/replica"
	"repro/internal/storage"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/txn"
	"repro/internal/vclock"
)

// Stats aggregates cluster-wide outcome counters.
type Stats struct {
	Committed int64
	Aborted   int64
	// InDoubt counts wait-phase timeouts: transactions converted to
	// polyvalues (polyvalue policy) or blocked (blocking policy).
	InDoubt int64
	// PolyInstalls counts polyvalues written to stores (per item).
	PolyInstalls int64
	// PolyReductions counts polyvalue reductions driven by learned
	// outcomes (per item).
	PolyReductions int64
	// Refused counts participant refusals (lock conflicts, compute
	// errors).
	Refused int64
}

// Cluster wires sites, fabric and clock together.  Two runtimes share
// this type: the deterministic simulation (New: discrete-event scheduler
// plus simulated network) and the wall-clock node (NewNode: real time
// plus a caller-supplied transport, typically TCP).  clk and fab are the
// seams all protocol code schedules and sends through; sched and net are
// the simulation concretions behind them and are nil in node mode.
type Cluster struct {
	cfg Config
	clk vclock.Clock
	fab transport.Transport
	// tracing short-circuits per-message trace calls: with the default
	// Nop tracer, hot paths must not pay the variadic boxing of a whole
	// Message per send/receive just to discard it.
	tracing bool
	// wall is set in node mode only; Close stops it.
	wall  *vclock.Wall
	sched *vclock.Scheduler
	net   *network.Network
	sites map[protocol.SiteID]*Site
	order []protocol.SiteID
	logs  []*storage.FileLog
	glogs []*storage.GroupLog
	ids   *txn.IDGen
	qids  *txn.IDGen

	// reg is the metrics registry every layer reports into; the named
	// fields below cache the hot-path instruments (see metrics.go for the
	// series catalogue).
	reg               *metrics.Registry
	submitted         *metrics.Counter
	committed         *metrics.Counter
	aborted           *metrics.Counter
	inDoubt           *metrics.Counter
	polyInstalls      *metrics.Counter
	polyReductions    *metrics.Counter
	polyForks         *metrics.Counter
	refused           *metrics.Counter
	latency           *metrics.Histogram
	population        *metrics.Gauge
	lifetime          *metrics.Histogram
	phaseRead         *metrics.Histogram
	phasePrepare      *metrics.Histogram
	phaseWait         *metrics.Histogram
	phaseSettle       *metrics.Histogram
	decisionResends   *metrics.Counter
	outcomeRetries    *metrics.Counter
	deadlineCoord     *metrics.Counter
	deadlinePart      *metrics.Counter
	degradedTxns      *metrics.Counter
	paxosVotes        *metrics.Counter
	paxosAccepts      *metrics.Counter
	paxosRejects      *metrics.Counter
	paxosTakeovers    *metrics.Counter
	paxosDecisions    *metrics.Counter
	aeRounds          *metrics.Counter
	aeOutcomesLearned *metrics.Counter
	aeItemsCopied     *metrics.Counter
	// installAt timestamps live polyvalued items for the lifetime
	// histogram; only touched from serialized site events.
	installAt map[lifeKey]vclock.Time
	// residency caches the per-site poly.residency.seconds histograms,
	// filled lazily as sites reduce; only touched from serialized site
	// events.
	residency map[protocol.SiteID]*metrics.Histogram
}

// New builds a cluster; sites start up immediately.
func New(cfg Config) (*Cluster, error) {
	if len(cfg.Sites) == 0 {
		return nil, fmt.Errorf("cluster: no sites configured")
	}
	seen := map[protocol.SiteID]bool{}
	for _, s := range cfg.Sites {
		if seen[s] {
			return nil, fmt.Errorf("cluster: duplicate site %q", s)
		}
		seen[s] = true
	}
	if err := validDecisionPlane(cfg.DecisionPlane); err != nil {
		return nil, err
	}
	if err := validReplication(&cfg); err != nil {
		return nil, err
	}
	if cfg.Replication != nil && cfg.Placement == nil {
		cfg.Placement = replica.Placement(append([]protocol.SiteID{}, cfg.Sites...))
	}
	cfg.fillDefaults()
	c := &Cluster{
		cfg:     cfg,
		tracing: tracingEnabled(cfg.Tracer),
		sched:   vclock.NewScheduler(),
		sites:   map[protocol.SiteID]*Site{},
		order:   append([]protocol.SiteID{}, cfg.Sites...),
		ids:     txn.NewIDGen("t"),
		qids:    txn.NewIDGen("q"),
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	c.initMetrics(reg)
	c.net = network.New(c.sched, cfg.Net)
	c.net.Instrument(reg)
	c.clk = c.sched
	c.fab = transport.NewSim(c.net)
	if cfg.SimBatch != nil {
		p := *cfg.SimBatch
		if p.Metrics == nil {
			p.Metrics = reg
		}
		c.fab = transport.NewBatcher(c.fab, c.sched, p)
	}
	for _, id := range cfg.Sites {
		store := storage.NewStore()
		if cfg.DataDir != "" {
			var log *storage.FileLog
			var err error
			var stats storage.RecoverStats
			store, log, stats, err = storage.OpenFileStoreFS(cfg.DiskFS, filepath.Join(cfg.DataDir, string(id)+".wal"))
			if err != nil {
				return nil, fmt.Errorf("cluster: site %s: %w", id, err)
			}
			if stats.CorruptReads > 0 {
				reg.Counter("storage.corrupt.reads", metrics.L("site", string(id))).Add(int64(stats.CorruptReads))
			}
			c.logs = append(c.logs, log)
			// Polyvalues recovered from a previous process join the
			// population gauge with install time = this cluster's epoch.
			c.seedLifecycle(id, store.PolyItems())
		}
		store.Instrument(reg, string(id))
		s := newSite(c, id, store, nil)
		if len(c.logs) > 0 && cfg.DataDir != "" {
			s.flog = c.logs[len(c.logs)-1]
		}
		c.sites[id] = s
		c.fab.Register(id, s.onMessage)
	}
	// Process-restart semantics for persistent clusters: any site that
	// recovered in-doubt state converts it exactly as a site restart
	// would, as the first scheduled event.
	if cfg.DataDir != "" {
		for _, id := range cfg.Sites {
			site := c.sites[id]
			c.clk.At(0, func() {
				site.do(func() { site.recoverDurableState() })
			})
		}
	}
	return c, nil
}

// Close stops every site goroutine, stops the wall clock and transport
// in node mode (the simulated fabric's Close is a no-op), and flushes/
// closes any file-backed WALs.  In the simulated runtime the cluster
// must be idle (no event currently dispatching).
func (c *Cluster) Close() {
	for _, s := range c.sites {
		s.close()
	}
	if c.wall != nil {
		c.wall.Stop()
	}
	if c.fab != nil {
		if err := c.fab.Close(); err != nil {
			c.trace("close transport: %v", err)
		}
	}
	// Drain group-commit stages before closing the files under them.
	for _, g := range c.glogs {
		if err := g.Close(); err != nil {
			c.trace("close group log: %v", err)
		}
	}
	c.glogs = nil
	for _, log := range c.logs {
		if err := log.Close(); err != nil {
			c.trace("close %s: %v", log.Path(), err)
		}
	}
	c.logs = nil
}

// Placement returns the owning site for an item.
func (c *Cluster) Placement(item string) protocol.SiteID {
	if c.cfg.Placement != nil {
		return c.cfg.Placement(item)
	}
	h := fnv.New32a()
	h.Write([]byte(item))
	return c.order[int(h.Sum32())%len(c.order)]
}

// Now returns the cluster clock's current time (simulated in the
// scheduler runtime, wall-relative in node mode).
func (c *Cluster) Now() vclock.Time { return c.clk.Now() }

// requireSim panics with a clear message when a simulation-only method
// is called in node mode.
func (c *Cluster) requireSim(method string) {
	if c.sched == nil {
		panic("cluster: " + method + " requires the simulated runtime (New); node mode runs on wall time")
	}
}

// RunUntil advances simulated time, executing all events up to t.
func (c *Cluster) RunUntil(t vclock.Time) { c.requireSim("RunUntil"); c.sched.RunUntil(t) }

// RunFor advances simulated time by d.
func (c *Cluster) RunFor(d vclock.Time) {
	c.requireSim("RunFor")
	c.sched.RunUntil(c.sched.Now() + d)
}

// Step executes the next scheduled event; false when idle.
func (c *Cluster) Step() bool { c.requireSim("Step"); return c.sched.Step() }

// Submit starts a transaction with the given site as coordinator.  The
// returned handle resolves as events run (RunUntil / RunFor / Step).
func (c *Cluster) Submit(coord protocol.SiteID, src string) (*Handle, error) {
	p, err := expr.Parse(src)
	if err != nil {
		return nil, err
	}
	return c.SubmitProgram(coord, p)
}

// SubmitProgram is Submit for a pre-parsed program.  Load generators
// parse their transaction mix once up front and call this on the hot
// path, keeping parser cost out of the measured submit loop.
func (c *Cluster) SubmitProgram(coord protocol.SiteID, p expr.Program) (*Handle, error) {
	site, ok := c.sites[coord]
	if !ok {
		return nil, fmt.Errorf("cluster: unknown site %q", coord)
	}
	// Admission control: a site over its in-flight cap sheds the
	// submission up front — nothing enqueued, nothing to clean up — and
	// the caller gets a typed error it can back off on.
	if !site.admission.TryAcquire() {
		return nil, ErrOverload
	}
	t := txn.T{ID: c.ids.Next(), Program: p}
	c.submitted.Inc()
	h := &Handle{
		TID: t.ID, submitted: c.clk.Now(), done: make(chan struct{}),
		release: site.admission.Release,
	}
	c.dispatch(site, t.ID, func() { site.beginTxn(t, h) })
	return h, nil
}

// dispatch hands fn to a site's serialized loop "now".  The simulated
// runtime routes it through the scheduler so it interleaves
// deterministically with every other event; on a wall clock the site
// mailbox is already the serialization point and a zero-delay timer per
// submit would be pure overhead (lock + map churn + an extra goroutine
// on the submit hot path).
func (c *Cluster) dispatch(site *Site, tid txn.ID, fn func()) {
	if c.wall != nil {
		site.doLane(site.laneFor(tid), fn)
		return
	}
	c.clk.At(c.clk.Now(), func() { site.do(fn) })
}

// dispatchShed is dispatch for sheddable work (queries): on a wall
// clock, a full site inbox sheds with ErrOverload instead of blocking
// the caller behind a backlog of protocol traffic.  The simulated
// runtime never sheds — its scheduler serializes everything anyway, and
// determinism must not depend on queue depth.
func (c *Cluster) dispatchShed(site *Site, tid txn.ID, fn func()) error {
	if c.wall != nil {
		if !site.tryDoLane(site.laneFor(tid), fn) {
			site.inboxShed.Inc()
			return ErrOverload
		}
		return nil
	}
	c.clk.At(c.clk.Now(), func() { site.do(fn) })
	return nil
}

// Query starts a read-only query (an expression over items) with the
// given site as coordinator.  The result may be a polyvalue; per §3.4
// the caller chooses whether to present the uncertainty or wait.
func (c *Cluster) Query(coord protocol.SiteID, exprSrc string) (*QueryHandle, error) {
	site, ok := c.sites[coord]
	if !ok {
		return nil, fmt.Errorf("cluster: unknown site %q", coord)
	}
	node, err := expr.ParseExpr(exprSrc)
	if err != nil {
		return nil, err
	}
	qh := newQueryHandle()
	qid := c.qids.Next()
	if err := c.dispatchShed(site, qid, func() { site.beginQuery(qid, node, qh, 0) }); err != nil {
		return nil, err
	}
	return qh, nil
}

// QueryCertain is §3.4's second option: "withhold those outputs until
// the uncertainty is resolved."  The query re-polls while its answer is
// a polyvalue; if it has not become certain within wait (simulated
// time), the handle completes with ErrStillUncertain alongside the
// uncertain answer, letting the caller decide what to do with it.
func (c *Cluster) QueryCertain(coord protocol.SiteID, exprSrc string, wait vclock.Time) (*QueryHandle, error) {
	site, ok := c.sites[coord]
	if !ok {
		return nil, fmt.Errorf("cluster: unknown site %q", coord)
	}
	if wait <= 0 {
		return nil, fmt.Errorf("cluster: QueryCertain needs a positive wait, got %v", wait)
	}
	node, err := expr.ParseExpr(exprSrc)
	if err != nil {
		return nil, err
	}
	qh := newQueryHandle()
	qid := c.qids.Next()
	deadline := c.clk.Now() + wait
	if err := c.dispatchShed(site, qid, func() { site.beginQuery(qid, node, qh, deadline) }); err != nil {
		return nil, err
	}
	return qh, nil
}

// Load installs an initial value directly at the owning site, outside any
// transaction (bootstrap only; uses the store, not the protocol).
func (c *Cluster) Load(item string, p polyvalue.Poly) error {
	site := c.sites[c.Placement(item)]
	if site == nil {
		return fmt.Errorf("cluster: item %q is placed at remote site %s", item, c.Placement(item))
	}
	var err error
	site.do(func() { err = site.put(item, p) })
	return err
}

// LoadReplicated installs p at every locally-run replica of a logical
// item at version 1 (bootstrap only, like Load).  Without replication
// it is plain Load.  In node mode, replicas placed at remote sites are
// skipped — each node loads the replicas it hosts.
func (c *Cluster) LoadReplicated(logical string, p polyvalue.Poly) error {
	rep := c.cfg.Replication
	if rep == nil {
		return c.Load(logical, p)
	}
	if err := replica.CheckName(logical); err != nil {
		return err
	}
	for i := 0; i < rep.K; i++ {
		phys := replica.Name(logical, i)
		site := c.sites[c.Placement(phys)]
		if site == nil {
			continue // node mode: this replica lives at a remote site
		}
		var err error
		site.do(func() {
			if err = site.put(phys, p); err == nil {
				_, _ = site.store.SetVersion(phys, 1)
			}
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// Read returns the current value of an item straight from its owning
// site's store (inspection; not a protocol read).  The store's sharded
// item map is safe for concurrent access, so this does not round-trip
// through the site event loop — a load generator can sample state
// without stealing event-loop cycles from the protocol.
func (c *Cluster) Read(item string) polyvalue.Poly {
	site := c.sites[c.Placement(item)]
	if site == nil {
		return polyvalue.Poly{}
	}
	return site.store.Get(item)
}

// Crash takes a site down: volatile state (locks, in-flight transaction
// contexts, timers) is lost; the WAL-backed store survives.
func (c *Cluster) Crash(id protocol.SiteID) {
	site := c.sites[id]
	site.do(func() { site.crash() })
}

// Restart brings a crashed site back: it recovers from its store, and —
// under the polyvalue policy — converts any prepared-but-unresolved
// transactions to polyvalues so processing can continue immediately.
func (c *Cluster) Restart(id protocol.SiteID) {
	site := c.sites[id]
	site.do(func() { site.restart() })
}

// IsDown reports whether the site is crashed.
func (c *Cluster) IsDown(id protocol.SiteID) bool { return c.fab.IsDown(id) }

// DurabilityLost reports whether the site's current incarnation took a
// durability panic (failed WAL write/fsync).  Such a site refuses
// Restart — only rebuilding the node, which re-reads the on-disk log,
// recovers it.
func (c *Cluster) DurabilityLost(id protocol.SiteID) bool {
	site := c.sites[id]
	if site == nil {
		return false
	}
	var lost bool
	site.do(func() { lost = site.durLost })
	return lost
}

// Partition severs the link between two sites (simulation only).
func (c *Cluster) Partition(a, b protocol.SiteID) { c.requireSim("Partition"); c.net.Partition(a, b) }

// Heal restores the link between two sites (simulation only).
func (c *Cluster) Heal(a, b protocol.SiteID) { c.requireSim("Heal"); c.net.Heal(a, b) }

// HealAll restores all links.  Crashed sites stay crashed until Restart;
// only link cuts are healed here.
func (c *Cluster) HealAll() {
	c.requireSim("HealAll")
	for i, a := range c.order {
		for _, b := range c.order[i+1:] {
			c.net.Heal(a, b)
		}
	}
}

// Sites returns the site IDs in configuration order.
func (c *Cluster) Sites() []protocol.SiteID {
	return append([]protocol.SiteID{}, c.order...)
}

// Store exposes a site's store for inspection and invariant checks.
func (c *Cluster) Store(id protocol.SiteID) *storage.Store { return c.sites[id].store }

// PolyItems returns every item currently holding a polyvalue, across all
// sites, sorted per site order.  Reads the thread-safe stores directly.
func (c *Cluster) PolyItems() []string {
	var out []string
	for _, id := range c.order {
		site := c.sites[id]
		if site == nil {
			continue
		}
		out = append(out, site.store.PolyItems()...)
	}
	return out
}

// SiteInfo is an observability snapshot of one site.
type SiteInfo struct {
	ID protocol.SiteID
	// Down reports the crash state.
	Down bool
	// Items and PolyItems count stored and currently-uncertain items.
	Items, PolyItems int
	// Prepared counts in-doubt transactions not yet settled locally.
	Prepared int
	// Awaits counts outcome-request loops pending against coordinators.
	Awaits int
	// WALBytes is the current log size.
	WALBytes int
	// Locks counts items currently locked by in-flight transactions.
	Locks int
}

// SiteInfo snapshots one site's observable state.
func (c *Cluster) SiteInfo(id protocol.SiteID) (SiteInfo, error) {
	site, ok := c.sites[id]
	if !ok {
		return SiteInfo{}, fmt.Errorf("cluster: unknown site %q", id)
	}
	var info SiteInfo
	site.do(func() {
		info = SiteInfo{
			ID:        id,
			Down:      site.down,
			Items:     len(site.store.Items()),
			PolyItems: len(site.store.PolyItems()),
			Prepared:  len(site.store.PreparedTxns()),
			Awaits:    len(site.store.Awaits()),
			WALBytes:  site.store.WALSize(),
			Locks:     len(site.locks),
		}
	})
	return info, nil
}

// Snapshot copies every item across all sites into one map (inspection
// and debugging; not a consistent cut while transactions are in flight).
// Reads the thread-safe stores directly.
func (c *Cluster) Snapshot() map[string]polyvalue.Poly {
	out := map[string]polyvalue.Poly{}
	for _, id := range c.order {
		site := c.sites[id]
		if site == nil {
			continue
		}
		for _, item := range site.store.Items() {
			out[item] = site.store.Get(item)
		}
	}
	return out
}

// Stats snapshots the cluster counters.
func (c *Cluster) Stats() Stats {
	return Stats{
		Committed:      c.committed.Value(),
		Aborted:        c.aborted.Value(),
		InDoubt:        c.inDoubt.Value(),
		PolyInstalls:   c.polyInstalls.Value(),
		PolyReductions: c.polyReductions.Value(),
		Refused:        c.refused.Value(),
	}
}

// LatencyHistogram exposes the committed-transaction latency
// distribution (simulated seconds).
func (c *Cluster) LatencyHistogram() *metrics.Histogram { return c.latency }

// NetStats exposes the simulated network's counters (zero in node mode;
// use the TCP transport's own Stats there).
func (c *Cluster) NetStats() network.Stats {
	if c.net == nil {
		return network.Stats{}
	}
	return c.net.Stats()
}

// tracingEnabled reports whether t is a real tracer (fillDefaults
// installs trace.Nop when the caller left Tracer nil).
func tracingEnabled(t trace.Tracer) bool {
	_, nop := t.(trace.Nop)
	return !nop
}

func (c *Cluster) trace(format string, args ...any) {
	if !c.tracing {
		return
	}
	c.cfg.Tracer.Event(format, args...)
}
