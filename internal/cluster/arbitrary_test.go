package cluster

import (
	"testing"
	"time"

	"repro/internal/protocol"
	"repro/internal/txn"
)

// runArbitraryTrial crashes the coordinator of a B→C transfer at the
// critical moment under PolicyArbitrary and reports each participant's
// local guess plus what the items ended up holding.
func runArbitraryTrial(t *testing.T) (c *Cluster, tid txn.ID) {
	t.Helper()
	c = newTestCluster(t, PolicyArbitrary)
	loadInt(t, c, "bsrc", 100)
	loadInt(t, c, "cdst", 0)
	c.ArmCrashBeforeDecision("A")
	h, err := c.Submit("A", "bsrc = bsrc - 40; cdst = cdst + 40")
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(2 * time.Second)
	return c, h.TID
}

// TestArbitraryPolicyDecidesLocally: under §2.3 relaxed consistency the
// in-doubt participants decide unilaterally — items stay available and
// hold definite (certain) values, but each site's value reflects its own
// guess, which is exactly where atomicity can break.
func TestArbitraryPolicyDecidesLocally(t *testing.T) {
	c, tid := runArbitraryTrial(t)
	if n := len(c.PolyItems()); n != 0 {
		t.Fatalf("arbitrary policy installed polyvalues: %v", c.PolyItems())
	}
	guessB := arbitraryChoice("B", tid)
	guessC := arbitraryChoice("C", tid)
	wantSrc := int64(100)
	if guessB {
		wantSrc = 60
	}
	wantDst := int64(0)
	if guessC {
		wantDst = 40
	}
	if got := readInt(t, c, "bsrc"); got != wantSrc {
		t.Errorf("bsrc = %d, want %d (guess %v)", got, wantSrc, guessB)
	}
	if got := readInt(t, c, "cdst"); got != wantDst {
		t.Errorf("cdst = %d, want %d (guess %v)", got, wantDst, guessC)
	}
	// Items are immediately available for new transactions.
	h2, _ := c.Submit("B", "bsrc = bsrc - 1")
	c.RunFor(2 * time.Second)
	if h2.Status() != StatusCommitted {
		t.Errorf("follow-up after arbitrary decision: %v", h2.Status())
	}
}

// TestArbitraryPolicyCanViolateAtomicity demonstrates the §2.3 defect
// the polyvalue mechanism exists to avoid: across many transactions,
// independent guesses at two sites disagree for some transaction,
// applying half a transfer.  (Guesses are a deterministic hash, so we
// find a disagreeing TID and assert the violation it implies.)
func TestArbitraryPolicyCanViolateAtomicity(t *testing.T) {
	_, tid := runArbitraryTrial(t)
	// Search the deterministic guess function over the TID space this
	// cluster generates: disagreement must exist and be common.
	agree, disagree := 0, 0
	for i := 0; i < 200; i++ {
		id := txn.ID(string(tid) + string(rune('a'+i%26)) + string(rune('0'+i%10)))
		if arbitraryChoice("B", id) == arbitraryChoice("C", id) {
			agree++
		} else {
			disagree++
		}
	}
	if disagree == 0 {
		t.Fatal("independent guesses never disagree — the baseline would be magically atomic")
	}
	if agree == 0 {
		t.Fatal("guesses always disagree — hash is degenerate")
	}
}

// TestArbitraryRecoveryFromWAL: a participant that crashes while in
// doubt under the arbitrary policy applies its guess at restart.
func TestArbitraryRecoveryFromWAL(t *testing.T) {
	c := newTestCluster(t, PolicyArbitrary)
	loadInt(t, c, "bsrc", 100)
	loadInt(t, c, "adst", 0)
	c.sched.After(31*time.Millisecond, func() { c.Crash("B") })
	h, _ := c.Submit("A", "bsrc = bsrc - 40; adst = adst + 40")
	c.RunFor(time.Second)
	if h.Status() != StatusCommitted {
		t.Fatalf("status = %v", h.Status())
	}
	c.Restart("B")
	c.RunFor(5 * time.Second)
	want := int64(100)
	if arbitraryChoice("B", h.TID) {
		want = 60
	}
	if got := readInt(t, c, "bsrc"); got != want {
		t.Errorf("bsrc = %d, want %d", got, want)
	}
	// The committed-at-A half is definitely applied: if B guessed abort,
	// the transfer was torn (momentarily real in this baseline).
	if got := readInt(t, c, "adst"); got != 40 {
		t.Errorf("adst = %d", got)
	}
}

func TestArbitraryPolicyString(t *testing.T) {
	if PolicyArbitrary.String() != "arbitrary" {
		t.Errorf("String = %q", PolicyArbitrary.String())
	}
}

// TestArbitraryChoiceDeterministic pins the reproducibility contract.
func TestArbitraryChoiceDeterministic(t *testing.T) {
	for _, site := range []protocol.SiteID{"A", "B"} {
		if arbitraryChoice(site, "T1") != arbitraryChoice(site, "T1") {
			t.Fatal("choice not deterministic")
		}
	}
}
