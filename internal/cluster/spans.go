package cluster

// Structured span recording (the observability plane's causal view) and
// the per-item blocking accountant (its quantitative view).
//
// Span recording is pay-for-what-you-use: every hook checks Config.Spans
// for nil first, and the trace context rides protocol messages only when
// a span log is installed, so an untraced cluster emits byte-identical
// wire traffic and touches no extra state.
//
// The blocking accountant measures the paper's availability claim
// directly: for every locked item it accumulates how long the item was
// unreadable and why —
//
//	cause=lock      ordinary protocol lock holds (read→prepare→decision)
//	cause=indoubt   a blocking-policy participant camping on its locks
//	                past the wait timeout
//	cause=degraded  a budget-exhausted polyvalue participant doing the
//	                same
//
// item.blocked.seconds{site,cause}'s _sum is the blocked-item-seconds
// quantity ROADMAP item 4 compares across policies.  Timestamps come
// from the cluster's vclock, so simulated runs account deterministically.

import (
	"sort"
	"strconv"
	"strings"

	"repro/internal/metrics"
	"repro/internal/protocol"
	"repro/internal/trace"
	"repro/internal/txn"
)

// Span kinds recorded by the cluster runtime.
const (
	spanPhaseRead    = "phase.read"    // coordinator: submit → all reads collected
	spanPhasePrepare = "phase.prepare" // coordinator: prepares out → decision
	spanPhaseSettle  = "phase.settle"  // coordinator: decision → last outcome ack
	spanPartCompute  = "part.compute"  // participant: prepare arrival → vote
	spanPartWait     = "part.wait"     // participant: ready → outcome or timeout
	spanPartBlocked  = "part.blocked"  // participant: camping on locks in doubt
	spanPolyInstall  = "poly.install"  // participant: polyvalues installed
	spanPolyReduce   = "poly.reduce"   // any site: dependent polyvalues reduced
	spanLocks        = "locks"         // any site: first lock acquire → release
	spanRecover      = "recover"       // restarted site settling durable state
	spanDegrade      = "budget.degrade"
	spanRestore      = "budget.restore"
	// PlanePaxos decision-plane events.
	spanPaxosVote     = "paxos.vote"     // participant: ballot-0 vote cast
	spanPaxosAccept   = "paxos.accept"   // acceptor: durable accept logged
	spanPaxosTakeover = "paxos.takeover" // leader: takeover round started
)

// spansOn reports whether structured span tracing is enabled.
func (s *Site) spansOn() bool { return s.c.cfg.Spans != nil }

// recordSpan stamps the site name and records sp.  No-op when tracing is
// off.
func (s *Site) recordSpan(sp trace.Span) trace.SpanID {
	if s.c.cfg.Spans == nil {
		return 0
	}
	sp.Site = string(s.id)
	return s.c.cfg.Spans.Record(sp)
}

// pointSpan records an instantaneous event at the current clock reading.
func (s *Site) pointSpan(kind string, tid txn.ID, parent trace.SpanID, attrs map[string]string) {
	if s.c.cfg.Spans == nil {
		return
	}
	now := s.c.clk.Now()
	s.recordSpan(trace.Span{Kind: kind, TID: string(tid), Parent: parent, Start: now, End: now, Attrs: attrs})
}

// recordTxnRoot records the coordinator's root span for a decided
// transaction.  Its participants attribute is the completeness
// contract: cmd/polytrace and the harness audits flag any listed site
// that contributed no spans.
func (s *Site) recordTxnRoot(ctx *coordCtx, st Status, reason string, onePhase bool) {
	if s.c.cfg.Spans == nil || ctx.span == 0 {
		return
	}
	attrs := map[string]string{
		"status":       st.String(),
		"participants": joinSites(ctx.participants),
	}
	if reason != "" {
		attrs["reason"] = reason
	}
	if onePhase {
		attrs["onephase"] = "true"
	}
	if s.paxosPlane() && ctx.prepared {
		// The quorum attribute is the completeness contract for the
		// paxos plane: auditors require at least this many distinct
		// sites to have contributed paxos.accept spans.
		attrs["plane"] = string(PlanePaxos)
		attrs["quorum"] = strconv.Itoa(s.paxosQuorum())
	}
	s.recordSpan(trace.Span{
		ID: ctx.span, Kind: trace.RootKind, TID: string(ctx.tid),
		Start: ctx.startAt, End: s.c.clk.Now(), Attrs: attrs,
	})
}

// traceCtx returns the trace context to stamp on an outgoing protocol
// message: the root span ID when tracing is on, zero (field absent on
// the wire) otherwise.
func (s *Site) traceCtx(ctx *coordCtx) uint64 {
	if s.c.cfg.Spans == nil {
		return 0
	}
	return uint64(ctx.span)
}

func joinSites(sites []protocol.SiteID) string {
	out := make([]string, len(sites))
	for i, site := range sites {
		out[i] = string(site)
	}
	return strings.Join(out, ",")
}

// budgetAttrs describes the guard state behind a degrade/restore span.
func budgetAttrs(poly, deps int) map[string]string {
	return map[string]string{"poly": strconv.Itoa(poly), "deps": strconv.Itoa(deps)}
}

func joinItems(items []string) string {
	sorted := append([]string(nil), items...)
	sort.Strings(sorted)
	return strings.Join(sorted, ",")
}

// ---------------------------------------------------------------------
// Blocking accountant
// ---------------------------------------------------------------------

// stampLocks starts the blocked clock for newly-acquired items.
func (s *Site) stampLocks(items []string) {
	now := s.c.clk.Now()
	for _, item := range items {
		s.lockAt[item] = now
	}
}

// blockedHist returns the cached histogram for a cause.
func (s *Site) blockedHist(cause string) *metrics.Histogram {
	switch cause {
	case causeInDoubt:
		return s.blockedIndoubt
	case causeDegraded:
		return s.blockedDegraded
	default:
		return s.blockedLock
	}
}

// flushBlocked closes the current accounting interval of each item under
// the given cause and — when restamp is set — immediately opens a new
// one, so a participant entering its in-doubt camp converts "ordinary
// lock hold so far" into a fresh interval attributed to the blocking
// cause.
func (s *Site) flushBlocked(items []string, cause string, restamp bool) {
	if len(items) == 0 {
		return
	}
	now := s.c.clk.Now()
	h := s.blockedHist(cause)
	for _, item := range items {
		at, ok := s.lockAt[item]
		if !ok {
			continue
		}
		h.Observe((now - at).Seconds())
		if restamp {
			s.lockAt[item] = now
		} else {
			delete(s.lockAt, item)
		}
	}
}

// Blocking causes (the item.blocked.seconds cause label values).
const (
	causeLock     = "lock"
	causeInDoubt  = "indoubt"
	causeDegraded = "degraded"
)

// SyncBlockedAccounting folds every still-open lock interval on every
// site into the item.blocked.seconds histograms up to the current clock
// reading, restamping so later flushes continue from now.  Intervals
// normally close at lock release; a participant still camping in doubt
// when a run ends would otherwise contribute nothing, so harnesses call
// this before reading the accountant.  The histogram _sum stays exact
// across any number of syncs (each observes only the un-accounted
// remainder); the _count inflates by one observation per open item per
// call.
func (c *Cluster) SyncBlockedAccounting() {
	for _, id := range c.order {
		s := c.sites[id]
		if s == nil {
			continue // node mode: remote sites are other processes
		}
		s.do(s.syncBlocked)
	}
}

// syncBlocked is SyncBlockedAccounting's per-site half; runs on the
// site goroutine.
func (s *Site) syncBlocked() {
	if len(s.lockAt) == 0 {
		return
	}
	byCause := map[string][]string{}
	for tid, items := range s.lockedBy {
		cause := causeLock
		if ctx, ok := s.parts[tid]; ok && ctx.blockCause != "" {
			cause = ctx.blockCause
		}
		for _, item := range items {
			if s.locks[item] == tid {
				byCause[cause] = append(byCause[cause], item)
			}
		}
	}
	for _, cause := range []string{causeLock, causeInDoubt, causeDegraded} {
		items := byCause[cause]
		sort.Strings(items)
		s.flushBlocked(items, cause, true)
	}
}
