package cluster

import (
	"testing"
	"time"

	"repro/internal/value"
)

func TestSiteInfo(t *testing.T) {
	c := newTestCluster(t, PolicyPolyvalue)
	loadInt(t, c, "bx", 1)
	loadInt(t, c, "by", 2)
	info, err := c.SiteInfo("B")
	if err != nil {
		t.Fatal(err)
	}
	if info.ID != "B" || info.Down || info.Items != 2 || info.PolyItems != 0 {
		t.Errorf("info = %+v", info)
	}
	if info.WALBytes == 0 {
		t.Error("WALBytes = 0 after loads")
	}
	if _, err := c.SiteInfo("nope"); err == nil {
		t.Error("unknown site accepted")
	}
	// In-doubt state shows up.
	c.ArmCrashBeforeDecision("A")
	_, _ = c.Submit("A", "bx = 9")
	c.RunFor(2 * time.Second)
	info, _ = c.SiteInfo("B")
	if info.PolyItems != 1 || info.Awaits != 1 {
		t.Errorf("in-doubt info = %+v", info)
	}
	infoA, _ := c.SiteInfo("A")
	if !infoA.Down {
		t.Error("crashed site not reported down")
	}
}

func TestSnapshot(t *testing.T) {
	c := newTestCluster(t, PolicyPolyvalue)
	loadInt(t, c, "ax", 1)
	loadInt(t, c, "by", 2)
	loadInt(t, c, "cz", 3)
	snap := c.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot = %v", snap)
	}
	for item, want := range map[string]int64{"ax": 1, "by": 2, "cz": 3} {
		v, ok := snap[item].IsCertain()
		if !ok {
			t.Fatalf("%s uncertain", item)
		}
		n, ok := value.AsInt(v)
		if !ok || n != want {
			t.Errorf("%s = %d (ok=%v)", item, n, ok)
		}
	}
}
