package cluster

import (
	"testing"
	"time"

	"repro/internal/network"
	"repro/internal/polyvalue"
	"repro/internal/protocol"
	"repro/internal/trace"
	"repro/internal/value"
)

// tracedCluster builds a 3-site cluster with an attached trace ring.
func tracedCluster(t *testing.T) (*Cluster, *trace.Ring) {
	t.Helper()
	ring := trace.NewRing(10000)
	c, err := New(Config{
		Sites:  []protocol.SiteID{"A", "B", "C"},
		Net:    network.Config{Latency: 10 * time.Millisecond},
		Tracer: ring,
		Placement: func(item string) protocol.SiteID {
			switch item[0] {
			case 'a':
				return "A"
			case 'b':
				return "B"
			default:
				return "C"
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c, ring
}

// TestTraceShowsFigure1CommitPath: the protocol trace for a clean commit
// contains the Figure 1 message sequence in order: read-req → read-rep →
// prepare → ready → complete.
func TestTraceShowsFigure1CommitPath(t *testing.T) {
	c, ring := tracedCluster(t)
	if err := c.Load("bx", polyvalue.Simple(value.Int(1))); err != nil {
		t.Fatal(err)
	}
	h, _ := c.Submit("A", "bx = bx + 1")
	c.RunFor(time.Second)
	if h.Status() != StatusCommitted {
		t.Fatal("setup failed")
	}
	for _, step := range []string{
		"A send read-req A->B",
		"B send read-rep B->A",
		"A send prepare A->B",
		"B send ready B->A",
		"A send complete A->B",
	} {
		if !ring.Contains(step) {
			t.Errorf("trace missing %q\n%s", step, ring.String())
		}
	}
}

// TestTraceShowsPolyvalueInstallOnTimeout: the wait-timeout path appears
// in the trace exactly as Figure 1's timeout edge prescribes.
func TestTraceShowsPolyvalueInstallOnTimeout(t *testing.T) {
	c, ring := tracedCluster(t)
	if err := c.Load("bx", polyvalue.Simple(value.Int(1))); err != nil {
		t.Fatal(err)
	}
	c.ArmCrashBeforeDecision("A")
	_, _ = c.Submit("A", "bx = bx + 1")
	c.RunFor(2 * time.Second)
	if !ring.Contains("CRASH at before-decision") {
		t.Error("failpoint crash not traced")
	}
	if !ring.Contains("wait timeout") || !ring.Contains("installing polyvalues") {
		t.Errorf("timeout path not traced:\n%s", ring.String())
	}
	// Recovery path: presumed abort and reduction.
	c.Restart("A")
	c.RunFor(10 * time.Second)
	if !ring.Contains("presumed abort") {
		t.Error("presumed abort not traced")
	}
}
