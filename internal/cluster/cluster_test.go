package cluster

import (
	"testing"
	"time"

	"repro/internal/condition"
	"repro/internal/network"
	"repro/internal/polyvalue"
	"repro/internal/protocol"
	"repro/internal/value"
)

// newTestCluster builds a 3-site cluster with explicit item placement:
// items prefixed a*/b*/c* live on sites A/B/C.
func newTestCluster(t *testing.T, policy Policy) *Cluster {
	t.Helper()
	c, err := New(Config{
		Sites:  []protocol.SiteID{"A", "B", "C"},
		Net:    network.Config{Latency: 10 * time.Millisecond},
		Policy: policy,
		Placement: func(item string) protocol.SiteID {
			switch item[0] {
			case 'a':
				return "A"
			case 'b':
				return "B"
			default:
				return "C"
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func loadInt(t *testing.T, c *Cluster, item string, v int64) {
	t.Helper()
	if err := c.Load(item, polyvalue.Simple(value.Int(v))); err != nil {
		t.Fatal(err)
	}
}

func readInt(t *testing.T, c *Cluster, item string) int64 {
	t.Helper()
	v, ok := c.Read(item).IsCertain()
	if !ok {
		t.Fatalf("item %s uncertain: %v", item, c.Read(item))
	}
	n, ok := value.AsInt(v)
	if !ok {
		t.Fatalf("item %s not int: %v", item, v)
	}
	return n
}

func TestCommitDistributedTransfer(t *testing.T) {
	c := newTestCluster(t, PolicyPolyvalue)
	loadInt(t, c, "acct1", 100)
	loadInt(t, c, "bacct2", 0)
	h, err := c.Submit("A", "acct1 = acct1 - 30; bacct2 = bacct2 + 30")
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(2 * time.Second)
	if h.Status() != StatusCommitted {
		t.Fatalf("status = %v (%s)", h.Status(), h.Reason())
	}
	if got := readInt(t, c, "acct1"); got != 70 {
		t.Errorf("acct1 = %d", got)
	}
	if got := readInt(t, c, "bacct2"); got != 30 {
		t.Errorf("bacct2 = %d", got)
	}
	if n := len(c.PolyItems()); n != 0 {
		t.Errorf("poly items after clean commit: %d", n)
	}
	if lat, ok := h.Latency(); !ok || lat <= 0 {
		t.Errorf("latency = %v,%v", lat, ok)
	}
	st := c.Stats()
	if st.Committed != 1 || st.Aborted != 0 || st.InDoubt != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLocalTransactionOnCoordinator(t *testing.T) {
	c := newTestCluster(t, PolicyPolyvalue)
	loadInt(t, c, "ax", 5)
	h, _ := c.Submit("A", "ax = ax * 2")
	c.RunFor(time.Second)
	if h.Status() != StatusCommitted {
		t.Fatalf("status = %v (%s)", h.Status(), h.Reason())
	}
	if got := readInt(t, c, "ax"); got != 10 {
		t.Errorf("ax = %d", got)
	}
}

func TestGuardedTransactionAbortsNothing(t *testing.T) {
	// Guard fails: commit happens but writes nothing.
	c := newTestCluster(t, PolicyPolyvalue)
	loadInt(t, c, "abal", 10)
	h, _ := c.Submit("B", "abal = abal - 50 if abal >= 50")
	c.RunFor(time.Second)
	if h.Status() != StatusCommitted {
		t.Fatalf("status = %v (%s)", h.Status(), h.Reason())
	}
	if got := readInt(t, c, "abal"); got != 10 {
		t.Errorf("abal = %d", got)
	}
}

func TestComputeErrorAborts(t *testing.T) {
	c := newTestCluster(t, PolicyPolyvalue)
	if err := c.Load("astr", polyvalue.Simple(value.Str("x"))); err != nil {
		t.Fatal(err)
	}
	h, _ := c.Submit("A", "astr = astr * 2")
	c.RunFor(time.Second)
	if h.Status() != StatusAborted {
		t.Fatalf("status = %v", h.Status())
	}
	if h.Reason() == "" {
		t.Error("abort reason empty")
	}
}

func TestLockConflictAbortsOne(t *testing.T) {
	c := newTestCluster(t, PolicyPolyvalue)
	loadInt(t, c, "ax", 100)
	h1, _ := c.Submit("B", "ax = ax - 10")
	h2, _ := c.Submit("C", "ax = ax - 10")
	c.RunFor(2 * time.Second)
	s1, s2 := h1.Status(), h2.Status()
	committed := 0
	if s1 == StatusCommitted {
		committed++
	}
	if s2 == StatusCommitted {
		committed++
	}
	if committed != 1 {
		t.Fatalf("statuses = %v, %v — exactly one should commit under no-wait locking", s1, s2)
	}
	if got := readInt(t, c, "ax"); got != 90 {
		t.Errorf("ax = %d, want 90 (one transfer applied)", got)
	}
}

func TestSequentialTransactionsBothCommit(t *testing.T) {
	c := newTestCluster(t, PolicyPolyvalue)
	loadInt(t, c, "ax", 100)
	h1, _ := c.Submit("B", "ax = ax - 10")
	c.RunFor(time.Second)
	h2, _ := c.Submit("C", "ax = ax - 10")
	c.RunFor(time.Second)
	if h1.Status() != StatusCommitted || h2.Status() != StatusCommitted {
		t.Fatalf("statuses = %v, %v", h1.Status(), h2.Status())
	}
	if got := readInt(t, c, "ax"); got != 80 {
		t.Errorf("ax = %d", got)
	}
}

// TestCoordinatorCrashInstallsPolyvalues is the paper's headline
// scenario: the coordinator fails at the critical moment (all readies
// collected, decision not yet sent).  Participants time out in the wait
// phase, install {<new, T>, <old, !T>}, and keep processing.
func TestCoordinatorCrashInstallsPolyvalues(t *testing.T) {
	c := newTestCluster(t, PolicyPolyvalue)
	loadInt(t, c, "bsrc", 100)
	loadInt(t, c, "cdst", 0)
	c.ArmCrashBeforeDecision("A")
	h, _ := c.Submit("A", "bsrc = bsrc - 40; cdst = cdst + 40")
	c.RunFor(2 * time.Second)

	if h.Status() != StatusPending {
		t.Fatalf("handle status = %v — the client never hears a decision", h.Status())
	}
	if !c.IsDown("A") {
		t.Fatal("failpoint did not crash the coordinator")
	}
	polys := c.PolyItems()
	if len(polys) != 2 {
		t.Fatalf("poly items = %v, want [bsrc cdst]", polys)
	}
	// Each polyvalue carries both possible values.
	src := c.Read("bsrc")
	min, max, ok := src.MinMax()
	if !ok || min != 60 || max != 100 {
		t.Errorf("bsrc = %v (min %g max %g)", src, min, max)
	}
	// The items are AVAILABLE: a new transaction on bsrc commits even
	// though A is still down (B coordinates, only B/C involved... bsrc is
	// on B).  This is the whole point of the mechanism.
	h2, _ := c.Submit("B", "bsrc = bsrc - 10")
	c.RunFor(2 * time.Second)
	if h2.Status() != StatusCommitted {
		t.Fatalf("follow-up on polyvalued item: %v (%s)", h2.Status(), h2.Reason())
	}
	src = c.Read("bsrc")
	min, max, ok = src.MinMax()
	if !ok || min != 50 || max != 90 {
		t.Errorf("bsrc after polytransaction = %v", src)
	}

	// Recovery: restart A.  The in-doubt participants keep asking A for
	// the outcome; A has no durable record of the transaction, so it
	// presumes abort, and every polyvalue reduces to the no-transfer
	// branch.
	c.Restart("A")
	// The inquiry loop backs off up to RetryBackoffMax (8x the retry
	// interval, with jitter), so give recovery a couple of full backoff
	// periods to drain.
	c.RunFor(15 * time.Second)
	if len(c.PolyItems()) != 0 {
		t.Fatalf("polyvalues survived recovery: %v", c.PolyItems())
	}
	if got := readInt(t, c, "bsrc"); got != 90 {
		t.Errorf("bsrc after recovery = %d, want 90 (100 aborted-transfer, -10 committed)", got)
	}
	if got := readInt(t, c, "cdst"); got != 0 {
		t.Errorf("cdst after recovery = %d, want 0", got)
	}
	if st := c.Stats(); st.PolyReductions == 0 {
		t.Error("no polyvalue reductions counted")
	}
}

// TestPartitionAfterDecisionResolvesToCommit: the coordinator decides
// commit and logs it durably, but the complete messages are lost to a
// partition.  Participants install polyvalues; when the partition heals
// their outcome requests return "committed" and the polyvalues reduce to
// the new values.
func TestPartitionAfterDecisionResolvesToCommit(t *testing.T) {
	c := newTestCluster(t, PolicyPolyvalue)
	loadInt(t, c, "bsrc", 100)
	loadInt(t, c, "cdst", 0)
	// Timeline with L=10ms: reads done at 20ms, prepares arrive 30ms,
	// readies arrive 40ms (decision!), completes would arrive 50ms.
	// Cut both links at 45ms: decision logged, completes in flight are
	// dropped at delivery.
	c.sched.After(45*time.Millisecond, func() {
		c.Partition("A", "B")
		c.Partition("A", "C")
	})
	h, _ := c.Submit("A", "bsrc = bsrc - 40; cdst = cdst + 40")
	c.RunFor(time.Second)

	if h.Status() != StatusCommitted {
		t.Fatalf("coordinator decided %v", h.Status())
	}
	if len(c.PolyItems()) != 2 {
		t.Fatalf("participants should be in doubt: polys = %v", c.PolyItems())
	}
	// Heal; retries fetch the outcome; polyvalues reduce to committed
	// values.
	c.HealAll()
	c.RunFor(5 * time.Second)
	if len(c.PolyItems()) != 0 {
		t.Fatalf("polyvalues survived heal: %v", c.PolyItems())
	}
	if got := readInt(t, c, "bsrc"); got != 60 {
		t.Errorf("bsrc = %d, want 60", got)
	}
	if got := readInt(t, c, "cdst"); got != 40 {
		t.Errorf("cdst = %d, want 40", got)
	}
}

// TestPolytransactionPropagatesAndReduces: a transaction reads a
// polyvalued item and writes a polyvalued result to a different site;
// outcome news must travel the §3.3 dependency chain and reduce both.
func TestPolytransactionPropagatesAndReduces(t *testing.T) {
	c := newTestCluster(t, PolicyPolyvalue)
	loadInt(t, c, "bsrc", 100)
	loadInt(t, c, "cdst", 0)
	c.ArmCrashBeforeDecision("A")
	_, _ = c.Submit("A", "bsrc = bsrc - 40")
	c.RunFor(time.Second)
	if len(c.PolyItems()) != 1 {
		t.Fatalf("setup: polys = %v", c.PolyItems())
	}
	// Polytransaction: copy uncertainty from bsrc (site B) to cdst
	// (site C), coordinated by C.
	h, _ := c.Submit("C", "cdst = bsrc * 2")
	c.RunFor(time.Second)
	if h.Status() != StatusCommitted {
		t.Fatalf("polytransaction: %v (%s)", h.Status(), h.Reason())
	}
	dst := c.Read("cdst")
	if _, certain := dst.IsCertain(); certain {
		t.Fatalf("cdst should be uncertain: %v", dst)
	}
	min, max, _ := dst.MinMax()
	if min != 120 || max != 200 {
		t.Errorf("cdst = %v (min %g max %g)", dst, min, max)
	}
	// Resolve: restart A → presumed abort → bsrc=100 and cdst=200.
	c.Restart("A")
	c.RunFor(10 * time.Second)
	if polys := c.PolyItems(); len(polys) != 0 {
		t.Fatalf("unreduced polyvalues: %v", polys)
	}
	if got := readInt(t, c, "bsrc"); got != 100 {
		t.Errorf("bsrc = %d", got)
	}
	if got := readInt(t, c, "cdst"); got != 200 {
		t.Errorf("cdst = %d", got)
	}
	// Dependency tables must be empty everywhere (§3.3: "the data
	// structures used in the mechanism are also quickly removed").
	for _, id := range c.Sites() {
		if tids := c.Store(id).DepTIDs(); len(tids) != 0 {
			t.Errorf("site %s retains dependency entries %v", id, tids)
		}
	}
}

// TestCertainOutputFromUncertainInput: §5's credit-authorization shape —
// the polytransaction's output does not depend on which branch is real,
// so it writes a SIMPLE value and propagates no uncertainty.
func TestCertainOutputFromUncertainInput(t *testing.T) {
	c := newTestCluster(t, PolicyPolyvalue)
	loadInt(t, c, "bbal", 500)
	c.ArmCrashBeforeDecision("A")
	_, _ = c.Submit("A", "bbal = bbal - 40")
	c.RunFor(time.Second)
	if len(c.PolyItems()) != 1 {
		t.Fatalf("setup: polys = %v", c.PolyItems())
	}
	h, _ := c.Submit("C", "cok = bbal >= 100")
	c.RunFor(time.Second)
	if h.Status() != StatusCommitted {
		t.Fatalf("authorization txn: %v (%s)", h.Status(), h.Reason())
	}
	ok, certain := c.Read("cok").IsCertain()
	if !certain {
		t.Fatalf("authorization should be certain: %v", c.Read("cok"))
	}
	if !ok.Equal(value.Bool(true)) {
		t.Errorf("cok = %v", ok)
	}
}

func TestQueryUncertainOutput(t *testing.T) {
	c := newTestCluster(t, PolicyPolyvalue)
	loadInt(t, c, "bseats", 12)
	c.ArmCrashBeforeDecision("A")
	_, _ = c.Submit("A", "bseats = bseats + 1")
	c.RunFor(time.Second)

	qh, err := c.Query("C", "150 - bseats")
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(time.Second)
	p, qerr, done := qh.Result()
	if !done || qerr != nil {
		t.Fatalf("query: done=%v err=%v", done, qerr)
	}
	min, max, ok := p.MinMax()
	if !ok || min != 137 || max != 138 {
		t.Errorf("remaining = %v", p)
	}
}

func TestQueryErrors(t *testing.T) {
	c := newTestCluster(t, PolicyPolyvalue)
	if _, err := c.Query("nope", "1 + 1"); err == nil {
		t.Error("unknown site accepted")
	}
	if _, err := c.Query("A", "1 +"); err == nil {
		t.Error("bad expression accepted")
	}
	// Query needing a down site times out with an error.
	loadInt(t, c, "bx", 1)
	c.Crash("B")
	qh, _ := c.Query("A", "bx + 1")
	c.RunFor(2 * time.Second)
	if _, qerr, done := qh.Result(); !done || qerr == nil {
		t.Errorf("query against down site: done=%v err=%v", done, qerr)
	}
}

func TestSubmitErrors(t *testing.T) {
	c := newTestCluster(t, PolicyPolyvalue)
	if _, err := c.Submit("nope", "x = 1"); err == nil {
		t.Error("unknown site accepted")
	}
	if _, err := c.Submit("A", "garbage &&"); err == nil {
		t.Error("bad program accepted")
	}
	// Submission to a crashed site aborts immediately.
	c.Crash("A")
	h, err := c.Submit("A", "ax = 1")
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(time.Second)
	if h.Status() != StatusAborted {
		t.Errorf("status = %v", h.Status())
	}
}

// TestParticipantCrashRecoversFromWAL: a participant crashes in the wait
// phase; on restart it finds the prepared record in its WAL, installs
// polyvalues, and later resolves them by asking the coordinator.
func TestParticipantCrashRecoversFromWAL(t *testing.T) {
	c := newTestCluster(t, PolicyPolyvalue)
	loadInt(t, c, "bsrc", 100)
	loadInt(t, c, "adst", 0)
	// Crash B the instant after it sends ready (ready sent at ~30ms).
	c.sched.After(31*time.Millisecond, func() { c.Crash("B") })
	h, _ := c.Submit("A", "bsrc = bsrc - 40; adst = adst + 40")
	c.RunFor(time.Second)
	// A decided: it got B's ready (sent before the crash) and its own.
	if h.Status() != StatusCommitted {
		t.Fatalf("status = %v (%s)", h.Status(), h.Reason())
	}
	// adst (on A) committed normally; bsrc is stuck on crashed B.
	if got := readInt(t, c, "adst"); got != 40 {
		t.Errorf("adst = %d", got)
	}
	// Restart B: WAL recovery installs a polyvalue for bsrc, then the
	// outcome request to A resolves it to the committed value.
	c.Restart("B")
	c.RunFor(5 * time.Second)
	if got := readInt(t, c, "bsrc"); got != 60 {
		t.Errorf("bsrc after WAL recovery = %d, want 60", got)
	}
	if len(c.PolyItems()) != 0 {
		t.Errorf("polys = %v", c.PolyItems())
	}
}

// TestBlockingPolicyStallsItems: the A1 ablation scenario — under the
// blocking baseline the in-doubt participant holds its locks, so new
// transactions on those items abort until the failure is repaired.
func TestBlockingPolicyStallsItems(t *testing.T) {
	c := newTestCluster(t, PolicyBlocking)
	loadInt(t, c, "bsrc", 100)
	loadInt(t, c, "cdst", 0)
	c.ArmCrashBeforeDecision("A")
	_, _ = c.Submit("A", "bsrc = bsrc - 40; cdst = cdst + 40")
	c.RunFor(2 * time.Second)
	if len(c.PolyItems()) != 0 {
		t.Fatalf("blocking policy installed polyvalues: %v", c.PolyItems())
	}
	// New transaction on the locked item must fail.
	h2, _ := c.Submit("B", "bsrc = bsrc - 10")
	c.RunFor(2 * time.Second)
	if h2.Status() != StatusAborted {
		t.Fatalf("blocked item accepted a transaction: %v", h2.Status())
	}
	// Repair: restart A; the blocked participant learns "presumed abort",
	// releases, and the retry succeeds.
	c.Restart("A")
	c.RunFor(5 * time.Second)
	h3, _ := c.Submit("B", "bsrc = bsrc - 10")
	c.RunFor(2 * time.Second)
	if h3.Status() != StatusCommitted {
		t.Fatalf("post-repair transaction: %v (%s)", h3.Status(), h3.Reason())
	}
	if got := readInt(t, c, "bsrc"); got != 90 {
		t.Errorf("bsrc = %d, want 90", got)
	}
}

// TestBlockingParticipantCrashRecovery: blocking policy + participant
// crash in wait — on restart the item is re-locked (still unavailable)
// until the outcome arrives.
func TestBlockingParticipantCrashRecovery(t *testing.T) {
	c := newTestCluster(t, PolicyBlocking)
	loadInt(t, c, "bsrc", 100)
	loadInt(t, c, "adst", 0)
	c.sched.After(31*time.Millisecond, func() { c.Crash("B") })
	h, _ := c.Submit("A", "bsrc = bsrc - 40; adst = adst + 40")
	c.RunFor(time.Second)
	if h.Status() != StatusCommitted {
		t.Fatalf("status = %v", h.Status())
	}
	c.Restart("B")
	c.RunFor(5 * time.Second)
	// Outcome fetched from A: commit applies the prepared writes.
	if got := readInt(t, c, "bsrc"); got != 60 {
		t.Errorf("bsrc = %d, want 60", got)
	}
}

func TestCrashBringsDownQueries(t *testing.T) {
	c := newTestCluster(t, PolicyPolyvalue)
	qh, _ := c.Query("A", "ax + 1")
	c.Crash("A")
	c.RunFor(time.Second)
	if _, err, done := qh.Result(); !done || err == nil {
		t.Errorf("query on crashed coordinator: done=%v err=%v", done, err)
	}
}

func TestStatsAndStringers(t *testing.T) {
	c := newTestCluster(t, PolicyPolyvalue)
	loadInt(t, c, "bx", 1)
	h, _ := c.Submit("A", "bx = 2") // cross-site: exercises the network
	c.RunFor(time.Second)
	if h.Status() != StatusCommitted {
		t.Fatal("setup failed")
	}
	if c.NetStats().Delivered == 0 {
		t.Error("no network activity recorded")
	}
	if c.LatencyHistogram().Count() != 1 {
		t.Errorf("latency samples = %d", c.LatencyHistogram().Count())
	}
	if StatusPending.String() != "pending" || StatusCommitted.String() != "committed" ||
		StatusAborted.String() != "aborted" || Status(9).String() != "status(9)" {
		t.Error("Status strings wrong")
	}
	if PolicyPolyvalue.String() != "polyvalue" || PolicyBlocking.String() != "blocking" {
		t.Error("Policy strings wrong")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty site list accepted")
	}
	if _, err := New(Config{Sites: []protocol.SiteID{"A", "A"}}); err == nil {
		t.Error("duplicate sites accepted")
	}
}

func TestDefaultPlacementDeterministic(t *testing.T) {
	c, err := New(Config{Sites: []protocol.SiteID{"A", "B", "C"}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Placement("item42") != c.Placement("item42") {
		t.Error("placement not deterministic")
	}
	// All sites receive some share over many items.
	counts := map[protocol.SiteID]int{}
	for i := 0; i < 300; i++ {
		counts[c.Placement(string(rune('a'+i%26))+string(rune('0'+i%10)))]++
	}
	for _, s := range c.Sites() {
		if counts[s] == 0 {
			t.Errorf("site %s owns nothing", s)
		}
	}
}

// TestSerialEquivalenceUnderFailure: the acid test — run a workload with
// a mid-stream coordinator crash, resolve everything, and compare the
// final state to the serial execution of exactly the committed
// transactions.
func TestSerialEquivalenceUnderFailure(t *testing.T) {
	c := newTestCluster(t, PolicyPolyvalue)
	loadInt(t, c, "ax", 1000)
	loadInt(t, c, "by", 1000)
	loadInt(t, c, "cz", 1000)

	type sub struct {
		src string
		h   *Handle
	}
	var subs []sub
	submit := func(coord protocol.SiteID, src string) {
		h, err := c.Submit(coord, src)
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, sub{src: src, h: h})
		c.RunFor(500 * time.Millisecond)
	}

	submit("A", "ax = ax - 100; by = by + 100")
	c.ArmCrashBeforeDecision("B")
	submit("B", "by = by - 50; cz = cz + 50") // crashes B, in doubt
	submit("C", "cz = cz * 2")                // polytransaction over cz
	submit("A", "ax = ax - 1")
	c.Restart("B")
	c.RunFor(10 * time.Second)

	// Compute expected state: committed txns in submission order;
	// the in-doubt one resolved to presumed abort.
	expected := map[string]int64{"ax": 1000, "by": 1000, "cz": 1000}
	apply := []func(){
		func() { expected["ax"] -= 100; expected["by"] += 100 },
		func() {}, // aborted (presumed) — no effect
		func() { expected["cz"] *= 2 },
		func() { expected["ax"] -= 1 },
	}
	for i, s := range subs {
		switch i {
		case 1:
			if s.h.Status() == StatusCommitted {
				t.Fatalf("in-doubt txn reported committed to client")
			}
		default:
			if s.h.Status() != StatusCommitted {
				t.Fatalf("txn %d (%s): %v (%s)", i, s.src, s.h.Status(), s.h.Reason())
			}
			_ = apply
		}
	}
	for i, f := range apply {
		if i == 1 {
			continue
		}
		f()
	}
	if polys := c.PolyItems(); len(polys) != 0 {
		t.Fatalf("unresolved polys: %v", polys)
	}
	for item, want := range expected {
		if got := readInt(t, c, item); got != want {
			t.Errorf("%s = %d, want %d", item, got, want)
		}
	}
	// §3.3 hygiene: once everything settled, the outcome records and
	// dependency tables have been garbage-collected everywhere ("that
	// site can forget the outcome of T and the table entry for T").
	for _, id := range c.Sites() {
		if tids := c.Store(id).DepTIDs(); len(tids) != 0 {
			t.Errorf("site %s retains dependency entries %v", id, tids)
		}
		for _, s := range subs {
			if _, known := c.Store(id).Outcome(s.h.TID); known {
				t.Errorf("site %s retains outcome record for %s after GC window", id, s.h.TID)
			}
		}
	}
}

// TestUncertainValueConditionShape: the installed polyvalue literally has
// the {<new, T>, <old, !T>} shape from §3.1.
func TestUncertainValueConditionShape(t *testing.T) {
	c := newTestCluster(t, PolicyPolyvalue)
	loadInt(t, c, "bx", 7)
	c.ArmCrashBeforeDecision("A")
	h, _ := c.Submit("A", "bx = 9")
	c.RunFor(time.Second)
	p := c.Read("bx")
	pairs := p.Pairs()
	if len(pairs) != 2 {
		t.Fatalf("pairs = %v", p)
	}
	tid := condition.TID(h.TID)
	for _, pr := range pairs {
		n, _ := value.AsInt(pr.Val)
		switch n {
		case 9:
			if !pr.Cond.Equal(condition.Committed(tid)) {
				t.Errorf("new-value condition = %v", pr.Cond)
			}
		case 7:
			if !pr.Cond.Equal(condition.Aborted(tid)) {
				t.Errorf("old-value condition = %v", pr.Cond)
			}
		default:
			t.Errorf("unexpected value %d", n)
		}
	}
}
