package cluster

import (
	"testing"
	"time"

	"repro/internal/network"
	"repro/internal/polyvalue"
	"repro/internal/protocol"
	"repro/internal/value"
)

func newPersistentCluster(t *testing.T, dir string) *Cluster {
	t.Helper()
	c, err := New(Config{
		Sites:   []protocol.SiteID{"A", "B", "C"},
		Net:     network.Config{Latency: 10 * time.Millisecond},
		DataDir: dir,
		Placement: func(item string) protocol.SiteID {
			switch item[0] {
			case 'a':
				return "A"
			case 'b':
				return "B"
			default:
				return "C"
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestDataDirSurvivesProcessRestart: committed data persists across a
// full cluster teardown and re-creation over the same directory.
func TestDataDirSurvivesProcessRestart(t *testing.T) {
	dir := t.TempDir()
	c1 := newPersistentCluster(t, dir)
	if err := c1.Load("bx", polyvalue.Simple(value.Int(100))); err != nil {
		t.Fatal(err)
	}
	h, _ := c1.Submit("A", "bx = bx - 30")
	c1.RunFor(time.Second)
	if h.Status() != StatusCommitted {
		t.Fatalf("status = %v", h.Status())
	}
	c1.Close()

	c2 := newPersistentCluster(t, dir)
	defer c2.Close()
	c2.RunFor(time.Second)
	if v, ok := c2.Read("bx").IsCertain(); !ok || !v.Equal(value.Int(70)) {
		t.Errorf("bx after process restart = %v", c2.Read("bx"))
	}
}

// TestDataDirInDoubtAcrossProcessRestart: the whole cluster process dies
// while participants are in the wait phase; the next process converts
// the recovered prepared entries to polyvalues and eventually resolves
// them by presumed abort.
func TestDataDirInDoubtAcrossProcessRestart(t *testing.T) {
	dir := t.TempDir()
	c1 := newPersistentCluster(t, dir)
	if err := c1.Load("bx", polyvalue.Simple(value.Int(100))); err != nil {
		t.Fatal(err)
	}
	if err := c1.Load("cy", polyvalue.Simple(value.Int(0))); err != nil {
		t.Fatal(err)
	}
	c1.ArmCrashBeforeDecision("A")
	_, _ = c1.Submit("A", "bx = bx - 40; cy = cy + 40")
	// Run just past the readies (~40ms) but NOT past the wait timeout:
	// the participants are in doubt with prepared WAL entries.
	c1.RunFor(60 * time.Millisecond)
	if n := len(c1.Store("B").PreparedTxns()); n != 1 {
		t.Fatalf("B prepared entries = %d; timing drifted", n)
	}
	c1.Close() // the whole "process" dies

	c2 := newPersistentCluster(t, dir)
	defer c2.Close()
	// Recovery at t=0 converts the in-doubt updates to polyvalues; the
	// outcome request to A answers (presumed abort) after one round trip
	// (~20ms), so observe the polyvalues just before that.
	c2.RunFor(15 * time.Millisecond)
	if polys := c2.PolyItems(); len(polys) != 2 {
		t.Fatalf("recovered polys = %v", polys)
	}
	// The items are available immediately.
	h, _ := c2.Submit("B", "bx = bx - 1")
	c2.RunFor(2 * time.Second)
	if h.Status() != StatusCommitted {
		t.Fatalf("follow-up: %v (%s)", h.Status(), h.Reason())
	}
	// The outcome requests to A resolve by presumed abort (A's fresh
	// store has no record of the old transaction).
	c2.RunFor(30 * time.Second)
	if polys := c2.PolyItems(); len(polys) != 0 {
		t.Fatalf("unresolved polys after recovery: %v", polys)
	}
	if v, ok := c2.Read("bx").IsCertain(); !ok || !v.Equal(value.Int(99)) {
		t.Errorf("bx = %v, want 99", c2.Read("bx"))
	}
	if v, ok := c2.Read("cy").IsCertain(); !ok || !v.Equal(value.Int(0)) {
		t.Errorf("cy = %v, want 0", c2.Read("cy"))
	}
}

func TestDataDirBadPath(t *testing.T) {
	_, err := New(Config{
		Sites:   []protocol.SiteID{"A"},
		DataDir: "/nonexistent/deeply/nested/dir",
	})
	if err == nil {
		t.Error("bad DataDir accepted")
	}
}
