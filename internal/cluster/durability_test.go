package cluster

import (
	"net"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/polyvalue"
	"repro/internal/protocol"
	"repro/internal/storage"
	"repro/internal/transport"
	"repro/internal/value"
)

// durHarness is a 3-site TCP node cluster running durable WAL mode
// (SyncWAL) with a per-site storage.FaultFS underneath every log.
type durHarness struct {
	t     *testing.T
	dir   string
	peers map[protocol.SiteID]string
	nodes map[protocol.SiteID]*Cluster
	disks map[protocol.SiteID]*storage.FaultFS
}

func newDurHarness(t *testing.T) *durHarness {
	t.Helper()
	h := &durHarness{
		t:     t,
		dir:   t.TempDir(),
		peers: map[protocol.SiteID]string{},
		nodes: map[protocol.SiteID]*Cluster{},
		disks: map[protocol.SiteID]*storage.FaultFS{},
	}
	lns := map[protocol.SiteID]net.Listener{}
	for _, id := range nodeSites {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		lns[id] = ln
		h.peers[id] = ln.Addr().String()
		// The injector persists across node rebuilds, like the disk it
		// models.
		h.disks[id] = storage.NewFaultFS(storage.OSFS, storage.FaultFSConfig{Seed: int64(len(id))})
	}
	for _, id := range nodeSites {
		h.start(id, lns[id])
	}
	t.Cleanup(func() {
		for _, n := range h.nodes {
			if n != nil {
				n.Close()
			}
		}
	})
	return h
}

func (h *durHarness) start(id protocol.SiteID, ln net.Listener) *Cluster {
	h.t.Helper()
	if ln == nil {
		var err error
		for i := 0; i < 50; i++ {
			ln, err = net.Listen("tcp", h.peers[id])
			if err == nil {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		if err != nil {
			h.t.Fatalf("rebind %s: %v", h.peers[id], err)
		}
	}
	fab := transport.NewTCPWithListener(transport.TCPConfig{
		Self:       id,
		Peers:      h.peers,
		BackoffMin: 5 * time.Millisecond,
		BackoffMax: 100 * time.Millisecond,
		Seed:       int64(len(id)),
	}, ln)
	node, err := NewNode(Config{
		Sites:         nodeSites,
		WaitTimeout:   100 * time.Millisecond,
		ReadyTimeout:  500 * time.Millisecond,
		RetryInterval: 100 * time.Millisecond,
		Placement:     nodePlacement,
		DataDir:       h.dir,
		SyncWAL:       true,
		DiskFS:        h.disks[id],
	}, id, fab)
	if err != nil {
		h.t.Fatalf("NewNode(%s): %v", id, err)
	}
	h.nodes[id] = node
	return node
}

func (h *durHarness) certainInt(item string, within time.Duration) (int64, bool) {
	h.t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		if v, ok := h.nodes[nodePlacement(item)].Read(item).IsCertain(); ok {
			if iv, ok := v.(value.Int); ok {
				return int64(iv), true
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	return 0, false
}

// TestFsyncFailureDurabilityPanic is the fsyncgate scenario end to end:
// a participant whose WAL fsync fails must crash itself before acking
// Prepared (the coordinator aborts on timeout), must refuse Restart for
// that incarnation, and must recover cleanly — conserving the bank
// total — once the node is rebuilt from the on-disk bytes.
func TestFsyncFailureDurabilityPanic(t *testing.T) {
	h := newDurHarness(t)
	if err := h.nodes["B"].Load("acct1", polyvalue.Simple(value.Int(100))); err != nil {
		t.Fatalf("load acct1: %v", err)
	}
	if err := h.nodes["C"].Load("acct2", polyvalue.Simple(value.Int(100))); err != nil {
		t.Fatalf("load acct2: %v", err)
	}

	// Warm transfer: durable mode commits normally while the disk is
	// healthy.
	hd, err := h.nodes["A"].Submit("A", transferSrc(30))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if st, done := hd.Wait(10 * time.Second); !done || st != StatusCommitted {
		t.Fatalf("warm transfer: status=%v done=%v reason=%q", st, done, hd.Reason())
	}

	// B's disk dies: every fsync fails from here on.
	h.disks["B"].SetRule(storage.DiskRule{Kind: storage.DiskFsync, P: 1, Sticky: true})

	// The next transfer's prepare at B cannot become durable.  B must
	// take a durability panic instead of sending ready, and the
	// coordinator must abort — never commit — the transaction.
	hd2, err := h.nodes["A"].Submit("A", transferSrc(10))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if st, done := hd2.Wait(10 * time.Second); done && st == StatusCommitted {
		t.Fatal("transaction committed although participant B could not fsync its prepare")
	}

	deadline := time.Now().Add(10 * time.Second)
	for !h.nodes["B"].DurabilityLost("B") {
		if time.Now().After(deadline) {
			t.Fatal("B never took a durability panic")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := h.nodes["B"].Metrics().Counter("site.durability.panics", metrics.L("site", "B")).Value(); got < 1 {
		t.Fatalf("site.durability.panics{site=B} = %d, want >= 1", got)
	}
	if !h.nodes["B"].IsDown("B") {
		t.Fatal("B should be down after its durability panic")
	}

	// Restart is refused: the incarnation's memory may run ahead of its
	// disk.
	h.nodes["B"].Restart("B")
	if !h.nodes["B"].IsDown("B") {
		t.Fatal("restart of a durability-lost site must be refused")
	}

	// Rebuild the node from disk (the disk is healthy again): state
	// re-reads from the WAL and the bank total is conserved.
	h.disks["B"].Clear()
	h.nodes["B"].Close()
	h.start("B", nil)

	v1, ok1 := h.certainInt("acct1", 15*time.Second)
	v2, ok2 := h.certainInt("acct2", 15*time.Second)
	if !ok1 || !ok2 {
		t.Fatalf("accounts never settled (acct1 certain=%v, acct2 certain=%v)", ok1, ok2)
	}
	if v1+v2 != 200 {
		t.Fatalf("conservation violated after durability panic + rebuild: %d + %d != 200", v1, v2)
	}

	// The rebuilt incarnation serves transfers again (retry while A's
	// transport reconnects to the new process).
	committed := false
	for attempt := 0; attempt < 20 && !committed; attempt++ {
		hd3, err := h.nodes["A"].Submit("A", transferSrc(5))
		if err != nil {
			t.Fatalf("submit after rebuild: %v", err)
		}
		st, done := hd3.Wait(10 * time.Second)
		committed = done && st == StatusCommitted
		if !committed {
			time.Sleep(100 * time.Millisecond)
		}
	}
	if !committed {
		t.Fatal("no transfer committed after rebuilding B from disk")
	}
}
