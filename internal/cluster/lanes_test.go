package cluster

import (
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/polyvalue"
	"repro/internal/protocol"
	"repro/internal/transport"
	"repro/internal/value"
)

// laneSites is the 3-node cluster the lane stress runs over.
var laneSites = []protocol.SiteID{"A", "B", "C"}

// lanePlacement spreads the stress accounts ("la<N>") round-robin.
func lanePlacement(item string) protocol.SiteID {
	if n, err := strconv.Atoi(strings.TrimPrefix(item, "la")); err == nil {
		return laneSites[n%len(laneSites)]
	}
	return "A"
}

// laneHarness is a nodeHarness variant booting every site with execution
// lanes and synchronous group-commit durability enabled.
type laneHarness struct {
	t     *testing.T
	dir   string
	peers map[protocol.SiteID]string
	mu    sync.Mutex
	nodes map[protocol.SiteID]*Cluster
}

func newLaneHarness(t *testing.T) *laneHarness {
	t.Helper()
	h := &laneHarness{
		t:     t,
		dir:   t.TempDir(),
		peers: map[protocol.SiteID]string{},
		nodes: map[protocol.SiteID]*Cluster{},
	}
	lns := map[protocol.SiteID]net.Listener{}
	for _, id := range laneSites {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		lns[id] = ln
		h.peers[id] = ln.Addr().String()
	}
	for _, id := range laneSites {
		h.start(id, lns[id])
	}
	t.Cleanup(func() {
		for _, n := range h.nodes {
			if n != nil {
				n.Close()
			}
		}
	})
	return h
}

func (h *laneHarness) start(id protocol.SiteID, ln net.Listener) {
	h.t.Helper()
	if ln == nil {
		var err error
		for i := 0; i < 50; i++ {
			ln, err = net.Listen("tcp", h.peers[id])
			if err == nil {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		if err != nil {
			h.t.Fatalf("rebind %s: %v", h.peers[id], err)
		}
	}
	fab := transport.NewTCPWithListener(transport.TCPConfig{
		Self:       id,
		Peers:      h.peers,
		BackoffMin: 5 * time.Millisecond,
		BackoffMax: 100 * time.Millisecond,
		Seed:       int64(len(id)),
	}, ln)
	node, err := NewNode(Config{
		Sites:             laneSites,
		WaitTimeout:       100 * time.Millisecond,
		ReadyTimeout:      500 * time.Millisecond,
		RetryInterval:     100 * time.Millisecond,
		Placement:         lanePlacement,
		DataDir:           h.dir,
		Lanes:             8,
		SyncWAL:           true,
		GroupCommitWindow: 0,
	}, id, fab)
	if err != nil {
		h.t.Fatalf("NewNode(%s): %v", id, err)
	}
	h.mu.Lock()
	h.nodes[id] = node
	h.mu.Unlock()
}

func (h *laneHarness) node(id protocol.SiteID) *Cluster {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.nodes[id]
}

func (h *laneHarness) restart(id protocol.SiteID) {
	h.t.Helper()
	h.node(id).Close()
	h.start(id, nil)
}

func laneTransfer(from, to string, amount int) string {
	return fmt.Sprintf("%s = %s - %d if %s >= %d; %s = %s + %d if %s >= %d",
		from, from, amount, from, amount, to, to, amount, from, amount)
}

// TestLaneStress hammers a lanes-enabled durable cluster from concurrent
// workers — some on worker-private (disjoint) account pairs that land in
// different lanes, some on a shared hot set that collides across lanes —
// with a crash point armed and a kill/restart cycle in the middle.  Run
// under -race this is the tentpole's data-race audit; the final
// conservation check is the correctness audit.  (The seeded simulated
// harnesses stay single-threaded by design; this test is wall-clock on
// purpose.)
func TestLaneStress(t *testing.T) {
	if testing.Short() {
		t.Skip("lane stress needs real fsyncs and wall-clock settling")
	}
	h := newLaneHarness(t)

	// la0..la3 are the shared hot set; la4..la9 are three disjoint
	// private pairs.  100 each: the conserved total is 1000.
	const accounts = 10
	const initial = 100
	for i := 0; i < accounts; i++ {
		item := fmt.Sprintf("la%d", i)
		if err := h.node(lanePlacement(item)).Load(item, polyvalue.Simple(value.Int(initial))); err != nil {
			t.Fatalf("load %s: %v", item, err)
		}
	}

	type job struct {
		coord    protocol.SiteID
		from, to string
	}
	var workers [][]job
	// Three overlap workers: random-ish walks over the shared hot set,
	// coordinated from different sites.
	for w := 0; w < 3; w++ {
		var js []job
		for i := 0; i < 12; i++ {
			from := fmt.Sprintf("la%d", (w+i)%4)
			to := fmt.Sprintf("la%d", (w+i+1)%4)
			js = append(js, job{coord: laneSites[w%3], from: from, to: to})
		}
		workers = append(workers, js)
	}
	// Three disjoint workers: each owns its private pair outright.
	for w := 0; w < 3; w++ {
		a, b := fmt.Sprintf("la%d", 4+2*w), fmt.Sprintf("la%d", 5+2*w)
		var js []job
		for i := 0; i < 12; i++ {
			from, to := a, b
			if i%2 == 1 {
				from, to = b, a
			}
			js = append(js, job{coord: laneSites[w%3], from: from, to: to})
		}
		workers = append(workers, js)
	}

	runPhase := func(phase string) {
		var wg sync.WaitGroup
		for w, js := range workers {
			wg.Add(1)
			go func(w int, js []job) {
				defer wg.Done()
				for _, j := range js {
					n := h.node(j.coord)
					hd, err := n.Submit(j.coord, laneTransfer(j.from, j.to, 5))
					if err != nil {
						// Refused (admission, site down after the armed
						// crash): no money moved.
						continue
					}
					hd.Wait(10 * time.Second)
				}
			}(w, js)
		}
		wg.Wait()
		t.Logf("%s phase drained", phase)
	}

	runPhase("warm")

	// Arm the decided-but-unannounced crash window on B, push one more
	// phase through it (B dies at its next commit decision, stranding
	// its participants in doubt), then bring B back from its WAL.
	if err := h.node("B").ArmCrash("B", CrashAfterDecisionLog); err != nil {
		t.Fatalf("arm crash: %v", err)
	}
	runPhase("crash")
	h.restart("B")
	runPhase("recovered")

	// Conservation audit: every account must settle certain and the
	// total must still be exactly accounts*initial — committed transfers
	// move money, aborted ones move none, nothing may be lost or minted
	// across lanes, group commits, the crash, or recovery.
	deadline := time.Now().Add(45 * time.Second)
	for {
		total := int64(0)
		settled := true
		for i := 0; i < accounts; i++ {
			item := fmt.Sprintf("la%d", i)
			v, ok := h.node(lanePlacement(item)).Read(item).IsCertain()
			if !ok {
				settled = false
				break
			}
			iv, ok := v.(value.Int)
			if !ok {
				t.Fatalf("%s settled non-int %v", item, v)
			}
			total += int64(iv)
		}
		if settled {
			if total != accounts*initial {
				t.Fatalf("conservation violated: total %d, want %d", total, accounts*initial)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("accounts never all settled certain")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The tentpole's reason to exist: with lanes on, group commit must
	// actually have grouped — strictly fewer fsync batches than frames.
	for _, id := range laneSites {
		n := h.node(id)
		for _, g := range n.glogs {
			frames, syncs := g.SyncBatches()
			if frames > 0 && syncs > frames {
				t.Fatalf("site %s: %d syncs for %d frames", id, syncs, frames)
			}
			t.Logf("site %s: %d WAL frames in %d fsync batches", id, frames, syncs)
		}
	}
}
