package cluster

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/expr"
	"repro/internal/network"
	"repro/internal/polyvalue"
	"repro/internal/protocol"
	"repro/internal/value"
)

// chaosCluster builds a 4-site cluster with a lossy, duplicating,
// jittery network.
func chaosCluster(t *testing.T, seed int64, net network.Config) *Cluster {
	t.Helper()
	c, err := New(Config{
		Sites: []protocol.SiteID{"s0", "s1", "s2", "s3"},
		Net:   net,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// TestDuplicateDeliveryIdempotent: with heavy message duplication every
// protocol step must be idempotent — results identical to a clean run.
func TestDuplicateDeliveryIdempotent(t *testing.T) {
	c := chaosCluster(t, 1, network.Config{
		Latency: 5 * time.Millisecond, Jitter: 3 * time.Millisecond,
		Seed: 1, DuplicateProb: 0.8,
	})
	for i := 0; i < 8; i++ {
		if err := c.Load(fmt.Sprintf("item%d", i), polyvalue.Simple(value.Int(100))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 30; i++ {
		a, b := i%8, (i+3)%8
		h, err := c.Submit(c.Sites()[i%4],
			fmt.Sprintf("item%d = item%d - 1; item%d = item%d + 1", a, a, b, b))
		if err != nil {
			t.Fatal(err)
		}
		c.RunFor(time.Second)
		if h.Status() != StatusCommitted {
			t.Fatalf("txn %d under duplication: %v (%s)", i, h.Status(), h.Reason())
		}
	}
	if c.NetStats().Duplicated == 0 {
		t.Fatal("no duplicates injected — test is vacuous")
	}
	// Money conserved and every item certain.
	total := int64(0)
	for i := 0; i < 8; i++ {
		v, ok := c.Read(fmt.Sprintf("item%d", i)).IsCertain()
		if !ok {
			t.Fatalf("item%d uncertain", i)
		}
		n, _ := value.AsInt(v)
		total += n
	}
	if total != 800 {
		t.Errorf("total = %d, want 800", total)
	}
}

// TestLossyNetworkStaysConsistent: under random message loss some
// transactions abort and some go in doubt, but with all sites alive every
// outcome is eventually learned and the final state equals the serial
// execution of exactly the committed transactions.
func TestLossyNetworkStaysConsistent(t *testing.T) {
	c := chaosCluster(t, 2, network.Config{
		Latency: 5 * time.Millisecond, Jitter: 3 * time.Millisecond,
		Seed: 2, DropProb: 0.08, DuplicateProb: 0.1,
	})
	const items = 6
	state := map[string]value.V{}
	for i := 0; i < items; i++ {
		name := fmt.Sprintf("item%d", i)
		state[name] = value.Int(100)
		if err := c.Load(name, polyvalue.Simple(value.Int(100))); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(3))
	type sub struct {
		src string
		h   *Handle
	}
	var subs []sub
	for i := 0; i < 60; i++ {
		a := rng.Intn(items)
		b := (a + 1 + rng.Intn(items-1)) % items
		amt := 1 + rng.Intn(5)
		src := fmt.Sprintf("item%d = item%d - %d; item%d = item%d + %d", a, a, amt, b, b, amt)
		h, err := c.Submit(c.Sites()[rng.Intn(4)], src)
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, sub{src: src, h: h})
		// Serialize: let each transaction fully settle before the next,
		// so the serial oracle's order is the submission order.
		c.RunFor(3 * time.Second)
	}
	// Let all outcome propagation drain.
	c.RunFor(60 * time.Second)

	if polys := c.PolyItems(); len(polys) != 0 {
		t.Fatalf("unresolved polyvalues with all sites alive: %v", polys)
	}
	st := c.NetStats()
	if st.DroppedRandom == 0 {
		t.Fatal("no losses injected — test is vacuous")
	}
	// Serial oracle over committed transactions.
	committed := 0
	for _, s := range subs {
		switch s.h.Status() {
		case StatusCommitted:
			committed++
			prog := expr.MustParse(s.src)
			writes, err := prog.Eval(expr.MapEnv(state))
			if err != nil {
				t.Fatal(err)
			}
			for k, v := range writes {
				state[k] = v
			}
		case StatusPending:
			t.Fatalf("txn %s still pending with coordinator alive", s.h.TID)
		}
	}
	if committed == 0 {
		t.Fatal("nothing committed — loss rate too brutal for a meaningful check")
	}
	for i := 0; i < items; i++ {
		name := fmt.Sprintf("item%d", i)
		got, ok := c.Read(name).IsCertain()
		if !ok {
			t.Fatalf("%s uncertain", name)
		}
		if !got.Equal(state[name]) {
			t.Errorf("%s = %v, serial oracle says %v", name, got, state[name])
		}
	}
	t.Logf("chaos run: %d/%d committed, net=%+v", committed, len(subs), st)
	for _, v := range c.CheckInvariants() {
		t.Errorf("invariant violation: %s", v)
	}
}
