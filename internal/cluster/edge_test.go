package cluster

import (
	"testing"
	"time"

	"repro/internal/polyvalue"
	"repro/internal/value"
)

// TestLockTimeoutFreesReadLocks: the coordinator crashes after sending
// read requests but before prepare.  The read sites hold locks that no
// abort will ever release; the lock timeout must free them.
func TestLockTimeoutFreesReadLocks(t *testing.T) {
	c := newTestCluster(t, PolicyPolyvalue)
	loadInt(t, c, "bx", 1)
	// Crash A after its ReadReq is delivered (10ms) but before the
	// ReadRep returns (20ms).
	c.sched.After(15*time.Millisecond, func() { c.Crash("A") })
	h, _ := c.Submit("A", "bx = bx + 1")
	c.RunFor(100 * time.Millisecond)
	// B's lock is held; a competing transaction refuses.
	h2, _ := c.Submit("C", "bx = bx + 10")
	c.RunFor(2 * time.Second)
	if h2.Status() != StatusAborted {
		t.Fatalf("expected lock conflict, got %v", h2.Status())
	}
	// After the lock timeout (default 250ms) B released unilaterally;
	// new transactions succeed.  (We are already past it.)
	h3, _ := c.Submit("C", "bx = bx + 10")
	c.RunFor(2 * time.Second)
	if h3.Status() != StatusCommitted {
		t.Fatalf("lock not released after timeout: %v (%s)", h3.Status(), h3.Reason())
	}
	if got := readInt(t, c, "bx"); got != 11 {
		t.Errorf("bx = %d", got)
	}
	if h.Status() != StatusPending {
		t.Errorf("crashed coordinator's handle = %v", h.Status())
	}
}

// TestHandleLatencyPending: Latency is unavailable while pending and
// positive after decision.
func TestHandleLatencyPending(t *testing.T) {
	c := newTestCluster(t, PolicyPolyvalue)
	loadInt(t, c, "bx", 1)
	h, _ := c.Submit("A", "bx = 2") // cross-site: latency spans the protocol
	if _, ok := h.Latency(); ok {
		t.Error("latency available before decision")
	}
	c.RunFor(time.Second)
	lat, ok := h.Latency()
	if !ok || lat <= 0 {
		t.Errorf("latency = %v,%v", lat, ok)
	}
}

// TestDuplicateCompleteIsIdempotent: manually re-deliver complete-like
// outcome info after the transaction settled; nothing changes.
func TestDuplicateCompleteIsIdempotent(t *testing.T) {
	c := newTestCluster(t, PolicyPolyvalue)
	loadInt(t, c, "bx", 5)
	h, _ := c.Submit("A", "bx = bx + 1")
	c.RunFor(time.Second)
	if h.Status() != StatusCommitted {
		t.Fatal("setup failed")
	}
	before := readInt(t, c, "bx")
	// Re-inject the outcome at B twice.
	site := c.sites["B"]
	site.do(func() { site.resolveOutcome(h.TID, true) })
	site.do(func() { site.resolveOutcome(h.TID, true) })
	c.RunFor(time.Second)
	if got := readInt(t, c, "bx"); got != before {
		t.Errorf("duplicate outcome changed bx: %d -> %d", before, got)
	}
}

// TestConflictingOutcomeIgnored: a (buggy or byzantine-ish) conflicting
// outcome report must not overwrite a recorded decision.
func TestConflictingOutcomeIgnored(t *testing.T) {
	c := newTestCluster(t, PolicyPolyvalue)
	loadInt(t, c, "bx", 5)
	h, _ := c.Submit("A", "bx = bx + 1")
	c.RunFor(time.Second)
	site := c.sites["B"]
	site.do(func() { site.resolveOutcome(h.TID, false) }) // lies
	c.RunFor(time.Second)
	if got := readInt(t, c, "bx"); got != 6 {
		t.Errorf("conflicting outcome corrupted state: bx = %d", got)
	}
}

// TestPolyvalueOverwrittenByCertainWrite: a later blind write replaces a
// polyvalue with a simple value (the model's U·Y·P/I elimination term);
// the eventual outcome notification then has nothing to reduce and the
// bookkeeping still cleans up.
func TestPolyvalueOverwrittenByCertainWrite(t *testing.T) {
	c := newTestCluster(t, PolicyPolyvalue)
	loadInt(t, c, "bx", 5)
	c.ArmCrashBeforeDecision("A")
	h, _ := c.Submit("A", "bx = 9")
	c.RunFor(time.Second)
	if len(c.PolyItems()) != 1 {
		t.Fatal("setup: no polyvalue")
	}
	// Blind overwrite (does not read bx): certainty restored immediately.
	h2, _ := c.Submit("B", "bx = 42")
	c.RunFor(time.Second)
	if h2.Status() != StatusCommitted {
		t.Fatalf("blind write: %v (%s)", h2.Status(), h2.Reason())
	}
	if got := readInt(t, c, "bx"); got != 42 {
		t.Errorf("bx = %d", got)
	}
	if len(c.PolyItems()) != 0 {
		t.Error("polyvalue survived blind overwrite")
	}
	// Repair: the in-doubt txn resolves (presumed abort); bx unchanged.
	c.Restart("A")
	c.RunFor(30 * time.Second)
	if got := readInt(t, c, "bx"); got != 42 {
		t.Errorf("bx after repair = %d", got)
	}
	for _, id := range c.Sites() {
		if aw := c.Store(id).Awaits(); len(aw) != 0 {
			t.Errorf("site %s retains awaits %v", id, aw)
		}
	}
	_ = h
}

// TestTwoSequentialInDoubtTransactionsSameItem: two different
// transactions go in doubt on the same item back to back; the polyvalue
// nests, and resolving both (in either order) restores a single value.
func TestTwoSequentialInDoubtTransactionsSameItem(t *testing.T) {
	c := newTestCluster(t, PolicyPolyvalue)
	loadInt(t, c, "bx", 0)
	c.ArmCrashBeforeDecision("A")
	h1, _ := c.Submit("A", "bx = bx + 1")
	c.RunFor(time.Second)
	c.ArmCrashBeforeDecision("C")
	h2, _ := c.Submit("C", "bx = bx + 10")
	c.RunFor(time.Second)
	p := c.Read("bx")
	if p.NumPairs() != 4 && p.NumPairs() != 3 {
		// {0, 1} × {+10, +0} — all four sums distinct: 0,1,10,11.
		t.Fatalf("nested in-doubt polyvalue = %v", p)
	}
	deps := p.DependsOn()
	if len(deps) != 2 {
		t.Fatalf("DependsOn = %v", deps)
	}
	// Restart both coordinators; both presumed aborted.
	c.Restart("A")
	c.Restart("C")
	c.RunFor(30 * time.Second)
	if got := readInt(t, c, "bx"); got != 0 {
		t.Errorf("bx = %d, want 0 (both aborted)", got)
	}
	if h1.Status() != StatusPending || h2.Status() != StatusPending {
		t.Errorf("statuses = %v, %v", h1.Status(), h2.Status())
	}
}

// TestBlockingRecoveredAbortPath: a blocking-policy participant crashes
// in wait, restarts, and learns the transaction ABORTED — the recovered
// prepared entry is discarded without installing anything.
func TestBlockingRecoveredAbortPath(t *testing.T) {
	c := newTestCluster(t, PolicyBlocking)
	loadInt(t, c, "bsrc", 100)
	loadInt(t, c, "adst", 0)
	// Crash B right after its ready is SENT but ensure the coordinator
	// never gets it: cut the link at 29ms (ready sent at ~30ms, so it is
	// dropped at send or delivery), then crash B.  A aborts on ready
	// timeout.
	c.sched.After(29*time.Millisecond, func() { c.Partition("A", "B") })
	c.sched.After(35*time.Millisecond, func() { c.Crash("B") })
	h, _ := c.Submit("A", "bsrc = bsrc - 40; adst = adst + 40")
	c.RunFor(time.Second)
	if h.Status() != StatusAborted {
		t.Fatalf("status = %v", h.Status())
	}
	c.HealAll()
	c.Restart("B")
	c.RunFor(10 * time.Second)
	// The abort reached B's recovered prepared entry: nothing installed.
	if got := readInt(t, c, "bsrc"); got != 100 {
		t.Errorf("bsrc = %d, want 100", got)
	}
	if n := len(c.Store("B").PreparedTxns()); n != 0 {
		t.Errorf("prepared entries remain: %d", n)
	}
}

// TestQueryAgainstEmptyDatabase: querying never-written items yields the
// certain Nil value rather than an error.
func TestQueryAgainstEmptyDatabase(t *testing.T) {
	c := newTestCluster(t, PolicyPolyvalue)
	qh, _ := c.Query("A", "bnothing == nil")
	c.RunFor(time.Second)
	p, err, done := qh.Result()
	if !done || err != nil {
		t.Fatalf("query: %v %v", err, done)
	}
	if v, ok := p.IsCertain(); !ok || !v.Equal(value.Bool(true)) {
		t.Errorf("result = %v", p)
	}
}

// TestLoadRejectsNothing is a smoke test for Load/Read plumbing with
// polyvalues loaded directly.
func TestLoadPolyvalueDirectly(t *testing.T) {
	c := newTestCluster(t, PolicyPolyvalue)
	p := polyvalue.Uncertain("TX", polyvalue.Simple(value.Int(1)), polyvalue.Simple(value.Int(2)))
	if err := c.Load("bx", p); err != nil {
		t.Fatal(err)
	}
	if !c.Read("bx").Equal(p) {
		t.Errorf("Read = %v", c.Read("bx"))
	}
}
