package cluster

import (
	"fmt"
	"path/filepath"
	"strconv"
	"time"

	"repro/internal/metrics"
	"repro/internal/protocol"
	"repro/internal/replica"
	"repro/internal/storage"
	"repro/internal/transport"
	"repro/internal/txn"
	"repro/internal/vclock"
)

// NewNode builds a single-site cluster running over a caller-supplied
// transport on wall-clock time — the multi-process runtime behind
// cmd/polynode.  cfg.Sites is the full cluster membership (every process
// must pass the identical list, in the same order, so item placement
// agrees); only self is hosted here, and the other sites are expected to
// be their own processes reachable through fab.
//
// Semantics differences from the simulated runtime (New):
//
//   - time is real: WaitTimeout, RetryInterval etc. elapse on the wall,
//     and Handle.Wait / QueryHandle.Wait replace RunUntil for clients;
//   - transaction IDs are prefixed with the site name (plus a boot
//     epoch when a DataDir makes restarts possible), keeping them
//     unique across coordinating processes and incarnations;
//   - the cluster owns fab and the wall clock: Close shuts both down.
//
// RunUntil/RunFor/Step and Partition/Heal are simulation-only and panic
// in node mode.
func NewNode(cfg Config, self protocol.SiteID, fab transport.Transport) (*Cluster, error) {
	if fab == nil {
		return nil, fmt.Errorf("cluster: NewNode needs a transport")
	}
	if len(cfg.Sites) == 0 {
		return nil, fmt.Errorf("cluster: no sites configured")
	}
	found := false
	for _, s := range cfg.Sites {
		if s == self {
			found = true
		}
	}
	if !found {
		return nil, fmt.Errorf("cluster: self %q not in site list %v", self, cfg.Sites)
	}
	if err := validDecisionPlane(cfg.DecisionPlane); err != nil {
		return nil, err
	}
	if err := validReplication(&cfg); err != nil {
		return nil, err
	}
	if cfg.Replication != nil && cfg.Placement == nil {
		cfg.Placement = replica.Placement(append([]protocol.SiteID{}, cfg.Sites...))
	}
	cfg.fillDefaults()
	// Transaction IDs must never recur across incarnations of the same
	// site: the WAL outlives the process, so a reborn in-memory counter
	// would mint IDs that collide with an earlier life's durable outcome
	// and dependency records — a participant inquiring about the new
	// transaction could be answered with the old one's fate.  Durable
	// nodes therefore salt the prefix with a boot epoch; volatile nodes
	// lose every record with the process, so their plain prefix stands.
	prefix := string(self) + ".t"
	if cfg.DataDir != "" {
		prefix += strconv.FormatInt(time.Now().UnixNano(), 36)
	}
	wall := vclock.NewWall()
	c := &Cluster{
		cfg:     cfg,
		tracing: tracingEnabled(cfg.Tracer),
		clk:     wall,
		wall:    wall,
		fab:     fab,
		sites:   map[protocol.SiteID]*Site{},
		order:   append([]protocol.SiteID{}, cfg.Sites...),
		ids:     txn.NewIDGen(prefix),
		qids:    txn.NewIDGen(string(self) + ".q"),
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	c.initMetrics(reg)

	store := storage.NewStore()
	if cfg.DataDir == "" {
		// No durable medium: skip WAL record framing on every mutation
		// (a real process crash loses the in-memory store regardless).
		store.SetVolatile()
	}
	if cfg.DataDir != "" {
		var log *storage.FileLog
		var err error
		var stats storage.RecoverStats
		store, log, stats, err = storage.OpenFileStoreFS(cfg.DiskFS, filepath.Join(cfg.DataDir, string(self)+".wal"))
		if err != nil {
			return nil, fmt.Errorf("cluster: site %s: %w", self, err)
		}
		if stats.CorruptReads > 0 {
			reg.Counter("storage.corrupt.reads", metrics.L("site", string(self))).Add(int64(stats.CorruptReads))
		}
		c.logs = append(c.logs, log)
		c.seedLifecycle(self, store.PolyItems())
	}
	store.Instrument(reg, string(self))
	var glog *storage.GroupLog
	if cfg.SyncWAL && cfg.DataDir != "" {
		// Durable mode: WAL frames route through the group-commit stage
		// and each site event waits for its records before its outputs
		// leave the site (see lanes.go).  With lanes off the wait is an
		// inline per-event fsync; with lanes on, one fsync retires every
		// event parked in WaitSynced.
		glog = storage.NewGroupLog(c.logs[0], cfg.GroupCommitWindow)
		store.SetWALSink(glog)
		c.glogs = append(c.glogs, glog)
	}
	s := newSite(c, self, store, glog)
	if len(c.logs) > 0 {
		s.flog = c.logs[0]
	}
	c.sites[self] = s
	fab.Register(self, s.onMessage)
	if br, ok := fab.(transport.BatchReceiver); ok {
		// Whole decoded frames become one site event each instead of one
		// per message.
		br.RegisterBatch(self, s.onMessageBatch)
	}
	// Recover durable state synchronously, before any network traffic can
	// interleave: in-doubt transactions convert exactly as a site restart
	// would, and their outcome-request loops start ticking on the wall.
	if cfg.DataDir != "" {
		s.do(func() { s.recoverDurableState() })
	}
	return c, nil
}

// Self returns the locally-hosted site in node mode ("" for the
// simulated runtime, which hosts every site).
func (c *Cluster) Self() protocol.SiteID {
	if c.wall == nil || len(c.sites) != 1 {
		return ""
	}
	for id := range c.sites {
		return id
	}
	return ""
}

// Local reports whether an item is placed at a locally-hosted site.
func (c *Cluster) Local(item string) bool {
	return c.sites[c.Placement(item)] != nil
}
