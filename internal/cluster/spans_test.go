package cluster

import (
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/protocol"
	"repro/internal/trace"
)

// newSpanCluster builds the standard 3-site test cluster with structured
// span tracing enabled, returning the harness-owned span log (which, as
// in the real harnesses, survives site crashes).
func newSpanCluster(t *testing.T, policy Policy, mut func(*Config)) (*Cluster, *trace.SpanLog) {
	t.Helper()
	spans := trace.NewSpanLog(4096)
	cfg := Config{
		Sites:  []protocol.SiteID{"A", "B", "C"},
		Net:    network.Config{Latency: 10 * time.Millisecond},
		Policy: policy,
		Spans:  spans,
		Placement: func(item string) protocol.SiteID {
			switch item[0] {
			case 'a':
				return "A"
			case 'b':
				return "B"
			default:
				return "C"
			}
		},
	}
	if mut != nil {
		mut(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c, spans
}

func kinds(spans []trace.Span) map[string]int {
	out := map[string]int{}
	for _, sp := range spans {
		out[sp.Kind]++
	}
	return out
}

// TestSpansCommittedTransfer checks the full causal tree of a clean
// distributed commit: root, coordinator phases, one compute span per
// participant, lock windows — and that trace.BuildTimelines judges the
// tree complete.
func TestSpansCommittedTransfer(t *testing.T) {
	c, spans := newSpanCluster(t, PolicyPolyvalue, nil)
	loadInt(t, c, "acct1", 100)
	loadInt(t, c, "bacct2", 0)
	h, err := c.Submit("A", "acct1 = acct1 - 30; bacct2 = bacct2 + 30")
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(5 * time.Second)
	if h.Status() != StatusCommitted {
		t.Fatalf("status = %v (%s)", h.Status(), h.Reason())
	}

	all := spans.Spans()
	tls := trace.BuildTimelines(all)
	if len(tls) != 1 {
		t.Fatalf("timelines = %d, want 1", len(tls))
	}
	tl := tls[0]
	if !tl.Complete {
		t.Fatalf("timeline incomplete: missing parents %v, silent sites %v\n%s",
			tl.MissingParents, tl.MissingSites, tl.Render())
	}
	if tl.Status != "committed" {
		t.Errorf("timeline status = %q", tl.Status)
	}
	k := kinds(tl.Spans)
	if k["txn"] != 1 || k["phase.read"] != 1 || k["phase.prepare"] != 1 {
		t.Errorf("coordinator spans: %v", k)
	}
	// Both A and B hold writes; both must have computed.  The settle span
	// appears once the last outcome ack lands.
	if k["part.compute"] < 2 {
		t.Errorf("part.compute = %d, want >= 2 (%v)", k["part.compute"], k)
	}
	if k["phase.settle"] != 1 {
		t.Errorf("phase.settle = %d (%v)", k["phase.settle"], k)
	}
	if k["locks"] == 0 {
		t.Errorf("no lock spans (%v)", k)
	}
	// Every span belongs to the tree: non-root spans name a present parent.
	if len(tl.MissingParents) != 0 {
		t.Errorf("dangling parents: %v", tl.MissingParents)
	}
	// Untraced runs never pay for any of this.
	if spans.Dropped() != 0 {
		t.Errorf("span log dropped %d", spans.Dropped())
	}
}

// TestSpansCoordinatorCrash pins the paper's headline scenario in span
// form: the coordinator dies before deciding, participants install
// polyvalues (poly.install), and recovery reduces them (poly.reduce).
// The handle stays pending, so no root span is ever recorded — exactly
// why the harness audits completeness only for decided transactions.
func TestSpansCoordinatorCrash(t *testing.T) {
	c, spans := newSpanCluster(t, PolicyPolyvalue, nil)
	loadInt(t, c, "bsrc", 100)
	loadInt(t, c, "cdst", 0)
	c.ArmCrashBeforeDecision("A")
	h, _ := c.Submit("A", "bsrc = bsrc - 40; cdst = cdst + 40")
	c.RunFor(2 * time.Second)
	if h.Status() != StatusPending {
		t.Fatalf("status = %v", h.Status())
	}
	k := kinds(spans.Spans())
	if k["poly.install"] != 2 {
		t.Errorf("poly.install spans = %d, want 2 (B and C)", k["poly.install"])
	}
	if k["txn"] != 0 {
		t.Errorf("undecided transaction has a root span (%v)", k)
	}

	c.Restart("A")
	c.RunFor(15 * time.Second)
	k = kinds(spans.Spans())
	if k["poly.reduce"] == 0 {
		t.Error("no poly.reduce span after recovery")
	}
	// The wait spans must say how the participants resolved.
	var sawPolyResolution bool
	for _, sp := range spans.ByTID(string(h.TID)) {
		if sp.Kind == "part.wait" && sp.Attrs["resolution"] == "polyvalue" {
			sawPolyResolution = true
		}
	}
	if !sawPolyResolution {
		t.Error("no part.wait span with resolution=polyvalue")
	}
}

// TestBlockedAccountantPolicies is the paper's availability claim in
// metric form: under the blocking policy an in-doubt participant camps
// on its items (cause=indoubt accrues), while the polyvalue policy
// releases them (only ordinary cause=lock time accrues).
func TestBlockedAccountantPolicies(t *testing.T) {
	blockedSum := func(policy Policy) (indoubt, lock float64, c *Cluster) {
		c, _ = newSpanCluster(t, policy, nil)
		loadInt(t, c, "bsrc", 100)
		loadInt(t, c, "cdst", 0)
		c.ArmCrashBeforeDecision("A")
		h, _ := c.Submit("A", "bsrc = bsrc - 40; cdst = cdst + 40")
		c.RunFor(30 * time.Second)
		if h.Status() != StatusPending {
			panic("decided despite coordinator crash")
		}
		c.SyncBlockedAccounting()
		reg := c.Metrics()
		for _, site := range []string{"A", "B", "C"} {
			l := metrics.L("site", site)
			indoubt += reg.Histogram("item.blocked.seconds", l, metrics.L("cause", causeInDoubt)).Sum()
			lock += reg.Histogram("item.blocked.seconds", l, metrics.L("cause", causeLock)).Sum()
		}
		t.Logf("policy=%v: blocked item-seconds indoubt=%.3f lock=%.3f", policy, indoubt, lock)
		return indoubt, lock, c
	}

	polyInDoubt, _, _ := blockedSum(PolicyPolyvalue)
	blockInDoubt, _, _ := blockedSum(PolicyBlocking)
	if polyInDoubt != 0 {
		t.Errorf("polyvalue policy accrued indoubt blocking: %gs", polyInDoubt)
	}
	// The blocking participants camp from wait-timeout until the run ends
	// (the coordinator never comes back): tens of simulated seconds.
	if blockInDoubt < 10 {
		t.Errorf("blocking policy indoubt sum = %gs, want >= 10s of camping", blockInDoubt)
	}
}

// TestBlockedAccountantBudgetForced is the budget half of the
// availability claim, deterministically: with MaxPolyBudget=1 a site's
// first stranded transaction still installs its polyvalue, but the
// second finds the budget spent and degrades to blocking 2PC — camping
// on its locks with cause=degraded until the outcome arrives.  The same
// schedule with no budget installs both polyvalues and accrues zero
// in-doubt/degraded time.  The sim clock makes the numbers exact; they
// are the blocked-item-seconds entries EXPERIMENTS.md quotes.
func TestBlockedAccountantBudgetForced(t *testing.T) {
	run := func(budget int) (indoubt, degraded float64) {
		c, _ := newSpanCluster(t, PolicyPolyvalue, func(cfg *Config) {
			cfg.MaxPolyBudget = budget
		})
		for _, item := range []string{"bsrc", "bsrc2"} {
			loadInt(t, c, item, 100)
		}
		for _, item := range []string{"cdst", "cdst2"} {
			loadInt(t, c, item, 0)
		}
		// Two disjoint transfers through the same doomed coordinator: the
		// crash point fires at the first decision, stranding both in wait
		// at B and C.
		c.ArmCrashBeforeDecision("A")
		h1, _ := c.Submit("A", "bsrc = bsrc - 10; cdst = cdst + 10")
		h2, _ := c.Submit("A", "bsrc2 = bsrc2 - 10; cdst2 = cdst2 + 10")
		c.RunFor(30 * time.Second)
		if h1.Status() != StatusPending || h2.Status() != StatusPending {
			t.Fatalf("budget=%d: statuses = %v/%v, want both pending", budget, h1.Status(), h2.Status())
		}
		c.SyncBlockedAccounting()
		reg := c.Metrics()
		for _, site := range []string{"A", "B", "C"} {
			l := metrics.L("site", site)
			indoubt += reg.Histogram("item.blocked.seconds", l, metrics.L("cause", causeInDoubt)).Sum()
			degraded += reg.Histogram("item.blocked.seconds", l, metrics.L("cause", causeDegraded)).Sum()
		}
		t.Logf("budget=%d: blocked item-seconds indoubt=%.3f degraded=%.3f", budget, indoubt, degraded)
		return indoubt, degraded
	}

	polyInDoubt, polyDegraded := run(0)
	budgetInDoubt, budgetDegraded := run(1)
	if polyInDoubt+polyDegraded != 0 {
		t.Errorf("unbudgeted polyvalue run accrued blocking: indoubt=%g degraded=%g",
			polyInDoubt, polyDegraded)
	}
	if budgetInDoubt != 0 {
		t.Errorf("budget degradation misattributed to indoubt: %g", budgetInDoubt)
	}
	// One stranded transaction per site degrades and camps from its wait
	// timeout until the run ends: tens of simulated seconds across B and C.
	if budgetDegraded < 10 {
		t.Errorf("budget-forced run degraded sum = %gs, want >= 10s of camping", budgetDegraded)
	}
}

// TestBlockedSpanOnOutcome checks the part.blocked span: a blocking
// participant that eventually learns the outcome records its camp with
// cause and resolution.
func TestBlockedSpanOnOutcome(t *testing.T) {
	c, spans := newSpanCluster(t, PolicyBlocking, nil)
	loadInt(t, c, "bsrc", 100)
	loadInt(t, c, "cdst", 0)
	// Crash AFTER the durable decision: participants block, then pull the
	// committed outcome from the restarted coordinator's log.
	if err := c.ArmCrash("A", CrashAfterDecisionLog); err != nil {
		t.Fatal(err)
	}
	c.Submit("A", "bsrc = bsrc - 40; cdst = cdst + 40")
	c.RunFor(2 * time.Second)
	c.Restart("A")
	c.RunFor(20 * time.Second)

	var blocked []trace.Span
	for _, sp := range spans.Spans() {
		if sp.Kind == "part.blocked" {
			blocked = append(blocked, sp)
		}
	}
	if len(blocked) == 0 {
		t.Fatal("no part.blocked spans")
	}
	for _, sp := range blocked {
		if sp.Attrs["cause"] != causeInDoubt {
			t.Errorf("blocked span cause = %q", sp.Attrs["cause"])
		}
		if sp.Attrs["outcome"] != "commit" {
			t.Errorf("blocked span outcome = %q", sp.Attrs["outcome"])
		}
		if sp.End <= sp.Start {
			t.Errorf("blocked span has no duration: %+v", sp)
		}
	}
	if got := readInt(t, c, "bsrc"); got != 60 {
		t.Errorf("bsrc = %d after recovery", got)
	}
}

// TestSpansDeterministic runs the same seeded scenario twice and
// requires byte-identical span streams — the vclock-driven guarantee
// the harness audits rely on.
func TestSpansDeterministic(t *testing.T) {
	run := func() []trace.Span {
		c, spans := newSpanCluster(t, PolicyPolyvalue, nil)
		loadInt(t, c, "acct1", 100)
		loadInt(t, c, "bacct2", 0)
		loadInt(t, c, "cacct3", 5)
		c.Submit("A", "acct1 = acct1 - 30; bacct2 = bacct2 + 30")
		c.Submit("B", "cacct3 = cacct3 * 2")
		c.RunFor(5 * time.Second)
		return spans.Spans()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("span counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.Kind != y.Kind || x.Site != y.Site || x.TID != y.TID ||
			x.Start != y.Start || x.End != y.End || x.ID != y.ID || x.Parent != y.Parent {
			t.Fatalf("span %d differs:\n%+v\n%+v", i, x, y)
		}
	}
}

// TestSpansOffIsFree pins the pay-for-what-you-use contract: with no
// span log configured the cluster records nothing and stamps no trace
// context (verified indirectly: the run behaves identically and the
// registry carries no trace series).
func TestSpansOffIsFree(t *testing.T) {
	c := newTestCluster(t, PolicyPolyvalue)
	loadInt(t, c, "acct1", 100)
	h, _ := c.Submit("A", "acct1 = acct1 - 1")
	c.RunFor(time.Second)
	if h.Status() != StatusCommitted {
		t.Fatalf("status = %v", h.Status())
	}
	for _, p := range c.Metrics().Snapshot().Points {
		if p.Name == "trace.spans.dropped" || p.Name == "trace.spans.retained" {
			t.Errorf("untraced cluster registered %s", p.Name)
		}
	}
}

// TestResidencyHistogram checks the per-site poly.residency.seconds
// series: installs that later reduce at a site observe their interval
// there.
func TestResidencyHistogram(t *testing.T) {
	c, _ := newSpanCluster(t, PolicyPolyvalue, nil)
	loadInt(t, c, "bsrc", 100)
	loadInt(t, c, "cdst", 0)
	c.ArmCrashBeforeDecision("A")
	c.Submit("A", "bsrc = bsrc - 40; cdst = cdst + 40")
	c.RunFor(2 * time.Second)
	c.Restart("A")
	c.RunFor(15 * time.Second)
	reg := c.Metrics()
	total := 0
	for _, site := range []string{"B", "C"} {
		total += reg.Histogram("poly.residency.seconds", metrics.L("site", site)).Count()
	}
	if total < 2 {
		t.Errorf("poly residency observations = %d, want >= 2 (bsrc at B, cdst at C)", total)
	}
}
