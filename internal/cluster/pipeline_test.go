package cluster

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/polyvalue"
	"repro/internal/protocol"
	"repro/internal/transport"
	"repro/internal/value"
)

// TestPipelinedNonConflictingTransactions: many transactions submitted
// without waiting for each other, over disjoint items, all commit
// concurrently — the protocol handles interleaved coordinator contexts.
func TestPipelinedNonConflictingTransactions(t *testing.T) {
	c, err := New(Config{
		Sites: []protocol.SiteID{"s0", "s1", "s2", "s3"},
		Net:   network.Config{Latency: 5 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	const n = 40
	for i := 0; i < n; i++ {
		if err := c.Load(fmt.Sprintf("a%d", i), polyvalue.Simple(value.Int(10))); err != nil {
			t.Fatal(err)
		}
		if err := c.Load(fmt.Sprintf("b%d", i), polyvalue.Simple(value.Int(0))); err != nil {
			t.Fatal(err)
		}
	}
	handles := make([]*Handle, n)
	for i := 0; i < n; i++ {
		h, err := c.Submit(c.Sites()[i%4],
			fmt.Sprintf("a%d = a%d - 1; b%d = b%d + 1", i, i, i, i))
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = h
		// No RunFor between submissions: all in flight simultaneously.
	}
	c.RunFor(5 * time.Second)
	for i, h := range handles {
		if h.Status() != StatusCommitted {
			t.Errorf("txn %d: %v (%s)", i, h.Status(), h.Reason())
		}
	}
	for i := 0; i < n; i++ {
		if v, ok := c.Read(fmt.Sprintf("a%d", i)).IsCertain(); !ok || !v.Equal(value.Int(9)) {
			t.Errorf("a%d = %v", i, c.Read(fmt.Sprintf("a%d", i)))
		}
		if v, ok := c.Read(fmt.Sprintf("b%d", i)).IsCertain(); !ok || !v.Equal(value.Int(1)) {
			t.Errorf("b%d = %v", i, c.Read(fmt.Sprintf("b%d", i)))
		}
	}
}

// TestPipelinedConflictingTransactions: a pile of transfers over a small
// hot set, all in flight at once, under no-wait locking: some commit,
// some abort, nothing is lost or double-applied.
func TestPipelinedConflictingTransactions(t *testing.T) {
	c, err := New(Config{
		Sites: []protocol.SiteID{"s0", "s1", "s2"},
		Net:   network.Config{Latency: 5 * time.Millisecond, Jitter: 2 * time.Millisecond, Seed: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	const items = 4
	for i := 0; i < items; i++ {
		if err := c.Load(fmt.Sprintf("x%d", i), polyvalue.Simple(value.Int(100))); err != nil {
			t.Fatal(err)
		}
	}
	type sub struct {
		a, b int
		h    *Handle
	}
	var subs []sub
	for i := 0; i < 24; i++ {
		a, b := i%items, (i+1)%items
		h, err := c.Submit(c.Sites()[i%3],
			fmt.Sprintf("x%d = x%d - 5; x%d = x%d + 5", a, a, b, b))
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, sub{a: a, b: b, h: h})
	}
	c.RunFor(10 * time.Second)
	committed := 0
	for _, s := range subs {
		switch s.h.Status() {
		case StatusCommitted:
			committed++
		case StatusPending:
			t.Fatalf("txn pending with no failures")
		}
	}
	if committed == 0 {
		t.Fatal("nothing committed")
	}
	// Conservation: total unchanged regardless of which subset committed.
	total := int64(0)
	for i := 0; i < items; i++ {
		v, ok := c.Read(fmt.Sprintf("x%d", i)).IsCertain()
		if !ok {
			t.Fatalf("x%d uncertain", i)
		}
		n, _ := value.AsInt(v)
		total += n
	}
	if total != items*100 {
		t.Errorf("total = %d, want %d (committed=%d)", total, items*100, committed)
	}
	t.Logf("pipelined conflicts: %d/%d committed", committed, len(subs))
}

// TestSimBatchingPreservesOutcomes: the same conflicting-transfer
// workload (fixed seed) run twice with sim-side message batching
// enabled is bit-for-bit deterministic, conserves money, settles with
// zero residual polyvalues even through a coordinator crash, and
// actually exercises the batch path (flush metrics advance).
func TestSimBatchingPreservesOutcomes(t *testing.T) {
	run := func() (map[string]int64, Stats, int64) {
		c, err := New(Config{
			Sites:    []protocol.SiteID{"s0", "s1", "s2"},
			Net:      network.Config{Latency: 5 * time.Millisecond, Jitter: 2 * time.Millisecond, Seed: 11},
			SimBatch: &transport.BatchParams{MaxCount: 8, MaxDelay: 2 * time.Millisecond},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		const items = 4
		for i := 0; i < items; i++ {
			if err := c.Load(fmt.Sprintf("y%d", i), polyvalue.Simple(value.Int(100))); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 24; i++ {
			if i == 10 {
				// One coordinator dies after logging its decision: the
				// outcome must still reach participants through batched
				// retransmissions and recovery.
				c.ArmCrashBeforeDecision("s1")
			}
			a, b := i%items, (i+1)%items
			if _, err := c.Submit(c.Sites()[i%3],
				fmt.Sprintf("y%d = y%d - 5; y%d = y%d + 5", a, a, b, b)); err != nil {
				t.Fatal(err)
			}
			c.RunFor(50 * time.Millisecond)
		}
		c.RunFor(5 * time.Second)
		for _, s := range c.Sites() {
			if c.IsDown(s) {
				c.Restart(s)
			}
		}
		c.RunFor(60 * time.Second)

		state := map[string]int64{}
		var total int64
		for i := 0; i < items; i++ {
			name := fmt.Sprintf("y%d", i)
			v, ok := c.Read(name).IsCertain()
			if !ok {
				t.Fatalf("%s uncertain at quiescence", name)
			}
			n, _ := value.AsInt(v)
			state[name] = n
			total += n
		}
		if total != items*100 {
			t.Errorf("total = %d, want %d", total, items*100)
		}
		if polys := c.PolyItems(); len(polys) != 0 {
			t.Errorf("residual polyvalues: %v", polys)
		}
		for _, v := range c.CheckInvariants() {
			t.Errorf("invariant violation: %s", v)
		}
		var flushes int64
		for _, reason := range []string{"count", "size", "delay", "drain"} {
			flushes += c.Metrics().Counter("transport.batch.flushes", metrics.L("reason", reason)).Value()
		}
		return state, c.Stats(), flushes
	}

	state1, stats1, flushes1 := run()
	state2, stats2, flushes2 := run()
	if flushes1 == 0 {
		t.Fatal("batching enabled but no batch flushes recorded")
	}
	if flushes1 != flushes2 || stats1 != stats2 {
		t.Errorf("batched runs diverged: flushes %d vs %d, stats %+v vs %+v",
			flushes1, flushes2, stats1, stats2)
	}
	for k, v := range state1 {
		if state2[k] != v {
			t.Errorf("state diverged at %s: %d vs %d", k, v, state2[k])
		}
	}
}

// TestQueriesConcurrentWithUpdates: read-only queries interleaved with a
// stream of updates never error and always return well-formed values.
func TestQueriesConcurrentWithUpdates(t *testing.T) {
	c := newTestCluster(t, PolicyPolyvalue)
	loadInt(t, c, "bx", 100)
	var queries []*QueryHandle
	for i := 0; i < 10; i++ {
		if _, err := c.Submit("A", "bx = bx + 1"); err != nil {
			t.Fatal(err)
		}
		q, err := c.Query("C", "bx * 2")
		if err != nil {
			t.Fatal(err)
		}
		queries = append(queries, q)
		c.RunFor(200 * time.Millisecond)
	}
	c.RunFor(5 * time.Second)
	for i, q := range queries {
		p, err, done := q.Result()
		if !done || err != nil {
			t.Fatalf("query %d: done=%v err=%v", i, done, err)
		}
		if _, ok := p.IsCertain(); !ok {
			t.Errorf("query %d returned uncertainty with no failures: %v", i, p)
		}
	}
}
