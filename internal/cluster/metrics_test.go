package cluster

import (
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/polyvalue"
	"repro/internal/protocol"
	"repro/internal/value"
)

// TestStatsViewMatchesRegistry: the legacy Stats struct is a view over
// the registry-backed counters — the two must always agree.
func TestStatsViewMatchesRegistry(t *testing.T) {
	c, _ := tracedCluster(t)
	if err := c.Load("bx", polyvalue.Simple(value.Int(1))); err != nil {
		t.Fatal(err)
	}
	c.ArmCrashBeforeDecision("A")
	_, _ = c.Submit("A", "bx = bx + 1")
	c.RunFor(2 * time.Second)
	c.Restart("A")
	c.RunFor(5 * time.Second)

	st := c.Stats()
	snap := c.Metrics().Snapshot()
	for _, row := range []struct {
		name string
		want int64
	}{
		{"txn.committed", st.Committed},
		{"txn.aborted", st.Aborted},
		{"txn.indoubt", st.InDoubt},
		{"poly.installs", st.PolyInstalls},
		{"poly.reductions", st.PolyReductions},
		{"txn.refused", st.Refused},
	} {
		if got := snap.Counter(row.name); got != row.want {
			t.Errorf("%s = %d, Stats view says %d", row.name, got, row.want)
		}
	}
}

// TestPolyvalueLifecycleMetrics: a coordinator crash installs polyvalues
// (population rises), repair reduces them (population returns to zero and
// every install/reduce pair lands in the lifetime histogram), and the
// trace carries correlatable per-item events.
func TestPolyvalueLifecycleMetrics(t *testing.T) {
	c, ring := tracedCluster(t)
	if err := c.Load("bx", polyvalue.Simple(value.Int(1))); err != nil {
		t.Fatal(err)
	}
	c.ArmCrashBeforeDecision("A")
	_, _ = c.Submit("A", "bx = bx + 1")
	c.RunFor(2 * time.Second)

	mid := c.Metrics().Snapshot()
	if n := mid.Counter("poly.installs"); n == 0 {
		t.Fatal("crash produced no polyvalue installs")
	}
	if pop := mid.Counter("poly.population"); pop == 0 {
		t.Error("population gauge should be nonzero while uncertain")
	}
	if got := int64(ring.Count("poly-install")); got != mid.Counter("poly.installs") {
		t.Errorf("trace poly-install events = %d, counter = %d", got, mid.Counter("poly.installs"))
	}

	c.Restart("A")
	c.RunFor(5 * time.Second)
	snap := c.Metrics().Snapshot()
	if pop := snap.Counter("poly.population"); pop != 0 {
		t.Errorf("population gauge = %d after settle, want 0", pop)
	}
	if snap.Counter("poly.reductions") == 0 {
		t.Error("repair produced no reductions")
	}
	lt, ok := snap.Get("poly.lifetime.seconds")
	if !ok || lt.Count == 0 {
		t.Fatal("no polyvalue lifetimes observed")
	}
	if lt.Min <= 0 {
		t.Errorf("lifetime min = %g, want > 0 (install and reduction are separated by repair)", lt.Min)
	}
	if got := int64(ring.Count("poly-reduce")); got == 0 {
		t.Error("no poly-reduce trace events")
	}
}

// TestPhaseHistograms: a clean commit populates the read, prepare and
// settle phase histograms; the wait phase records only on timeout or
// outcome delivery, which a clean remote commit also exercises.
func TestPhaseHistograms(t *testing.T) {
	c, _ := tracedCluster(t)
	if err := c.Load("bx", polyvalue.Simple(value.Int(1))); err != nil {
		t.Fatal(err)
	}
	h, _ := c.Submit("A", "bx = bx + 1")
	c.RunFor(2 * time.Second)
	if h.Status() != StatusCommitted {
		t.Fatal("setup failed")
	}
	snap := c.Metrics().Snapshot()
	for _, phase := range []string{"read", "prepare", "wait", "settle"} {
		p, ok := snap.Get("protocol.phase.seconds", metrics.L("phase", phase))
		if !ok || p.Count == 0 {
			t.Errorf("phase %q has no observations", phase)
			continue
		}
		if p.Sum <= 0 {
			t.Errorf("phase %q total latency = %g, want > 0", phase, p.Sum)
		}
	}
}

// TestSharedRegistryAggregates: two clusters reporting into one registry
// accumulate into the same series.
func TestSharedRegistryAggregates(t *testing.T) {
	reg := metrics.NewRegistry()
	mk := func() *Cluster {
		c, err := New(Config{
			Sites:   []protocol.SiteID{"A", "B"},
			Net:     network.Config{Latency: 5 * time.Millisecond},
			Metrics: reg,
			Placement: func(item string) protocol.SiteID {
				if item[0] == 'a' {
					return "A"
				}
				return "B"
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(c.Close)
		return c
	}
	c1, c2 := mk(), mk()
	for _, c := range []*Cluster{c1, c2} {
		if err := c.Load("bx", polyvalue.Simple(value.Int(1))); err != nil {
			t.Fatal(err)
		}
		h, _ := c.Submit("A", "bx = bx + 1")
		c.RunFor(time.Second)
		if h.Status() != StatusCommitted {
			t.Fatal("setup failed")
		}
	}
	if got := reg.Snapshot().Counter("txn.committed"); got != 2 {
		t.Errorf("shared txn.committed = %d, want 2", got)
	}
	if c1.Metrics() != reg || c2.Metrics() != reg {
		t.Error("Metrics() should expose the shared registry")
	}
}

// TestLatencyHistogramIsRegistrySeries: the legacy accessor and the
// registry expose the same histogram.
func TestLatencyHistogramIsRegistrySeries(t *testing.T) {
	c, _ := tracedCluster(t)
	if err := c.Load("bx", polyvalue.Simple(value.Int(1))); err != nil {
		t.Fatal(err)
	}
	_, _ = c.Submit("A", "bx = bx + 1")
	c.RunFor(time.Second)
	if c.LatencyHistogram() != c.Metrics().Histogram("txn.latency.seconds") {
		t.Error("LatencyHistogram should be the registry's txn.latency.seconds series")
	}
	if c.LatencyHistogram().Count() == 0 {
		t.Error("no latency observations after a commit")
	}
}
