package cluster

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/expr"
	"repro/internal/network"
	"repro/internal/polyvalue"
	"repro/internal/protocol"
	"repro/internal/value"
)

// TestRandomizedFailureSchedules is the cluster's randomized
// serial-equivalence property: for many seeds, run a transfer workload
// with random coordinator crashes, random participant crashes, random
// restarts and link cuts; after everything heals and settles, assert
//
//  1. no polyvalues remain (§3.3 liveness),
//  2. no dependency-table or await entries remain (§3.3 hygiene),
//  3. the final state equals the serial execution of exactly the
//     transactions whose coordinator reported commit, in submission
//     order (atomicity / serializability),
//  4. total money is conserved.
//
// Transactions are serialized (each settles before the next) so the
// serial oracle's order is well-defined; every nondeterministic choice
// comes from the seeded RNG, so failures are reproducible.
func TestRandomizedFailureSchedules(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runRandomSchedule(t, seed)
		})
	}
}

func runRandomSchedule(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	sites := []protocol.SiteID{"s0", "s1", "s2", "s3"}
	c, err := New(Config{
		Sites: sites,
		Net:   network.Config{Latency: 5 * time.Millisecond, Jitter: 2 * time.Millisecond, Seed: seed},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const items = 8
	state := map[string]value.V{}
	for i := 0; i < items; i++ {
		name := fmt.Sprintf("acct%d", i)
		state[name] = value.Int(100)
		if err := c.Load(name, polyvalue.Simple(value.Int(100))); err != nil {
			t.Fatal(err)
		}
	}

	type sub struct {
		src string
		h   *Handle
	}
	var subs []sub
	const txns = 40
	for i := 0; i < txns; i++ {
		// Random failure injection before each submission.
		switch rng.Intn(8) {
		case 0: // crash a random live site's next commit decision
			s := sites[rng.Intn(len(sites))]
			if !c.IsDown(s) {
				c.ArmCrashBeforeDecision(s)
			}
		case 1: // crash a site outright
			s := sites[rng.Intn(len(sites))]
			if !c.IsDown(s) {
				c.Crash(s)
			}
		case 2: // cut a random link
			a, b := sites[rng.Intn(len(sites))], sites[rng.Intn(len(sites))]
			if a != b {
				c.Partition(a, b)
			}
		case 3: // heal everything and restart one down site
			c.HealAll()
			for _, s := range sites {
				if c.IsDown(s) {
					c.Restart(s)
					break
				}
			}
		}
		// Submit from a live coordinator; if the schedule crashed every
		// site, restart one (a client has to run somewhere).
		allDown := true
		for _, s := range sites {
			if !c.IsDown(s) {
				allDown = false
				break
			}
		}
		if allDown {
			c.Restart(sites[rng.Intn(len(sites))])
		}
		coord := sites[rng.Intn(len(sites))]
		for c.IsDown(coord) {
			coord = sites[rng.Intn(len(sites))]
		}
		a := rng.Intn(items)
		b := (a + 1 + rng.Intn(items-1)) % items
		amt := 1 + rng.Intn(20)
		src := fmt.Sprintf("acct%d = acct%d - %d if acct%d >= %d; acct%d = acct%d + %d if acct%d >= %d",
			a, a, amt, a, amt, b, b, amt, a, amt)
		h, err := c.Submit(coord, src)
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, sub{src: src, h: h})
		c.RunFor(2 * time.Second)
	}

	// Global repair and settle.
	c.HealAll()
	for _, s := range sites {
		if c.IsDown(s) {
			c.Restart(s)
		}
	}
	c.RunFor(120 * time.Second)

	// 1. No polyvalues remain.
	if polys := c.PolyItems(); len(polys) != 0 {
		t.Fatalf("seed %d: unresolved polyvalues %v", seed, polys)
	}
	// 2. No dependency or await entries remain.
	for _, id := range sites {
		if tids := c.Store(id).DepTIDs(); len(tids) != 0 {
			t.Errorf("seed %d: site %s retains deps %v", seed, id, tids)
		}
		if aw := c.Store(id).Awaits(); len(aw) != 0 {
			t.Errorf("seed %d: site %s retains awaits %v", seed, id, aw)
		}
	}
	// 3. Serial equivalence over client-visible commits.  A transaction
	// whose coordinator crashed before reporting is pending at the
	// client; its actual fate was decided by recovery (presumed abort),
	// so pending == not applied.
	for _, s := range subs {
		if s.h.Status() != StatusCommitted {
			continue
		}
		prog := expr.MustParse(s.src)
		writes, err := prog.Eval(expr.MapEnv(state))
		if err != nil {
			t.Fatal(err)
		}
		for k, v := range writes {
			state[k] = v
		}
	}
	var total int64
	for i := 0; i < items; i++ {
		name := fmt.Sprintf("acct%d", i)
		got, ok := c.Read(name).IsCertain()
		if !ok {
			t.Fatalf("seed %d: %s uncertain", seed, name)
		}
		if !got.Equal(state[name]) {
			t.Errorf("seed %d: %s = %v, oracle %v", seed, name, got, state[name])
		}
		n, _ := value.AsInt(got)
		total += n
	}
	// 4. Conservation.
	if total != int64(items)*100 {
		t.Errorf("seed %d: total = %d, want %d", seed, total, items*100)
	}
	// 5. Global invariants at quiescence.
	for _, v := range c.CheckInvariants() {
		t.Errorf("seed %d: invariant violation: %s", seed, v)
	}
}
