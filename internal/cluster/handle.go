package cluster

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/polyvalue"
	"repro/internal/txn"
	"repro/internal/vclock"
)

// Status is the client-visible state of a submitted transaction.
type Status uint8

const (
	// StatusPending: no decision has reached the client yet.  If the
	// coordinator failed, the transaction may already be in doubt at
	// participants (inspect the stores / poly counts).
	StatusPending Status = iota
	// StatusCommitted: the coordinator decided commit.
	StatusCommitted
	// StatusAborted: the coordinator decided abort (refusal, lock
	// conflict, computation error, or ready-collection timeout).
	StatusAborted
)

// String names the status.
func (s Status) String() string {
	switch s {
	case StatusPending:
		return "pending"
	case StatusCommitted:
		return "committed"
	case StatusAborted:
		return "aborted"
	default:
		return fmt.Sprintf("status(%d)", uint8(s))
	}
}

// Handle tracks one submitted transaction from the client's side.
type Handle struct {
	TID txn.ID

	mu        sync.Mutex
	status    Status
	reason    string
	submitted vclock.Time
	decided   vclock.Time
	// done closes when the decision lands; Wait blocks on it.  Nil for
	// handles created before this field existed (tests constructing
	// Handle directly) — decide tolerates that.
	done chan struct{}
	// release returns the coordinator site's admission credit; invoked
	// exactly once, by decide or — for handles a coordinator crash left
	// pending forever — by releaseAdmission.  Nil when no gate applies.
	release func()
}

// Wait blocks until the transaction decides, or until timeout elapses
// (wall time; the node runtime's clock IS wall time).  It returns the
// final status and true, or the current status and false on timeout.
// Only meaningful in node mode — the simulated runtime decides handles
// synchronously as RunUntil executes events.
func (h *Handle) Wait(timeout time.Duration) (Status, bool) {
	h.mu.Lock()
	ch := h.done
	st := h.status
	h.mu.Unlock()
	if st != StatusPending || ch == nil {
		return st, st != StatusPending
	}
	select {
	case <-ch:
		return h.Status(), true
	case <-time.After(timeout):
		return h.Status(), false
	}
}

// Status returns the current client-visible status.
func (h *Handle) Status() Status {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.status
}

// Reason explains an abort ("" otherwise).
func (h *Handle) Reason() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.reason
}

// Latency returns the simulated time from submission to decision, or
// (0, false) while pending.
func (h *Handle) Latency() (vclock.Time, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.status == StatusPending {
		return 0, false
	}
	return h.decided - h.submitted, true
}

func (h *Handle) decide(st Status, reason string, at vclock.Time) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.status != StatusPending {
		return
	}
	h.status = st
	h.reason = reason
	h.decided = at
	if h.done != nil {
		close(h.done)
	}
	if r := h.release; r != nil {
		h.release = nil
		r()
	}
}

// releaseAdmission returns the admission credit without deciding the
// handle — the coordinator-crash path, where the handle legitimately
// stays pending but the credit must not leak.  Idempotent, and a no-op
// once decide has run.
func (h *Handle) releaseAdmission() {
	h.mu.Lock()
	r := h.release
	h.release = nil
	h.mu.Unlock()
	if r != nil {
		r()
	}
}

// QueryHandle tracks one read-only query.
type QueryHandle struct {
	mu     sync.Mutex
	done   bool
	result polyvalue.Poly
	err    error
	// doneCh closes on completion; nil unless built by newQueryHandle
	// (node mode).
	doneCh chan struct{}
}

func newQueryHandle() *QueryHandle { return &QueryHandle{doneCh: make(chan struct{})} }

// Wait blocks until the query completes or timeout elapses, returning
// the answer and whether it completed.  Node-mode counterpart of polling
// Result while the simulation runs.
func (q *QueryHandle) Wait(timeout time.Duration) (polyvalue.Poly, error, bool) {
	q.mu.Lock()
	ch := q.doneCh
	done := q.done
	q.mu.Unlock()
	if done || ch == nil {
		return q.Result()
	}
	select {
	case <-ch:
	case <-time.After(timeout):
	}
	return q.Result()
}

// Result returns the query's answer once available.  The answer may be a
// polyvalue (§3.4: the system can present uncertain outputs); callers
// needing certainty check IsCertain and decide to wait or re-ask.
func (q *QueryHandle) Result() (polyvalue.Poly, error, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.result, q.err, q.done
}

func (q *QueryHandle) complete(p polyvalue.Poly, err error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.done {
		return
	}
	q.done = true
	q.result = p
	q.err = err
	if q.doneCh != nil {
		close(q.doneCh)
	}
}
