package cluster

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/value"
)

// These tests pin the §5 application semantics end to end: the paper's
// argument is that reservations, funds transfer and inventory control
// stay *safe* while operating on uncertain data, because their guards
// quantify over every alternative.

// TestReservationsNeverOverbookUnderUncertainty: grants keep flowing
// against a polyvalued counter, and no outcome assignment can exceed
// capacity — the guard holds branch-by-branch.
func TestReservationsNeverOverbookUnderUncertainty(t *testing.T) {
	const capacity = 10
	c := newTestCluster(t, PolicyPolyvalue)
	loadInt(t, c, "bseats", 7)
	// An in-doubt +2 group booking makes the counter {7, 9}.
	c.ArmCrashBeforeDecision("A")
	_, _ = c.Submit("A", fmt.Sprintf("bseats = bseats + 2 if bseats + 2 <= %d", capacity))
	c.RunFor(2 * time.Second)
	if _, certain := c.Read("bseats").IsCertain(); certain {
		t.Fatal("setup: counter not uncertain")
	}
	// Sell until refused.
	granted := 0
	for i := 0; i < 8; i++ {
		h, _ := c.Submit("B", fmt.Sprintf("bseats = bseats + 1 if bseats + 1 <= %d", capacity))
		c.RunFor(time.Second)
		if h.Status() == StatusCommitted {
			granted++
		}
	}
	// Safety: under EVERY outcome the counter is within capacity.
	seats := c.Read("bseats")
	_, max, ok := seats.MinMax()
	if !ok || max > capacity {
		t.Errorf("overbooked: %v (max %g > %d)", seats, max, capacity)
	}
	// Liveness: sales did proceed during the failure.
	if granted == 0 {
		t.Error("no seats sold while in doubt")
	}
	// After repair, the final count is a single value ≤ capacity.
	c.Restart("A")
	c.RunFor(30 * time.Second)
	final := readInt(t, c, "bseats")
	if final > capacity {
		t.Errorf("final count %d exceeds capacity", final)
	}
	t.Logf("granted %d while in doubt; final %d/%d", granted, final, capacity)
}

// TestInventoryNeverShipsMissingStock: picks guard on the pessimistic
// branch, so no outcome assignment ships goods that might not exist.
func TestInventoryNeverShipsMissingStock(t *testing.T) {
	c := newTestCluster(t, PolicyPolyvalue)
	loadInt(t, c, "bstock", 5)
	loadInt(t, c, "cshipped", 0)
	// In-doubt +20 replenishment: stock is {5, 25}.
	c.ArmCrashBeforeDecision("A")
	_, _ = c.Submit("A", "bstock = bstock + 20")
	c.RunFor(2 * time.Second)
	// A pick of 10 must NOT ship unconditionally (only one branch has
	// stock) — its effect stays conditional.
	h, _ := c.Submit("C",
		"bstock = bstock - 10 if bstock >= 10; cshipped = cshipped + 10 if bstock >= 10")
	c.RunFor(2 * time.Second)
	if h.Status() != StatusCommitted {
		t.Fatalf("pick: %v (%s)", h.Status(), h.Reason())
	}
	shipped := c.Read("cshipped")
	if _, certain := shipped.IsCertain(); certain {
		t.Fatalf("conditional ship came out certain: %v", shipped)
	}
	// Resolve to the aborted branch: replenishment never happened, so
	// nothing was shipped and stock is intact.
	c.Restart("A")
	c.RunFor(30 * time.Second)
	if got := readInt(t, c, "cshipped"); got != 0 {
		t.Errorf("shipped %d units that never existed", got)
	}
	if got := readInt(t, c, "bstock"); got != 5 {
		t.Errorf("bstock = %d, want 5", got)
	}
}

// TestCreditAuthorizationPromptAndSafe: authorizations answer promptly
// and correctly during the failure, in both the clearly-sufficient and
// clearly-insufficient regimes; only the boundary case is uncertain.
func TestCreditAuthorizationPromptAndSafe(t *testing.T) {
	c := newTestCluster(t, PolicyPolyvalue)
	loadInt(t, c, "bbal", 500)
	c.ArmCrashBeforeDecision("A")
	_, _ = c.Submit("A", "bbal = bbal - 100")
	c.RunFor(2 * time.Second) // bbal is {400, 500}

	cases := []struct {
		amount  int
		certain bool
		approve bool
	}{
		{300, true, true},   // ≤ 400: yes either way
		{600, true, false},  // > 500: no either way
		{450, false, false}, // between: honestly uncertain
	}
	for i, tc := range cases {
		item := fmt.Sprintf("cauth%d", i)
		h, _ := c.Submit("C", fmt.Sprintf("%s = bbal >= %d", item, tc.amount))
		c.RunFor(2 * time.Second)
		if h.Status() != StatusCommitted {
			t.Fatalf("auth %d: %v (%s)", tc.amount, h.Status(), h.Reason())
		}
		got := c.Read(item)
		v, certain := got.IsCertain()
		if certain != tc.certain {
			t.Errorf("auth %d: certainty = %v, want %v (%v)", tc.amount, certain, tc.certain, got)
			continue
		}
		if certain && !v.Equal(value.Bool(tc.approve)) {
			t.Errorf("auth %d: %v, want %v", tc.amount, v, tc.approve)
		}
	}
}

// TestFundsConservationThroughPolytransactionChains: a chain of
// transfers over a polyvalued account conserves total money in every
// branch, not just in expectation.
func TestFundsConservationThroughPolytransactionChains(t *testing.T) {
	c := newTestCluster(t, PolicyPolyvalue)
	loadInt(t, c, "ba", 100)
	loadInt(t, c, "cb", 100)
	c.ArmCrashBeforeDecision("A")
	_, _ = c.Submit("A", "ba = ba - 30; cb = cb + 30")
	c.RunFor(2 * time.Second)
	// Two more transfers over the uncertain accounts.
	for i := 0; i < 2; i++ {
		h, _ := c.Submit("B", "ba = ba - 10 if ba >= 10; cb = cb + 10 if ba >= 10")
		c.RunFor(2 * time.Second)
		if h.Status() != StatusCommitted {
			t.Fatalf("transfer %d: %v (%s)", i, h.Status(), h.Reason())
		}
	}
	// Sum is 200 under every outcome: query the sum — it must be a
	// certain 200 even though both accounts are polyvalues.
	q, _ := c.Query("C", "ba + cb")
	c.RunFor(2 * time.Second)
	p, err, done := q.Result()
	if !done || err != nil {
		t.Fatalf("sum query: %v %v", err, done)
	}
	if v, certain := p.IsCertain(); !certain || !v.Equal(value.Int(200)) {
		t.Errorf("sum = %v, want certain 200", p)
	}
}
