package cluster

import (
	"testing"
	"time"

	"repro/internal/network"
	"repro/internal/polyvalue"
	"repro/internal/protocol"
	"repro/internal/value"
)

// TestOnePhaseLocalCommit: a transaction entirely on the coordinating
// site commits with ZERO network messages (the §2.1 lock-avoidance
// optimization).
func TestOnePhaseLocalCommit(t *testing.T) {
	c := newTestCluster(t, PolicyPolyvalue)
	loadInt(t, c, "ax", 5)
	loadInt(t, c, "ay", 1)
	before := c.NetStats().Sent
	h, _ := c.Submit("A", "ax = ax + ay; ay = ay * 2")
	c.RunFor(time.Second)
	if h.Status() != StatusCommitted {
		t.Fatalf("status = %v (%s)", h.Status(), h.Reason())
	}
	if got := c.NetStats().Sent; got != before {
		t.Errorf("one-phase commit sent %d messages", got-before)
	}
	if got := readInt(t, c, "ax"); got != 6 {
		t.Errorf("ax = %d", got)
	}
	if got := readInt(t, c, "ay"); got != 2 {
		t.Errorf("ay = %d", got)
	}
	if _, ok := h.Latency(); !ok {
		t.Error("latency unavailable after one-phase commit")
	}
}

func TestOnePhaseLockConflict(t *testing.T) {
	c := newTestCluster(t, PolicyPolyvalue)
	loadInt(t, c, "ax", 5)
	loadInt(t, c, "by", 5)
	// A slow distributed transaction holds ax...
	h1, _ := c.Submit("C", "ax = ax + by")
	c.RunFor(15 * time.Millisecond) // read locks taken at A by now
	// ...so a local one-phase transaction on ax refuses immediately.
	h2, _ := c.Submit("A", "ax = 0")
	c.RunFor(2 * time.Second)
	if h2.Status() != StatusAborted {
		t.Fatalf("one-phase over locked item: %v", h2.Status())
	}
	if h1.Status() != StatusCommitted {
		t.Fatalf("distributed txn: %v (%s)", h1.Status(), h1.Reason())
	}
	if got := readInt(t, c, "ax"); got != 10 {
		t.Errorf("ax = %d", got)
	}
}

func TestOnePhaseComputeError(t *testing.T) {
	c := newTestCluster(t, PolicyPolyvalue)
	if err := c.Load("ax", polyvalue.Simple(value.Str("s"))); err != nil {
		t.Fatal(err)
	}
	h, _ := c.Submit("A", "ax = ax * 2")
	c.RunFor(time.Second)
	if h.Status() != StatusAborted || h.Reason() == "" {
		t.Errorf("status = %v (%s)", h.Status(), h.Reason())
	}
}

// TestOnePhaseOverPolyvaluedItem: one-phase composes with §3.2 — local
// polytransactions work and record dependencies.
func TestOnePhaseOverPolyvaluedItem(t *testing.T) {
	c := newTestCluster(t, PolicyPolyvalue)
	if err := c.Load("ax", polyvalue.Uncertain("T9",
		polyvalue.Simple(value.Int(1)), polyvalue.Simple(value.Int(2)))); err != nil {
		t.Fatal(err)
	}
	h, _ := c.Submit("A", "ay = ax * 10")
	c.RunFor(time.Second)
	if h.Status() != StatusCommitted {
		t.Fatalf("status = %v (%s)", h.Status(), h.Reason())
	}
	out := c.Read("ay")
	if out.NumPairs() != 2 {
		t.Fatalf("ay = %v", out)
	}
	items, _ := c.Store("A").Deps("T9")
	found := false
	for _, it := range items {
		if it == "ay" {
			found = true
		}
	}
	if !found {
		t.Errorf("dependency of ay on T9 not recorded: %v", items)
	}
}

func TestOnePhaseDisabled(t *testing.T) {
	c, err := New(Config{
		Sites:              []protocol.SiteID{"A", "B"},
		Net:                network.Config{Latency: 5 * time.Millisecond},
		Placement:          func(string) protocol.SiteID { return "A" },
		DisableOnePhaseOpt: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if err := c.Load("x", polyvalue.Simple(value.Int(1))); err != nil {
		t.Fatal(err)
	}
	before := c.NetStats().Sent
	h, _ := c.Submit("A", "x = 2")
	c.RunFor(time.Second)
	if h.Status() != StatusCommitted {
		t.Fatalf("status = %v (%s)", h.Status(), h.Reason())
	}
	if c.NetStats().Sent == before {
		t.Error("disabled one-phase still skipped the protocol")
	}
}
