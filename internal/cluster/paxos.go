package cluster

// Paxos Commit decision plane (Config.DecisionPlane == PlanePaxos).
//
// In the default wal plane the commit/abort decision lives in exactly
// one place — the coordinator's WAL — and a crashed coordinator leaves
// participants in doubt until it returns.  This file replicates the
// decision across 2F+1 acceptor sites instead (Gray & Lamport,
// "Consensus on Transaction Commit"): one Paxos instance per
// participant-vote, commit iff every instance chooses Prepared.
//
// Fast path (ballot 0): sendPrepares registers the participant set at
// the acceptors (MsgPaxosBegin); each participant sends its vote
// straight to the acceptors alongside its ready/refuse (MsgPaxosAccept
// at ballot 0); acceptors durably accept and report to the coordinator
// (MsgPaxosAccepted); the coordinator finalizes once every instance has
// a quorum.  One extra message delay over plain 2PC, no extra forced
// writes on the coordinator's critical path.
//
// Takeover: any site that must learn the outcome without the
// coordinator — an in-doubt participant whose inquiries go unanswered
// (or whose failure detector suspects the coordinator), a coordinator
// whose fast path stalls, a recovered acceptor-coordinator — runs
// classic Paxos phase 1/2 at a ballot from its own site-partitioned
// series.  Phase 1 reveals anything ballot 0 achieved; revealed votes
// are re-proposed, free instances are proposed Aborted.  Safety rules
// pinned by internal/consensus: abort announceable on one chosen
// Aborted; commit only with the registrar's full set chosen Prepared;
// a leader never invents a Prepared vote.
//
// The refuse shortcut: a coordinator that aborts because a participant
// REFUSED may announce without consensus — the refuser's own ballot-0
// Aborted vote is the only ballot-0 value its instance will ever have,
// and takeover leaders only re-propose revealed votes, so commit is
// unchoosable forever.  Timeout- and deadline-aborts get no such
// shortcut: a Prepared vote may be sitting at the acceptors, and a
// takeover leader could legitimately drive the transaction to COMMIT —
// so the coordinator runs its own takeover and obeys what consensus
// chooses.

import (
	"sort"
	"strconv"
	"strings"

	"repro/internal/consensus"
	"repro/internal/protocol"
	"repro/internal/storage"
	"repro/internal/trace"
	"repro/internal/txn"
	"repro/internal/vclock"
)

// paxosTakeoverAttempt is the outcome-inquiry attempt at which an
// in-doubt participant stops waiting for the coordinator and starts a
// takeover (earlier when the failure detector already suspects it).
const paxosTakeoverAttempt = 3

// paxosLead is one transaction's live leader state on this site: the
// pure consensus.Leader plus the escalation timer that replaces it with
// a higher-ballot takeover when it stalls.
type paxosLead struct {
	ld *consensus.Leader
	// attempt counts takeover rounds, driving the escalation backoff
	// (0 while the ballot-0 fast path is still trusted).
	attempt int
	timer   vclock.TimerID
	// reason is the coordinator's intended abort reason, kept for the
	// finalize call once consensus settles.
	reason string
	// seed lists the instances a fresh takeover asserts (the full
	// participant set on the coordinator, self on a participant).
	seed []protocol.SiteID
	// span parents takeover/decision spans into the transaction's trace
	// (zero when tracing is off or the root is unknown).
	span trace.SpanID
}

func (s *Site) paxosPlane() bool { return s.c.cfg.DecisionPlane == PlanePaxos }

// paxosAcceptors returns the acceptor group — a pure function of the
// membership, so every site computes the same set.
func (s *Site) paxosAcceptors() []protocol.SiteID {
	return consensus.Acceptors(s.c.order, s.c.cfg.PaxosAcceptors)
}

func (s *Site) paxosQuorum() int { return consensus.Quorum(len(s.paxosAcceptors())) }

// siteIndex returns this site's position in the membership list, the
// basis of its private ballot series.
func (s *Site) siteIndex() int {
	for i, id := range s.c.order {
		if id == s.id {
			return i
		}
	}
	return 0
}

// ---------------------------------------------------------------------
// Coordinator side
// ---------------------------------------------------------------------

// paxosBegin opens the decision: the registrar goes to every acceptor
// and the ballot-0 collector starts tallying the 2b replies the
// participants' votes will generate.  Called from sendPrepares.
func (s *Site) paxosBegin(ctx *coordCtx) {
	acc := s.paxosAcceptors()
	for _, a := range acc {
		s.send(protocol.Message{
			Kind: protocol.MsgPaxosBegin, TID: ctx.tid, To: a,
			Coordinator: s.id, Participants: ctx.participants,
			TraceCtx: s.traceCtx(ctx),
		})
	}
	s.plead[ctx.tid] = &paxosLead{
		ld:   consensus.NewBallot0(ctx.tid, s.id, acc, ctx.participants),
		seed: ctx.participants,
		span: ctx.span,
	}
}

// paxosDecide routes a coordinator decision through consensus instead
// of announcing it directly.  Only refuse-aborts may finalize
// immediately (see the file comment); everything else waits for
// chosen-ness, with takeover escalation as the liveness engine.
func (s *Site) paxosDecide(ctx *coordCtx, committed bool, reason string) {
	pl, ok := s.plead[ctx.tid]
	if !ok {
		// No leader state (lost in a crash-restart with the context
		// somehow alive) — should not happen, but never block the
		// client on a missing map entry.
		s.finalizeDecision(ctx, committed, reason)
		return
	}
	if ctx.paxosPending {
		return // already driving a decision to consensus
	}
	if !committed && strings.HasPrefix(reason, "refused") {
		s.finalizeDecision(ctx, false, reason)
		return
	}
	pl.reason = reason
	ctx.paxosPending = true
	if c, done := pl.ld.Decided(); done {
		s.paxosFinalizeCoord(ctx, pl, c)
		return
	}
	if committed {
		// The participants' votes are en route to the acceptors; wait
		// for the tallies, with takeover as the stall repair.
		s.armPaxosEscalation(ctx.tid, pl)
		return
	}
	// Timeout/deadline abort: consensus decides, not presumption.
	s.paxosTakeover(ctx.tid, pl)
}

// paxosFinalizeCoord finalizes a live coordinator context with the
// consensus outcome, reconciling the reason when consensus overruled
// the coordinator's intent (a timeout-abort can end in COMMIT when the
// missing vote turns out to be Prepared at the acceptors).
func (s *Site) paxosFinalizeCoord(ctx *coordCtx, pl *paxosLead, committed bool) {
	reason := pl.reason
	if committed {
		reason = ""
	} else if reason == "" {
		reason = "paxos: aborted by consensus"
	}
	s.finalizeDecision(ctx, committed, reason)
}

// armPaxosEscalation schedules the next takeover round under the same
// capped backoff as outcome inquiries.  pl identity-checks against the
// map so a decision (which deletes the entry) or a crash (which resets
// the map) cancels the chain.
func (s *Site) armPaxosEscalation(tid txn.ID, pl *paxosLead) {
	pl.timer = s.after(s.retryBackoff(tid, pl.attempt+1), func() {
		cur, ok := s.plead[tid]
		if !ok || cur != pl {
			return
		}
		if _, done := pl.ld.Decided(); done {
			return
		}
		// Retransmit the current ballot's missing messages first; a
		// fresh takeover only when there is nothing left to resend
		// (ballot 0, or a superseded/stalled round).
		if re := pl.ld.Resend(); len(re) > 0 && pl.ld.Superseded() == 0 {
			for _, m := range re {
				m.TID = tid
				s.send(m)
			}
			s.armPaxosEscalation(tid, pl)
			return
		}
		s.paxosTakeover(tid, pl)
	})
}

// paxosTakeover replaces pl's leader with a fresh one at the next
// ballot of this site's series, above anything already seen.
func (s *Site) paxosTakeover(tid txn.ID, pl *paxosLead) {
	s.c.clk.Cancel(pl.timer)
	pl.attempt++
	floor := uint32(0)
	if pl.ld != nil {
		floor = pl.ld.Ballot()
		if sup := pl.ld.Superseded(); sup > floor {
			floor = sup
		}
	}
	ballot := consensus.BallotAbove(floor, s.siteIndex(), len(s.c.order))
	ld, msgs := consensus.NewTakeover(tid, s.id, s.paxosAcceptors(), ballot, pl.seed)
	pl.ld = ld
	s.c.paxosTakeovers.Inc()
	s.c.trace("%s paxos takeover of %s at ballot %d (attempt %d)", s.id, tid, ballot, pl.attempt)
	if s.spansOn() {
		s.pointSpan(spanPaxosTakeover, tid, pl.span, map[string]string{
			"ballot": strconv.FormatUint(uint64(ballot), 10),
		})
	}
	for _, m := range msgs {
		s.send(m)
	}
	s.armPaxosEscalation(tid, pl)
}

// ---------------------------------------------------------------------
// Participant side
// ---------------------------------------------------------------------

// paxosVote casts this participant's ballot-0 vote for its own instance
// directly at the acceptors — phase 2a of the fast path, sent together
// with the ready/refuse it mirrors.  msg is the prepare being answered
// (its From is the coordinator the acceptors' 2b replies go to).
func (s *Site) paxosVote(msg protocol.Message, vote protocol.Vote) {
	if !s.paxosPlane() {
		return
	}
	s.c.paxosVotes.Inc()
	for _, a := range s.paxosAcceptors() {
		s.send(protocol.Message{
			Kind: protocol.MsgPaxosAccept, TID: msg.TID, To: a,
			Ballot:      0,
			Coordinator: msg.From,
			PaxosState:  []protocol.PaxosInst{{Instance: s.id, Ballot: 0, Vote: vote}},
			TraceCtx:    msg.TraceCtx,
		})
	}
	if s.spansOn() {
		s.pointSpan(spanPaxosVote, msg.TID, trace.SpanID(msg.TraceCtx),
			map[string]string{"vote": vote.String()})
	}
}

// paxosInquire is the paxos-plane outcome-inquiry loop, replacing the
// wal plane's coordinator-only polling: inquiries alternate between the
// coordinator (it answers from its durable log) and the acceptors (they
// answer once a decision reached them), and after paxosTakeoverAttempt
// silent rounds — or as soon as the failure detector suspects the
// coordinator — the participant takes the decision over itself.  There
// is no presumed abort anywhere on this path; consensus is the only
// authority.
func (s *Site) paxosInquire(tid txn.ID, coordinator protocol.SiteID, attempt int) {
	acc := s.paxosAcceptors()
	target := coordinator
	if coordinator == "" || coordinator == s.id || attempt%2 == 0 {
		target = acc[(attempt/2)%len(acc)]
	}
	if target != s.id {
		s.send(protocol.Message{Kind: protocol.MsgOutcomeReq, TID: tid, To: target})
		if attempt > 1 {
			s.c.outcomeRetries.Inc()
		}
	}
	if _, leading := s.plead[tid]; !leading {
		orphaned := coordinator == "" || coordinator == s.id
		if orphaned || attempt >= paxosTakeoverAttempt || s.peerSuspected(coordinator) {
			pl := &paxosLead{seed: []protocol.SiteID{s.id}}
			s.plead[tid] = pl
			s.paxosTakeover(tid, pl)
		}
	}
	timer := s.after(s.retryBackoff(tid, attempt), func() {
		if _, known := s.store.Outcome(tid); known {
			return
		}
		s.armOutcomeRetryN(tid, coordinator, attempt+1)
	})
	s.retry[tid] = retryState{timer: timer, coordinator: coordinator, attempt: attempt}
}

// peerSuspected consults the transport's failure detector when one is
// layered in (guard.Detector wraps the node transport); without one,
// nobody is suspected and takeover waits out the attempt threshold.
func (s *Site) peerSuspected(id protocol.SiteID) bool {
	if id == "" || id == s.id {
		return false
	}
	d, ok := s.c.fab.(interface{ Suspected(protocol.SiteID) bool })
	return ok && d.Suspected(id)
}

// ---------------------------------------------------------------------
// Acceptor side
// ---------------------------------------------------------------------

// onPaxosBegin durably registers the transaction's participant set and
// coordinator (first write wins; duplicates append nothing).
func (s *Site) onPaxosBegin(msg protocol.Message) {
	if _, known := s.store.Outcome(msg.TID); known {
		return // decided already; registrar is dead weight
	}
	// A log failure is a durability panic inside walWrite.
	crashed, _ := s.walWrite(msg.TID, func() error {
		return s.store.SetPaxosMeta(msg.TID, string(msg.Coordinator), siteStrings(msg.Participants))
	})
	if crashed {
		return
	}
	s.armPaxosWatch(msg.TID)
}

// onPaxosPrepare is phase 1b: promise the ballot (monotonic, durable)
// and reveal the accepted state plus the registrar, or nack with the
// conflicting promise.  A decided transaction short-circuits to the
// decision itself.
func (s *Site) onPaxosPrepare(msg protocol.Message) {
	if committed, known := s.store.Outcome(msg.TID); known {
		s.send(protocol.Message{Kind: protocol.MsgPaxosDecision, TID: msg.TID, To: msg.From, Committed: committed})
		return
	}
	var got uint32
	crashed, _ := s.walWrite(msg.TID, func() error {
		var err error
		got, err = s.store.PaxosPromise(msg.TID, msg.Ballot)
		return err
	})
	if crashed {
		return
	}
	if got > msg.Ballot {
		s.c.paxosRejects.Inc()
		s.send(protocol.Message{Kind: protocol.MsgPaxosReject, TID: msg.TID, To: msg.From, Ballot: got})
		return
	}
	e, _ := s.store.PaxosState(msg.TID)
	s.send(protocol.Message{
		Kind: protocol.MsgPaxosPromise, TID: msg.TID, To: msg.From,
		Ballot:       msg.Ballot,
		Coordinator:  protocol.SiteID(e.Coordinator),
		Participants: siteIDs(e.Participants),
		PaxosState:   acceptedInsts(e),
	})
}

// onPaxosAccept is phase 2a: durably accept the proposed entries unless
// a higher ballot was promised.  Ballot-0 votes are additionally gated
// on the registrar being known — that pins the invariant "revealed
// state implies revealed participant set" takeover leaders rely on for
// commit decisions (the coordinator's escalation repairs the lost
// begin).
func (s *Site) onPaxosAccept(msg protocol.Message) {
	leader := msg.Coordinator
	if leader == "" {
		leader = msg.From
	}
	if committed, known := s.store.Outcome(msg.TID); known {
		s.send(protocol.Message{Kind: protocol.MsgPaxosDecision, TID: msg.TID, To: leader, Committed: committed})
		return
	}
	if len(msg.Participants) > 0 {
		// A takeover proposal that knows the registrar re-registers it
		// for acceptors that missed the begin (first write wins).
		_ = s.store.SetPaxosMeta(msg.TID, string(leader), siteStrings(msg.Participants))
	}
	if msg.Ballot == 0 {
		if e, ok := s.store.PaxosState(msg.TID); !ok || e.Coordinator == "" {
			return
		}
	}
	// Failpoint: the vote arrives and the acceptor dies before its
	// durable accept — the vote is lost here (F-1 more losses are
	// survivable).
	if s.maybeCrash(CrashBeforePaxosAccept, msg.TID) {
		return
	}
	accepted := true
	var conflict uint32
	crashed, _ := s.walWrite(msg.TID, func() error {
		for _, in := range msg.PaxosState {
			ok, c, err := s.store.PaxosAccept(msg.TID, string(in.Instance), msg.Ballot, uint8(in.Vote))
			if err != nil {
				return err
			}
			if !ok {
				accepted, conflict = false, c
				return nil
			}
		}
		return nil
	})
	if crashed {
		return
	}
	if !accepted {
		s.c.paxosRejects.Inc()
		s.send(protocol.Message{Kind: protocol.MsgPaxosReject, TID: msg.TID, To: leader, Ballot: conflict})
		return
	}
	s.c.paxosAccepts.Inc()
	s.armPaxosWatch(msg.TID)
	if s.spansOn() {
		insts := make([]string, 0, len(msg.PaxosState))
		for _, in := range msg.PaxosState {
			insts = append(insts, string(in.Instance))
		}
		s.pointSpan(spanPaxosAccept, msg.TID, trace.SpanID(msg.TraceCtx), map[string]string{
			"ballot":    strconv.FormatUint(uint64(msg.Ballot), 10),
			"instances": joinItems(insts),
		})
	}
	// Failpoint: accept durable, 2b unsent — the leader must hear from
	// a quorum elsewhere, or a takeover re-reads this state in phase 1.
	if s.maybeCrash(CrashAfterPaxosAccept, msg.TID) {
		return
	}
	echo := make([]protocol.PaxosInst, len(msg.PaxosState))
	for i, in := range msg.PaxosState {
		echo[i] = protocol.PaxosInst{Instance: in.Instance, Ballot: msg.Ballot, Vote: in.Vote}
	}
	s.send(protocol.Message{
		Kind: protocol.MsgPaxosAccepted, TID: msg.TID, To: leader,
		Ballot: msg.Ballot, PaxosState: echo,
	})
}

// ---------------------------------------------------------------------
// Leader replies and the decision
// ---------------------------------------------------------------------

func (s *Site) onPaxosPromise(msg protocol.Message) {
	pl, ok := s.plead[msg.TID]
	if !ok {
		return
	}
	for _, m := range pl.ld.OnPromise(msg.From, msg) {
		s.send(m)
	}
}

func (s *Site) onPaxosAccepted(msg protocol.Message) {
	pl, ok := s.plead[msg.TID]
	if !ok {
		return
	}
	if pl.ld.OnAccepted(msg.From, msg) {
		s.paxosDecided(msg.TID, pl)
	}
}

func (s *Site) onPaxosReject(msg protocol.Message) {
	pl, ok := s.plead[msg.TID]
	if !ok {
		return
	}
	pl.ld.OnReject(msg.Ballot)
}

// paxosDecided runs when this site's leader saw the decision quorum:
// finalize the live coordinator context if there is one, otherwise (a
// participant takeover, or a recovered coordinator with no client
// handle left) log the outcome, settle local state, and teach the
// acceptors and the original coordinator.
func (s *Site) paxosDecided(tid txn.ID, pl *paxosLead) {
	committed, _ := pl.ld.Decided()
	s.c.clk.Cancel(pl.timer)
	delete(s.plead, tid)
	s.c.paxosDecisions.Inc()
	if ctx, ok := s.coords[tid]; ok {
		s.paxosFinalizeCoord(ctx, pl, committed)
		return
	}
	crashed, _ := s.walWrite(tid, func() error {
		return s.store.SetOutcome(tid, committed)
	})
	if crashed {
		return
	}
	s.c.trace("%s paxos takeover decided %s: commit=%v", s.id, tid, committed)
	s.paxosAnnounce(tid, committed)
	if coord := pl.ld.Coordinator(); coord != "" && coord != s.id {
		s.send(protocol.Message{Kind: protocol.MsgPaxosDecision, TID: tid, To: coord, Committed: committed})
	}
	s.resolveOutcome(tid, committed)
}

// armPaxosWatch guards an acceptor holding undecided instance state
// against a lost announce: if nobody teaches it the outcome, it
// eventually drives the decision to consensus itself.  Paxos safety
// makes the re-derived outcome identical to any earlier one, and
// already-decided peers short-circuit phase 1 with the decision, so a
// late watchdog round converges in one message exchange.  The delay
// starts beyond every primary repair path's backoff — the watchdog is
// the GC of last resort, not a competing leader.
func (s *Site) armPaxosWatch(tid txn.ID) {
	if _, ok := s.pwatch[tid]; ok {
		return
	}
	s.pwatch[tid] = s.after(s.retryBackoff(tid, paxosTakeoverAttempt+2), func() {
		delete(s.pwatch, tid)
		e, ok := s.store.PaxosState(tid)
		if !ok {
			return // announced and cleared; nothing left to watch
		}
		if _, known := s.store.Outcome(tid); known {
			_ = s.store.ClearPaxos(tid)
			return
		}
		if _, live := s.coords[tid]; live {
			s.armPaxosWatch(tid) // the live coordinator is still driving
			return
		}
		if _, leading := s.plead[tid]; leading {
			s.armPaxosWatch(tid) // a takeover of ours is already underway
			return
		}
		seed := siteIDs(e.Participants)
		if len(seed) == 0 {
			// No registrar revealed here: seed from the accepted instances
			// themselves — every accepted instance names a genuine
			// participant, so proposing for (only) them is safe.
			for _, in := range acceptedInsts(e) {
				seed = append(seed, in.Instance)
			}
		}
		if len(seed) == 0 {
			// A bare promise with neither registrar nor accepted state:
			// some leader's phase 1 touched us and died before phase 2.
			// Whoever is in doubt drives its own takeover; just keep
			// watching until the decision (or the GC) reaches us.
			s.armPaxosWatch(tid)
			return
		}
		pl := &paxosLead{seed: seed}
		s.plead[tid] = pl
		s.paxosTakeover(tid, pl)
	})
}

// paxosAnnounce is the learn phase: tell every acceptor the outcome so
// it can answer inquiries from its durable log and garbage-collect its
// instance state.  Lost decisions are repaired by the next takeover
// (same outcome, by Paxos safety) or by the acceptors' own watchdogs,
// so no ack tracking is needed.
func (s *Site) paxosAnnounce(tid txn.ID, committed bool) {
	for _, a := range s.paxosAcceptors() {
		if a == s.id {
			_ = s.store.ClearPaxos(tid)
			continue
		}
		s.send(protocol.Message{Kind: protocol.MsgPaxosDecision, TID: tid, To: a, Committed: committed})
	}
}

// onPaxosDecision learns a decision someone else finalized: record it,
// settle any local in-doubt state, drop acceptor state, and stand down
// any leader of our own.
func (s *Site) onPaxosDecision(msg protocol.Message) {
	if prev, known := s.store.Outcome(msg.TID); known && prev != msg.Committed {
		s.c.trace("%s CONFLICTING paxos decision for %s: had %v, got %v", s.id, msg.TID, prev, msg.Committed)
		return
	}
	if pl, ok := s.plead[msg.TID]; ok {
		s.c.clk.Cancel(pl.timer)
		delete(s.plead, msg.TID)
	}
	if ctx, ok := s.coords[msg.TID]; ok {
		// A takeover beat the live coordinator to the decision.
		reason := ""
		if !msg.Committed {
			reason = "paxos: decided by takeover"
		}
		s.finalizeDecision(ctx, msg.Committed, reason)
		_ = s.store.ClearPaxos(msg.TID)
		return
	}
	s.resolveOutcome(msg.TID, msg.Committed)
	_ = s.store.ClearPaxos(msg.TID)
}

// paxosRecover resumes the decision plane after a crash: decided
// transactions shed their dead acceptor state, and a transaction this
// site coordinated (per the durable registrar) with no outcome resumes
// convergence through a takeover — in-doubt participants drive their
// own takeovers via paxosInquire, so this is the coordinator's half.
func (s *Site) paxosRecover() {
	for _, tid := range s.store.PaxosTxns() {
		if _, known := s.store.Outcome(tid); known {
			_ = s.store.ClearPaxos(tid)
			continue
		}
		e, ok := s.store.PaxosState(tid)
		if !ok || e.Coordinator != string(s.id) {
			// Passive acceptor state: leaders elsewhere drive it, but the
			// watchdog guards against every driver being gone.
			if ok {
				s.armPaxosWatch(tid)
			}
			continue
		}
		if _, live := s.coords[tid]; live {
			continue
		}
		if _, leading := s.plead[tid]; leading {
			continue
		}
		seed := siteIDs(e.Participants)
		if len(seed) == 0 {
			continue
		}
		pl := &paxosLead{seed: seed}
		s.plead[tid] = pl
		s.paxosTakeover(tid, pl)
	}
}

// ---------------------------------------------------------------------
// Small helpers
// ---------------------------------------------------------------------

func siteStrings(sites []protocol.SiteID) []string {
	out := make([]string, len(sites))
	for i, s := range sites {
		out[i] = string(s)
	}
	return out
}

func siteIDs(sites []string) []protocol.SiteID {
	out := make([]protocol.SiteID, len(sites))
	for i, s := range sites {
		out[i] = protocol.SiteID(s)
	}
	return out
}

// acceptedInsts flattens a storage entry's accepted votes for the wire,
// sorted by instance for deterministic encodings.
func acceptedInsts(e storage.PaxosEntry) []protocol.PaxosInst {
	insts := make([]string, 0, len(e.Accepted))
	for inst := range e.Accepted {
		insts = append(insts, inst)
	}
	sort.Strings(insts)
	out := make([]protocol.PaxosInst, 0, len(insts))
	for _, inst := range insts {
		a := e.Accepted[inst]
		out = append(out, protocol.PaxosInst{
			Instance: protocol.SiteID(inst), Ballot: a.Ballot, Vote: protocol.Vote(a.Vote),
		})
	}
	return out
}
