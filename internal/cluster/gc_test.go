package cluster

import (
	"testing"
	"time"

	"repro/internal/network"
	"repro/internal/polyvalue"
	"repro/internal/protocol"
	"repro/internal/value"
)

// TestOutcomeRecordsGarbageCollected: after a clean commit every site
// acknowledges the outcome, and once the TTL passes no site remembers it
// (§3.3: outcome bookkeeping "should be quickly deleted when no longer
// needed").
func TestOutcomeRecordsGarbageCollected(t *testing.T) {
	c := newTestCluster(t, PolicyPolyvalue)
	loadInt(t, c, "ax", 1)
	loadInt(t, c, "by", 1)
	h, _ := c.Submit("A", "ax = ax + by")
	c.RunFor(time.Second)
	if h.Status() != StatusCommitted {
		t.Fatal("setup failed")
	}
	// Immediately after commit the coordinator still remembers.
	if _, known := c.Store("A").Outcome(h.TID); !known {
		t.Fatal("outcome not recorded at coordinator")
	}
	// After the TTL (default 5s simulated) everyone has forgotten.
	c.RunFor(30 * time.Second)
	for _, id := range c.Sites() {
		if _, known := c.Store(id).Outcome(h.TID); known {
			t.Errorf("site %s still remembers %s", id, h.TID)
		}
	}
}

// TestOutcomeRetainedUntilInDoubtParticipantSettles: the coordinator
// must NOT forget a commit while some participant still needs it.
func TestOutcomeRetainedUntilInDoubtParticipantSettles(t *testing.T) {
	c := newTestCluster(t, PolicyPolyvalue)
	loadInt(t, c, "bsrc", 100)
	loadInt(t, c, "cdst", 0)
	// Lose the complete messages to both participants.
	c.sched.After(45*time.Millisecond, func() {
		c.Partition("A", "B")
		c.Partition("A", "C")
	})
	h, _ := c.Submit("A", "bsrc = bsrc - 40; cdst = cdst + 40")
	// Run far past the TTL with the partition still up.
	c.RunFor(60 * time.Second)
	if h.Status() != StatusCommitted {
		t.Fatal("setup failed")
	}
	if _, known := c.Store("A").Outcome(h.TID); !known {
		t.Fatal("coordinator forgot a commit that in-doubt participants still need")
	}
	// Heal: participants fetch the outcome, settle, ack; then GC runs.
	c.HealAll()
	c.RunFor(60 * time.Second)
	if got := readInt(t, c, "bsrc"); got != 60 {
		t.Errorf("bsrc = %d", got)
	}
	if _, known := c.Store("A").Outcome(h.TID); known {
		t.Error("outcome survived GC after all participants settled")
	}
}

// TestOutcomeGCDisabled: negative TTL keeps records forever.
func TestOutcomeGCDisabled(t *testing.T) {
	c, err := New(Config{
		Sites:      []protocol.SiteID{"A", "B"},
		Net:        network.Config{Latency: 10 * time.Millisecond},
		OutcomeTTL: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if err := c.Load("x", polyvalue.Simple(value.Int(1))); err != nil {
		t.Fatal(err)
	}
	h, _ := c.Submit("A", "x = x + 1")
	c.RunFor(60 * time.Second)
	if h.Status() != StatusCommitted {
		t.Fatal("setup failed")
	}
	coord := c.Placement("x")
	_ = coord
	if _, known := c.Store("A").Outcome(h.TID); !known {
		t.Error("outcome forgotten with GC disabled")
	}
}

// TestWALAutoCheckpoint: a busy site's log stays bounded.
func TestWALAutoCheckpoint(t *testing.T) {
	c, err := New(Config{
		Sites:           []protocol.SiteID{"A", "B"},
		Net:             network.Config{Latency: time.Millisecond},
		CheckpointBytes: 4 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if err := c.Load("x", polyvalue.Simple(value.Int(0))); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		h, _ := c.Submit("A", "x = x + 1")
		c.RunFor(time.Second)
		if h.Status() != StatusCommitted {
			t.Fatalf("txn %d: %v", i, h.Status())
		}
	}
	owner := c.Placement("x")
	size := c.Store(owner).WALSize()
	if size > 64<<10 {
		t.Errorf("WAL grew to %d bytes despite 4KiB checkpoint threshold", size)
	}
	// And the data survives a crash/restart cycle post-checkpoint.
	c.Crash(owner)
	c.Restart(owner)
	c.RunFor(time.Second)
	if v, ok := c.Read("x").IsCertain(); !ok || !v.Equal(value.Int(300)) {
		t.Errorf("x after checkpointed recovery = %v", c.Read("x"))
	}
}
