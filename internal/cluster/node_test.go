package cluster

import (
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/polyvalue"
	"repro/internal/protocol"
	"repro/internal/transport"
	"repro/internal/value"
)

// nodeHarness is a 3-site cluster where each site is its own Cluster
// instance over its own TCP transport — in-process stand-ins for three
// polynode OS processes, sharing nothing but sockets and WAL files.
type nodeHarness struct {
	t     *testing.T
	dir   string
	peers map[protocol.SiteID]string
	nodes map[protocol.SiteID]*Cluster
}

var nodeSites = []protocol.SiteID{"A", "B", "C"}

// nodePlacement pins the bank accounts away from the coordinator: A
// coordinates, B owns acct1, C owns acct2.
func nodePlacement(item string) protocol.SiteID {
	switch item {
	case "acct1":
		return "B"
	case "acct2":
		return "C"
	}
	return "A"
}

func newNodeHarness(t *testing.T) *nodeHarness {
	t.Helper()
	h := &nodeHarness{
		t:     t,
		dir:   t.TempDir(),
		peers: map[protocol.SiteID]string{},
		nodes: map[protocol.SiteID]*Cluster{},
	}
	lns := map[protocol.SiteID]net.Listener{}
	for _, id := range nodeSites {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		lns[id] = ln
		h.peers[id] = ln.Addr().String()
	}
	for _, id := range nodeSites {
		h.start(id, lns[id])
	}
	t.Cleanup(func() {
		for _, n := range h.nodes {
			if n != nil {
				n.Close()
			}
		}
	})
	return h
}

// start boots (or re-boots) one site's node over the given listener, or
// over a fresh bind of its known address when ln is nil.
func (h *nodeHarness) start(id protocol.SiteID, ln net.Listener) *Cluster {
	h.t.Helper()
	if ln == nil {
		var err error
		// The previous process's socket may still be tearing down.
		for i := 0; i < 50; i++ {
			ln, err = net.Listen("tcp", h.peers[id])
			if err == nil {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		if err != nil {
			h.t.Fatalf("rebind %s: %v", h.peers[id], err)
		}
	}
	fab := transport.NewTCPWithListener(transport.TCPConfig{
		Self:       id,
		Peers:      h.peers,
		BackoffMin: 5 * time.Millisecond,
		BackoffMax: 100 * time.Millisecond,
		Seed:       int64(len(id)),
	}, ln)
	node, err := NewNode(Config{
		Sites:         nodeSites,
		WaitTimeout:   100 * time.Millisecond,
		ReadyTimeout:  500 * time.Millisecond,
		RetryInterval: 100 * time.Millisecond,
		Placement:     nodePlacement,
		DataDir:       h.dir,
	}, id, fab)
	if err != nil {
		h.t.Fatalf("NewNode(%s): %v", id, err)
	}
	h.nodes[id] = node
	return node
}

// kill simulates an abrupt process death for a site: its node (sites,
// wall clock, transport, WAL handle) is torn down.
func (h *nodeHarness) kill(id protocol.SiteID) {
	h.nodes[id].Close()
	h.nodes[id] = nil
}

// read fetches an item from its owning site's store.
func (h *nodeHarness) read(item string) polyvalue.Poly {
	return h.nodes[nodePlacement(item)].Read(item)
}

// certainInt polls until item holds a certain value, and returns it.
func (h *nodeHarness) certainInt(item string, within time.Duration) (int64, bool) {
	h.t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		if v, ok := h.read(item).IsCertain(); ok {
			if iv, ok := v.(value.Int); ok {
				return int64(iv), true
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	return 0, false
}

// waitValue polls until item settles at the wanted certain value.
func (h *nodeHarness) waitValue(item string, want int64, within time.Duration) {
	h.t.Helper()
	deadline := time.Now().Add(within)
	var last polyvalue.Poly
	for time.Now().Before(deadline) {
		last = h.read(item)
		if v, ok := last.IsCertain(); ok {
			if iv, ok := v.(value.Int); ok && int64(iv) == want {
				return
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	h.t.Fatalf("%s never settled at %d; last value %v", item, want, last)
}

func transferSrc(amount int) string {
	return fmt.Sprintf("acct1 = acct1 - %d if acct1 >= %d; acct2 = acct2 + %d if acct1 >= %d",
		amount, amount, amount, amount)
}

// TestNodeClusterCommit runs a bank transfer end-to-end across three
// TCP-connected nodes: coordinator A, participants B and C.
func TestNodeClusterCommit(t *testing.T) {
	h := newNodeHarness(t)
	if err := h.nodes["B"].Load("acct1", polyvalue.Simple(value.Int(100))); err != nil {
		t.Fatalf("load acct1: %v", err)
	}
	if err := h.nodes["C"].Load("acct2", polyvalue.Simple(value.Int(100))); err != nil {
		t.Fatalf("load acct2: %v", err)
	}

	hd, err := h.nodes["A"].Submit("A", transferSrc(30))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	st, done := hd.Wait(10 * time.Second)
	if !done || st != StatusCommitted {
		t.Fatalf("status = %v (done=%v, reason=%q)", st, done, hd.Reason())
	}
	// The decision reaches the handle before the Complete messages reach
	// the participants, so poll for the updated values.
	h.waitValue("acct1", 70, 5*time.Second)
	h.waitValue("acct2", 130, 5*time.Second)
}

// TestNodeClusterKillCoordinatorMidCommit is the paper's critical
// scenario over real sockets: the coordinator dies after collecting
// every ready but before the decision leaves it.  The participants'
// wait phases time out and they install polyvalues — items stay
// readable, uncertainty explicit — then the coordinator restarts from
// its WAL, answers the participants' outcome requests (presumed abort),
// and the polyvalues reduce to certain values conserving the total.
func TestNodeClusterKillCoordinatorMidCommit(t *testing.T) {
	h := newNodeHarness(t)
	if err := h.nodes["B"].Load("acct1", polyvalue.Simple(value.Int(100))); err != nil {
		t.Fatalf("load acct1: %v", err)
	}
	if err := h.nodes["C"].Load("acct2", polyvalue.Simple(value.Int(100))); err != nil {
		t.Fatalf("load acct2: %v", err)
	}

	// Arm the failpoint and submit; the coordinator will crash at the
	// moment it would decide COMMIT.
	h.nodes["A"].ArmCrashBeforeDecision("A")
	if _, err := h.nodes["A"].Submit("A", transferSrc(30)); err != nil {
		t.Fatalf("submit: %v", err)
	}

	// Participants' wait phases must time out and install polyvalues.
	waitPoly := func(site protocol.SiteID, item string) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if _, certain := h.read(item).IsCertain(); !certain {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("%s never went polyvalued at %s", item, site)
	}
	waitPoly("B", "acct1")
	waitPoly("C", "acct2")

	// Both alternatives of the polyvalue must conserve the total.
	for _, item := range []string{"acct1", "acct2"} {
		p := h.read(item)
		if got := p.NumPairs(); got < 2 {
			t.Fatalf("%s polyvalue has %d alternatives, want >= 2: %v", item, got, p)
		}
	}

	// Kill the dead coordinator's process remains and restart it over
	// the same WAL directory.
	h.kill("A")
	h.start("A", nil)

	// The participants' outcome-request loops now reach the restarted
	// coordinator, which never logged an outcome: presumed abort.  Both
	// polyvalues must reduce to their pre-transfer values.
	v1, ok1 := h.certainInt("acct1", 15*time.Second)
	v2, ok2 := h.certainInt("acct2", 15*time.Second)
	if !ok1 || !ok2 {
		t.Fatalf("polyvalues never reduced (acct1 certain=%v, acct2 certain=%v)", ok1, ok2)
	}
	if v1 != 100 || v2 != 100 {
		t.Errorf("after presumed abort: acct1=%d acct2=%d, want 100/100", v1, v2)
	}
	if v1+v2 != 200 {
		t.Errorf("conservation violated: %d + %d != 200", v1, v2)
	}
}

// TestNodeClusterQuery runs a read-only query through a node, including
// the polyvalued-answer path while a transaction is in doubt.
func TestNodeClusterQuery(t *testing.T) {
	h := newNodeHarness(t)
	if err := h.nodes["B"].Load("acct1", polyvalue.Simple(value.Int(40))); err != nil {
		t.Fatalf("load: %v", err)
	}
	if err := h.nodes["C"].Load("acct2", polyvalue.Simple(value.Int(60))); err != nil {
		t.Fatalf("load: %v", err)
	}
	qh, err := h.nodes["A"].Query("A", "acct1 + acct2")
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	p, qerr, done := qh.Wait(10 * time.Second)
	if !done || qerr != nil {
		t.Fatalf("query done=%v err=%v", done, qerr)
	}
	v, certain := p.IsCertain()
	if !certain || v != value.Int(100) {
		t.Fatalf("query answer = %v (certain=%v), want 100", p, certain)
	}
}

// TestNodeRejectsBadConfig covers constructor validation.
func TestNodeRejectsBadConfig(t *testing.T) {
	if _, err := NewNode(Config{Sites: nodeSites}, "A", nil); err == nil {
		t.Error("nil transport accepted")
	}
	ln, _ := net.Listen("tcp", "127.0.0.1:0")
	fab := transport.NewTCPWithListener(transport.TCPConfig{
		Self:  "Z",
		Peers: map[protocol.SiteID]string{"Z": ln.Addr().String()},
	}, ln)
	defer fab.Close()
	if _, err := NewNode(Config{Sites: nodeSites}, "Z", fab); err == nil {
		t.Error("self outside membership accepted")
	}
	if _, err := NewNode(Config{}, "A", fab); err == nil {
		t.Error("empty membership accepted")
	}
}
