package cluster

import (
	"testing"
	"time"

	"repro/internal/polyvalue"
	"repro/internal/value"
)

func TestCheckInvariantsHealthy(t *testing.T) {
	c := newTestCluster(t, PolicyPolyvalue)
	loadInt(t, c, "bx", 1)
	h, _ := c.Submit("A", "bx = 2")
	c.RunFor(time.Second)
	if h.Status() != StatusCommitted {
		t.Fatal("setup failed")
	}
	if v := c.CheckInvariants(); len(v) != 0 {
		t.Errorf("healthy cluster reports violations: %v", v)
	}
}

func TestCheckInvariantsHealthyWithResolvedFailure(t *testing.T) {
	c := newTestCluster(t, PolicyPolyvalue)
	loadInt(t, c, "bx", 1)
	c.ArmCrashBeforeDecision("A")
	_, _ = c.Submit("A", "bx = 2")
	c.RunFor(2 * time.Second)
	c.Restart("A")
	c.RunFor(30 * time.Second)
	if v := c.CheckInvariants(); len(v) != 0 {
		t.Errorf("settled cluster reports violations: %v", v)
	}
}

// TestCheckInvariantsDetectsUncoveredDependency: a polyvalue smuggled in
// without a dependency-table entry is flagged — the checker would catch
// a §3.3 bookkeeping regression.
func TestCheckInvariantsDetectsUncoveredDependency(t *testing.T) {
	c := newTestCluster(t, PolicyPolyvalue)
	// Load installs directly, bypassing the protocol's AddDepItem.
	p := polyvalue.Uncertain("TX", polyvalue.Simple(value.Int(1)), polyvalue.Simple(value.Int(2)))
	if err := c.Load("bx", p); err != nil {
		t.Fatal(err)
	}
	v := c.CheckInvariants()
	if len(v) == 0 {
		t.Fatal("uncovered dependency not detected")
	}
}

// TestCheckInvariantsDetectsStaleAwait: an await entry for a known
// outcome is flagged.
func TestCheckInvariantsDetectsStaleAwait(t *testing.T) {
	c := newTestCluster(t, PolicyPolyvalue)
	st := c.Store("B")
	if err := st.SetAwait("TX", "A"); err != nil {
		t.Fatal(err)
	}
	if err := st.SetOutcome("TX", true); err != nil {
		t.Fatal(err)
	}
	v := c.CheckInvariants()
	found := false
	for _, s := range v {
		if len(s) > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("stale await not detected")
	}
}
