package cluster

import (
	"errors"

	"repro/internal/value"
)

// errSiteDown reports a query or submission landing on a crashed site.
var errSiteDown = errors.New("cluster: site is down")

// errReadTimeout reports a query that could not gather its inputs before
// the read deadline (some owning site unreachable).
var errReadTimeout = errors.New("cluster: read timeout")

// ErrStillUncertain reports a certain-mode query whose answer was still a
// polyvalue when its deadline expired (§3.4: the caller chose to wait for
// the uncertainty to resolve, and it did not resolve in time).  The
// handle still carries the uncertain answer.
var ErrStillUncertain = errors.New("cluster: answer still uncertain at deadline")

// ErrOverload reports work shed by the overload-protection plane: a
// submission over the site's admission cap, or (node mode) a query
// arriving at a full site inbox.  Nothing was started — the caller may
// back off and retry.
var ErrOverload = errors.New("cluster: overloaded, request shed")

// reasonDeadline is the abort reason for transactions whose end-to-end
// deadline expired.
const reasonDeadline = "deadline exceeded"

// nilValue is the default content of never-written items.
func nilValue() value.V { return value.Nil{} }
