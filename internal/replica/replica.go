// Package replica makes the paper's §3 replication note concrete: "an
// item that is replicated at several sites can be viewed as a set of
// individual items, one for each site."
//
// A logical item x replicated k ways becomes physical items x_r0 …
// x_r{k-1}, placed on distinct sites.  Two rewrite strategies exist:
//
//   - Rewrite: the classic write-all / read-one form.  Every write
//     updates all k replicas atomically (they are just k items in one
//     transaction, so the polyvalue machinery applies unchanged) and
//     every read targets one chosen replica.  Reads survive any k-1
//     site failures; writes survive none.
//
//   - RewritePlan: the quorum form used by the cluster runtime when
//     Config.Replication is set.  The coordinator probes all k replicas,
//     picks the newest replica (by version) for each read and any W
//     responsive replicas for each write, and rewrites against that
//     plan — so writes survive k−W site failures and reads survive k−R,
//     with W+R > k guaranteeing every read quorum overlaps every write
//     quorum.  Replicas left out of a write quorum are caught up by the
//     cluster's anti-entropy plane, not by the transaction.
//
// Polyvalues and replication compose: an interrupted write leaves
// polyvalues on the written replicas, and each reduces independently
// when the outcome arrives — by coordinator contact or by gossip.
package replica

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/expr"
	"repro/internal/protocol"
)

// Marker separates the logical name from the replica index.  It is
// chosen from the expression language's identifier alphabet so physical
// names remain valid identifiers.
const Marker = "_r"

// Name returns the physical name of logical item's i-th replica.
func Name(logical string, i int) string {
	return logical + Marker + strconv.Itoa(i)
}

// Logical splits a physical name into its logical item and replica
// index; ok is false for names without a replica suffix.
func Logical(physical string) (logical string, i int, ok bool) {
	idx := strings.LastIndex(physical, Marker)
	if idx <= 0 {
		return "", 0, false
	}
	n, err := strconv.Atoi(physical[idx+len(Marker):])
	if err != nil || n < 0 {
		return "", 0, false
	}
	return physical[:idx], n, true
}

// CheckName rejects logical item names the replica layer would misparse:
// a user item named "audit_r3" is indistinguishable from replica 3 of
// "audit", so Name/Logical would not round-trip and placement, version
// digests and anti-entropy value copies would all attribute it to the
// wrong logical item.  Every rewrite entry point calls this on every
// logical name it touches.
func CheckName(logical string) error {
	if l, i, ok := Logical(logical); ok {
		return fmt.Errorf("replica: logical item %q collides with the replica namespace (parses as replica %d of %q); rename it or drop the %s<digits> suffix", logical, i, l, Marker)
	}
	return nil
}

// checkProgramNames validates every logical name a program mentions.
func checkProgramNames(p expr.Program) error {
	for _, item := range p.Items() {
		if err := CheckName(item); err != nil {
			return err
		}
	}
	return nil
}

// Rewrite compiles a logical-item program into a physical write-all /
// read-one program: every read references replica readFrom, every
// written item is assigned at all k replicas.  Statement guards are
// rewritten like other reads.  Logical names that collide with the
// replica namespace (see CheckName) are rejected.
func Rewrite(p expr.Program, k, readFrom int) (expr.Program, error) {
	if k < 1 {
		return expr.Program{}, fmt.Errorf("replica: k must be ≥ 1, got %d", k)
	}
	if readFrom < 0 || readFrom >= k {
		return expr.Program{}, fmt.Errorf("replica: readFrom %d out of range [0,%d)", readFrom, k)
	}
	if err := checkProgramNames(p); err != nil {
		return expr.Program{}, err
	}
	var sb strings.Builder
	for si, stmt := range p.Stmts {
		rhs := rewriteNode(stmt.Expr, readFrom)
		var guard string
		if stmt.Guard != nil {
			guard = " if " + rewriteNode(stmt.Guard, readFrom)
		}
		for i := 0; i < k; i++ {
			if si > 0 || i > 0 {
				sb.WriteString("; ")
			}
			sb.WriteString(Name(stmt.Target, i))
			sb.WriteString(" = ")
			sb.WriteString(rhs)
			sb.WriteString(guard)
		}
	}
	return expr.Parse(sb.String())
}

// Plan assigns chosen replicas per logical item for a quorum rewrite:
// each read is served by one replica (the newest by version, chosen by
// the coordinator's probe) and each write lands on any W responsive
// replicas.
type Plan struct {
	// Reads maps each logical item read by the program to the replica
	// index serving the read.
	Reads map[string]int
	// Writes maps each logical item written by the program to the
	// replica indices receiving the write, in ascending order.
	Writes map[string][]int
}

// RewritePlan compiles a logical-item program against an explicit
// replica plan: reads reference the plan's chosen read replica and each
// written item is assigned at exactly the plan's write replicas.  Every
// logical item the program mentions must be covered by the plan.
func RewritePlan(p expr.Program, plan Plan) (expr.Program, error) {
	if err := checkProgramNames(p); err != nil {
		return expr.Program{}, err
	}
	for _, r := range p.ReadSet() {
		if _, ok := plan.Reads[r]; !ok {
			return expr.Program{}, fmt.Errorf("replica: plan has no read replica for %q", r)
		}
	}
	for _, w := range p.WriteSet() {
		if len(plan.Writes[w]) == 0 {
			return expr.Program{}, fmt.Errorf("replica: plan has no write replicas for %q", w)
		}
	}
	var sb strings.Builder
	first := true
	for _, stmt := range p.Stmts {
		rhs := rewritePlanNode(stmt.Expr, plan.Reads)
		var guard string
		if stmt.Guard != nil {
			guard = " if " + rewritePlanNode(stmt.Guard, plan.Reads)
		}
		for _, i := range plan.Writes[stmt.Target] {
			if !first {
				sb.WriteString("; ")
			}
			first = false
			sb.WriteString(Name(stmt.Target, i))
			sb.WriteString(" = ")
			sb.WriteString(rhs)
			sb.WriteString(guard)
		}
	}
	return expr.Parse(sb.String())
}

// RewriteExpr compiles a logical read-only expression to read from the
// given replica.
func RewriteExpr(src string, readFrom int) (string, error) {
	node, err := expr.ParseExpr(src)
	if err != nil {
		return "", err
	}
	if err := checkNodeNames(node); err != nil {
		return "", err
	}
	return rewriteNode(node, readFrom), nil
}

// checkNodeNames validates every item reference in an expression tree.
func checkNodeNames(n expr.Node) error {
	switch x := n.(type) {
	case expr.Ref:
		return CheckName(x.Name)
	case expr.Unary:
		return checkNodeNames(x.X)
	case expr.Binary:
		if err := checkNodeNames(x.L); err != nil {
			return err
		}
		return checkNodeNames(x.R)
	case expr.Call:
		for _, a := range x.Args {
			if err := checkNodeNames(a); err != nil {
				return err
			}
		}
	}
	return nil
}

// rewriteNode renders a node with every item reference redirected to the
// chosen replica.
func rewriteNode(n expr.Node, readFrom int) string {
	switch x := n.(type) {
	case expr.Lit:
		return x.String()
	case expr.Ref:
		return Name(x.Name, readFrom)
	case expr.Unary:
		return x.Op + "(" + rewriteNode(x.X, readFrom) + ")"
	case expr.Binary:
		return "(" + rewriteNode(x.L, readFrom) + " " + x.Op + " " + rewriteNode(x.R, readFrom) + ")"
	case expr.Call:
		args := make([]string, len(x.Args))
		for i, a := range x.Args {
			args[i] = rewriteNode(a, readFrom)
		}
		return x.Fn + "(" + strings.Join(args, ", ") + ")"
	default:
		return n.String()
	}
}

// rewritePlanNode renders a node with each item reference redirected to
// its plan-chosen read replica.
func rewritePlanNode(n expr.Node, reads map[string]int) string {
	switch x := n.(type) {
	case expr.Lit:
		return x.String()
	case expr.Ref:
		return Name(x.Name, reads[x.Name])
	case expr.Unary:
		return x.Op + "(" + rewritePlanNode(x.X, reads) + ")"
	case expr.Binary:
		return "(" + rewritePlanNode(x.L, reads) + " " + x.Op + " " + rewritePlanNode(x.R, reads) + ")"
	case expr.Call:
		args := make([]string, len(x.Args))
		for i, a := range x.Args {
			args[i] = rewritePlanNode(a, reads)
		}
		return x.Fn + "(" + strings.Join(args, ", ") + ")"
	default:
		return n.String()
	}
}

// fnv32a hashes a string with FNV-1a without allocating a hasher — the
// placement hot path calls this once per logical name.
func fnv32a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// Placement returns an item→site mapping that puts each logical item's
// replicas on distinct sites (replica i on sites[(h+i) mod n]) and
// hashes non-replica items normally.  Use it as cluster.Config.Placement.
//
// The logical-name hash is computed once and memoized (placement sits on
// the per-message hot path: every read probe, prepare fan-out and
// anti-entropy value copy resolves owners through it).  The cache grows
// with the live item universe and is safe for concurrent use.
func Placement(sites []protocol.SiteID) func(string) protocol.SiteID {
	var cache sync.Map // logical name → uint32 hash
	n := len(sites)
	return func(item string) protocol.SiteID {
		logical, i, ok := Logical(item)
		if !ok {
			logical, i = item, 0
		}
		var h uint32
		if v, ok := cache.Load(logical); ok {
			h = v.(uint32)
		} else {
			h = fnv32a(logical)
			cache.Store(logical, h)
		}
		return sites[(int(h)+i)%n]
	}
}

// Sites returns the distinct owner sites of a logical item's k replicas
// under the given placement, in replica-index order.
func Sites(place func(string) protocol.SiteID, logical string, k int) []protocol.SiteID {
	out := make([]protocol.SiteID, 0, k)
	for i := 0; i < k; i++ {
		out = append(out, place(Name(logical, i)))
	}
	return out
}

// SortedLogicals extracts the sorted set of logical names from a list of
// items that may mix replica and plain names.
func SortedLogicals(items []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, it := range items {
		l, _, ok := Logical(it)
		if !ok {
			l = it
		}
		if !seen[l] {
			seen[l] = true
			out = append(out, l)
		}
	}
	sort.Strings(out)
	return out
}
