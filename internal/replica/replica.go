// Package replica makes the paper's §3 replication note concrete: "an
// item that is replicated at several sites can be viewed as a set of
// individual items, one for each site."
//
// A logical item x replicated k ways becomes physical items x@0 … x@k-1,
// placed on distinct sites.  A transaction on logical items is rewritten
// to a write-all / read-one transaction on physical items: every write
// updates all k replicas atomically (they are just k items in one
// transaction, so the polyvalue machinery applies unchanged), and every
// read targets one chosen replica.  Clients fail over by re-submitting
// with a different read replica when a site is down; writes require all
// replica sites (write-all), which is the classic availability trade —
// reads survive any k-1 site failures, writes none.  Polyvalues and
// replication compose: an interrupted write-all leaves polyvalues on
// every replica, and each reduces independently when the outcome
// arrives.
package replica

import (
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"

	"repro/internal/expr"
	"repro/internal/protocol"
)

// Marker separates the logical name from the replica index.  It is
// chosen from the expression language's identifier alphabet so physical
// names remain valid identifiers.
const Marker = "_r"

// Name returns the physical name of logical item's i-th replica.
func Name(logical string, i int) string {
	return logical + Marker + strconv.Itoa(i)
}

// Logical splits a physical name into its logical item and replica
// index; ok is false for names without a replica suffix.
func Logical(physical string) (logical string, i int, ok bool) {
	idx := strings.LastIndex(physical, Marker)
	if idx <= 0 {
		return "", 0, false
	}
	n, err := strconv.Atoi(physical[idx+len(Marker):])
	if err != nil || n < 0 {
		return "", 0, false
	}
	return physical[:idx], n, true
}

// Rewrite compiles a logical-item program into a physical write-all /
// read-one program: every read references replica readFrom, every
// written item is assigned at all k replicas.  Statement guards are
// rewritten like other reads.
func Rewrite(p expr.Program, k, readFrom int) (expr.Program, error) {
	if k < 1 {
		return expr.Program{}, fmt.Errorf("replica: k must be ≥ 1, got %d", k)
	}
	if readFrom < 0 || readFrom >= k {
		return expr.Program{}, fmt.Errorf("replica: readFrom %d out of range [0,%d)", readFrom, k)
	}
	var sb strings.Builder
	for si, stmt := range p.Stmts {
		rhs := rewriteNode(stmt.Expr, readFrom)
		var guard string
		if stmt.Guard != nil {
			guard = " if " + rewriteNode(stmt.Guard, readFrom)
		}
		for i := 0; i < k; i++ {
			if si > 0 || i > 0 {
				sb.WriteString("; ")
			}
			sb.WriteString(Name(stmt.Target, i))
			sb.WriteString(" = ")
			sb.WriteString(rhs)
			sb.WriteString(guard)
		}
	}
	return expr.Parse(sb.String())
}

// RewriteExpr compiles a logical read-only expression to read from the
// given replica.
func RewriteExpr(src string, readFrom int) (string, error) {
	node, err := expr.ParseExpr(src)
	if err != nil {
		return "", err
	}
	return rewriteNode(node, readFrom), nil
}

// rewriteNode renders a node with every item reference redirected to the
// chosen replica.
func rewriteNode(n expr.Node, readFrom int) string {
	switch x := n.(type) {
	case expr.Lit:
		return x.String()
	case expr.Ref:
		return Name(x.Name, readFrom)
	case expr.Unary:
		return x.Op + "(" + rewriteNode(x.X, readFrom) + ")"
	case expr.Binary:
		return "(" + rewriteNode(x.L, readFrom) + " " + x.Op + " " + rewriteNode(x.R, readFrom) + ")"
	case expr.Call:
		args := make([]string, len(x.Args))
		for i, a := range x.Args {
			args[i] = rewriteNode(a, readFrom)
		}
		return x.Fn + "(" + strings.Join(args, ", ") + ")"
	default:
		return n.String()
	}
}

// Placement returns an item→site mapping that puts each logical item's
// replicas on distinct sites (replica i on sites[(h+i) mod n]) and
// hashes non-replica items normally.  Use it as cluster.Config.Placement.
func Placement(sites []protocol.SiteID) func(string) protocol.SiteID {
	return func(item string) protocol.SiteID {
		logical, i, ok := Logical(item)
		if !ok {
			logical, i = item, 0
		}
		h := fnv.New32a()
		h.Write([]byte(logical))
		return sites[(int(h.Sum32())+i)%len(sites)]
	}
}
