package replica_test

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/expr"
	"repro/internal/network"
	"repro/internal/polyvalue"
	"repro/internal/protocol"
	"repro/internal/replica"
	"repro/internal/value"
)

// TestReplicatedReadsSurviveSiteFailure: end-to-end — a 3-way replicated
// item keeps answering reads after its primary's site crashes, by
// failing over to another replica.  Writes (write-all) are unavailable
// until repair, the classic trade.
func TestReplicatedReadsSurviveSiteFailure(t *testing.T) {
	sites := []protocol.SiteID{"s0", "s1", "s2", "s3"}
	c, err := cluster.New(cluster.Config{
		Sites:     sites,
		Net:       network.Config{Latency: 10 * time.Millisecond},
		Placement: replica.Placement(sites),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const k = 3
	for i := 0; i < k; i++ {
		if err := c.Load(replica.Name("bal", i), polyvalue.Simple(value.Int(100))); err != nil {
			t.Fatal(err)
		}
	}
	// A replicated write commits on all replicas.
	prog, err := replica.Rewrite(expr.MustParse("bal = bal - 10"), k, 0)
	if err != nil {
		t.Fatal(err)
	}
	h, _ := c.Submit("s0", prog.String())
	c.RunFor(time.Second)
	if h.Status() != cluster.StatusCommitted {
		t.Fatalf("replicated write: %v (%s)", h.Status(), h.Reason())
	}
	for i := 0; i < k; i++ {
		if v, ok := c.Read(replica.Name("bal", i)).IsCertain(); !ok || !v.Equal(value.Int(90)) {
			t.Fatalf("replica %d = %v", i, c.Read(replica.Name("bal", i)))
		}
	}

	// Crash replica 0's site.  Reads fail over.
	primary := replica.Placement(sites)(replica.Name("bal", 0))
	c.Crash(primary)
	var coordinator protocol.SiteID
	for _, s := range sites {
		if s != primary {
			coordinator = s
			break
		}
	}
	// Read from replica 0: unavailable (its site is down).
	q0src, _ := replica.RewriteExpr("bal", 0)
	q0, _ := c.Query(coordinator, q0src)
	c.RunFor(2 * time.Second)
	if _, qerr, done := q0.Result(); !done || qerr == nil {
		t.Fatal("read of dead replica should fail")
	}
	// Fail over to a replica on a live site.
	failover := -1
	for i := 1; i < k; i++ {
		if !c.IsDown(replica.Placement(sites)(replica.Name("bal", i))) {
			failover = i
			break
		}
	}
	if failover == -1 {
		t.Fatal("no live replica")
	}
	qsrc, _ := replica.RewriteExpr("bal", failover)
	q, _ := c.Query(coordinator, qsrc)
	c.RunFor(2 * time.Second)
	p, qerr, done := q.Result()
	if !done || qerr != nil {
		t.Fatalf("failover read: done=%v err=%v", done, qerr)
	}
	if v, ok := p.IsCertain(); !ok || !v.Equal(value.Int(90)) {
		t.Errorf("failover read = %v", p)
	}

	// Write-all is unavailable while a replica site is down.
	wh, _ := c.Submit(coordinator, prog.String())
	c.RunFor(2 * time.Second)
	if wh.Status() != cluster.StatusAborted {
		t.Errorf("write-all with dead replica: %v", wh.Status())
	}

	// Repair; writes flow again and replicas reconverge.
	c.Restart(primary)
	c.RunFor(5 * time.Second)
	wh2, _ := c.Submit(coordinator, prog.String())
	c.RunFor(2 * time.Second)
	if wh2.Status() != cluster.StatusCommitted {
		t.Fatalf("post-repair write: %v (%s)", wh2.Status(), wh2.Reason())
	}
	for i := 0; i < k; i++ {
		if v, ok := c.Read(replica.Name("bal", i)).IsCertain(); !ok || !v.Equal(value.Int(80)) {
			t.Errorf("replica %d = %v", i, c.Read(replica.Name("bal", i)))
		}
	}
}

// TestReplicationComposesWithPolyvalues: an interrupted write-all leaves
// polyvalues on every replica; repair reduces them all consistently.
func TestReplicationComposesWithPolyvalues(t *testing.T) {
	sites := []protocol.SiteID{"s0", "s1", "s2", "s3"}
	c, err := cluster.New(cluster.Config{
		Sites:     sites,
		Net:       network.Config{Latency: 10 * time.Millisecond},
		Placement: replica.Placement(sites),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const k = 2
	for i := 0; i < k; i++ {
		if err := c.Load(replica.Name("bal", i), polyvalue.Simple(value.Int(100))); err != nil {
			t.Fatal(err)
		}
	}
	prog, err := replica.Rewrite(expr.MustParse("bal = bal - 10"), k, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Pick a coordinator that is NOT a replica site, and crash it at the
	// critical moment.
	place := replica.Placement(sites)
	replicaSites := map[protocol.SiteID]bool{}
	for i := 0; i < k; i++ {
		replicaSites[place(replica.Name("bal", i))] = true
	}
	var coord protocol.SiteID
	for _, s := range sites {
		if !replicaSites[s] {
			coord = s
			break
		}
	}
	if coord == "" {
		t.Skip("no non-replica site available under this placement")
	}
	c.ArmCrashBeforeDecision(coord)
	if _, err := c.Submit(coord, prog.String()); err != nil {
		t.Fatal(err)
	}
	c.RunFor(2 * time.Second)
	// Every replica is now polyvalued — the replicated item is "in
	// doubt" coherently.
	for i := 0; i < k; i++ {
		if _, certain := c.Read(replica.Name("bal", i)).IsCertain(); certain {
			t.Fatalf("replica %d not in doubt", i)
		}
	}
	c.Restart(coord)
	c.RunFor(10 * time.Second)
	for i := 0; i < k; i++ {
		v, ok := c.Read(replica.Name("bal", i)).IsCertain()
		if !ok || !v.Equal(value.Int(100)) {
			t.Errorf("replica %d after repair = %v", i, c.Read(replica.Name("bal", i)))
		}
	}
}
