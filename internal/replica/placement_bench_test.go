package replica

import (
	"testing"

	"repro/internal/protocol"
)

// BenchmarkPlacement guards the hot-path cost of replica placement: the
// logical-name FNV hash is computed inline (no hasher allocation) and
// memoized, so steady-state lookups are a cache hit plus a modulo.
// Before this, every lookup allocated a fnv.New32a hasher.
func BenchmarkPlacement(b *testing.B) {
	sites := []protocol.SiteID{"s0", "s1", "s2", "s3", "s4"}
	place := Placement(sites)
	items := make([]string, 0, 64*3)
	for i := 0; i < 64; i++ {
		for r := 0; r < 3; r++ {
			items = append(items, Name("acct"+string(rune('a'+i%26))+string(rune('a'+i/26)), r))
		}
	}
	// Warm the memo so the loop measures the steady state.
	for _, it := range items {
		place(it)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		place(items[i%len(items)])
	}
}

// BenchmarkPlacementCold measures first-touch lookups (memo miss): still
// allocation-light because the hash itself is inline.
func BenchmarkPlacementCold(b *testing.B) {
	sites := []protocol.SiteID{"s0", "s1", "s2", "s3", "s4"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		place := Placement(sites)
		place("acct")
	}
}
