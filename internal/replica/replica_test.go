package replica

import (
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/expr"
	"repro/internal/network"
	"repro/internal/polyvalue"
	"repro/internal/protocol"
	"repro/internal/value"
)

func TestNameLogicalRoundTrip(t *testing.T) {
	n := Name("acct", 2)
	if n != "acct_r2" {
		t.Errorf("Name = %q", n)
	}
	logical, i, ok := Logical(n)
	if !ok || logical != "acct" || i != 2 {
		t.Errorf("Logical = %q,%d,%v", logical, i, ok)
	}
	if _, _, ok := Logical("plain"); ok {
		t.Error("non-replica name parsed as replica")
	}
	if _, _, ok := Logical("x_rabc"); ok {
		t.Error("bad index parsed")
	}
	// Nested-looking names resolve to the LAST marker.
	logical, i, ok = Logical("a_r1_r2")
	if !ok || logical != "a_r1" || i != 2 {
		t.Errorf("nested Logical = %q,%d,%v", logical, i, ok)
	}
}

func TestRewriteValidation(t *testing.T) {
	p := expr.MustParse("x = x + 1")
	if _, err := Rewrite(p, 0, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Rewrite(p, 2, 2); err == nil {
		t.Error("readFrom out of range accepted")
	}
	if _, err := Rewrite(p, 2, -1); err == nil {
		t.Error("negative readFrom accepted")
	}
}

func TestRewriteWriteAllReadOne(t *testing.T) {
	p := expr.MustParse("bal = bal - 50 if bal >= 50")
	r, err := Rewrite(p, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	writes := r.WriteSet()
	if len(writes) != 3 || writes[0] != "bal_r0" || writes[2] != "bal_r2" {
		t.Errorf("WriteSet = %v", writes)
	}
	reads := r.ReadSet()
	if len(reads) != 1 || reads[0] != "bal_r1" {
		t.Errorf("ReadSet = %v", reads)
	}
	// Semantics: evaluating the rewritten program with replica 1's value
	// updates every replica identically.
	env := expr.MapEnv{"bal_r0": value.Int(100), "bal_r1": value.Int(100), "bal_r2": value.Int(100)}
	out, err := r.Eval(env)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if !out[Name("bal", i)].Equal(value.Int(50)) {
			t.Errorf("replica %d = %v", i, out[Name("bal", i)])
		}
	}
}

func TestRewriteMultiStatementAndCalls(t *testing.T) {
	p := expr.MustParse("a = min(a, b) + abs(-c); b = 2 * (a + 1)")
	r, err := Rewrite(p, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Stmts) != 4 {
		t.Fatalf("stmts = %d", len(r.Stmts))
	}
	env := expr.MapEnv{
		"a_r0": value.Int(5), "b_r0": value.Int(3), "c_r0": value.Int(-2),
		"a_r1": value.Int(5), "b_r1": value.Int(3), "c_r1": value.Int(-2),
	}
	out, err := r.Eval(env)
	if err != nil {
		t.Fatal(err)
	}
	// a := min(5,3)+abs(-(-2)) = 3+2 = 5; b := 2*(5+1) = 12 (pre-state a).
	for i := 0; i < 2; i++ {
		if !out[Name("a", i)].Equal(value.Int(5)) || !out[Name("b", i)].Equal(value.Int(12)) {
			t.Errorf("replica %d: a=%v b=%v", i, out[Name("a", i)], out[Name("b", i)])
		}
	}
}

func TestRewriteExpr(t *testing.T) {
	s, err := RewriteExpr("cap - seats", 2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "cap_r2") || !strings.Contains(s, "seats_r2") {
		t.Errorf("RewriteExpr = %q", s)
	}
	if _, err := RewriteExpr("bad &&", 0); err == nil {
		t.Error("bad expression accepted")
	}
}

func TestPlacementSpreadsReplicas(t *testing.T) {
	sites := []protocol.SiteID{"s0", "s1", "s2"}
	place := Placement(sites)
	seen := map[protocol.SiteID]bool{}
	for i := 0; i < 3; i++ {
		seen[place(Name("acct", i))] = true
	}
	if len(seen) != 3 {
		t.Errorf("replicas not on distinct sites: %v", seen)
	}
	// Deterministic.
	if place("plain") != place("plain") {
		t.Error("placement not deterministic")
	}
}

// TestReplicatedReadsSurviveSiteFailure: end-to-end — a 3-way replicated
// item keeps answering reads after its primary's site crashes, by
// failing over to another replica.  Writes (write-all) are unavailable
// until repair, the classic trade.
func TestReplicatedReadsSurviveSiteFailure(t *testing.T) {
	sites := []protocol.SiteID{"s0", "s1", "s2", "s3"}
	c, err := cluster.New(cluster.Config{
		Sites:     sites,
		Net:       network.Config{Latency: 10 * time.Millisecond},
		Placement: Placement(sites),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const k = 3
	for i := 0; i < k; i++ {
		if err := c.Load(Name("bal", i), polyvalue.Simple(value.Int(100))); err != nil {
			t.Fatal(err)
		}
	}
	// A replicated write commits on all replicas.
	prog, err := Rewrite(expr.MustParse("bal = bal - 10"), k, 0)
	if err != nil {
		t.Fatal(err)
	}
	h, _ := c.Submit("s0", prog.String())
	c.RunFor(time.Second)
	if h.Status() != cluster.StatusCommitted {
		t.Fatalf("replicated write: %v (%s)", h.Status(), h.Reason())
	}
	for i := 0; i < k; i++ {
		if v, ok := c.Read(Name("bal", i)).IsCertain(); !ok || !v.Equal(value.Int(90)) {
			t.Fatalf("replica %d = %v", i, c.Read(Name("bal", i)))
		}
	}

	// Crash replica 0's site.  Reads fail over.
	primary := Placement(sites)(Name("bal", 0))
	c.Crash(primary)
	var coordinator protocol.SiteID
	for _, s := range sites {
		if s != primary {
			coordinator = s
			break
		}
	}
	// Read from replica 0: unavailable (its site is down).
	q0src, _ := RewriteExpr("bal", 0)
	q0, _ := c.Query(coordinator, q0src)
	c.RunFor(2 * time.Second)
	if _, qerr, done := q0.Result(); !done || qerr == nil {
		t.Fatal("read of dead replica should fail")
	}
	// Fail over to a replica on a live site.
	failover := -1
	for i := 1; i < k; i++ {
		if !c.IsDown(Placement(sites)(Name("bal", i))) {
			failover = i
			break
		}
	}
	if failover == -1 {
		t.Fatal("no live replica")
	}
	qsrc, _ := RewriteExpr("bal", failover)
	q, _ := c.Query(coordinator, qsrc)
	c.RunFor(2 * time.Second)
	p, qerr, done := q.Result()
	if !done || qerr != nil {
		t.Fatalf("failover read: done=%v err=%v", done, qerr)
	}
	if v, ok := p.IsCertain(); !ok || !v.Equal(value.Int(90)) {
		t.Errorf("failover read = %v", p)
	}

	// Write-all is unavailable while a replica site is down.
	wh, _ := c.Submit(coordinator, prog.String())
	c.RunFor(2 * time.Second)
	if wh.Status() != cluster.StatusAborted {
		t.Errorf("write-all with dead replica: %v", wh.Status())
	}

	// Repair; writes flow again and replicas reconverge.
	c.Restart(primary)
	c.RunFor(5 * time.Second)
	wh2, _ := c.Submit(coordinator, prog.String())
	c.RunFor(2 * time.Second)
	if wh2.Status() != cluster.StatusCommitted {
		t.Fatalf("post-repair write: %v (%s)", wh2.Status(), wh2.Reason())
	}
	for i := 0; i < k; i++ {
		if v, ok := c.Read(Name("bal", i)).IsCertain(); !ok || !v.Equal(value.Int(80)) {
			t.Errorf("replica %d = %v", i, c.Read(Name("bal", i)))
		}
	}
}

// TestReplicationComposesWithPolyvalues: an interrupted write-all leaves
// polyvalues on every replica; repair reduces them all consistently.
func TestReplicationComposesWithPolyvalues(t *testing.T) {
	sites := []protocol.SiteID{"s0", "s1", "s2", "s3"}
	c, err := cluster.New(cluster.Config{
		Sites:     sites,
		Net:       network.Config{Latency: 10 * time.Millisecond},
		Placement: Placement(sites),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const k = 2
	for i := 0; i < k; i++ {
		if err := c.Load(Name("bal", i), polyvalue.Simple(value.Int(100))); err != nil {
			t.Fatal(err)
		}
	}
	prog, err := Rewrite(expr.MustParse("bal = bal - 10"), k, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Pick a coordinator that is NOT a replica site, and crash it at the
	// critical moment.
	place := Placement(sites)
	replicaSites := map[protocol.SiteID]bool{}
	for i := 0; i < k; i++ {
		replicaSites[place(Name("bal", i))] = true
	}
	var coord protocol.SiteID
	for _, s := range sites {
		if !replicaSites[s] {
			coord = s
			break
		}
	}
	if coord == "" {
		t.Skip("no non-replica site available under this placement")
	}
	c.ArmCrashBeforeDecision(coord)
	if _, err := c.Submit(coord, prog.String()); err != nil {
		t.Fatal(err)
	}
	c.RunFor(2 * time.Second)
	// Every replica is now polyvalued — the replicated item is "in
	// doubt" coherently.
	for i := 0; i < k; i++ {
		if _, certain := c.Read(Name("bal", i)).IsCertain(); certain {
			t.Fatalf("replica %d not in doubt", i)
		}
	}
	c.Restart(coord)
	c.RunFor(10 * time.Second)
	for i := 0; i < k; i++ {
		v, ok := c.Read(Name("bal", i)).IsCertain()
		if !ok || !v.Equal(value.Int(100)) {
			t.Errorf("replica %d after repair = %v", i, c.Read(Name("bal", i)))
		}
	}
}
