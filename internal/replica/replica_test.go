package replica

import (
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/protocol"
	"repro/internal/value"
)

func TestNameLogicalRoundTrip(t *testing.T) {
	n := Name("acct", 2)
	if n != "acct_r2" {
		t.Errorf("Name = %q", n)
	}
	logical, i, ok := Logical(n)
	if !ok || logical != "acct" || i != 2 {
		t.Errorf("Logical = %q,%d,%v", logical, i, ok)
	}
	if _, _, ok := Logical("plain"); ok {
		t.Error("non-replica name parsed as replica")
	}
	if _, _, ok := Logical("x_rabc"); ok {
		t.Error("bad index parsed")
	}
	// Nested-looking names resolve to the LAST marker.
	logical, i, ok = Logical("a_r1_r2")
	if !ok || logical != "a_r1" || i != 2 {
		t.Errorf("nested Logical = %q,%d,%v", logical, i, ok)
	}
}

func TestRewriteValidation(t *testing.T) {
	p := expr.MustParse("x = x + 1")
	if _, err := Rewrite(p, 0, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Rewrite(p, 2, 2); err == nil {
		t.Error("readFrom out of range accepted")
	}
	if _, err := Rewrite(p, 2, -1); err == nil {
		t.Error("negative readFrom accepted")
	}
}

func TestRewriteWriteAllReadOne(t *testing.T) {
	p := expr.MustParse("bal = bal - 50 if bal >= 50")
	r, err := Rewrite(p, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	writes := r.WriteSet()
	if len(writes) != 3 || writes[0] != "bal_r0" || writes[2] != "bal_r2" {
		t.Errorf("WriteSet = %v", writes)
	}
	reads := r.ReadSet()
	if len(reads) != 1 || reads[0] != "bal_r1" {
		t.Errorf("ReadSet = %v", reads)
	}
	// Semantics: evaluating the rewritten program with replica 1's value
	// updates every replica identically.
	env := expr.MapEnv{"bal_r0": value.Int(100), "bal_r1": value.Int(100), "bal_r2": value.Int(100)}
	out, err := r.Eval(env)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if !out[Name("bal", i)].Equal(value.Int(50)) {
			t.Errorf("replica %d = %v", i, out[Name("bal", i)])
		}
	}
}

func TestRewriteMultiStatementAndCalls(t *testing.T) {
	p := expr.MustParse("a = min(a, b) + abs(-c); b = 2 * (a + 1)")
	r, err := Rewrite(p, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Stmts) != 4 {
		t.Fatalf("stmts = %d", len(r.Stmts))
	}
	env := expr.MapEnv{
		"a_r0": value.Int(5), "b_r0": value.Int(3), "c_r0": value.Int(-2),
		"a_r1": value.Int(5), "b_r1": value.Int(3), "c_r1": value.Int(-2),
	}
	out, err := r.Eval(env)
	if err != nil {
		t.Fatal(err)
	}
	// a := min(5,3)+abs(-(-2)) = 3+2 = 5; b := 2*(5+1) = 12 (pre-state a).
	for i := 0; i < 2; i++ {
		if !out[Name("a", i)].Equal(value.Int(5)) || !out[Name("b", i)].Equal(value.Int(12)) {
			t.Errorf("replica %d: a=%v b=%v", i, out[Name("a", i)], out[Name("b", i)])
		}
	}
}

func TestRewriteExpr(t *testing.T) {
	s, err := RewriteExpr("cap - seats", 2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "cap_r2") || !strings.Contains(s, "seats_r2") {
		t.Errorf("RewriteExpr = %q", s)
	}
	if _, err := RewriteExpr("bad &&", 0); err == nil {
		t.Error("bad expression accepted")
	}
}

func TestPlacementSpreadsReplicas(t *testing.T) {
	sites := []protocol.SiteID{"s0", "s1", "s2"}
	place := Placement(sites)
	seen := map[protocol.SiteID]bool{}
	for i := 0; i < 3; i++ {
		seen[place(Name("acct", i))] = true
	}
	if len(seen) != 3 {
		t.Errorf("replicas not on distinct sites: %v", seen)
	}
	// Deterministic.
	if place("plain") != place("plain") {
		t.Error("placement not deterministic")
	}
}
