package replica

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/expr"
	"repro/internal/value"
)

// ---------------------------------------------------------------------
// Marker-collision regression tests: user items whose names natively
// contain the _r<digits> suffix must be rejected at rewrite time, not
// silently treated as replicas of another item.
// ---------------------------------------------------------------------

func TestCheckNameRejectsMarkerCollisions(t *testing.T) {
	bad := []string{"audit_r3", "x_r0", "a_r1_r2", "acct_r007"}
	for _, name := range bad {
		if err := CheckName(name); err == nil {
			t.Errorf("CheckName(%q) accepted a replica-namespace collision", name)
		}
	}
	good := []string{"audit", "x", "audit_r", "audit_rx", "_r3", "r3", "a_r-1", "bal_r3b"}
	for _, name := range good {
		if err := CheckName(name); err != nil {
			t.Errorf("CheckName(%q) = %v", name, err)
		}
	}
}

func TestRewriteRejectsMarkerCollisions(t *testing.T) {
	cases := []string{
		"audit_r3 = audit_r3 + 1", // write target collides
		"x = audit_r3 + 1",        // read collides
		"x = y if audit_r3 > 0",   // guard collides
	}
	for _, src := range cases {
		if _, err := Rewrite(expr.MustParse(src), 2, 0); err == nil {
			t.Errorf("Rewrite accepted %q", src)
		} else if !strings.Contains(err.Error(), "replica namespace") {
			t.Errorf("Rewrite(%q) wrong error: %v", src, err)
		}
	}
	// A clean program still rewrites.
	if _, err := Rewrite(expr.MustParse("audit = audit + 1"), 2, 0); err != nil {
		t.Errorf("clean program rejected: %v", err)
	}
}

func TestRewriteExprRejectsMarkerCollisions(t *testing.T) {
	if _, err := RewriteExpr("audit_r3 + 1", 0); err == nil {
		t.Error("RewriteExpr accepted a colliding name")
	}
	if _, err := RewriteExpr("audit + 1", 0); err != nil {
		t.Errorf("RewriteExpr rejected a clean name: %v", err)
	}
}

func TestRewritePlanRejectsMarkerCollisions(t *testing.T) {
	p := expr.MustParse("audit_r3 = audit_r3 + 1")
	plan := Plan{Reads: map[string]int{"audit_r3": 0}, Writes: map[string][]int{"audit_r3": {0}}}
	if _, err := RewritePlan(p, plan); err == nil {
		t.Error("RewritePlan accepted a colliding name")
	}
}

// ---------------------------------------------------------------------
// RewritePlan: quorum-form rewrites.
// ---------------------------------------------------------------------

func TestRewritePlanReadsAndWrites(t *testing.T) {
	p := expr.MustParse("bal = bal - 50 if bal >= 50")
	plan := Plan{
		Reads:  map[string]int{"bal": 2},
		Writes: map[string][]int{"bal": {0, 2}},
	}
	r, err := RewritePlan(p, plan)
	if err != nil {
		t.Fatal(err)
	}
	writes := r.WriteSet()
	if len(writes) != 2 || writes[0] != "bal_r0" || writes[1] != "bal_r2" {
		t.Errorf("WriteSet = %v", writes)
	}
	reads := r.ReadSet()
	if len(reads) != 1 || reads[0] != "bal_r2" {
		t.Errorf("ReadSet = %v", reads)
	}
	env := expr.MapEnv{"bal_r0": value.Int(70), "bal_r2": value.Int(100)}
	out, err := r.Eval(env)
	if err != nil {
		t.Fatal(err)
	}
	// Both chosen replicas take the value computed from the read replica.
	for _, it := range []string{"bal_r0", "bal_r2"} {
		if !out[it].Equal(value.Int(50)) {
			t.Errorf("%s = %v", it, out[it])
		}
	}
}

func TestRewritePlanMissingCoverage(t *testing.T) {
	p := expr.MustParse("a = b + 1")
	if _, err := RewritePlan(p, Plan{
		Reads: map[string]int{}, Writes: map[string][]int{"a": {0}},
	}); err == nil {
		t.Error("missing read coverage accepted")
	}
	if _, err := RewritePlan(p, Plan{
		Reads: map[string]int{"b": 0}, Writes: map[string][]int{},
	}); err == nil {
		t.Error("missing write coverage accepted")
	}
}

// ---------------------------------------------------------------------
// testing/quick property: a random expression tree rendered through the
// rewrite path and re-parsed equals the same tree with its item
// references structurally renamed — guards, operator precedence and
// call expressions all survive the string round trip.
// ---------------------------------------------------------------------

var binOps = []string{"||", "&&", "==", "!=", "<", "<=", ">", ">=", "+", "-", "*", "/", "%"}
var refNames = []string{"bal", "seats", "audit", "acct.1", "x"}

// randNode builds a random expression tree of bounded depth.
func randNode(r *rand.Rand, depth int) expr.Node {
	if depth <= 0 {
		if r.Intn(2) == 0 {
			return expr.Lit{V: value.Int(int64(r.Intn(100)))}
		}
		return expr.Ref{Name: refNames[r.Intn(len(refNames))]}
	}
	switch r.Intn(8) {
	case 0:
		return expr.Lit{V: value.Int(int64(r.Intn(100)))}
	case 1:
		return expr.Ref{Name: refNames[r.Intn(len(refNames))]}
	case 2:
		op := "-"
		if r.Intn(2) == 0 {
			op = "!"
		}
		return expr.Unary{Op: op, X: randNode(r, depth-1)}
	case 3, 4, 5:
		return expr.Binary{
			Op: binOps[r.Intn(len(binOps))],
			L:  randNode(r, depth-1),
			R:  randNode(r, depth-1),
		}
	default:
		fn := []string{"min", "max", "abs"}[r.Intn(3)]
		nargs := 1
		if fn != "abs" {
			nargs = 1 + r.Intn(3)
		}
		args := make([]expr.Node, nargs)
		for i := range args {
			args[i] = randNode(r, depth-1)
		}
		return expr.Call{Fn: fn, Args: args}
	}
}

// renameRefs structurally applies the replica renaming the rewrite path
// performs textually.
func renameRefs(n expr.Node, readFrom int) expr.Node {
	switch x := n.(type) {
	case expr.Ref:
		return expr.Ref{Name: Name(x.Name, readFrom)}
	case expr.Unary:
		return expr.Unary{Op: x.Op, X: renameRefs(x.X, readFrom)}
	case expr.Binary:
		return expr.Binary{Op: x.Op, L: renameRefs(x.L, readFrom), R: renameRefs(x.R, readFrom)}
	case expr.Call:
		args := make([]expr.Node, len(x.Args))
		for i, a := range x.Args {
			args[i] = renameRefs(a, readFrom)
		}
		return expr.Call{Fn: x.Fn, Args: args}
	default:
		return n
	}
}

func TestPropRewriteNodeRoundTrip(t *testing.T) {
	prop := func(seed int64, rf uint8) bool {
		r := rand.New(rand.NewSource(seed))
		readFrom := int(rf % 4)
		n := randNode(r, 4)
		src := rewriteNode(n, readFrom)
		got, err := expr.ParseExpr(src)
		if err != nil {
			t.Logf("rendered %q does not parse: %v", src, err)
			return false
		}
		want := renameRefs(n, readFrom)
		if !reflect.DeepEqual(got, want) {
			t.Logf("round trip mismatch:\n  src  %q\n  got  %#v\n  want %#v", src, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestPropRewriteProgramRoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 1 + r.Intn(3)
		readFrom := r.Intn(k)
		nstmts := 1 + r.Intn(3)
		stmts := make([]expr.Assign, nstmts)
		targets := []string{"a", "b", "c"}
		for i := range stmts {
			stmts[i] = expr.Assign{Target: targets[i], Expr: randNode(r, 3)}
			if r.Intn(2) == 0 {
				stmts[i].Guard = randNode(r, 2)
			}
		}
		p := expr.Program{Stmts: stmts}
		rw, err := Rewrite(p, k, readFrom)
		if err != nil {
			t.Logf("Rewrite failed: %v", err)
			return false
		}
		if len(rw.Stmts) != nstmts*k {
			t.Logf("stmt count %d, want %d", len(rw.Stmts), nstmts*k)
			return false
		}
		for si, stmt := range stmts {
			wantExpr := renameRefs(stmt.Expr, readFrom)
			var wantGuard expr.Node
			if stmt.Guard != nil {
				wantGuard = renameRefs(stmt.Guard, readFrom)
			}
			for i := 0; i < k; i++ {
				got := rw.Stmts[si*k+i]
				if got.Target != Name(stmt.Target, i) {
					t.Logf("stmt %d replica %d target %q", si, i, got.Target)
					return false
				}
				if !reflect.DeepEqual(got.Expr, wantExpr) || !reflect.DeepEqual(got.Guard, wantGuard) {
					t.Logf("stmt %d replica %d body mismatch", si, i)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
