package harness

import (
	"testing"
	"time"
)

// TestDiskChaosTortureSeeded is the storage-fault torture run: fsync
// failures, torn writes, ENOSPC, slow-disk windows and recovery-read
// bit-flips woven into a transfer schedule with kill-9 cycles, ending
// in full quiescence with conservation, zero unreduced polyvalues, and
// a clean crash-recovery frontier sweep over every site's final WAL.
// Short mode (CI smoke) shrinks the schedule; `make diskchaos` runs the
// full one.
func TestDiskChaosTortureSeeded(t *testing.T) {
	cfg := DiskChaosConfig{
		Seed:       20260808,
		Sites:      3,
		Txns:       40,
		KillCycles: 3,
		Settle:     60 * time.Second,
		Logf:       t.Logf,
	}
	if testing.Short() {
		cfg.Txns = 12
		cfg.KillCycles = 1
		cfg.Settle = 45 * time.Second
	}
	report, err := RunDiskChaos(cfg)
	if err != nil {
		t.Fatalf("diskchaos run failed to execute: %v", err)
	}
	t.Logf("%s", report)
	if len(report.Violations) > 0 {
		for _, v := range report.Violations {
			t.Errorf("violation: %s", v)
		}
	}
	if report.Kills < cfg.KillCycles {
		t.Errorf("kill cycles = %d, want %d", report.Kills, cfg.KillCycles)
	}
	if report.Committed == 0 {
		t.Error("no transaction committed — the schedule exercised nothing")
	}
	if report.DiskFaultCmds == 0 {
		t.Error("no disk weather applied — the schedule exercised no faults")
	}
	if report.DiskFaultsInjected == 0 {
		t.Error("no disk fault fired — weather rules never hit an operation")
	}
	if report.DurabilityPanics == 0 {
		t.Error("no durability panic — no injected fsync/ENOSPC failure reached a WAL write")
	}
	if report.FrontierFrames == 0 {
		t.Error("frontier sweep saw zero frames — WALs were empty")
	}
}

// TestDiskChaosFrontierCoversTornTails: the full run's frontier sweep
// must actually exercise torn-tail variants, not just boundaries.
func TestDiskChaosFrontierCoversTornTails(t *testing.T) {
	if testing.Short() {
		t.Skip("covered by the main disk torture run in smoke mode")
	}
	report, err := RunDiskChaos(DiskChaosConfig{Seed: 11, Txns: 10, KillCycles: 1, Settle: 45 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Violations) > 0 {
		for _, v := range report.Violations {
			t.Errorf("violation: %s", v)
		}
	}
	if report.FrontierTorn == 0 {
		t.Error("frontier sweep recovered zero torn-tail variants")
	}
}
