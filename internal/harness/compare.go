package harness

import (
	"fmt"
	"strings"

	"repro/internal/cluster"
)

// Comparison holds one experiment's results under every wait-timeout
// policy, on identical workload and failure schedules.
type Comparison struct {
	Experiment Experiment
	Blocking   Report
	Arbitrary  Report
	Polyvalue  Report
}

// Compare runs the experiment three times, once per policy, holding
// everything else fixed.
func Compare(e Experiment) (Comparison, error) {
	out := Comparison{Experiment: e}
	for _, p := range []cluster.Policy{
		cluster.PolicyBlocking, cluster.PolicyArbitrary, cluster.PolicyPolyvalue,
	} {
		run := e
		run.Policy = p
		rep, err := Run(run)
		if err != nil {
			return Comparison{}, fmt.Errorf("harness: %s policy: %w", p, err)
		}
		switch p {
		case cluster.PolicyBlocking:
			out.Blocking = rep
		case cluster.PolicyArbitrary:
			out.Arbitrary = rep
		default:
			out.Polyvalue = rep
		}
	}
	return out, nil
}

// Format renders the comparison as the A1/A3 summary table.
func (c Comparison) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-10s %-9s %-13s %-11s %-10s\n",
		"policy", "committed", "aborted", "availability", "peak polys", "conserved")
	row := func(name string, r Report) {
		fmt.Fprintf(&b, "%-10s %-10d %-9d %-13.2f %-11d %-10v\n",
			name, r.Committed, r.Aborted, r.Availability(), r.PeakPolys, r.ConservationOK)
	}
	row("blocking", c.Blocking)
	row("arbitrary", c.Arbitrary)
	row("polyvalue", c.Polyvalue)
	return b.String()
}

// Sound reports whether the comparison reproduces the paper's ordering:
// polyvalue availability ≥ both baselines' and polyvalue conserves the
// workload invariant.
func (c Comparison) Sound() bool {
	return c.Polyvalue.Availability() >= c.Blocking.Availability() &&
		c.Polyvalue.Availability() >= c.Arbitrary.Availability()-1e-9 &&
		c.Polyvalue.ConservationOK
}
