package harness

import (
	"testing"
)

func TestTortureCleanSeeds(t *testing.T) {
	for seed := int64(100); seed < 106; seed++ {
		rep, err := Torture(TortureConfig{Seed: seed, Txns: 25})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !rep.OK() {
			t.Errorf("seed %d: %s\n%v", seed, rep, rep.Violations)
		}
		if rep.Committed+rep.Aborted+rep.Pending != 25 {
			t.Errorf("seed %d: statuses don't sum: %s", seed, rep)
		}
	}
}

func TestTortureDeterministic(t *testing.T) {
	a, err := Torture(TortureConfig{Seed: 7, Txns: 20})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Torture(TortureConfig{Seed: 7, Txns: 20})
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("same seed diverged:\n%s\n%s", a, b)
	}
}

func TestTortureDefaults(t *testing.T) {
	rep, err := Torture(TortureConfig{Seed: 1, Txns: 5})
	if err != nil {
		t.Fatal(err)
	}
	if rep.String() == "" {
		t.Error("empty report string")
	}
}
