package harness

import (
	"testing"
	"time"
)

// TestGeoRepSeeded is the headline geo-replication experiment in test
// form: both arms over the same seed and partition.  The quorum arm
// must keep committing and serving reads on the majority side, strand a
// minority replica, and let gossip alone (coordinator crashed) reduce
// and converge it; the write-all arm must lose every write that touches
// a minority replica for the duration.
func TestGeoRepSeeded(t *testing.T) {
	cfg := GeoRepConfig{
		Seed:      42,
		Items:     8,
		Txns:      10,
		Partition: 10 * time.Second,
		Logf:      t.Logf,
	}
	if testing.Short() {
		cfg.Txns = 6
		cfg.Partition = 5 * time.Second
	}

	quorum := cfg
	quorum.K, quorum.W, quorum.R = 3, 2, 2
	qr, err := RunGeoRep(quorum)
	if err != nil {
		t.Fatalf("quorum arm: %v", err)
	}
	t.Logf("quorum arm: %s", qr)
	if len(qr.Violations) > 0 {
		t.Errorf("quorum arm violations: %v", qr.Violations)
	}
	if qr.CommittedDuring == 0 {
		t.Error("quorum arm committed nothing during the partition")
	}
	if qr.ReadsServed == 0 {
		t.Error("quorum arm served no reads during the partition")
	}
	if qr.Stranded == 0 {
		t.Error("stranding choreography left no polyvalue on the minority side")
	}
	if qr.GossipOutcomes == 0 {
		t.Error("no outcome was learned via gossip")
	}
	if qr.GossipCopies == 0 {
		t.Error("no stale replica was converged via gossip")
	}

	writeAll := cfg
	writeAll.K, writeAll.W, writeAll.R = 3, 3, 1
	wr, err := RunGeoRep(writeAll)
	if err != nil {
		t.Fatalf("write-all arm: %v", err)
	}
	t.Logf("write-all arm: %s", wr)
	if len(wr.Violations) > 0 {
		t.Errorf("write-all arm violations: %v", wr.Violations)
	}
	// The availability gap: under the same partition and schedule the
	// quorum arm commits strictly more, and write-all pays for every
	// transfer that touched a minority replica with an abort.
	if qr.CommittedDuring <= wr.CommittedDuring {
		t.Errorf("no availability win: quorum committed %d, write-all %d",
			qr.CommittedDuring, wr.CommittedDuring)
	}
	if wr.AbortedDuring == 0 {
		t.Error("write-all arm aborted nothing during the partition; comparison is vacuous")
	}
	t.Logf("blocked-item-seconds: quorum=%v write-all=%v",
		qr.BlockedItemSeconds, wr.BlockedItemSeconds)
}

// TestGeoRepSeedSweep runs the quorum arm across several seeds: every
// one must pass its internal audits (conservation, convergence,
// invariants) regardless of schedule.
func TestGeoRepSeedSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep skipped in -short")
	}
	for _, seed := range []int64{1, 7, 99, 1234} {
		qr, err := RunGeoRep(GeoRepConfig{Seed: seed, Partition: 8 * time.Second})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(qr.Violations) > 0 {
			t.Errorf("seed %d: %v", seed, qr.Violations)
		}
		t.Logf("seed %d: %s", seed, qr)
	}
}

// TestGeoRepReadWriteTradeoff pins the W/R dial: W=K maximizes read
// availability (R=1 — any single reachable replica answers) at the
// cost of write availability.  During the partition the write-all arm
// must answer at least as many majority-side reads as the quorum arm.
func TestGeoRepReadWriteTradeoff(t *testing.T) {
	if testing.Short() {
		t.Skip("tradeoff sweep skipped in -short")
	}
	base := GeoRepConfig{Seed: 5, Partition: 6 * time.Second}
	quorum := base
	quorum.K, quorum.W, quorum.R = 3, 2, 2
	qr, err := RunGeoRep(quorum)
	if err != nil {
		t.Fatal(err)
	}
	writeAll := base
	writeAll.K, writeAll.W, writeAll.R = 3, 3, 1
	wr, err := RunGeoRep(writeAll)
	if err != nil {
		t.Fatal(err)
	}
	if wr.ReadsServed < qr.ReadsServed {
		t.Errorf("R=1 arm served %d reads, R=2 arm %d — tradeoff inverted",
			wr.ReadsServed, qr.ReadsServed)
	}
	t.Logf("reads served during partition: R=1 %d/%d, R=2 %d/%d",
		wr.ReadsServed, wr.ReadsDuring, qr.ReadsServed, qr.ReadsDuring)
}
