package harness

import (
	"testing"
	"time"

	"repro/internal/cluster"
)

// TestChaosTraceCompleteAfterDecisionLogKills is the ISSUE's headline
// acceptance run for the tracing plane: a seeded chaos schedule where
// EVERY kill victim is armed to die at the nastiest possible moment —
// immediately after the decision hits the WAL, before any participant
// hears about it — and the run still must reconstruct a complete causal
// timeline (root span, no dangling parents, every participant site
// represented) for every transaction that committed.  The completeness
// audit runs inside RunChaos; this test pins the crash point and checks
// the audit actually had material to chew on.
func TestChaosTraceCompleteAfterDecisionLogKills(t *testing.T) {
	cfg := ChaosConfig{
		Seed:       20260807,
		Sites:      3,
		Txns:       30,
		KillCycles: 3,
		Settle:     60 * time.Second,
		CrashPoint: cluster.CrashAfterDecisionLog,
		Logf:       t.Logf,
	}
	if testing.Short() {
		cfg.Txns = 10
		cfg.KillCycles = 2
		cfg.Settle = 45 * time.Second
	}
	report, err := RunChaos(cfg)
	if err != nil {
		t.Fatalf("chaos run failed to execute: %v", err)
	}
	t.Logf("%s", report)
	t.Logf("  spans collected = %d", report.Spans)
	for _, v := range report.Violations {
		t.Errorf("violation: %s", v)
	}
	if report.Committed == 0 {
		t.Error("no transaction committed — the completeness audit had nothing to check")
	}
	if report.Kills < cfg.KillCycles {
		t.Errorf("kill cycles = %d, want %d", report.Kills, cfg.KillCycles)
	}
	if report.Spans == 0 {
		t.Error("no spans collected — tracing was not enabled")
	}
}

// TestChaosBlockedSecondsPolyVsBlocking measures the paper's
// availability claim with the blocking accountant over the real-socket
// harness: the same seeded schedule run twice, once with polyvalues
// enabled (default budget) and once with MaxPolyBudget=1 so a site's
// second concurrent stranding degrades into blocking 2PC.  Every kill
// victim is armed at after-decision-log, so each kill cycle strands its
// in-flight participants in doubt.  The polyvalue run must accumulate
// less in-doubt + degraded blocked-item-time — items stay readable
// because participants install polyvalues and release their locks
// instead of camping on them.  The logged numbers feed EXPERIMENTS.md
// (the exact-clock version of this comparison is
// cluster.TestBlockedAccountantBudgetForced).
func TestChaosBlockedSecondsPolyVsBlocking(t *testing.T) {
	base := ChaosConfig{
		Seed:       20260807,
		Sites:      3,
		Items:      8, // every site owns >= 2, so any victim has a strand target
		Txns:       40,
		KillCycles: 4,
		Settle:     60 * time.Second,
		CrashPoint: cluster.CrashAfterDecisionLog,
		Strand:     true,
	}
	if testing.Short() {
		base.Txns = 16
		base.KillCycles = 2
		base.Settle = 45 * time.Second
	}

	run := func(name string, budget int) *ChaosReport {
		cfg := base
		cfg.MaxPolyBudget = budget
		cfg.Logf = func(format string, args ...any) {
			t.Logf(name+": "+format, args...)
		}
		report, err := RunChaos(cfg)
		if err != nil {
			t.Fatalf("%s run failed to execute: %v", name, err)
		}
		t.Logf("%s: %s", name, report)
		t.Logf("%s: blocked item-seconds: lock=%.3f indoubt=%.3f degraded=%.3f",
			name, report.BlockedItemSeconds["lock"],
			report.BlockedItemSeconds["indoubt"],
			report.BlockedItemSeconds["degraded"])
		for _, v := range report.Violations {
			t.Errorf("%s violation: %s", name, v)
		}
		return report
	}

	poly := run("poly", 0)
	blocking := run("blocking", 1)

	unavail := func(r *ChaosReport) float64 {
		return r.BlockedItemSeconds["indoubt"] + r.BlockedItemSeconds["degraded"]
	}
	pu, bu := unavail(poly), unavail(blocking)
	t.Logf("availability cost: poly=%.3f blocked item-seconds, blocking-2PC=%.3f", pu, bu)
	if bu == 0 {
		t.Error("budget-forced run accumulated no in-doubt/degraded blocking — the schedule never stranded a participant")
	}
	if pu >= bu {
		t.Errorf("polyvalues did not reduce blocked-item time: poly=%.3fs >= blocking=%.3fs", pu, bu)
	}
}
