package harness

import (
	"testing"
)

// TestGeoRepLanesInertInSim is the door that keeps the lane engine out
// of the simulated runtime: a seeded georep run must produce a
// byte-identical report whether Lanes is 0 or 8, because lanes are a
// wall-clock-only optimization and the sim cluster stays on its
// single-threaded deterministic event loop regardless.
func TestGeoRepLanesInertInSim(t *testing.T) {
	for _, seed := range []int64{1, 42} {
		base, err := RunGeoRep(GeoRepConfig{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d lanes=0: %v", seed, err)
		}
		laned, err := RunGeoRep(GeoRepConfig{Seed: seed, Lanes: 8})
		if err != nil {
			t.Fatalf("seed %d lanes=8: %v", seed, err)
		}
		if got, want := laned.String(), base.String(); got != want {
			t.Errorf("seed %d: lanes changed the simulated run\nlanes=8: %s\nlanes=0: %s", seed, got, want)
		}
		if len(base.Violations) > 0 {
			t.Errorf("seed %d: baseline run failed: %v", seed, base.Violations)
		}
		for cause, secs := range base.BlockedItemSeconds {
			if laned.BlockedItemSeconds[cause] != secs {
				t.Errorf("seed %d: blocked-item-seconds[%s] diverged: %g vs %g",
					seed, cause, laned.BlockedItemSeconds[cause], secs)
			}
		}
	}
}
