package harness

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/cluster"
	"repro/internal/network"
	"repro/internal/polyvalue"
	"repro/internal/protocol"
	"repro/internal/replica"
	"repro/internal/value"
)

// GeoRepConfig parameterizes one geo-replication partition run: a
// 5-site simulated cluster storing every account K ways, a clean
// majority/minority partition in the middle, and a stranding
// choreography that leaves a minority replica holding a polyvalue with
// its coordinator dead — so only anti-entropy gossip can save it.
//
// The same runner serves both arms of the headline comparison: the
// quorum arm (W < K keeps committing on the majority side) and the
// write-all arm (W = K, the pre-replication behaviour, which loses all
// writes touching a minority replica for the whole partition).
type GeoRepConfig struct {
	// Seed drives the transfer schedule (not the protocol — protocol
	// randomness is hash-derived and deterministic regardless).
	Seed int64
	// Items is the number of logical accounts.  Default 8.
	Items int
	// Txns is the number of guarded transfers per load phase (baseline,
	// partition, post-heal).  Default 10.
	Txns int
	// K, W, R select the replication geometry.  Default 3/2/2; the
	// write-all arm passes W=3, R=1.
	K, W, R int
	// Partition is how long (simulated) the majority/minority cut
	// lasts.  Default 10s.
	Partition time.Duration
	// Settle bounds the post-heal quiescence wait.  Default 60s.
	Settle time.Duration
	// Lanes is passed through to cluster.Config.Lanes.  The georep
	// harness runs on the simulated clock, where lanes are deliberately
	// inert: any value must produce a byte-identical seeded report (the
	// determinism test in lanes_test.go holds this door shut).
	Lanes int
	// Logf receives progress lines; nil discards them.
	Logf func(format string, args ...any)
}

// GeoRepReport summarizes one arm of the geo-replication experiment.
type GeoRepReport struct {
	Seed    int64
	K, W, R int
	// Baseline / partition / post-heal commit+abort counts.  The
	// partition-phase pair is the availability headline: the quorum arm
	// keeps CommittedDuring high where write-all aborts everything that
	// touches a minority replica.
	CommittedBefore                int
	CommittedDuring, AbortedDuring int
	CommittedAfter                 int
	// ReadsDuring/ReadsServed count majority-side queries attempted and
	// answered with a certain value during the partition.
	ReadsDuring, ReadsServed int
	// Stranded is the number of polyvalued items sitting on minority
	// sites when the partition healed — each one waiting on an outcome
	// its (dead) coordinator can no longer deliver.
	Stranded int
	// GossipOutcomes / GossipCopies are the anti-entropy counters after
	// the run: outcomes first learned via gossip and stale replicas
	// converged by value copy.
	GossipOutcomes, GossipCopies int64
	// GossipSettle is how long (simulated) the post-heal gossip phase
	// took to reduce every polyvalue and converge every live replica —
	// with the stranding coordinator still crashed.
	GossipSettle time.Duration
	// BlockedItemSeconds is the per-cause item.blocked.seconds roll-up
	// (lock / indoubt / degraded) over the whole run.
	BlockedItemSeconds map[string]float64
	// Violations lists every failed assertion.  Empty = the arm passed.
	Violations []string
}

func (r *GeoRepReport) String() string {
	status := "PASS"
	if len(r.Violations) > 0 {
		status = fmt.Sprintf("FAIL (%d violations)", len(r.Violations))
	}
	return fmt.Sprintf("georep seed=%d k=%d w=%d r=%d committed before/during/after=%d/%d/%d aborted_during=%d reads=%d/%d stranded=%d gossip_outcomes=%d gossip_copies=%d gossip_settle=%s: %s",
		r.Seed, r.K, r.W, r.R, r.CommittedBefore, r.CommittedDuring, r.CommittedAfter,
		r.AbortedDuring, r.ReadsServed, r.ReadsDuring, r.Stranded,
		r.GossipOutcomes, r.GossipCopies, r.GossipSettle.Round(time.Millisecond), status)
}

// georepRun carries one arm's live state.
type georepRun struct {
	cfg      GeoRepConfig
	c        *cluster.Cluster
	rng      *rand.Rand
	report   *GeoRepReport
	majority []protocol.SiteID
	minority []protocol.SiteID
	// logicals, split by what the majority side can do to them while
	// the partition holds: writable needs max(R,W) replicas reachable,
	// readable needs R.
	logicals    []string
	majWritable []string
	majReadable []string
	// strandTarget is a logical with exactly one majority-side owner;
	// strandCoord is that owner.  Coordinated from there, the local
	// probe reply lands first and the write quorum must take a minority
	// replica as its second member — the replica the partition then
	// strands mid-wait.
	strandTarget string
	strandCoord  protocol.SiteID
}

func (g *georepRun) logf(format string, args ...any) {
	if g.cfg.Logf != nil {
		g.cfg.Logf(format, args...)
	}
}

func georepItem(i int) string { return fmt.Sprintf("acct%d", i) }

// classify splits the account population by partition-time capability
// and picks the stranding target: a logical with a single majority-side
// owner, so a pre-partition commit coordinated from that owner must put
// a minority replica in its write quorum — which the partition then
// cuts off mid-wait.
func (g *georepRun) classify() {
	inMajority := map[protocol.SiteID]bool{}
	for _, id := range g.majority {
		inMajority[id] = true
	}
	need := g.cfg.W
	if g.cfg.R > need {
		need = g.cfg.R
	}
	for _, logical := range g.logicals {
		owners := replica.Sites(g.c.Placement, logical, g.cfg.K)
		maj := 0
		for _, id := range owners {
			if inMajority[id] {
				maj++
			}
		}
		if maj >= need {
			g.majWritable = append(g.majWritable, logical)
		}
		if maj >= g.cfg.R {
			g.majReadable = append(g.majReadable, logical)
		}
		if g.strandTarget == "" && g.cfg.W < g.cfg.K && maj == 1 {
			g.strandTarget = logical
			for _, id := range owners {
				if inMajority[id] {
					g.strandCoord = id
				}
			}
		}
	}
}

// transfers submits n guarded transfers between accounts drawn from
// pool, coordinated from coords, then settles and counts outcomes.
func (g *georepRun) transfers(n int, pool []string, coords []protocol.SiteID) (committed, aborted int) {
	if len(pool) < 2 {
		return 0, 0
	}
	var handles []*cluster.Handle
	for i := 0; i < n; i++ {
		src := pool[g.rng.Intn(len(pool))]
		dst := pool[g.rng.Intn(len(pool))]
		for dst == src {
			dst = pool[g.rng.Intn(len(pool))]
		}
		amt := 1 + g.rng.Intn(9)
		coord := coords[g.rng.Intn(len(coords))]
		txt := fmt.Sprintf("%s = %s - %d if %s >= %d; %s = %s + %d if %s >= %d",
			src, src, amt, src, amt, dst, dst, amt, src, amt)
		h, err := g.c.Submit(coord, txt)
		if err != nil {
			g.report.Violations = append(g.report.Violations,
				fmt.Sprintf("submit via %s: %v", coord, err))
			continue
		}
		handles = append(handles, h)
		// Space submissions past the read timeout: a transfer doomed by
		// an unreachable quorum holds probe locks on its reachable
		// replicas until then, and overlapping it would collaterally
		// abort healthy transfers.
		g.c.RunFor(600 * time.Millisecond)
	}
	g.c.RunFor(3 * time.Second)
	for _, h := range handles {
		switch h.Status() {
		case cluster.StatusCommitted:
			committed++
		case cluster.StatusAborted:
			aborted++
		}
	}
	return committed, aborted
}

// queries runs one majority-side read per readable account and counts
// the ones answered with a certain value.
func (g *georepRun) queries() {
	for _, logical := range g.majReadable {
		coord := g.majority[g.rng.Intn(len(g.majority))]
		qh, err := g.c.Query(coord, logical)
		g.report.ReadsDuring++
		if err != nil {
			continue
		}
		g.c.RunFor(2 * time.Second)
		p, qerr, done := qh.Result()
		if qerr != nil || !done {
			continue
		}
		if _, certain := p.IsCertain(); certain {
			g.report.ReadsServed++
		}
	}
}

// RunGeoRep executes one arm of the geo-replication experiment:
//
//  1. baseline load on the healthy cluster;
//  2. (quorum arm) a stranding commit: a transfer touching a
//     minority-hosted replica is cut off between ready and complete,
//     leaving that replica polyvalued, then its coordinator is crashed
//     so no retransmission or inquiry can ever resolve it;
//  3. a clean majority/minority partition under load — the quorum arm
//     keeps committing majority-writable accounts and serving reads,
//     the write-all arm aborts everything touching the minority;
//  4. heal with the coordinator still down: anti-entropy gossip alone
//     must reduce every stranded polyvalue and converge every live
//     replica;
//  5. coordinator restart, final load phase, and the audits —
//     invariants (including replica convergence) and conservation.
func RunGeoRep(cfg GeoRepConfig) (*GeoRepReport, error) {
	if cfg.Items <= 1 {
		cfg.Items = 8
	}
	if cfg.Txns <= 0 {
		cfg.Txns = 10
	}
	if cfg.K <= 0 {
		cfg.K = 3
	}
	if cfg.W <= 0 {
		cfg.W = 2
	}
	if cfg.R <= 0 {
		cfg.R = cfg.K + 1 - cfg.W
	}
	if cfg.Partition <= 0 {
		cfg.Partition = 10 * time.Second
	}
	if cfg.Settle <= 0 {
		cfg.Settle = 60 * time.Second
	}

	sites := []protocol.SiteID{"A", "B", "C", "D", "E"}
	c, err := cluster.New(cluster.Config{
		Sites:       sites,
		Net:         network.Config{Latency: 10 * time.Millisecond, Seed: cfg.Seed},
		Replication: &cluster.ReplicationConfig{K: cfg.K, W: cfg.W, R: cfg.R},
		OutcomeTTL:  -1, // outcomes must outlive the partition for gossip
		Lanes:       cfg.Lanes,
	})
	if err != nil {
		return nil, err
	}
	defer c.Close()

	g := &georepRun{
		cfg: cfg, c: c,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		majority: sites[:3], minority: sites[3:],
		report: &GeoRepReport{Seed: cfg.Seed, K: cfg.K, W: cfg.W, R: cfg.R,
			BlockedItemSeconds: map[string]float64{}},
	}
	const initial = 100
	for i := 0; i < cfg.Items; i++ {
		logical := georepItem(i)
		g.logicals = append(g.logicals, logical)
		if err := c.LoadReplicated(logical, polyvalue.Simple(value.Int(initial))); err != nil {
			return nil, fmt.Errorf("load %s: %w", logical, err)
		}
	}
	g.classify()
	wantTotal := int64(initial * cfg.Items)
	g.logf("georep: seed=%d k=%d/%d/%d majority=%v writable=%d/%d readable=%d strand=%q",
		cfg.Seed, cfg.K, cfg.W, cfg.R, g.majority,
		len(g.majWritable), cfg.Items, len(g.majReadable), g.strandTarget)

	// ----- phase 1: baseline ---------------------------------------------
	g.report.CommittedBefore, _ = g.transfers(cfg.Txns, g.logicals, sites)

	// ----- phase 2: stranding commit (quorum arm only) -------------------
	// A transfer touching the strand target commits on its write quorum;
	// the partition lands between the minority replica's ready and the
	// coordinator's complete, so it times out into a polyvalue.  Crashing
	// the coordinator afterwards wipes its retransmission state: the
	// outcome now exists only on the majority participants, reachable
	// solely via gossip.
	strandCoord := g.strandCoord
	stranding := false
	if g.strandTarget != "" && len(g.majWritable) > 0 {
		dst := g.majWritable[0]
		if dst == g.strandTarget && len(g.majWritable) > 1 {
			dst = g.majWritable[1]
		}
		if dst != g.strandTarget {
			txt := fmt.Sprintf("%s = %s - 7 if %s >= 7; %s = %s + 7 if %s >= 7",
				g.strandTarget, g.strandTarget, g.strandTarget, dst, dst, g.strandTarget)
			h, err := c.Submit(strandCoord, txt)
			if err != nil {
				return nil, fmt.Errorf("strand submit: %w", err)
			}
			// Probes+prepares+readies land by t≈40ms at 10ms latency; cut
			// the cluster before the completes arrive at t≈50ms.
			c.RunFor(45 * time.Millisecond)
			g.partition()
			c.RunFor(2 * time.Second)
			if h.Status() != cluster.StatusCommitted {
				g.report.Violations = append(g.report.Violations,
					fmt.Sprintf("stranding commit failed: %v (%s)", h.Status(), h.Reason()))
			}
			stranding = true
			g.logf("georep: stranding transfer committed across the cut: %s", txt)
		}
	}
	if !stranding {
		g.partition()
	}

	// ----- phase 3: load under partition ---------------------------------
	g.report.CommittedDuring, g.report.AbortedDuring =
		g.transfers(cfg.Txns, g.logicals, g.majority)
	g.queries()
	c.RunFor(cfg.Partition)
	for _, id := range g.minority {
		g.report.Stranded += len(c.Store(id).PolyItems())
	}

	// ----- phase 4: heal; gossip must finish the job ---------------------
	if stranding {
		c.Crash(strandCoord)
	}
	c.HealAll()
	healedAt := c.Now()
	settled := false
	for c.Now()-healedAt < cfg.Settle {
		c.RunFor(time.Second)
		if len(c.PolyItems()) == 0 && len(c.CheckInvariants()) == 0 {
			settled = true
			break
		}
	}
	g.report.GossipSettle = c.Now() - healedAt
	if !settled {
		g.report.Violations = append(g.report.Violations,
			fmt.Sprintf("gossip did not settle the healed cluster within %s: polys=%v invariants=%v",
				cfg.Settle, c.PolyItems(), c.CheckInvariants()))
	}

	// ----- phase 5: coordinator restart + final load ---------------------
	if stranding {
		c.Restart(strandCoord)
		c.RunFor(5 * time.Second)
	}
	g.report.CommittedAfter, _ = g.transfers(cfg.Txns, g.logicals, sites)

	// ----- audits ---------------------------------------------------------
	c.RunFor(10 * time.Second)
	if v := c.CheckInvariants(); len(v) > 0 {
		g.report.Violations = append(g.report.Violations, v...)
	}
	var total int64
	for _, logical := range g.logicals {
		phys := replica.Name(logical, 0)
		p := c.Store(c.Placement(phys)).Get(phys)
		v, certain := p.IsCertain()
		if !certain {
			g.report.Violations = append(g.report.Violations,
				fmt.Sprintf("%s uncertain at end: %v", phys, p))
			continue
		}
		n, ok := value.AsInt(v)
		if !ok {
			g.report.Violations = append(g.report.Violations,
				fmt.Sprintf("%s not an int: %v", phys, v))
			continue
		}
		total += n
	}
	if total != wantTotal {
		g.report.Violations = append(g.report.Violations,
			fmt.Sprintf("conservation broken: total %d, want %d", total, wantTotal))
	}
	c.SyncBlockedAccounting()
	collectBlockedSeconds(g.report.BlockedItemSeconds, c.Metrics())
	for _, pt := range c.Metrics().Snapshot().Points {
		switch pt.Name {
		case "antientropy.outcomes.learned":
			g.report.GossipOutcomes = pt.Value
		case "antientropy.items.copied":
			g.report.GossipCopies = pt.Value
		}
	}
	g.logf("georep: %s", g.report)
	return g.report, nil
}

// partition cuts every majority↔minority link.
func (g *georepRun) partition() {
	for _, a := range g.majority {
		for _, b := range g.minority {
			g.c.Partition(a, b)
		}
	}
}
