package harness

import (
	"strings"
	"testing"
	"time"

	"repro/internal/workload"
)

func TestCompare(t *testing.T) {
	cmp, err := Compare(Experiment{
		Sites: 3, Items: 8, Txns: 60,
		Workload:   workload.Bank,
		CrashEvery: 15, RepairAfter: time.Second,
		Gap: 100 * time.Millisecond, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.Sound() {
		t.Errorf("comparison not sound:\n%s", cmp.Format())
	}
	if cmp.Polyvalue.Availability() <= cmp.Blocking.Availability() {
		t.Errorf("polyvalue availability %.2f not above blocking %.2f",
			cmp.Polyvalue.Availability(), cmp.Blocking.Availability())
	}
	// Seed 9 is a known conservation violation for the arbitrary policy
	// (see the A3 ablation); polyvalue must conserve on the same seed.
	if cmp.Arbitrary.ConservationOK {
		t.Log("arbitrary policy conserved on this seed (possible but rare)")
	}
	if !cmp.Polyvalue.ConservationOK {
		t.Error("polyvalue policy violated conservation")
	}
	out := cmp.Format()
	if !strings.Contains(out, "polyvalue") || strings.Count(out, "\n") != 4 {
		t.Errorf("Format:\n%s", out)
	}
}

func TestCompareBadExperiment(t *testing.T) {
	if _, err := Compare(Experiment{Sites: 1}); err == nil {
		t.Error("bad experiment accepted")
	}
}
