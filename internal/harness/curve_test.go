package harness

import (
	"strings"
	"testing"
	"time"

	"repro/internal/workload"
)

func curveBase() Experiment {
	return Experiment{
		Sites: 3, Items: 6, Txns: 60,
		Workload:    workload.Bank,
		RepairAfter: time.Second,
		Gap:         100 * time.Millisecond,
		Seed:        3,
	}
}

func TestAvailabilityCurve(t *testing.T) {
	points, err := AvailabilityCurve(curveBase(), []int{10, 20, 30})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.Polyvalue < p.Blocking {
			t.Errorf("crash-every=%d: polyvalue %.2f below blocking %.2f",
				p.CrashEvery, p.Polyvalue, p.Blocking)
		}
	}
	// At least one point must show a strict polyvalue advantage, or the
	// schedule produced no in-doubt traffic and the curve is vacuous.
	strict := false
	for _, p := range points {
		if p.Polyvalue > p.Blocking {
			strict = true
		}
	}
	if !strict {
		t.Error("no point shows a polyvalue advantage")
	}
	out := FormatCurve(points)
	if !strings.Contains(out, "crash-every") || strings.Count(out, "\n") != 4 {
		t.Errorf("FormatCurve:\n%s", out)
	}
}

func TestAvailabilityCurveValidation(t *testing.T) {
	if _, err := AvailabilityCurve(curveBase(), []int{0}); err == nil {
		t.Error("CrashEvery=0 accepted")
	}
	bad := curveBase()
	bad.Sites = 0
	if _, err := AvailabilityCurve(bad, []int{10}); err == nil {
		t.Error("bad base experiment accepted")
	}
}
