package harness

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/cluster"
	"repro/internal/expr"
	"repro/internal/network"
	"repro/internal/polyvalue"
	"repro/internal/protocol"
	"repro/internal/value"
)

// TortureConfig parameterizes a randomized crash-test run: a transfer
// workload interleaved with random coordinator failpoints, outright
// crashes, link cuts, heals and restarts, followed by a global repair and
// a full correctness audit.
type TortureConfig struct {
	// Seed drives every random choice; equal seeds replay identically.
	Seed int64
	// Sites is the cluster size (default 4).
	Sites int
	// Items is the database size (default 8).
	Items int
	// Txns is the number of transactions (default 40).
	Txns int
	// SettleTime drains recovery after global repair (default 120s
	// simulated).
	SettleTime time.Duration
}

func (c *TortureConfig) fillDefaults() {
	if c.Sites <= 1 {
		c.Sites = 4
	}
	if c.Items <= 1 {
		c.Items = 8
	}
	if c.Txns <= 0 {
		c.Txns = 40
	}
	if c.SettleTime <= 0 {
		c.SettleTime = 120 * time.Second
	}
}

// TortureReport is the audit result of one torture run.
type TortureReport struct {
	Committed, Aborted, Pending int
	// CrashesInjected counts failpoints + outright crashes; CutsInjected
	// counts link cuts.
	CrashesInjected, CutsInjected int
	// Violations lists every correctness failure found by the audit:
	// unresolved polyvalues, leaked bookkeeping, serial-equivalence
	// mismatches, conservation breaks, or invariant violations.
	Violations []string
}

// OK reports whether the audit found no violations.
func (r TortureReport) OK() bool { return len(r.Violations) == 0 }

// String summarizes the report.
func (r TortureReport) String() string {
	return fmt.Sprintf("committed=%d aborted=%d pending=%d crashes=%d cuts=%d violations=%d",
		r.Committed, r.Aborted, r.Pending, r.CrashesInjected, r.CutsInjected, len(r.Violations))
}

// Torture runs one randomized failure schedule and audits the outcome.
// The audit asserts the paper's end-to-end guarantees: once all failures
// heal, (1) no polyvalues remain, (2) no dependency/await bookkeeping
// remains, (3) the final state equals the serial execution of exactly
// the client-visible commits, (4) money is conserved, and (5) the
// cluster-wide invariants hold.
func Torture(cfg TortureConfig) (TortureReport, error) {
	cfg.fillDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	sites := make([]protocol.SiteID, cfg.Sites)
	for i := range sites {
		sites[i] = protocol.SiteID(fmt.Sprintf("s%d", i))
	}
	c, err := cluster.New(cluster.Config{
		Sites: sites,
		Net:   network.Config{Latency: 5 * time.Millisecond, Jitter: 2 * time.Millisecond, Seed: cfg.Seed},
	})
	if err != nil {
		return TortureReport{}, err
	}
	defer c.Close()

	state := map[string]value.V{}
	for i := 0; i < cfg.Items; i++ {
		name := fmt.Sprintf("acct%d", i)
		state[name] = value.Int(100)
		if err := c.Load(name, polyvalue.Simple(value.Int(100))); err != nil {
			return TortureReport{}, err
		}
	}

	var rep TortureReport
	type sub struct {
		src string
		h   *cluster.Handle
	}
	var subs []sub
	for i := 0; i < cfg.Txns; i++ {
		switch rng.Intn(8) {
		case 0:
			s := sites[rng.Intn(len(sites))]
			if !c.IsDown(s) {
				c.ArmCrashBeforeDecision(s)
				rep.CrashesInjected++
			}
		case 1:
			s := sites[rng.Intn(len(sites))]
			if !c.IsDown(s) {
				c.Crash(s)
				rep.CrashesInjected++
			}
		case 2:
			a, b := sites[rng.Intn(len(sites))], sites[rng.Intn(len(sites))]
			if a != b {
				c.Partition(a, b)
				rep.CutsInjected++
			}
		case 3:
			c.HealAll()
			for _, s := range sites {
				if c.IsDown(s) {
					c.Restart(s)
					break
				}
			}
		}
		// Keep at least one site alive to coordinate.
		allDown := true
		for _, s := range sites {
			if !c.IsDown(s) {
				allDown = false
				break
			}
		}
		if allDown {
			c.Restart(sites[rng.Intn(len(sites))])
		}
		coord := sites[rng.Intn(len(sites))]
		for c.IsDown(coord) {
			coord = sites[rng.Intn(len(sites))]
		}
		a := rng.Intn(cfg.Items)
		b := (a + 1 + rng.Intn(cfg.Items-1)) % cfg.Items
		amt := 1 + rng.Intn(20)
		src := fmt.Sprintf("acct%d = acct%d - %d if acct%d >= %d; acct%d = acct%d + %d if acct%d >= %d",
			a, a, amt, a, amt, b, b, amt, a, amt)
		h, err := c.Submit(coord, src)
		if err != nil {
			return TortureReport{}, err
		}
		subs = append(subs, sub{src: src, h: h})
		c.RunFor(2 * time.Second)
	}

	// Global repair and settle.
	c.HealAll()
	for _, s := range sites {
		if c.IsDown(s) {
			c.Restart(s)
		}
	}
	c.RunFor(cfg.SettleTime)

	// Audit.
	if polys := c.PolyItems(); len(polys) != 0 {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("unresolved polyvalues after settle: %v", polys))
	}
	for _, id := range sites {
		if tids := c.Store(id).DepTIDs(); len(tids) != 0 {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("site %s retains dependency entries %v", id, tids))
		}
		if aw := c.Store(id).Awaits(); len(aw) != 0 {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("site %s retains await entries %v", id, aw))
		}
	}
	for _, s := range subs {
		switch s.h.Status() {
		case cluster.StatusCommitted:
			rep.Committed++
			prog := expr.MustParse(s.src)
			writes, err := prog.Eval(expr.MapEnv(state))
			if err != nil {
				return TortureReport{}, err
			}
			for k, v := range writes {
				state[k] = v
			}
		case cluster.StatusAborted:
			rep.Aborted++
		default:
			rep.Pending++
		}
	}
	var total int64
	for i := 0; i < cfg.Items; i++ {
		name := fmt.Sprintf("acct%d", i)
		got, ok := c.Read(name).IsCertain()
		if !ok {
			rep.Violations = append(rep.Violations, fmt.Sprintf("%s uncertain after settle", name))
			continue
		}
		if !got.Equal(state[name]) {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("%s = %v, serial oracle says %v", name, got, state[name]))
		}
		if n, ok := value.AsInt(got); ok {
			total += n
		}
	}
	if want := int64(cfg.Items) * 100; total != want {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("conservation broken: total %d, want %d", total, want))
	}
	rep.Violations = append(rep.Violations, c.CheckInvariants()...)
	return rep, nil
}
