package harness

import (
	"fmt"
	"strings"

	"repro/internal/cluster"
)

// CurvePoint is one point of the availability-vs-failure-rate curve:
// the same experiment run under the polyvalue and blocking policies at
// one crash frequency.
type CurvePoint struct {
	// CrashEvery is the failure schedule (a coordinator crashes at the
	// critical moment every k-th transaction).
	CrashEvery int
	// Polyvalue and Blocking are the availability measurements
	// (committed fraction of failure-window transactions).
	Polyvalue float64
	Blocking  float64
	// PolyPeak is the peak polyvalue population under the polyvalue
	// policy.
	PolyPeak int
}

// AvailabilityCurve runs the base experiment at each crash frequency
// under both the polyvalue and blocking policies.  Smaller CrashEvery
// means more frequent failures.
func AvailabilityCurve(base Experiment, crashEvery []int) ([]CurvePoint, error) {
	out := make([]CurvePoint, 0, len(crashEvery))
	for _, k := range crashEvery {
		if k < 1 {
			return nil, fmt.Errorf("harness: CrashEvery must be ≥ 1, got %d", k)
		}
		e := base
		e.CrashEvery = k

		e.Policy = cluster.PolicyPolyvalue
		poly, err := Run(e)
		if err != nil {
			return nil, fmt.Errorf("harness: curve k=%d polyvalue: %w", k, err)
		}
		e.Policy = cluster.PolicyBlocking
		block, err := Run(e)
		if err != nil {
			return nil, fmt.Errorf("harness: curve k=%d blocking: %w", k, err)
		}
		out = append(out, CurvePoint{
			CrashEvery: k,
			Polyvalue:  poly.Availability(),
			Blocking:   block.Availability(),
			PolyPeak:   poly.PeakPolys,
		})
	}
	return out, nil
}

// FormatCurve renders the curve as a table.
func FormatCurve(points []CurvePoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-22s %-22s %-10s\n",
		"crash-every", "polyvalue availability", "blocking availability", "peak polys")
	for _, p := range points {
		fmt.Fprintf(&b, "%-12d %-22.2f %-22.2f %-10d\n",
			p.CrashEvery, p.Polyvalue, p.Blocking, p.PolyPeak)
	}
	return b.String()
}
