package harness

import (
	"testing"
	"time"
)

// TestOverloadTortureSeeded drives offered load above the admission cap
// through a sustained A—B partition with tight polyvalue budgets and
// end-to-end deadlines, over real TCP sockets and WAL files.  It is the
// acceptance run for the overload-protection plane: the polyvalue
// population must stay at or below budget on every sample, money must be
// conserved, and every site must return to polyvalue mode after the
// heal.  Short mode (CI smoke) shrinks the partition; the full run keeps
// it over a minute (`make overload`).
func TestOverloadTortureSeeded(t *testing.T) {
	cfg := OverloadConfig{
		Seed:      20260806,
		Partition: 61 * time.Second,
		Settle:    45 * time.Second,
		Logf:      t.Logf,
	}
	if testing.Short() {
		cfg.Partition = 3 * time.Second
		cfg.Settle = 30 * time.Second
	}
	report, err := RunOverload(cfg)
	if err != nil {
		t.Fatalf("overload run failed to execute: %v", err)
	}
	t.Logf("%s", report)
	t.Logf("  degradations=%d restores=%d recoveries=%d settle=%s",
		report.Degradations, report.Restores, report.Recoveries, report.SettleTime)
	for _, v := range report.Violations {
		t.Errorf("violation: %s", v)
	}
	if report.Committed == 0 {
		t.Error("no transaction committed — the schedule exercised nothing")
	}
	if report.Shed == 0 {
		t.Error("no submission shed — offered load never hit the admission cap")
	}
}
