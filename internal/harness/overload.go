package harness

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/guard"
	"repro/internal/metrics"
	"repro/internal/polyvalue"
	"repro/internal/protocol"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/value"
)

// OverloadConfig parameterizes one overload torture run: offered load
// above the admission cap, a sustained partition, and tight polyvalue
// budgets — the scenario the overload-protection plane exists for.
type OverloadConfig struct {
	// Seed drives the transfer schedule.  Same seed, same schedule.
	Seed int64
	// Items is the number of bank accounts (round-robin over 3 sites).
	// Default 6.
	Items int
	// AdmissionLimit is the per-site in-flight transaction cap.
	// Default 4.
	AdmissionLimit int
	// MaxPolyBudget caps each site's polyvalue population.  Default 8.
	MaxPolyBudget int
	// TxnDeadline bounds each transaction end to end.  Default 500ms.
	TxnDeadline time.Duration
	// DropP is the per-message random drop probability on every link,
	// active for the whole run: losing Ready/Complete messages is what
	// strands participants in doubt and puts real pressure on the
	// polyvalue budget.  Default 0.02.
	DropP float64
	// Warmup is how long load runs before the partition.  Default 2s.
	Warmup time.Duration
	// Partition is how long sites A and B stay partitioned under
	// sustained load.  Default 61s (the full run); tests shrink it.
	Partition time.Duration
	// Cooldown keeps load running after the heal.  Default 2s.
	Cooldown time.Duration
	// Settle bounds the final quiescence wait.  Default 45s.
	Settle time.Duration
	// SpanCap is the per-site structured-span retention.  0 means the
	// default (262144 — a full-length run at offered load emits on the
	// order of 200k spans per site); negative disables span tracing and
	// the trace-completeness audit.
	SpanCap int
	// Lanes is the per-site key-sharded execution lane count (see
	// cluster.Config.Lanes).  0 defaults from POLY_LANES; 1 forces the
	// classic single event loop.
	Lanes int
	// Logf receives progress lines; nil discards them.
	Logf func(format string, args ...any)
}

// OverloadReport summarizes a finished overload run.  Violations empty
// means every assertion held.
type OverloadReport struct {
	Seed      int64
	Submitted int
	Shed      int64
	Committed int
	Aborted   int
	Pending   int
	// MaxPolyPopulation is the largest polyvalue population any site
	// showed at any sample — the bounded-memory claim under test.
	MaxPolyPopulation int
	// Degradations/Restores count budget mode flips summed over sites;
	// DegradedTxns counts in-doubt transactions that blocked instead of
	// installing.
	Degradations, Restores, DegradedTxns int64
	// DeadlineExceeded sums coordinator+participant deadline expiries.
	DeadlineExceeded int64
	// Suspects/Recoveries count failure-detector state flips summed
	// over sites.
	Suspects, Recoveries int64
	SettleTime           time.Duration
	Violations           []string
	// Spans is the total number of structured spans collected.
	Spans int
	// BlockedItemSeconds sums item.blocked.seconds across sites, by
	// cause (lock, indoubt, degraded).  The degraded bucket is where the
	// budget's blocking-2PC fallback pays the paper's availability cost.
	BlockedItemSeconds map[string]float64
}

func (r *OverloadReport) String() string {
	status := "PASS"
	if len(r.Violations) > 0 {
		status = fmt.Sprintf("FAIL (%d violations)", len(r.Violations))
	}
	return fmt.Sprintf("overload seed=%d submitted=%d shed=%d committed=%d aborted=%d pending=%d maxpoly=%d degraded_txns=%d deadline=%d suspects=%d settle=%s: %s",
		r.Seed, r.Submitted, r.Shed, r.Committed, r.Aborted, r.Pending,
		r.MaxPolyPopulation, r.DegradedTxns, r.DeadlineExceeded, r.Suspects,
		r.SettleTime.Round(time.Millisecond), status)
}

// overloadNode is one running site with its full transport stack:
// cluster over detector over injector over TCP.
type overloadNode struct {
	node *cluster.Cluster
	det  *guard.Detector
	inj  *fault.Injector
	reg  *metrics.Registry
}

// RunOverload executes one overload torture run: three sites with
// admission caps, transaction deadlines, polyvalue budgets, and
// heartbeat failure detectors; offered load above the cap throughout;
// and a sustained A—B partition in the middle.  The run passes when the
// polyvalue population stayed at or below budget on every sample, money
// was conserved, every site returned to polyvalue mode after the heal,
// and the usual quiescence audits hold.
func RunOverload(cfg OverloadConfig) (*OverloadReport, error) {
	if cfg.Items <= 0 {
		cfg.Items = 6
	}
	if cfg.AdmissionLimit <= 0 {
		cfg.AdmissionLimit = 4
	}
	if cfg.MaxPolyBudget <= 0 {
		cfg.MaxPolyBudget = 4
	}
	if cfg.TxnDeadline <= 0 {
		cfg.TxnDeadline = 500 * time.Millisecond
	}
	if cfg.DropP <= 0 {
		cfg.DropP = 0.02
	}
	if cfg.Warmup <= 0 {
		cfg.Warmup = 2 * time.Second
	}
	if cfg.Partition <= 0 {
		cfg.Partition = 61 * time.Second
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 2 * time.Second
	}
	if cfg.Settle <= 0 {
		cfg.Settle = 45 * time.Second
	}
	if cfg.SpanCap == 0 {
		cfg.SpanCap = 1 << 18
	}
	if cfg.Lanes == 0 {
		cfg.Lanes = envLanes()
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	report := &OverloadReport{Seed: cfg.Seed, BlockedItemSeconds: map[string]float64{}}
	sites := []protocol.SiteID{"A", "B", "C"}
	spanLogs := map[protocol.SiteID]*trace.SpanLog{}
	if cfg.SpanCap > 0 {
		for _, id := range sites {
			spanLogs[id] = trace.NewSpanLogFor(string(id), cfg.SpanCap)
		}
	}
	placement := func(item string) protocol.SiteID {
		n := int(item[len(item)-1] - '0')
		return sites[n%len(sites)]
	}
	baseline := runtime.NumGoroutine()

	peers := map[protocol.SiteID]string{}
	lns := map[protocol.SiteID]net.Listener{}
	for _, id := range sites {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("listen: %w", err)
		}
		lns[id] = ln
		peers[id] = ln.Addr().String()
	}
	nodes := map[protocol.SiteID]*overloadNode{}
	dir, err := os.MkdirTemp("", "overload-*")
	if err != nil {
		return nil, err
	}
	for _, id := range sites {
		reg := metrics.NewRegistry()
		tcp := transport.NewTCPWithListener(transport.TCPConfig{
			Self:       id,
			Peers:      peers,
			BackoffMin: 5 * time.Millisecond,
			BackoffMax: 100 * time.Millisecond,
			Seed:       cfg.Seed + int64(len(id)),
			Metrics:    reg,
		}, lns[id])
		inj := fault.Wrap(tcp, fault.Config{
			Self:    id,
			Seed:    cfg.Seed ^ int64(sum(id)),
			Metrics: reg,
		})
		// Background message loss on every link: dropped Ready/Complete
		// messages strand participants in doubt, which is what actually
		// populates (and pressures) the polyvalue budget.
		inj.SetRule(fault.Rule{Kind: fault.KindDrop, From: fault.Wildcard, To: fault.Wildcard, P: cfg.DropP})
		var others []protocol.SiteID
		for _, o := range sites {
			if o != id {
				others = append(others, o)
			}
		}
		det := guard.NewDetector(inj, guard.DetectorConfig{
			Self:         id,
			Peers:        others,
			Interval:     100 * time.Millisecond,
			SuspectAfter: 5,
			Metrics:      reg,
		})
		node, err := cluster.NewNode(cluster.Config{
			Sites:          sites,
			WaitTimeout:    100 * time.Millisecond,
			ReadyTimeout:   time.Second, // > TxnDeadline: the deadline is the binding timeout
			RetryInterval:  100 * time.Millisecond,
			AdmissionLimit: cfg.AdmissionLimit,
			TxnDeadline:    cfg.TxnDeadline,
			MaxPolyBudget:  cfg.MaxPolyBudget,
			Placement:      placement,
			Metrics:        reg,
			DataDir:        dir,
			Spans:          spanLogs[id],
			Lanes:          cfg.Lanes,
		}, id, det)
		if err != nil {
			det.Close()
			return nil, fmt.Errorf("NewNode(%s): %w", id, err)
		}
		nodes[id] = &overloadNode{node: node, det: det, inj: inj, reg: reg}
	}
	defer func() {
		for _, n := range nodes {
			n.node.Close()
		}
	}()

	const initial = 100
	for i := 0; i < cfg.Items; i++ {
		item := chaosItem(i)
		if err := nodes[placement(item)].node.Load(item, polyvalue.Simple(value.Int(initial))); err != nil {
			return nil, fmt.Errorf("load %s: %w", item, err)
		}
	}
	wantTotal := int64(initial * cfg.Items)
	logf("overload: seed=%d admission=%d polybudget=%d deadline=%s partition=%s",
		cfg.Seed, cfg.AdmissionLimit, cfg.MaxPolyBudget, cfg.TxnDeadline, cfg.Partition)

	// ----- load + partition schedule --------------------------------------
	// A sampler watches every site's polyvalue population while load runs;
	// the maximum it sees is the bounded-memory measurement.
	var maxPoly atomic.Int64
	samplerQuit := make(chan struct{})
	samplerDone := make(chan struct{})
	go func() {
		defer close(samplerDone)
		for {
			select {
			case <-samplerQuit:
				return
			case <-time.After(20 * time.Millisecond):
			}
			for _, id := range sites {
				if n := int64(nodes[id].node.Store(id).PolyCount()); n > maxPoly.Load() {
					maxPoly.Store(n)
				}
			}
		}
	}()

	rng := rand.New(rand.NewSource(cfg.Seed))
	type pending struct{ h *cluster.Handle }
	var handles []pending
	end := time.Now().Add(cfg.Warmup + cfg.Partition + cfg.Cooldown)
	partitionAt := time.Now().Add(cfg.Warmup)
	partitioned, healed := false, false
	for time.Now().Before(end) {
		now := time.Now()
		if !partitioned && now.After(partitionAt) {
			// Both ends drop A<->B traffic: a symmetric network cut that
			// outlasts every protocol timeout.
			nodes["A"].inj.Partition("A", "B", false, cfg.Partition)
			nodes["B"].inj.Partition("A", "B", false, cfg.Partition)
			partitioned = true
			logf("overload: PARTITION A-B for %s", cfg.Partition)
		}
		if partitioned && !healed && now.After(partitionAt.Add(cfg.Partition)) {
			healed = true // injector heals on its own schedule
			logf("overload: partition healed")
		}
		src := chaosItem(rng.Intn(cfg.Items))
		dst := chaosItem(rng.Intn(cfg.Items))
		for dst == src {
			dst = chaosItem(rng.Intn(cfg.Items))
		}
		amt := 1 + rng.Intn(10)
		coord := sites[rng.Intn(len(sites))]
		prog := fmt.Sprintf("%s = %s - %d if %s >= %d; %s = %s + %d if %s >= %d",
			src, src, amt, src, amt, dst, dst, amt, src, amt)
		h, err := nodes[coord].node.Submit(coord, prog)
		switch {
		case errors.Is(err, cluster.ErrOverload):
			report.Shed++
		case err != nil:
			return nil, fmt.Errorf("submit via %s: %w", coord, err)
		default:
			report.Submitted++
			handles = append(handles, pending{h: h})
		}
		// Offered load well above what AdmissionLimit in-flight slots
		// drain during a partition: ~300 submissions/s across the sites.
		time.Sleep(time.Duration(2+rng.Intn(3)) * time.Millisecond)
	}

	// ----- settle ---------------------------------------------------------
	for _, n := range nodes {
		n.inj.Clear()
	}
	// Every admitted transaction decides within its deadline; drain the
	// tail before auditing so handle statuses are final.
	for _, pt := range handles {
		pt.h.Wait(cfg.TxnDeadline + time.Second)
	}
	settleStart := time.Now()
	deadline := settleStart.Add(cfg.Settle)
	var lastIssues []string
	for time.Now().Before(deadline) {
		lastIssues = overloadQuiesceIssues(nodes, sites, placement, cfg.Items)
		if len(lastIssues) == 0 {
			break
		}
		time.Sleep(200 * time.Millisecond)
	}
	report.SettleTime = time.Since(settleStart)
	report.Violations = append(report.Violations, lastIssues...)
	close(samplerQuit)
	<-samplerDone
	report.MaxPolyPopulation = int(maxPoly.Load())
	// Fold still-open lock-hold intervals into the blocking accountant
	// before any item.blocked.seconds histogram is read.
	for _, n := range nodes {
		n.node.SyncBlockedAccounting()
	}

	// ----- audits ---------------------------------------------------------
	// Bounded memory: no sample ever exceeded the configured budget.
	if report.MaxPolyPopulation > cfg.MaxPolyBudget {
		report.Violations = append(report.Violations,
			fmt.Sprintf("polyvalue population peaked at %d, budget %d", report.MaxPolyPopulation, cfg.MaxPolyBudget))
	}
	// Conservation: the guarded transfers preserve the total.
	var total int64
	for i := 0; i < cfg.Items; i++ {
		item := chaosItem(i)
		p := nodes[placement(item)].node.Read(item)
		v, certain := p.IsCertain()
		if !certain {
			report.Violations = append(report.Violations,
				fmt.Sprintf("item %s still uncertain at end: %v", item, p))
			continue
		}
		n, ok := value.AsInt(v)
		if !ok {
			report.Violations = append(report.Violations,
				fmt.Sprintf("item %s not an int: %v", item, v))
			continue
		}
		total += n
	}
	if total != wantTotal {
		report.Violations = append(report.Violations,
			fmt.Sprintf("conservation broken: total %d, want %d", total, wantTotal))
	}
	var committedTIDs []string
	for _, pt := range handles {
		switch pt.h.Status() {
		case cluster.StatusCommitted:
			report.Committed++
			committedTIDs = append(committedTIDs, string(pt.h.TID))
		case cluster.StatusAborted:
			report.Aborted++
		default:
			report.Pending++
		}
	}
	// Poly mode restored everywhere, and the overload plane was actually
	// exercised: metrics roll-up per site.
	for _, id := range sites {
		n := nodes[id]
		if mode := n.reg.Gauge("site.budget.mode", metrics.L("site", string(id))).Value(); mode != 0 {
			report.Violations = append(report.Violations,
				fmt.Sprintf("site %s still degraded (budget mode %d) after heal", id, mode))
		}
		report.Degradations += n.reg.Counter("site.budget.degradations", metrics.L("site", string(id))).Value()
		report.Restores += n.reg.Counter("site.budget.restores", metrics.L("site", string(id))).Value()
		report.DegradedTxns += n.reg.Counter("txn.degraded.blocking").Value()
		report.DeadlineExceeded += n.reg.Counter("txn.deadline.exceeded", metrics.L("role", "coordinator")).Value() +
			n.reg.Counter("txn.deadline.exceeded", metrics.L("role", "participant")).Value()
		report.Suspects += n.reg.Counter("transport.peer.suspects").Value()
		report.Recoveries += n.reg.Counter("transport.peer.recoveries").Value()
	}
	if report.Shed == 0 {
		report.Violations = append(report.Violations,
			"no submissions shed: offered load never exceeded the admission cap")
	}
	if report.Suspects == 0 {
		report.Violations = append(report.Violations,
			"failure detector never suspected a partitioned peer")
	}
	if report.DeadlineExceeded == 0 {
		report.Violations = append(report.Violations,
			"no transaction ever hit its deadline: the partition should doom cross-cut work")
	}
	for _, id := range sites {
		collectBlockedSeconds(report.BlockedItemSeconds, nodes[id].reg)
	}
	var spanViolations []string
	report.Spans, spanViolations = auditTraceCompleteness(spanLogs, sites, committedTIDs, cfg.SpanCap)
	report.Violations = append(report.Violations, spanViolations...)

	// ----- teardown audit -------------------------------------------------
	for id, n := range nodes {
		n.node.Close()
		delete(nodes, id)
	}
	leakDeadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > baseline+4 && time.Now().Before(leakDeadline) {
		time.Sleep(100 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > baseline+4 {
		report.Violations = append(report.Violations,
			fmt.Sprintf("goroutine leak: %d running, baseline %d", got, baseline))
	}

	sort.Strings(report.Violations)
	logf("overload: %s", report)
	if len(report.Violations) > 0 {
		dumpTraceArtifacts(dir, spanLogs, sites, logf)
		logf("overload: data dir kept at %s", dir)
	} else {
		os.RemoveAll(dir)
	}
	return report, nil
}

// overloadQuiesceIssues reports what still blocks quiescence after the
// heal: unreduced polyvalues, uncertain items, degraded budget mode, or
// invariant violations.
func overloadQuiesceIssues(nodes map[protocol.SiteID]*overloadNode, sites []protocol.SiteID,
	placement func(string) protocol.SiteID, items int) []string {
	var issues []string
	for _, id := range sites {
		n := nodes[id]
		if polys := n.node.PolyItems(); len(polys) > 0 {
			issues = append(issues, fmt.Sprintf("site %s: unreduced polyvalues %v", id, polys))
		}
		if mode := n.reg.Gauge("site.budget.mode", metrics.L("site", string(id))).Value(); mode != 0 {
			issues = append(issues, fmt.Sprintf("site %s: still in degraded mode", id))
		}
		if v := n.node.CheckInvariants(); len(v) > 0 {
			issues = append(issues, v...)
		}
	}
	for i := 0; i < items; i++ {
		item := chaosItem(i)
		if _, certain := nodes[placement(item)].node.Read(item).IsCertain(); !certain {
			issues = append(issues, fmt.Sprintf("item %s uncertain", item))
		}
	}
	return issues
}
