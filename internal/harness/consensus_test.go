package harness

import (
	"testing"
	"time"

	"repro/internal/cluster"
)

// TestConsensusChaosSeeded is the decision-plane showdown's safety leg:
// the chaos torture run with the paxos plane on a 5-site cluster
// (acceptor group = all five, F = 2).  Every kill cycle takes down the
// armed victim at CrashAfterReady — a participant holding a durable
// ready whose coordinator will now have to decide without it — PLUS two
// more sites at the same instant, so each cycle is the ISSUE's
// F-failures-and-then-some scenario over real TCP sockets and WAL
// files.  Strand guarantees each cycle leaves a participant in the
// prepared-but-unresolved window.  The run must end quiescent: every
// in-flight transaction durably decided by the surviving majority,
// conservation intact, no residual polyvalues, no leftover acceptor
// state (cluster invariant 6), and every committed transaction's trace
// showing a visible accept quorum.
func TestConsensusChaosSeeded(t *testing.T) {
	cfg := ChaosConfig{
		Seed:          20260808,
		Sites:         5,
		Items:         10, // Strand needs a non-victim site owning two
		Txns:          30,
		KillCycles:    3,
		Settle:        75 * time.Second,
		DecisionPlane: cluster.PlanePaxos,
		CrashPoint:    cluster.CrashAfterReady,
		Strand:        true,
		ExtraKills:    2,
		Logf:          t.Logf,
	}
	if testing.Short() {
		cfg.Txns = 10
		cfg.KillCycles = 1
		cfg.Settle = 60 * time.Second
	}
	report, err := RunChaos(cfg)
	if err != nil {
		t.Fatalf("consensus chaos run failed to execute: %v", err)
	}
	t.Logf("%s", report)
	for k, v := range report.Totals {
		t.Logf("  %s = %d", k, v)
	}
	if len(report.Violations) > 0 {
		for _, v := range report.Violations {
			t.Errorf("violation: %s", v)
		}
	}
	// Each cycle kills 1 + ExtraKills sites.
	wantKills := cfg.KillCycles * (1 + cfg.ExtraKills)
	if report.Kills < wantKills {
		t.Errorf("kills = %d, want >= %d", report.Kills, wantKills)
	}
	if report.Committed == 0 {
		t.Error("no transaction committed — the schedule exercised nothing")
	}
	if report.Totals["paxos.accepts"] == 0 {
		t.Error("no paxos accepts recorded — the paxos plane never engaged")
	}
}

// TestChaosDecisionPlaneShowdown is the head-to-head on real sockets:
// the same seeded chaos schedule three times — polyvalues over the wal
// plane, Paxos Commit, and classic blocking 2PC — with every kill
// victim crashed at after-ready and fed a strand transfer, so each kill
// cycle deterministically leaves a participant in doubt holding two
// writes.  The blocked-item-seconds split is the result EXPERIMENTS.md
// records: both polyvalue planes keep availability blocking near zero
// while the budget-forced run pays for every outage window.
func TestChaosDecisionPlaneShowdown(t *testing.T) {
	base := ChaosConfig{
		Seed:       20260808,
		Sites:      5,
		Items:      10,
		Txns:       30,
		KillCycles: 3,
		Settle:     75 * time.Second,
		CrashPoint: cluster.CrashAfterReady,
		Strand:     true,
		Logf:       t.Logf,
	}
	if testing.Short() {
		base.Txns = 10
		base.KillCycles = 2
		base.Settle = 60 * time.Second
	}
	run := func(name string, mut func(*ChaosConfig)) *ChaosReport {
		cfg := base
		mut(&cfg)
		report, err := RunChaos(cfg)
		if err != nil {
			t.Fatalf("%s: chaos run failed to execute: %v", name, err)
		}
		blocked := report.BlockedItemSeconds
		t.Logf("%s: %s", name, report)
		t.Logf("%s: blocked item-seconds lock=%.3f indoubt=%.3f degraded=%.3f",
			name, blocked["lock"], blocked["indoubt"], blocked["degraded"])
		for _, v := range report.Violations {
			t.Errorf("%s: violation: %s", name, v)
		}
		return report
	}

	wal := run("wal+poly", func(cfg *ChaosConfig) {})
	paxos := run("paxos", func(cfg *ChaosConfig) { cfg.DecisionPlane = cluster.PlanePaxos })
	blocking := run("blocking2pc", func(cfg *ChaosConfig) { cfg.Policy = cluster.PolicyBlocking })

	avail := func(r *ChaosReport) float64 {
		return r.BlockedItemSeconds["indoubt"] + r.BlockedItemSeconds["degraded"]
	}
	// The budget-forced run must pay availability blocking the polyvalue
	// planes do not (each kill cycle strands a two-item transfer).  The
	// shrunk -short schedule's camping windows round to zero, so the
	// ordering only holds on the full schedule; short mode still runs
	// all three planes for the violation and accept-quorum checks.
	if !testing.Short() && (avail(blocking) <= avail(wal) || avail(blocking) <= avail(paxos)) {
		t.Errorf("blocking run should accrue the most availability blocking: wal=%.3f paxos=%.3f blocking=%.3f",
			avail(wal), avail(paxos), avail(blocking))
	}
	if paxos.Totals["paxos.accepts"] == 0 {
		t.Error("paxos run recorded no accepts")
	}
}
