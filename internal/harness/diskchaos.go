// Disk-fault torture: RunDiskChaos drives the same multi-site TCP
// cluster as RunChaos, but the weather hits the storage plane instead of
// the network — every site's WAL lives on a storage.FaultFS injecting
// fsync failures, torn writes, ENOSPC and slow-disk delays, with
// read-path bit-flips armed against recovery reads on kill cycles.  The
// run asserts the fsyncgate discipline end to end: a site whose log
// write fails takes a durability panic (never acking Prepared/Committed
// it cannot hold), refuses restart, and is revived only by rebuilding
// the node from the on-disk bytes; whatever the disk did, the cluster
// must settle into a state that conserves money, holds zero unreduced
// polyvalues, recovers every WAL idempotently, and passes a full
// crash-recovery frontier sweep over every site's final log.
package harness

import (
	"fmt"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/polyvalue"
	"repro/internal/protocol"
	"repro/internal/storage"
	"repro/internal/transport"
	"repro/internal/value"
)

// DiskChaosConfig parameterizes one disk-fault torture run.  The zero
// value (plus a seed) is a sensible full run; tests shrink Txns and
// KillCycles for smoke.
type DiskChaosConfig struct {
	// Seed drives every random choice: schedule, fault parameters,
	// victims.  Same seed, same schedule.
	Seed int64
	// Sites is the cluster size, clamped to [3, 5].  Default 3.
	Sites int
	// Items is the number of bank accounts, spread round-robin over the
	// sites.  Default 4.
	Items int
	// Txns is the number of guarded transfers submitted.  Default 40.
	Txns int
	// KillCycles is the number of kill-9 cycles woven into the schedule.
	// Each clears the victim's disk rules (the rebuild models a machine
	// replacement), arms a crash point half the time and a one-shot
	// read-path bit-flip against the recovery read half the time, then
	// hard-kills the node and rebuilds it over the same WAL.  Default 3.
	KillCycles int
	// Settle bounds the final quiescence wait.  Default 45s.
	Settle time.Duration
	// DataDir holds the per-site WAL files; empty means a fresh temp
	// directory (removed on success, kept on failure for inspection).
	DataDir string
	// Lanes is the per-site execution lane count (see
	// cluster.Config.Lanes); 0 defaults from POLY_LANES.
	Lanes int
	// Logf receives progress lines; nil discards them.
	Logf func(format string, args ...any)
}

// DiskChaosReport summarizes a finished disk torture run.  Violations
// empty means every assertion held.
type DiskChaosReport struct {
	Seed      int64
	Sites     int
	Txns      int
	Committed int
	Aborted   int
	Pending   int
	// Kills counts hard node kills (kill cycles); Rebuilds counts node
	// rebuilds forced by durability panics (a rebuilt kill victim is a
	// kill, not a rebuild).
	Kills    int
	Rebuilds int
	// DiskFaultCmds is the number of disk-weather commands applied.
	DiskFaultCmds int
	// DurabilityPanics sums site.durability.panics across sites: how
	// many incarnations died rather than ack durability after a failed
	// WAL write or fsync.
	DurabilityPanics int64
	// DiskFaultsInjected sums storage.fault.injected across sites.
	DiskFaultsInjected int64
	// CorruptReads sums storage.corrupt.reads: recovery read passes
	// whose damage was detected by CRC and healed on re-read.
	CorruptReads int64
	// FrontierFrames / FrontierTorn total the crash-recovery frontier
	// sweep over every site's final WAL: complete-frame prefixes and
	// torn-tail variants recovered with all invariants intact.
	FrontierFrames int
	FrontierTorn   int
	SettleTime     time.Duration
	// Violations lists every failed end-state assertion.  Empty = pass.
	Violations []string
}

func (r *DiskChaosReport) String() string {
	status := "PASS"
	if len(r.Violations) > 0 {
		status = fmt.Sprintf("FAIL (%d violations)", len(r.Violations))
	}
	return fmt.Sprintf("diskchaos seed=%d sites=%d txns=%d committed=%d aborted=%d pending=%d kills=%d rebuilds=%d diskcmds=%d injected=%d panics=%d corrupt-reads=%d frontier=%d/%d settle=%s: %s",
		r.Seed, r.Sites, r.Txns, r.Committed, r.Aborted, r.Pending, r.Kills, r.Rebuilds,
		r.DiskFaultCmds, r.DiskFaultsInjected, r.DurabilityPanics, r.CorruptReads,
		r.FrontierFrames, r.FrontierTorn, r.SettleTime.Round(time.Millisecond), status)
}

type diskChaosRun struct {
	cfg    DiskChaosConfig
	rng    *rand.Rand
	sites  []protocol.SiteID
	peers  map[protocol.SiteID]string
	nodes  map[protocol.SiteID]*cluster.Cluster
	report *DiskChaosReport
	// disks and regs persist across kill/rebuild cycles: the FaultFS is
	// the disk under the node, not part of the node, and a rebuilt site
	// keeps accumulating into the same metric series.
	disks map[protocol.SiteID]*storage.FaultFS
	regs  map[protocol.SiteID]*metrics.Registry
	// weather round-robins the fault kind so every run exercises fsync
	// failure, torn write, ENOSPC and slow-disk regardless of seed.
	weatherIdx int
}

func (c *diskChaosRun) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

func (c *diskChaosRun) placement(item string) protocol.SiteID {
	n := 0
	fmt.Sscanf(item[2:], "%d", &n)
	return c.sites[n%len(c.sites)]
}

// start boots (or re-boots) one site over ln; when ln is nil the site's
// known address is rebound, retrying while the dead node's socket tears
// down.  The WAL opens through the site's persistent FaultFS, and the
// node runs SyncWAL so every event's outputs wait on a real fsync —
// which is what gives the injected fsync failures teeth.
func (c *diskChaosRun) start(id protocol.SiteID, ln net.Listener) error {
	if ln == nil {
		var err error
		for i := 0; i < 100; i++ {
			ln, err = net.Listen("tcp", c.peers[id])
			if err == nil {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		if err != nil {
			return fmt.Errorf("rebind %s: %w", c.peers[id], err)
		}
	}
	tcp := transport.NewTCPWithListener(transport.TCPConfig{
		Self:       id,
		Peers:      c.peers,
		BackoffMin: 5 * time.Millisecond,
		BackoffMax: 100 * time.Millisecond,
		Seed:       c.cfg.Seed + int64(len(id)),
		Metrics:    c.regs[id],
	}, ln)
	node, err := cluster.NewNode(cluster.Config{
		Sites:         c.sites,
		WaitTimeout:   100 * time.Millisecond,
		ReadyTimeout:  500 * time.Millisecond,
		RetryInterval: 100 * time.Millisecond,
		Placement:     c.placement,
		Metrics:       c.regs[id],
		DataDir:       c.cfg.DataDir,
		SyncWAL:       true,
		DiskFS:        c.disks[id],
		Lanes:         c.cfg.Lanes,
	}, id, tcp)
	if err != nil {
		tcp.Close()
		return fmt.Errorf("NewNode(%s): %w", id, err)
	}
	c.nodes[id] = node
	return nil
}

// rebuild replaces a site's incarnation entirely: the node closes, its
// disk rules are cleared (a durability panic demands a disk the site
// can trust again — the model is fsck plus hardware replacement), and a
// fresh node recovers from the on-disk WAL bytes.  This is the ONLY way
// back for a durability-lost site: Restart is refused because that
// incarnation's memory may run ahead of its disk.
func (c *diskChaosRun) rebuild(id protocol.SiteID, why string) error {
	c.disks[id].Clear()
	if n := c.nodes[id]; n != nil {
		n.Close()
		c.nodes[id] = nil
	}
	if err := c.start(id, nil); err != nil {
		return err
	}
	c.report.Rebuilds++
	c.logf("diskchaos: REBUILD %s (%s)", id, why)
	return nil
}

// reviveDurabilityLost rebuilds every site currently down with a
// durability panic, so the schedule keeps most of the cluster live.
func (c *diskChaosRun) reviveDurabilityLost() error {
	for _, id := range c.sites {
		n := c.nodes[id]
		if n == nil || !n.DurabilityLost(id) {
			continue
		}
		if err := c.rebuild(id, "durability panic"); err != nil {
			return err
		}
	}
	return nil
}

// diskCmd produces the next disk-weather command.  The kind cycles
// round-robin — every run of at least four weather steps injects a
// fsync failure, a torn write, an ENOSPC and a slow-disk window — while
// the seeded rng draws the parameters.  Failures are one-shot: a single
// fsync failure is already fatal to the incarnation (the FileLog error
// is sticky and the site durability-panics), so persistent-medium rules
// would only serialize the run behind rebuilds.
func (c *diskChaosRun) diskCmd() string {
	kind := c.weatherIdx % 4
	c.weatherIdx++
	switch kind {
	case 0:
		return "fsync p=1 once"
	case 1:
		return "torn p=1 once"
	case 2:
		return "enospc p=1 once"
	default:
		return fmt.Sprintf("slow p=%.2f min=1ms max=%dms", 0.2+0.3*c.rng.Float64(), 2+c.rng.Intn(8))
	}
}

// RunDiskChaos executes one seeded disk torture run and returns its
// report.  A non-nil error means the run could not execute
// (infrastructure failure); protocol- or durability-level failures land
// in report.Violations instead.
func RunDiskChaos(cfg DiskChaosConfig) (*DiskChaosReport, error) {
	if cfg.Sites < 3 {
		cfg.Sites = 3
	}
	if cfg.Sites > 5 {
		cfg.Sites = 5
	}
	if cfg.Items <= 0 {
		cfg.Items = 4
	}
	if cfg.Txns <= 0 {
		cfg.Txns = 40
	}
	if cfg.KillCycles < 0 {
		cfg.KillCycles = 0
	} else if cfg.KillCycles == 0 {
		cfg.KillCycles = 3
	}
	if cfg.Settle <= 0 {
		cfg.Settle = 45 * time.Second
	}
	if cfg.Lanes == 0 {
		cfg.Lanes = envLanes()
	}
	ownDir := false
	if cfg.DataDir == "" {
		dir, err := os.MkdirTemp("", "diskchaos-*")
		if err != nil {
			return nil, err
		}
		cfg.DataDir = dir
		ownDir = true
	}

	baseline := runtime.NumGoroutine()
	c := &diskChaosRun{
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		peers:  map[protocol.SiteID]string{},
		nodes:  map[protocol.SiteID]*cluster.Cluster{},
		report: &DiskChaosReport{Seed: cfg.Seed, Sites: cfg.Sites, Txns: cfg.Txns},
		disks:  map[protocol.SiteID]*storage.FaultFS{},
		regs:   map[protocol.SiteID]*metrics.Registry{},
	}
	for i := 0; i < cfg.Sites; i++ {
		c.sites = append(c.sites, protocol.SiteID(string(rune('A'+i))))
	}
	for _, id := range c.sites {
		id := id
		c.regs[id] = metrics.NewRegistry()
		c.disks[id] = storage.NewFaultFS(storage.OSFS, storage.FaultFSConfig{
			Seed:    cfg.Seed ^ int64(sum(id)),
			Metrics: c.regs[id],
			Logf: func(format string, args ...any) {
				c.logf("disk[%s]: "+format, append([]any{id}, args...)...)
			},
		})
	}

	lns := map[protocol.SiteID]net.Listener{}
	for _, id := range c.sites {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("listen: %w", err)
		}
		lns[id] = ln
		c.peers[id] = ln.Addr().String()
	}
	for _, id := range c.sites {
		if err := c.start(id, lns[id]); err != nil {
			return nil, err
		}
	}
	defer func() {
		for _, n := range c.nodes {
			if n != nil {
				n.Close()
			}
		}
	}()

	// Seed the accounts: every item starts at 100 on its owning site.
	const initial = 100
	for i := 0; i < cfg.Items; i++ {
		item := chaosItem(i)
		owner := c.placement(item)
		if err := c.nodes[owner].Load(item, polyvalue.Simple(value.Int(initial))); err != nil {
			return nil, fmt.Errorf("load %s: %w", item, err)
		}
	}
	wantTotal := int64(initial * cfg.Items)
	c.logf("diskchaos: seed=%d sites=%v items=%d txns=%d kills=%d dir=%s",
		cfg.Seed, c.sites, cfg.Items, cfg.Txns, cfg.KillCycles, cfg.DataDir)

	// ----- schedule phase -------------------------------------------------
	var handles []*cluster.Handle
	killAt := map[int]bool{}
	if cfg.KillCycles > 0 {
		stride := cfg.Txns / (cfg.KillCycles + 1)
		if stride < 1 {
			stride = 1
		}
		for k := 1; k <= cfg.KillCycles; k++ {
			killAt[k*stride] = true
		}
	}
	for i := 0; i < cfg.Txns; i++ {
		// A durability-panicked site cannot restart: rebuild it so the
		// schedule keeps running against a mostly-live cluster.
		if err := c.reviveDurabilityLost(); err != nil {
			return nil, err
		}
		// Disk weather: roughly every other step a site's disk misbehaves.
		if c.rng.Float64() < 0.5 {
			id := c.sites[c.rng.Intn(len(c.sites))]
			cmd := c.diskCmd()
			if _, err := c.disks[id].Apply(cmd); err != nil {
				return nil, fmt.Errorf("disk fault %q: %w", cmd, err)
			}
			c.report.DiskFaultCmds++
			c.logf("diskchaos[%d]: %s: DISK %s", i, id, cmd)
		}
		// Kill cycle: kill -9 the victim and rebuild it over the same
		// WAL, optionally through an armed crash point (the process dies
		// mid-protocol) and a read-path bit-flip against the rebuild's
		// recovery read (CRC must catch it; the re-read heals it).
		if killAt[i] {
			victim := c.sites[c.rng.Intn(len(c.sites))]
			if n := c.nodes[victim]; n != nil {
				c.disks[victim].Clear()
				if c.rng.Intn(2) == 0 {
					pts := cluster.CrashPoints()
					pt := pts[c.rng.Intn(len(pts))]
					_ = n.ArmCrash(victim, pt)
					c.logf("diskchaos[%d]: %s: armed crash point %s", i, victim, pt)
				}
				if c.rng.Intn(2) == 0 {
					if _, err := c.disks[victim].Apply("readflip p=1 once"); err != nil {
						return nil, err
					}
					c.report.DiskFaultCmds++
					c.logf("diskchaos[%d]: %s: armed recovery read flip", i, victim)
				}
				time.Sleep(time.Duration(50+c.rng.Intn(150)) * time.Millisecond)
				c.logf("diskchaos[%d]: KILL %s", i, victim)
				n.Close()
				c.nodes[victim] = nil
				c.report.Kills++
				time.Sleep(time.Duration(100+c.rng.Intn(200)) * time.Millisecond)
				if err := c.start(victim, nil); err != nil {
					return nil, err
				}
				c.logf("diskchaos[%d]: RESTART %s", i, victim)
			}
		}
		// One guarded transfer between two random accounts via a random
		// live coordinator: conservation is the run-wide invariant.
		src := chaosItem(c.rng.Intn(cfg.Items))
		dst := chaosItem(c.rng.Intn(cfg.Items))
		for dst == src {
			dst = chaosItem(c.rng.Intn(cfg.Items))
		}
		amt := 1 + c.rng.Intn(20)
		coord := c.sites[c.rng.Intn(len(c.sites))]
		n := c.nodes[coord]
		if n == nil {
			continue
		}
		txt := fmt.Sprintf("%s = %s - %d if %s >= %d; %s = %s + %d if %s >= %d",
			src, src, amt, src, amt, dst, dst, amt, src, amt)
		h, err := n.Submit(coord, txt)
		if err != nil {
			return nil, fmt.Errorf("submit via %s: %w", coord, err)
		}
		handles = append(handles, h)
		time.Sleep(time.Duration(10+c.rng.Intn(40)) * time.Millisecond)
	}

	// ----- settle phase ---------------------------------------------------
	// The weather ends: every disk heals, durability-lost sites rebuild,
	// ordinary crash casualties restart, and the cluster must quiesce.
	for _, d := range c.disks {
		d.Clear()
	}
	settleStart := time.Now()
	deadline := settleStart.Add(cfg.Settle)
	var lastIssues []string
	for time.Now().Before(deadline) {
		lastIssues = c.quiesceIssues()
		if len(lastIssues) == 0 {
			break
		}
		time.Sleep(200 * time.Millisecond)
	}
	c.report.SettleTime = time.Since(settleStart)
	if len(lastIssues) > 0 {
		c.report.Violations = append(c.report.Violations, lastIssues...)
	}

	// ----- audits ---------------------------------------------------------
	var total int64
	for i := 0; i < cfg.Items; i++ {
		item := chaosItem(i)
		n := c.nodes[c.placement(item)]
		if n == nil {
			c.report.Violations = append(c.report.Violations,
				fmt.Sprintf("item %s: owning site not running at end", item))
			continue
		}
		p := n.Read(item)
		v, certain := p.IsCertain()
		if !certain {
			c.report.Violations = append(c.report.Violations,
				fmt.Sprintf("item %s still uncertain at end: %v", item, p))
			continue
		}
		iv, ok := value.AsInt(v)
		if !ok {
			c.report.Violations = append(c.report.Violations,
				fmt.Sprintf("item %s not an int: %v", item, v))
			continue
		}
		total += iv
	}
	if total != wantTotal {
		c.report.Violations = append(c.report.Violations,
			fmt.Sprintf("conservation broken: total %d, want %d", total, wantTotal))
	}
	for _, h := range handles {
		switch h.Status() {
		case cluster.StatusCommitted:
			c.report.Committed++
		case cluster.StatusAborted:
			c.report.Aborted++
		default:
			c.report.Pending++
		}
	}
	for _, id := range c.sites {
		for _, pt := range c.regs[id].Snapshot().Points {
			if pt.Kind != metrics.KindCounter {
				continue
			}
			switch pt.Name {
			case "site.durability.panics":
				c.report.DurabilityPanics += pt.Value
			case "storage.corrupt.reads":
				c.report.CorruptReads += pt.Value
			case "storage.fault.injected":
				c.report.DiskFaultsInjected += pt.Value
			}
		}
	}

	// ----- teardown audits ------------------------------------------------
	for id, n := range c.nodes {
		if n != nil {
			n.Close()
			c.nodes[id] = nil
		}
	}
	leakDeadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > baseline+4 && time.Now().Before(leakDeadline) {
		time.Sleep(100 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > baseline+4 {
		c.report.Violations = append(c.report.Violations,
			fmt.Sprintf("goroutine leak: %d running, baseline %d", got, baseline))
	}
	// Every site's final WAL must recover idempotently AND survive the
	// full crash-recovery frontier sweep: recovery from every frame
	// boundary and torn tail a power cut could have left behind.
	for _, id := range c.sites {
		path := filepath.Join(cfg.DataDir, string(id)+".wal")
		data, err := os.ReadFile(path)
		if err != nil {
			c.report.Violations = append(c.report.Violations,
				fmt.Sprintf("site %s: read WAL: %v", id, err))
			continue
		}
		s1, err := storage.Recover(data)
		if err != nil {
			c.report.Violations = append(c.report.Violations,
				fmt.Sprintf("site %s: WAL recovery: %v", id, err))
			continue
		}
		s2, err := storage.Recover(s1.WALBytes())
		if err != nil {
			c.report.Violations = append(c.report.Violations,
				fmt.Sprintf("site %s: second-generation recovery: %v", id, err))
			continue
		}
		if a, b := fmt.Sprint(s1.Items()), fmt.Sprint(s2.Items()); a != b {
			c.report.Violations = append(c.report.Violations,
				fmt.Sprintf("site %s: recovery not idempotent: %s vs %s", id, a, b))
		}
		fr := storage.FrontierSweep(data)
		c.report.FrontierFrames += fr.Frames
		c.report.FrontierTorn += fr.Torn
		for _, v := range fr.Violations {
			c.report.Violations = append(c.report.Violations,
				fmt.Sprintf("site %s: %s", id, v))
		}
	}

	sort.Strings(c.report.Violations)
	c.logf("diskchaos: %s", c.report)
	if ownDir && len(c.report.Violations) == 0 {
		os.RemoveAll(cfg.DataDir)
	}
	return c.report, nil
}

// quiesceIssues reports what still blocks quiescence, reviving sites as
// a side effect: durability-lost incarnations rebuild from disk,
// ordinary crash casualties restart in place.
func (c *diskChaosRun) quiesceIssues() []string {
	var issues []string
	for _, id := range c.sites {
		n := c.nodes[id]
		if n == nil {
			issues = append(issues, fmt.Sprintf("site %s not running", id))
			continue
		}
		if n.DurabilityLost(id) {
			issues = append(issues, fmt.Sprintf("site %s durability-lost", id))
			if err := c.rebuild(id, "durability panic at settle"); err != nil {
				issues = append(issues, fmt.Sprintf("site %s: rebuild: %v", id, err))
			}
			continue
		}
		if n.IsDown(id) {
			n.Restart(id)
			issues = append(issues, fmt.Sprintf("site %s was down", id))
			continue
		}
		if polys := n.PolyItems(); len(polys) > 0 {
			issues = append(issues, fmt.Sprintf("site %s: unreduced polyvalues %v", id, polys))
		}
		if v := n.CheckInvariants(); len(v) > 0 {
			issues = append(issues, v...)
		}
	}
	for i := 0; i < c.cfg.Items; i++ {
		item := chaosItem(i)
		n := c.nodes[c.placement(item)]
		if n == nil {
			continue
		}
		if _, certain := n.Read(item).IsCertain(); !certain {
			issues = append(issues, fmt.Sprintf("item %s uncertain", item))
		}
	}
	return issues
}
