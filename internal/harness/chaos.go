// Package harness drives seeded chaos runs against a real multi-process
// style cluster: every site is its own cluster.NewNode over its own TCP
// transport and WAL file, the transports are wrapped in fault.Injector,
// and a deterministic schedule of transfers, fault-plan commands,
// crash-point armings, and kill/restart cycles is thrown at them.  At
// the end the cluster must quiesce into a state that conserves money,
// holds zero unreduced polyvalues, passes every protocol invariant,
// recovers each WAL idempotently, and leaks no goroutines.
//
// The harness is the repo's executable torture argument for the paper's
// central claim: under arbitrary message loss, duplication, delay,
// corruption, partitions, and site crashes, polyvalues keep items
// available while never surrendering atomicity.
package harness

import (
	"fmt"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/polyvalue"
	"repro/internal/protocol"
	"repro/internal/storage"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/value"
)

// ChaosConfig parameterizes one torture run.  The zero value (plus a
// seed) is a sensible full run; tests shrink Txns/KillCycles for smoke.
type ChaosConfig struct {
	// Seed drives every random choice: schedule, fault parameters,
	// victims.  Same seed, same schedule.
	Seed int64
	// Sites is the cluster size, clamped to [3, 5].  Default 3.
	Sites int
	// Items is the number of bank accounts, spread round-robin over the
	// sites.  Default 4.
	Items int
	// Txns is the number of guarded transfers submitted.  Default 40.
	Txns int
	// KillCycles is the number of kill+restart cycles woven into the
	// schedule (each also arms a crash point half the time).  Default 3.
	KillCycles int
	// Settle bounds the final quiescence wait.  Default 45s.
	Settle time.Duration
	// DataDir holds the per-site WAL files; empty means a fresh temp
	// directory (removed on success, kept on failure for inspection).
	DataDir string
	// SpanCap is the per-site structured-span retention.  0 means the
	// default (65536, far above what a chaos run emits); negative
	// disables span tracing and the trace-completeness audit.  Span logs
	// are harness-owned, so spans survive kill/restart cycles and the
	// run can audit that every committed transaction left a complete
	// causal timeline.
	SpanCap int
	// CrashPoint, when set, is armed on every kill-cycle victim instead
	// of the default "random crash point half the time" — e.g.
	// cluster.CrashAfterDecisionLog to torture the decided-but-
	// unannounced window specifically.
	CrashPoint cluster.CrashPoint
	// Policy selects the participant wait-phase behaviour for every
	// site (cluster.PolicyPolyvalue default; cluster.PolicyBlocking is
	// the classic 2PC baseline that camps on its locks in doubt).
	Policy cluster.Policy
	// MaxPolyBudget is passed through to every site; 1 effectively
	// forces the blocking-2PC degradation the paper's comparison needs.
	MaxPolyBudget int
	// DecisionPlane selects the commit decision plane for every node
	// (cluster.PlaneWAL default, cluster.PlanePaxos for the replicated
	// Paxos Commit plane).
	DecisionPlane cluster.DecisionPlane
	// ExtraKills widens each kill cycle: besides the armed victim, this
	// many additional distinct sites are hard-killed at the same moment
	// and restarted together.  With the paxos plane and 5 sites,
	// ExtraKills=2 is the F-failures-plus-coordinator scenario the 2F+1
	// acceptor group must survive.  Clamped to Sites-1 total kills.
	ExtraKills int
	// Lanes is the per-site key-sharded execution lane count passed to
	// every node (see cluster.Config.Lanes).  0 defaults from the
	// POLY_LANES environment variable, so nightly torture jobs can turn
	// lanes on without threading a flag through every make target; 1
	// forces the classic single event loop.
	Lanes int
	// Strand, with CrashPoint set, submits one extra guarded transfer
	// through each kill victim right after arming it: a transfer between
	// two items co-located on a single OTHER site, so the decision fires
	// the crash point and strands that participant in doubt holding both
	// writes.  Random weather rarely leaves a participant in the
	// prepared-but-unresolved window; this makes every kill cycle do it,
	// which the blocked-item-seconds comparisons need.  Requires enough
	// Items for a non-victim site to own two (Items >= 2*Sites covers
	// every victim choice).
	Strand bool
	// Logf receives progress lines; nil discards them.
	Logf func(format string, args ...any)
}

// ChaosReport summarizes a finished torture run.  Violations empty
// means every assertion held.
type ChaosReport struct {
	Seed       int64
	Sites      int
	Txns       int
	Committed  int
	Aborted    int
	Pending    int
	Kills      int
	FaultCmds  int
	SettleTime time.Duration
	// Violations lists every failed end-state assertion: conservation,
	// residual polyvalues, invariant breaks, WAL non-idempotence,
	// goroutine leaks, lost spans, incomplete timelines.  Empty = the
	// run passed.
	Violations []string
	// Totals is a per-metric roll-up across sites (faults injected,
	// frames corrupted/rejected, queue drops, resends, inquiries).
	Totals map[string]int64
	// Spans is the total number of structured spans collected.
	Spans int
	// BlockedItemSeconds sums item.blocked.seconds across sites, by
	// cause (lock, indoubt, degraded) — the paper's availability claim
	// in one number: polyvalue runs should show (near-)zero indoubt
	// blocking where budget-degraded runs pile it up.
	BlockedItemSeconds map[string]float64
}

func (r *ChaosReport) String() string {
	status := "PASS"
	if len(r.Violations) > 0 {
		status = fmt.Sprintf("FAIL (%d violations)", len(r.Violations))
	}
	return fmt.Sprintf("chaos seed=%d sites=%d txns=%d committed=%d aborted=%d pending=%d kills=%d faults=%d settle=%s: %s",
		r.Seed, r.Sites, r.Txns, r.Committed, r.Aborted, r.Pending, r.Kills, r.FaultCmds, r.SettleTime.Round(time.Millisecond), status)
}

// chaosNode is one running site: its cluster, its injector, and the
// listener address it must rebind after a kill.
type chaosNode struct {
	node *cluster.Cluster
	inj  *fault.Injector
}

type chaosRun struct {
	cfg    ChaosConfig
	rng    *rand.Rand
	sites  []protocol.SiteID
	peers  map[protocol.SiteID]string
	nodes  map[protocol.SiteID]*chaosNode
	report *ChaosReport
	// regs and spanLogs persist across kill/restart cycles — a restarted
	// site keeps accumulating into the same series and span log, so the
	// end-of-run audits see the whole history, not the last incarnation.
	regs     map[protocol.SiteID]*metrics.Registry
	spanLogs map[protocol.SiteID]*trace.SpanLog
}

func (c *chaosRun) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

func (c *chaosRun) placement(item string) protocol.SiteID {
	n, _ := strconv.Atoi(item[2:])
	return c.sites[n%len(c.sites)]
}

func chaosItem(i int) string { return "it" + strconv.Itoa(i) }

// strandTransfer submits a guarded transfer between two items owned by
// a single site other than victim, coordinated by victim itself.  With
// a crash point armed at the victim, the decision kills the coordinator
// and leaves that co-located participant in doubt holding both writes —
// the deterministic stranding ChaosConfig.Strand promises.  Returns a
// nil handle when no other site owns two items.
func (c *chaosRun) strandTransfer(victim protocol.SiteID) (*cluster.Handle, protocol.SiteID, string) {
	byOwner := map[protocol.SiteID][]string{}
	for i := 0; i < c.cfg.Items; i++ {
		item := chaosItem(i)
		owner := c.placement(item)
		byOwner[owner] = append(byOwner[owner], item)
	}
	for _, w := range c.sites {
		items := byOwner[w]
		if w == victim || len(items) < 2 {
			continue
		}
		src, dst := items[0], items[1]
		amt := 1 + c.rng.Intn(5)
		txt := fmt.Sprintf("%s = %s - %d if %s >= %d; %s = %s + %d if %s >= %d",
			src, src, amt, src, amt, dst, dst, amt, src, amt)
		h, err := c.nodes[victim].node.Submit(victim, txt)
		if err != nil {
			return nil, "", ""
		}
		return h, w, txt
	}
	return nil, "", ""
}

// start boots (or re-boots) one site over ln; when ln is nil the site's
// known address is rebound, retrying while the dead process's socket
// tears down.
func (c *chaosRun) start(id protocol.SiteID, ln net.Listener) error {
	if ln == nil {
		var err error
		for i := 0; i < 100; i++ {
			ln, err = net.Listen("tcp", c.peers[id])
			if err == nil {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		if err != nil {
			return fmt.Errorf("rebind %s: %w", c.peers[id], err)
		}
	}
	// One registry spans transport, injector, and cluster so the report
	// can roll the whole fault plane up per site; it persists across
	// restarts of the same site.
	reg := c.regs[id]
	if reg == nil {
		reg = metrics.NewRegistry()
		c.regs[id] = reg
	}
	tcp := transport.NewTCPWithListener(transport.TCPConfig{
		Self:       id,
		Peers:      c.peers,
		BackoffMin: 5 * time.Millisecond,
		BackoffMax: 100 * time.Millisecond,
		Seed:       c.cfg.Seed + int64(len(id)),
		Metrics:    reg,
	}, ln)
	inj := fault.Wrap(tcp, fault.Config{
		Self:    id,
		Seed:    c.cfg.Seed ^ int64(sum(id)),
		Metrics: reg,
		Logf:    c.cfg.Logf,
	})
	node, err := cluster.NewNode(cluster.Config{
		Sites:         c.sites,
		WaitTimeout:   100 * time.Millisecond,
		ReadyTimeout:  500 * time.Millisecond,
		RetryInterval: 100 * time.Millisecond,
		Placement:     c.placement,
		Metrics:       reg,
		DataDir:       c.cfg.DataDir,
		Policy:        c.cfg.Policy,
		MaxPolyBudget: c.cfg.MaxPolyBudget,
		DecisionPlane: c.cfg.DecisionPlane,
		Spans:         c.spanLogs[id],
		Lanes:         c.cfg.Lanes,
	}, id, inj)
	if err != nil {
		inj.Close()
		return fmt.Errorf("NewNode(%s): %w", id, err)
	}
	c.nodes[id] = &chaosNode{node: node, inj: inj}
	return nil
}

// envLanes reads the POLY_LANES environment variable — the nightly
// torture jobs' switch for running every wall-clock harness with
// key-sharded execution lanes without new flags on every make target.
// Unset, empty or unparsable means 0 (classic single event loop).
func envLanes() int {
	n, err := strconv.Atoi(os.Getenv("POLY_LANES"))
	if err != nil || n < 0 {
		return 0
	}
	return n
}

func sum(id protocol.SiteID) int {
	s := 0
	for _, r := range string(id) {
		s += int(r)
	}
	return s
}

func (c *chaosRun) kill(id protocol.SiteID) {
	c.nodes[id].node.Close()
	c.nodes[id] = nil
}

// faultCmd draws one random fault-plan command, biased toward
// self-limiting faults (probabilistic rules the schedule later clears,
// partitions with scheduled heals).
func (c *chaosRun) faultCmd() string {
	a := c.sites[c.rng.Intn(len(c.sites))]
	b := c.sites[c.rng.Intn(len(c.sites))]
	for b == a {
		b = c.sites[c.rng.Intn(len(c.sites))]
	}
	switch c.rng.Intn(6) {
	case 0:
		return fmt.Sprintf("drop to=%s p=%.2f", b, 0.05+0.25*c.rng.Float64())
	case 1:
		return fmt.Sprintf("dup p=%.2f", 0.05+0.20*c.rng.Float64())
	case 2:
		return fmt.Sprintf("delay p=%.2f min=5ms max=%dms", 0.10+0.30*c.rng.Float64(), 20+c.rng.Intn(60))
	case 3:
		return fmt.Sprintf("corrupt to=%s p=%.2f", b, 0.05+0.15*c.rng.Float64())
	case 4:
		return fmt.Sprintf("reset to=%s p=%.2f", b, 0.02+0.08*c.rng.Float64())
	default:
		oneway := ""
		if c.rng.Intn(2) == 0 {
			oneway = " oneway"
		}
		return fmt.Sprintf("partition a=%s b=%s heal=%dms%s", a, b, 200+c.rng.Intn(800), oneway)
	}
}

// RunChaos executes one seeded torture run and returns its report.  A
// non-nil error means the run could not execute (infrastructure
// failure); protocol-level failures land in report.Violations instead.
func RunChaos(cfg ChaosConfig) (*ChaosReport, error) {
	if cfg.Sites < 3 {
		cfg.Sites = 3
	}
	if cfg.Sites > 5 {
		cfg.Sites = 5
	}
	if cfg.Items <= 0 {
		cfg.Items = 4
	}
	if cfg.Txns <= 0 {
		cfg.Txns = 40
	}
	if cfg.KillCycles < 0 {
		cfg.KillCycles = 0
	} else if cfg.KillCycles == 0 {
		cfg.KillCycles = 3
	}
	if cfg.Settle <= 0 {
		cfg.Settle = 45 * time.Second
	}
	if cfg.SpanCap == 0 {
		cfg.SpanCap = 1 << 16
	}
	if cfg.Lanes == 0 {
		cfg.Lanes = envLanes()
	}
	ownDir := false
	if cfg.DataDir == "" {
		dir, err := os.MkdirTemp("", "chaos-*")
		if err != nil {
			return nil, err
		}
		cfg.DataDir = dir
		ownDir = true
	}

	baseline := runtime.NumGoroutine()
	c := &chaosRun{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		peers: map[protocol.SiteID]string{},
		nodes: map[protocol.SiteID]*chaosNode{},
		report: &ChaosReport{Seed: cfg.Seed, Sites: cfg.Sites, Txns: cfg.Txns,
			Totals: map[string]int64{}, BlockedItemSeconds: map[string]float64{}},
		regs:     map[protocol.SiteID]*metrics.Registry{},
		spanLogs: map[protocol.SiteID]*trace.SpanLog{},
	}
	for i := 0; i < cfg.Sites; i++ {
		c.sites = append(c.sites, protocol.SiteID(string(rune('A'+i))))
	}
	if cfg.SpanCap > 0 {
		for _, id := range c.sites {
			c.spanLogs[id] = trace.NewSpanLogFor(string(id), cfg.SpanCap)
		}
	}

	lns := map[protocol.SiteID]net.Listener{}
	for _, id := range c.sites {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("listen: %w", err)
		}
		lns[id] = ln
		c.peers[id] = ln.Addr().String()
	}
	for _, id := range c.sites {
		if err := c.start(id, lns[id]); err != nil {
			return nil, err
		}
	}
	defer func() {
		for _, n := range c.nodes {
			if n != nil {
				n.node.Close()
			}
		}
	}()

	// Seed the accounts: every item starts at 100 on its owning site.
	const initial = 100
	for i := 0; i < cfg.Items; i++ {
		item := chaosItem(i)
		owner := c.placement(item)
		if err := c.nodes[owner].node.Load(item, polyvalue.Simple(value.Int(initial))); err != nil {
			return nil, fmt.Errorf("load %s: %w", item, err)
		}
	}
	wantTotal := int64(initial * cfg.Items)
	c.logf("chaos: seed=%d sites=%v items=%d txns=%d kills=%d dir=%s",
		cfg.Seed, c.sites, cfg.Items, cfg.Txns, cfg.KillCycles, cfg.DataDir)

	// ----- schedule phase -------------------------------------------------
	type pendingTxn struct {
		h     *cluster.Handle
		coord protocol.SiteID
	}
	var handles []pendingTxn
	killAt := map[int]bool{}
	if cfg.KillCycles > 0 {
		stride := cfg.Txns / (cfg.KillCycles + 1)
		if stride < 1 {
			stride = 1
		}
		for k := 1; k <= cfg.KillCycles; k++ {
			killAt[k*stride] = true
		}
	}
	for i := 0; i < cfg.Txns; i++ {
		// Fault weather: roughly every third step changes the plan.
		if c.rng.Float64() < 0.35 {
			id := c.sites[c.rng.Intn(len(c.sites))]
			if n := c.nodes[id]; n != nil {
				cmd := c.faultCmd()
				if _, err := n.inj.Apply(cmd); err != nil {
					return nil, fmt.Errorf("fault %q: %w", cmd, err)
				}
				c.report.FaultCmds++
				c.logf("chaos[%d]: %s: FAULT %s", i, id, cmd)
			}
		}
		// Kill cycle: crash-point half the time, then a hard process
		// kill and a restart over the same WAL.
		if killAt[i] {
			victim := c.sites[c.rng.Intn(len(c.sites))]
			if n := c.nodes[victim]; n != nil {
				switch {
				case c.cfg.CrashPoint != "":
					_ = n.node.ArmCrash(victim, c.cfg.CrashPoint)
					c.logf("chaos[%d]: %s: armed crash point %s", i, victim, c.cfg.CrashPoint)
					if c.cfg.Strand {
						if h, site, txt := c.strandTransfer(victim); h != nil {
							handles = append(handles, pendingTxn{h: h, coord: victim})
							c.logf("chaos[%d]: %s: strand transfer against %s: %s", i, victim, site, txt)
						}
					}
				case c.rng.Intn(2) == 0:
					pts := cluster.CrashPoints()
					pt := pts[c.rng.Intn(len(pts))]
					_ = n.node.ArmCrash(victim, pt)
					c.logf("chaos[%d]: %s: armed crash point %s", i, victim, pt)
				}
				// ExtraKills widens the blast radius: additional distinct
				// live sites die at the same moment as the armed victim
				// (F acceptors + the coordinator, in the paxos scenario).
				victims := []protocol.SiteID{victim}
				for tries := 0; len(victims) < 1+c.cfg.ExtraKills && len(victims) < len(c.sites) && tries < 64; tries++ {
					cand := c.sites[c.rng.Intn(len(c.sites))]
					dup := c.nodes[cand] == nil
					for _, v := range victims {
						if v == cand {
							dup = true
						}
					}
					if !dup {
						victims = append(victims, cand)
					}
				}
				time.Sleep(time.Duration(50+c.rng.Intn(150)) * time.Millisecond)
				for _, v := range victims {
					c.logf("chaos[%d]: KILL %s", i, v)
					c.kill(v)
					c.report.Kills++
				}
				time.Sleep(time.Duration(100+c.rng.Intn(200)) * time.Millisecond)
				for _, v := range victims {
					if err := c.start(v, nil); err != nil {
						return nil, err
					}
					c.logf("chaos[%d]: RESTART %s", i, v)
				}
			}
		}
		// One guarded transfer between two random accounts via a random
		// live coordinator.  The guard makes conservation the invariant:
		// committed or aborted, the sum across accounts never changes.
		src := chaosItem(c.rng.Intn(cfg.Items))
		dst := chaosItem(c.rng.Intn(cfg.Items))
		for dst == src {
			dst = chaosItem(c.rng.Intn(cfg.Items))
		}
		amt := 1 + c.rng.Intn(20)
		coord := c.sites[c.rng.Intn(len(c.sites))]
		n := c.nodes[coord]
		if n == nil {
			continue
		}
		srcTxt := fmt.Sprintf("%s = %s - %d if %s >= %d; %s = %s + %d if %s >= %d",
			src, src, amt, src, amt, dst, dst, amt, src, amt)
		h, err := n.node.Submit(coord, srcTxt)
		if err != nil {
			return nil, fmt.Errorf("submit via %s: %w", coord, err)
		}
		handles = append(handles, pendingTxn{h: h, coord: coord})
		time.Sleep(time.Duration(10+c.rng.Intn(40)) * time.Millisecond)
	}

	// ----- settle phase ---------------------------------------------------
	// Heal everything, clear every fault rule, revive any crash-point
	// casualties, and wait for quiescence.
	for id, n := range c.nodes {
		if n == nil {
			continue
		}
		n.inj.Clear()
		if n.node.IsDown(id) {
			n.node.Restart(id)
			c.logf("chaos: revived %s (crash point had fired)", id)
		}
	}
	settleStart := time.Now()
	deadline := settleStart.Add(cfg.Settle)
	var lastIssues []string
	for time.Now().Before(deadline) {
		lastIssues = c.quiesceIssues()
		if len(lastIssues) == 0 {
			break
		}
		time.Sleep(200 * time.Millisecond)
	}
	c.report.SettleTime = time.Since(settleStart)
	if len(lastIssues) > 0 {
		c.report.Violations = append(c.report.Violations, lastIssues...)
	}
	// Fold still-open lock-hold intervals into the blocking accountant
	// before any item.blocked.seconds histogram is read.
	for _, n := range c.nodes {
		if n != nil {
			n.node.SyncBlockedAccounting()
		}
	}

	// ----- audits ---------------------------------------------------------
	var total int64
	for i := 0; i < cfg.Items; i++ {
		item := chaosItem(i)
		p := c.nodes[c.placement(item)].node.Read(item)
		v, certain := p.IsCertain()
		if !certain {
			c.report.Violations = append(c.report.Violations,
				fmt.Sprintf("item %s still uncertain at end: %v", item, p))
			continue
		}
		n, ok := value.AsInt(v)
		if !ok {
			c.report.Violations = append(c.report.Violations,
				fmt.Sprintf("item %s not an int: %v", item, v))
			continue
		}
		total += n
	}
	if total != wantTotal {
		c.report.Violations = append(c.report.Violations,
			fmt.Sprintf("conservation broken: total %d, want %d", total, wantTotal))
	}
	var committedTIDs []string
	for _, pt := range handles {
		switch pt.h.Status() {
		case cluster.StatusCommitted:
			c.report.Committed++
			committedTIDs = append(committedTIDs, string(pt.h.TID))
		case cluster.StatusAborted:
			c.report.Aborted++
		default:
			// A killed coordinator takes its clients' answers with it;
			// the server-side state is what the audits above verify.
			c.report.Pending++
		}
	}
	for _, id := range c.sites {
		n := c.nodes[id]
		if n == nil {
			continue
		}
		for _, pt := range n.node.Metrics().Snapshot().Points {
			if pt.Kind != metrics.KindCounter || pt.Value == 0 {
				continue
			}
			switch {
			case strings.HasPrefix(pt.Name, "transport.fault."),
				strings.HasPrefix(pt.Name, "transport.decode."),
				strings.HasPrefix(pt.Name, "transport.queue."),
				strings.HasPrefix(pt.Name, "paxos."),
				pt.Name == "network.dropped",
				pt.Name == "txn.decision.resends",
				pt.Name == "txn.outcome.retries":
				c.report.Totals[pt.Key()] += pt.Value
			}
		}
	}
	for _, id := range c.sites {
		collectBlockedSeconds(c.report.BlockedItemSeconds, c.regs[id])
	}
	var spanViolations []string
	c.report.Spans, spanViolations = auditTraceCompleteness(c.spanLogs, c.sites, committedTIDs, cfg.SpanCap)
	c.report.Violations = append(c.report.Violations, spanViolations...)

	// ----- teardown audits ------------------------------------------------
	for id, n := range c.nodes {
		if n != nil {
			n.node.Close()
			c.nodes[id] = nil
		}
	}
	// Goroutine leak check: everything the nodes spawned must wind down.
	leakDeadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > baseline+4 && time.Now().Before(leakDeadline) {
		time.Sleep(100 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > baseline+4 {
		c.report.Violations = append(c.report.Violations,
			fmt.Sprintf("goroutine leak: %d running, baseline %d", got, baseline))
	}
	// WAL recovery idempotence: recovering each site's log twice (and
	// recovering the recovery's own log) must converge on the same state.
	for _, id := range c.sites {
		path := filepath.Join(cfg.DataDir, string(id)+".wal")
		data, err := os.ReadFile(path)
		if err != nil {
			c.report.Violations = append(c.report.Violations,
				fmt.Sprintf("site %s: read WAL: %v", id, err))
			continue
		}
		s1, err := storage.Recover(data)
		if err != nil {
			c.report.Violations = append(c.report.Violations,
				fmt.Sprintf("site %s: WAL recovery: %v", id, err))
			continue
		}
		s2, err := storage.Recover(s1.WALBytes())
		if err != nil {
			c.report.Violations = append(c.report.Violations,
				fmt.Sprintf("site %s: second-generation recovery: %v", id, err))
			continue
		}
		if a, b := fmt.Sprint(s1.Items()), fmt.Sprint(s2.Items()); a != b {
			c.report.Violations = append(c.report.Violations,
				fmt.Sprintf("site %s: recovery not idempotent: %s vs %s", id, a, b))
		}
	}

	sort.Strings(c.report.Violations)
	c.logf("chaos: %s", c.report)
	if len(c.report.Violations) > 0 {
		dumpTraceArtifacts(cfg.DataDir, c.spanLogs, c.sites, c.logf)
	}
	if ownDir && len(c.report.Violations) == 0 {
		os.RemoveAll(cfg.DataDir)
	}
	return c.report, nil
}

// quiesceIssues reports what still blocks quiescence: crashed sites,
// unreduced polyvalues, uncertain items, or invariant violations.
func (c *chaosRun) quiesceIssues() []string {
	var issues []string
	for _, id := range c.sites {
		n := c.nodes[id]
		if n == nil {
			issues = append(issues, fmt.Sprintf("site %s not running", id))
			continue
		}
		if n.node.IsDown(id) {
			n.node.Restart(id)
			issues = append(issues, fmt.Sprintf("site %s was down", id))
			continue
		}
		if polys := n.node.PolyItems(); len(polys) > 0 {
			issues = append(issues, fmt.Sprintf("site %s: unreduced polyvalues %v", id, polys))
		}
		if v := n.node.CheckInvariants(); len(v) > 0 {
			issues = append(issues, v...)
		}
	}
	for i := 0; i < c.cfg.Items; i++ {
		item := chaosItem(i)
		n := c.nodes[c.placement(item)]
		if n == nil {
			continue
		}
		if _, certain := n.node.Read(item).IsCertain(); !certain {
			issues = append(issues, fmt.Sprintf("item %s uncertain", item))
		}
	}
	return issues
}
