package harness

import (
	"testing"
	"time"
)

// TestChaosTortureSeeded is the crash-recovery torture run over real
// TCP sockets and WAL files: seeded faults (drops, duplicates, delays,
// corruption, partitions, connection resets), crash-point armings, and
// hard kill+restart cycles, ending in full quiescence with conservation
// and zero unreduced polyvalues.  Short mode (CI smoke) shrinks the
// schedule; `make chaos` runs the full one.
func TestChaosTortureSeeded(t *testing.T) {
	cfg := ChaosConfig{
		Seed:       20260806,
		Sites:      3,
		Txns:       40,
		KillCycles: 3,
		Settle:     60 * time.Second,
		Logf:       t.Logf,
	}
	if testing.Short() {
		cfg.Txns = 12
		cfg.KillCycles = 1
		cfg.Settle = 45 * time.Second
	}
	report, err := RunChaos(cfg)
	if err != nil {
		t.Fatalf("chaos run failed to execute: %v", err)
	}
	t.Logf("%s", report)
	for k, v := range report.Totals {
		t.Logf("  %s = %d", k, v)
	}
	if len(report.Violations) > 0 {
		for _, v := range report.Violations {
			t.Errorf("violation: %s", v)
		}
	}
	if report.Kills < cfg.KillCycles {
		t.Errorf("kill cycles = %d, want %d", report.Kills, cfg.KillCycles)
	}
	if report.Committed == 0 {
		t.Error("no transaction committed — the schedule exercised nothing")
	}
}

// TestChaosDistinctSeedsDiverge: two different seeds should produce
// observably different schedules (sanity that the seed is plumbed
// through, cheap enough to always run in short mode sizes).
func TestChaosDistinctSeedsDiverge(t *testing.T) {
	if testing.Short() {
		t.Skip("covered by the main torture run in smoke mode")
	}
	a, err := RunChaos(ChaosConfig{Seed: 1, Txns: 8, KillCycles: 1, Settle: 45 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunChaos(ChaosConfig{Seed: 2, Txns: 8, KillCycles: 1, Settle: 45 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Violations) > 0 || len(b.Violations) > 0 {
		t.Fatalf("violations: seed1=%v seed2=%v", a.Violations, b.Violations)
	}
	if a.FaultCmds == b.FaultCmds && a.Committed == b.Committed && a.Aborted == b.Aborted {
		t.Logf("warning: seeds 1 and 2 produced identical summary counts (possible but unlikely)")
	}
}
