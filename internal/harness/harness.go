// Package harness drives cluster-level experiments: a workload runs
// against a live multi-site cluster while coordinators crash at critical
// 2PC moments on a schedule, and the harness measures what the paper
// cares about — whether processing continues (availability), how many
// polyvalues exist over time (the §4 population), and whether the
// database returns to a consistent certain state after repair.
//
// This complements internal/sim: sim reproduces the paper's *abstract*
// §4.2 simulation; harness validates the same claims against the actual
// protocol implementation, goroutine sites, WAL recovery and all.
package harness

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/protocol"
	"repro/internal/value"
	"repro/internal/workload"
)

// Experiment configures one harness run.
type Experiment struct {
	// Sites is the number of database sites (≥ 2).
	Sites int
	// Items is the number of workload items.
	Items int
	// Txns is how many transactions to submit.
	Txns int
	// Workload selects the §5 application domain.
	Workload workload.Kind
	// Policy selects the wait-timeout behaviour under test.
	Policy cluster.Policy
	// CrashEvery crashes the coordinator of every k-th transaction at
	// the critical moment (0 = never).
	CrashEvery int
	// RepairAfter is how long (simulated) a crashed site stays down.
	// Default 3s.
	RepairAfter time.Duration
	// Gap is the simulated time between submissions.  Default 50ms.
	Gap time.Duration
	// SettleTime is how long to run after the last submission so all
	// outcome propagation drains.  Default 30s.
	SettleTime time.Duration
	// Seed drives workload and network randomness.
	Seed int64
	// Net overrides the network config (zero value = 10ms latency).
	Net network.Config
	// Metrics, when set, is the registry the cluster reports into (nil
	// gives the cluster a private one); either way Report.Metrics carries
	// the post-settle snapshot.
	Metrics *metrics.Registry
}

func (e *Experiment) fillDefaults() error {
	if e.Sites < 2 {
		return fmt.Errorf("harness: need ≥ 2 sites, got %d", e.Sites)
	}
	if e.Items < 2 {
		return fmt.Errorf("harness: need ≥ 2 items, got %d", e.Items)
	}
	if e.Txns < 1 {
		return fmt.Errorf("harness: need ≥ 1 transactions, got %d", e.Txns)
	}
	if e.RepairAfter <= 0 {
		e.RepairAfter = 3 * time.Second
	}
	if e.Gap <= 0 {
		e.Gap = 50 * time.Millisecond
	}
	if e.SettleTime <= 0 {
		e.SettleTime = 30 * time.Second
	}
	return nil
}

// Sample is one point of the polyvalue-population time series.
type Sample struct {
	// At is the simulated time of the sample.
	At time.Duration
	// Polys is the cluster-wide count of polyvalued items.
	Polys int
	// SiteDown reports whether any site was down at the sample.
	SiteDown bool
}

// Report is the outcome of one experiment.
type Report struct {
	// Committed/Aborted/Pending count client-visible statuses after
	// settle.
	Committed, Aborted, Pending int
	// DuringFailure counts transactions submitted while some site was
	// down; DuringFailureCommitted of them committed — the availability
	// measure of the A1 ablation.
	DuringFailure          int
	DuringFailureCommitted int
	// PeakPolys and MeanPolys summarize the population time series.
	PeakPolys int
	MeanPolys float64
	// FinalPolys is the count after settle (0 = all uncertainty
	// resolved; the §3.3 liveness property).
	FinalPolys int
	// ConservationOK reports the bank-workload invariant: total money
	// unchanged (always true for other workloads).
	ConservationOK bool
	// TotalBefore/TotalAfter carry the conservation sums for bank runs.
	TotalBefore, TotalAfter int64
	// Stats snapshots the cluster counters.
	Stats cluster.Stats
	// Metrics is the full post-settle metrics snapshot (protocol phases,
	// network message counts, polyvalue lifetimes, WAL activity).
	Metrics metrics.Snapshot
	// Series is the population time series (one sample per submission).
	Series []Sample
	// SimulatedDuration is the total simulated time.
	SimulatedDuration time.Duration
}

// Availability returns the committed fraction of transactions submitted
// during failure windows (1.0 when there were none).
func (r Report) Availability() float64 {
	if r.DuringFailure == 0 {
		return 1
	}
	return float64(r.DuringFailureCommitted) / float64(r.DuringFailure)
}

// Run executes the experiment.
func Run(e Experiment) (Report, error) {
	if err := e.fillDefaults(); err != nil {
		return Report{}, err
	}
	sites := make([]protocol.SiteID, e.Sites)
	for i := range sites {
		sites[i] = protocol.SiteID(fmt.Sprintf("site%d", i))
	}
	net := e.Net
	if net.Latency == 0 {
		net.Latency = 10 * time.Millisecond
	}
	if net.Seed == 0 {
		net.Seed = e.Seed
	}
	c, err := cluster.New(cluster.Config{Sites: sites, Net: net, Policy: e.Policy, Metrics: e.Metrics})
	if err != nil {
		return Report{}, err
	}
	defer c.Close()

	gen, err := workload.New(workload.Config{Kind: e.Workload, Items: e.Items, Seed: e.Seed})
	if err != nil {
		return Report{}, err
	}
	var totalBefore int64
	for item, p := range gen.InitialState() {
		if err := c.Load(item, p); err != nil {
			return Report{}, err
		}
		if v, ok := p.IsCertain(); ok {
			if n, ok := value.AsInt(v); ok {
				totalBefore += n
			}
		}
	}

	var rep Report
	rep.TotalBefore = totalBefore
	// repairAt schedules restarts for sites observed down; the failpoint
	// fires at the next commit decision, so the harness watches actual
	// down state rather than assuming when the crash happens.
	repairAt := map[protocol.SiteID]time.Duration{}
	handles := make([]*cluster.Handle, 0, e.Txns)
	duringFailure := make([]bool, 0, e.Txns)

	anyDown := func() bool {
		for _, s := range sites {
			if c.IsDown(s) {
				return true
			}
		}
		return false
	}

	for i := 0; i < e.Txns; i++ {
		now := c.Now()
		// Schedule repairs for newly observed crashes; apply due ones.
		for _, s := range sites {
			if c.IsDown(s) {
				if _, scheduled := repairAt[s]; !scheduled {
					repairAt[s] = now + e.RepairAfter
				}
			}
		}
		for s, at := range repairAt {
			if at <= now {
				c.Restart(s)
				delete(repairAt, s)
			}
		}
		coord := sites[i%len(sites)]
		if c.IsDown(coord) {
			// Pick a live coordinator instead (clients retarget).
			for _, s := range sites {
				if !c.IsDown(s) {
					coord = s
					break
				}
			}
		}
		if e.CrashEvery > 0 && i > 0 && i%e.CrashEvery == 0 && !c.IsDown(coord) {
			c.ArmCrashBeforeDecision(coord)
		}
		failureWindow := anyDown()
		h, err := c.Submit(coord, gen.Next())
		if err != nil {
			return Report{}, err
		}
		handles = append(handles, h)
		duringFailure = append(duringFailure, failureWindow)
		c.RunFor(e.Gap)

		polys := len(c.PolyItems())
		if polys > rep.PeakPolys {
			rep.PeakPolys = polys
		}
		rep.MeanPolys += float64(polys)
		rep.Series = append(rep.Series, Sample{At: c.Now(), Polys: polys, SiteDown: anyDown()})
	}
	rep.MeanPolys /= float64(e.Txns)

	// Repair everything and settle.
	for _, s := range sites {
		if c.IsDown(s) {
			c.Restart(s)
		}
	}
	c.RunFor(e.SettleTime)

	for i, h := range handles {
		switch h.Status() {
		case cluster.StatusCommitted:
			rep.Committed++
			if duringFailure[i] {
				rep.DuringFailureCommitted++
			}
		case cluster.StatusAborted:
			rep.Aborted++
		default:
			rep.Pending++
		}
		if duringFailure[i] {
			rep.DuringFailure++
		}
	}
	rep.FinalPolys = len(c.PolyItems())
	rep.Stats = c.Stats()
	rep.Metrics = c.Metrics().Snapshot()
	rep.SimulatedDuration = c.Now()

	// Conservation check (bank workload): money is neither created nor
	// destroyed by any mix of commits, aborts and recoveries.
	rep.ConservationOK = true
	if e.Workload == workload.Bank {
		var total int64
		for i := 0; i < e.Items; i++ {
			p := c.Read(gen.Item(i))
			v, ok := p.IsCertain()
			if !ok {
				rep.ConservationOK = false
				continue
			}
			n, _ := value.AsInt(v)
			total += n
		}
		rep.TotalAfter = total
		if total != totalBefore {
			rep.ConservationOK = false
		}
	} else {
		rep.TotalAfter = rep.TotalBefore
	}
	return rep, nil
}

// String summarizes the report.
func (r Report) String() string {
	return fmt.Sprintf(
		"committed=%d aborted=%d pending=%d availability=%.2f peakPolys=%d finalPolys=%d conserved=%v",
		r.Committed, r.Aborted, r.Pending, r.Availability(), r.PeakPolys, r.FinalPolys, r.ConservationOK)
}
