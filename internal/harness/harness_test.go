package harness

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/workload"
)

func TestValidation(t *testing.T) {
	bad := []Experiment{
		{Sites: 1, Items: 10, Txns: 10},
		{Sites: 3, Items: 1, Txns: 10},
		{Sites: 3, Items: 10, Txns: 0},
	}
	for i, e := range bad {
		if _, err := Run(e); err == nil {
			t.Errorf("bad experiment %d accepted", i)
		}
	}
}

func TestCleanRunCommitsEverythingEligible(t *testing.T) {
	rep, err := Run(Experiment{
		Sites: 3, Items: 12, Txns: 40,
		Workload: workload.Bank, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pending != 0 {
		t.Errorf("pending = %d with no failures", rep.Pending)
	}
	if rep.Committed == 0 {
		t.Error("nothing committed")
	}
	if rep.PeakPolys != 0 || rep.FinalPolys != 0 {
		t.Errorf("polyvalues without failures: peak=%d final=%d", rep.PeakPolys, rep.FinalPolys)
	}
	if !rep.ConservationOK {
		t.Errorf("money not conserved: %d -> %d", rep.TotalBefore, rep.TotalAfter)
	}
	if rep.Availability() != 1 {
		t.Errorf("availability = %g with no failure windows", rep.Availability())
	}
}

func TestFailureRunPolyvaluePolicy(t *testing.T) {
	rep, err := Run(Experiment{
		Sites: 3, Items: 12, Txns: 60,
		Workload: workload.Bank, Policy: cluster.PolicyPolyvalue,
		CrashEvery: 15, RepairAfter: 2 * time.Second, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.InDoubt == 0 {
		t.Fatal("no in-doubt windows created — crash schedule ineffective")
	}
	if rep.PeakPolys == 0 {
		t.Error("no polyvalues observed despite in-doubt windows")
	}
	if rep.FinalPolys != 0 {
		t.Errorf("polyvalues survived settle: %d", rep.FinalPolys)
	}
	if !rep.ConservationOK {
		t.Errorf("money not conserved: %d -> %d", rep.TotalBefore, rep.TotalAfter)
	}
	if rep.DuringFailure == 0 {
		t.Fatal("no transactions ran during failure windows")
	}
	if len(rep.Series) != 60 {
		t.Errorf("series length = %d", len(rep.Series))
	}
	if rep.String() == "" {
		t.Error("empty report string")
	}
}

// TestPolicyAvailabilityOrdering is the A1 ablation at test scale:
// polyvalue availability during failure windows strictly exceeds
// blocking's on the same workload and failure schedule.
func TestPolicyAvailabilityOrdering(t *testing.T) {
	run := func(p cluster.Policy) Report {
		rep, err := Run(Experiment{
			Sites: 3, Items: 6, Txns: 60,
			Workload: workload.Bank, Policy: p,
			CrashEvery: 15, RepairAfter: time.Second,
			Gap: 100 * time.Millisecond, Seed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	poly := run(cluster.PolicyPolyvalue)
	block := run(cluster.PolicyBlocking)
	if poly.DuringFailure == 0 || block.DuringFailure == 0 {
		t.Fatal("no failure-window traffic")
	}
	if poly.Availability() <= block.Availability() {
		t.Errorf("polyvalue availability %.2f not above blocking %.2f",
			poly.Availability(), block.Availability())
	}
	if !poly.ConservationOK {
		t.Error("polyvalue policy violated conservation")
	}
	if !block.ConservationOK {
		t.Error("blocking policy violated conservation")
	}
}

func TestReservationsWorkloadRuns(t *testing.T) {
	rep, err := Run(Experiment{
		Sites: 3, Items: 8, Txns: 30,
		Workload: workload.Reservations, Policy: cluster.PolicyPolyvalue,
		CrashEvery: 10, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Committed == 0 {
		t.Error("no reservations granted")
	}
	if rep.FinalPolys != 0 {
		t.Errorf("unresolved polyvalues: %d", rep.FinalPolys)
	}
}
