package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/metrics"
	"repro/internal/protocol"
	"repro/internal/trace"
)

// auditTraceCompleteness asserts the tracing contract over harness-owned
// span logs: no span was evicted, and every committed transaction's
// merged timeline is complete — root present, no dangling parents,
// every participant the root names contributed at least one span.  It
// returns the merged span count and the violations found.
func auditTraceCompleteness(spanLogs map[protocol.SiteID]*trace.SpanLog,
	sites []protocol.SiteID, committed []string, spanCap int) (int, []string) {
	if len(spanLogs) == 0 {
		return 0, nil
	}
	var violations []string
	var logs [][]trace.Span
	for _, id := range sites {
		sl := spanLogs[id]
		if d := sl.Dropped(); d > 0 {
			violations = append(violations,
				fmt.Sprintf("site %s: %d spans dropped (SpanCap %d too small for this run)", id, d, spanCap))
		}
		logs = append(logs, sl.Spans())
	}
	merged := trace.Merge(logs...)
	byTID := map[string]trace.Timeline{}
	for _, tl := range trace.BuildTimelines(merged) {
		byTID[tl.TID] = tl
	}
	for _, tid := range committed {
		tl, ok := byTID[tid]
		if !ok {
			violations = append(violations,
				fmt.Sprintf("txn %s committed but left no spans", tid))
			continue
		}
		if !tl.Complete {
			detail := fmt.Sprintf("missing sites %v, dangling parents %v", tl.MissingSites, tl.MissingParents)
			if tl.MissingQuorum {
				detail += ", accept quorum not visible"
			}
			violations = append(violations,
				fmt.Sprintf("txn %s committed with an incomplete timeline (%s)", tid, detail))
		}
	}
	return len(merged), violations
}

// collectBlockedSeconds folds every site's item.blocked.seconds sums
// into the per-cause roll-up the reports expose.  Callers must run
// Cluster.SyncBlockedAccounting first so still-open intervals count.
func collectBlockedSeconds(into map[string]float64, regs ...*metrics.Registry) {
	for _, reg := range regs {
		for _, pt := range reg.Snapshot().Points {
			if pt.Name != "item.blocked.seconds" {
				continue
			}
			cause := "unknown"
			for _, l := range pt.Labels {
				if l.Key == "cause" {
					cause = l.Value
				}
			}
			into[cause] += pt.Sum
		}
	}
}

// dumpTraceArtifacts writes per-site span dumps (polytrace's input
// format) and the rendered merged timelines into dir, which a failed
// run leaves on disk for inspection.
func dumpTraceArtifacts(dir string, spanLogs map[protocol.SiteID]*trace.SpanLog,
	sites []protocol.SiteID, logf func(format string, args ...any)) {
	if len(spanLogs) == 0 {
		return
	}
	var logs [][]trace.Span
	for _, id := range sites {
		spans := spanLogs[id].Spans()
		logs = append(logs, spans)
		raw, err := json.Marshal(spans)
		if err != nil {
			continue
		}
		path := filepath.Join(dir, "span-"+string(id)+".json")
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			logf("harness: write %s: %v", path, err)
		}
	}
	tls := trace.BuildTimelines(trace.Merge(logs...))
	path := filepath.Join(dir, "timelines.txt")
	if err := os.WriteFile(path, []byte(trace.RenderTimelines(tls)+"\n"), 0o644); err != nil {
		logf("harness: write %s: %v", path, err)
	}
	logf("harness: trace artifacts in %s (inspect with: polytrace %s)",
		dir, filepath.Join(dir, "span-*.json"))
}
