package trace

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/vclock"
)

func TestNop(t *testing.T) {
	var tr Tracer = Nop{}
	tr.Event("anything %d", 1) // must not panic
}

func TestRingBasics(t *testing.T) {
	r := NewRing(10)
	r.Event("hello %s", "world")
	r.Event("second")
	e := r.Entries()
	if len(e) != 2 || e[0] != "hello world" {
		t.Errorf("Entries = %v", e)
	}
	if !r.Contains("world") || r.Contains("absent") {
		t.Error("Contains wrong")
	}
	if r.Count("o") != 2 {
		t.Errorf("Count = %d", r.Count("o"))
	}
	if !strings.Contains(r.String(), "second") {
		t.Errorf("String = %q", r.String())
	}
}

func TestRingEviction(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 5; i++ {
		r.Event("e%d", i)
	}
	e := r.Entries()
	if len(e) != 3 || e[0] != "e2" || e[2] != "e4" {
		t.Errorf("Entries = %v", e)
	}
	if r.Dropped() != 2 {
		t.Errorf("Dropped = %d", r.Dropped())
	}
}

func TestRingMinSize(t *testing.T) {
	r := NewRing(0)
	r.Event("a")
	r.Event("b")
	if e := r.Entries(); len(e) != 1 || e[0] != "b" {
		t.Errorf("Entries = %v", e)
	}
}

func TestRingClockPrefix(t *testing.T) {
	s := vclock.NewScheduler()
	r := NewRing(10)
	r.Clock = s.Now
	s.After(3*time.Second, func() { r.Event("tick") })
	s.Drain(0)
	e := r.Entries()
	if len(e) != 1 || !strings.HasPrefix(e[0], "[3s]") {
		t.Errorf("Entries = %v", e)
	}
}

func TestRingConcurrent(t *testing.T) {
	r := NewRing(1000)
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Event(fmt.Sprintf("g%d-%d", i, j))
			}
		}(i)
	}
	wg.Wait()
	if len(r.Entries()) != 1000 {
		t.Errorf("entries = %d", len(r.Entries()))
	}
}
