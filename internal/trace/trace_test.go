package trace

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/vclock"
)

func TestNop(t *testing.T) {
	var tr Tracer = Nop{}
	tr.Event("anything %d", 1) // must not panic
}

func TestRingBasics(t *testing.T) {
	r := NewRing(10)
	r.Event("hello %s", "world")
	r.Event("second")
	e := r.Entries()
	if len(e) != 2 || e[0] != "hello world" {
		t.Errorf("Entries = %v", e)
	}
	if !r.Contains("world") || r.Contains("absent") {
		t.Error("Contains wrong")
	}
	if r.Count("o") != 2 {
		t.Errorf("Count = %d", r.Count("o"))
	}
	if !strings.Contains(r.String(), "second") {
		t.Errorf("String = %q", r.String())
	}
}

func TestRingEviction(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 5; i++ {
		r.Event("e%d", i)
	}
	e := r.Entries()
	if len(e) != 3 || e[0] != "e2" || e[2] != "e4" {
		t.Errorf("Entries = %v", e)
	}
	if r.Dropped() != 2 {
		t.Errorf("Dropped = %d", r.Dropped())
	}
}

func TestRingMinSize(t *testing.T) {
	r := NewRing(0)
	r.Event("a")
	r.Event("b")
	if e := r.Entries(); len(e) != 1 || e[0] != "b" {
		t.Errorf("Entries = %v", e)
	}
}

func TestRingClockPrefix(t *testing.T) {
	s := vclock.NewScheduler()
	r := NewRing(10)
	r.Clock = s.Now
	s.After(3*time.Second, func() { r.Event("tick") })
	s.Drain(0)
	e := r.Entries()
	if len(e) != 1 || !strings.HasPrefix(e[0], "[3s]") {
		t.Errorf("Entries = %v", e)
	}
}

func TestRingConcurrent(t *testing.T) {
	r := NewRing(1000)
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Event(fmt.Sprintf("g%d-%d", i, j))
			}
		}(i)
	}
	wg.Wait()
	if len(r.Entries()) != 1000 {
		t.Errorf("entries = %d", len(r.Entries()))
	}
}

// TestRingMultipleWraps: the circular buffer stays oldest-first through
// many full wraparounds, and Contains/Count see exactly the retained
// window.
func TestRingMultipleWraps(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 23; i++ {
		r.Event("e%d", i)
	}
	e := r.Entries()
	want := []string{"e19", "e20", "e21", "e22"}
	if len(e) != len(want) {
		t.Fatalf("Entries = %v, want %v", e, want)
	}
	for i := range want {
		if e[i] != want[i] {
			t.Errorf("Entries[%d] = %q, want %q", i, e[i], want[i])
		}
	}
	if r.Dropped() != 19 {
		t.Errorf("Dropped = %d, want 19", r.Dropped())
	}
	if r.Contains("e18") {
		t.Error("evicted entry still visible to Contains")
	}
	if got := r.Count("e2"); got != 3 {
		// e20, e21, e22 all contain the substring "e2".
		t.Errorf("Count(e2) = %d, want 3", got)
	}
}
