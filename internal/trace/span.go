package trace

import (
	"hash/fnv"
	"sync"

	"repro/internal/metrics"
	"repro/internal/vclock"
)

// SpanID identifies one span.  IDs handed out by a SpanLog are salted
// with the owning site's name in the high bits, so spans recorded
// independently at different sites merge into one timeline without ID
// collisions.  Zero is never a valid ID; a zero Parent marks a root.
type SpanID uint64

// Span is one structured trace event: a named interval of a
// transaction's life at one site, causally linked to its parent.  Spans
// complement the line ring — the ring answers "what happened here, in
// order", spans answer "what happened to transaction T, everywhere".
//
// Times are vclock instants (nanoseconds since the owning scheduler's
// epoch): deterministic under simulation, wall-anchored in live runs.
// A point event carries Start == End.
type Span struct {
	ID     SpanID            `json:"id"`
	Parent SpanID            `json:"parent,omitempty"`
	TID    string            `json:"tid,omitempty"`
	Site   string            `json:"site"`
	Kind   string            `json:"kind"`
	Start  vclock.Time       `json:"start_ns"`
	End    vclock.Time       `json:"end_ns"`
	Attrs  map[string]string `json:"attrs,omitempty"`
}

// SpanLog is a bounded in-memory span recorder: a circular buffer like
// Ring, but holding structured spans.  When full, each new span
// overwrites the oldest and the dropped count grows — silent loss is
// always queryable.  Safe for concurrent use.
type SpanLog struct {
	mu      sync.Mutex
	max     int
	buf     []Span
	head    int
	dropped int
	nextID  uint64
	salt    uint64
}

// NewSpanLog returns a log retaining at most max spans (min 1) with an
// unsalted ID space — fine for a single-log process.
func NewSpanLog(max int) *SpanLog { return NewSpanLogFor("", max) }

// NewSpanLogFor returns a log whose span IDs carry a site-derived salt
// in the high 32 bits, so per-site logs can be merged without ID
// collisions (distinct sites hash apart; within a site IDs are
// sequential).
func NewSpanLogFor(site string, max int) *SpanLog {
	if max < 1 {
		max = 1
	}
	l := &SpanLog{max: max}
	if site != "" {
		h := fnv.New32a()
		h.Write([]byte(site))
		l.salt = uint64(h.Sum32()) << 32
	}
	return l
}

// NextID allocates a fresh span ID.
func (l *SpanLog) NextID() SpanID {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.nextID++
	return SpanID(l.salt | (l.nextID & 0xffffffff))
}

// Record appends one finished span.  A span with ID zero is assigned a
// fresh one; the (possibly assigned) ID is returned.
func (l *SpanLog) Record(s Span) SpanID {
	l.mu.Lock()
	defer l.mu.Unlock()
	if s.ID == 0 {
		l.nextID++
		s.ID = SpanID(l.salt | (l.nextID & 0xffffffff))
	}
	if len(l.buf) < l.max {
		l.buf = append(l.buf, s)
		return s.ID
	}
	l.buf[l.head] = s
	l.head++
	if l.head == l.max {
		l.head = 0
	}
	l.dropped++
	return s.ID
}

// Spans returns a copy of the retained spans, oldest first.
func (l *SpanLog) Spans() []Span {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Span, 0, len(l.buf))
	out = append(out, l.buf[l.head:]...)
	out = append(out, l.buf[:l.head]...)
	return out
}

// ByTID returns the retained spans for one transaction, oldest first.
func (l *SpanLog) ByTID(tid string) []Span {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Span
	for _, s := range l.buf[l.head:] {
		if s.TID == tid {
			out = append(out, s)
		}
	}
	for _, s := range l.buf[:l.head] {
		if s.TID == tid {
			out = append(out, s)
		}
	}
	return out
}

// Len returns the number of retained spans.
func (l *SpanLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buf)
}

// Dropped returns how many spans were evicted.
func (l *SpanLog) Dropped() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// Instrument publishes the log's loss and occupancy as gauges on reg:
// trace.spans.dropped and trace.spans.retained.  Call after mutating
// bursts (or periodically); gauges are levels, not deltas, so refreshing
// is idempotent.
func (l *SpanLog) Instrument(reg *metrics.Registry, labels ...metrics.Label) {
	l.mu.Lock()
	dropped, retained := l.dropped, len(l.buf)
	l.mu.Unlock()
	reg.Gauge("trace.spans.dropped", labels...).Set(int64(dropped))
	reg.Gauge("trace.spans.retained", labels...).Set(int64(retained))
}
