package trace

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/metrics"
)

func TestSpanLogBasics(t *testing.T) {
	l := NewSpanLog(10)
	id := l.Record(Span{TID: "t1", Site: "A", Kind: "txn", Start: 1, End: 5})
	if id == 0 {
		t.Fatal("Record assigned zero ID")
	}
	if l.Len() != 1 || l.Dropped() != 0 {
		t.Fatalf("Len=%d Dropped=%d, want 1, 0", l.Len(), l.Dropped())
	}
	spans := l.Spans()
	if len(spans) != 1 || spans[0].TID != "t1" || spans[0].ID != id {
		t.Fatalf("Spans() = %+v", spans)
	}
}

func TestSpanLogWrapAround(t *testing.T) {
	l := NewSpanLog(4)
	for i := 0; i < 10; i++ {
		l.Record(Span{TID: fmt.Sprintf("t%d", i), Site: "A", Kind: "txn"})
	}
	if l.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", l.Dropped())
	}
	spans := l.Spans()
	if len(spans) != 4 {
		t.Fatalf("retained %d spans, want 4", len(spans))
	}
	for i, s := range spans {
		want := fmt.Sprintf("t%d", 6+i)
		if s.TID != want {
			t.Fatalf("span %d = %s, want %s (oldest-first order)", i, s.TID, want)
		}
	}
}

func TestSpanLogByTID(t *testing.T) {
	l := NewSpanLog(16)
	l.Record(Span{TID: "a", Site: "A", Kind: "txn"})
	l.Record(Span{TID: "b", Site: "A", Kind: "txn"})
	l.Record(Span{TID: "a", Site: "B", Kind: "part.compute"})
	got := l.ByTID("a")
	if len(got) != 2 || got[0].Site != "A" || got[1].Site != "B" {
		t.Fatalf("ByTID(a) = %+v", got)
	}
	if len(l.ByTID("missing")) != 0 {
		t.Fatal("ByTID(missing) should be empty")
	}
}

func TestSpanLogSiteSaltedIDs(t *testing.T) {
	a, b := NewSpanLogFor("A", 8), NewSpanLogFor("B", 8)
	seen := map[SpanID]bool{}
	for i := 0; i < 8; i++ {
		for _, l := range []*SpanLog{a, b} {
			id := l.NextID()
			if id == 0 || seen[id] {
				t.Fatalf("ID %d zero or colliding across sites", id)
			}
			seen[id] = true
		}
	}
}

// TestSpanLogConcurrent hammers Record/Spans/Dropped from many
// goroutines; run with -race to catch unsynchronized access.
func TestSpanLogConcurrent(t *testing.T) {
	l := NewSpanLogFor("X", 64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				l.Record(Span{TID: fmt.Sprintf("g%d-%d", g, i), Site: "X", Kind: "txn"})
				if i%16 == 0 {
					l.Spans()
					l.Dropped()
					l.ByTID("g0-0")
				}
			}
		}(g)
	}
	wg.Wait()
	if got := l.Len() + l.Dropped(); got != 8*200 {
		t.Fatalf("retained+dropped = %d, want 1600", got)
	}
}

func TestSpanLogInstrument(t *testing.T) {
	reg := metrics.NewRegistry()
	l := NewSpanLog(2)
	for i := 0; i < 5; i++ {
		l.Record(Span{TID: "t", Site: "A", Kind: "txn"})
	}
	l.Instrument(reg, metrics.L("site", "A"))
	snap := reg.Snapshot()
	if v := snap.Counter("trace.spans.dropped", metrics.L("site", "A")); v != 3 {
		t.Fatalf("trace.spans.dropped = %d, want 3", v)
	}
	if v := snap.Counter("trace.spans.retained", metrics.L("site", "A")); v != 2 {
		t.Fatalf("trace.spans.retained = %d, want 2", v)
	}
}

func TestRingInstrument(t *testing.T) {
	reg := metrics.NewRegistry()
	r := NewRing(2)
	for i := 0; i < 5; i++ {
		r.Event("e%d", i)
	}
	r.Instrument(reg)
	snap := reg.Snapshot()
	if v := snap.Counter("trace.ring.dropped"); v != 3 {
		t.Fatalf("trace.ring.dropped = %d, want 3", v)
	}
	if v := snap.Counter("trace.ring.retained"); v != 2 {
		t.Fatalf("trace.ring.retained = %d, want 2", v)
	}
	// Refreshing is idempotent: same levels, not doubled.
	r.Instrument(reg)
	if v := reg.Snapshot().Counter("trace.ring.dropped"); v != 3 {
		t.Fatalf("after refresh trace.ring.dropped = %d, want 3", v)
	}
}

// TestRingConcurrentMixed interleaves writers with readers of every
// query method; meaningful under -race.
func TestRingConcurrentMixed(t *testing.T) {
	r := NewRing(32)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(2)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				r.Event("g%d event %d", g, i)
			}
		}(g)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Entries()
				r.Dropped()
				r.Contains("event 5")
				r.Count("g0")
			}
		}()
	}
	wg.Wait()
	if got := len(r.Entries()) + r.Dropped(); got != 4*300 {
		t.Fatalf("retained+dropped = %d, want 1200", got)
	}
}
