// Package trace provides lightweight structured event tracing for the
// protocol and cluster runtimes: a bounded in-memory ring of timestamped
// lines, used by debugging tools, the Figure 1 renderer, and tests that
// assert on protocol behaviour.
package trace

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/metrics"
	"repro/internal/vclock"
)

// Tracer records events.  Implementations must be safe for concurrent
// use.
type Tracer interface {
	// Event records one formatted line.
	Event(format string, args ...any)
}

// Nop discards all events.
type Nop struct{}

// Event implements Tracer.
func (Nop) Event(string, ...any) {}

// Ring is a bounded in-memory tracer: a true circular buffer.  When
// full, each new entry overwrites the oldest in O(1) — no slice
// shifting.
type Ring struct {
	mu  sync.Mutex
	max int
	// buf grows to max entries, then stays that length; head is the index
	// of the oldest entry once the buffer has wrapped.
	buf     []string
	head    int
	dropped int
	// Clock, when set, prefixes each entry with the simulated time.
	Clock func() vclock.Time
}

// NewRing returns a tracer retaining at most max entries (min 1).
func NewRing(max int) *Ring {
	if max < 1 {
		max = 1
	}
	return &Ring{max: max}
}

// Event implements Tracer.
func (r *Ring) Event(format string, args ...any) {
	line := fmt.Sprintf(format, args...)
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.Clock != nil {
		line = fmt.Sprintf("[%v] %s", r.Clock(), line)
	}
	if len(r.buf) < r.max {
		r.buf = append(r.buf, line)
		return
	}
	r.buf[r.head] = line
	r.head++
	if r.head == r.max {
		r.head = 0
	}
	r.dropped++
}

// Entries returns a copy of the retained lines, oldest first.
func (r *Ring) Entries() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.buf))
	out = append(out, r.buf[r.head:]...)
	out = append(out, r.buf[:r.head]...)
	return out
}

// Dropped returns how many entries were evicted.
func (r *Ring) Dropped() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Instrument publishes the ring's eviction count and occupancy as
// gauges on reg: trace.ring.dropped and trace.ring.retained.  Gauges
// are levels, so refreshing after each burst (or on STATS/scrape) is
// idempotent and makes silent trace loss visible.
func (r *Ring) Instrument(reg *metrics.Registry, labels ...metrics.Label) {
	r.mu.Lock()
	dropped, retained := r.dropped, len(r.buf)
	r.mu.Unlock()
	reg.Gauge("trace.ring.dropped", labels...).Set(int64(dropped))
	reg.Gauge("trace.ring.retained", labels...).Set(int64(retained))
}

// Contains reports whether any retained entry contains the substring.
func (r *Ring) Contains(sub string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, e := range r.buf {
		if strings.Contains(e, sub) {
			return true
		}
	}
	return false
}

// Count returns how many retained entries contain the substring.
func (r *Ring) Count(sub string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, e := range r.buf {
		if strings.Contains(e, sub) {
			n++
		}
	}
	return n
}

// String joins the retained entries with newlines.
func (r *Ring) String() string {
	return strings.Join(r.Entries(), "\n")
}
