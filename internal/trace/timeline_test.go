package trace

import (
	"strings"
	"testing"
)

func TestMergeOrdersByStart(t *testing.T) {
	a := []Span{{ID: 2, Site: "A", Kind: "txn", TID: "t", Start: 10, End: 20}}
	b := []Span{{ID: 1, Site: "B", Kind: "part.compute", TID: "t", Start: 5, End: 8}}
	got := Merge(a, b)
	if len(got) != 2 || got[0].ID != 1 || got[1].ID != 2 {
		t.Fatalf("Merge order wrong: %+v", got)
	}
}

func TestBuildTimelinesComplete(t *testing.T) {
	spans := []Span{
		{ID: 1, TID: "t1", Site: "A", Kind: RootKind, Start: 0, End: 30,
			Attrs: map[string]string{"status": "committed", "participants": "A,B"}},
		{ID: 2, Parent: 1, TID: "t1", Site: "A", Kind: "phase.read", Start: 0, End: 10},
		{ID: 3, Parent: 1, TID: "t1", Site: "B", Kind: "part.compute", Start: 12, End: 18},
		{ID: 9, TID: "", Site: "A", Kind: "budget.degrade", Start: 4, End: 4}, // site-level, skipped
	}
	tls := BuildTimelines(spans)
	if len(tls) != 1 {
		t.Fatalf("got %d timelines, want 1", len(tls))
	}
	tl := tls[0]
	if !tl.Complete {
		t.Fatalf("timeline incomplete: %+v", tl)
	}
	if tl.Status != "committed" {
		t.Fatalf("Status = %q", tl.Status)
	}
	if len(tl.Spans) != 3 {
		t.Fatalf("timeline holds %d spans, want 3", len(tl.Spans))
	}
}

func TestBuildTimelinesDanglingParent(t *testing.T) {
	spans := []Span{
		{ID: 1, TID: "t1", Site: "A", Kind: RootKind, Attrs: map[string]string{"participants": "A"}},
		{ID: 2, Parent: 77, TID: "t1", Site: "A", Kind: "phase.read"},
	}
	tl := BuildTimelines(spans)[0]
	if tl.Complete {
		t.Fatal("timeline with dangling parent marked complete")
	}
	if len(tl.MissingParents) != 1 || tl.MissingParents[0] != 77 {
		t.Fatalf("MissingParents = %v", tl.MissingParents)
	}
}

func TestBuildTimelinesSilentSite(t *testing.T) {
	spans := []Span{
		{ID: 1, TID: "t1", Site: "A", Kind: RootKind,
			Attrs: map[string]string{"participants": "A,B,C"}},
		{ID: 2, Parent: 1, TID: "t1", Site: "B", Kind: "part.compute"},
	}
	tl := BuildTimelines(spans)[0]
	if tl.Complete {
		t.Fatal("timeline with silent participant marked complete")
	}
	if len(tl.MissingSites) != 1 || tl.MissingSites[0] != "C" {
		t.Fatalf("MissingSites = %v", tl.MissingSites)
	}
}

func TestBuildTimelinesNoRoot(t *testing.T) {
	spans := []Span{{ID: 2, TID: "t1", Site: "B", Kind: "part.compute"}}
	tl := BuildTimelines(spans)[0]
	if tl.Complete {
		t.Fatal("rootless timeline marked complete")
	}
}

func TestRenderNesting(t *testing.T) {
	spans := []Span{
		{ID: 1, TID: "t1", Site: "A", Kind: RootKind, Start: 0, End: 30,
			Attrs: map[string]string{"status": "committed", "participants": "A,B"}},
		{ID: 2, Parent: 1, TID: "t1", Site: "B", Kind: "part.compute", Start: 5, End: 9},
	}
	out := BuildTimelines(spans)[0].Render()
	if !strings.Contains(out, "txn t1 [committed]") {
		t.Fatalf("missing header: %q", out)
	}
	if !strings.Contains(out, "part.compute") {
		t.Fatalf("missing child span: %q", out)
	}
	if strings.Contains(out, "INCOMPLETE") {
		t.Fatalf("complete timeline rendered INCOMPLETE: %q", out)
	}
	// Child is indented one level deeper than the root span line.
	var rootIndent, childIndent int
	for _, line := range strings.Split(out, "\n") {
		trimmed := strings.TrimLeft(line, " ")
		indent := len(line) - len(trimmed)
		if strings.HasPrefix(trimmed, RootKind+" ") {
			rootIndent = indent
		}
		if strings.HasPrefix(trimmed, "part.compute") {
			childIndent = indent
		}
	}
	if childIndent <= rootIndent {
		t.Fatalf("child not nested (root %d, child %d):\n%s", rootIndent, childIndent, out)
	}
}
