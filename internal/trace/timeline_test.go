package trace

import (
	"strings"
	"testing"
)

func TestMergeOrdersByStart(t *testing.T) {
	a := []Span{{ID: 2, Site: "A", Kind: "txn", TID: "t", Start: 10, End: 20}}
	b := []Span{{ID: 1, Site: "B", Kind: "part.compute", TID: "t", Start: 5, End: 8}}
	got := Merge(a, b)
	if len(got) != 2 || got[0].ID != 1 || got[1].ID != 2 {
		t.Fatalf("Merge order wrong: %+v", got)
	}
}

func TestBuildTimelinesComplete(t *testing.T) {
	spans := []Span{
		{ID: 1, TID: "t1", Site: "A", Kind: RootKind, Start: 0, End: 30,
			Attrs: map[string]string{"status": "committed", "participants": "A,B"}},
		{ID: 2, Parent: 1, TID: "t1", Site: "A", Kind: "phase.read", Start: 0, End: 10},
		{ID: 3, Parent: 1, TID: "t1", Site: "B", Kind: "part.compute", Start: 12, End: 18},
		{ID: 9, TID: "", Site: "A", Kind: "budget.degrade", Start: 4, End: 4}, // site-level, skipped
	}
	tls := BuildTimelines(spans)
	if len(tls) != 1 {
		t.Fatalf("got %d timelines, want 1", len(tls))
	}
	tl := tls[0]
	if !tl.Complete {
		t.Fatalf("timeline incomplete: %+v", tl)
	}
	if tl.Status != "committed" {
		t.Fatalf("Status = %q", tl.Status)
	}
	if len(tl.Spans) != 3 {
		t.Fatalf("timeline holds %d spans, want 3", len(tl.Spans))
	}
}

func TestBuildTimelinesDanglingParent(t *testing.T) {
	spans := []Span{
		{ID: 1, TID: "t1", Site: "A", Kind: RootKind, Attrs: map[string]string{"participants": "A"}},
		{ID: 2, Parent: 77, TID: "t1", Site: "A", Kind: "phase.read"},
	}
	tl := BuildTimelines(spans)[0]
	if tl.Complete {
		t.Fatal("timeline with dangling parent marked complete")
	}
	if len(tl.MissingParents) != 1 || tl.MissingParents[0] != 77 {
		t.Fatalf("MissingParents = %v", tl.MissingParents)
	}
}

func TestBuildTimelinesSilentSite(t *testing.T) {
	spans := []Span{
		{ID: 1, TID: "t1", Site: "A", Kind: RootKind,
			Attrs: map[string]string{"participants": "A,B,C"}},
		{ID: 2, Parent: 1, TID: "t1", Site: "B", Kind: "part.compute"},
	}
	tl := BuildTimelines(spans)[0]
	if tl.Complete {
		t.Fatal("timeline with silent participant marked complete")
	}
	if len(tl.MissingSites) != 1 || tl.MissingSites[0] != "C" {
		t.Fatalf("MissingSites = %v", tl.MissingSites)
	}
}

func TestBuildTimelinesNoRoot(t *testing.T) {
	spans := []Span{{ID: 2, TID: "t1", Site: "B", Kind: "part.compute"}}
	tl := BuildTimelines(spans)[0]
	if tl.Complete {
		t.Fatal("rootless timeline marked complete")
	}
}

func TestRenderNesting(t *testing.T) {
	spans := []Span{
		{ID: 1, TID: "t1", Site: "A", Kind: RootKind, Start: 0, End: 30,
			Attrs: map[string]string{"status": "committed", "participants": "A,B"}},
		{ID: 2, Parent: 1, TID: "t1", Site: "B", Kind: "part.compute", Start: 5, End: 9},
	}
	out := BuildTimelines(spans)[0].Render()
	if !strings.Contains(out, "txn t1 [committed]") {
		t.Fatalf("missing header: %q", out)
	}
	if !strings.Contains(out, "part.compute") {
		t.Fatalf("missing child span: %q", out)
	}
	if strings.Contains(out, "INCOMPLETE") {
		t.Fatalf("complete timeline rendered INCOMPLETE: %q", out)
	}
	// Child is indented one level deeper than the root span line.
	var rootIndent, childIndent int
	for _, line := range strings.Split(out, "\n") {
		trimmed := strings.TrimLeft(line, " ")
		indent := len(line) - len(trimmed)
		if strings.HasPrefix(trimmed, RootKind+" ") {
			rootIndent = indent
		}
		if strings.HasPrefix(trimmed, "part.compute") {
			childIndent = indent
		}
	}
	if childIndent <= rootIndent {
		t.Fatalf("child not nested (root %d, child %d):\n%s", rootIndent, childIndent, out)
	}
}

func TestBuildTimelinesPaxosQuorum(t *testing.T) {
	base := []Span{
		{ID: 1, TID: "t1", Site: "A", Kind: RootKind, Start: 0, End: 30,
			Attrs: map[string]string{
				"status": "committed", "participants": "A,B",
				"plane": "paxos", "quorum": "3",
			}},
		{ID: 2, Parent: 1, TID: "t1", Site: "A", Kind: "part.compute"},
		{ID: 3, Parent: 1, TID: "t1", Site: "B", Kind: "part.compute"},
		{ID: 4, Parent: 1, TID: "t1", Site: "A", Kind: "paxos.accept"},
		{ID: 5, Parent: 1, TID: "t1", Site: "B", Kind: "paxos.accept"},
	}
	// Only two distinct sites logged durable accepts: the declared
	// quorum of 3 is not visible, so the timeline is incomplete.
	tl := BuildTimelines(base)[0]
	if !tl.MissingQuorum || tl.Complete {
		t.Fatalf("sub-quorum trace judged complete: %+v", tl)
	}
	if !strings.Contains(tl.Render(), "accept quorum not visible") {
		t.Fatalf("Render() missing quorum note:\n%s", tl.Render())
	}
	// A third accept site completes it (duplicates on one site do not).
	full := append(base, Span{ID: 6, Parent: 1, TID: "t1", Site: "C", Kind: "paxos.accept"})
	tl = BuildTimelines(full)[0]
	if tl.MissingQuorum || !tl.Complete {
		t.Fatalf("quorate trace judged incomplete: %+v", tl)
	}
	// Aborted transactions need no quorum (a single Aborted choice or a
	// pre-prepare abort is announceable without one).
	ab := []Span{{ID: 1, TID: "t2", Site: "A", Kind: RootKind,
		Attrs: map[string]string{"status": "aborted", "participants": "A",
			"plane": "paxos", "quorum": "3"}},
		{ID: 2, Parent: 1, TID: "t2", Site: "A", Kind: "part.compute"}}
	tl = BuildTimelines(ab)[0]
	if tl.MissingQuorum || !tl.Complete {
		t.Fatalf("aborted paxos trace judged incomplete: %+v", tl)
	}
}
