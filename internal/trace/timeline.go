package trace

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/vclock"
)

// RootKind is the span kind the coordinator records once per
// transaction; its Attrs carry the final status and the participant
// list the completeness check audits against.
const RootKind = "txn"

// Timeline is one transaction's merged, causally-ordered span set — the
// cross-site view no single site can produce.  Completeness is judged
// structurally: every parent reference must resolve, a root span must
// exist, and every site the root names as a participant must have
// contributed at least one span.
type Timeline struct {
	TID   string `json:"tid"`
	Spans []Span `json:"spans"`
	// Status echoes the root span's "status" attribute ("" without one).
	Status string `json:"status,omitempty"`
	// MissingParents lists parent IDs referenced by spans in this group
	// that no span in the group carries.
	MissingParents []SpanID `json:"missing_parents,omitempty"`
	// MissingSites lists participants named by the root span that
	// contributed no spans.
	MissingSites []string `json:"missing_sites,omitempty"`
	// MissingQuorum is set when the root declares a replicated decision
	// plane (attrs plane=paxos, quorum=N) for a committed transaction
	// but fewer than N distinct sites contributed paxos.accept spans —
	// the commit's durable accept quorum is not visible in the trace.
	MissingQuorum bool `json:"missing_quorum,omitempty"`
	// Complete is true when the span tree has a root, no dangling parent
	// references, every named participant reported in, and any declared
	// decision quorum is visible.
	Complete bool `json:"complete"`
}

// Merge combines span dumps from several sites into one slice ordered
// by (Start, Site, ID) — a deterministic global timeline, assuming the
// logs share a time base (one simulated scheduler, or wall clocks).
func Merge(logs ...[]Span) []Span {
	var n int
	for _, l := range logs {
		n += len(l)
	}
	out := make([]Span, 0, n)
	for _, l := range logs {
		out = append(out, l...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		if out[i].Site != out[j].Site {
			return out[i].Site < out[j].Site
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// BuildTimelines groups merged spans by transaction and audits each
// group's causal structure.  Spans with no TID (site-level events like
// budget transitions) are skipped.  Timelines come back sorted by the
// transaction's earliest span, ties by TID.
func BuildTimelines(spans []Span) []Timeline {
	merged := Merge(spans)
	byTID := map[string][]Span{}
	var order []string
	for _, s := range merged {
		if s.TID == "" {
			continue
		}
		if _, ok := byTID[s.TID]; !ok {
			order = append(order, s.TID)
		}
		byTID[s.TID] = append(byTID[s.TID], s)
	}
	out := make([]Timeline, 0, len(order))
	for _, tid := range order {
		out = append(out, buildTimeline(tid, byTID[tid]))
	}
	return out
}

func buildTimeline(tid string, spans []Span) Timeline {
	tl := Timeline{TID: tid, Spans: spans}
	ids := make(map[SpanID]bool, len(spans))
	sites := map[string]bool{}
	var root *Span
	for i := range spans {
		ids[spans[i].ID] = true
		sites[spans[i].Site] = true
		if spans[i].Kind == RootKind && root == nil {
			root = &spans[i]
		}
	}
	missing := map[SpanID]bool{}
	for _, s := range spans {
		if s.Parent != 0 && !ids[s.Parent] {
			missing[s.Parent] = true
		}
	}
	for id := range missing {
		tl.MissingParents = append(tl.MissingParents, id)
	}
	sort.Slice(tl.MissingParents, func(i, j int) bool { return tl.MissingParents[i] < tl.MissingParents[j] })
	if root != nil {
		tl.Status = root.Attrs["status"]
		if ps := root.Attrs["participants"]; ps != "" {
			for _, site := range strings.Split(ps, ",") {
				if site != "" && !sites[site] {
					tl.MissingSites = append(tl.MissingSites, site)
				}
			}
		}
	}
	sort.Strings(tl.MissingSites)
	if root != nil && root.Attrs["plane"] == "paxos" && tl.Status == "committed" {
		if want, err := strconv.Atoi(root.Attrs["quorum"]); err == nil && want > 0 {
			acceptSites := map[string]bool{}
			for _, s := range spans {
				if s.Kind == "paxos.accept" {
					acceptSites[s.Site] = true
				}
			}
			tl.MissingQuorum = len(acceptSites) < want
		}
	}
	tl.Complete = root != nil && len(tl.MissingParents) == 0 && len(tl.MissingSites) == 0 && !tl.MissingQuorum
	return tl
}

// Render writes the timeline as indented text: one line per span,
// children nested under their parents, orphans flagged.
func (tl Timeline) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "txn %s", tl.TID)
	if tl.Status != "" {
		fmt.Fprintf(&b, " [%s]", tl.Status)
	}
	if !tl.Complete {
		b.WriteString(" INCOMPLETE")
		if len(tl.MissingParents) > 0 {
			fmt.Fprintf(&b, " (dangling parents: %d)", len(tl.MissingParents))
		}
		if len(tl.MissingSites) > 0 {
			fmt.Fprintf(&b, " (silent sites: %s)", strings.Join(tl.MissingSites, ","))
		}
		if tl.MissingQuorum {
			b.WriteString(" (accept quorum not visible)")
		}
	}
	b.WriteByte('\n')

	children := map[SpanID][]Span{}
	present := make(map[SpanID]bool, len(tl.Spans))
	for _, s := range tl.Spans {
		present[s.ID] = true
	}
	var roots []Span
	for _, s := range tl.Spans {
		if s.Parent != 0 && present[s.Parent] {
			children[s.Parent] = append(children[s.Parent], s)
		} else {
			roots = append(roots, s)
		}
	}
	var walk func(s Span, depth int)
	walk = func(s Span, depth int) {
		b.WriteString(strings.Repeat("  ", depth+1))
		fmt.Fprintf(&b, "%-14s %-4s %v", s.Kind, s.Site, s.Start)
		if s.End != s.Start {
			fmt.Fprintf(&b, " → %v (%v)", s.End, dur(s))
		}
		if s.Parent != 0 && !present[s.Parent] {
			fmt.Fprintf(&b, " [dangling parent %d]", s.Parent)
		}
		if len(s.Attrs) > 0 {
			keys := make([]string, 0, len(s.Attrs))
			for k := range s.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(&b, " %s=%s", k, s.Attrs[k])
			}
		}
		b.WriteByte('\n')
		for _, c := range children[s.ID] {
			walk(c, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
	return b.String()
}

func dur(s Span) vclock.Time {
	if s.End < s.Start {
		return 0
	}
	return s.End - s.Start
}

// RenderTimelines renders every timeline, separated by blank lines.
func RenderTimelines(tls []Timeline) string {
	parts := make([]string, len(tls))
	for i, tl := range tls {
		parts[i] = tl.Render()
	}
	return strings.Join(parts, "\n")
}
