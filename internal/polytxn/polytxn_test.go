package polytxn

import (
	"strings"
	"testing"

	"repro/internal/condition"
	"repro/internal/expr"
	"repro/internal/polyvalue"
	"repro/internal/txn"
	"repro/internal/value"
)

// storeOf builds a lookup over a fixed map, defaulting to Nil.
func storeOf(m map[string]polyvalue.Poly) func(string) polyvalue.Poly {
	return func(item string) polyvalue.Poly {
		if p, ok := m[item]; ok {
			return p
		}
		return polyvalue.Simple(value.Nil{})
	}
}

func TestCertainInputsStayCertain(t *testing.T) {
	e := &Executor{}
	tx := txn.MustNew("T1", "b = b + 1")
	res, err := e.Execute(tx, storeOf(map[string]polyvalue.Poly{
		"b": polyvalue.Simple(value.Int(5)),
	}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Alternatives != 1 || !res.Certain {
		t.Errorf("res = %+v", res)
	}
	if v, ok := res.Writes["b"].IsCertain(); !ok || !v.Equal(value.Int(6)) {
		t.Errorf("b = %v", res.Writes["b"])
	}
}

func TestPolyInputPartitions(t *testing.T) {
	// §3.2: reading a 2-pair polyvalue forks the transaction into 2
	// alternatives whose outputs carry the input's conditions.
	e := &Executor{}
	bal := polyvalue.Uncertain("T9", polyvalue.Simple(value.Int(50)), polyvalue.Simple(value.Int(100)))
	tx := txn.MustNew("T1", "bal = bal - 10")
	res, err := e.Execute(tx, storeOf(map[string]polyvalue.Poly{"bal": bal}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Alternatives != 2 || res.Certain {
		t.Errorf("res = %+v", res)
	}
	out := res.Writes["bal"]
	if out.NumPairs() != 2 || !out.WellFormed() {
		t.Fatalf("out = %v", out)
	}
	if v, _ := out.ValueUnder(map[condition.TID]bool{"T9": true}); !v.Equal(value.Int(40)) {
		t.Errorf("committed branch = %v", v)
	}
	if v, _ := out.ValueUnder(map[condition.TID]bool{"T9": false}); !v.Equal(value.Int(90)) {
		t.Errorf("aborted branch = %v", v)
	}
}

func TestUncertaintyNotPropagatedWhenIrrelevant(t *testing.T) {
	// The §5 credit-authorization property: if every alternative computes
	// the same output, the output is a simple value even though the input
	// was a polyvalue.
	e := &Executor{}
	bal := polyvalue.Uncertain("T9", polyvalue.Simple(value.Int(500)), polyvalue.Simple(value.Int(450)))
	tx := txn.MustNew("T1", "approved = bal >= 100")
	res, err := e.Execute(tx, storeOf(map[string]polyvalue.Poly{"bal": bal}))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Certain {
		t.Errorf("output should be certain: %v", res.Writes["approved"])
	}
	if v, ok := res.Writes["approved"].IsCertain(); !ok || !v.Equal(value.Bool(true)) {
		t.Errorf("approved = %v", res.Writes["approved"])
	}
}

func TestWriteOnlyItemDoesNotPartition(t *testing.T) {
	// An item that is written but not read must not multiply alternatives
	// even if it currently holds a polyvalue.
	e := &Executor{}
	old := polyvalue.Uncertain("T9", polyvalue.Simple(value.Int(1)), polyvalue.Simple(value.Int(2)))
	tx := txn.MustNew("T1", "x = 42")
	res, err := e.Execute(tx, storeOf(map[string]polyvalue.Poly{"x": old}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Alternatives != 1 {
		t.Errorf("Alternatives = %d", res.Alternatives)
	}
	if v, ok := res.Writes["x"].IsCertain(); !ok || !v.Equal(value.Int(42)) {
		t.Errorf("x = %v", res.Writes["x"])
	}
}

func TestGuardFailurePreservesPreviousValue(t *testing.T) {
	// Where the guard fails, the written item keeps its previous value
	// under that alternative's condition (§3.2).
	e := &Executor{}
	bal := polyvalue.Uncertain("T9", polyvalue.Simple(value.Int(30)), polyvalue.Simple(value.Int(100)))
	tx := txn.MustNew("T1", "bal = bal - 50 if bal >= 50")
	res, err := e.Execute(tx, storeOf(map[string]polyvalue.Poly{"bal": bal}))
	if err != nil {
		t.Fatal(err)
	}
	out := res.Writes["bal"]
	// T9 committed -> bal was 30, guard fails, stays 30.
	if v, _ := out.ValueUnder(map[condition.TID]bool{"T9": true}); !v.Equal(value.Int(30)) {
		t.Errorf("committed branch = %v", v)
	}
	// T9 aborted -> bal was 100, guard passes, 50.
	if v, _ := out.ValueUnder(map[condition.TID]bool{"T9": false}); !v.Equal(value.Int(50)) {
		t.Errorf("aborted branch = %v", v)
	}
}

func TestTwoIndependentPolyInputs(t *testing.T) {
	e := &Executor{}
	a := polyvalue.Uncertain("TA", polyvalue.Simple(value.Int(1)), polyvalue.Simple(value.Int(0)))
	b := polyvalue.Uncertain("TB", polyvalue.Simple(value.Int(10)), polyvalue.Simple(value.Int(0)))
	tx := txn.MustNew("T1", "sum = a + b")
	res, err := e.Execute(tx, storeOf(map[string]polyvalue.Poly{"a": a, "b": b}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Alternatives != 4 {
		t.Errorf("Alternatives = %d, want 4", res.Alternatives)
	}
	out := res.Writes["sum"]
	if out.NumPairs() != 4 || !out.WellFormed() {
		t.Fatalf("sum = %v", out)
	}
	want := map[bool]map[bool]int64{true: {true: 11, false: 1}, false: {true: 10, false: 0}}
	for _, ca := range []bool{true, false} {
		for _, cb := range []bool{true, false} {
			v, ok := out.ValueUnder(map[condition.TID]bool{"TA": ca, "TB": cb})
			if !ok || !v.Equal(value.Int(want[ca][cb])) {
				t.Errorf("sum under TA=%v TB=%v = %v", ca, cb, v)
			}
		}
	}
}

func TestCorrelatedInputsPruneFalseAlternatives(t *testing.T) {
	// Two items depending on the SAME transaction: only 2 of the 4 naive
	// combinations are possible; the impossible ones must be discarded
	// (§3.2: "any such alternative transaction can be discarded").
	e := &Executor{}
	src := polyvalue.Uncertain("T9", polyvalue.Simple(value.Int(50)), polyvalue.Simple(value.Int(100)))
	dst := polyvalue.Uncertain("T9", polyvalue.Simple(value.Int(70)), polyvalue.Simple(value.Int(20)))
	tx := txn.MustNew("T1", "total = src + dst")
	res, err := e.Execute(tx, storeOf(map[string]polyvalue.Poly{"src": src, "dst": dst}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Alternatives != 2 {
		t.Errorf("Alternatives = %d, want 2 (false combinations pruned)", res.Alternatives)
	}
	// Both surviving alternatives compute 120: a conservation law that
	// makes the total certain despite per-item uncertainty.
	if v, ok := res.Writes["total"].IsCertain(); !ok || !v.Equal(value.Int(120)) {
		t.Errorf("total = %v", res.Writes["total"])
	}
}

func TestAlternativeLimit(t *testing.T) {
	e := &Executor{MaxAlternatives: 4}
	store := map[string]polyvalue.Poly{}
	items := []string{"a", "b", "c"}
	for i, name := range items {
		store[name] = polyvalue.Uncertain(condition.TID("T"+name), polyvalue.Simple(value.Int(int64(i))), polyvalue.Simple(value.Int(100)))
	}
	tx := txn.MustNew("T1", "s = a + b + c")
	if _, err := e.Execute(tx, storeOf(store)); err == nil {
		t.Error("8 alternatives should exceed limit 4")
	} else if !strings.Contains(err.Error(), "exceed limit") {
		t.Errorf("unexpected error %v", err)
	}
}

func TestExecuteErrorPropagates(t *testing.T) {
	e := &Executor{}
	// One alternative holds a string: arithmetic fails there.
	mixed := polyvalue.Uncertain("T9", polyvalue.Simple(value.Str("oops")), polyvalue.Simple(value.Int(1)))
	tx := txn.MustNew("T1", "x = x + 1")
	if _, err := e.Execute(tx, storeOf(map[string]polyvalue.Poly{"x": mixed})); err == nil {
		t.Error("type error in an alternative not propagated")
	}
}

func TestResolveAfterExecuteMatchesSerial(t *testing.T) {
	// End-to-end §3.3 check: execute with uncertainty, then resolve the
	// pending outcome both ways; each resolution must equal running the
	// transaction serially against the corresponding pre-state.
	e := &Executor{}
	pre := polyvalue.Uncertain("T9", polyvalue.Simple(value.Int(50)), polyvalue.Simple(value.Int(100)))
	tx := txn.MustNew("T1", "bal = bal * 2")
	res, err := e.Execute(tx, storeOf(map[string]polyvalue.Poly{"bal": pre}))
	if err != nil {
		t.Fatal(err)
	}
	for _, committed := range []bool{true, false} {
		preVal := int64(100)
		if committed {
			preVal = 50
		}
		want := value.Int(preVal * 2)
		got := res.Writes["bal"].Resolve("T9", committed)
		if v, ok := got.IsCertain(); !ok || !v.Equal(want) {
			t.Errorf("resolve(committed=%v) = %v, want %v", committed, got, want)
		}
	}
}

func TestEvalQueryCertain(t *testing.T) {
	e := &Executor{}
	node, err := expr.ParseExpr("a + b")
	if err != nil {
		t.Fatal(err)
	}
	p, err := e.EvalQuery(node, storeOf(map[string]polyvalue.Poly{
		"a": polyvalue.Simple(value.Int(2)), "b": polyvalue.Simple(value.Int(3)),
	}))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := p.IsCertain(); !ok || !v.Equal(value.Int(5)) {
		t.Errorf("query = %v", p)
	}
}

func TestEvalQueryUncertainOutput(t *testing.T) {
	// §3.4: "a ticket agent would not be bothered by an uncertain answer
	// to a request for the number of seats remaining".
	e := &Executor{}
	seats := polyvalue.Uncertain("T9", polyvalue.Simple(value.Int(12)), polyvalue.Simple(value.Int(13)))
	node, err := expr.ParseExpr("150 - seats")
	if err != nil {
		t.Fatal(err)
	}
	p, err := e.EvalQuery(node, storeOf(map[string]polyvalue.Poly{"seats": seats}))
	if err != nil {
		t.Fatal(err)
	}
	min, max, ok := p.MinMax()
	if !ok || min != 137 || max != 138 {
		t.Errorf("remaining = %v (min %g max %g)", p, min, max)
	}
	// A query whose answer doesn't depend on which value is real is
	// certain: seats < 100 either way.
	lt, err := expr.ParseExpr("seats < 100")
	if err != nil {
		t.Fatal(err)
	}
	p, err = e.EvalQuery(lt, storeOf(map[string]polyvalue.Poly{"seats": seats}))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := p.IsCertain(); !ok || !v.Equal(value.Bool(true)) {
		t.Errorf("seats<100 = %v", p)
	}
}

func TestEvalQueryError(t *testing.T) {
	e := &Executor{}
	node, err := expr.ParseExpr("s * 2")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.EvalQuery(node, storeOf(map[string]polyvalue.Poly{
		"s": polyvalue.Simple(value.Str("x")),
	})); err == nil {
		t.Error("query type error not propagated")
	}
}

func TestEvalQueryLimit(t *testing.T) {
	e := &Executor{MaxAlternatives: 2}
	store := map[string]polyvalue.Poly{
		"a": polyvalue.Uncertain("TA", polyvalue.Simple(value.Int(1)), polyvalue.Simple(value.Int(2))),
		"b": polyvalue.Uncertain("TB", polyvalue.Simple(value.Int(3)), polyvalue.Simple(value.Int(4))),
	}
	node, err := expr.ParseExpr("a + b")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.EvalQuery(node, storeOf(store)); err == nil {
		t.Error("query fan-out limit not enforced")
	}
}
