// Package polytxn implements §3.2 of the paper: executing a transaction
// whose inputs may be polyvalues.
//
// "Each polytransaction T consists of a set of alternative transactions
// {T_c}, each of which performs the transaction T on a different database
// state."  When an alternative with condition c reads an item whose
// polyvalue is {⟨v_i, c_i⟩}, it partitions into alternatives with
// conditions c∧c_i, each reading v_i.  Alternatives whose condition is
// logically false are discarded before computing anything.  The outputs
// are reassembled into polyvalues — one per written item — whose
// conditions are complete and disjoint by construction.
package polytxn

import (
	"fmt"
	"sort"

	"repro/internal/condition"
	"repro/internal/expr"
	"repro/internal/polyvalue"
	"repro/internal/txn"
	"repro/internal/value"
)

// DefaultMaxAlternatives bounds the partitioning fan-out.  Each
// polyvalued input multiplies the alternative count by its pair count;
// the paper's analysis (§4) shows polyvalue populations stay small, but a
// defensive cap turns pathological blow-ups into a clean error instead of
// an unbounded computation.
const DefaultMaxAlternatives = 4096

// Result is the outcome of the compute phase of a (poly)transaction.
type Result struct {
	// Writes maps each written item to its new (possibly poly) value.
	Writes map[string]polyvalue.Poly
	// Alternatives is the number of alternative transactions that were
	// actually computed (after pruning false conditions).
	Alternatives int
	// Certain reports whether every written value is a simple value —
	// i.e. the transaction did not propagate any uncertainty (§3.2:
	// "any transaction whose outputs do not depend on the exact correct
	// value of a polyvalued input produces simple values").
	Certain bool
}

// Executor runs transaction programs against polyvalued states.
type Executor struct {
	// MaxAlternatives caps the partitioning fan-out; 0 means
	// DefaultMaxAlternatives.
	MaxAlternatives int
}

// alternative is one T_c: a condition plus the concrete input values its
// database state assigns to the read items.
type alternative struct {
	cond condition.Cond
	env  expr.MapEnv
}

// Execute computes the writes of t given the current (possibly
// polyvalued) values of the items it accesses.  lookup must return the
// current value of any item in t's item set; items never written are
// polyvalue.Simple(value.Nil{}).
//
// The returned Result's Writes cover t's entire write set: an item whose
// guard failed in some alternatives keeps its previous value under those
// alternatives' conditions, per §3.2 ("or is the previous value of the
// item if transaction T_i does not compute a new value for the item").
func (e *Executor) Execute(t txn.T, lookup func(item string) polyvalue.Poly) (Result, error) {
	maxAlts := e.MaxAlternatives
	if maxAlts <= 0 {
		maxAlts = DefaultMaxAlternatives
	}

	// Partition on polyvalued *read* items only.  Items that are written
	// but never read cannot affect the computation, so they never cause
	// partitioning — the paper's "one can also recognize cases where the
	// actual value of an item accessed by a transaction does not affect
	// the computation performed by the transaction".
	reads := t.ReadSet()
	inputs := make(map[string]polyvalue.Poly, len(reads))
	for _, item := range reads {
		inputs[item] = lookup(item)
	}

	alts := []alternative{{cond: condition.True(), env: expr.MapEnv{}}}
	for _, item := range reads {
		poly := inputs[item]
		pairs := poly.Pairs()
		if len(pairs) == 1 {
			// Certain input: no partitioning, just bind the value.
			for i := range alts {
				alts[i].env[item] = pairs[0].Val
			}
			continue
		}
		next := make([]alternative, 0, len(alts)*len(pairs))
		for _, a := range alts {
			for _, pr := range pairs {
				c := a.cond.And(pr.Cond)
				if c.IsFalse() {
					continue // discard impossible alternatives (§3.2)
				}
				env := make(expr.MapEnv, len(a.env)+1)
				for k, v := range a.env {
					env[k] = v
				}
				env[item] = pr.Val
				next = append(next, alternative{cond: c, env: env})
			}
		}
		if len(next) > maxAlts {
			return Result{}, fmt.Errorf("polytxn %s: %d alternatives exceed limit %d", t.ID, len(next), maxAlts)
		}
		if len(next) == 0 {
			return Result{}, fmt.Errorf("polytxn %s: no satisfiable alternative (inconsistent inputs)", t.ID)
		}
		alts = next
	}

	// Run the program once per alternative.
	writeSet := t.WriteSet()
	type altWrites struct {
		cond   condition.Cond
		writes map[string]value.V
	}
	computed := make([]altWrites, len(alts))
	for i, a := range alts {
		w, err := t.Program.Eval(a.env)
		if err != nil {
			return Result{}, fmt.Errorf("polytxn %s under %s: %w", t.ID, a.cond, err)
		}
		computed[i] = altWrites{cond: a.cond, writes: w}
	}

	// Assemble one output polyvalue per write-set item.
	out := make(map[string]polyvalue.Poly, len(writeSet))
	certain := true
	for _, item := range writeSet {
		prev, fetched := inputs[item]
		composed := make([]polyvalue.Alternative, 0, len(computed))
		for _, aw := range computed {
			if v, ok := aw.writes[item]; ok {
				composed = append(composed, polyvalue.Alternative{
					Cond: aw.cond, Val: polyvalue.Simple(v),
				})
				continue
			}
			// Guard failed in this alternative: previous value persists.
			if !fetched {
				prev = lookup(item)
				fetched = true
			}
			composed = append(composed, polyvalue.Alternative{Cond: aw.cond, Val: prev})
		}
		p := polyvalue.Compose(composed)
		if _, ok := p.IsCertain(); !ok {
			certain = false
		}
		out[item] = p
	}

	return Result{Writes: out, Alternatives: len(alts), Certain: certain}, nil
}

// EvalQuery evaluates a read-only expression against a polyvalued state,
// returning a polyvalue for the answer.  This implements §3.4: system
// outputs may themselves be uncertain, and the caller chooses to present
// the uncertainty or wait.  The same partition-prune-compose machinery
// applies, with the expression's value in place of assignment writes.
func (e *Executor) EvalQuery(node expr.Node, lookup func(item string) polyvalue.Poly) (polyvalue.Poly, error) {
	maxAlts := e.MaxAlternatives
	if maxAlts <= 0 {
		maxAlts = DefaultMaxAlternatives
	}
	set := map[string]bool{}
	nodeVars(node, set)
	reads := make([]string, 0, len(set))
	for n := range set {
		reads = append(reads, n)
	}
	sort.Strings(reads)

	alts := []alternative{{cond: condition.True(), env: expr.MapEnv{}}}
	for _, item := range reads {
		pairs := lookup(item).Pairs()
		next := make([]alternative, 0, len(alts)*len(pairs))
		for _, a := range alts {
			for _, pr := range pairs {
				c := a.cond.And(pr.Cond)
				if c.IsFalse() {
					continue
				}
				env := make(expr.MapEnv, len(a.env)+1)
				for k, v := range a.env {
					env[k] = v
				}
				env[item] = pr.Val
				next = append(next, alternative{cond: c, env: env})
			}
		}
		if len(next) > maxAlts {
			return polyvalue.Poly{}, fmt.Errorf("polytxn query: %d alternatives exceed limit %d", len(next), maxAlts)
		}
		alts = next
	}

	composed := make([]polyvalue.Alternative, 0, len(alts))
	for _, a := range alts {
		v, err := expr.EvalExpr(node, a.env)
		if err != nil {
			return polyvalue.Poly{}, fmt.Errorf("polytxn query under %s: %w", a.cond, err)
		}
		composed = append(composed, polyvalue.Alternative{Cond: a.cond, Val: polyvalue.Simple(v)})
	}
	return polyvalue.Compose(composed), nil
}

// nodeVars mirrors expr's internal variable collection for query nodes.
func nodeVars(n expr.Node, set map[string]bool) {
	switch x := n.(type) {
	case expr.Lit:
	case expr.Ref:
		set[x.Name] = true
	case expr.Unary:
		nodeVars(x.X, set)
	case expr.Binary:
		nodeVars(x.L, set)
		nodeVars(x.R, set)
	case expr.Call:
		for _, a := range x.Args {
			nodeVars(a, set)
		}
	}
}
