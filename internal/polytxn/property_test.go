package polytxn

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/condition"
	"repro/internal/expr"
	"repro/internal/polyvalue"
	"repro/internal/txn"
	"repro/internal/value"
)

// scenario is a random polytransaction case: a store with some
// polyvalued items and a random arithmetic program over them.
type scenario struct {
	Seed int64
}

func (scenario) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(scenario{Seed: r.Int63()})
}

// build materializes the scenario: 4 input items (each either certain or
// a 2-pair polyvalue on its own transaction), and a program combining
// them with random operators and an optional guard.
func (s scenario) build() (txn.T, map[string]polyvalue.Poly, []condition.TID) {
	r := rand.New(rand.NewSource(s.Seed))
	store := map[string]polyvalue.Poly{}
	var pending []condition.TID
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("in%d", i)
		base := value.Int(r.Int63n(20) + 1)
		if r.Intn(2) == 0 {
			tid := condition.TID(fmt.Sprintf("P%d", i))
			store[name] = polyvalue.Uncertain(tid,
				polyvalue.Simple(value.Int(r.Int63n(20)+1)), polyvalue.Simple(base))
			pending = append(pending, tid)
		} else {
			store[name] = polyvalue.Simple(base)
		}
	}
	ops := []string{"+", "-", "*"}
	src := fmt.Sprintf("out = in0 %s in1 %s in2 %s in3",
		ops[r.Intn(3)], ops[r.Intn(3)], ops[r.Intn(3)])
	if r.Intn(2) == 0 {
		src += fmt.Sprintf(" if in%d >= %d", r.Intn(4), r.Int63n(15))
	}
	if r.Intn(3) == 0 {
		src += fmt.Sprintf("; aux = in%d + %d", r.Intn(4), r.Int63n(5))
	}
	return txn.MustNew("TX", src), store, pending
}

// TestPropExecuteAgreesWithBruteForce: for every outcome assignment of
// the pending transactions, the composed output polyvalue denotes
// exactly what evaluating the program against the resolved inputs would
// produce — §3.2's correctness in full generality.
func TestPropExecuteAgreesWithBruteForce(t *testing.T) {
	ex := &Executor{}
	f := func(s scenario) bool {
		tx, store, pending := s.build()
		res, err := ex.Execute(tx, func(item string) polyvalue.Poly {
			if p, ok := store[item]; ok {
				return p
			}
			return polyvalue.Simple(value.Nil{})
		})
		if err != nil {
			return false
		}
		// Enumerate every assignment of the pending outcomes.
		total := 1 << len(pending)
		for m := 0; m < total; m++ {
			asn := map[condition.TID]bool{}
			for i, tid := range pending {
				asn[tid] = m&(1<<uint(i)) != 0
			}
			// Brute force: resolve every input, evaluate directly.
			env := expr.MapEnv{}
			for name, p := range store {
				v, ok := p.ResolveAll(asn).IsCertain()
				if !ok {
					return false
				}
				env[name] = v
			}
			writes, err := tx.Program.Eval(env)
			if err != nil {
				return false
			}
			for _, item := range tx.WriteSet() {
				want, wrote := writes[item]
				if !wrote {
					// Guard failed: previous value (Nil — outputs are
					// fresh items here).
					want = value.Nil{}
				}
				got, ok := res.Writes[item].ValueUnder(asn)
				if !ok || !got.Equal(want) {
					return false
				}
			}
		}
		// Well-formedness of every output.
		for _, p := range res.Writes {
			if !p.WellFormed() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

// TestPropCertainFlagAccurate: Result.Certain is true exactly when every
// written value is a one-pair polyvalue.
func TestPropCertainFlagAccurate(t *testing.T) {
	ex := &Executor{}
	f := func(s scenario) bool {
		tx, store, _ := s.build()
		res, err := ex.Execute(tx, func(item string) polyvalue.Poly {
			if p, ok := store[item]; ok {
				return p
			}
			return polyvalue.Simple(value.Nil{})
		})
		if err != nil {
			return false
		}
		allCertain := true
		for _, p := range res.Writes {
			if _, ok := p.IsCertain(); !ok {
				allCertain = false
			}
		}
		return res.Certain == allCertain
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}
