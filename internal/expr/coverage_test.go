package expr

import (
	"strings"
	"testing"

	"repro/internal/value"
)

// TestNodeStringRendering: every node type renders source-equivalent
// text that re-parses to the same semantics.
func TestNodeStringRendering(t *testing.T) {
	cases := []string{
		"x = -y",
		"x = !(a && b)",
		"x = min(a, b + 1, abs(-c))",
		"x = (a + b) * (c - d)",
		"x = \"s\" + t",
		"x = a || b && c",
	}
	env := MapEnv{
		"a": value.Bool(true), "b": value.Bool(false), "c": value.Bool(true),
		"y": value.Int(3), "t": value.Str("u"), "d": value.Int(1),
	}
	numEnv := MapEnv{
		"a": value.Int(2), "b": value.Int(3), "c": value.Int(-4),
		"d": value.Int(1), "y": value.Int(3), "t": value.Str("u"),
	}
	for _, src := range cases {
		p := MustParse(src)
		rendered := p.Stmts[0].String()
		re, err := Parse(rendered)
		if err != nil {
			t.Fatalf("rendered %q does not parse: %v", rendered, err)
		}
		for _, e := range []MapEnv{env, numEnv} {
			w1, err1 := p.Eval(e)
			w2, err2 := re.Eval(e)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("%q: eval divergence: %v vs %v", src, err1, err2)
			}
			if err1 != nil {
				continue
			}
			if len(w1) != len(w2) {
				t.Fatalf("%q: write divergence", src)
			}
			for k := range w1 {
				if !w1[k].Equal(w2[k]) {
					t.Errorf("%q: %s = %v vs %v", src, k, w1[k], w2[k])
				}
			}
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse did not panic on bad input")
		}
	}()
	MustParse("not a program!!!")
}

func TestParseExprErrors(t *testing.T) {
	for _, src := range []string{"", "1 +", "(1", "1 2", "@"} {
		if _, err := ParseExpr(src); err == nil {
			t.Errorf("ParseExpr(%q) accepted", src)
		}
	}
	// Guard/unary rendering paths.
	p := MustParse("x = 1 if !(a == 1)")
	if !strings.Contains(p.Stmts[0].String(), "if !") {
		t.Errorf("guard rendering: %q", p.Stmts[0].String())
	}
}

func TestReadSetIncludesCallAndUnaryArgs(t *testing.T) {
	p := MustParse("x = min(a, -b) if !(c == nil)")
	reads := p.ReadSet()
	if len(reads) != 3 {
		t.Errorf("ReadSet = %v", reads)
	}
}
