// Package expr implements a small expression language for declaring
// transaction bodies as data.  A transaction in the paper is "a mapping
// from one database state to another" (§3); here that mapping is a
// program of guarded assignments over named items, e.g.
//
//	src = src - 50 if src >= 50; dst = dst + 50 if src >= 50
//
// The cluster runtime, the §4.2 simulator workloads and the §5 example
// applications all share this representation, and the polytransaction
// engine re-evaluates a program once per alternative input combination.
package expr

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind enumerates lexical classes.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokOp // operators and punctuation
	tokKeyword
)

var keywords = map[string]bool{
	"if": true, "true": true, "false": true, "nil": true,
	"min": true, "max": true, "abs": true,
}

// token is one lexeme with its source position (byte offset) for error
// reporting.
type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// lex splits src into tokens.  It is a simple single-pass scanner; the
// language has no comments and strings use double quotes with \" and \\
// escapes.
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case unicode.IsLetter(rune(c)) || c == '_':
			start := i
			for i < len(src) && (isIdentByte(src[i])) {
				i++
			}
			word := src[start:i]
			kind := tokIdent
			if keywords[word] {
				kind = tokKeyword
			}
			toks = append(toks, token{kind: kind, text: word, pos: start})
		case unicode.IsDigit(rune(c)):
			start := i
			seenDot := false
			for i < len(src) && (unicode.IsDigit(rune(src[i])) || (src[i] == '.' && !seenDot)) {
				if src[i] == '.' {
					seenDot = true
				}
				i++
			}
			toks = append(toks, token{kind: tokNumber, text: src[start:i], pos: start})
		case c == '"':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < len(src) {
				if src[i] == '\\' && i+1 < len(src) {
					sb.WriteByte(src[i+1])
					i += 2
					continue
				}
				if src[i] == '"' {
					i++
					closed = true
					break
				}
				sb.WriteByte(src[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("expr: unterminated string at offset %d", start)
			}
			toks = append(toks, token{kind: tokString, text: sb.String(), pos: start})
		default:
			op, n := lexOp(src[i:])
			if n == 0 {
				return nil, fmt.Errorf("expr: unexpected character %q at offset %d", c, i)
			}
			toks = append(toks, token{kind: tokOp, text: op, pos: i})
			i += n
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: len(src)})
	return toks, nil
}

func isIdentByte(b byte) bool {
	return unicode.IsLetter(rune(b)) || unicode.IsDigit(rune(b)) || b == '_' || b == '.'
}

// lexOp matches the longest operator at the front of s.
func lexOp(s string) (string, int) {
	two := []string{"==", "!=", "<=", ">=", "&&", "||"}
	for _, op := range two {
		if strings.HasPrefix(s, op) {
			return op, 2
		}
	}
	switch s[0] {
	case '+', '-', '*', '/', '%', '<', '>', '=', '!', '(', ')', ';', ',':
		return s[:1], 1
	}
	return "", 0
}
