package expr

import (
	"strings"
	"testing"

	"repro/internal/value"
)

func evalOne(t *testing.T, src string, env MapEnv) value.V {
	t.Helper()
	n, err := ParseExpr(src)
	if err != nil {
		t.Fatalf("ParseExpr(%q): %v", src, err)
	}
	v, err := EvalExpr(n, env)
	if err != nil {
		t.Fatalf("EvalExpr(%q): %v", src, err)
	}
	return v
}

func TestArithmetic(t *testing.T) {
	env := MapEnv{"x": value.Int(10), "y": value.Float(2.5)}
	cases := []struct {
		src  string
		want value.V
	}{
		{"1 + 2", value.Int(3)},
		{"2 * 3 + 4", value.Int(10)},
		{"2 + 3 * 4", value.Int(14)},
		{"(2 + 3) * 4", value.Int(20)},
		{"10 / 3", value.Int(3)},
		{"10 % 3", value.Int(1)},
		{"-x", value.Int(-10)},
		{"x + y", value.Float(12.5)},
		{"x / 4", value.Int(2)},
		{"x / 4.0", value.Float(2.5)},
		{"abs(-7)", value.Int(7)},
		{"abs(-2.5)", value.Float(2.5)},
		{"min(3, 1, 2)", value.Int(1)},
		{"max(3, 1, 2)", value.Int(3)},
		{"min(1.5, 2)", value.Float(1.5)},
		{`"foo" + "bar"`, value.Str("foobar")},
	}
	for _, c := range cases {
		if got := evalOne(t, c.src, env); !got.Equal(c.want) {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestComparisons(t *testing.T) {
	env := MapEnv{"bal": value.Int(100)}
	cases := []struct {
		src  string
		want bool
	}{
		{"bal >= 50", true},
		{"bal < 50", false},
		{"bal == 100", true},
		{"bal == 100.0", true}, // loose numeric equality
		{"bal != 99", true},
		{`"a" < "b"`, true},
		{"true == true", true},
		{"1 == \"1\"", false},
		{"bal >= 50 && bal <= 150", true},
		{"bal < 50 || bal > 99", true},
		{"!(bal < 50)", true},
	}
	for _, c := range cases {
		if got := evalOne(t, c.src, env); !got.Equal(value.Bool(c.want)) {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestShortCircuit(t *testing.T) {
	// Right operand would error (ordering bool), but must not be reached.
	env := MapEnv{"b": value.Bool(true)}
	if got := evalOne(t, "true || (1 < b)", env); !got.Equal(value.Bool(true)) {
		t.Errorf("|| short circuit = %v", got)
	}
	if got := evalOne(t, "false && (1 < b)", env); !got.Equal(value.Bool(false)) {
		t.Errorf("&& short circuit = %v", got)
	}
}

func TestEvalErrors(t *testing.T) {
	env := MapEnv{"s": value.Str("x")}
	bad := []string{
		"1 / 0", "1 % 0", "-s", "!s", "s * 2", "1 && true",
		"true < false && true", "min(s)", "nil + 1",
	}
	for _, src := range bad {
		n, err := ParseExpr(src)
		if err != nil {
			t.Fatalf("ParseExpr(%q): %v", src, err)
		}
		if _, err := EvalExpr(n, env); err == nil {
			t.Errorf("EvalExpr(%q) succeeded, want error", src)
		}
	}
}

func TestFloatDivisionByZero(t *testing.T) {
	// Float division by zero yields Inf, matching IEEE semantics.
	got := evalOne(t, "1.0 / 0.0", nil)
	f, ok := value.AsFloat(got)
	if !ok || !strings.Contains(got.String(), "Inf") || f <= 0 {
		t.Errorf("1.0/0.0 = %v", got)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "x =", "= 5", "x = 5 if", "x 5", "x = (1", "x = 1)",
		"x = @", "x = \"unterminated", "x = abs(1, 2)", "x = min()",
		"x = 1; ; y = 2", "if = 3", "x = 1 extra",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestProgramSets(t *testing.T) {
	p := MustParse("dst = dst + amt if src >= amt; src = src - amt if src >= amt")
	reads := p.ReadSet()
	if len(reads) != 3 || reads[0] != "amt" || reads[1] != "dst" || reads[2] != "src" {
		t.Errorf("ReadSet = %v", reads)
	}
	writes := p.WriteSet()
	if len(writes) != 2 || writes[0] != "dst" || writes[1] != "src" {
		t.Errorf("WriteSet = %v", writes)
	}
	items := p.Items()
	if len(items) != 3 {
		t.Errorf("Items = %v", items)
	}
}

func TestProgramEvalPreState(t *testing.T) {
	// Both statements must read the pre-state: a transfer moves exactly
	// amt even though the first statement updates dst.
	p := MustParse("dst = dst + 50; src = src - 50")
	env := MapEnv{"src": value.Int(100), "dst": value.Int(0)}
	w, err := p.Eval(env)
	if err != nil {
		t.Fatal(err)
	}
	if !w["dst"].Equal(value.Int(50)) || !w["src"].Equal(value.Int(50)) {
		t.Errorf("writes = %v", w)
	}
}

func TestProgramGuards(t *testing.T) {
	p := MustParse("bal = bal - 50 if bal >= 50")
	w, err := p.Eval(MapEnv{"bal": value.Int(100)})
	if err != nil || len(w) != 1 || !w["bal"].Equal(value.Int(50)) {
		t.Errorf("guarded eval = %v, %v", w, err)
	}
	w, err = p.Eval(MapEnv{"bal": value.Int(10)})
	if err != nil || len(w) != 0 {
		t.Errorf("failed guard should write nothing: %v, %v", w, err)
	}
}

func TestProgramGuardTypeError(t *testing.T) {
	p := MustParse("x = 1 if y + 1")
	if _, err := p.Eval(MapEnv{"y": value.Int(1)}); err == nil {
		t.Error("non-bool guard accepted")
	}
}

func TestMissingItemReadsNil(t *testing.T) {
	p := MustParse("x = 1 if y == nil")
	w, err := p.Eval(MapEnv{})
	if err != nil || !w["x"].Equal(value.Int(1)) {
		t.Errorf("nil default: %v, %v", w, err)
	}
}

func TestProgramStringRoundTrip(t *testing.T) {
	src := "dst = dst + 50 if src >= 50"
	p := MustParse(src)
	if p.String() != src {
		t.Errorf("String = %q", p.String())
	}
	// Statement rendering re-parses to an equivalent program.
	re := MustParse(p.Stmts[0].String())
	w1, _ := p.Eval(MapEnv{"src": value.Int(60), "dst": value.Int(1)})
	w2, _ := re.Eval(MapEnv{"src": value.Int(60), "dst": value.Int(1)})
	if len(w1) != len(w2) || !w1["dst"].Equal(w2["dst"]) {
		t.Errorf("statement round trip differs: %v vs %v", w1, w2)
	}
}

func TestIdentWithDots(t *testing.T) {
	p := MustParse("acct.1 = acct.1 + 1")
	if p.WriteSet()[0] != "acct.1" {
		t.Errorf("dotted identifiers broken: %v", p.WriteSet())
	}
}

func TestStringEscapes(t *testing.T) {
	got := evalOne(t, `"a\"b\\c"`, nil)
	if !got.Equal(value.Str(`a"b\c`)) {
		t.Errorf("escapes = %v", got)
	}
}
