package expr

import (
	"fmt"
	"math"

	"repro/internal/value"
)

// evalNode evaluates one expression node against an environment.
//
// Type rules: arithmetic requires numeric operands and yields Int when
// both are Int, otherwise Float; comparisons yield Bool and accept any
// pair of same-kind comparable values plus mixed Int/Float; && and ||
// require Bool and short-circuit; == and != accept any kinds.
func evalNode(n Node, env Env) (value.V, error) {
	switch x := n.(type) {
	case Lit:
		return x.V, nil
	case Ref:
		return env.Lookup(x.Name), nil
	case Unary:
		return evalUnary(x, env)
	case Binary:
		return evalBinary(x, env)
	case Call:
		return evalCall(x, env)
	default:
		return nil, fmt.Errorf("unknown node %T", n)
	}
}

// EvalExpr evaluates a standalone expression (from ParseExpr).
func EvalExpr(n Node, env Env) (value.V, error) { return evalNode(n, env) }

func evalUnary(u Unary, env Env) (value.V, error) {
	v, err := evalNode(u.X, env)
	if err != nil {
		return nil, err
	}
	switch u.Op {
	case "-":
		switch x := v.(type) {
		case value.Int:
			return value.Int(-x), nil
		case value.Float:
			return value.Float(-x), nil
		}
		return nil, fmt.Errorf("cannot negate %s", v.Kind())
	case "!":
		if b, ok := v.(value.Bool); ok {
			return value.Bool(!b), nil
		}
		return nil, fmt.Errorf("cannot apply ! to %s", v.Kind())
	default:
		return nil, fmt.Errorf("unknown unary operator %q", u.Op)
	}
}

func evalBinary(b Binary, env Env) (value.V, error) {
	// Short-circuit boolean operators first.
	if b.Op == "&&" || b.Op == "||" {
		l, err := evalNode(b.L, env)
		if err != nil {
			return nil, err
		}
		lb, ok := l.(value.Bool)
		if !ok {
			return nil, fmt.Errorf("left operand of %s is %s, want bool", b.Op, l.Kind())
		}
		if b.Op == "&&" && !bool(lb) {
			return value.Bool(false), nil
		}
		if b.Op == "||" && bool(lb) {
			return value.Bool(true), nil
		}
		r, err := evalNode(b.R, env)
		if err != nil {
			return nil, err
		}
		rb, ok := r.(value.Bool)
		if !ok {
			return nil, fmt.Errorf("right operand of %s is %s, want bool", b.Op, r.Kind())
		}
		return rb, nil
	}

	l, err := evalNode(b.L, env)
	if err != nil {
		return nil, err
	}
	r, err := evalNode(b.R, env)
	if err != nil {
		return nil, err
	}

	switch b.Op {
	case "==":
		return value.Bool(equalLoose(l, r)), nil
	case "!=":
		return value.Bool(!equalLoose(l, r)), nil
	case "<", "<=", ">", ">=":
		cmp, ok := compareLoose(l, r)
		if !ok {
			return nil, fmt.Errorf("cannot order %s and %s", l.Kind(), r.Kind())
		}
		switch b.Op {
		case "<":
			return value.Bool(cmp < 0), nil
		case "<=":
			return value.Bool(cmp <= 0), nil
		case ">":
			return value.Bool(cmp > 0), nil
		default:
			return value.Bool(cmp >= 0), nil
		}
	case "+", "-", "*", "/", "%":
		return arith(b.Op, l, r)
	default:
		return nil, fmt.Errorf("unknown operator %q", b.Op)
	}
}

// equalLoose treats Int and Float with equal numeric value as equal, so
// "x == 1" works whether x holds Int(1) or Float(1).
func equalLoose(l, r value.V) bool {
	if l.Kind() != r.Kind() && value.IsNumeric(l) && value.IsNumeric(r) {
		lf, _ := value.AsFloat(l)
		rf, _ := value.AsFloat(r)
		return lf == rf
	}
	return l.Equal(r)
}

// compareLoose orders mixed numerics as floats and same-kind values with
// value.Compare.
func compareLoose(l, r value.V) (int, bool) {
	if value.IsNumeric(l) && value.IsNumeric(r) {
		lf, _ := value.AsFloat(l)
		rf, _ := value.AsFloat(r)
		switch {
		case lf < rf:
			return -1, true
		case lf > rf:
			return 1, true
		}
		return 0, true
	}
	if l.Kind() != r.Kind() || l.Kind() != value.KindStr {
		return 0, false // only numerics and strings are orderable here
	}
	return value.Compare(l, r)
}

func arith(op string, l, r value.V) (value.V, error) {
	// String concatenation.
	if op == "+" {
		if ls, ok := l.(value.Str); ok {
			if rs, ok := r.(value.Str); ok {
				return value.Str(string(ls) + string(rs)), nil
			}
		}
	}
	if !value.IsNumeric(l) || !value.IsNumeric(r) {
		return nil, fmt.Errorf("cannot apply %s to %s and %s", op, l.Kind(), r.Kind())
	}
	li, lIsInt := l.(value.Int)
	ri, rIsInt := r.(value.Int)
	if lIsInt && rIsInt {
		switch op {
		case "+":
			return value.Int(li + ri), nil
		case "-":
			return value.Int(li - ri), nil
		case "*":
			return value.Int(li * ri), nil
		case "/":
			if ri == 0 {
				return nil, fmt.Errorf("integer division by zero")
			}
			return value.Int(li / ri), nil
		case "%":
			if ri == 0 {
				return nil, fmt.Errorf("integer modulo by zero")
			}
			return value.Int(li % ri), nil
		}
	}
	lf, _ := value.AsFloat(l)
	rf, _ := value.AsFloat(r)
	switch op {
	case "+":
		return value.Float(lf + rf), nil
	case "-":
		return value.Float(lf - rf), nil
	case "*":
		return value.Float(lf * rf), nil
	case "/":
		return value.Float(lf / rf), nil
	case "%":
		return value.Float(math.Mod(lf, rf)), nil
	}
	return nil, fmt.Errorf("unknown arithmetic operator %q", op)
}

func evalCall(c Call, env Env) (value.V, error) {
	args := make([]value.V, len(c.Args))
	for i, a := range c.Args {
		v, err := evalNode(a, env)
		if err != nil {
			return nil, err
		}
		if !value.IsNumeric(v) {
			return nil, fmt.Errorf("%s: argument %d is %s, want numeric", c.Fn, i+1, v.Kind())
		}
		args[i] = v
	}
	switch c.Fn {
	case "abs":
		switch x := args[0].(type) {
		case value.Int:
			if x < 0 {
				return value.Int(-x), nil
			}
			return x, nil
		case value.Float:
			return value.Float(math.Abs(float64(x))), nil
		}
	case "min", "max":
		best := args[0]
		for _, a := range args[1:] {
			cmp, _ := compareLoose(a, best)
			if (c.Fn == "min" && cmp < 0) || (c.Fn == "max" && cmp > 0) {
				best = a
			}
		}
		return best, nil
	}
	return nil, fmt.Errorf("unknown function %q", c.Fn)
}
