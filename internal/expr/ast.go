package expr

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/value"
)

// Node is an expression AST node.  Nodes are immutable after parsing.
type Node interface {
	// String renders source-equivalent text.
	String() string
	// vars accumulates the item names the expression reads.
	vars(set map[string]bool)
}

// Lit is a literal scalar.
type Lit struct{ V value.V }

// Ref reads the named database item.
type Ref struct{ Name string }

// Unary applies "-" (numeric negation) or "!" (boolean not).
type Unary struct {
	Op string
	X  Node
}

// Binary applies an infix operator.
type Binary struct {
	Op   string
	L, R Node
}

// Call invokes a builtin: min, max (variadic ≥1), abs (1 argument).
type Call struct {
	Fn   string
	Args []Node
}

func (n Lit) String() string { return n.V.String() }
func (n Ref) String() string { return n.Name }
func (n Unary) String() string {
	return n.Op + maybeParen(n.X)
}
func (n Binary) String() string {
	return maybeParen(n.L) + " " + n.Op + " " + maybeParen(n.R)
}
func (n Call) String() string {
	args := make([]string, len(n.Args))
	for i, a := range n.Args {
		args[i] = a.String()
	}
	return n.Fn + "(" + strings.Join(args, ", ") + ")"
}

func maybeParen(n Node) string {
	switch n.(type) {
	case Binary:
		return "(" + n.String() + ")"
	default:
		return n.String()
	}
}

func (n Lit) vars(map[string]bool)       {}
func (n Ref) vars(set map[string]bool)   { set[n.Name] = true }
func (n Unary) vars(set map[string]bool) { n.X.vars(set) }
func (n Binary) vars(set map[string]bool) {
	n.L.vars(set)
	n.R.vars(set)
}
func (n Call) vars(set map[string]bool) {
	for _, a := range n.Args {
		a.vars(set)
	}
}

// Assign is one guarded assignment: Target = Expr [if Guard].  A nil
// Guard means unconditional.
type Assign struct {
	Target string
	Expr   Node
	Guard  Node
}

// String renders the assignment in source syntax.
func (a Assign) String() string {
	s := a.Target + " = " + a.Expr.String()
	if a.Guard != nil {
		s += " if " + a.Guard.String()
	}
	return s
}

// Program is a parsed transaction body: a sequence of guarded
// assignments.  All reads observe the *pre-state* (the paper's model of a
// transaction as a single mapping between database states), so statement
// order does not matter for semantics; guards and right-hand sides never
// see earlier statements' writes.
type Program struct {
	Stmts []Assign
	src   string
}

// String returns the original source text.
func (p Program) String() string { return p.src }

// ReadSet returns the sorted names of all items the program may read
// (right-hand sides and guards).
func (p Program) ReadSet() []string {
	set := map[string]bool{}
	for _, s := range p.Stmts {
		s.Expr.vars(set)
		if s.Guard != nil {
			s.Guard.vars(set)
		}
	}
	return sortedNames(set)
}

// WriteSet returns the sorted names of all items the program may write.
func (p Program) WriteSet() []string {
	set := map[string]bool{}
	for _, s := range p.Stmts {
		set[s.Target] = true
	}
	return sortedNames(set)
}

// Items returns the union of read and write sets: every item whose site
// participates in the transaction.
func (p Program) Items() []string {
	set := map[string]bool{}
	for _, s := range p.Stmts {
		set[s.Target] = true
		s.Expr.vars(set)
		if s.Guard != nil {
			s.Guard.vars(set)
		}
	}
	return sortedNames(set)
}

func sortedNames(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Env supplies item values during evaluation.
type Env interface {
	// Lookup returns the current value of the named item.  Items never
	// written read as value.Nil.
	Lookup(name string) value.V
}

// MapEnv is the simplest Env: a map with Nil fallback.
type MapEnv map[string]value.V

// Lookup implements Env.
func (m MapEnv) Lookup(name string) value.V {
	if v, ok := m[name]; ok {
		return v
	}
	return value.Nil{}
}

// Eval evaluates the program against the pre-state env and returns the
// writes it performs.  Guarded assignments whose guard is false (or whose
// guard errors as non-boolean) produce no write.  All guards and
// right-hand sides read the pre-state only.
func (p Program) Eval(env Env) (map[string]value.V, error) {
	writes := make(map[string]value.V, len(p.Stmts))
	for _, s := range p.Stmts {
		if s.Guard != nil {
			g, err := evalNode(s.Guard, env)
			if err != nil {
				return nil, fmt.Errorf("expr: guard of %q: %w", s.Target, err)
			}
			b, ok := g.(value.Bool)
			if !ok {
				return nil, fmt.Errorf("expr: guard of %q is %s, want bool", s.Target, g.Kind())
			}
			if !bool(b) {
				continue
			}
		}
		v, err := evalNode(s.Expr, env)
		if err != nil {
			return nil, fmt.Errorf("expr: assignment to %q: %w", s.Target, err)
		}
		writes[s.Target] = v
	}
	return writes, nil
}
