package expr

import (
	"testing"

	"repro/internal/value"
)

// FuzzParseProgram: the parser must never panic; accepted programs must
// have consistent read/write sets and evaluate without panicking against
// a permissive environment.
func FuzzParseProgram(f *testing.F) {
	for _, seed := range []string{
		"x = 1", "x = y + 1 if y > 0", "a = b; c = d * 2",
		"x = min(a, b, c) if !(a == b)", `s = "lit" + t`,
		"x = 1 if", "= 2", "x = (", "x = 1; ; y",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src)
		if err != nil {
			return
		}
		if len(p.WriteSet()) == 0 {
			t.Fatalf("accepted program %q writes nothing", src)
		}
		env := MapEnv{}
		for _, name := range p.ReadSet() {
			env[name] = value.Int(1)
		}
		// Evaluation may fail (type errors) but must not panic.
		_, _ = p.Eval(env)
		// The rendered source must re-parse.
		if _, err := Parse(p.String()); err != nil {
			t.Fatalf("String() of accepted program does not re-parse: %q: %v", p.String(), err)
		}
	})
}
