package expr

import (
	"fmt"
	"strconv"

	"repro/internal/value"
)

// Parse compiles transaction source text into a Program.
//
// Grammar (whitespace-insensitive):
//
//	program := stmt { ";" stmt } [ ";" ]
//	stmt    := ident "=" expr [ "if" expr ]
//	expr    := or
//	or      := and { "||" and }
//	and     := cmp { "&&" cmp }
//	cmp     := add [ ("=="|"!="|"<"|"<="|">"|">=") add ]
//	add     := mul { ("+"|"-") mul }
//	mul     := unary { ("*"|"/"|"%") unary }
//	unary   := [ "-" | "!" ] primary
//	primary := number | string | "true" | "false" | "nil" | ident
//	         | ("min"|"max"|"abs") "(" expr { "," expr } ")"
//	         | "(" expr ")"
func Parse(src string) (Program, error) {
	toks, err := lex(src)
	if err != nil {
		return Program{}, err
	}
	p := &parser{toks: toks}
	var stmts []Assign
	for !p.at(tokEOF) {
		stmt, err := p.parseStmt()
		if err != nil {
			return Program{}, err
		}
		stmts = append(stmts, stmt)
		if p.atOp(";") {
			p.next()
			continue
		}
		break
	}
	if !p.at(tokEOF) {
		return Program{}, fmt.Errorf("expr: unexpected %s at offset %d", p.peek(), p.peek().pos)
	}
	if len(stmts) == 0 {
		return Program{}, fmt.Errorf("expr: empty program")
	}
	return Program{Stmts: stmts, src: src}, nil
}

// MustParse is Parse that panics on error; for tests and fixed workloads.
func MustParse(src string) Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

// ParseExpr compiles a single expression (no assignment), useful for
// read-only queries against a store.
func ParseExpr(src string) (Node, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	n, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF) {
		return nil, fmt.Errorf("expr: unexpected %s at offset %d", p.peek(), p.peek().pos)
	}
	return n, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token         { return p.toks[p.i] }
func (p *parser) next() token         { t := p.toks[p.i]; p.i++; return t }
func (p *parser) at(k tokenKind) bool { return p.peek().kind == k }
func (p *parser) atOp(op string) bool {
	return p.peek().kind == tokOp && p.peek().text == op
}
func (p *parser) atKeyword(kw string) bool {
	return p.peek().kind == tokKeyword && p.peek().text == kw
}

func (p *parser) expectOp(op string) error {
	if !p.atOp(op) {
		return fmt.Errorf("expr: expected %q, found %s at offset %d", op, p.peek(), p.peek().pos)
	}
	p.next()
	return nil
}

func (p *parser) parseStmt() (Assign, error) {
	if !p.at(tokIdent) {
		return Assign{}, fmt.Errorf("expr: expected item name, found %s at offset %d", p.peek(), p.peek().pos)
	}
	target := p.next().text
	if err := p.expectOp("="); err != nil {
		return Assign{}, err
	}
	rhs, err := p.parseExpr()
	if err != nil {
		return Assign{}, err
	}
	var guard Node
	if p.atKeyword("if") {
		p.next()
		guard, err = p.parseExpr()
		if err != nil {
			return Assign{}, err
		}
	}
	return Assign{Target: target, Expr: rhs, Guard: guard}, nil
}

func (p *parser) parseExpr() (Node, error) { return p.parseOr() }

func (p *parser) parseOr() (Node, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.atOp("||") {
		p.next()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: "||", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Node, error) {
	l, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.atOp("&&") {
		p.next()
		r, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: "&&", L: l, R: r}
	}
	return l, nil
}

var cmpOps = map[string]bool{"==": true, "!=": true, "<": true, "<=": true, ">": true, ">=": true}

func (p *parser) parseCmp() (Node, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if p.peek().kind == tokOp && cmpOps[p.peek().text] {
		op := p.next().text
		r, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return Binary{Op: op, L: l, R: r}, nil
	}
	return l, nil
}

func (p *parser) parseAdd() (Node, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.atOp("+") || p.atOp("-") {
		op := p.next().text
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseMul() (Node, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.atOp("*") || p.atOp("/") || p.atOp("%") {
		op := p.next().text
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseUnary() (Node, error) {
	if p.atOp("-") || p.atOp("!") {
		op := p.next().text
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Unary{Op: op, X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Node, error) {
	t := p.peek()
	switch {
	case t.kind == tokNumber:
		p.next()
		if i, err := strconv.ParseInt(t.text, 10, 64); err == nil {
			return Lit{V: value.Int(i)}, nil
		}
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, fmt.Errorf("expr: bad number %q at offset %d", t.text, t.pos)
		}
		return Lit{V: value.Float(f)}, nil
	case t.kind == tokString:
		p.next()
		return Lit{V: value.Str(t.text)}, nil
	case t.kind == tokKeyword && (t.text == "true" || t.text == "false"):
		p.next()
		return Lit{V: value.Bool(t.text == "true")}, nil
	case t.kind == tokKeyword && t.text == "nil":
		p.next()
		return Lit{V: value.Nil{}}, nil
	case t.kind == tokKeyword && (t.text == "min" || t.text == "max" || t.text == "abs"):
		p.next()
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var args []Node
		for {
			a, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			if p.atOp(",") {
				p.next()
				continue
			}
			break
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		if t.text == "abs" && len(args) != 1 {
			return nil, fmt.Errorf("expr: abs takes 1 argument, got %d at offset %d", len(args), t.pos)
		}
		return Call{Fn: t.text, Args: args}, nil
	case t.kind == tokIdent:
		p.next()
		return Ref{Name: t.text}, nil
	case t.kind == tokOp && t.text == "(":
		p.next()
		inner, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return inner, nil
	default:
		return nil, fmt.Errorf("expr: unexpected %s at offset %d", t, t.pos)
	}
}
