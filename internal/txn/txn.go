// Package txn defines the transaction model shared by the commit
// protocol, the polytransaction engine and the cluster runtime: a
// transaction is an identified deterministic mapping from one database
// state to another (Montgomery, SOSP 1979, §3), expressed as an expr
// program of guarded assignments.
//
// The package also provides the serial-execution oracle used throughout
// the test suite: atomicity requires that any concurrent/failure-ridden
// execution be equivalent to some serial execution of the committed
// transactions, so tests replay histories through the oracle and compare.
package txn

import (
	"fmt"
	"strconv"
	"sync/atomic"

	"repro/internal/condition"
	"repro/internal/expr"
	"repro/internal/value"
)

// ID identifies a transaction.  It doubles as the condition variable name
// in polyvalues, hence the alias.
type ID = condition.TID

// Outcome is the coordinator's decision for a transaction.
type Outcome uint8

const (
	// Pending means the outcome is not yet known (the transaction is
	// running, or a failure has hidden the decision).
	Pending Outcome = iota
	// Committed means every site installed the transaction's results.
	Committed
	// Aborted means the transaction's results were discarded everywhere.
	Aborted
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case Pending:
		return "pending"
	case Committed:
		return "committed"
	case Aborted:
		return "aborted"
	default:
		return fmt.Sprintf("outcome(%d)", uint8(o))
	}
}

// T is a transaction: an identifier plus a deterministic body.
type T struct {
	ID      ID
	Program expr.Program
}

// New builds a transaction from source text.
func New(id ID, src string) (T, error) {
	p, err := expr.Parse(src)
	if err != nil {
		return T{}, fmt.Errorf("txn %s: %w", id, err)
	}
	return T{ID: id, Program: p}, nil
}

// MustNew is New that panics on parse errors.
func MustNew(id ID, src string) T {
	t, err := New(id, src)
	if err != nil {
		panic(err)
	}
	return t
}

// ReadSet returns the items the transaction may read.
func (t T) ReadSet() []string { return t.Program.ReadSet() }

// WriteSet returns the items the transaction may write.
func (t T) WriteSet() []string { return t.Program.WriteSet() }

// Items returns every item the transaction accesses; the sites holding
// these items are exactly the sites the transaction "directly involves"
// (§3).
func (t T) Items() []string { return t.Program.Items() }

// IDGen allocates process-unique transaction identifiers.  The zero
// value is ready to use; Next is safe for concurrent use.
type IDGen struct {
	prefix string
	n      atomic.Uint64
}

// NewIDGen returns a generator whose IDs carry the given prefix
// (typically the coordinator site name, making IDs globally unique in a
// cluster without coordination).
func NewIDGen(prefix string) *IDGen { return &IDGen{prefix: prefix} }

// Next returns a fresh identifier.  One buffer, no fmt machinery: ID
// generation sits on the submit hot path.
func (g *IDGen) Next() ID {
	n := g.n.Add(1)
	buf := make([]byte, 0, len(g.prefix)+21)
	if g.prefix != "" {
		buf = append(buf, g.prefix...)
		buf = append(buf, '.')
	}
	buf = append(buf, 'T')
	buf = strconv.AppendUint(buf, n, 10)
	return ID(buf)
}

// HistoryEntry pairs a transaction with its (eventual) outcome, for the
// serial oracle.
type HistoryEntry struct {
	Txn     T
	Outcome Outcome
}

// SerialApply executes the committed transactions of a history in order
// against an initial state and returns the final state.  Aborted and
// pending transactions contribute nothing.  This is the correctness
// oracle: a polyvalue execution, once all outcomes are known and
// resolved, must equal SerialApply of the same history.
func SerialApply(initial map[string]value.V, history []HistoryEntry) (map[string]value.V, error) {
	state := make(map[string]value.V, len(initial))
	for k, v := range initial {
		state[k] = v
	}
	for _, h := range history {
		if h.Outcome != Committed {
			continue
		}
		writes, err := h.Txn.Program.Eval(expr.MapEnv(state))
		if err != nil {
			return nil, fmt.Errorf("serial apply %s: %w", h.Txn.ID, err)
		}
		for k, v := range writes {
			state[k] = v
		}
	}
	return state, nil
}
