package txn

import (
	"sync"
	"testing"

	"repro/internal/value"
)

func TestNewAndSets(t *testing.T) {
	tx, err := New("T1", "dst = dst + amt if src >= amt; src = src - amt if src >= amt")
	if err != nil {
		t.Fatal(err)
	}
	if tx.ID != "T1" {
		t.Errorf("ID = %v", tx.ID)
	}
	if got := tx.ReadSet(); len(got) != 3 {
		t.Errorf("ReadSet = %v", got)
	}
	if got := tx.WriteSet(); len(got) != 2 {
		t.Errorf("WriteSet = %v", got)
	}
	if got := tx.Items(); len(got) != 3 {
		t.Errorf("Items = %v", got)
	}
}

func TestNewParseError(t *testing.T) {
	if _, err := New("T1", "not a program"); err == nil {
		t.Error("bad program accepted")
	}
}

func TestOutcomeString(t *testing.T) {
	if Pending.String() != "pending" || Committed.String() != "committed" ||
		Aborted.String() != "aborted" || Outcome(9).String() != "outcome(9)" {
		t.Error("Outcome.String wrong")
	}
}

func TestIDGenUnique(t *testing.T) {
	g := NewIDGen("site1")
	a, b := g.Next(), g.Next()
	if a == b {
		t.Errorf("duplicate IDs: %v", a)
	}
	if a != "site1.T1" {
		t.Errorf("first ID = %v", a)
	}
	unprefixed := NewIDGen("")
	if unprefixed.Next() != "T1" {
		t.Error("unprefixed ID format changed")
	}
}

func TestIDGenConcurrent(t *testing.T) {
	g := NewIDGen("s")
	const n = 100
	var wg sync.WaitGroup
	ids := make([]ID, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ids[i] = g.Next()
		}(i)
	}
	wg.Wait()
	seen := map[ID]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate concurrent ID %v", id)
		}
		seen[id] = true
	}
}

func TestSerialApply(t *testing.T) {
	initial := map[string]value.V{"a": value.Int(100), "b": value.Int(0)}
	history := []HistoryEntry{
		{Txn: MustNew("T1", "a = a - 30; b = b + 30"), Outcome: Committed},
		{Txn: MustNew("T2", "a = a - 1000 if a >= 1000"), Outcome: Committed}, // guard fails
		{Txn: MustNew("T3", "a = 0; b = 0"), Outcome: Aborted},                // skipped
		{Txn: MustNew("T4", "b = b * 2"), Outcome: Committed},
	}
	final, err := SerialApply(initial, history)
	if err != nil {
		t.Fatal(err)
	}
	if !final["a"].Equal(value.Int(70)) || !final["b"].Equal(value.Int(60)) {
		t.Errorf("final = %v", final)
	}
	// Initial state must not be mutated.
	if !initial["b"].Equal(value.Int(0)) {
		t.Error("SerialApply mutated input")
	}
}

func TestSerialApplyPendingSkipped(t *testing.T) {
	final, err := SerialApply(map[string]value.V{"x": value.Int(1)}, []HistoryEntry{
		{Txn: MustNew("T1", "x = 99"), Outcome: Pending},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !final["x"].Equal(value.Int(1)) {
		t.Errorf("pending transaction applied: %v", final)
	}
}

func TestSerialApplyError(t *testing.T) {
	_, err := SerialApply(map[string]value.V{"s": value.Str("x")}, []HistoryEntry{
		{Txn: MustNew("T1", "s = s * 2"), Outcome: Committed},
	})
	if err == nil {
		t.Error("type error not propagated")
	}
}
