// Package fault is the fault-injection plane for the real cluster path.
// An Injector wraps any transport.Transport and perturbs traffic
// according to a declarative, runtime-mutable plan: per-link
// drop/duplicate/delay probabilities, payload corruption (flipping bytes
// inside outgoing TCP frames so the receiver's CRC path has to reject
// and resync), one-way and full partitions with scheduled heal times,
// and connection resets.  Everything is driven by one seeded PRNG, so a
// run with a fixed seed and a fixed schedule of Apply calls perturbs
// the same messages the same way.
//
// The injector sits ABOVE the wire: a message it drops never reaches
// the inner transport (and is counted as network.dropped{reason=fault},
// mirroring the simulated fabric's loss accounting), while corruption
// is applied BELOW the codec via the TCP transport's frame tap, so the
// bytes on the socket are damaged but the sender's view of the message
// is not.  Transports without a frame tap (the simulated fabric)
// degrade corruption to a drop — the observable effect a CRC reject
// has anyway.
package fault

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/protocol"
	"repro/internal/transport"
)

// Kinds of probabilistic rules.
const (
	KindDrop    = "drop"
	KindDup     = "dup"
	KindDelay   = "delay"
	KindCorrupt = "corrupt"
	KindReset   = "reset"
)

// Wildcard matches any site in a Rule's From/To position.
const Wildcard = "*"

// Rule is one probabilistic fault: with probability P, apply Kind to
// messages flowing From → To.  Either endpoint may be Wildcard.  Delay
// rules hold the message for a uniform duration in [MinDelay, MaxDelay]
// before forwarding (which also reorders it past anything sent later).
type Rule struct {
	Kind     string
	From, To protocol.SiteID
	P        float64
	MinDelay time.Duration
	MaxDelay time.Duration
}

func (r Rule) matches(from, to protocol.SiteID) bool {
	if r.From != Wildcard && r.From != from {
		return false
	}
	if r.To != Wildcard && r.To != to {
		return false
	}
	return true
}

func (r Rule) String() string {
	s := fmt.Sprintf("%s from=%s to=%s p=%g", r.Kind, r.From, r.To, r.P)
	if r.Kind == KindDelay {
		s += fmt.Sprintf(" min=%s max=%s", r.MinDelay, r.MaxDelay)
	}
	return s
}

// FrameTapper is the optional transport surface corruption rules need:
// a hook observing (and mutating) each encoded frame just before it is
// written to a peer socket.  *transport.TCP implements it.
type FrameTapper interface {
	SetFrameTap(tap func(to protocol.SiteID, frame []byte) []byte)
}

// PeerResetter is the optional transport surface reset rules need: the
// ability to sever the live connection to one peer (it redials).
// *transport.TCP implements it.
type PeerResetter interface {
	ResetPeer(peer protocol.SiteID) bool
}

// Config parameterizes an Injector.
type Config struct {
	// Self is the site whose outgoing traffic this injector carries;
	// used to match the From side of corruption rules (the frame tap
	// only sees the destination).
	Self protocol.SiteID
	// Seed drives every probabilistic decision.  Equal seeds + equal
	// traffic ⇒ equal faults.
	Seed int64
	// Metrics, when set, receives transport.fault.injected{kind=...}
	// and network.dropped{reason=fault} counters.
	Metrics *metrics.Registry
	// Logf, when set, receives one line per injected fault.
	Logf func(format string, args ...any)
}

// dirLink is one DIRECTED edge; a full partition stores both directions.
type dirLink struct {
	from, to protocol.SiteID
}

// Injector implements transport.Transport by delegating to an inner
// transport through the fault plan.  Safe for concurrent use.
type Injector struct {
	inner transport.Transport
	cfg   Config

	mu      sync.Mutex
	rng     *rand.Rand
	rules   []Rule
	blocked map[dirLink]time.Time // heal deadline; zero Time = until healed
	counts  map[string]int64
	timers  map[uint64]*time.Timer
	nextID  uint64
	closed  bool

	tapper   FrameTapper
	resetter PeerResetter
}

// Wrap builds an Injector over inner.  If inner supports frame tapping
// (TCP does), the corruption path is installed immediately; the tap is
// pass-through until a corrupt rule is added.
func Wrap(inner transport.Transport, cfg Config) *Injector {
	in := &Injector{
		inner:   inner,
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		blocked: map[dirLink]time.Time{},
		counts:  map[string]int64{},
		timers:  map[uint64]*time.Timer{},
	}
	if tp, ok := inner.(FrameTapper); ok {
		in.tapper = tp
		tp.SetFrameTap(in.tapFrame)
	}
	if rs, ok := inner.(PeerResetter); ok {
		in.resetter = rs
	}
	return in
}

// Inner returns the wrapped transport (for callers needing, e.g., the
// TCP listener address).
func (in *Injector) Inner() transport.Transport { return in.inner }

// Send applies the fault plan to msg, then forwards the surviving
// copies to the inner transport (possibly later, for delayed copies).
func (in *Injector) Send(msg protocol.Message) {
	in.mu.Lock()
	if in.closed {
		in.mu.Unlock()
		return
	}
	if in.blockedLocked(msg.From, msg.To) {
		in.noteLocked("partition", msg)
		in.mu.Unlock()
		return
	}
	if in.hitLocked(KindDrop, msg.From, msg.To) {
		in.noteLocked(KindDrop, msg)
		in.mu.Unlock()
		return
	}
	// On transports without a frame tap, corruption degrades to a drop:
	// a CRC-rejected frame never reaches the handler either.
	if in.tapper == nil && in.hitLocked(KindCorrupt, msg.From, msg.To) {
		in.noteLocked(KindCorrupt, msg)
		in.mu.Unlock()
		return
	}
	reset := in.resetter != nil && in.hitLocked(KindReset, msg.From, msg.To)
	if reset {
		in.noteLocked(KindReset, msg)
	}
	copies := 1
	if in.hitLocked(KindDup, msg.From, msg.To) {
		in.noteLocked(KindDup, msg)
		copies = 2
	}
	delays := make([]time.Duration, copies)
	for i := range delays {
		if d, ok := in.delayLocked(msg.From, msg.To); ok {
			in.noteLocked(KindDelay, msg)
			delays[i] = d
		}
	}
	in.mu.Unlock()

	for _, d := range delays {
		if d <= 0 {
			in.inner.Send(msg)
		} else {
			in.sendLater(d, msg)
		}
	}
	if reset {
		in.resetter.ResetPeer(msg.To)
	}
}

// sendLater forwards msg after d.  Timers are tracked so Close can
// cancel in-flight deliveries.
func (in *Injector) sendLater(d time.Duration, msg protocol.Message) {
	in.mu.Lock()
	if in.closed {
		in.mu.Unlock()
		return
	}
	in.nextID++
	id := in.nextID
	in.timers[id] = time.AfterFunc(d, func() {
		in.mu.Lock()
		_, live := in.timers[id]
		delete(in.timers, id)
		live = live && !in.closed
		in.mu.Unlock()
		if live {
			in.inner.Send(msg)
		}
	})
	in.mu.Unlock()
}

// tapFrame is installed as the TCP frame tap: with corrupt-rule
// probability it flips one payload byte (never the 4-byte length
// prefix, so the stream stays framed and the receiver can resync after
// rejecting the frame).
func (in *Injector) tapFrame(to protocol.SiteID, frame []byte) []byte {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.closed || len(frame) <= 4 {
		return frame
	}
	if !in.hitLocked(KindCorrupt, in.cfg.Self, to) {
		return frame
	}
	i := 4 + in.rng.Intn(len(frame)-4)
	frame[i] ^= 0xFF
	in.countLocked(KindCorrupt)
	in.logf("fault: corrupt frame byte %d to %s", i, to)
	return frame
}

// --- plan state (all *Locked helpers require in.mu) -------------------

func (in *Injector) blockedLocked(from, to protocol.SiteID) bool {
	heal, ok := in.blocked[dirLink{from, to}]
	if !ok {
		return false
	}
	if !heal.IsZero() && time.Now().After(heal) {
		delete(in.blocked, dirLink{from, to})
		return false
	}
	return true
}

func (in *Injector) hitLocked(kind string, from, to protocol.SiteID) bool {
	for _, r := range in.rules {
		if r.Kind == kind && r.matches(from, to) && in.rng.Float64() < r.P {
			return true
		}
	}
	return false
}

func (in *Injector) delayLocked(from, to protocol.SiteID) (time.Duration, bool) {
	for _, r := range in.rules {
		if r.Kind != KindDelay || !r.matches(from, to) || in.rng.Float64() >= r.P {
			continue
		}
		d := r.MinDelay
		if r.MaxDelay > r.MinDelay {
			d += time.Duration(in.rng.Int63n(int64(r.MaxDelay - r.MinDelay)))
		}
		return d, true
	}
	return 0, false
}

func (in *Injector) noteLocked(kind string, msg protocol.Message) {
	in.countLocked(kind)
	in.logf("fault: %s %s %s->%s tid=%s", kind, msg.Kind, msg.From, msg.To, msg.TID)
}

func (in *Injector) countLocked(kind string) {
	in.counts[kind]++
	if in.cfg.Metrics != nil {
		in.cfg.Metrics.Counter("transport.fault.injected", metrics.L("kind", kind)).Inc()
		switch kind {
		case KindDrop, KindCorrupt, "partition":
			in.cfg.Metrics.Counter("network.dropped", metrics.L("reason", "fault."+kind)).Inc()
		}
	}
}

func (in *Injector) logf(format string, args ...any) {
	if in.cfg.Logf != nil {
		in.cfg.Logf(format, args...)
	}
}

// --- plan mutation ----------------------------------------------------

// SetRule installs r, replacing any existing rule with the same
// (Kind, From, To).  P <= 0 removes the rule instead.
func (in *Injector) SetRule(r Rule) {
	if r.From == "" {
		r.From = Wildcard
	}
	if r.To == "" {
		r.To = Wildcard
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for i, old := range in.rules {
		if old.Kind == r.Kind && old.From == r.From && old.To == r.To {
			if r.P <= 0 {
				in.rules = append(in.rules[:i], in.rules[i+1:]...)
			} else {
				in.rules[i] = r
			}
			return
		}
	}
	if r.P > 0 {
		in.rules = append(in.rules, r)
	}
}

// Partition blocks the a→b direction (and b→a too unless oneWay),
// healing automatically after heal if heal > 0, otherwise until
// HealLink/HealAll.
func (in *Injector) Partition(a, b protocol.SiteID, oneWay bool, heal time.Duration) {
	var deadline time.Time
	if heal > 0 {
		deadline = time.Now().Add(heal)
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.blocked[dirLink{a, b}] = deadline
	if !oneWay {
		in.blocked[dirLink{b, a}] = deadline
	}
}

// HealLink unblocks both directions between a and b.
func (in *Injector) HealLink(a, b protocol.SiteID) {
	in.mu.Lock()
	defer in.mu.Unlock()
	delete(in.blocked, dirLink{a, b})
	delete(in.blocked, dirLink{b, a})
}

// HealAll removes every partition.  Probabilistic rules stay in force.
func (in *Injector) HealAll() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.blocked = map[dirLink]time.Time{}
}

// Clear removes every rule and partition: the plan becomes a no-op.
func (in *Injector) Clear() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules = nil
	in.blocked = map[dirLink]time.Time{}
}

// Reseed restarts the PRNG from seed (for reproducing a schedule
// mid-session).
func (in *Injector) Reseed(seed int64) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rng = rand.New(rand.NewSource(seed))
}

// Counts snapshots the per-kind injection counters.
func (in *Injector) Counts() map[string]int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[string]int64, len(in.counts))
	for k, v := range in.counts {
		out[k] = v
	}
	return out
}

// Status renders the active plan and injection counts as stable text.
func (in *Injector) Status() string {
	in.mu.Lock()
	defer in.mu.Unlock()
	var b strings.Builder
	if len(in.rules) == 0 && len(in.blocked) == 0 {
		b.WriteString("no active faults\n")
	}
	for _, r := range in.rules {
		fmt.Fprintf(&b, "rule %s\n", r)
	}
	links := make([]dirLink, 0, len(in.blocked))
	for l := range in.blocked {
		links = append(links, l)
	}
	sort.Slice(links, func(i, j int) bool {
		if links[i].from != links[j].from {
			return links[i].from < links[j].from
		}
		return links[i].to < links[j].to
	})
	for _, l := range links {
		heal := in.blocked[l]
		if heal.IsZero() {
			fmt.Fprintf(&b, "partition %s->%s\n", l.from, l.to)
		} else {
			fmt.Fprintf(&b, "partition %s->%s heal_in=%s\n", l.from, l.to, time.Until(heal).Round(time.Millisecond))
		}
	}
	kinds := make([]string, 0, len(in.counts))
	for k := range in.counts {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Fprintf(&b, "injected{kind=%s} %d\n", k, in.counts[k])
	}
	return b.String()
}

// --- pass-through Transport surface -----------------------------------

// Register passes through to the inner transport.
func (in *Injector) Register(site protocol.SiteID, h transport.Handler) {
	in.inner.Register(site, h)
}

// SetDown passes through to the inner transport.
func (in *Injector) SetDown(site protocol.SiteID, down bool) {
	in.inner.SetDown(site, down)
}

// IsDown passes through to the inner transport.
func (in *Injector) IsDown(site protocol.SiteID) bool {
	return in.inner.IsDown(site)
}

// Close cancels pending delayed deliveries and closes the inner
// transport.
func (in *Injector) Close() error {
	in.mu.Lock()
	if in.closed {
		in.mu.Unlock()
		return nil
	}
	in.closed = true
	for id, t := range in.timers {
		t.Stop()
		delete(in.timers, id)
	}
	in.mu.Unlock()
	return in.inner.Close()
}

var _ transport.Transport = (*Injector)(nil)
