package fault

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/protocol"
)

// Apply parses and executes one fault command, returning a one-line
// human-readable result.  The same grammar serves the polynode control
// port's FAULT verb and the -faults startup flag:
//
//	drop|dup|corrupt|reset [from=<site|*>] [to=<site|*>] p=<prob>
//	delay [from=<site|*>] [to=<site|*>] p=<prob> min=<dur> max=<dur>
//	partition a=<site> b=<site> [oneway] [heal=<dur>]
//	heal [a=<site> b=<site>]
//	clear
//	seed n=<int>
//	status
//
// Omitted from=/to= default to the wildcard; p=0 removes the matching
// rule.  Durations use Go syntax (150ms, 2s).
func (in *Injector) Apply(cmd string) (string, error) {
	fields := strings.Fields(cmd)
	if len(fields) == 0 {
		return "", fmt.Errorf("fault: empty command")
	}
	verb := strings.ToLower(fields[0])
	kv, flags, err := parseArgs(fields[1:])
	if err != nil {
		return "", err
	}
	switch verb {
	case KindDrop, KindDup, KindCorrupt, KindReset, KindDelay:
		r := Rule{
			Kind: verb,
			From: protocol.SiteID(orWild(kv["from"])),
			To:   protocol.SiteID(orWild(kv["to"])),
		}
		if _, ok := kv["p"]; !ok {
			return "", fmt.Errorf("fault: %s needs p=<prob>", verb)
		}
		if r.P, err = strconv.ParseFloat(kv["p"], 64); err != nil {
			return "", fmt.Errorf("fault: bad p=%q: %v", kv["p"], err)
		}
		if r.P < 0 || r.P > 1 {
			return "", fmt.Errorf("fault: p=%g out of [0,1]", r.P)
		}
		if verb == KindDelay {
			if r.MinDelay, err = parseDur(kv, "min"); err != nil {
				return "", err
			}
			if r.MaxDelay, err = parseDur(kv, "max"); err != nil {
				return "", err
			}
			if r.MaxDelay < r.MinDelay {
				return "", fmt.Errorf("fault: delay max=%s < min=%s", r.MaxDelay, r.MinDelay)
			}
		}
		in.SetRule(r)
		if r.P == 0 {
			return fmt.Sprintf("cleared %s from=%s to=%s", r.Kind, r.From, r.To), nil
		}
		return "set " + r.String(), nil

	case "partition":
		a, b := kv["a"], kv["b"]
		if a == "" || b == "" {
			return "", fmt.Errorf("fault: partition needs a=<site> b=<site>")
		}
		heal, err := parseDurOpt(kv, "heal")
		if err != nil {
			return "", err
		}
		oneWay := flags["oneway"]
		in.Partition(protocol.SiteID(a), protocol.SiteID(b), oneWay, heal)
		desc := fmt.Sprintf("partitioned %s<->%s", a, b)
		if oneWay {
			desc = fmt.Sprintf("partitioned %s->%s", a, b)
		}
		if heal > 0 {
			desc += fmt.Sprintf(" heal=%s", heal)
		}
		return desc, nil

	case "heal":
		a, b := kv["a"], kv["b"]
		if a == "" && b == "" {
			in.HealAll()
			return "healed all partitions", nil
		}
		if a == "" || b == "" {
			return "", fmt.Errorf("fault: heal needs both a= and b= (or neither)")
		}
		in.HealLink(protocol.SiteID(a), protocol.SiteID(b))
		return fmt.Sprintf("healed %s<->%s", a, b), nil

	case "clear":
		in.Clear()
		return "cleared all faults", nil

	case "seed":
		n, err := strconv.ParseInt(kv["n"], 10, 64)
		if err != nil {
			return "", fmt.Errorf("fault: seed needs n=<int>: %v", err)
		}
		in.Reseed(n)
		return fmt.Sprintf("reseeded to %d", n), nil

	case "status":
		return strings.TrimRight(in.Status(), "\n"), nil
	}
	return "", fmt.Errorf("fault: unknown command %q", verb)
}

// ApplyPlan executes a whole plan: commands separated by ';' or
// newlines, blank entries and #-comments ignored.  The first error
// aborts and is returned with the offending command.
func (in *Injector) ApplyPlan(plan string) error {
	for _, line := range strings.FieldsFunc(plan, func(r rune) bool { return r == ';' || r == '\n' }) {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if _, err := in.Apply(line); err != nil {
			return fmt.Errorf("%w (in %q)", err, line)
		}
	}
	return nil
}

func parseArgs(fields []string) (kv map[string]string, flags map[string]bool, err error) {
	kv = map[string]string{}
	flags = map[string]bool{}
	for _, f := range fields {
		if k, v, ok := strings.Cut(f, "="); ok {
			if k == "" || v == "" {
				return nil, nil, fmt.Errorf("fault: malformed argument %q", f)
			}
			kv[strings.ToLower(k)] = v
		} else {
			flags[strings.ToLower(f)] = true
		}
	}
	return kv, flags, nil
}

func orWild(s string) string {
	if s == "" {
		return Wildcard
	}
	return s
}

func parseDur(kv map[string]string, key string) (time.Duration, error) {
	v, ok := kv[key]
	if !ok {
		return 0, fmt.Errorf("fault: missing %s=<dur>", key)
	}
	d, err := time.ParseDuration(v)
	if err != nil || d < 0 {
		return 0, fmt.Errorf("fault: bad %s=%q", key, v)
	}
	return d, nil
}

func parseDurOpt(kv map[string]string, key string) (time.Duration, error) {
	if _, ok := kv[key]; !ok {
		return 0, nil
	}
	return parseDur(kv, key)
}
