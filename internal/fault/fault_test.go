package fault

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/protocol"
	"repro/internal/transport"
)

// fakeTransport records sends; it stands in for Sim/TCP under the
// injector.
type fakeTransport struct {
	mu   sync.Mutex
	sent []protocol.Message
}

func (f *fakeTransport) Send(msg protocol.Message) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.sent = append(f.sent, msg)
}
func (f *fakeTransport) Register(protocol.SiteID, transport.Handler) {}
func (f *fakeTransport) SetDown(protocol.SiteID, bool)               {}
func (f *fakeTransport) IsDown(protocol.SiteID) bool                 { return false }
func (f *fakeTransport) Close() error                                { return nil }

func (f *fakeTransport) count() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.sent)
}

func msg(from, to protocol.SiteID) protocol.Message {
	return protocol.Message{Kind: protocol.MsgReady, TID: "t1", From: from, To: to}
}

func TestPassThroughByDefault(t *testing.T) {
	inner := &fakeTransport{}
	in := Wrap(inner, Config{Seed: 1})
	for i := 0; i < 50; i++ {
		in.Send(msg("A", "B"))
	}
	if got := inner.count(); got != 50 {
		t.Fatalf("sent %d of 50 with an empty plan", got)
	}
}

func TestDropRuleProbabilityAndScope(t *testing.T) {
	inner := &fakeTransport{}
	in := Wrap(inner, Config{Seed: 42})
	in.SetRule(Rule{Kind: KindDrop, From: "A", To: "B", P: 1})
	in.Send(msg("A", "B"))
	in.Send(msg("B", "A")) // reverse direction unaffected
	in.Send(msg("A", "C")) // different destination unaffected
	if got := inner.count(); got != 2 {
		t.Fatalf("delivered %d, want 2 (only A->B dropped)", got)
	}
	if in.Counts()[KindDrop] != 1 {
		t.Fatalf("drop count = %v", in.Counts())
	}
	// p=0 removes the rule again.
	in.SetRule(Rule{Kind: KindDrop, From: "A", To: "B", P: 0})
	in.Send(msg("A", "B"))
	if got := inner.count(); got != 3 {
		t.Fatalf("delivered %d after rule removal, want 3", got)
	}
}

func TestDropIsDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) int {
		inner := &fakeTransport{}
		in := Wrap(inner, Config{Seed: seed})
		in.SetRule(Rule{Kind: KindDrop, From: Wildcard, To: Wildcard, P: 0.5})
		for i := 0; i < 200; i++ {
			in.Send(msg("A", "B"))
		}
		return inner.count()
	}
	if a, b := run(7), run(7); a != b {
		t.Fatalf("same seed, different delivery counts: %d vs %d", a, b)
	}
	if a, b := run(7), run(8); a == b {
		// Not impossible, but with 200 coin flips it means the seed is
		// ignored.
		t.Logf("warning: seeds 7 and 8 delivered the same count %d", a)
	}
}

func TestDuplicateRule(t *testing.T) {
	inner := &fakeTransport{}
	in := Wrap(inner, Config{Seed: 1})
	in.SetRule(Rule{Kind: KindDup, P: 1})
	in.Send(msg("A", "B"))
	if got := inner.count(); got != 2 {
		t.Fatalf("delivered %d copies, want 2", got)
	}
}

func TestDelayRuleHoldsThenForwards(t *testing.T) {
	inner := &fakeTransport{}
	in := Wrap(inner, Config{Seed: 1})
	in.SetRule(Rule{Kind: KindDelay, P: 1, MinDelay: 20 * time.Millisecond, MaxDelay: 30 * time.Millisecond})
	in.Send(msg("A", "B"))
	if got := inner.count(); got != 0 {
		t.Fatalf("delivered %d immediately, want 0 (delayed)", got)
	}
	deadline := time.Now().Add(2 * time.Second)
	for inner.count() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := inner.count(); got != 1 {
		t.Fatalf("delivered %d after delay, want 1", got)
	}
}

func TestCloseCancelsDelayedSends(t *testing.T) {
	inner := &fakeTransport{}
	in := Wrap(inner, Config{Seed: 1})
	in.SetRule(Rule{Kind: KindDelay, P: 1, MinDelay: 50 * time.Millisecond, MaxDelay: 60 * time.Millisecond})
	in.Send(msg("A", "B"))
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(120 * time.Millisecond)
	if got := inner.count(); got != 0 {
		t.Fatalf("delayed message delivered after Close: %d", got)
	}
}

func TestPartitionAndHeal(t *testing.T) {
	inner := &fakeTransport{}
	in := Wrap(inner, Config{Seed: 1})
	in.Partition("A", "B", false, 0)
	in.Send(msg("A", "B"))
	in.Send(msg("B", "A"))
	in.Send(msg("A", "C"))
	if got := inner.count(); got != 1 {
		t.Fatalf("delivered %d, want 1 (A<->B cut)", got)
	}
	in.HealLink("A", "B")
	in.Send(msg("A", "B"))
	if got := inner.count(); got != 2 {
		t.Fatalf("delivered %d after heal, want 2", got)
	}
}

func TestOneWayPartition(t *testing.T) {
	inner := &fakeTransport{}
	in := Wrap(inner, Config{Seed: 1})
	in.Partition("A", "B", true, 0)
	in.Send(msg("A", "B"))
	in.Send(msg("B", "A"))
	if got := inner.count(); got != 1 {
		t.Fatalf("delivered %d, want 1 (only A->B cut)", got)
	}
}

func TestPartitionScheduledHeal(t *testing.T) {
	inner := &fakeTransport{}
	in := Wrap(inner, Config{Seed: 1})
	in.Partition("A", "B", false, 30*time.Millisecond)
	in.Send(msg("A", "B"))
	if got := inner.count(); got != 0 {
		t.Fatalf("delivered %d during partition, want 0", got)
	}
	time.Sleep(60 * time.Millisecond)
	in.Send(msg("A", "B"))
	if got := inner.count(); got != 1 {
		t.Fatalf("delivered %d after scheduled heal, want 1", got)
	}
}

func TestCorruptDegradesToDropWithoutTap(t *testing.T) {
	inner := &fakeTransport{} // no FrameTapper
	in := Wrap(inner, Config{Seed: 1})
	in.SetRule(Rule{Kind: KindCorrupt, P: 1})
	in.Send(msg("A", "B"))
	if got := inner.count(); got != 0 {
		t.Fatalf("delivered %d, want 0 (corrupt degrades to drop)", got)
	}
	if in.Counts()[KindCorrupt] != 1 {
		t.Fatalf("corrupt count = %v", in.Counts())
	}
}

func TestMetricsReported(t *testing.T) {
	reg := metrics.NewRegistry()
	inner := &fakeTransport{}
	in := Wrap(inner, Config{Seed: 1, Metrics: reg})
	in.SetRule(Rule{Kind: KindDrop, P: 1})
	in.Send(msg("A", "B"))
	if got := reg.Counter("transport.fault.injected", metrics.L("kind", "drop")).Value(); got != 1 {
		t.Fatalf("transport.fault.injected{kind=drop} = %d", got)
	}
	if got := reg.Counter("network.dropped", metrics.L("reason", "fault.drop")).Value(); got != 1 {
		t.Fatalf("network.dropped{reason=fault.drop} = %d", got)
	}
}

func TestApplyGrammar(t *testing.T) {
	inner := &fakeTransport{}
	in := Wrap(inner, Config{Seed: 1})
	cases := []string{
		"drop from=A to=B p=0.5",
		"dup p=0.1",
		"delay p=1 min=10ms max=20ms",
		"corrupt to=C p=0.25",
		"reset p=0.05",
		"partition a=A b=B heal=2s",
		"partition a=A b=C oneway",
		"heal a=A b=B",
		"heal",
		"seed n=99",
		"status",
		"clear",
	}
	for _, cmd := range cases {
		if _, err := in.Apply(cmd); err != nil {
			t.Errorf("Apply(%q): %v", cmd, err)
		}
	}
	bad := []string{
		"", "bogus p=1", "drop", "drop p=2", "drop p=x",
		"delay p=1", "delay p=1 min=20ms max=10ms",
		"partition a=A", "seed", "drop =x p=1",
	}
	for _, cmd := range bad {
		if _, err := in.Apply(cmd); err == nil {
			t.Errorf("Apply(%q) accepted, want error", cmd)
		}
	}
}

func TestApplyPlan(t *testing.T) {
	inner := &fakeTransport{}
	in := Wrap(inner, Config{Seed: 1})
	plan := "drop from=A p=1; # comment\n\n partition a=A b=B"
	if err := in.ApplyPlan(plan); err != nil {
		t.Fatal(err)
	}
	st := in.Status()
	if !strings.Contains(st, "rule drop from=A to=* p=1") {
		t.Errorf("status missing drop rule:\n%s", st)
	}
	if !strings.Contains(st, "partition A->B") || !strings.Contains(st, "partition B->A") {
		t.Errorf("status missing partition:\n%s", st)
	}
	if err := in.ApplyPlan("drop p=1; nonsense"); err == nil {
		t.Error("plan with a bad command accepted")
	}
}

func TestStatusEmpty(t *testing.T) {
	in := Wrap(&fakeTransport{}, Config{Seed: 1})
	if got := in.Status(); !strings.Contains(got, "no active faults") {
		t.Errorf("empty status = %q", got)
	}
}
