package transport

import (
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/protocol"
)

// newTCPsMetrics is newTCPs with a shared metrics registry attached.
func newTCPsMetrics(t *testing.T, reg *metrics.Registry, ids ...protocol.SiteID) map[protocol.SiteID]*TCP {
	t.Helper()
	lns := map[protocol.SiteID]net.Listener{}
	peers := map[protocol.SiteID]string{}
	for _, id := range ids {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		lns[id] = ln
		peers[id] = ln.Addr().String()
	}
	out := map[protocol.SiteID]*TCP{}
	for _, id := range ids {
		tr := NewTCPWithListener(TCPConfig{
			Self:       id,
			Peers:      peers,
			BackoffMin: 5 * time.Millisecond,
			BackoffMax: 50 * time.Millisecond,
			Seed:       42,
			Metrics:    reg,
		}, lns[id])
		out[id] = tr
		t.Cleanup(func() { tr.Close() })
	}
	return out
}

// TestTCPCorruptFrameKeepsConnection proves the CRC reject path: a
// frame corrupted on the wire (via the frame tap) bumps the
// decode-error metric on the receiver and does NOT kill the connection
// — the next clean frame arrives on the same stream.
func TestTCPCorruptFrameKeepsConnection(t *testing.T) {
	reg := metrics.NewRegistry()
	trs := newTCPsMetrics(t, reg, "A", "B")
	sender, receiver := trs["A"], trs["B"]

	var atB collector
	receiver.Register("B", atB.handle)

	// Corrupt exactly the first frame's payload.
	var corrupted atomic.Int64
	sender.SetFrameTap(func(to protocol.SiteID, frame []byte) []byte {
		if corrupted.CompareAndSwap(0, 1) {
			frame[len(frame)-1] ^= 0xFF // payload byte, length prefix intact
		}
		return frame
	})

	// The first two sends may coalesce into one batch frame; either way
	// the first frame (always carrying tid(1)) is corrupted and every
	// message riding it is lost whole.  The later clean frame arrives on
	// the SAME connection (no reconnect — the first dial is not counted
	// as one).
	sender.Send(protocol.Message{Kind: protocol.MsgReady, TID: tid(1), From: "A", To: "B"})
	sender.Send(protocol.Message{Kind: protocol.MsgReady, TID: tid(2), From: "A", To: "B"})
	time.Sleep(50 * time.Millisecond) // let the corrupted frame flush
	sender.Send(protocol.Message{Kind: protocol.MsgReady, TID: tid(3), From: "A", To: "B"})

	got := atB.waitFor(t, 1, 5*time.Second)
	for _, m := range got {
		if m.TID == tid(1) {
			t.Fatal("tid(1) delivered despite riding the corrupted frame")
		}
	}
	if last := got[len(got)-1].TID; last != tid(2) && last != tid(3) {
		t.Fatalf("delivered %s, want a clean later frame", last)
	}
	st := receiver.Stats()
	if st.DecodeErrors != 1 {
		t.Fatalf("DecodeErrors = %d, want 1", st.DecodeErrors)
	}
	if got := reg.Counter("transport.decode.errors").Value(); got != 1 {
		t.Fatalf("transport.decode.errors = %d, want 1", got)
	}
	if st := sender.Stats(); st.Reconnects != 0 {
		t.Fatalf("sender reconnected (%d): corrupt frame killed the connection", st.Reconnects)
	}
}

// TestTCPQueueOverflowDropsOldest: when the per-peer queue is full the
// OLDEST frame is evicted (counted in transport.queue.dropped) and the
// newest is kept.
func TestTCPQueueOverflowDropsOldest(t *testing.T) {
	reg := metrics.NewRegistry()
	pair := newTCPsMetrics(t, reg, "C", "D")
	src := pair["C"]
	pair["D"].Close() // D's listener is gone: C's writer can never dial

	depth := src.cfg.QueueDepth
	total := depth + 5
	for i := 0; i < total; i++ {
		src.Send(protocol.Message{Kind: protocol.MsgReady, TID: tid(i), From: "C", To: "D"})
	}
	// The writer may have consumed a frame or two before the queue
	// filled, so assert the invariants rather than exact counts: some
	// evictions happened, and the newest frame is still queued (the
	// queue holds the most recent window of traffic).
	st := src.Stats()
	if st.QueueDropped == 0 {
		t.Fatalf("QueueDropped = 0 after %d sends into a depth-%d queue", total, depth)
	}
	if got := reg.Counter("transport.queue.dropped", metrics.L("peer", "D")).Value(); got != st.QueueDropped {
		t.Fatalf("transport.queue.dropped = %d, stats say %d", got, st.QueueDropped)
	}
	// Drain the queue and verify the newest message survived eviction.
	found := false
	for drained := false; !drained; {
		select {
		case m := <-src.peers["D"].out:
			if m.TID == tid(total-1) {
				found = true
			}
		default:
			drained = true
		}
	}
	if !found {
		t.Fatal("newest frame was evicted; drop-oldest policy not in effect")
	}
}

// TestTCPResetPeerForcesReconnect: severing the live connection makes
// the writer redial, and traffic resumes.
func TestTCPResetPeerForcesReconnect(t *testing.T) {
	trs := newTCPs(t, "A", "B")
	var atB collector
	trs["B"].Register("B", atB.handle)

	trs["A"].Send(protocol.Message{Kind: protocol.MsgReady, TID: tid(1), From: "A", To: "B"})
	atB.waitFor(t, 1, 5*time.Second)

	if !trs["A"].ResetPeer("B") {
		t.Fatal("ResetPeer found no live connection")
	}
	if trs["A"].ResetPeer("nosuch") {
		t.Fatal("ResetPeer invented a peer")
	}

	// Sends keep flowing: the first may be lost to the dead socket, but
	// the writer reconnects and later frames arrive.
	deadline := time.Now().Add(5 * time.Second)
	for i := 2; atB.count() < 2 && time.Now().Before(deadline); i++ {
		trs["A"].Send(protocol.Message{Kind: protocol.MsgReady, TID: tid(i), From: "A", To: "B"})
		time.Sleep(10 * time.Millisecond)
	}
	if atB.count() < 2 {
		t.Fatal("no delivery after ResetPeer; writer did not reconnect")
	}
}
