// Package transport abstracts the message fabric a cluster site sends
// and receives protocol messages through.  Two implementations exist:
//
//   - Sim adapts the deterministic in-process simulated network
//     (internal/network) — the default for tests, benchmarks and the
//     single-process cluster runtime;
//   - TCP carries messages between real OS processes over loopback or a
//     LAN, using the internal/wire binary codec, so a cluster can run as
//     N independent polynode processes (cmd/polynode).
//
// Both deliver with lost-datagram semantics: Send never blocks on a slow
// or dead peer, and a message that cannot be delivered is dropped and
// counted.  The commit protocol is built to tolerate exactly that (§3.3
// retries outcome propagation until acknowledged), which is what lets
// one protocol core drive both fabrics unchanged.
package transport

import (
	"repro/internal/network"
	"repro/internal/protocol"
)

// Handler receives delivered messages at a site.  Alias of
// network.Handler: the same handler functions register against either
// fabric.
type Handler = network.Handler

// BatchHandler receives every message of one decoded frame addressed to
// the same site in a single call.  Ownership of the slice transfers to
// the handler: the transport decodes each frame into fresh storage and
// never touches the messages again.
type BatchHandler func([]protocol.Message)

// BatchReceiver is implemented by transports that can hand a receiver
// whole same-destination frames (see TCP.RegisterBatch).  Receivers
// with their own serialization point use it to pay one scheduling event
// per frame instead of per message.
type BatchReceiver interface {
	RegisterBatch(site protocol.SiteID, h BatchHandler)
}

// Transport is the message fabric interface the cluster runtime sends
// through.  Implementations are safe for concurrent use.
type Transport interface {
	// Send transmits msg toward msg.To.  It never blocks on the
	// destination; undeliverable messages are dropped (and counted).
	Send(msg protocol.Message)
	// Register installs the delivery handler for a site.  Re-registering
	// replaces the handler (a restarted site re-registers).
	Register(site protocol.SiteID, h Handler)
	// SetDown marks a site crashed (true) or recovered (false) from this
	// fabric's point of view: messages to and from a down site are
	// dropped.  For TCP this only applies to the local site — remote
	// "down" is a real dead process.
	SetDown(site protocol.SiteID, down bool)
	// IsDown reports a site's down state as far as this fabric knows.
	IsDown(site protocol.SiteID) bool
	// Close shuts the fabric down gracefully: stops accepting, closes
	// connections, and waits for I/O goroutines to exit.
	Close() error
}

// Sim adapts the simulated network to the Transport interface.
// *network.Network already has Send/Register/SetDown/IsDown with
// matching signatures; only Close is added (the simulated fabric holds
// no resources).
type Sim struct {
	*network.Network
}

// NewSim wraps a simulated network as a Transport.
func NewSim(n *network.Network) Sim { return Sim{Network: n} }

// Close implements Transport; the simulated network has nothing to
// release.
func (Sim) Close() error { return nil }

var _ Transport = Sim{}
