package transport

import (
	"fmt"
	"testing"

	"repro/internal/protocol"
	"repro/internal/txn"
)

// newQueueOnlyTCP builds a TCP with one peer and NO goroutines: nothing
// drains the queues, so Send's routing and same-class eviction can be
// observed deterministically.
func newQueueOnlyTCP(depth int) (*TCP, *peer) {
	p := &peer{
		id: "B", addr: "127.0.0.1:1",
		out:  make(chan protocol.Message, depth),
		crit: make(chan protocol.Message, depth),
	}
	t := &TCP{
		cfg:      TCPConfig{Self: "A", QueueDepth: depth},
		peers:    map[protocol.SiteID]*peer{"B": p},
		handlers: map[protocol.SiteID]Handler{},
		bhandler: map[protocol.SiteID]BatchHandler{},
		down:     map[protocol.SiteID]bool{},
		quit:     make(chan struct{}),
	}
	t.stats.ByPeer = map[protocol.SiteID]PeerStats{}
	return t, p
}

func drainQueue(ch chan protocol.Message) []protocol.Message {
	var out []protocol.Message
	for {
		select {
		case m := <-ch:
			out = append(out, m)
		default:
			return out
		}
	}
}

func TestCriticalClassification(t *testing.T) {
	want := map[protocol.MsgKind]bool{
		protocol.MsgComplete:    true,
		protocol.MsgAbort:       true,
		protocol.MsgOutcomeReq:  true,
		protocol.MsgOutcomeInfo: true,
		protocol.MsgOutcomeAck:  true,
		protocol.MsgReadReq:     false,
		protocol.MsgReadRep:     false,
		protocol.MsgPrepare:     false,
		protocol.MsgReady:       false,
		protocol.MsgRefuse:      false,
		protocol.MsgHeartbeat:   false,
	}
	for k, w := range want {
		if got := critical(k); got != w {
			t.Errorf("critical(%v) = %v, want %v", k, got, w)
		}
	}
}

// TestPriorityQueueEvictionIsPerClass: a bulk flood fills and churns the
// bulk queue without ever displacing queued decision traffic, and each
// class keeps its NEWEST window when over capacity.
func TestPriorityQueueEvictionIsPerClass(t *testing.T) {
	const depth = 4
	tr, p := newQueueOnlyTCP(depth)

	// 7 bulk prepares into a depth-4 queue: 3 oldest evicted.
	for i := 0; i < 7; i++ {
		tr.Send(protocol.Message{
			Kind: protocol.MsgPrepare, TID: bulkTID(i), From: "A", To: "B",
		})
	}
	// 5 critical completes into the other queue: 1 oldest evicted.
	for i := 0; i < 5; i++ {
		tr.Send(protocol.Message{
			Kind: protocol.MsgComplete, TID: critTID(i), From: "A", To: "B",
		})
	}

	st := tr.Stats()
	if st.QueueDropped != 4 {
		t.Errorf("QueueDropped = %d, want 4 (3 bulk + 1 crit)", st.QueueDropped)
	}
	if st.CritDropped != 1 {
		t.Errorf("CritDropped = %d, want 1", st.CritDropped)
	}

	bulk := drainQueue(p.out)
	if len(bulk) != depth {
		t.Fatalf("bulk queue holds %d, want %d", len(bulk), depth)
	}
	for i, m := range bulk {
		if m.Kind != protocol.MsgPrepare || m.TID != bulkTID(i+3) {
			t.Errorf("bulk[%d] = %v %s, want prepare %s (newest window)", i, m.Kind, m.TID, bulkTID(i+3))
		}
	}
	crit := drainQueue(p.crit)
	if len(crit) != depth {
		t.Fatalf("crit queue holds %d, want %d", len(crit), depth)
	}
	for i, m := range crit {
		if m.Kind != protocol.MsgComplete || m.TID != critTID(i+1) {
			t.Errorf("crit[%d] = %v %s, want complete %s (bulk flood must not evict)", i, m.Kind, m.TID, critTID(i+1))
		}
	}
}

func bulkTID(i int) txn.ID { return txn.ID(fmt.Sprintf("bulk-%02d", i)) }
func critTID(i int) txn.ID { return txn.ID(fmt.Sprintf("crit-%02d", i)) }
