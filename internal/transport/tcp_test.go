package transport

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/condition"
	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/polyvalue"
	"repro/internal/protocol"
	"repro/internal/txn"
	"repro/internal/value"
	"repro/internal/vclock"
)

// newTCPs builds one TCP transport per site on loopback :0 ports, all
// knowing each other's addresses.
func newTCPs(t *testing.T, ids ...protocol.SiteID) map[protocol.SiteID]*TCP {
	t.Helper()
	lns := map[protocol.SiteID]net.Listener{}
	peers := map[protocol.SiteID]string{}
	for _, id := range ids {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		lns[id] = ln
		peers[id] = ln.Addr().String()
	}
	out := map[protocol.SiteID]*TCP{}
	for _, id := range ids {
		tr := NewTCPWithListener(TCPConfig{
			Self:       id,
			Peers:      peers,
			BackoffMin: 5 * time.Millisecond,
			BackoffMax: 50 * time.Millisecond,
			Seed:       42,
		}, lns[id])
		out[id] = tr
		t.Cleanup(func() { tr.Close() })
	}
	return out
}

// collector is a thread-safe message sink.
type collector struct {
	mu   sync.Mutex
	msgs []protocol.Message
}

func (c *collector) handle(msg protocol.Message) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.msgs = append(c.msgs, msg)
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.msgs)
}

func (c *collector) waitFor(t *testing.T, n int, d time.Duration) []protocol.Message {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if c.count() >= n {
			c.mu.Lock()
			defer c.mu.Unlock()
			return append([]protocol.Message(nil), c.msgs...)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %d messages (have %d)", n, c.count())
	return nil
}

func tid(i int) txn.ID { return txn.ID(fmt.Sprintf("t%04d", i)) }

func samplePoly(t *testing.T) polyvalue.Poly {
	t.Helper()
	return polyvalue.Uncertain(condition.TID("t1"),
		polyvalue.Simple(value.Int(50)),
		polyvalue.Simple(value.Int(100)))
}

func TestTCPRoundTrip(t *testing.T) {
	trs := newTCPs(t, "A", "B")
	var atB collector
	trs["B"].Register("B", atB.handle)

	msg := protocol.Message{
		Kind: protocol.MsgReadRep,
		TID:  "txn-7",
		From: "A", To: "B",
		Items:  []string{"acct1", "acct2"},
		Values: map[string]polyvalue.Poly{"acct1": samplePoly(t)},
	}
	trs["A"].Send(msg)
	got := atB.waitFor(t, 1, 5*time.Second)[0]
	if got.Kind != msg.Kind || got.TID != msg.TID || got.From != "A" || got.To != "B" {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Items) != 2 || got.Items[0] != "acct1" {
		t.Fatalf("items mismatch: %v", got.Items)
	}
	if !got.Values["acct1"].Equal(msg.Values["acct1"]) {
		t.Fatalf("poly mismatch:\n got %v\nwant %v", got.Values["acct1"], msg.Values["acct1"])
	}

	// And the reverse direction over a separate connection.
	var atA collector
	trs["A"].Register("A", atA.handle)
	trs["B"].Send(protocol.Message{Kind: protocol.MsgOutcomeAck, TID: "txn-7", From: "B", To: "A"})
	if got := atA.waitFor(t, 1, 5*time.Second)[0]; got.Kind != protocol.MsgOutcomeAck {
		t.Fatalf("kind = %v, want MsgOutcomeAck", got.Kind)
	}
}

func TestTCPSelfLoopback(t *testing.T) {
	trs := newTCPs(t, "A", "B")
	var atA collector
	trs["A"].Register("A", atA.handle)
	for i := 0; i < 5; i++ {
		trs["A"].Send(protocol.Message{Kind: protocol.MsgReadReq, TID: tid(i), From: "A", To: "A"})
	}
	msgs := atA.waitFor(t, 5, 5*time.Second)
	for i, m := range msgs {
		if m.TID != tid(i) {
			t.Fatalf("self message %d out of order: %s", i, m.TID)
		}
	}
}

func TestTCPOrderPreservedPerPeer(t *testing.T) {
	trs := newTCPs(t, "A", "B")
	var atB collector
	trs["B"].Register("B", atB.handle)
	const n = 200
	for i := 0; i < n; i++ {
		trs["A"].Send(protocol.Message{Kind: protocol.MsgReadReq, TID: tid(i), From: "A", To: "B"})
		// Pace sends so the bounded queue never backpressure-drops;
		// this test is about ordering, not loss.
		if i%50 == 49 {
			time.Sleep(time.Millisecond)
		}
	}
	msgs := atB.waitFor(t, n, 10*time.Second)
	for i, m := range msgs {
		if m.TID != tid(i) {
			t.Fatalf("message %d has TID %s, want %s", i, m.TID, tid(i))
		}
	}
}

func TestTCPSetDownDrops(t *testing.T) {
	trs := newTCPs(t, "A", "B")
	var atB collector
	trs["B"].Register("B", atB.handle)

	// Sender-side down: A refuses to send to B.
	trs["A"].SetDown("B", true)
	trs["A"].Send(protocol.Message{Kind: protocol.MsgOutcomeAck, TID: "t", From: "A", To: "B"})
	if !trs["A"].IsDown("B") {
		t.Fatal("IsDown(B) = false after SetDown")
	}
	st := trs["A"].Stats()
	if st.Dropped != 1 {
		t.Fatalf("dropped = %d, want 1", st.Dropped)
	}
	trs["A"].SetDown("B", false)

	// Receiver-side down: B drops on delivery.
	trs["B"].SetDown("B", true)
	trs["A"].Send(protocol.Message{Kind: protocol.MsgOutcomeAck, TID: "t", From: "A", To: "B"})
	time.Sleep(50 * time.Millisecond)
	if n := atB.count(); n != 0 {
		t.Fatalf("down receiver got %d messages", n)
	}
	trs["B"].SetDown("B", false)
	trs["A"].Send(protocol.Message{Kind: protocol.MsgOutcomeAck, TID: "t", From: "A", To: "B"})
	atB.waitFor(t, 1, 5*time.Second)
}

// TestTCPReconnect kills the receiving transport, watches the sender
// drop messages through the backoff window, restarts a transport on the
// same address, and verifies traffic resumes and the reconnect counter
// advances.
func TestTCPReconnect(t *testing.T) {
	reg := metrics.NewRegistry()
	lnA, _ := net.Listen("tcp", "127.0.0.1:0")
	lnB, _ := net.Listen("tcp", "127.0.0.1:0")
	peers := map[protocol.SiteID]string{"A": lnA.Addr().String(), "B": lnB.Addr().String()}
	a := NewTCPWithListener(TCPConfig{
		Self: "A", Peers: peers,
		BackoffMin: time.Millisecond, BackoffMax: 20 * time.Millisecond,
		WriteTimeout: 200 * time.Millisecond, Seed: 1, Metrics: reg,
	}, lnA)
	defer a.Close()
	b1 := NewTCPWithListener(TCPConfig{Self: "B", Peers: peers, Seed: 2}, lnB)
	var atB1 collector
	b1.Register("B", atB1.handle)

	a.Send(protocol.Message{Kind: protocol.MsgOutcomeAck, TID: "warm", From: "A", To: "B"})
	atB1.waitFor(t, 1, 5*time.Second)

	if err := b1.Close(); err != nil {
		t.Fatalf("close b1: %v", err)
	}

	// Drive sends until A notices the dead link (broken write or failed
	// dial) and records at least one connection error.
	deadline := time.Now().Add(5 * time.Second)
	for a.Stats().ConnErrors == 0 && time.Now().Before(deadline) {
		a.Send(protocol.Message{Kind: protocol.MsgOutcomeAck, TID: "probe", From: "A", To: "B"})
		time.Sleep(5 * time.Millisecond)
	}
	if a.Stats().ConnErrors == 0 {
		t.Fatal("sender never observed the dead peer")
	}

	// Restart B on the same address; A must reconnect and deliver.
	lnB2, err := net.Listen("tcp", peers["B"])
	if err != nil {
		t.Fatalf("rebind %s: %v", peers["B"], err)
	}
	b2 := NewTCPWithListener(TCPConfig{Self: "B", Peers: peers, Seed: 3}, lnB2)
	defer b2.Close()
	var atB2 collector
	b2.Register("B", atB2.handle)

	deadline = time.Now().Add(10 * time.Second)
	for atB2.count() == 0 && time.Now().Before(deadline) {
		a.Send(protocol.Message{Kind: protocol.MsgComplete, TID: "resume", From: "A", To: "B"})
		time.Sleep(10 * time.Millisecond)
	}
	if atB2.count() == 0 {
		t.Fatal("no delivery after peer restart")
	}
	st := a.Stats()
	if st.Reconnects == 0 {
		t.Errorf("reconnects = 0 after peer restart; stats:\n%s", st.Format())
	}
	if st.ByPeer["B"].Reconnects == 0 {
		t.Errorf("per-peer reconnects = 0; stats:\n%s", st.Format())
	}
	if reg.Counter("transport.reconnects", metrics.L("peer", "B")).Value() == 0 {
		t.Error("transport.reconnects metric not incremented")
	}
}

// TestTCPBatchCoalescing bursts traffic at one peer and verifies the
// writer coalesces it: every message arrives, in order, in fewer frames
// than messages, with the batch metrics recorded.
func TestTCPBatchCoalescing(t *testing.T) {
	reg := metrics.NewRegistry()
	lnA, _ := net.Listen("tcp", "127.0.0.1:0")
	lnB, _ := net.Listen("tcp", "127.0.0.1:0")
	peers := map[protocol.SiteID]string{"A": lnA.Addr().String(), "B": lnB.Addr().String()}
	a := NewTCPWithListener(TCPConfig{
		Self: "A", Peers: peers, Seed: 1, Metrics: reg,
		BatchMax: 16, BatchDelay: 5 * time.Millisecond,
	}, lnA)
	defer a.Close()
	b := NewTCPWithListener(TCPConfig{Self: "B", Peers: peers, Seed: 2}, lnB)
	defer b.Close()
	var atB collector
	b.Register("B", atB.handle)

	const n = 50
	for i := 0; i < n; i++ {
		a.Send(protocol.Message{Kind: protocol.MsgReadReq, TID: tid(i), From: "A", To: "B"})
	}
	msgs := atB.waitFor(t, n, 10*time.Second)
	for i, m := range msgs {
		if m.TID != tid(i) {
			t.Fatalf("message %d has TID %s, want %s", i, m.TID, tid(i))
		}
	}
	// The first write dials first, so the burst queues behind it and
	// must coalesce into far fewer frames than messages.
	if frames := a.Stats().ByPeer["B"].Sent; frames >= n {
		t.Errorf("sent %d frames for %d messages — no coalescing", frames, n)
	}
	h := reg.Histogram("transport.batch.size")
	if h.Count() == 0 || h.Max() <= 1 {
		t.Errorf("batch.size histogram: count=%d max=%v, want multi-message batches", h.Count(), h.Max())
	}
	var flushes int64
	for _, reason := range []string{"count", "size", "delay", "drain"} {
		flushes += reg.Counter("transport.batch.flushes", metrics.L("reason", reason)).Value()
	}
	if flushes == 0 {
		t.Error("no transport.batch.flushes recorded")
	}
}

// TestTCPBatchingDisabled: BatchMax=1 restores the classic one frame
// per message path.
func TestTCPBatchingDisabled(t *testing.T) {
	lnA, _ := net.Listen("tcp", "127.0.0.1:0")
	lnB, _ := net.Listen("tcp", "127.0.0.1:0")
	peers := map[protocol.SiteID]string{"A": lnA.Addr().String(), "B": lnB.Addr().String()}
	a := NewTCPWithListener(TCPConfig{Self: "A", Peers: peers, Seed: 1, BatchMax: 1}, lnA)
	defer a.Close()
	b := NewTCPWithListener(TCPConfig{Self: "B", Peers: peers, Seed: 2}, lnB)
	defer b.Close()
	var atB collector
	b.Register("B", atB.handle)

	const n = 20
	for i := 0; i < n; i++ {
		a.Send(protocol.Message{Kind: protocol.MsgReadReq, TID: tid(i), From: "A", To: "B"})
		time.Sleep(time.Millisecond)
	}
	atB.waitFor(t, n, 10*time.Second)
	if frames := a.Stats().ByPeer["B"].Sent; frames != n {
		t.Errorf("sent %d frames for %d messages with batching disabled", frames, n)
	}
}

func TestTCPStatsFormatSorted(t *testing.T) {
	st := TCPStats{
		Sent: 3, Delivered: 2, Dropped: 1,
		ByPeer: map[protocol.SiteID]PeerStats{
			"C": {Sent: 1}, "A": {Sent: 2}, "B": {Dropped: 1},
		},
	}
	out := st.Format()
	ia, ib, ic := strings.Index(out, "site=A"), strings.Index(out, "site=B"), strings.Index(out, "site=C")
	if ia < 0 || ib < 0 || ic < 0 || !(ia < ib && ib < ic) {
		t.Fatalf("peers not in sorted order:\n%s", out)
	}
	for i := 0; i < 10; i++ {
		if st.Format() != out {
			t.Fatal("Format not deterministic")
		}
	}
}

func TestTCPCloseIsIdempotentAndQuiet(t *testing.T) {
	trs := newTCPs(t, "A", "B")
	var atB collector
	trs["B"].Register("B", atB.handle)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			trs["A"].Send(protocol.Message{Kind: protocol.MsgOutcomeAck, TID: tid(i), From: "A", To: "B"})
		}
	}()
	trs["A"].Close()
	trs["A"].Close() // idempotent
	<-done
	// Sends after close are silent no-ops.
	trs["A"].Send(protocol.Message{Kind: protocol.MsgOutcomeAck, TID: "late", From: "A", To: "B"})
}

// TestSimTransport checks the simulated-network adapter satisfies the
// same contract over the deterministic scheduler.
func TestSimTransport(t *testing.T) {
	sched := vclock.NewScheduler()
	sim := NewSim(network.New(sched, network.Config{Seed: 7}))
	var fab Transport = sim

	var atB collector
	fab.Register("B", atB.handle)
	fab.Send(protocol.Message{Kind: protocol.MsgReadRep, TID: "t", From: "A", To: "B",
		Values: map[string]polyvalue.Poly{"x": samplePoly(t)}})
	sched.Drain(0)
	if atB.count() != 1 {
		t.Fatalf("sim delivered %d, want 1", atB.count())
	}
	fab.SetDown("B", true)
	if !fab.IsDown("B") {
		t.Fatal("IsDown after SetDown = false")
	}
	fab.Send(protocol.Message{Kind: protocol.MsgOutcomeAck, TID: "t", From: "A", To: "B"})
	sched.Drain(0)
	if atB.count() != 1 {
		t.Fatal("message delivered to down site")
	}
	if err := fab.Close(); err != nil {
		t.Fatalf("sim Close: %v", err)
	}
}
