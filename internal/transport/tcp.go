package transport

import (
	"bufio"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"net"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/protocol"
	"repro/internal/wire"
)

// TCPConfig parameterizes a TCP transport for one site.
type TCPConfig struct {
	// Self is the site this process hosts.
	Self protocol.SiteID
	// Peers maps every cluster site (including Self) to its listen
	// address.
	Peers map[protocol.SiteID]string
	// Listen overrides the address to listen on (default Peers[Self]);
	// useful to bind "0.0.0.0:port" while peers dial a specific host.
	Listen string
	// DialTimeout bounds one connection attempt (default 1s).
	DialTimeout time.Duration
	// WriteTimeout bounds one frame write; a peer that stops reading
	// drops the connection rather than wedging the writer (default 2s).
	WriteTimeout time.Duration
	// BackoffMin/BackoffMax bound the exponential redial backoff
	// (defaults 50ms and 2s); each step gets ±50% jitter.
	BackoffMin, BackoffMax time.Duration
	// QueueDepth is the per-peer outgoing buffer; a full queue drops
	// (lost-datagram semantics, default 256).
	QueueDepth int
	// MaxFrame caps accepted payload size (default wire.MaxFrame).
	MaxFrame int
	// BatchMax caps how many queued messages one outgoing frame may
	// coalesce (default 32; 1 disables coalescing — every message gets
	// its own classic frame).
	BatchMax int
	// BatchBytes flushes a batch once its encoded message payload
	// reaches this many bytes (default 64 KiB).
	BatchBytes int
	// BatchDelay bounds how long a writer lingers for more traffic when
	// the queue drains with a partial batch (default 100µs; negative
	// means no lingering — flush the moment the queue is empty).
	BatchDelay time.Duration
	// Seed drives backoff jitter (runs with equal seeds draw the same
	// jitter sequence).
	Seed int64
	// Metrics, when set, receives network.sent/delivered/dropped (same
	// series as the simulated fabric) plus transport.reconnects and
	// transport.conn.errors, labelled by peer.
	Metrics *metrics.Registry
	// Logf, when set, receives connection lifecycle diagnostics.
	Logf func(format string, args ...any)
}

func (c *TCPConfig) fillDefaults() {
	if c.DialTimeout <= 0 {
		c.DialTimeout = time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 2 * time.Second
	}
	if c.BackoffMin <= 0 {
		c.BackoffMin = 50 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 2 * time.Second
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = wire.MaxFrame
	}
	if c.BatchMax <= 0 {
		c.BatchMax = 32
	}
	if c.BatchMax > wire.MaxBatch {
		c.BatchMax = wire.MaxBatch
	}
	if c.BatchBytes <= 0 {
		c.BatchBytes = 64 << 10
	}
	if c.BatchDelay == 0 {
		c.BatchDelay = 100 * time.Microsecond
	}
	if c.Listen == "" {
		c.Listen = c.Peers[c.Self]
	}
}

// PeerStats counts one peer link's activity.
type PeerStats struct {
	// Sent counts frames written to the peer (one frame may carry a
	// whole batch of messages); Dropped counts messages abandoned
	// (dead link, backoff window, full queue).
	Sent, Dropped int64
	// Reconnects counts successful dials after a previous connection
	// existed; ConnErrors counts failed dials and broken writes.
	Reconnects, ConnErrors int64
}

// TCPStats snapshots a TCP transport's counters.
type TCPStats struct {
	Sent, Delivered, Dropped int64
	Reconnects, ConnErrors   int64
	// QueueDropped counts frames evicted from a full per-peer queue
	// (oldest-first, within the frame's own priority class);
	// CritDropped is the subset evicted from the critical
	// (decision/outcome) queue.  DecodeErrors counts inbound frames
	// rejected by the wire codec (CRC mismatch, bad version, malformed
	// payload) without killing the connection.
	QueueDropped, CritDropped, DecodeErrors int64
	ByPeer                                  map[protocol.SiteID]PeerStats
}

// Format renders the counters as stable text, iterating the per-peer
// breakdown in sorted site order so same-run exports are byte-identical.
func (s TCPStats) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sent=%d delivered=%d dropped=%d reconnects=%d conn_errors=%d queue_dropped=%d decode_errors=%d\n",
		s.Sent, s.Delivered, s.Dropped, s.Reconnects, s.ConnErrors, s.QueueDropped, s.DecodeErrors)
	peers := make([]protocol.SiteID, 0, len(s.ByPeer))
	for id := range s.ByPeer {
		peers = append(peers, id)
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i] < peers[j] })
	for _, id := range peers {
		ps := s.ByPeer[id]
		fmt.Fprintf(&b, "peer{site=%s} sent=%d dropped=%d reconnects=%d conn_errors=%d\n",
			id, ps.Sent, ps.Dropped, ps.Reconnects, ps.ConnErrors)
	}
	return b.String()
}

// peer is one outgoing link.  conn and backoff state are owned by the
// writer goroutine; out and the live mirror are the only
// cross-goroutine surfaces.
type peer struct {
	id   protocol.SiteID
	addr string
	out  chan protocol.Message
	// crit is the priority queue for decision and outcome-propagation
	// traffic (complete/abort/outcome-req/info/ack).  Those messages end
	// uncertainty windows, so bulk traffic must never evict them; each
	// class evicts only its own oldest when full, and the writer drains
	// crit first.
	crit chan protocol.Message

	conn     net.Conn
	buf      []byte
	batch    wire.BatchBuilder
	rng      *rand.Rand
	backoff  time.Duration
	nextDial time.Time
	everUp   bool

	// Cached per-peer metric handles (nil without a registry).
	reconnects, connErrors, queueDropped *metrics.Counter

	// live mirrors conn for ResetPeer, which runs outside the writer
	// goroutine and may only Close (never use) the connection.
	liveMu sync.Mutex
	live   net.Conn
}

func (p *peer) setLive(c net.Conn) {
	p.liveMu.Lock()
	p.live = c
	p.liveMu.Unlock()
}

// msgKindSlots bounds the per-kind counter arrays in tcpSeries; kinds
// outside the range fall back to a registry lookup.
const msgKindSlots = 16

// tcpSeries caches the transport's hot-path metric handles.  Per-message
// accounting runs on every send and delivery, so it must be a pointer
// increment — not a registry lookup (label normalization + map probe)
// per event.  All fields are nil/empty when no registry is attached.
type tcpSeries struct {
	sent      [msgKindSlots]*metrics.Counter // network.sent{type}
	delivered [msgKindSlots]*metrics.Counter // network.delivered{type}
	dropped   map[string]*metrics.Counter    // network.dropped{reason}
	flushes   map[string]*metrics.Counter    // transport.batch.flushes{reason}
	batchSize *metrics.Histogram             // transport.batch.size
	decodeErr *metrics.Counter               // transport.decode.errors
}

func newTCPSeries(reg *metrics.Registry) tcpSeries {
	var s tcpSeries
	if reg == nil {
		return s
	}
	for k := protocol.MsgReadReq; int(k) < msgKindSlots; k++ {
		s.sent[k] = reg.Counter("network.sent", metrics.L("type", k.String()))
		s.delivered[k] = reg.Counter("network.delivered", metrics.L("type", k.String()))
	}
	s.dropped = map[string]*metrics.Counter{}
	for _, r := range []string{"down", "backpressure", "unknown", "queue", "conn"} {
		s.dropped[r] = reg.Counter("network.dropped", metrics.L("reason", r))
	}
	s.flushes = map[string]*metrics.Counter{}
	for _, r := range batchFlushReasons {
		s.flushes[r] = reg.Counter("transport.batch.flushes", metrics.L("reason", r))
	}
	s.batchSize = reg.Histogram("transport.batch.size")
	s.decodeErr = reg.Counter("transport.decode.errors")
	return s
}

// TCP is the real-socket Transport: one listener for inbound frames, one
// writer goroutine (with its own connection and reconnect/backoff state)
// per peer for outbound.
type TCP struct {
	cfg    TCPConfig
	ln     net.Listener
	peers  map[protocol.SiteID]*peer // fixed at construction
	lo     chan protocol.Message     // self-addressed loopback
	series tcpSeries

	mu       sync.Mutex
	handlers map[protocol.SiteID]Handler
	bhandler map[protocol.SiteID]BatchHandler
	down     map[protocol.SiteID]bool
	conns    map[net.Conn]bool // accepted connections, for Close
	closed   bool
	stats    TCPStats
	tap      func(to protocol.SiteID, frame []byte) []byte

	wg   sync.WaitGroup
	quit chan struct{}
}

// NewTCP opens the listener and starts the per-peer writers.  The
// returned transport delivers nothing until Register installs a handler.
func NewTCP(cfg TCPConfig) (*TCP, error) {
	cfg.fillDefaults()
	if cfg.Self == "" {
		return nil, fmt.Errorf("transport: TCPConfig.Self is required")
	}
	if cfg.Listen == "" {
		return nil, fmt.Errorf("transport: no listen address for site %s", cfg.Self)
	}
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", cfg.Listen, err)
	}
	return newTCPWithListener(cfg, ln), nil
}

// NewTCPWithListener builds a transport over an already-bound listener
// (tests bind ":0" first and exchange the resulting addresses).
func NewTCPWithListener(cfg TCPConfig, ln net.Listener) *TCP {
	cfg.fillDefaults()
	return newTCPWithListener(cfg, ln)
}

func newTCPWithListener(cfg TCPConfig, ln net.Listener) *TCP {
	t := &TCP{
		cfg:      cfg,
		ln:       ln,
		peers:    map[protocol.SiteID]*peer{},
		lo:       make(chan protocol.Message, cfg.QueueDepth),
		handlers: map[protocol.SiteID]Handler{},
		bhandler: map[protocol.SiteID]BatchHandler{},
		down:     map[protocol.SiteID]bool{},
		conns:    map[net.Conn]bool{},
		quit:     make(chan struct{}),
	}
	t.series = newTCPSeries(cfg.Metrics)
	t.stats.ByPeer = map[protocol.SiteID]PeerStats{}
	for id, addr := range cfg.Peers {
		if id == cfg.Self {
			continue
		}
		h := fnv.New64a()
		h.Write([]byte(id))
		p := &peer{
			id: id, addr: addr,
			out:     make(chan protocol.Message, cfg.QueueDepth),
			crit:    make(chan protocol.Message, cfg.QueueDepth),
			rng:     rand.New(rand.NewSource(cfg.Seed ^ int64(h.Sum64()))),
			backoff: cfg.BackoffMin,
		}
		if reg := cfg.Metrics; reg != nil {
			p.reconnects = reg.Counter("transport.reconnects", metrics.L("peer", string(id)))
			p.connErrors = reg.Counter("transport.conn.errors", metrics.L("peer", string(id)))
			p.queueDropped = reg.Counter("transport.queue.dropped", metrics.L("peer", string(id)))
		}
		t.peers[id] = p
		t.wg.Add(1)
		go t.writer(p)
	}
	t.wg.Add(2)
	go t.acceptLoop()
	go t.loopback()
	return t
}

// Addr returns the listener's address (useful with ":0" binds).
func (t *TCP) Addr() string { return t.ln.Addr().String() }

// Register installs the delivery handler for a site (normally Self).
func (t *TCP) Register(site protocol.SiteID, h Handler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.handlers[site] = h
}

// RegisterBatch installs a whole-frame delivery handler for a site: a
// decoded batch frame whose messages share that destination is handed
// over in one call instead of one per message, so a receiver with its
// own serialization point (the cluster's site loop) pays one event per
// frame.  Register must still be called — the plain handler remains the
// path for loopback and for frames interleaving destinations.
func (t *TCP) RegisterBatch(site protocol.SiteID, h BatchHandler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.bhandler[site] = h
}

// SetDown marks a site down from this process's point of view: messages
// to or from it are dropped locally.  Real remote failure needs no
// marking — the dead process simply stops answering.
func (t *TCP) SetDown(site protocol.SiteID, down bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.down[site] = down
}

// IsDown reports a site's locally-marked down state.
func (t *TCP) IsDown(site protocol.SiteID) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.down[site]
}

// SetFrameTap installs a hook that observes (and may mutate or replace)
// every encoded frame just before it is written to a peer socket.  A
// fault injector uses it to corrupt bytes on the wire; nil removes the
// tap.  The tap runs on writer goroutines and must be safe for
// concurrent use.
func (t *TCP) SetFrameTap(tap func(to protocol.SiteID, frame []byte) []byte) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.tap = tap
}

// ResetPeer severs the live outbound connection to one peer, as a
// network fault would; the writer redials (with backoff) on the next
// frame.  Returns false when the peer is unknown or has no live
// connection.
func (t *TCP) ResetPeer(site protocol.SiteID) bool {
	p, ok := t.peers[site]
	if !ok {
		return false
	}
	p.liveMu.Lock()
	c := p.live
	p.liveMu.Unlock()
	if c == nil {
		return false
	}
	c.Close()
	t.logf("reset connection to %s", site)
	return true
}

// Send queues msg toward msg.To.  Unknown destinations, down endpoints,
// full queues and a closed transport all drop (and count) the message —
// exactly a lost datagram, which the protocol's retry machinery covers.
func (t *TCP) Send(msg protocol.Message) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.stats.Sent++
	t.countKind(t.series.sent[:], "network.sent", msg.Kind)
	if t.down[msg.From] || t.down[msg.To] {
		t.stats.Dropped++
		t.countDrop("down")
		t.mu.Unlock()
		return
	}
	t.mu.Unlock()

	if msg.To == t.cfg.Self {
		select {
		case t.lo <- msg:
		default:
			t.drop(msg.To, "backpressure")
		}
		return
	}
	p, ok := t.peers[msg.To]
	if !ok {
		t.drop(msg.To, "unknown")
		return
	}
	q := p.out
	if critical(msg.Kind) {
		q = p.crit
	}
	select {
	case q <- msg:
	default:
		// Full queue: evict the OLDEST frame of the SAME class to make
		// room.  While a peer is partitioned each queue holds the most
		// recent window of its own traffic instead of a stale prefix
		// (the retry-driven protocol recovers newest-first), and bulk
		// floods can never push out a decision or outcome message.
		select {
		case <-q:
			t.queueDrop(p, q == p.crit)
		default:
		}
		select {
		case q <- msg:
		default:
			t.drop(msg.To, "backpressure")
		}
	}
}

// critical classifies the messages that end uncertainty windows —
// coordinator decisions, §3.3 outcome propagation, and the Paxos
// decision plane (every consensus message shortens an in-doubt window).
// They ride the peer's priority queue: sent first, never evicted by
// bulk traffic.
func critical(k protocol.MsgKind) bool {
	switch k {
	case protocol.MsgComplete, protocol.MsgAbort,
		protocol.MsgOutcomeReq, protocol.MsgOutcomeInfo, protocol.MsgOutcomeAck:
		return true
	}
	return k.Paxos()
}

// Close shuts down: the listener stops, writers drain out, connections
// close, and every transport goroutine exits before Close returns.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	close(t.quit)
	err := t.ln.Close()
	for c := range t.conns {
		c.Close()
	}
	t.mu.Unlock()
	t.wg.Wait()
	return err
}

// Stats snapshots the counters (per-peer map deep-copied).
func (t *TCP) Stats() TCPStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.stats
	st.ByPeer = make(map[protocol.SiteID]PeerStats, len(t.stats.ByPeer))
	for id, ps := range t.stats.ByPeer {
		st.ByPeer[id] = ps
	}
	return st
}

// ---------------------------------------------------------------------
// Outbound
// ---------------------------------------------------------------------

// writer owns one peer link: it coalesces queued messages into batch
// frames, (re)dialing with capped exponential backoff + jitter, and
// writes each frame under a write deadline.
func (t *TCP) writer(p *peer) {
	defer t.wg.Done()
	defer func() {
		if p.conn != nil {
			p.conn.Close()
		}
	}()
	for {
		// Strict priority: drain crit before even looking at bulk.
		select {
		case <-t.quit:
			return
		case msg := <-p.crit:
			t.writeBatch(p, msg)
			continue
		default:
		}
		select {
		case <-t.quit:
			return
		case msg := <-p.crit:
			t.writeBatch(p, msg)
		case msg := <-p.out:
			t.writeBatch(p, msg)
		}
	}
}

// writeBatch coalesces msg and any queued (or imminent, within
// BatchDelay) traffic for p into one frame and makes at most one
// delivery attempt for it.  A failed dial drops only msg — the queued
// remainder gets its own attempts, preserving per-message retry
// accounting through a backoff window.
func (t *TCP) writeBatch(p *peer, msg protocol.Message) {
	if p.conn == nil && !t.dial(p) {
		t.dropPeer(p, "conn")
		return
	}
	p.batch.Reset()
	p.batch.Add(msg)
	reason := t.fillBatch(p)
	n := p.batch.Count()
	p.buf = p.batch.AppendFrame(p.buf[:0])
	frame := p.buf
	t.mu.Lock()
	tap := t.tap
	t.mu.Unlock()
	if tap != nil {
		frame = tap(p.id, frame)
	}
	p.conn.SetWriteDeadline(time.Now().Add(t.cfg.WriteTimeout))
	if _, err := p.conn.Write(frame); err != nil {
		t.logf("write to %s: %v", p.id, err)
		p.conn.Close()
		p.conn = nil
		p.setLive(nil)
		t.connError(p)
		// The whole batch rode one frame; account every message lost.
		for i := 0; i < n; i++ {
			t.dropPeer(p, "conn")
		}
		return
	}
	t.mu.Lock()
	ps := t.stats.ByPeer[p.id]
	ps.Sent++
	t.stats.ByPeer[p.id] = ps
	t.mu.Unlock()
	t.observeBatch(n, reason)
}

// fillBatch drains further queued traffic into p.batch until a flush
// condition holds, returning the flush reason: "count" (BatchMax
// reached), "size" (BatchBytes reached), "delay" (lingered BatchDelay
// without filling up), or "drain" (queue empty, no lingering).  The
// linger timer is armed once per batch, so coalescing adds at most
// BatchDelay of latency to the first message regardless of how much
// traffic trickles in.
func (t *TCP) fillBatch(p *peer) string {
	var timer *time.Timer
	var expired <-chan time.Time
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	for {
		if p.batch.Count() >= t.cfg.BatchMax {
			return "count"
		}
		if p.batch.Size() >= t.cfg.BatchBytes {
			return "size"
		}
		select {
		case m := <-p.crit:
			p.batch.Add(m)
			continue
		default:
		}
		select {
		case m := <-p.out:
			p.batch.Add(m)
			continue
		default:
		}
		if t.cfg.BatchDelay <= 0 {
			return "drain"
		}
		if timer == nil {
			timer = time.NewTimer(t.cfg.BatchDelay)
			expired = timer.C
		}
		select {
		case <-t.quit:
			return "drain"
		case m := <-p.crit:
			p.batch.Add(m)
		case m := <-p.out:
			p.batch.Add(m)
		case <-expired:
			return "delay"
		}
	}
}

// observeBatch records one flushed batch's size and reason.
func (t *TCP) observeBatch(n int, reason string) {
	if t.series.batchSize == nil {
		return
	}
	t.series.batchSize.Observe(float64(n))
	if c := t.series.flushes[reason]; c != nil {
		c.Inc()
	}
}

// dial attempts to (re)connect, honouring the backoff window.  Returns
// true when a live connection exists on exit.
func (t *TCP) dial(p *peer) bool {
	now := time.Now()
	if now.Before(p.nextDial) {
		return false
	}
	conn, err := net.DialTimeout("tcp", p.addr, t.cfg.DialTimeout)
	if err != nil {
		t.logf("dial %s (%s): %v", p.id, p.addr, err)
		t.connError(p)
		// Exponential backoff with ±50% jitter, capped.
		jitter := 0.5 + p.rng.Float64()
		p.nextDial = now.Add(time.Duration(float64(p.backoff) * jitter))
		p.backoff *= 2
		if p.backoff > t.cfg.BackoffMax {
			p.backoff = t.cfg.BackoffMax
		}
		return false
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	p.conn = conn
	p.setLive(conn)
	p.backoff = t.cfg.BackoffMin
	p.nextDial = time.Time{}
	if p.everUp {
		t.mu.Lock()
		t.stats.Reconnects++
		ps := t.stats.ByPeer[p.id]
		ps.Reconnects++
		t.stats.ByPeer[p.id] = ps
		t.mu.Unlock()
		if p.reconnects != nil {
			p.reconnects.Inc()
		}
		t.logf("reconnected to %s (%s)", p.id, p.addr)
	}
	p.everUp = true
	return true
}

// ---------------------------------------------------------------------
// Inbound
// ---------------------------------------------------------------------

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.conns[conn] = true
		t.mu.Unlock()
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

// readLoop decodes frames off one accepted connection and delivers them.
func (t *TCP) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		conn.Close()
		t.mu.Lock()
		delete(t.conns, conn)
		t.mu.Unlock()
	}()
	r := bufio.NewReader(conn)
	for {
		msgs, err := wire.ReadMessages(r, t.cfg.MaxFrame)
		if err != nil {
			// A frame that failed its checksum, carried an unknown
			// version, or decoded to garbage was still consumed whole
			// (the length prefix framed it), so the stream is intact:
			// count the reject and keep reading.  A corrupted batch
			// frame loses all its messages at once — the same loss the
			// protocol's retry machinery already absorbs.  Anything
			// else — EOF, a torn read, an oversize claim — desyncs or
			// ends the stream, so the connection is dropped.
			if errors.Is(err, wire.ErrChecksum) || errors.Is(err, wire.ErrVersion) || errors.Is(err, wire.ErrMalformed) {
				t.decodeError(err)
				continue
			}
			return
		}
		// Deliver runs of same-destination messages through the batch
		// handler when one is registered: one handler call (and one
		// receiver event) per run instead of per message.
		for start := 0; start < len(msgs); {
			end := start + 1
			for end < len(msgs) && msgs[end].To == msgs[start].To {
				end++
			}
			t.deliverRun(msgs[start:end])
			start = end
		}
	}
}

// deliverRun dispatches consecutive messages addressed to one site.
func (t *TCP) deliverRun(run []protocol.Message) {
	to := run[0].To
	t.mu.Lock()
	if t.closed || t.down[to] {
		t.mu.Unlock()
		return
	}
	bh := t.bhandler[to]
	h := t.handlers[to]
	if bh == nil && h == nil {
		t.stats.Dropped += int64(len(run))
		t.mu.Unlock()
		for range run {
			t.countDrop("unknown")
		}
		return
	}
	t.stats.Delivered += int64(len(run))
	t.mu.Unlock()
	for _, m := range run {
		t.countKind(t.series.delivered[:], "network.delivered", m.Kind)
	}
	if bh != nil {
		bh(run)
		return
	}
	for _, m := range run {
		h(m)
	}
}

// loopback delivers self-addressed messages asynchronously, preserving
// their order; synchronous delivery would deadlock the sending site's
// event loop.
func (t *TCP) loopback() {
	defer t.wg.Done()
	for {
		select {
		case <-t.quit:
			return
		case msg := <-t.lo:
			t.deliver(msg)
		}
	}
}

func (t *TCP) deliver(msg protocol.Message) {
	t.mu.Lock()
	if t.closed || t.down[msg.To] {
		t.mu.Unlock()
		return
	}
	h := t.handlers[msg.To]
	if h == nil {
		t.stats.Dropped++
		t.countDrop("unknown")
		t.mu.Unlock()
		return
	}
	t.stats.Delivered++
	t.countKind(t.series.delivered[:], "network.delivered", msg.Kind)
	t.mu.Unlock()
	h(msg)
}

// ---------------------------------------------------------------------
// Accounting
// ---------------------------------------------------------------------

// count increments a registry counter if a registry is attached (cold
// paths only; hot paths go through the cached tcpSeries handles).
func (t *TCP) count(name string, labels ...metrics.Label) {
	if t.cfg.Metrics != nil {
		t.cfg.Metrics.Counter(name, labels...).Inc()
	}
}

// countKind bumps a cached per-message-kind counter, falling back to a
// registry lookup for kinds outside the cached range.
func (t *TCP) countKind(arr []*metrics.Counter, name string, k protocol.MsgKind) {
	if int(k) < len(arr) {
		if c := arr[k]; c != nil {
			c.Inc()
		}
		return
	}
	t.count(name, metrics.L("type", k.String()))
}

// countDrop bumps the cached network.dropped{reason} counter.
func (t *TCP) countDrop(reason string) {
	if c := t.series.dropped[reason]; c != nil {
		c.Inc()
		return
	}
	if t.series.dropped != nil { // registry attached, uncached reason
		t.count("network.dropped", metrics.L("reason", reason))
	}
}

func (t *TCP) drop(to protocol.SiteID, reason string) {
	t.mu.Lock()
	t.stats.Dropped++
	if p, ok := t.stats.ByPeer[to]; ok || t.peers[to] != nil {
		p.Dropped++
		t.stats.ByPeer[to] = p
	}
	t.mu.Unlock()
	t.countDrop(reason)
}

func (t *TCP) dropPeer(p *peer, reason string) { t.drop(p.id, reason) }

// queueDrop accounts one frame evicted from a full per-peer queue.
func (t *TCP) queueDrop(p *peer, crit bool) {
	t.mu.Lock()
	t.stats.Dropped++
	t.stats.QueueDropped++
	if crit {
		t.stats.CritDropped++
	}
	ps := t.stats.ByPeer[p.id]
	ps.Dropped++
	t.stats.ByPeer[p.id] = ps
	t.mu.Unlock()
	if p.queueDropped != nil {
		p.queueDropped.Inc()
	}
	t.countDrop("queue")
}

// decodeError accounts one inbound frame the wire codec rejected.
func (t *TCP) decodeError(err error) {
	t.mu.Lock()
	t.stats.DecodeErrors++
	t.mu.Unlock()
	if t.series.decodeErr != nil {
		t.series.decodeErr.Inc()
	}
	t.logf("rejected inbound frame: %v", err)
}

func (t *TCP) connError(p *peer) {
	t.mu.Lock()
	t.stats.ConnErrors++
	ps := t.stats.ByPeer[p.id]
	ps.ConnErrors++
	t.stats.ByPeer[p.id] = ps
	t.mu.Unlock()
	if p.connErrors != nil {
		p.connErrors.Inc()
	}
}

func (t *TCP) logf(format string, args ...any) {
	if t.cfg.Logf != nil {
		t.cfg.Logf(format, args...)
	}
}

var _ Transport = (*TCP)(nil)
