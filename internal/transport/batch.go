package transport

import (
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/protocol"
	"repro/internal/vclock"
	"repro/internal/wire"
)

// Batcher gives the simulated fabric the same coalescing seam the TCP
// writer has, so the deterministic protocol suite exercises the batch
// codec and the latency effects of delayed flushing.  It wraps any
// Transport: Send queues messages per destination and flushes a whole
// queue as one batch when it reaches MaxCount or MaxBytes, or when
// MaxDelay elapses on the wrapped clock (the simulated scheduler in
// tests, wall time otherwise).
//
// Each flush round-trips the queued messages through the real batch
// frame codec — encode, verify, decode — before handing them, in order,
// to the inner transport one at a time.  The inner fabric still sees
// individual messages (the simulated network delivers per message), but
// any message the batch codec would mangle fails loudly here instead of
// only on a real socket.
type Batcher struct {
	inner Transport
	clk   vclock.Clock
	cfg   BatchParams

	// Cached metric handles (nil without a registry): flush accounting
	// runs per batch and must not pay a registry lookup each time.
	batchSize *metrics.Histogram
	flushes   map[string]*metrics.Counter
	decodeErr *metrics.Counter

	mu     sync.Mutex
	queues map[protocol.SiteID]*sendQueue
	closed bool
}

// batchFlushReasons enumerates the label values either coalescing layer
// (TCP writer, sim Batcher) records under transport.batch.flushes.
var batchFlushReasons = []string{"count", "size", "delay", "drain"}

// BatchParams bounds a Batcher's coalescing.
type BatchParams struct {
	// MaxCount flushes a destination's queue at this many messages
	// (default 32; 1 disables coalescing).
	MaxCount int
	// MaxBytes flushes when the queue's encoded size reaches this many
	// bytes (default 64 KiB).
	MaxBytes int
	// MaxDelay flushes a nonempty queue this long after its first
	// message arrived (default 1ms of fabric time; negative means no
	// timer — flush only on count/size, plus explicit Flush calls).
	MaxDelay time.Duration
	// Metrics, when set, receives the same transport.batch.size
	// histogram and transport.batch.flushes{reason} counter the TCP
	// writer records.
	Metrics *metrics.Registry
}

func (p *BatchParams) fillDefaults() {
	if p.MaxCount <= 0 {
		p.MaxCount = 32
	}
	if p.MaxCount > wire.MaxBatch {
		p.MaxCount = wire.MaxBatch
	}
	if p.MaxBytes <= 0 {
		p.MaxBytes = 64 << 10
	}
	if p.MaxDelay == 0 {
		p.MaxDelay = time.Millisecond
	}
}

// sendQueue buffers one destination's pending messages.
type sendQueue struct {
	msgs  []protocol.Message
	size  int
	timer vclock.TimerID
	armed bool
}

// NewBatcher wraps inner with a coalescing layer driven by clk.
func NewBatcher(inner Transport, clk vclock.Clock, p BatchParams) *Batcher {
	p.fillDefaults()
	b := &Batcher{
		inner:  inner,
		clk:    clk,
		cfg:    p,
		queues: map[protocol.SiteID]*sendQueue{},
	}
	if reg := p.Metrics; reg != nil {
		b.batchSize = reg.Histogram("transport.batch.size")
		b.flushes = map[string]*metrics.Counter{}
		for _, r := range batchFlushReasons {
			b.flushes[r] = reg.Counter("transport.batch.flushes", metrics.L("reason", r))
		}
		b.decodeErr = reg.Counter("transport.decode.errors")
	}
	return b
}

// Send queues msg toward msg.To, flushing the destination's queue when
// a coalescing bound is hit.
func (b *Batcher) Send(msg protocol.Message) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	q := b.queues[msg.To]
	if q == nil {
		q = &sendQueue{}
		b.queues[msg.To] = q
	}
	q.msgs = append(q.msgs, msg)
	q.size += len(wire.EncodeMessage(msg))
	switch {
	case len(q.msgs) >= b.cfg.MaxCount:
		b.flushLocked(msg.To, q, "count")
	case q.size >= b.cfg.MaxBytes:
		b.flushLocked(msg.To, q, "size")
	case !q.armed && b.cfg.MaxDelay > 0:
		q.armed = true
		to := msg.To
		q.timer = b.clk.After(b.cfg.MaxDelay, func() {
			b.mu.Lock()
			defer b.mu.Unlock()
			if cur := b.queues[to]; cur != nil && cur.armed && !b.closed {
				b.flushLocked(to, cur, "delay")
			}
		})
	}
	b.mu.Unlock()
}

// flushLocked drains q through the batch codec into the inner
// transport.  Caller holds b.mu.
func (b *Batcher) flushLocked(to protocol.SiteID, q *sendQueue, reason string) {
	if q.armed {
		b.clk.Cancel(q.timer)
		q.armed = false
	}
	if len(q.msgs) == 0 {
		return
	}
	msgs := q.msgs
	q.msgs = nil
	q.size = 0
	// Round-trip through the real batch frame codec: what a TCP peer
	// would receive is exactly what the inner fabric delivers.
	decoded, err := wire.DecodePayload(wire.EncodeBatch(msgs))
	if err != nil {
		// Unreachable for well-formed messages; losing the batch (and
		// counting it) mirrors a corrupt frame on a real link.
		if b.decodeErr != nil {
			b.decodeErr.Inc()
		}
		return
	}
	if b.batchSize != nil {
		b.batchSize.Observe(float64(len(decoded)))
		b.flushes[reason].Inc()
	}
	for _, m := range decoded {
		b.inner.Send(m)
	}
}

// Flush forces out every pending queue (test hooks and shutdown).
func (b *Batcher) Flush() {
	b.mu.Lock()
	defer b.mu.Unlock()
	for to, q := range b.queues {
		b.flushLocked(to, q, "drain")
	}
}

// Register installs the delivery handler on the inner fabric.
func (b *Batcher) Register(site protocol.SiteID, h Handler) { b.inner.Register(site, h) }

// SetDown marks a site down on the inner fabric.  Pending queued
// messages for it still flush; the inner fabric drops them, exactly as
// frames already on the wire are lost when a real site dies.
func (b *Batcher) SetDown(site protocol.SiteID, down bool) { b.inner.SetDown(site, down) }

// IsDown reports the inner fabric's view.
func (b *Batcher) IsDown(site protocol.SiteID) bool { return b.inner.IsDown(site) }

// Close flushes every queue and closes the inner fabric.
func (b *Batcher) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	for to, q := range b.queues {
		b.flushLocked(to, q, "drain")
	}
	b.closed = true
	b.mu.Unlock()
	return b.inner.Close()
}

var _ Transport = (*Batcher)(nil)
