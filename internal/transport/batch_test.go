package transport

import (
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/polyvalue"
	"repro/internal/protocol"
	"repro/internal/vclock"
)

// newBatcher builds a Batcher over a deterministic simulated fabric.
func newBatcher(p BatchParams) (*Batcher, *vclock.Scheduler, *collector) {
	sched := vclock.NewScheduler()
	inner := NewSim(network.New(sched, network.Config{Seed: 9}))
	b := NewBatcher(inner, sched, p)
	var sink collector
	b.Register("B", sink.handle)
	return b, sched, &sink
}

func batchMsg(i int) protocol.Message {
	return protocol.Message{Kind: protocol.MsgReadReq, TID: tid(i), From: "A", To: "B"}
}

func TestBatcherCountFlush(t *testing.T) {
	reg := metrics.NewRegistry()
	b, sched, sink := newBatcher(BatchParams{MaxCount: 3, MaxDelay: -1, Metrics: reg})
	defer b.Close()

	b.Send(batchMsg(0))
	b.Send(batchMsg(1))
	sched.Drain(0)
	if n := sink.count(); n != 0 {
		t.Fatalf("partial batch leaked %d messages before the count bound", n)
	}
	b.Send(batchMsg(2))
	sched.Drain(0)
	msgs := sink.msgs
	if len(msgs) != 3 {
		t.Fatalf("delivered %d messages, want 3", len(msgs))
	}
	for i, m := range msgs {
		if m.TID != tid(i) {
			t.Fatalf("message %d out of order: %s", i, m.TID)
		}
	}
	if got := reg.Counter("transport.batch.flushes", metrics.L("reason", "count")).Value(); got != 1 {
		t.Errorf("flushes{reason=count} = %d, want 1", got)
	}
	if got := reg.Histogram("transport.batch.size").Max(); got != 3 {
		t.Errorf("batch.size max = %v, want 3", got)
	}
}

func TestBatcherDelayFlush(t *testing.T) {
	reg := metrics.NewRegistry()
	b, sched, sink := newBatcher(BatchParams{MaxCount: 100, MaxDelay: 5 * time.Millisecond, Metrics: reg})
	defer b.Close()

	b.Send(batchMsg(0))
	b.Send(batchMsg(1))
	// Nothing moves until the linger timer fires on the simulated clock.
	sched.RunUntil(4 * time.Millisecond)
	if n := sink.count(); n != 0 {
		t.Fatalf("flushed %d messages before MaxDelay", n)
	}
	sched.Drain(0)
	if n := sink.count(); n != 2 {
		t.Fatalf("delivered %d messages after delay flush, want 2", n)
	}
	if got := reg.Counter("transport.batch.flushes", metrics.L("reason", "delay")).Value(); got != 1 {
		t.Errorf("flushes{reason=delay} = %d, want 1", got)
	}
}

func TestBatcherSizeFlush(t *testing.T) {
	reg := metrics.NewRegistry()
	b, sched, sink := newBatcher(BatchParams{MaxCount: 1000, MaxBytes: 64, MaxDelay: -1, Metrics: reg})
	defer b.Close()

	// Bulky values push past 64 encoded bytes within a few sends.
	for i := 0; i < 4; i++ {
		m := batchMsg(i)
		m.Values = map[string]polyvalue.Poly{"acct": samplePoly(t)}
		b.Send(m)
	}
	sched.Drain(0)
	if sink.count() == 0 {
		t.Fatal("size bound never flushed")
	}
	if got := reg.Counter("transport.batch.flushes", metrics.L("reason", "size")).Value(); got == 0 {
		t.Error("flushes{reason=size} = 0")
	}
}

// TestBatcherFlushClose: explicit Flush drains pending queues, Close
// flushes the remainder before shutting the inner fabric, and sends
// after Close are silent no-ops.
func TestBatcherFlushClose(t *testing.T) {
	b, sched, sink := newBatcher(BatchParams{MaxCount: 100, MaxDelay: -1})

	b.Send(batchMsg(0))
	b.Flush()
	sched.Drain(0)
	if n := sink.count(); n != 1 {
		t.Fatalf("Flush delivered %d, want 1", n)
	}

	b.Send(batchMsg(1))
	if err := b.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	sched.Drain(0)
	if n := sink.count(); n != 2 {
		t.Fatalf("Close flushed to %d messages, want 2", n)
	}
	b.Send(batchMsg(2))
	sched.Drain(0)
	if n := sink.count(); n != 2 {
		t.Fatalf("send after Close delivered (%d messages)", n)
	}
}

// TestBatcherSingleMessageMode: MaxCount=1 degenerates to pass-through
// with no timers pending.
func TestBatcherSingleMessageMode(t *testing.T) {
	b, sched, sink := newBatcher(BatchParams{MaxCount: 1, MaxDelay: time.Second})
	defer b.Close()
	for i := 0; i < 5; i++ {
		b.Send(batchMsg(i))
	}
	sched.Drain(0)
	if n := sink.count(); n != 5 {
		t.Fatalf("delivered %d, want 5", n)
	}
	if p := sched.Pending(); p != 0 {
		t.Fatalf("%d timers left pending in pass-through mode", p)
	}
}
