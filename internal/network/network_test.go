package network

import (
	"testing"
	"time"

	"repro/internal/protocol"
	"repro/internal/vclock"
)

func setup(cfg Config) (*vclock.Scheduler, *Network) {
	s := vclock.NewScheduler()
	return s, New(s, cfg)
}

func TestDelivery(t *testing.T) {
	sched, n := setup(Config{Latency: 5 * time.Millisecond})
	var got []protocol.Message
	n.Register("b", func(m protocol.Message) { got = append(got, m) })
	n.Send(protocol.Message{Kind: protocol.MsgReady, From: "a", To: "b", TID: "T1"})
	if len(got) != 0 {
		t.Fatal("delivered before latency elapsed")
	}
	sched.Drain(0)
	if len(got) != 1 || got[0].TID != "T1" {
		t.Fatalf("got = %v", got)
	}
	if sched.Now() != 5*time.Millisecond {
		t.Errorf("delivery time = %v", sched.Now())
	}
	st := n.Stats()
	if st.Sent != 1 || st.Delivered != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestUnregisteredTargetDropsQuietly(t *testing.T) {
	sched, n := setup(Config{})
	n.Send(protocol.Message{From: "a", To: "nowhere"})
	sched.Drain(0) // must not panic
	if n.Stats().Delivered != 1 {
		// Delivery is counted even with no handler; the message reached
		// the (silent) site.
		t.Errorf("stats = %+v", n.Stats())
	}
}

func TestDownSiteDropsAtSend(t *testing.T) {
	sched, n := setup(Config{})
	delivered := 0
	n.Register("b", func(protocol.Message) { delivered++ })
	n.SetDown("b", true)
	if !n.IsDown("b") {
		t.Fatal("IsDown wrong")
	}
	n.Send(protocol.Message{From: "a", To: "b"})
	sched.Drain(0)
	if delivered != 0 || n.Stats().DroppedDown != 1 {
		t.Errorf("delivered=%d stats=%+v", delivered, n.Stats())
	}
	// Sender down drops too.
	n.SetDown("b", false)
	n.SetDown("a", true)
	n.Send(protocol.Message{From: "a", To: "b"})
	sched.Drain(0)
	if delivered != 0 {
		t.Error("message from down site delivered")
	}
}

func TestCrashWhileInFlight(t *testing.T) {
	sched, n := setup(Config{Latency: 10 * time.Millisecond})
	delivered := 0
	n.Register("b", func(protocol.Message) { delivered++ })
	n.Send(protocol.Message{From: "a", To: "b"})
	// Crash the target while the message is in flight.
	sched.After(5*time.Millisecond, func() { n.SetDown("b", true) })
	sched.Drain(0)
	if delivered != 0 {
		t.Error("message delivered to site that crashed mid-flight")
	}
	if n.Stats().DroppedDown != 1 {
		t.Errorf("stats = %+v", n.Stats())
	}
}

func TestPartitionAndHeal(t *testing.T) {
	sched, n := setup(Config{})
	delivered := 0
	n.Register("b", func(protocol.Message) { delivered++ })
	n.Partition("a", "b")
	n.Send(protocol.Message{From: "a", To: "b"})
	// Partition is symmetric regardless of argument order.
	n.Send(protocol.Message{From: "b", To: "a"})
	sched.Drain(0)
	if delivered != 0 || n.Stats().DroppedPartition != 2 {
		t.Errorf("delivered=%d stats=%+v", delivered, n.Stats())
	}
	n.Heal("b", "a") // reversed order heals the same link
	n.Send(protocol.Message{From: "a", To: "b"})
	sched.Drain(0)
	if delivered != 1 {
		t.Errorf("post-heal delivered = %d", delivered)
	}
}

func TestPartitionWhileInFlight(t *testing.T) {
	sched, n := setup(Config{Latency: 10 * time.Millisecond})
	delivered := 0
	n.Register("b", func(protocol.Message) { delivered++ })
	n.Send(protocol.Message{From: "a", To: "b"})
	sched.After(time.Millisecond, func() { n.Partition("a", "b") })
	sched.Drain(0)
	if delivered != 0 {
		t.Error("message crossed a link cut while in flight")
	}
}

func TestHealAll(t *testing.T) {
	sched, n := setup(Config{})
	delivered := 0
	n.Register("b", func(protocol.Message) { delivered++ })
	n.SetDown("b", true)
	n.Partition("a", "b")
	n.HealAll()
	n.Send(protocol.Message{From: "a", To: "b"})
	sched.Drain(0)
	if delivered != 1 {
		t.Errorf("post-HealAll delivered = %d", delivered)
	}
}

func TestJitterDeterministic(t *testing.T) {
	run := func(seed int64) []vclock.Time {
		sched, n := setup(Config{Latency: time.Millisecond, Jitter: 10 * time.Millisecond, Seed: seed})
		var times []vclock.Time
		n.Register("b", func(protocol.Message) { times = append(times, sched.Now()) })
		for i := 0; i < 5; i++ {
			n.Send(protocol.Message{From: "a", To: "b"})
		}
		sched.Drain(0)
		return times
	}
	a, b := run(7), run(7)
	if len(a) != 5 || len(b) != 5 {
		t.Fatalf("deliveries: %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged: %v vs %v", a, b)
		}
	}
	c := run(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical jitter")
	}
}

func TestDefaultLatency(t *testing.T) {
	sched, n := setup(Config{})
	n.Register("b", func(protocol.Message) {})
	n.Send(protocol.Message{From: "a", To: "b"})
	sched.Drain(0)
	if sched.Now() != 10*time.Millisecond {
		t.Errorf("default latency = %v", sched.Now())
	}
}

func TestDropAndDuplicateProbabilities(t *testing.T) {
	sched, n := setup(Config{Latency: time.Millisecond, Seed: 3, DropProb: 0.3, DuplicateProb: 0.3})
	delivered := 0
	n.Register("b", func(protocol.Message) { delivered++ })
	const sent = 1000
	for i := 0; i < sent; i++ {
		n.Send(protocol.Message{From: "a", To: "b"})
	}
	sched.Drain(0)
	st := n.Stats()
	if st.DroppedRandom < 200 || st.DroppedRandom > 400 {
		t.Errorf("DroppedRandom = %d, want ≈ 300", st.DroppedRandom)
	}
	if st.Duplicated < 200 || st.Duplicated > 400 {
		t.Errorf("Duplicated = %d, want ≈ 300", st.Duplicated)
	}
	// Every surviving send is delivered once, plus one per duplicate.
	want := sent - int(st.DroppedRandom) + int(st.Duplicated)
	if delivered != want {
		t.Errorf("delivered = %d, want %d", delivered, want)
	}
	// Deterministic for the seed.
	sched2, n2 := setup(Config{Latency: time.Millisecond, Seed: 3, DropProb: 0.3, DuplicateProb: 0.3})
	n2.Register("b", func(protocol.Message) {})
	for i := 0; i < sent; i++ {
		n2.Send(protocol.Message{From: "a", To: "b"})
	}
	sched2.Drain(0)
	if n2.Stats().DroppedRandom != st.DroppedRandom || n2.Stats().Duplicated != st.Duplicated {
		t.Error("chaos not deterministic for seed")
	}
}

func TestStringSummary(t *testing.T) {
	_, n := setup(Config{})
	n.SetDown("x", true)
	n.Partition("a", "b")
	if s := n.String(); s == "" {
		t.Error("empty String")
	}
}
