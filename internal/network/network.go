// Package network simulates the message fabric among sites: point-to-
// point delivery with configurable latency and jitter, site down states,
// and link partitions.  Delivery is scheduled on a vclock.Scheduler, so
// every protocol run is deterministic given a seed.
//
// This stands in for the paper's (unspecified) inter-site communication
// substrate.  The failure model is the paper's: "a failure disrupts
// communication among sites during an update" — realized here as crashed
// sites (drop everything) and severed links (drop both directions).
package network

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/protocol"
	"repro/internal/vclock"
)

// Handler receives delivered messages at a site.  It is an alias (not a
// defined type) so *Network structurally satisfies transport.Transport's
// Register signature.
type Handler = func(msg protocol.Message)

// Stats counts network activity, for benchmarks and the cluster's
// metrics output.
type Stats struct {
	Sent      int64
	Delivered int64
	// DroppedDown counts messages dropped because an endpoint was down
	// at send or delivery time.
	DroppedDown int64
	// DroppedPartition counts messages dropped by a severed link.
	DroppedPartition int64
	// DroppedRandom counts messages lost to the configured DropProb.
	DroppedRandom int64
	// Duplicated counts extra deliveries injected by DuplicateProb.
	Duplicated int64
	// SentByType and DeliveredByType break the totals down by message
	// kind (keys are MsgKind.String()).  Snapshots deep-copy the maps;
	// render them with Format, which iterates in sorted order so
	// same-seed exports stay byte-identical.
	SentByType      map[string]int64
	DeliveredByType map[string]int64
}

// Format renders the counters as stable text: fixed field order, and
// per-type breakdowns in sorted key order.
func (s Stats) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sent=%d delivered=%d dropped_down=%d dropped_partition=%d dropped_random=%d duplicated=%d\n",
		s.Sent, s.Delivered, s.DroppedDown, s.DroppedPartition, s.DroppedRandom, s.Duplicated)
	for _, kv := range []struct {
		name string
		m    map[string]int64
	}{{"sent", s.SentByType}, {"delivered", s.DeliveredByType}} {
		keys := make([]string, 0, len(kv.m))
		for k := range kv.m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "%s{type=%s}=%d\n", kv.name, k, kv.m[k])
		}
	}
	return b.String()
}

// Network is the simulated fabric.  Safe for concurrent use; in the
// deterministic cluster runtime all calls are serialized anyway.
type Network struct {
	mu       sync.Mutex
	sched    *vclock.Scheduler
	latency  time.Duration
	jitter   time.Duration
	dropP    float64
	dupP     float64
	rng      *rand.Rand
	handlers map[protocol.SiteID]Handler
	down     map[protocol.SiteID]bool
	cut      map[linkKey]bool
	stats    Stats
	// reg, when set via Instrument, receives per-message-type series:
	// network.sent/delivered (type label), network.dropped (reason
	// label), network.duplicated, and the network.delay.seconds
	// distribution by type.
	reg *metrics.Registry
}

// linkKey is an unordered site pair.
type linkKey struct{ a, b protocol.SiteID }

func link(a, b protocol.SiteID) linkKey {
	if a > b {
		a, b = b, a
	}
	return linkKey{a, b}
}

// Config parameterizes a Network.
type Config struct {
	// Latency is the one-way delivery delay (default 10ms of simulated
	// time).
	Latency time.Duration
	// Jitter adds a uniform random extra delay in [0, Jitter).
	Jitter time.Duration
	// Seed drives the jitter/chaos RNG; runs with equal seeds are
	// identical.
	Seed int64
	// DropProb randomly drops each message with this probability
	// (lossy-link chaos testing).
	DropProb float64
	// DuplicateProb delivers each message a second time with this
	// probability (at an independently jittered instant), exercising the
	// protocol's idempotency.
	DuplicateProb float64
}

// New builds a network delivering on the given scheduler.
func New(sched *vclock.Scheduler, cfg Config) *Network {
	if cfg.Latency <= 0 {
		cfg.Latency = 10 * time.Millisecond
	}
	return &Network{
		sched:    sched,
		latency:  cfg.Latency,
		jitter:   cfg.Jitter,
		dropP:    cfg.DropProb,
		dupP:     cfg.DuplicateProb,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		handlers: map[protocol.SiteID]Handler{},
		down:     map[protocol.SiteID]bool{},
		cut:      map[linkKey]bool{},
	}
}

// Instrument attaches a metrics registry; all subsequent activity is
// recorded as network.* series in addition to the Stats counters.
func (n *Network) Instrument(reg *metrics.Registry) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.reg = reg
}

// count increments a registry counter if a registry is attached.
// Callers hold n.mu.
func (n *Network) count(name string, labels ...metrics.Label) {
	if n.reg != nil {
		n.reg.Counter(name, labels...).Inc()
	}
}

// Register installs the delivery handler for a site.  Re-registering
// replaces the handler (a restarted site re-registers).
func (n *Network) Register(site protocol.SiteID, h Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.handlers[site] = h
}

// Send schedules delivery of msg.  Messages to/from down sites and over
// severed links are silently dropped (counted in Stats) — the sender
// learns nothing, exactly like a lost datagram.
func (n *Network) Send(msg protocol.Message) {
	n.mu.Lock()
	defer n.mu.Unlock()
	kind := metrics.L("type", msg.Kind.String())
	n.stats.Sent++
	if n.stats.SentByType == nil {
		n.stats.SentByType = map[string]int64{}
	}
	n.stats.SentByType[msg.Kind.String()]++
	n.count("network.sent", kind)
	if n.down[msg.From] || n.down[msg.To] {
		n.stats.DroppedDown++
		n.count("network.dropped", metrics.L("reason", "down"))
		return
	}
	if n.cut[link(msg.From, msg.To)] {
		n.stats.DroppedPartition++
		n.count("network.dropped", metrics.L("reason", "partition"))
		return
	}
	if n.dropP > 0 && n.rng.Float64() < n.dropP {
		n.stats.DroppedRandom++
		n.count("network.dropped", metrics.L("reason", "random"))
		return
	}
	d := n.delay()
	if n.reg != nil {
		n.reg.Histogram("network.delay.seconds", kind).Observe(d.Seconds())
	}
	n.sched.After(d, func() { n.deliver(msg) })
	if n.dupP > 0 && n.rng.Float64() < n.dupP {
		n.stats.Duplicated++
		n.count("network.duplicated", kind)
		n.sched.After(n.delay(), func() { n.deliver(msg) })
	}
}

// delay computes one delivery's latency.  Callers hold n.mu.
func (n *Network) delay() time.Duration {
	d := n.latency
	if n.jitter > 0 {
		d += time.Duration(n.rng.Int63n(int64(n.jitter)))
	}
	return d
}

// deliver runs at the scheduled instant and re-checks failure state: a
// site that crashed, or a link that was cut, while the message was in
// flight still loses the message.
func (n *Network) deliver(msg protocol.Message) {
	n.mu.Lock()
	if n.down[msg.To] {
		n.stats.DroppedDown++
		n.count("network.dropped", metrics.L("reason", "down"))
		n.mu.Unlock()
		return
	}
	if n.cut[link(msg.From, msg.To)] {
		n.stats.DroppedPartition++
		n.count("network.dropped", metrics.L("reason", "partition"))
		n.mu.Unlock()
		return
	}
	h := n.handlers[msg.To]
	n.stats.Delivered++
	if n.stats.DeliveredByType == nil {
		n.stats.DeliveredByType = map[string]int64{}
	}
	n.stats.DeliveredByType[msg.Kind.String()]++
	n.count("network.delivered", metrics.L("type", msg.Kind.String()))
	n.mu.Unlock()
	if h != nil {
		h(msg)
	}
}

// SetDown marks a site crashed (true) or recovered (false).  Crashing
// does not flush in-flight messages to the site; they are dropped at
// delivery time.
func (n *Network) SetDown(site protocol.SiteID, down bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.down[site] = down
}

// IsDown reports a site's crash state.
func (n *Network) IsDown(site protocol.SiteID) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.down[site]
}

// Partition severs the link between two sites (both directions).
func (n *Network) Partition(a, b protocol.SiteID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cut[link(a, b)] = true
}

// Heal restores the link between two sites.
func (n *Network) Heal(a, b protocol.SiteID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.cut, link(a, b))
}

// HealAll restores every link and brings every site up.
func (n *Network) HealAll() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cut = map[linkKey]bool{}
	n.down = map[protocol.SiteID]bool{}
}

// Stats returns a snapshot of the counters.  The per-type maps are
// deep-copied so the snapshot is stable.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	st := n.stats
	st.SentByType = copyCounts(n.stats.SentByType)
	st.DeliveredByType = copyCounts(n.stats.DeliveredByType)
	return st
}

func copyCounts(m map[string]int64) map[string]int64 {
	if m == nil {
		return nil
	}
	out := make(map[string]int64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// String summarizes the failure state, for traces.
func (n *Network) String() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	downCount := 0
	for _, d := range n.down {
		if d {
			downCount++
		}
	}
	return fmt.Sprintf("network{down:%d cuts:%d sent:%d delivered:%d}", downCount, len(n.cut), n.stats.Sent, n.stats.Delivered)
}
