package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
	"time"

	"repro/internal/protocol"
)

// TestVersionSelection pins the pay-for-what-you-use rule: the version
// byte is decided by which optional fields the message carries, so
// untraced, deadline-free traffic is byte-identical to version 1.
func TestVersionSelection(t *testing.T) {
	base := protocol.Message{Kind: protocol.MsgPrepare, TID: "t", From: "A", To: "B"}
	cases := []struct {
		name     string
		deadline time.Duration
		ctx      uint64
		want     byte
	}{
		{"plain", 0, 0, Version},
		{"deadline", time.Second, 0, DeadlineVersion},
		{"trace", 0, 7, TraceVersion},
		{"deadline+trace", time.Second, 7, TraceVersion},
	}
	for _, c := range cases {
		m := base
		m.Deadline, m.TraceCtx = c.deadline, c.ctx
		payload := EncodeMessage(m)
		if payload[0] != c.want {
			t.Errorf("%s: version byte %d, want %d", c.name, payload[0], c.want)
		}
		got, err := DecodeMessage(payload)
		if err != nil {
			t.Fatalf("%s: decode: %v", c.name, err)
		}
		if got.Deadline != c.deadline || got.TraceCtx != c.ctx {
			t.Errorf("%s: round trip got deadline=%v ctx=%d", c.name, got.Deadline, got.TraceCtx)
		}
		if again := EncodeMessage(got); !bytes.Equal(payload, again) {
			t.Errorf("%s: re-encode not canonical", c.name)
		}
	}
}

// appendV4Prefix hand-builds a version-4 payload through the deadline
// field, leaving the trace context and value count to the caller.
func appendV4Prefix(deadline uint64) []byte {
	p := []byte{TraceVersion, byte(protocol.MsgPrepare)}
	p = appendString(p, "t") // tid
	p = appendString(p, "A") // from
	p = appendString(p, "B") // to
	p = append(p, 0)         // flags
	p = append(p, 0)         // item count
	p = appendString(p, "")  // program
	p = appendString(p, "")  // coordinator
	p = appendString(p, "")  // reason
	p = binary.AppendUvarint(p, deadline)
	return p
}

func TestTraceVersionMalformed(t *testing.T) {
	t.Run("zero-trace-ctx", func(t *testing.T) {
		// A v4 payload whose trace context is zero is non-canonical (the
		// encoder would have picked v1/v3) and must be rejected.
		p := appendV4Prefix(0)
		p = binary.AppendUvarint(p, 0) // trace ctx = 0
		p = binary.AppendUvarint(p, 0) // value count
		if _, err := DecodeMessage(p); !errors.Is(err, ErrMalformed) {
			t.Errorf("got %v, want ErrMalformed", err)
		}
	})
	t.Run("negative-deadline", func(t *testing.T) {
		// 2^63 wraps to a negative time.Duration; v4 allows zero but not
		// negative.
		p := appendV4Prefix(1 << 63)
		p = binary.AppendUvarint(p, 7)
		p = binary.AppendUvarint(p, 0)
		if _, err := DecodeMessage(p); !errors.Is(err, ErrMalformed) {
			t.Errorf("got %v, want ErrMalformed", err)
		}
	})
	t.Run("truncated-before-ctx", func(t *testing.T) {
		p := appendV4Prefix(0)
		if _, err := DecodeMessage(p); !errors.Is(err, ErrTruncated) {
			t.Errorf("got %v, want ErrTruncated", err)
		}
	})
	t.Run("zero-deadline-ok", func(t *testing.T) {
		// Unlike v3, a zero deadline is legal in v4: the trace context
		// alone forces this version.
		p := appendV4Prefix(0)
		p = binary.AppendUvarint(p, 7)
		p = binary.AppendUvarint(p, 0)
		m, err := DecodeMessage(p)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if m.TraceCtx != 7 || m.Deadline != 0 {
			t.Errorf("got ctx=%d deadline=%v", m.TraceCtx, m.Deadline)
		}
	})
}

func TestDecodePayloadTraceVersion(t *testing.T) {
	m := protocol.Message{Kind: protocol.MsgReadReq, TID: "t", From: "A", To: "B",
		Items: []string{"x"}, Lock: true, TraceCtx: 42}
	got, err := DecodePayload(EncodeMessage(m))
	if err != nil {
		t.Fatalf("DecodePayload: %v", err)
	}
	if len(got) != 1 || got[0].TraceCtx != 42 {
		t.Fatalf("got %+v", got)
	}
}

func TestBatchCarriesTraceCtx(t *testing.T) {
	msgs := []protocol.Message{
		{Kind: protocol.MsgReadReq, TID: "a", From: "A", To: "B", TraceCtx: 9},
		{Kind: protocol.MsgReady, TID: "a", From: "B", To: "A"},
		{Kind: protocol.MsgPrepare, TID: "b", From: "A", To: "B",
			Deadline: time.Second, TraceCtx: 10},
	}
	got, err := DecodeBatch(EncodeBatch(msgs))
	if err != nil {
		t.Fatalf("DecodeBatch: %v", err)
	}
	for i := range msgs {
		if got[i].TraceCtx != msgs[i].TraceCtx || got[i].Deadline != msgs[i].Deadline {
			t.Errorf("element %d: ctx=%d deadline=%v, want ctx=%d deadline=%v",
				i, got[i].TraceCtx, got[i].Deadline, msgs[i].TraceCtx, msgs[i].Deadline)
		}
	}
}
