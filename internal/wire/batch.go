package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/protocol"
)

// Batch frame: the transport's coalescing path packs N protocol messages
// into ONE checksummed frame — one length prefix, one CRC32, one write
// syscall, one read on the far side — instead of N single-message frames.
//
// The outer frame layout is identical to the single-message form (4-byte
// payload length + 4-byte CRC32 + payload); the two are distinguished by
// the payload's leading version byte:
//
//	payload[0] == Version      → one message (AppendMessage layout)
//	payload[0] == BatchVersion → a batch:
//
//	1 byte   BatchVersion
//	uvarint  message count n (≥ 1)
//	n ×      uvarint payload length + version-1 message payload
//
// Each inner payload carries its own version byte, so a batch is exactly
// the concatenation of n length-prefixed single-message payloads — the
// encoder and decoder reuse the version-1 codec per element, and the
// canonical-encoding property (equal messages ⇒ identical bytes) lifts
// to batches element-wise.
//
// Decoding is as defensive as the single-message path: counts and
// lengths are bounded by the remaining input before sizing any
// allocation, an empty batch is malformed (the encoder never produces
// one), and trailing bytes after the last element are an error.

// BatchVersion is the payload version byte marking a batch frame.
const BatchVersion = 2

// MaxBatch caps the number of messages one batch frame may carry; a
// frame announcing more is malformed.  Writers flush well below this.
const MaxBatch = 4096

// AppendBatch appends the batch payload encoding of msgs to dst.
// Panics if msgs is empty — callers batch only actual traffic.
func AppendBatch(dst []byte, msgs []protocol.Message) []byte {
	if len(msgs) == 0 {
		panic("wire: empty batch")
	}
	dst = append(dst, BatchVersion)
	dst = binary.AppendUvarint(dst, uint64(len(msgs)))
	for _, m := range msgs {
		// Reserve a maximal uvarint length slot, encode the message after
		// it, then backfill; re-encoding to measure would double the work.
		lenAt := len(dst)
		dst = append(dst, 0, 0, 0, 0, 0) // 5 bytes hold any uint32 uvarint
		start := len(dst)
		dst = AppendMessage(dst, m)
		size := len(dst) - start
		var lenBuf [5]byte
		w := binary.PutUvarint(lenBuf[:], uint64(size))
		copy(dst[lenAt:], lenBuf[:w])
		if w < 5 {
			dst = append(dst[:lenAt+w], dst[start:]...)
		}
	}
	return dst
}

// EncodeBatch returns the batch payload encoding of msgs.
func EncodeBatch(msgs []protocol.Message) []byte { return AppendBatch(nil, msgs) }

// AppendBatchFrame appends the length-prefixed, checksummed frame
// carrying msgs as one batch.
func AppendBatchFrame(dst []byte, msgs []protocol.Message) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0) // header placeholder
	dst = AppendBatch(dst, msgs)
	payload := dst[start+frameHeader:]
	binary.BigEndian.PutUint32(dst[start:], uint32(len(payload)))
	binary.BigEndian.PutUint32(dst[start+4:], crc32.ChecksumIEEE(payload))
	return dst
}

// EncodeBatchFrame returns the complete batch frame for msgs.
func EncodeBatchFrame(msgs []protocol.Message) []byte { return AppendBatchFrame(nil, msgs) }

// DecodeBatch decodes a complete batch payload (leading BatchVersion
// byte included).  Trailing bytes after the last element are an error.
func DecodeBatch(buf []byte) ([]protocol.Message, error) {
	if len(buf) == 0 {
		return nil, fmt.Errorf("%w: empty payload", ErrTruncated)
	}
	if buf[0] != BatchVersion {
		return nil, fmt.Errorf("%w: %d", ErrVersion, buf[0])
	}
	off := 1
	n, w := binary.Uvarint(buf[off:])
	if w <= 0 {
		return nil, fmt.Errorf("%w: batch count", ErrTruncated)
	}
	off += w
	if n == 0 {
		return nil, fmt.Errorf("%w: empty batch", ErrMalformed)
	}
	if n > MaxBatch || n > uint64(len(buf)-off) {
		// Every element needs at least one byte; a bigger count is lying
		// and must not size the allocation.
		return nil, fmt.Errorf("%w: batch count %d", ErrMalformed, n)
	}
	msgs := make([]protocol.Message, 0, n)
	for i := uint64(0); i < n; i++ {
		size, w := binary.Uvarint(buf[off:])
		if w <= 0 {
			return nil, fmt.Errorf("%w: batch element %d length", ErrTruncated, i)
		}
		off += w
		if size > uint64(len(buf)-off) {
			return nil, fmt.Errorf("%w: batch element %d", ErrTruncated, i)
		}
		m, err := DecodeMessage(buf[off : off+int(size)])
		if err != nil {
			return nil, fmt.Errorf("batch element %d: %w", i, err)
		}
		off += int(size)
		msgs = append(msgs, m)
	}
	if off != len(buf) {
		return nil, fmt.Errorf("%w: %d trailing bytes after batch", ErrMalformed, len(buf)-off)
	}
	return msgs, nil
}

// DecodePayload decodes a verified frame payload of either kind: a
// single-message payload yields a one-element slice, a batch payload all
// its elements in order.
func DecodePayload(buf []byte) ([]protocol.Message, error) {
	if len(buf) == 0 {
		return nil, fmt.Errorf("%w: empty payload", ErrTruncated)
	}
	switch buf[0] {
	case Version, DeadlineVersion, TraceVersion, PaxosVersion, AntiEntropyVersion:
		m, err := DecodeMessage(buf)
		if err != nil {
			return nil, err
		}
		return []protocol.Message{m}, nil
	case BatchVersion:
		return DecodeBatch(buf)
	default:
		return nil, fmt.Errorf("%w: %d", ErrVersion, buf[0])
	}
}

// BatchBuilder assembles one outgoing frame from messages added
// incrementally, encoding each exactly once.  A builder holding one
// message emits the classic single-message frame; two or more emit a
// batch frame — so intermittent coalescing produces the cheapest frame
// either way and old readers keep working on light traffic.  The zero
// value is ready to use; Reset recycles the internal buffers.  Not safe
// for concurrent use: each transport writer owns one.
type BatchBuilder struct {
	single  []byte // first message's payload, for the one-message form
	body    []byte // length-prefixed payloads, for the batch form
	scratch []byte
	count   int
	size    int // sum of encoded message payload sizes
}

// Add encodes m into the pending frame.  Panics past MaxBatch — callers
// flush well below it.
func (b *BatchBuilder) Add(m protocol.Message) {
	if b.count >= MaxBatch {
		panic("wire: batch overflow")
	}
	b.scratch = AppendMessage(b.scratch[:0], m)
	if b.count == 0 {
		b.single = append(b.single[:0], b.scratch...)
	}
	b.body = binary.AppendUvarint(b.body, uint64(len(b.scratch)))
	b.body = append(b.body, b.scratch...)
	b.count++
	b.size += len(b.scratch)
}

// Count reports the number of messages added since the last Reset.
func (b *BatchBuilder) Count() int { return b.count }

// Size reports the total encoded message bytes pending (excluding frame
// and batch overhead) — the quantity size-based flushing bounds.
func (b *BatchBuilder) Size() int { return b.size }

// AppendFrame appends the assembled frame to dst.  Panics when empty.
func (b *BatchBuilder) AppendFrame(dst []byte) []byte {
	switch {
	case b.count == 0:
		panic("wire: empty batch frame")
	case b.count == 1:
		return appendRawFrame(dst, b.single)
	default:
		start := len(dst)
		dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0) // header placeholder
		dst = append(dst, BatchVersion)
		dst = binary.AppendUvarint(dst, uint64(b.count))
		dst = append(dst, b.body...)
		payload := dst[start+frameHeader:]
		binary.BigEndian.PutUint32(dst[start:], uint32(len(payload)))
		binary.BigEndian.PutUint32(dst[start+4:], crc32.ChecksumIEEE(payload))
		return dst
	}
}

// Reset clears the builder for the next frame, keeping its buffers.
func (b *BatchBuilder) Reset() {
	b.count, b.size = 0, 0
	b.body = b.body[:0]
}

// appendRawFrame appends the checksummed frame around an already-encoded
// payload.
func appendRawFrame(dst, payload []byte) []byte {
	var hdr [frameHeader]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// ReadMessages reads one frame from r and returns the message(s) it
// carries — one for a single-message frame, all of them in send order
// for a batch frame.  maxFrame caps the payload length (≤ 0 means
// MaxFrame).  io.EOF is returned unwrapped on a clean end of stream.
func ReadMessages(r io.Reader, maxFrame int) ([]protocol.Message, error) {
	payload, err := readFrame(r, maxFrame)
	if err != nil {
		return nil, err
	}
	return DecodePayload(payload)
}
