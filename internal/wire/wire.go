// Package wire defines the versioned binary format protocol messages
// take on a real network link.  The simulated network passes
// protocol.Message structs by value; a multi-process cluster (cmd/
// polynode over internal/transport) needs an actual byte encoding, with
// the same canonical polyvalue/condition wire form the storage WAL uses.
//
// Frame layout (all integers big-endian):
//
//	4 bytes  payload length N
//	4 bytes  CRC32 (IEEE) of the payload
//	N bytes  payload
//
// Payload layout (version 1):
//
//	1 byte   wire version
//	1 byte   message kind
//	str      TID, From, To           (uvarint length + bytes each)
//	1 byte   flags (bit0 Lock, bit1 ReadOnly, bit2 Committed)
//	uvarint  item count; per item: str
//	str      Program
//	str      Coordinator
//	str      Reason
//	uvarint  value count; per entry, sorted by item name:
//	           str   item
//	           poly  polyvalue.AppendBinary encoding
//
// Version 3 (version 2 names batch frames; see batch.go) appends one
// field after Reason:
//
//	uvarint  deadline (remaining transaction time budget, nanoseconds)
//
// A message with no deadline encodes as version 1, so deadline-free
// traffic is byte-identical to what older peers emit and accept; the
// decoder accepts both versions.
//
// Version 4 carries a trace context and appends two fields after
// Reason:
//
//	uvarint  deadline (may be zero in this version)
//	uvarint  trace context (root span ID; must be nonzero)
//
// A message encodes as version 4 only when TraceCtx is nonzero — i.e.
// only when span tracing is enabled — following the deadline precedent:
// untraced traffic stays byte-identical to versions 1/3, and a version-4
// payload with a zero trace context is malformed so every message still
// has exactly one canonical encoding.
//
// Version 5 carries the Paxos Commit decision-plane fields and appends,
// after Reason:
//
//	uvarint  deadline (may be zero in this version)
//	uvarint  trace context (may be zero in this version)
//	uvarint  ballot
//	uvarint  participant count; per participant: str site
//	uvarint  instance count; per instance:
//	           str      instance site
//	           uvarint  accepted ballot
//	           1 byte   vote (0 none, 1 prepared, 2 aborted)
//
// Version 5 is keyed to the message kind, not to field presence: every
// MsgPaxos* message encodes as version 5 and only MsgPaxos* messages
// may, so each message still has exactly one canonical encoding.
//
// Version 6 carries the quorum-replication / anti-entropy fields and
// appends, after Reason:
//
//	uvarint  deadline (may be zero in this version)
//	uvarint  trace context (may be zero in this version)
//	uvarint  outcome count; per outcome:
//	           str      transaction ID
//	           1 byte   committed (0 or 1)
//	uvarint  version count; per entry, sorted by item name:
//	           str      item
//	           uvarint  version
//
// Version 6 is keyed to the kind OR to field presence: every
// MsgAntiEntropy* message encodes as version 6, and a non-gossip message
// (read-rep and prepare carry replica versions under quorum replication)
// encodes as version 6 exactly when it has at least one outcome or
// version entry.  A version-6 payload that is neither a gossip kind nor
// carries either field is malformed, so each message still has exactly
// one canonical encoding.  The MsgPaxos* kinds never use version 6.
//
// Values entries are written in sorted item order, so encoding is
// canonical: equal messages produce identical bytes, and re-encoding a
// decoded message reproduces the source frame exactly.
//
// Decoding is defensive — frames arrive from a real socket and may be
// truncated, corrupted, or hostile.  Every failure returns (wrapped) one
// of the typed errors below; decoders never panic, and allocations are
// bounded by the input length regardless of what counts the header
// claims.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
	"time"

	"repro/internal/polyvalue"
	"repro/internal/protocol"
	"repro/internal/txn"
)

// Version is the baseline single-message payload version.
const Version = 1

// DeadlineVersion is the single-message payload version carrying a
// transaction deadline.  (2 is BatchVersion — the dispatch byte is
// shared across all payload kinds.)
const DeadlineVersion = 3

// TraceVersion is the single-message payload version carrying a trace
// context (plus the deadline field, which may be zero here).  Emitted
// only when span tracing stamps a message, so tracing-off traffic never
// changes shape.
const TraceVersion = 4

// PaxosVersion is the single-message payload version carrying the Paxos
// Commit fields (ballot, participant set, per-instance state).  Used by
// exactly the MsgPaxos* kinds — the kind, not field presence, selects
// this version.
const PaxosVersion = 5

// AntiEntropyVersion is the single-message payload version carrying the
// quorum-replication / gossip fields (transaction outcomes, item
// versions).  Used by every MsgAntiEntropy* kind, and by any other
// non-paxos kind whose message carries outcomes or versions — read
// replies and prepares do, under quorum replication.
const AntiEntropyVersion = 6

// MaxFrame is the default cap on payload size, applied by ReadMessage
// and DecodeFrame.  A peer announcing a larger frame is faulty or
// hostile; reading it would be an unbounded allocation.
const MaxFrame = 8 << 20

// frameHeader is the fixed frame prefix: length + checksum.
const frameHeader = 8

// Typed decode failures.  Callers match with errors.Is; the returned
// errors wrap these with positional detail.
var (
	// ErrTruncated reports input that ends mid-field (or mid-frame).
	ErrTruncated = errors.New("wire: truncated")
	// ErrOversize reports a frame whose announced payload exceeds the
	// size limit.
	ErrOversize = errors.New("wire: frame too large")
	// ErrChecksum reports a payload that fails CRC verification.
	ErrChecksum = errors.New("wire: checksum mismatch")
	// ErrVersion reports an unknown payload version byte.
	ErrVersion = errors.New("wire: unknown version")
	// ErrMalformed reports a structurally invalid payload (bad counts,
	// invalid polyvalue, trailing bytes).
	ErrMalformed = errors.New("wire: malformed payload")
)

// Message flag bits.
const (
	flagLock      = 1 << 0
	flagReadOnly  = 1 << 1
	flagCommitted = 1 << 2
)

// AppendMessage appends m's payload encoding to dst: version 1, version
// 3 when the message carries a deadline, or version 4 when it carries a
// trace context.
func AppendMessage(dst []byte, m protocol.Message) []byte {
	ver := byte(Version)
	if m.Deadline > 0 {
		ver = DeadlineVersion
	}
	if m.TraceCtx != 0 {
		ver = TraceVersion
	}
	if m.Kind.Paxos() {
		ver = PaxosVersion
	} else if m.Kind.AntiEntropy() || len(m.Versions) > 0 || len(m.Outcomes) > 0 {
		// The paxos kinds never carry gossip fields (the encoder keys
		// version 5 to the kind); everything else promotes to version 6
		// when outcomes or versions are present.
		ver = AntiEntropyVersion
	}
	dst = append(dst, ver, byte(m.Kind))
	dst = appendString(dst, string(m.TID))
	dst = appendString(dst, string(m.From))
	dst = appendString(dst, string(m.To))
	var flags byte
	if m.Lock {
		flags |= flagLock
	}
	if m.ReadOnly {
		flags |= flagReadOnly
	}
	if m.Committed {
		flags |= flagCommitted
	}
	dst = append(dst, flags)
	dst = binary.AppendUvarint(dst, uint64(len(m.Items)))
	for _, item := range m.Items {
		dst = appendString(dst, item)
	}
	dst = appendString(dst, m.Program)
	dst = appendString(dst, string(m.Coordinator))
	dst = appendString(dst, m.Reason)
	if ver != Version {
		dst = binary.AppendUvarint(dst, uint64(m.Deadline))
	}
	if ver == TraceVersion || ver == PaxosVersion || ver == AntiEntropyVersion {
		dst = binary.AppendUvarint(dst, m.TraceCtx)
	}
	if ver == AntiEntropyVersion {
		dst = binary.AppendUvarint(dst, uint64(len(m.Outcomes)))
		for _, o := range m.Outcomes {
			dst = appendString(dst, string(o.TID))
			if o.Committed {
				dst = append(dst, 1)
			} else {
				dst = append(dst, 0)
			}
		}
		dst = binary.AppendUvarint(dst, uint64(len(m.Versions)))
		for _, item := range sortedVersionKeys(m.Versions) {
			dst = appendString(dst, item)
			dst = binary.AppendUvarint(dst, m.Versions[item])
		}
	}
	if ver == PaxosVersion {
		dst = binary.AppendUvarint(dst, uint64(m.Ballot))
		dst = binary.AppendUvarint(dst, uint64(len(m.Participants)))
		for _, site := range m.Participants {
			dst = appendString(dst, string(site))
		}
		dst = binary.AppendUvarint(dst, uint64(len(m.PaxosState)))
		for _, inst := range m.PaxosState {
			dst = appendString(dst, string(inst.Instance))
			dst = binary.AppendUvarint(dst, uint64(inst.Ballot))
			dst = append(dst, byte(inst.Vote))
		}
	}
	dst = binary.AppendUvarint(dst, uint64(len(m.Values)))
	for _, item := range sortedKeys(m.Values) {
		dst = appendString(dst, item)
		dst = m.Values[item].AppendBinary(dst)
	}
	return dst
}

// EncodeMessage returns m's payload encoding.
func EncodeMessage(m protocol.Message) []byte {
	return AppendMessage(nil, m)
}

// DecodeMessage decodes one complete payload.  Trailing bytes are an
// error: a frame carries exactly one message.
func DecodeMessage(buf []byte) (protocol.Message, error) {
	m, n, err := decodeMessage(buf)
	if err != nil {
		return protocol.Message{}, err
	}
	if n != len(buf) {
		return protocol.Message{}, fmt.Errorf("%w: %d trailing bytes", ErrMalformed, len(buf)-n)
	}
	return m, nil
}

// decodeMessage decodes one payload from the front of buf, returning the
// message and bytes consumed.
func decodeMessage(buf []byte) (protocol.Message, int, error) {
	d := decoder{buf: buf}
	ver := d.byte("version")
	if d.err == nil && ver != Version && ver != DeadlineVersion && ver != TraceVersion && ver != PaxosVersion && ver != AntiEntropyVersion {
		return protocol.Message{}, 0, fmt.Errorf("%w: %d", ErrVersion, ver)
	}
	var m protocol.Message
	m.Kind = protocol.MsgKind(d.byte("kind"))
	if d.err == nil && m.Kind.Paxos() != (ver == PaxosVersion) {
		// Canonical: the paxos kinds use version 5 and nothing else does,
		// so every message has exactly one valid encoding.
		return protocol.Message{}, 0, fmt.Errorf("%w: kind %s in version %d", ErrMalformed, m.Kind, ver)
	}
	if d.err == nil && m.Kind.AntiEntropy() && ver != AntiEntropyVersion {
		// Canonical: the gossip kinds always use version 6 (their fields
		// may legitimately be empty, so the kind forces the version).
		return protocol.Message{}, 0, fmt.Errorf("%w: kind %s in version %d", ErrMalformed, m.Kind, ver)
	}
	m.TID = txn.ID(d.str("tid"))
	m.From = protocol.SiteID(d.str("from"))
	m.To = protocol.SiteID(d.str("to"))
	flags := d.byte("flags")
	m.Lock = flags&flagLock != 0
	m.ReadOnly = flags&flagReadOnly != 0
	m.Committed = flags&flagCommitted != 0
	if n := d.count("item count"); n > 0 {
		m.Items = make([]string, 0, n)
		for i := 0; i < n && d.err == nil; i++ {
			m.Items = append(m.Items, d.str("item"))
		}
	}
	m.Program = d.str("program")
	m.Coordinator = protocol.SiteID(d.str("coordinator"))
	m.Reason = d.str("reason")
	if ver != Version {
		m.Deadline = time.Duration(d.uvarint("deadline"))
		if d.err == nil {
			if ver == DeadlineVersion && m.Deadline <= 0 {
				// Canonical: a zero (or overflowed-negative) deadline must
				// use the version-1 form, so re-encoding reproduces frames.
				return protocol.Message{}, 0, fmt.Errorf("%w: non-positive deadline", ErrMalformed)
			}
			if ver != DeadlineVersion && m.Deadline < 0 {
				// Versions 4 and 5 allow a zero deadline (the trace context
				// or the kind alone forces the version) but never an
				// overflowed-negative one.
				return protocol.Message{}, 0, fmt.Errorf("%w: negative deadline", ErrMalformed)
			}
		}
	}
	if ver == TraceVersion || ver == PaxosVersion || ver == AntiEntropyVersion {
		m.TraceCtx = d.uvarint("trace context")
		if d.err == nil && ver == TraceVersion && m.TraceCtx == 0 {
			// Canonical: an untraced message must use version 1 or 3, so
			// re-encoding a decoded message reproduces the source frame.
			return protocol.Message{}, 0, fmt.Errorf("%w: zero trace context", ErrMalformed)
		}
	}
	if ver == AntiEntropyVersion {
		if n := d.count("outcome count"); n > 0 {
			m.Outcomes = make([]protocol.OutcomeRec, 0, n)
			for i := 0; i < n && d.err == nil; i++ {
				var o protocol.OutcomeRec
				o.TID = txn.ID(d.str("outcome tid"))
				b := d.byte("outcome committed")
				if d.err == nil && b > 1 {
					return protocol.Message{}, 0, fmt.Errorf("%w: outcome byte %d", ErrMalformed, b)
				}
				o.Committed = b == 1
				m.Outcomes = append(m.Outcomes, o)
			}
		}
		if n := d.count("version count"); n > 0 {
			m.Versions = make(map[string]uint64, n)
			for i := 0; i < n && d.err == nil; i++ {
				item := d.str("version item")
				v := d.uvarint("version")
				if d.err == nil {
					m.Versions[item] = v
				}
			}
		}
		if d.err == nil && !m.Kind.AntiEntropy() && len(m.Outcomes) == 0 && len(m.Versions) == 0 {
			// Canonical: a non-gossip message with neither field must use
			// a lower version, so every message has one valid encoding.
			return protocol.Message{}, 0, fmt.Errorf("%w: kind %s in version %d with no gossip fields", ErrMalformed, m.Kind, ver)
		}
	}
	if ver == PaxosVersion {
		ballot := d.uvarint("ballot")
		if d.err == nil && ballot > 0xffffffff {
			return protocol.Message{}, 0, fmt.Errorf("%w: ballot overflow", ErrMalformed)
		}
		m.Ballot = uint32(ballot)
		if n := d.count("participant count"); n > 0 {
			m.Participants = make([]protocol.SiteID, 0, n)
			for i := 0; i < n && d.err == nil; i++ {
				m.Participants = append(m.Participants, protocol.SiteID(d.str("participant")))
			}
		}
		if n := d.count("instance count"); n > 0 {
			m.PaxosState = make([]protocol.PaxosInst, 0, n)
			for i := 0; i < n && d.err == nil; i++ {
				var inst protocol.PaxosInst
				inst.Instance = protocol.SiteID(d.str("instance"))
				b := d.uvarint("instance ballot")
				if d.err == nil && b > 0xffffffff {
					return protocol.Message{}, 0, fmt.Errorf("%w: instance ballot overflow", ErrMalformed)
				}
				inst.Ballot = uint32(b)
				inst.Vote = protocol.Vote(d.byte("vote"))
				if d.err == nil && inst.Vote > protocol.VoteAborted {
					return protocol.Message{}, 0, fmt.Errorf("%w: vote %d", ErrMalformed, inst.Vote)
				}
				m.PaxosState = append(m.PaxosState, inst)
			}
		}
	}
	if n := d.count("value count"); n > 0 {
		m.Values = make(map[string]polyvalue.Poly, n)
		for i := 0; i < n && d.err == nil; i++ {
			item := d.str("value item")
			p := d.poly("value poly")
			if d.err == nil {
				m.Values[item] = p
			}
		}
	}
	if d.err != nil {
		return protocol.Message{}, 0, d.err
	}
	return m, d.off, nil
}

// AppendFrame appends the length-prefixed, checksummed frame for m.
func AppendFrame(dst []byte, m protocol.Message) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0) // header placeholder
	dst = AppendMessage(dst, m)
	payload := dst[start+frameHeader:]
	binary.BigEndian.PutUint32(dst[start:], uint32(len(payload)))
	binary.BigEndian.PutUint32(dst[start+4:], crc32.ChecksumIEEE(payload))
	return dst
}

// EncodeFrame returns the complete frame for m.
func EncodeFrame(m protocol.Message) []byte {
	return AppendFrame(nil, m)
}

// DecodeFrame decodes one frame from the front of buf, returning the
// message and the number of bytes consumed (header + payload).
func DecodeFrame(buf []byte) (protocol.Message, int, error) {
	if len(buf) < frameHeader {
		return protocol.Message{}, 0, fmt.Errorf("%w: frame header", ErrTruncated)
	}
	n := binary.BigEndian.Uint32(buf)
	if n > MaxFrame {
		return protocol.Message{}, 0, fmt.Errorf("%w: %d bytes (limit %d)", ErrOversize, n, MaxFrame)
	}
	if uint64(len(buf)-frameHeader) < uint64(n) {
		return protocol.Message{}, 0, fmt.Errorf("%w: frame payload", ErrTruncated)
	}
	payload := buf[frameHeader : frameHeader+int(n)]
	if sum := crc32.ChecksumIEEE(payload); sum != binary.BigEndian.Uint32(buf[4:]) {
		return protocol.Message{}, 0, fmt.Errorf("%w: got %08x want %08x",
			ErrChecksum, sum, binary.BigEndian.Uint32(buf[4:]))
	}
	m, err := DecodeMessage(payload)
	if err != nil {
		return protocol.Message{}, 0, err
	}
	return m, frameHeader + int(n), nil
}

// WriteMessage writes m's frame to w.
func WriteMessage(w io.Writer, m protocol.Message) error {
	_, err := w.Write(EncodeFrame(m))
	return err
}

// ReadMessage reads one frame from r.  maxFrame caps the payload length
// (≤ 0 means MaxFrame).  io.EOF is returned unwrapped when the stream
// ends cleanly at a frame boundary; mid-frame EOF is ErrTruncated.
func ReadMessage(r io.Reader, maxFrame int) (protocol.Message, error) {
	payload, err := readFrame(r, maxFrame)
	if err != nil {
		return protocol.Message{}, err
	}
	return DecodeMessage(payload)
}

// readFrame reads one checksummed frame off r and returns its verified
// payload.  io.EOF is returned unwrapped when the stream ends cleanly at
// a frame boundary.
func readFrame(r io.Reader, maxFrame int) ([]byte, error) {
	if maxFrame <= 0 {
		maxFrame = MaxFrame
	}
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: frame header: %v", ErrTruncated, err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > uint32(maxFrame) {
		return nil, fmt.Errorf("%w: %d bytes (limit %d)", ErrOversize, n, maxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: frame payload: %v", ErrTruncated, err)
	}
	if sum := crc32.ChecksumIEEE(payload); sum != binary.BigEndian.Uint32(hdr[4:]) {
		return nil, fmt.Errorf("%w: got %08x want %08x",
			ErrChecksum, sum, binary.BigEndian.Uint32(hdr[4:]))
	}
	return payload, nil
}

// ---------------------------------------------------------------------
// Decode plumbing
// ---------------------------------------------------------------------

// decoder walks a payload buffer, latching the first error; subsequent
// reads are no-ops so call sites stay linear.
type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) fail(what string, err error) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s at offset %d", err, what, d.off)
	}
}

func (d *decoder) byte(what string) byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.buf) {
		d.fail(what, ErrTruncated)
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}

// count reads a uvarint element count and bounds it by the remaining
// input: every element occupies at least one byte, so a count beyond
// that is lying and must not size an allocation.
func (d *decoder) count(what string) int {
	if d.err != nil {
		return 0
	}
	n, w := binary.Uvarint(d.buf[d.off:])
	if w <= 0 {
		d.fail(what, ErrTruncated)
		return 0
	}
	d.off += w
	if n > uint64(len(d.buf)-d.off) {
		d.fail(what, ErrMalformed)
		return 0
	}
	return int(n)
}

// uvarint reads a bare uvarint field (no trailing data implied).
func (d *decoder) uvarint(what string) uint64 {
	if d.err != nil {
		return 0
	}
	n, w := binary.Uvarint(d.buf[d.off:])
	if w <= 0 {
		d.fail(what, ErrTruncated)
		return 0
	}
	d.off += w
	return n
}

func (d *decoder) str(what string) string {
	if d.err != nil {
		return ""
	}
	n, w := binary.Uvarint(d.buf[d.off:])
	if w <= 0 {
		d.fail(what+" length", ErrTruncated)
		return ""
	}
	d.off += w
	if n > uint64(len(d.buf)-d.off) {
		d.fail(what, ErrTruncated)
		return ""
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

func (d *decoder) poly(what string) polyvalue.Poly {
	if d.err != nil {
		return polyvalue.Poly{}
	}
	p, n, err := polyvalue.DecodeBinary(d.buf[d.off:])
	if err != nil {
		d.fail(what+": "+err.Error(), ErrMalformed)
		return polyvalue.Poly{}
	}
	d.off += n
	return p
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func sortedKeys(m map[string]polyvalue.Poly) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedVersionKeys(m map[string]uint64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
