package wire

import (
	"bytes"
	"testing"

	"repro/internal/polyvalue"
	"repro/internal/value"
)

// FuzzMessageDecode throws arbitrary bytes at the frame decoder.  The
// decoder must never panic; any frame it accepts must contain only
// well-formed polyvalues and must re-encode to the exact accepted bytes
// (canonical form).
func FuzzMessageDecode(f *testing.F) {
	for _, m := range goldenMessages() {
		f.Add(EncodeFrame(m))
		f.Add(EncodeMessage(m))
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, n, err := DecodeFrame(data)
		if err != nil {
			return
		}
		if n < frameHeader || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		for item, p := range m.Values {
			if !p.WellFormed() {
				t.Fatalf("accepted ill-formed polyvalue for %q: %s", item, p)
			}
		}
		// Convergence: an accepted message re-encodes to a frame that
		// decodes to the same message, and that re-encoding is a fixed
		// point (byte-identical under a second round trip).  The input
		// itself may be non-canonical — over-long uvarints, unsorted
		// values — which decoding normalizes.
		enc := EncodeFrame(m)
		m2, n2, err := DecodeFrame(enc)
		if err != nil {
			t.Fatalf("re-decode of re-encoding failed: %v", err)
		}
		if n2 != len(enc) || !messagesEqual(m, m2) {
			t.Fatalf("re-encoding changed the message")
		}
		if !bytes.Equal(enc, EncodeFrame(m2)) {
			t.Fatalf("canonical form is not a fixed point")
		}
	})
}

// FuzzPaxosDecode focuses the payload decoder on version-5 (Paxos
// Commit) encodings: seeds are the paxos golden messages, and any
// accepted payload must satisfy the kind⇔version canonicality rule —
// paxos kinds re-encode to version 5, everything else to versions 1–4.
func FuzzPaxosDecode(f *testing.F) {
	for _, m := range goldenMessages() {
		if m.Kind.Paxos() {
			f.Add(EncodeMessage(m))
		}
	}
	f.Add([]byte{PaxosVersion})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeMessage(data)
		if err != nil {
			return
		}
		enc := EncodeMessage(m)
		if m.Kind.Paxos() != (enc[0] == PaxosVersion) {
			t.Fatalf("kind %s re-encoded as version %d", m.Kind, enc[0])
		}
		if !m.Kind.Paxos() && (m.Ballot != 0 || len(m.Participants) > 0 || len(m.PaxosState) > 0) {
			t.Fatalf("non-paxos kind %s decoded with paxos fields", m.Kind)
		}
		m2, err := DecodeMessage(enc)
		if err != nil {
			t.Fatalf("re-decode of re-encoding failed: %v", err)
		}
		if !messagesEqual(m, m2) {
			t.Fatalf("re-encoding changed the message")
		}
		if !bytes.Equal(enc, EncodeMessage(m2)) {
			t.Fatalf("canonical form is not a fixed point")
		}
	})
}

// FuzzAntiEntropyDecode focuses the payload decoder on version-6
// (gossip) encodings: seeds are the anti-entropy golden messages, and
// any accepted payload must satisfy the canonicality rules — gossip
// kinds re-encode to version 6, a version-6 non-gossip kind must carry
// at least one gossip field, and paxos kinds never carry them.
func FuzzAntiEntropyDecode(f *testing.F) {
	for _, m := range goldenMessages() {
		if m.Kind.AntiEntropy() || len(m.Versions) > 0 || len(m.Outcomes) > 0 {
			f.Add(EncodeMessage(m))
		}
	}
	f.Add([]byte{AntiEntropyVersion})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeMessage(data)
		if err != nil {
			return
		}
		enc := EncodeMessage(m)
		hasGossip := len(m.Versions) > 0 || len(m.Outcomes) > 0
		if m.Kind.AntiEntropy() && enc[0] != AntiEntropyVersion {
			t.Fatalf("gossip kind %s re-encoded as version %d", m.Kind, enc[0])
		}
		if m.Kind.Paxos() && hasGossip {
			t.Fatalf("paxos kind %s decoded with gossip fields", m.Kind)
		}
		if !m.Kind.AntiEntropy() && !m.Kind.Paxos() && hasGossip != (enc[0] == AntiEntropyVersion) {
			t.Fatalf("kind %s gossip=%v re-encoded as version %d", m.Kind, hasGossip, enc[0])
		}
		m2, err := DecodeMessage(enc)
		if err != nil {
			t.Fatalf("re-decode of re-encoding failed: %v", err)
		}
		if !messagesEqual(m, m2) {
			t.Fatalf("re-encoding changed the message")
		}
		if !bytes.Equal(enc, EncodeMessage(m2)) {
			t.Fatalf("canonical form is not a fixed point")
		}
	})
}

// FuzzPolyDecode fuzzes the polyvalue segment of the wire format — the
// same canonical form messages embed in their Values maps.  Accepted
// polyvalues must be well-formed and canonical.
func FuzzPolyDecode(f *testing.F) {
	seeds := []polyvalue.Poly{
		polyvalue.Simple(value.Int(100)),
		polyvalue.Simple(value.Nil{}),
		polyvalue.Uncertain("T1", polyvalue.Simple(value.Int(150)), polyvalue.Simple(value.Int(100))),
		polyvalue.Uncertain("T2",
			polyvalue.Uncertain("T3", polyvalue.Simple(value.Str("a")), polyvalue.Simple(value.Bool(true))),
			polyvalue.Simple(value.Float(1.5))),
	}
	for _, p := range seeds {
		f.Add(p.AppendBinary(nil))
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, n, err := polyvalue.DecodeBinary(data)
		if err != nil {
			return
		}
		if n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		if !p.WellFormed() {
			t.Fatalf("accepted ill-formed polyvalue %s", p)
		}
		// Decoding the canonical re-encoding is the identity.
		again, _, err := polyvalue.DecodeBinary(p.AppendBinary(nil))
		if err != nil {
			t.Fatalf("re-decode of canonical form failed: %v", err)
		}
		if !p.Equal(again) {
			t.Fatalf("canonical re-encode changed the polyvalue")
		}
	})
}
