package wire

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/polyvalue"
	"repro/internal/protocol"
	"repro/internal/txn"
	"repro/internal/value"
)

// randMessage wraps protocol.Message with a quick.Generator that covers
// every field, including polyvalued Values maps built through the real
// constructors (so they satisfy the well-formedness invariant the
// decoder enforces).
type randMessage struct {
	M protocol.Message
}

var kinds = []protocol.MsgKind{
	protocol.MsgReadReq, protocol.MsgReadRep, protocol.MsgPrepare,
	protocol.MsgReady, protocol.MsgRefuse, protocol.MsgComplete,
	protocol.MsgAbort, protocol.MsgOutcomeReq, protocol.MsgOutcomeInfo,
	protocol.MsgOutcomeAck,
	protocol.MsgPaxosBegin, protocol.MsgPaxosPrepare, protocol.MsgPaxosPromise,
	protocol.MsgPaxosAccept, protocol.MsgPaxosAccepted, protocol.MsgPaxosReject,
	protocol.MsgPaxosDecision,
	protocol.MsgAntiEntropyDigest, protocol.MsgAntiEntropyReply,
	protocol.MsgAntiEntropyUpdate, protocol.MsgReadRelease,
}

func randString(r *rand.Rand, max int) string {
	n := r.Intn(max + 1)
	b := make([]byte, n)
	for i := range b {
		// Bias toward printable but include arbitrary bytes.
		if r.Intn(4) == 0 {
			b[i] = byte(r.Intn(256))
		} else {
			b[i] = byte('a' + r.Intn(26))
		}
	}
	return string(b)
}

func randValue(r *rand.Rand) value.V {
	switch r.Intn(5) {
	case 0:
		return value.Nil{}
	case 1:
		return value.Int(r.Int63n(2000) - 1000)
	case 2:
		return value.Float(r.NormFloat64() * 100)
	case 3:
		return value.Str(randString(r, 12))
	default:
		return value.Bool(r.Intn(2) == 0)
	}
}

// randPoly builds a well-formed polyvalue by wrapping up to depth layers
// of uncertainty around a simple value, exactly as in-doubt installs do.
func randPoly(r *rand.Rand) polyvalue.Poly {
	p := polyvalue.Simple(randValue(r))
	depth := r.Intn(3)
	for i := 0; i < depth; i++ {
		t := txn.ID(fmt.Sprintf("T%d-%d", r.Intn(100), i))
		p = polyvalue.Uncertain(t, polyvalue.Simple(randValue(r)), p)
	}
	return p
}

func (randMessage) Generate(r *rand.Rand, _ int) reflect.Value {
	m := protocol.Message{
		Kind:        kinds[r.Intn(len(kinds))],
		TID:         txn.ID(randString(r, 16)),
		From:        protocol.SiteID(randString(r, 8)),
		To:          protocol.SiteID(randString(r, 8)),
		Lock:        r.Intn(2) == 0,
		ReadOnly:    r.Intn(2) == 0,
		Committed:   r.Intn(2) == 0,
		Program:     randString(r, 64),
		Coordinator: protocol.SiteID(randString(r, 8)),
		Reason:      randString(r, 32),
	}
	if n := r.Intn(4); n > 0 {
		m.Items = make([]string, n)
		for i := range m.Items {
			m.Items[i] = randString(r, 10)
		}
	}
	if n := r.Intn(4); n > 0 {
		m.Values = make(map[string]polyvalue.Poly, n)
		for i := 0; i < n; i++ {
			m.Values[fmt.Sprintf("%s%d", randString(r, 6), i)] = randPoly(r)
		}
	}
	// The paxos fields ride only on the paxos kinds (version 5); the
	// encoder keys the version to the kind, so setting them elsewhere
	// would produce a message with no valid encoding.
	if m.Kind.Paxos() {
		m.Ballot = uint32(r.Intn(1 << 20))
		if n := r.Intn(4); n > 0 {
			m.Participants = make([]protocol.SiteID, n)
			for i := range m.Participants {
				m.Participants[i] = protocol.SiteID(randString(r, 6))
			}
		}
		if n := r.Intn(4); n > 0 {
			m.PaxosState = make([]protocol.PaxosInst, n)
			for i := range m.PaxosState {
				m.PaxosState[i] = protocol.PaxosInst{
					Instance: protocol.SiteID(randString(r, 6)),
					Ballot:   uint32(r.Intn(1 << 16)),
					Vote:     protocol.Vote(r.Intn(3)),
				}
			}
		}
	}
	// The gossip fields ride on the anti-entropy kinds (always version 6)
	// and optionally on others — any non-paxos message carrying them is
	// promoted to version 6 by the encoder.  Paxos kinds stay version 5,
	// so the fields must be zero there.
	if !m.Kind.Paxos() && (m.Kind.AntiEntropy() || r.Intn(3) == 0) {
		if n := r.Intn(4); n > 0 {
			m.Versions = make(map[string]uint64, n)
			for i := 0; i < n; i++ {
				m.Versions[fmt.Sprintf("%s%d", randString(r, 6), i)] = uint64(r.Intn(1 << 16))
			}
		}
		if n := r.Intn(4); n > 0 {
			m.Outcomes = make([]protocol.OutcomeRec, n)
			for i := range m.Outcomes {
				m.Outcomes[i] = protocol.OutcomeRec{
					TID:       txn.ID(randString(r, 10)),
					Committed: r.Intn(2) == 0,
				}
			}
		}
	}
	return reflect.ValueOf(randMessage{M: m})
}

// TestPropRoundTripIdentity: encode→decode is the identity on random
// messages, and the encoding is canonical (re-encode is byte-identical).
func TestPropRoundTripIdentity(t *testing.T) {
	prop := func(rm randMessage) bool {
		payload := EncodeMessage(rm.M)
		got, err := DecodeMessage(payload)
		if err != nil {
			t.Logf("decode failed: %v", err)
			return false
		}
		if !messagesEqual(rm.M, got) {
			t.Logf("mismatch:\n in: %+v\nout: %+v", rm.M, got)
			return false
		}
		again := EncodeMessage(got)
		if len(again) != len(payload) {
			return false
		}
		for i := range again {
			if again[i] != payload[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPropFrameRoundTrip: the framed path round-trips too.
func TestPropFrameRoundTrip(t *testing.T) {
	prop := func(rm randMessage) bool {
		m, n, err := DecodeFrame(EncodeFrame(rm.M))
		return err == nil && n == len(EncodeFrame(rm.M)) && messagesEqual(rm.M, m)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPropMutatedFrameNeverPanics: decoding any single-byte mutation (or
// truncation) of a valid frame returns an error or a well-formed message
// — never a panic, never an ill-formed polyvalue.
func TestPropMutatedFrameNeverPanics(t *testing.T) {
	prop := func(rm randMessage, mutPos uint16, mutBit uint8, cut uint16) bool {
		frame := EncodeFrame(rm.M)
		mutated := append([]byte{}, frame...)
		mutated[int(mutPos)%len(mutated)] ^= 1 << (mutBit % 8)
		if int(cut)%(len(mutated)+1) < len(mutated) {
			mutated = mutated[:int(cut)%(len(mutated)+1)]
		}
		m, _, err := DecodeFrame(mutated)
		if err != nil {
			return true
		}
		for _, p := range m.Values {
			if !p.WellFormed() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
