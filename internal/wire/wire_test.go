package wire

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"repro/internal/condition"
	"repro/internal/polyvalue"
	"repro/internal/protocol"
	"repro/internal/txn"
	"repro/internal/value"
)

// goldenMessages covers every message kind and every populated field,
// including polyvalued Values maps.  Shared with the fuzz seed corpus.
func goldenMessages() []protocol.Message {
	poly := polyvalue.Uncertain("T7",
		polyvalue.Simple(value.Int(150)),
		polyvalue.Simple(value.Int(100)))
	nested := polyvalue.Uncertain("T9", poly, polyvalue.Simple(value.Str("x")))
	return []protocol.Message{
		{},
		{Kind: protocol.MsgReadReq, TID: "t1", From: "A", To: "B",
			Items: []string{"acct0", "acct1"}, Lock: true, Coordinator: "A"},
		{Kind: protocol.MsgReadRep, TID: "t1", From: "B", To: "A",
			Values: map[string]polyvalue.Poly{
				"acct0": polyvalue.Simple(value.Int(100)),
				"acct1": poly,
			}},
		{Kind: protocol.MsgPrepare, TID: "t2", From: "A", To: "C",
			Items:   []string{"acct2"},
			Program: "acct2 = acct2 - 50 if acct2 >= 50",
			Values: map[string]polyvalue.Poly{
				"acct0": nested,
				"f":     polyvalue.Simple(value.Float(2.5)),
				"b":     polyvalue.Simple(value.Bool(true)),
				"n":     polyvalue.Simple(value.Nil{}),
			},
			Coordinator: "A"},
		{Kind: protocol.MsgReady, TID: "t2", From: "C", To: "A", ReadOnly: true},
		{Kind: protocol.MsgRefuse, TID: "t2", From: "C", To: "A",
			Reason: "lock conflict at C"},
		{Kind: protocol.MsgComplete, TID: "t2", From: "A", To: "C", Committed: true},
		{Kind: protocol.MsgAbort, TID: "t2", From: "A", To: "C"},
		{Kind: protocol.MsgOutcomeReq, TID: "t3", From: "C", To: "A"},
		{Kind: protocol.MsgOutcomeInfo, TID: "t3", From: "A", To: "C", Committed: true},
		{Kind: protocol.MsgOutcomeAck, TID: "t3", From: "C", To: "A"},
		// Version 3: deadline-carrying traffic.
		{Kind: protocol.MsgReadReq, TID: "t4", From: "A", To: "B",
			Items: []string{"acct0"}, Lock: true, Coordinator: "A",
			Deadline: 250 * 1e6},
		// Version 4: trace-context-carrying traffic, with and without a
		// deadline riding along.
		{Kind: protocol.MsgPrepare, TID: "t5", From: "A", To: "C",
			Items: []string{"acct2"}, Program: "acct2 = acct2 + 1",
			Coordinator: "A", Deadline: 500 * 1e6, TraceCtx: 0x7e57_0001},
		{Kind: protocol.MsgReadReq, TID: "t5", From: "A", To: "B",
			Items: []string{"acct1"}, Lock: true, Coordinator: "A",
			TraceCtx: 1},
		// Version 5: the Paxos Commit decision plane, every kind.
		{Kind: protocol.MsgPaxosBegin, TID: "t6", From: "A", To: "D",
			Coordinator: "A", Participants: []protocol.SiteID{"A", "B", "C"}},
		{Kind: protocol.MsgPaxosPrepare, TID: "t6", From: "B", To: "D",
			Ballot: 7},
		{Kind: protocol.MsgPaxosPromise, TID: "t6", From: "D", To: "B",
			Ballot:       7,
			Participants: []protocol.SiteID{"A", "B", "C"},
			PaxosState: []protocol.PaxosInst{
				{Instance: "B", Ballot: 0, Vote: protocol.VotePrepared},
				{Instance: "C", Ballot: 4, Vote: protocol.VoteAborted},
			}},
		{Kind: protocol.MsgPaxosAccept, TID: "t6", From: "B", To: "D",
			Ballot: 0, Coordinator: "A",
			PaxosState: []protocol.PaxosInst{
				{Instance: "B", Ballot: 0, Vote: protocol.VotePrepared},
			},
			TraceCtx: 0x7e57_0002},
		{Kind: protocol.MsgPaxosAccepted, TID: "t6", From: "D", To: "A",
			Ballot: 0,
			PaxosState: []protocol.PaxosInst{
				{Instance: "B", Ballot: 0, Vote: protocol.VotePrepared},
			}},
		{Kind: protocol.MsgPaxosReject, TID: "t6", From: "D", To: "B",
			Ballot: 12},
		{Kind: protocol.MsgPaxosDecision, TID: "t6", From: "A", To: "D",
			Committed: true, Reason: "all prepared"},
		// Version 6: the anti-entropy gossip plane, every kind — including
		// an empty digest (the kind alone forces the version).
		{Kind: protocol.MsgAntiEntropyDigest, From: "A", To: "B"},
		{Kind: protocol.MsgAntiEntropyDigest, From: "A", To: "B",
			Outcomes: []protocol.OutcomeRec{
				{TID: "t1", Committed: true},
				{TID: "t2", Committed: false},
			},
			Versions: map[string]uint64{"bal": 3, "seats": 12}},
		{Kind: protocol.MsgAntiEntropyReply, From: "B", To: "A",
			Outcomes: []protocol.OutcomeRec{{TID: "t9", Committed: true}},
			Items:    []string{"bal"},
			Versions: map[string]uint64{"seats": 13},
			Values: map[string]polyvalue.Poly{
				"seats": polyvalue.Simple(value.Int(42)),
			}},
		{Kind: protocol.MsgAntiEntropyUpdate, From: "A", To: "B",
			Versions: map[string]uint64{"bal": 4},
			Values: map[string]polyvalue.Poly{
				"bal": polyvalue.Simple(value.Int(60)),
			}},
		// Version 6 on non-gossip kinds: quorum replication stamps replica
		// versions on read replies and prepares.
		{Kind: protocol.MsgReadRep, TID: "t7", From: "B", To: "A",
			Values: map[string]polyvalue.Poly{
				"bal_r1": polyvalue.Simple(value.Int(100)),
			},
			Versions: map[string]uint64{"bal_r1": 7}},
		{Kind: protocol.MsgPrepare, TID: "t8", From: "A", To: "C",
			Items: []string{"bal_r2"}, Program: "bal_r2 = 50",
			Coordinator: "A", Deadline: 250 * 1e6, TraceCtx: 0x7e57_0003,
			Versions: map[string]uint64{"bal_r2": 8}},
	}
}

// messagesEqual compares semantically: nil and empty Items/Values are
// the same message on the wire.
func messagesEqual(a, b protocol.Message) bool {
	if a.Kind != b.Kind || a.TID != b.TID || a.From != b.From || a.To != b.To ||
		a.Lock != b.Lock || a.ReadOnly != b.ReadOnly || a.Committed != b.Committed ||
		a.Program != b.Program || a.Coordinator != b.Coordinator || a.Reason != b.Reason ||
		a.Deadline != b.Deadline || a.TraceCtx != b.TraceCtx || a.Ballot != b.Ballot {
		return false
	}
	if len(a.Items) != len(b.Items) {
		return false
	}
	for i := range a.Items {
		if a.Items[i] != b.Items[i] {
			return false
		}
	}
	if len(a.Participants) != len(b.Participants) {
		return false
	}
	for i := range a.Participants {
		if a.Participants[i] != b.Participants[i] {
			return false
		}
	}
	if len(a.PaxosState) != len(b.PaxosState) {
		return false
	}
	for i := range a.PaxosState {
		if a.PaxosState[i] != b.PaxosState[i] {
			return false
		}
	}
	if len(a.Values) != len(b.Values) {
		return false
	}
	for k, v := range a.Values {
		w, ok := b.Values[k]
		if !ok || !v.Equal(w) {
			return false
		}
	}
	if len(a.Outcomes) != len(b.Outcomes) {
		return false
	}
	for i := range a.Outcomes {
		if a.Outcomes[i] != b.Outcomes[i] {
			return false
		}
	}
	if len(a.Versions) != len(b.Versions) {
		return false
	}
	for k, v := range a.Versions {
		if w, ok := b.Versions[k]; !ok || v != w {
			return false
		}
	}
	return true
}

func TestRoundTripGolden(t *testing.T) {
	for i, m := range goldenMessages() {
		payload := EncodeMessage(m)
		got, err := DecodeMessage(payload)
		if err != nil {
			t.Fatalf("msg %d: decode: %v", i, err)
		}
		if !messagesEqual(m, got) {
			t.Errorf("msg %d: round trip mismatch\n in: %+v\nout: %+v", i, m, got)
		}
		// Canonical: re-encoding the decoded message is byte-identical.
		if again := EncodeMessage(got); !bytes.Equal(payload, again) {
			t.Errorf("msg %d: re-encode not canonical", i)
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	msgs := goldenMessages()
	var stream []byte
	for _, m := range msgs {
		stream = AppendFrame(stream, m)
	}
	// Decode back-to-back frames from one buffer.
	off := 0
	for i, want := range msgs {
		got, n, err := DecodeFrame(stream[off:])
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !messagesEqual(want, got) {
			t.Errorf("frame %d mismatch", i)
		}
		off += n
	}
	if off != len(stream) {
		t.Errorf("consumed %d of %d bytes", off, len(stream))
	}
	// And through an io.Reader.
	r := bytes.NewReader(stream)
	for i, want := range msgs {
		got, err := ReadMessage(r, 0)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if !messagesEqual(want, got) {
			t.Errorf("read %d mismatch", i)
		}
	}
	if _, err := ReadMessage(r, 0); err != io.EOF {
		t.Errorf("want clean EOF, got %v", err)
	}
}

func TestDecodeErrors(t *testing.T) {
	m := goldenMessages()[3] // prepare with polyvalues
	frame := EncodeFrame(m)

	t.Run("truncated", func(t *testing.T) {
		for n := 0; n < len(frame); n++ {
			_, _, err := DecodeFrame(frame[:n])
			if err == nil {
				t.Fatalf("truncation to %d bytes accepted", n)
			}
		}
		// Mid-frame EOF over a reader.
		_, err := ReadMessage(bytes.NewReader(frame[:len(frame)-3]), 0)
		if !errors.Is(err, ErrTruncated) {
			t.Errorf("reader truncation: got %v", err)
		}
	})

	t.Run("checksum", func(t *testing.T) {
		bad := append([]byte{}, frame...)
		bad[len(bad)-1] ^= 0x40
		if _, _, err := DecodeFrame(bad); !errors.Is(err, ErrChecksum) {
			t.Errorf("got %v, want ErrChecksum", err)
		}
		if _, err := ReadMessage(bytes.NewReader(bad), 0); !errors.Is(err, ErrChecksum) {
			t.Errorf("reader: got %v, want ErrChecksum", err)
		}
	})

	t.Run("oversize", func(t *testing.T) {
		bad := append([]byte{}, frame...)
		bad[0], bad[1] = 0xff, 0xff // claim a ~4 GiB payload
		if _, _, err := DecodeFrame(bad); !errors.Is(err, ErrOversize) {
			t.Errorf("got %v, want ErrOversize", err)
		}
		if _, err := ReadMessage(bytes.NewReader(frame), 8); !errors.Is(err, ErrOversize) {
			t.Errorf("reader limit: got %v, want ErrOversize", err)
		}
	})

	t.Run("version", func(t *testing.T) {
		payload := EncodeMessage(m)
		payload[0] = 99
		if _, err := DecodeMessage(payload); !errors.Is(err, ErrVersion) {
			t.Errorf("got %v, want ErrVersion", err)
		}
	})

	t.Run("trailing", func(t *testing.T) {
		payload := append(EncodeMessage(m), 0xaa)
		if _, err := DecodeMessage(payload); !errors.Is(err, ErrMalformed) {
			t.Errorf("got %v, want ErrMalformed", err)
		}
	})

	t.Run("lying-count", func(t *testing.T) {
		// A payload that claims 2^60 items must fail fast, not allocate.
		payload := []byte{Version, byte(protocol.MsgReadReq)}
		payload = append(payload, 0, 0, 0) // empty tid/from/to
		payload = append(payload, 0)       // flags
		payload = append(payload, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x10)
		if _, err := DecodeMessage(payload); !errors.Is(err, ErrMalformed) {
			t.Errorf("got %v, want ErrMalformed", err)
		}
	})

	t.Run("paxos-kind-wrong-version", func(t *testing.T) {
		// A paxos kind must use version 5 and nothing else may: flipping
		// the version byte either way is malformed, not just non-canonical.
		paxos := EncodeMessage(protocol.Message{
			Kind: protocol.MsgPaxosReject, TID: "t", From: "D", To: "B", Ballot: 3})
		if paxos[0] != PaxosVersion {
			t.Fatalf("paxos message encoded as version %d", paxos[0])
		}
		demoted := append([]byte{}, paxos...)
		demoted[0] = Version
		if _, err := DecodeMessage(demoted); !errors.Is(err, ErrMalformed) {
			t.Errorf("paxos kind in v1: got %v, want ErrMalformed", err)
		}
		plain := EncodeMessage(goldenMessages()[1])
		promoted := append([]byte{}, plain...)
		promoted[0] = PaxosVersion
		if _, err := DecodeMessage(promoted); !errors.Is(err, ErrMalformed) {
			t.Errorf("plain kind in v5: got %v, want ErrMalformed", err)
		}
	})

	t.Run("ae-kind-wrong-version", func(t *testing.T) {
		// A gossip kind must use version 6; and a version-6 payload for a
		// plain kind must carry at least one outcome or version entry.
		ae := EncodeMessage(protocol.Message{
			Kind: protocol.MsgAntiEntropyDigest, From: "A", To: "B"})
		if ae[0] != AntiEntropyVersion {
			t.Fatalf("gossip message encoded as version %d", ae[0])
		}
		demoted := append([]byte{}, ae...)
		demoted[0] = Version
		if _, err := DecodeMessage(demoted); !errors.Is(err, ErrMalformed) {
			t.Errorf("gossip kind in v1: got %v, want ErrMalformed", err)
		}
		demoted[0] = PaxosVersion
		if _, err := DecodeMessage(demoted); !errors.Is(err, ErrMalformed) {
			t.Errorf("gossip kind in v5: got %v, want ErrMalformed", err)
		}
		// A non-gossip v6 payload with no gossip fields: build a read-req
		// with the v6 layout (deadline 0, tracectx 0, no outcomes, no
		// versions) by hand.
		empty := []byte{AntiEntropyVersion, byte(protocol.MsgReadReq)}
		empty = appendString(empty, "t")
		empty = appendString(empty, "A")
		empty = appendString(empty, "B")
		empty = append(empty, 0) // flags
		empty = append(empty, 0) // items
		empty = appendString(empty, "")
		empty = appendString(empty, "")
		empty = appendString(empty, "")
		empty = append(empty, 0, 0, 0, 0) // deadline, tracectx, outcomes, versions
		empty = append(empty, 0)          // values
		if _, err := DecodeMessage(empty); !errors.Is(err, ErrMalformed) {
			t.Errorf("fieldless plain kind in v6: got %v, want ErrMalformed", err)
		}
	})

	t.Run("ae-bad-outcome-byte", func(t *testing.T) {
		m := protocol.Message{Kind: protocol.MsgAntiEntropyDigest, From: "A", To: "B",
			Outcomes: []protocol.OutcomeRec{{TID: "t", Committed: true}}}
		payload := EncodeMessage(m)
		// The committed byte sits right before the version count and the
		// empty value count.
		bad := append([]byte{}, payload...)
		bad[len(bad)-3] = 7
		if _, err := DecodeMessage(bad); !errors.Is(err, ErrMalformed) {
			t.Errorf("outcome byte 7: got %v, want ErrMalformed", err)
		}
	})

	t.Run("paxos-bad-vote", func(t *testing.T) {
		m := protocol.Message{Kind: protocol.MsgPaxosAccepted, TID: "t",
			From: "D", To: "A",
			PaxosState: []protocol.PaxosInst{{Instance: "B", Vote: protocol.VotePrepared}}}
		payload := EncodeMessage(m)
		// The vote byte is the last byte of the payload's paxos section,
		// followed only by the empty value count.
		bad := append([]byte{}, payload...)
		bad[len(bad)-2] = 9
		if _, err := DecodeMessage(bad); !errors.Is(err, ErrMalformed) {
			t.Errorf("vote 9: got %v, want ErrMalformed", err)
		}
	})

	t.Run("bad-poly", func(t *testing.T) {
		// An incomplete polyvalue (conditions not complete/disjoint) must
		// be rejected at decode, not admitted into a store.  Raw bad
		// polyvalue bytes: pair count 1, value int 1, condition with one
		// positive literal "T" — holds only if T commits.
		raw := []byte{1}
		raw = append(raw, value.MarshalBinary(value.Int(1))...)
		c := condition.Committed("T")
		raw = c.AppendBinary(raw)
		// Splice: a read-rep whose single value is the raw poly.
		spliced := []byte{Version, byte(protocol.MsgReadRep)}
		spliced = appendString(spliced, "t")
		spliced = appendString(spliced, "")
		spliced = appendString(spliced, "")
		spliced = append(spliced, 0) // flags
		spliced = append(spliced, 0) // items
		spliced = appendString(spliced, "")
		spliced = appendString(spliced, "")
		spliced = appendString(spliced, "")
		spliced = append(spliced, 1) // one value
		spliced = appendString(spliced, "item")
		spliced = append(spliced, raw...)
		if _, err := DecodeMessage(spliced); !errors.Is(err, ErrMalformed) {
			t.Errorf("got %v, want ErrMalformed", err)
		}
	})
}

func TestEncodingIsCanonical(t *testing.T) {
	// Two equal Values maps built in different insertion orders encode
	// identically (sorted item order).
	a := map[string]polyvalue.Poly{}
	b := map[string]polyvalue.Poly{}
	items := []string{"z", "a", "m", "q"}
	for _, it := range items {
		a[it] = polyvalue.Simple(value.Str(it))
	}
	for i := len(items) - 1; i >= 0; i-- {
		b[items[i]] = polyvalue.Simple(value.Str(items[i]))
	}
	ma := protocol.Message{Kind: protocol.MsgReadRep, TID: "t", Values: a}
	mb := protocol.Message{Kind: protocol.MsgReadRep, TID: "t", Values: b}
	if !bytes.Equal(EncodeMessage(ma), EncodeMessage(mb)) {
		t.Error("insertion order leaked into the encoding")
	}
}

func TestOversizeNeverBuffered(t *testing.T) {
	// ReadMessage must reject before reading (or allocating) the payload.
	hdr := make([]byte, frameHeader)
	hdr[0] = 0xff // 0xff000000 bytes claimed
	r := io.MultiReader(bytes.NewReader(hdr), neverEnding{})
	if _, err := ReadMessage(r, 0); !errors.Is(err, ErrOversize) {
		t.Fatalf("got %v, want ErrOversize", err)
	}
}

// neverEnding would feed unbounded data if the reader tried to buffer an
// oversize payload.
type neverEnding struct{}

func (neverEnding) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = 0
	}
	return len(p), nil
}

func TestLongStringsRoundTrip(t *testing.T) {
	m := protocol.Message{
		Kind:    protocol.MsgPrepare,
		TID:     txn.ID("t-" + strings.Repeat("x", 300)),
		Program: strings.Repeat("a = a + 1; ", 1000),
	}
	got, err := DecodeMessage(EncodeMessage(m))
	if err != nil {
		t.Fatal(err)
	}
	if !messagesEqual(m, got) {
		t.Error("long-string round trip mismatch")
	}
}
