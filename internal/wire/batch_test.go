package wire

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/polyvalue"
	"repro/internal/protocol"
	"repro/internal/value"
)

func TestBatchRoundTrip(t *testing.T) {
	msgs := goldenMessages()
	frame := EncodeBatchFrame(msgs)
	payload, err := readFrame(bytes.NewReader(frame), 0)
	if err != nil {
		t.Fatalf("readFrame: %v", err)
	}
	got, err := DecodeBatch(payload)
	if err != nil {
		t.Fatalf("DecodeBatch: %v", err)
	}
	if len(got) != len(msgs) {
		t.Fatalf("decoded %d messages, want %d", len(got), len(msgs))
	}
	for i := range msgs {
		if !messagesEqual(msgs[i], got[i]) {
			t.Errorf("msg %d: round trip mismatch\n in: %+v\nout: %+v", i, msgs[i], got[i])
		}
	}
	// Canonical: re-encoding the decoded batch is byte-identical.
	if again := EncodeBatchFrame(got); !bytes.Equal(frame, again) {
		t.Error("re-encoded batch frame not canonical")
	}
}

func TestBatchSingleElement(t *testing.T) {
	m := goldenMessages()[3] // prepare with values: the biggest one
	got, err := DecodeBatch(EncodeBatch([]protocol.Message{m}))
	if err != nil {
		t.Fatalf("DecodeBatch: %v", err)
	}
	if len(got) != 1 || !messagesEqual(m, got[0]) {
		t.Fatalf("one-element batch mismatch: %+v", got)
	}
}

// TestReadMessagesMixedStream interleaves single-message and batch
// frames on one stream, as a TCP connection with intermittent
// coalescing produces.
func TestReadMessagesMixedStream(t *testing.T) {
	msgs := goldenMessages()
	var stream []byte
	stream = AppendFrame(stream, msgs[1])
	stream = AppendBatchFrame(stream, msgs[2:5])
	stream = AppendFrame(stream, msgs[5])
	stream = AppendBatchFrame(stream, msgs[6:8])

	r := bytes.NewReader(stream)
	var got []protocol.Message
	for {
		batch, err := ReadMessages(r, 0)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("ReadMessages: %v", err)
		}
		got = append(got, batch...)
	}
	want := msgs[1:8]
	if len(got) != len(want) {
		t.Fatalf("read %d messages, want %d", len(got), len(want))
	}
	for i := range want {
		if !messagesEqual(want[i], got[i]) {
			t.Errorf("msg %d mismatch", i)
		}
	}
}

// TestDecodePayloadDispatch routes each payload kind to the right
// decoder and rejects unknown versions.
func TestDecodePayloadDispatch(t *testing.T) {
	m := goldenMessages()[1]
	single, err := DecodePayload(EncodeMessage(m))
	if err != nil || len(single) != 1 || !messagesEqual(m, single[0]) {
		t.Fatalf("single dispatch: got %v, err %v", single, err)
	}
	batch, err := DecodePayload(EncodeBatch([]protocol.Message{m, m}))
	if err != nil || len(batch) != 2 {
		t.Fatalf("batch dispatch: got %v, err %v", batch, err)
	}
	if _, err := DecodePayload([]byte{99, 0, 0}); !errors.Is(err, ErrVersion) {
		t.Errorf("unknown version: got %v, want ErrVersion", err)
	}
	if _, err := DecodePayload(nil); !errors.Is(err, ErrTruncated) {
		t.Errorf("empty payload: got %v, want ErrTruncated", err)
	}
}

// TestDecodePayloadPaxosVersion: an unbatched version-5 frame must
// dispatch to the single-message decoder — paxos traffic below the
// coalescing threshold rides exactly this path.
func TestDecodePayloadPaxosVersion(t *testing.T) {
	m := protocol.Message{
		Kind: protocol.MsgPaxosAccept, TID: "t", From: "B", To: "D",
		Ballot: 7, Coordinator: "A",
		PaxosState: []protocol.PaxosInst{{Instance: "B", Ballot: 7, Vote: protocol.VotePrepared}},
	}
	got, err := DecodePayload(EncodeMessage(m))
	if err != nil || len(got) != 1 || !messagesEqual(m, got[0]) {
		t.Fatalf("paxos single dispatch: got %v, err %v", got, err)
	}
}

// TestDecodePayloadAntiEntropyVersion: an unbatched version-6 frame —
// a gossip message, or any quorum read reply carrying replica versions
// — must dispatch to the single-message decoder.  Regression: the
// dispatch once rejected version 6, silently severing every quorum
// probe reply and gossip round sent over TCP.
func TestDecodePayloadAntiEntropyVersion(t *testing.T) {
	m := protocol.Message{
		Kind: protocol.MsgReadRep, TID: "t", From: "B", To: "A",
		Values:   map[string]polyvalue.Poly{"acct1_r0": polyvalue.Simple(value.Int(100))},
		Versions: map[string]uint64{"acct1_r0": 3},
	}
	got, err := DecodePayload(EncodeMessage(m))
	if err != nil || len(got) != 1 || !messagesEqual(m, got[0]) {
		t.Fatalf("anti-entropy single dispatch: got %v, err %v", got, err)
	}
}

func TestBatchDecodeErrors(t *testing.T) {
	m := goldenMessages()[1]
	good := EncodeBatch([]protocol.Message{m, m})
	cases := []struct {
		name string
		buf  []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"wrong version", EncodeMessage(m), ErrVersion},
		{"zero count", []byte{BatchVersion, 0}, ErrMalformed},
		{"lying count", []byte{BatchVersion, 200, 1}, ErrMalformed},
		{"huge count", append([]byte{BatchVersion}, bytes.Repeat([]byte{0xff}, 9)...), ErrTruncated},
		{"truncated element", good[:len(good)-3], ErrTruncated},
		{"trailing bytes", append(append([]byte{}, good...), 0), ErrMalformed},
	}
	for _, tc := range cases {
		if _, err := DecodeBatch(tc.buf); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
	// A corrupt inner element surfaces the element's error.
	bad := append([]byte{}, good...)
	bad[len(bad)-1] ^= 0xff
	if _, err := DecodeBatch(bad); err == nil {
		t.Error("corrupt inner element decoded cleanly")
	}
}

// TestBatchBuilder: the incremental builder emits exactly the frames the
// one-shot encoders produce — the single-message frame for one message,
// the batch frame for more — and survives Reset/reuse.
func TestBatchBuilder(t *testing.T) {
	msgs := goldenMessages()
	var b BatchBuilder

	b.Add(msgs[1])
	if got, want := b.AppendFrame(nil), EncodeFrame(msgs[1]); !bytes.Equal(got, want) {
		t.Error("one-message builder frame differs from EncodeFrame")
	}
	if b.Count() != 1 || b.Size() != len(EncodeMessage(msgs[1])) {
		t.Errorf("Count=%d Size=%d after one Add", b.Count(), b.Size())
	}

	b.Reset()
	for _, m := range msgs {
		b.Add(m)
	}
	if got, want := b.AppendFrame(nil), EncodeBatchFrame(msgs); !bytes.Equal(got, want) {
		t.Error("multi-message builder frame differs from EncodeBatchFrame")
	}

	// Reset recycles cleanly: a fresh single frame again.
	b.Reset()
	if b.Count() != 0 || b.Size() != 0 {
		t.Fatalf("Reset left Count=%d Size=%d", b.Count(), b.Size())
	}
	b.Add(msgs[2])
	if got, want := b.AppendFrame(nil), EncodeFrame(msgs[2]); !bytes.Equal(got, want) {
		t.Error("builder frame after Reset differs from EncodeFrame")
	}
}

// TestPropBatchRoundTrip: any batch of generated messages round-trips
// element-wise and re-encodes canonically.
func TestPropBatchRoundTrip(t *testing.T) {
	prop := func(ms []randMessage) bool {
		if len(ms) == 0 {
			return true
		}
		msgs := make([]protocol.Message, len(ms))
		for i, rm := range ms {
			msgs[i] = rm.M
		}
		frame := EncodeBatchFrame(msgs)
		payload, err := readFrame(bytes.NewReader(frame), 0)
		if err != nil {
			return false
		}
		got, err := DecodeBatch(payload)
		if err != nil || len(got) != len(msgs) {
			return false
		}
		for i := range msgs {
			if !messagesEqual(msgs[i], got[i]) {
				return false
			}
		}
		return bytes.Equal(frame, EncodeBatchFrame(got))
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// FuzzBatchDecode throws arbitrary payloads at the batch/dispatch
// decoder.  It must never panic, and anything it accepts must re-encode
// to a canonical fixed point.
func FuzzBatchDecode(f *testing.F) {
	msgs := goldenMessages()
	f.Add(EncodeBatch(msgs))
	f.Add(EncodeBatch(msgs[1:2]))
	f.Add(EncodeMessage(msgs[1]))
	f.Add([]byte{BatchVersion})
	f.Add([]byte{BatchVersion, 1, 0})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := DecodePayload(data)
		if err != nil {
			return
		}
		if len(got) == 0 {
			t.Fatal("accepted payload decoded to zero messages")
		}
		for _, m := range got {
			for item, p := range m.Values {
				if !p.WellFormed() {
					t.Fatalf("accepted ill-formed polyvalue for %q: %s", item, p)
				}
			}
		}
		// Convergence: the canonical batch re-encoding of whatever was
		// accepted decodes back to the same messages and is a fixed point.
		enc := EncodeBatch(got)
		again, err := DecodeBatch(enc)
		if err != nil {
			t.Fatalf("re-decode of re-encoding failed: %v", err)
		}
		if len(again) != len(got) {
			t.Fatalf("re-encoding changed the batch size")
		}
		for i := range got {
			if !messagesEqual(got[i], again[i]) {
				t.Fatalf("re-encoding changed message %d", i)
			}
		}
		if !bytes.Equal(enc, EncodeBatch(again)) {
			t.Fatal("canonical form is not a fixed point")
		}
	})
}

// benchBatch builds a realistic 32-message commit-traffic batch:
// prepares with polyvalued values, readies, completes and acks.
func benchBatch() []protocol.Message {
	poly := polyvalue.Uncertain("T7",
		polyvalue.Simple(value.Int(150)), polyvalue.Simple(value.Int(100)))
	out := make([]protocol.Message, 0, 32)
	for i := 0; i < 8; i++ {
		out = append(out,
			protocol.Message{Kind: protocol.MsgPrepare, TID: "t42", From: "A", To: "B",
				Items: []string{"acct0", "acct1"}, Coordinator: "A",
				Program: "acct0 = acct0 - 10 if acct0 >= 10; acct1 = acct1 + 10 if acct0 >= 10",
				Values: map[string]polyvalue.Poly{
					"acct0": polyvalue.Simple(value.Int(1000)),
					"acct1": poly,
				}},
			protocol.Message{Kind: protocol.MsgReady, TID: "t42", From: "B", To: "A"},
			protocol.Message{Kind: protocol.MsgComplete, TID: "t42", From: "A", To: "B", Committed: true},
			protocol.Message{Kind: protocol.MsgOutcomeAck, TID: "t42", From: "B", To: "A"},
		)
	}
	return out
}

func BenchmarkWireBatch(b *testing.B) {
	msgs := benchBatch()
	b.Run("encode", func(b *testing.B) {
		b.ReportAllocs()
		var buf []byte
		for i := 0; i < b.N; i++ {
			buf = AppendBatchFrame(buf[:0], msgs)
		}
		b.SetBytes(int64(len(buf)))
	})
	b.Run("decode", func(b *testing.B) {
		frame := EncodeBatchFrame(msgs)
		payload := frame[frameHeader:]
		b.ReportAllocs()
		b.SetBytes(int64(len(frame)))
		for i := 0; i < b.N; i++ {
			if _, err := DecodeBatch(payload); err != nil {
				b.Fatal(err)
			}
		}
	})
	// The single-frame baseline the batch path replaces: N frames, N CRCs.
	b.Run("encode-singles", func(b *testing.B) {
		b.ReportAllocs()
		var buf []byte
		for i := 0; i < b.N; i++ {
			buf = buf[:0]
			for _, m := range msgs {
				buf = AppendFrame(buf, m)
			}
		}
		b.SetBytes(int64(len(buf)))
	})
}
