package model

import (
	"fmt"
	"strings"
)

// Table1Row pairs one parameter set with the paper's printed prediction.
type Table1Row struct {
	Params Params
	// PaperP is the expected number of polyvalues as printed in Table 1.
	PaperP float64
	// Note describes which parameter the row varies from the typical
	// database of row 1.
	Note string
}

// Table1 returns the paper's Table 1: "Typical Predictions of the Number
// of Polyvalues in a Database".  Row 1 is the typical database
// (U=10, F=10⁻⁴, I=10⁶, R=10⁻³, Y=0, D=1); the remaining rows vary each
// parameter individually, as the paper describes.  PaperP values are the
// printed predictions (the archival scan garbles two digits; those rows
// are reconstructed from the closed form, see EXPERIMENTS.md).
func Table1() []Table1Row {
	typical := Params{U: 10, F: 0.0001, I: 1e6, R: 0.001, Y: 0, D: 1}
	with := func(mod func(*Params)) Params {
		p := typical
		mod(&p)
		return p
	}
	return []Table1Row{
		{Params: typical, PaperP: 1.01, Note: "typical database"},
		{Params: with(func(p *Params) { p.U = 100 }), PaperP: 11.11, Note: "U ×10"},
		{Params: with(func(p *Params) { p.I = 1e5 }), PaperP: 1.11, Note: "I ÷10"},
		{Params: with(func(p *Params) { p.I = 1e5; p.D = 5 }), PaperP: 2.00, Note: "I ÷10, D=5"},
		{Params: with(func(p *Params) { p.I = 1e5; p.Y = 1 }), PaperP: 1.00, Note: "I ÷10, Y=1"},
		{Params: with(func(p *Params) { p.I = 2e4 }), PaperP: 2.00, Note: "I=20,000"},
		{Params: with(func(p *Params) { p.F = 0.001 }), PaperP: 10.10, Note: "F ×10"},
		{Params: with(func(p *Params) { p.F = 0.005 }), PaperP: 50.50, Note: "F ×50"},
		{Params: with(func(p *Params) { p.R = 0.0001 }), PaperP: 11.11, Note: "R ÷10"},
		{Params: with(func(p *Params) { p.D = 10 }), PaperP: 1.11, Note: "D=10"},
		{Params: with(func(p *Params) { p.Y = 1 }), PaperP: 1.00, Note: "Y=1"},
	}
}

// FormatTable1 renders the table with computed predictions beside the
// paper's printed values.
func FormatTable1() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %-8s %-10s %-8s %-4s %-4s %-10s %-10s %s\n",
		"U", "F", "I", "R", "Y", "D", "paper P", "model P", "note")
	for _, row := range Table1() {
		p := row.Params
		fmt.Fprintf(&b, "%-6g %-8g %-10g %-8g %-4g %-4g %-10.2f %-10.2f %s\n",
			p.U, p.F, p.I, p.R, p.Y, p.D, row.PaperP, p.SteadyState(), row.Note)
	}
	return b.String()
}
