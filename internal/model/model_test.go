package model

import (
	"math"
	"strings"
	"testing"
)

func TestSteadyStateMatchesClosedForm(t *testing.T) {
	p := Params{U: 10, F: 0.01, I: 10000, R: 0.01, Y: 0, D: 1}
	want := 10.0 * 0.01 * 10000 / (10000*0.01 + 0 - 10)
	if got := p.SteadyState(); math.Abs(got-want) > 1e-12 {
		t.Errorf("SteadyState = %g, want %g", got, want)
	}
}

func TestTable1AgreesWithPaper(t *testing.T) {
	for i, row := range Table1() {
		if err := row.Params.Validate(); err != nil {
			t.Fatalf("row %d invalid: %v", i, err)
		}
		got := row.Params.SteadyState()
		if math.Abs(got-row.PaperP)/row.PaperP > 0.01 {
			t.Errorf("row %d (%s): model %g, paper %g", i, row.Note, got, row.PaperP)
		}
	}
	if len(Table1()) != 11 {
		t.Errorf("Table 1 has %d rows, paper prints 11", len(Table1()))
	}
}

func TestTable2Predictions(t *testing.T) {
	// The "Predicted P" column of Table 2, recomputed from the closed
	// form, must match the paper's printed values.
	cases := []struct {
		p    Params
		want float64
	}{
		{Params{U: 2, F: 0.01, I: 10000, R: 0.01, Y: 0, D: 1}, 2.04},
		{Params{U: 5, F: 0.01, I: 10000, R: 0.01, Y: 0, D: 1}, 5.26},
		{Params{U: 10, F: 0.01, I: 10000, R: 0.01, Y: 0, D: 1}, 11.11},
		{Params{U: 10, F: 0.001, I: 10000, R: 0.01, Y: 0, D: 1}, 1.11},
		{Params{U: 10, F: 0.01, I: 10000, R: 0.01, Y: 0, D: 5}, 20},
		{Params{U: 10, F: 0.01, I: 10000, R: 0.01, Y: 1, D: 5}, 16.7},
	}
	for i, c := range cases {
		got := c.p.SteadyState()
		if math.Abs(got-c.want)/c.want > 0.01 {
			t.Errorf("row %d: %g, paper %g", i, got, c.want)
		}
	}
}

func TestStability(t *testing.T) {
	stable := Params{U: 10, F: 0.0001, I: 1e6, R: 0.001, Y: 0, D: 1}
	if !stable.Stable() {
		t.Error("typical database should be stable")
	}
	// UD > IR + UY: polytransactions outpace recovery.
	unstable := Params{U: 100, F: 0.01, I: 1000, R: 0.01, Y: 0, D: 50}
	if unstable.Stable() {
		t.Error("should be unstable")
	}
	if !math.IsInf(unstable.SteadyState(), 1) {
		t.Errorf("unstable steady state = %g", unstable.SteadyState())
	}
	if !math.IsInf(unstable.SettlingTime(0.01), 1) {
		t.Error("unstable settling time should be +Inf")
	}
	if !math.IsInf(unstable.PolytransactionRate(), 1) {
		t.Error("unstable polytransaction rate should be +Inf")
	}
}

func TestTransient(t *testing.T) {
	p := Params{U: 10, F: 0.01, I: 10000, R: 0.01, Y: 0, D: 1}
	pss := p.SteadyState()
	// Starts at p0, converges to steady state, monotonically.
	if got := p.Transient(0, 0); got != 0 {
		t.Errorf("Transient(0,0) = %g", got)
	}
	prev := 0.0
	for _, tm := range []float64{10, 50, 100, 1000, 10000} {
		cur := p.Transient(0, tm)
		if cur <= prev {
			t.Errorf("transient not increasing at t=%g", tm)
		}
		prev = cur
	}
	if math.Abs(p.Transient(0, 1e6)-pss) > 1e-6 {
		t.Errorf("transient does not converge: %g vs %g", p.Transient(0, 1e6), pss)
	}
	// From above: a failure burst decays back down (the paper's
	// stability observation).
	if p.Transient(100, 1000) <= pss || p.Transient(100, 1000) >= 100 {
		t.Errorf("decay from burst wrong: %g", p.Transient(100, 1000))
	}
}

func TestTransientUnstable(t *testing.T) {
	unstable := Params{U: 100, F: 0.01, I: 1000, R: 0.01, Y: 0, D: 50}
	// Grows without bound.
	if unstable.Transient(0, 100) <= unstable.Transient(0, 10) {
		t.Error("unstable transient should grow")
	}
	// λ = 0 edge: linear growth at rate UF.
	zero := Params{U: 10, F: 0.5, I: 1000, R: 0.02, Y: 0, D: 2}
	if r := zero.Rate(); r != 0 {
		t.Fatalf("constructed rate = %g, want 0", r)
	}
	if got := zero.Transient(0, 10); math.Abs(got-10*0.5*10) > 1e-9 {
		t.Errorf("λ=0 transient = %g, want 50", got)
	}
}

func TestSettlingTime(t *testing.T) {
	p := Params{U: 10, F: 0.01, I: 10000, R: 0.01, Y: 0, D: 1}
	ts := p.SettlingTime(0.01)
	// After the settling time the transient term is 1% of initial.
	start, target := 100.0, p.SteadyState()
	at := p.Transient(start, ts)
	frac := (at - target) / (start - target)
	if math.Abs(frac-0.01) > 1e-9 {
		t.Errorf("settling fraction = %g", frac)
	}
	// Bad frac arguments default to 1%.
	if p.SettlingTime(-1) != p.SettlingTime(0.01) {
		t.Error("frac default wrong")
	}
}

func TestValidate(t *testing.T) {
	good := Params{U: 10, F: 0.01, I: 10000, R: 0.01, Y: 0, D: 1}
	if err := good.Validate(); err != nil {
		t.Errorf("good params rejected: %v", err)
	}
	bad := []Params{
		{U: 0, F: 0.01, I: 1, R: 0.01},
		{U: 1, F: -0.1, I: 1, R: 0.01},
		{U: 1, F: 1.1, I: 1, R: 0.01},
		{U: 1, F: 0.1, I: 0, R: 0.01},
		{U: 1, F: 0.1, I: 1, R: 0},
		{U: 1, F: 0.1, I: 1, R: 2},
		{U: 1, F: 0.1, I: 1, R: 0.01, Y: -1},
		{U: 1, F: 0.1, I: 1, R: 0.01, D: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted: %v", i, p)
		}
	}
}

func TestPolytransactionRate(t *testing.T) {
	p := Params{U: 10, F: 0.01, I: 10000, R: 0.01, Y: 0, D: 1}
	want := p.U * p.D * p.SteadyState() / p.I
	if got := p.PolytransactionRate(); math.Abs(got-want) > 1e-12 {
		t.Errorf("PolytransactionRate = %g, want %g", got, want)
	}
}

// TestSensitivitiesMatchNumericalDerivatives: the closed-form partials
// agree with central finite differences at the Table 2 operating point.
func TestSensitivitiesMatchNumericalDerivatives(t *testing.T) {
	p := Params{U: 10, F: 0.01, I: 10000, R: 0.01, Y: 0.2, D: 1}
	s := p.Sensitivities()
	numeric := func(perturb func(*Params, float64)) float64 {
		const h = 1e-6
		hi, lo := p, p
		perturb(&hi, h)
		perturb(&lo, -h)
		return (hi.SteadyState() - lo.SteadyState()) / (2 * h)
	}
	cases := []struct {
		name    string
		got     float64
		perturb func(*Params, float64)
	}{
		{"dU", s.DU, func(q *Params, h float64) { q.U += h }},
		{"dF", s.DF, func(q *Params, h float64) { q.F += h }},
		{"dI", s.DI, func(q *Params, h float64) { q.I += h }},
		{"dR", s.DR, func(q *Params, h float64) { q.R += h }},
		{"dY", s.DY, func(q *Params, h float64) { q.Y += h }},
		{"dD", s.DD, func(q *Params, h float64) { q.D += h }},
	}
	for _, c := range cases {
		want := numeric(c.perturb)
		if math.Abs(c.got-want) > math.Abs(want)*1e-4+1e-9 {
			t.Errorf("%s: analytic %g, numeric %g", c.name, c.got, want)
		}
	}
	// Signs: more failures/load/dependence raise P; faster recovery and
	// overwriting lower it.
	if s.DF <= 0 || s.DD <= 0 || s.DU <= 0 {
		t.Error("DF/DD/DU should be positive")
	}
	if s.DR >= 0 || s.DY >= 0 {
		t.Error("DR/DY should be negative")
	}
	// Unstable point returns zeros.
	bad := Params{U: 100, F: 0.01, I: 1000, R: 0.01, Y: 0, D: 50}
	if bad.Sensitivities() != (Sensitivity{}) {
		t.Error("unstable sensitivities not zeroed")
	}
}

func TestFormatTable1(t *testing.T) {
	s := FormatTable1()
	if !strings.Contains(s, "typical database") || !strings.Contains(s, "50.50") {
		t.Errorf("FormatTable1 missing content:\n%s", s)
	}
	if lines := strings.Count(s, "\n"); lines != 12 { // header + 11 rows
		t.Errorf("FormatTable1 has %d lines", lines)
	}
}

func TestParamsString(t *testing.T) {
	p := Params{U: 10, F: 0.01, I: 10000, R: 0.01, Y: 1, D: 5}
	if !strings.Contains(p.String(), "U=10") || !strings.Contains(p.String(), "D=5") {
		t.Errorf("String = %q", p.String())
	}
}
