// Package model implements §4.1 of the paper: the first-order analytic
// model of polyvalue creation and deletion.
//
// The expected number of polyvalued items P(t) obeys
//
//	P'(t) = U·F + U·D·P/I − U·Y·P/I − R·P
//
// whose steady state is P∞ = U·F·I / (I·R + U·Y − U·D), valid while
// P ≪ I and the decay rate λ = R + U·(Y−D)/I is positive (otherwise
// polyvalue creation by polytransactions outpaces elimination and the
// first-order model diverges — the paper notes one "would not wish to
// operate a database with such values").
package model

import (
	"fmt"
	"math"
)

// Params are the six database parameters of §4.1.
type Params struct {
	// U is the number of updates made per second.
	U float64
	// F is the probability that an update will fail.
	F float64
	// I is the number of items in the database.
	I float64
	// R is the proportion of failures recovered each second.
	R float64
	// Y is the probability that the new value of an updated item will
	// not depend on its previous value.
	Y float64
	// D is the average number of items on which the new value assigned
	// to an updated item depends.
	D float64
}

// String renders the parameters in the paper's column order.
func (p Params) String() string {
	return fmt.Sprintf("U=%g F=%g I=%g R=%g Y=%g D=%g", p.U, p.F, p.I, p.R, p.Y, p.D)
}

// Validate rejects non-physical parameters.
func (p Params) Validate() error {
	switch {
	case p.U <= 0:
		return fmt.Errorf("model: U must be positive, got %g", p.U)
	case p.F < 0 || p.F > 1:
		return fmt.Errorf("model: F must be a probability, got %g", p.F)
	case p.I <= 0:
		return fmt.Errorf("model: I must be positive, got %g", p.I)
	case p.R <= 0 || p.R > 1:
		return fmt.Errorf("model: R must be in (0,1], got %g", p.R)
	case p.Y < 0 || p.Y > 1:
		return fmt.Errorf("model: Y must be a probability, got %g", p.Y)
	case p.D < 0:
		return fmt.Errorf("model: D must be non-negative, got %g", p.D)
	}
	return nil
}

// Rate returns λ = R + U·(Y−D)/I, the exponential decay rate of excess
// polyvalues.  Positive λ means the system is stable.
func (p Params) Rate() float64 {
	return p.R + p.U*(p.Y-p.D)/p.I
}

// Stable reports whether the first-order model predicts a finite
// steady-state polyvalue population.
func (p Params) Stable() bool { return p.Rate() > 0 }

// SteadyState returns P∞ = U·F·I / (I·R + U·Y − U·D); +Inf when the
// system is unstable.
func (p Params) SteadyState() float64 {
	denom := p.I*p.R + p.U*p.Y - p.U*p.D
	if denom <= 0 {
		return math.Inf(1)
	}
	return p.U * p.F * p.I / denom
}

// Transient returns the expected polyvalue count at time t (seconds)
// starting from P(0) = p0:
//
//	P(t) = P∞ + (p0 − P∞)·e^(−λt)
func (p Params) Transient(p0, t float64) float64 {
	lam := p.Rate()
	if lam == 0 {
		// Creation exactly balances elimination: linear growth at UF.
		return p0 + p.U*p.F*t
	}
	// P(t) = UF/λ + (p0 − UF/λ)·e^(−λt); for λ > 0 the first term is
	// the steady state, for λ < 0 the exponential grows without bound.
	eq := p.U * p.F / lam
	return eq + (p0-eq)*math.Exp(-lam*t)
}

// SettlingTime returns the time for the transient term to decay to
// within frac (e.g. 0.01) of its initial magnitude; +Inf when unstable.
func (p Params) SettlingTime(frac float64) float64 {
	lam := p.Rate()
	if lam <= 0 {
		return math.Inf(1)
	}
	if frac <= 0 || frac >= 1 {
		frac = 0.01
	}
	return -math.Log(frac) / lam
}

// Sensitivity holds the partial derivatives of the steady-state
// polyvalue count with respect to each parameter, evaluated at the
// operating point — which knob most affects the uncertainty level.
type Sensitivity struct {
	DU, DF, DI, DR, DY, DD float64
}

// Sensitivities computes ∂P∞/∂x for each parameter x analytically:
//
//	P = U·F·I / Q with Q = I·R + U·Y − U·D
//	∂P/∂F = U·I/Q                 ∂P/∂U = F·I·(Q − U·(Y−D))/Q²
//	∂P/∂I = U·F·(Q − I·R)/Q²      ∂P/∂R = −U·F·I²/Q²
//	∂P/∂Y = −U²·F·I/Q²            ∂P/∂D = +U²·F·I/Q²
//
// Returns zero values when the system is unstable (Q ≤ 0).
func (p Params) Sensitivities() Sensitivity {
	q := p.I*p.R + p.U*p.Y - p.U*p.D
	if q <= 0 {
		return Sensitivity{}
	}
	q2 := q * q
	return Sensitivity{
		DU: p.F * p.I * (q - p.U*(p.Y-p.D)) / q2,
		DF: p.U * p.I / q,
		DI: p.U * p.F * (q - p.I*p.R) / q2,
		DR: -p.U * p.F * p.I * p.I / q2,
		DY: -p.U * p.U * p.F * p.I / q2,
		DD: p.U * p.U * p.F * p.I / q2,
	}
}

// PolytransactionRate returns the expected rate (per second) at which
// transactions touch at least one polyvalued input in steady state,
// ≈ U·D·P∞/I, the model's uncertainty-propagation term.
func (p Params) PolytransactionRate() float64 {
	pss := p.SteadyState()
	if math.IsInf(pss, 1) {
		return math.Inf(1)
	}
	return p.U * p.D * pss / p.I
}
