// Package repl implements the interactive cluster console behind
// cmd/polyrepl: a small command language for loading data, submitting
// transactions, injecting failures, advancing simulated time and
// inspecting polyvalues.  The interpreter is a library so the whole
// surface is unit-testable; cmd/polyrepl just wires it to stdin/stdout.
package repl

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/network"
	"repro/internal/polyvalue"
	"repro/internal/protocol"
	"repro/internal/trace"
	"repro/internal/value"
)

// REPL is one interactive session over a cluster it owns.
type REPL struct {
	c       *cluster.Cluster
	ring    *trace.Ring
	out     io.Writer
	handles map[string]*cluster.Handle
	queries map[string]*cluster.QueryHandle
	nextH   int
	nextQ   int
	done    bool
}

// New builds a REPL over a fresh cluster with the given number of sites
// (named site0..siteN-1).
func New(sites int, policy cluster.Policy, seed int64, out io.Writer) (*REPL, error) {
	if sites < 1 {
		return nil, fmt.Errorf("repl: need at least one site")
	}
	ids := make([]protocol.SiteID, sites)
	for i := range ids {
		ids[i] = protocol.SiteID(fmt.Sprintf("site%d", i))
	}
	ring := trace.NewRing(5000)
	c, err := cluster.New(cluster.Config{
		Sites:  ids,
		Net:    network.Config{Latency: 10 * time.Millisecond, Seed: seed},
		Policy: policy,
		Tracer: ring,
	})
	if err != nil {
		return nil, err
	}
	ring.Clock = c.Now
	return &REPL{
		c: c, ring: ring, out: out,
		handles: map[string]*cluster.Handle{},
		queries: map[string]*cluster.QueryHandle{},
	}, nil
}

// Close releases the cluster.
func (r *REPL) Close() { r.c.Close() }

// Cluster exposes the underlying cluster (tests and embedding).
func (r *REPL) Cluster() *cluster.Cluster { return r.c }

// Done reports whether a quit command was executed.
func (r *REPL) Done() bool { return r.done }

// Run reads commands until EOF or quit.
func (r *REPL) Run(in io.Reader) error {
	sc := bufio.NewScanner(in)
	for !r.done && sc.Scan() {
		if err := r.Execute(sc.Text()); err != nil {
			fmt.Fprintf(r.out, "error: %v\n", err)
		}
	}
	return sc.Err()
}

// Execute runs one command line.  Unknown commands and bad arguments
// return errors; the session continues.
func (r *REPL) Execute(line string) error {
	fields := strings.Fields(line)
	if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
		return nil
	}
	cmd, args := fields[0], fields[1:]
	switch cmd {
	case "help":
		r.printHelp()
	case "quit", "exit":
		r.done = true
	case "sites":
		for _, id := range r.c.Sites() {
			info, err := r.c.SiteInfo(id)
			if err != nil {
				return err
			}
			state := "up"
			if info.Down {
				state = "DOWN"
			}
			fmt.Fprintf(r.out, "%s\t%s\titems=%d polys=%d prepared=%d awaits=%d locks=%d wal=%dB\n",
				id, state, info.Items, info.PolyItems, info.Prepared, info.Awaits, info.Locks, info.WALBytes)
		}
	case "load":
		if len(args) != 2 {
			return fmt.Errorf("usage: load <item> <int>")
		}
		n, err := strconv.ParseInt(args[1], 10, 64)
		if err != nil {
			return fmt.Errorf("load: %w", err)
		}
		if err := r.c.Load(args[0], polyvalue.Simple(value.Int(n))); err != nil {
			return err
		}
		fmt.Fprintf(r.out, "%s = %d\n", args[0], n)
	case "submit":
		if len(args) < 2 {
			return fmt.Errorf("usage: submit <site> <program>")
		}
		h, err := r.c.Submit(protocol.SiteID(args[0]), strings.Join(args[1:], " "))
		if err != nil {
			return err
		}
		r.nextH++
		name := fmt.Sprintf("h%d", r.nextH)
		r.handles[name] = h
		fmt.Fprintf(r.out, "%s: submitted %s at %s\n", name, h.TID, args[0])
	case "query":
		if len(args) < 2 {
			return fmt.Errorf("usage: query <site> <expr>")
		}
		qh, err := r.c.Query(protocol.SiteID(args[0]), strings.Join(args[1:], " "))
		if err != nil {
			return err
		}
		r.nextQ++
		name := fmt.Sprintf("q%d", r.nextQ)
		r.queries[name] = qh
		fmt.Fprintf(r.out, "%s: query submitted at %s\n", name, args[0])
	case "queryc":
		if len(args) < 3 {
			return fmt.Errorf("usage: queryc <site> <wait> <expr> (withhold until certain)")
		}
		wait, err := time.ParseDuration(args[1])
		if err != nil {
			return fmt.Errorf("queryc: %w", err)
		}
		qh, err := r.c.QueryCertain(protocol.SiteID(args[0]), strings.Join(args[2:], " "), wait)
		if err != nil {
			return err
		}
		r.nextQ++
		name := fmt.Sprintf("q%d", r.nextQ)
		r.queries[name] = qh
		fmt.Fprintf(r.out, "%s: certain-mode query submitted at %s (deadline %v)\n", name, args[0], wait)
	case "status":
		names := make([]string, 0, len(r.handles))
		for n := range r.handles {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			h := r.handles[n]
			line := fmt.Sprintf("%s\t%s\t%s", n, h.TID, h.Status())
			if reason := h.Reason(); reason != "" {
				line += "\t(" + reason + ")"
			}
			if lat, ok := h.Latency(); ok {
				line += fmt.Sprintf("\t%v", lat)
			}
			fmt.Fprintln(r.out, line)
		}
		qnames := make([]string, 0, len(r.queries))
		for n := range r.queries {
			qnames = append(qnames, n)
		}
		sort.Strings(qnames)
		for _, n := range qnames {
			p, err, done := r.queries[n].Result()
			switch {
			case !done:
				fmt.Fprintf(r.out, "%s\tpending\n", n)
			case err != nil:
				fmt.Fprintf(r.out, "%s\terror: %v\n", n, err)
			default:
				fmt.Fprintf(r.out, "%s\t%s\n", n, p)
			}
		}
	case "read":
		if len(args) != 1 {
			return fmt.Errorf("usage: read <item>")
		}
		fmt.Fprintf(r.out, "%s = %s\n", args[0], r.c.Read(args[0]))
	case "expected":
		if len(args) != 2 {
			return fmt.Errorf("usage: expected <item> <pCommit>")
		}
		pc, err := strconv.ParseFloat(args[1], 64)
		if err != nil {
			return fmt.Errorf("expected: %w", err)
		}
		e, err := r.c.Read(args[0]).Expected(pc)
		if err != nil {
			return err
		}
		fmt.Fprintf(r.out, "E[%s | p=%g] = %g\n", args[0], pc, e)
	case "run":
		if len(args) != 1 {
			return fmt.Errorf("usage: run <duration> (e.g. 500ms, 2s)")
		}
		d, err := time.ParseDuration(args[0])
		if err != nil {
			return fmt.Errorf("run: %w", err)
		}
		r.c.RunFor(d)
		fmt.Fprintf(r.out, "t = %v\n", r.c.Now())
	case "crash":
		if len(args) != 1 {
			return fmt.Errorf("usage: crash <site>")
		}
		if err := r.site(args[0]); err != nil {
			return err
		}
		r.c.Crash(protocol.SiteID(args[0]))
		fmt.Fprintf(r.out, "%s crashed\n", args[0])
	case "restart":
		if len(args) != 1 {
			return fmt.Errorf("usage: restart <site>")
		}
		if err := r.site(args[0]); err != nil {
			return err
		}
		r.c.Restart(protocol.SiteID(args[0]))
		fmt.Fprintf(r.out, "%s restarted\n", args[0])
	case "armcrash":
		if len(args) != 1 {
			return fmt.Errorf("usage: armcrash <site>")
		}
		if err := r.site(args[0]); err != nil {
			return err
		}
		r.c.ArmCrashBeforeDecision(protocol.SiteID(args[0]))
		fmt.Fprintf(r.out, "%s will crash at its next commit decision\n", args[0])
	case "partition":
		if len(args) != 2 {
			return fmt.Errorf("usage: partition <a> <b>")
		}
		r.c.Partition(protocol.SiteID(args[0]), protocol.SiteID(args[1]))
		fmt.Fprintf(r.out, "link %s--%s cut\n", args[0], args[1])
	case "heal":
		if len(args) != 2 {
			return fmt.Errorf("usage: heal <a> <b>")
		}
		r.c.Heal(protocol.SiteID(args[0]), protocol.SiteID(args[1]))
		fmt.Fprintf(r.out, "link %s--%s healed\n", args[0], args[1])
	case "healall":
		r.c.HealAll()
		fmt.Fprintln(r.out, "all links healed")
	case "polys":
		items := r.c.PolyItems()
		if len(items) == 0 {
			fmt.Fprintln(r.out, "no polyvalued items")
			break
		}
		for _, item := range items {
			fmt.Fprintf(r.out, "%s = %s\n", item, r.c.Read(item))
		}
	case "stats":
		st := r.c.Stats()
		fmt.Fprintf(r.out, "committed=%d aborted=%d indoubt=%d polyInstalls=%d polyReductions=%d refused=%d\n",
			st.Committed, st.Aborted, st.InDoubt, st.PolyInstalls, st.PolyReductions, st.Refused)
		ns := r.c.NetStats()
		fmt.Fprintf(r.out, "net: sent=%d delivered=%d droppedDown=%d droppedPartition=%d\n",
			ns.Sent, ns.Delivered, ns.DroppedDown, ns.DroppedPartition)
	case "check":
		violations := r.c.CheckInvariants()
		if len(violations) == 0 {
			fmt.Fprintln(r.out, "all invariants hold")
			break
		}
		for _, v := range violations {
			fmt.Fprintln(r.out, "VIOLATION:", v)
		}
	case "trace":
		n := 20
		if len(args) == 1 {
			parsed, err := strconv.Atoi(args[0])
			if err != nil || parsed < 1 {
				return fmt.Errorf("usage: trace [n]")
			}
			n = parsed
		}
		entries := r.ring.Entries()
		if len(entries) > n {
			entries = entries[len(entries)-n:]
		}
		for _, e := range entries {
			fmt.Fprintln(r.out, e)
		}
	default:
		return fmt.Errorf("unknown command %q (try help)", cmd)
	}
	return nil
}

// site validates a site name.
func (r *REPL) site(name string) error {
	for _, id := range r.c.Sites() {
		if string(id) == name {
			return nil
		}
	}
	return fmt.Errorf("unknown site %q", name)
}

func (r *REPL) printHelp() {
	fmt.Fprint(r.out, `commands:
  load <item> <int>            install an initial value
  submit <site> <program>      run a transaction (e.g. submit site0 x = x + 1)
  query <site> <expr>          read-only query (may return a polyvalue)
  queryc <site> <wait> <expr>  withhold the answer until certain (§3.4)
  status                       show transaction/query outcomes
  read <item>                  show an item's (possibly poly) value
  expected <item> <p>          probability-weighted expected value
  polys                        list all polyvalued items
  run <duration>               advance simulated time (500ms, 2s, ...)
  crash/restart <site>         fail / repair a site
  armcrash <site>              crash at the site's next commit decision
  partition/heal <a> <b>       cut / restore a link; healall restores all
  sites | stats | trace [n]    inspect the cluster
  check                        verify global invariants (quiescent cluster)
  quit
`)
}
