package repl

import (
	"strings"
	"testing"

	"repro/internal/cluster"
)

// session runs a script and returns the combined output.
func session(t *testing.T, script string) string {
	t.Helper()
	var out strings.Builder
	r, err := New(3, cluster.PolicyPolyvalue, 1, &out)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Run(strings.NewReader(script)); err != nil {
		t.Fatal(err)
	}
	return out.String()
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, cluster.PolicyPolyvalue, 1, nil); err == nil {
		t.Error("zero sites accepted")
	}
}

func TestBasicSession(t *testing.T) {
	out := session(t, `
load x 100
submit site0 x = x + 1
run 2s
status
read x
stats
`)
	if !strings.Contains(out, "x = 100") {
		t.Errorf("load missing: %s", out)
	}
	if !strings.Contains(out, "committed") {
		t.Errorf("status missing commit: %s", out)
	}
	if !strings.Contains(out, "x = 101") {
		t.Errorf("read wrong: %s", out)
	}
	if !strings.Contains(out, "committed=1") {
		t.Errorf("stats wrong: %s", out)
	}
}

func TestFailureScenarioSession(t *testing.T) {
	// The coordinator must be a different site from x's owner, or the
	// crash takes the item's own site down and no polyvalue appears.
	var out strings.Builder
	r, err := New(3, cluster.PolicyPolyvalue, 1, &out)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	owner := r.Cluster().Placement("x")
	coord := ""
	for _, s := range r.Cluster().Sites() {
		if s != owner {
			coord = string(s)
			break
		}
	}
	script := strings.NewReplacer("COORD", coord).Replace(`
load x 10
armcrash COORD
submit COORD x = x + 5
run 2s
sites
polys
expected x 0.9
restart COORD
run 20s
read x
`)
	if err := r.Run(strings.NewReader(script)); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "DOWN") {
		t.Errorf("crash not reported: %s", got)
	}
	if !strings.Contains(got, "<15,") && !strings.Contains(got, "<10,") {
		t.Errorf("polyvalue not listed: %s", got)
	}
	if !strings.Contains(got, "E[x | p=0.9] = 14.5") {
		t.Errorf("expected value missing: %s", got)
	}
	if !strings.Contains(got, "x = 10\n") {
		t.Errorf("post-repair read wrong: %s", got)
	}
}

func TestQuerySession(t *testing.T) {
	out := session(t, `
load seats 12
query site1 150 - seats
run 1s
status
`)
	if !strings.Contains(out, "q1") || !strings.Contains(out, "138") {
		t.Errorf("query output wrong: %s", out)
	}
}

func TestPartitionAndHeal(t *testing.T) {
	out := session(t, `
partition site0 site1
heal site0 site1
healall
`)
	for _, want := range []string{"cut", "link site0--site1 healed", "all links healed"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in: %s", want, out)
		}
	}
}

func TestTraceAndHelp(t *testing.T) {
	out := session(t, `
load x 1
submit site0 x = 2
run 1s
trace 5
help
`)
	if !strings.Contains(out, "send") && !strings.Contains(out, "recv") &&
		!strings.Contains(out, "one-phase") {
		t.Errorf("trace empty: %s", out)
	}
	if !strings.Contains(out, "commands:") {
		t.Errorf("help missing: %s", out)
	}
}

func TestErrorsKeepSessionAlive(t *testing.T) {
	var out strings.Builder
	r, err := New(2, cluster.PolicyPolyvalue, 1, &out)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	bad := []string{
		"bogus", "load", "load x notanumber", "submit", "submit nowhere x = 1",
		"query site0", "read", "run", "run notaduration", "crash", "crash nowhere",
		"restart nowhere", "armcrash nowhere", "partition site0",
		"heal site0", "expected x", "expected x nan...", "trace zero",
	}
	for _, line := range bad {
		if err := r.Execute(line); err == nil {
			t.Errorf("command %q did not error", line)
		}
	}
	// Still functional afterwards.
	if err := r.Execute("load x 5"); err != nil {
		t.Fatalf("session broken after errors: %v", err)
	}
}

func TestCommentsAndBlanksIgnored(t *testing.T) {
	var out strings.Builder
	r, _ := New(2, cluster.PolicyPolyvalue, 1, &out)
	defer r.Close()
	if err := r.Execute("# a comment"); err != nil {
		t.Error(err)
	}
	if err := r.Execute("   "); err != nil {
		t.Error(err)
	}
}

func TestQueryCertainCommand(t *testing.T) {
	out := session(t, `
load seats 12
queryc site1 5s seats + 1
run 2s
status
`)
	if !strings.Contains(out, "certain-mode query") || !strings.Contains(out, "13") {
		t.Errorf("queryc output: %s", out)
	}
	// Bad args error.
	var buf strings.Builder
	r, _ := New(2, cluster.PolicyPolyvalue, 1, &buf)
	defer r.Close()
	for _, bad := range []string{"queryc site0 5s", "queryc site0 nota x", "queryc nope 5s x"} {
		if err := r.Execute(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestCheckCommand(t *testing.T) {
	out := session(t, `
load x 5
submit site0 x = 6
run 2s
check
`)
	if !strings.Contains(out, "all invariants hold") {
		t.Errorf("check output: %s", out)
	}
}

func TestQuitEndsRun(t *testing.T) {
	var out strings.Builder
	r, _ := New(2, cluster.PolicyPolyvalue, 1, &out)
	defer r.Close()
	if err := r.Run(strings.NewReader("quit\nload x 1\n")); err != nil {
		t.Fatal(err)
	}
	if !r.Done() {
		t.Error("quit did not mark session done")
	}
	if strings.Contains(out.String(), "x = 1") {
		t.Error("commands after quit executed")
	}
}
