package polyvalue

import (
	"encoding/binary"
	"fmt"

	"repro/internal/condition"
	"repro/internal/value"
)

// Wire format:
//
//	uvarint  number of pairs
//	per pair:
//	  value encoding (internal/value)
//	  condition encoding (internal/condition)
//
// Decoding validates well-formedness so a corrupted WAL or network frame
// cannot introduce an inconsistent polyvalue into a site's store.

// AppendBinary appends p's encoding to dst.
func (p Poly) AppendBinary(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(p.pairs)))
	for _, pr := range p.pairs {
		dst = value.AppendBinary(dst, pr.Val)
		dst = pr.Cond.AppendBinary(dst)
	}
	return dst
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (p Poly) MarshalBinary() ([]byte, error) { return p.AppendBinary(nil), nil }

// DecodeBinary decodes one polyvalue from the front of buf, returning the
// polyvalue and bytes consumed.
func DecodeBinary(buf []byte) (Poly, int, error) {
	np, n := binary.Uvarint(buf)
	if n <= 0 {
		return Poly{}, 0, fmt.Errorf("polyvalue: truncated pair count")
	}
	if np > uint64(len(buf)) {
		return Poly{}, 0, fmt.Errorf("polyvalue: pair count %d exceeds input", np)
	}
	off := n
	pairs := make([]Pair, 0, np)
	for i := uint64(0); i < np; i++ {
		v, vn, err := value.DecodeBinary(buf[off:])
		if err != nil {
			return Poly{}, 0, fmt.Errorf("polyvalue: pair %d value: %w", i, err)
		}
		off += vn
		c, cn, err := condition.DecodeBinary(buf[off:])
		if err != nil {
			return Poly{}, 0, fmt.Errorf("polyvalue: pair %d condition: %w", i, err)
		}
		off += cn
		pairs = append(pairs, Pair{Val: v, Cond: c})
	}
	p, err := New(pairs)
	if err != nil {
		return Poly{}, 0, err
	}
	return p, off, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler; trailing bytes
// are an error.
func (p *Poly) UnmarshalBinary(data []byte) error {
	decoded, n, err := DecodeBinary(data)
	if err != nil {
		return err
	}
	if n != len(data) {
		return fmt.Errorf("polyvalue: %d trailing bytes", len(data)-n)
	}
	*p = decoded
	return nil
}
