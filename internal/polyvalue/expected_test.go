package polyvalue

import (
	"math"
	"testing"

	"repro/internal/condition"
	"repro/internal/value"
)

func TestWeightsSimpleValue(t *testing.T) {
	p := Simple(value.Int(5))
	w, err := p.Weights(0.9)
	if err != nil || len(w) != 1 || w[0] != 1 {
		t.Errorf("Weights = %v, %v", w, err)
	}
}

func TestWeightsTwoPair(t *testing.T) {
	p := Uncertain("T1", Simple(value.Int(60)), Simple(value.Int(100)))
	w, err := p.Weights(0.9)
	if err != nil {
		t.Fatal(err)
	}
	// Pairs are in canonical order; find which is which by value.
	for i, pr := range p.Pairs() {
		n, _ := value.AsInt(pr.Val)
		want := 0.9
		if n == 100 {
			want = 0.1
		}
		if math.Abs(w[i]-want) > 1e-12 {
			t.Errorf("weight of %d = %g, want %g", n, w[i], want)
		}
	}
}

func TestWeightsSumToOne(t *testing.T) {
	inner := Uncertain("T1", Simple(value.Int(10)), Simple(value.Int(0)))
	outer := Uncertain("T2", Simple(value.Int(99)), inner)
	for _, pc := range []float64{0, 0.25, 0.5, 0.9, 1} {
		w, err := outer.Weights(pc)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, x := range w {
			sum += x
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("weights at p=%g sum to %g", pc, sum)
		}
	}
}

func TestExpected(t *testing.T) {
	p := Uncertain("T1", Simple(value.Int(60)), Simple(value.Int(100)))
	e, err := p.Expected(0.9)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.9*60 + 0.1*100
	if math.Abs(e-want) > 1e-12 {
		t.Errorf("Expected = %g, want %g", e, want)
	}
	// Degenerate probabilities give the branch values exactly.
	if e, _ := p.Expected(1); e != 60 {
		t.Errorf("Expected(1) = %g", e)
	}
	if e, _ := p.Expected(0); e != 100 {
		t.Errorf("Expected(0) = %g", e)
	}
}

func TestExpectedErrors(t *testing.T) {
	p := Uncertain("T1", Simple(value.Str("x")), Simple(value.Int(1)))
	if _, err := p.Expected(0.5); err == nil {
		t.Error("non-numeric accepted")
	}
	q := Simple(value.Int(1))
	if _, err := q.Expected(-0.1); err == nil {
		t.Error("bad probability accepted")
	}
	if _, err := q.Expected(1.1); err == nil {
		t.Error("bad probability accepted")
	}
	// Too many dependencies.
	big := Simple(value.Int(0))
	for i := 0; i < 21; i++ {
		big = Uncertain(condition.TID(string(rune('a'+i))), Simple(value.Int(int64(i+1))), big)
	}
	if _, err := big.Expected(0.5); err == nil {
		t.Error("21 dependencies accepted")
	}
}

func TestMostLikely(t *testing.T) {
	p := Uncertain("T1", Simple(value.Int(60)), Simple(value.Int(100)))
	v, w, err := p.MostLikely(0.9)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Equal(value.Int(60)) || math.Abs(w-0.9) > 1e-12 {
		t.Errorf("MostLikely = %v, %g", v, w)
	}
	v, w, err = p.MostLikely(0.2)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Equal(value.Int(100)) || math.Abs(w-0.8) > 1e-12 {
		t.Errorf("MostLikely(0.2) = %v, %g", v, w)
	}
}

func TestExpectedNested(t *testing.T) {
	// {99 | T2, 10 | !T2&T1, 0 | !T2&!T1}: E = p·99 + (1-p)p·10.
	inner := Uncertain("T1", Simple(value.Int(10)), Simple(value.Int(0)))
	outer := Uncertain("T2", Simple(value.Int(99)), inner)
	pc := 0.7
	e, err := outer.Expected(pc)
	if err != nil {
		t.Fatal(err)
	}
	want := pc*99 + (1-pc)*pc*10
	if math.Abs(e-want) > 1e-12 {
		t.Errorf("Expected = %g, want %g", e, want)
	}
}
