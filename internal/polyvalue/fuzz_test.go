package polyvalue

import (
	"testing"

	"repro/internal/value"
)

// FuzzDecodeBinary: arbitrary bytes must never panic the decoder, never
// produce an ill-formed polyvalue, and anything that decodes must
// round-trip.
func FuzzDecodeBinary(f *testing.F) {
	seeds := []Poly{
		Simple(value.Int(1)),
		Uncertain("T1", Simple(value.Int(2)), Simple(value.Int(3))),
		Uncertain("T2", Simple(value.Str("x")),
			Uncertain("T1", Simple(value.Bool(true)), Simple(value.Nil{}))),
	}
	for _, p := range seeds {
		data, _ := p.MarshalBinary()
		f.Add(data)
	}
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, _, err := DecodeBinary(data)
		if err != nil {
			return
		}
		if !p.WellFormed() {
			t.Fatalf("decoder produced ill-formed polyvalue %v", p)
		}
		re, err := p.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var back Poly
		if err := back.UnmarshalBinary(re); err != nil {
			t.Fatalf("re-encode/decode failed: %v", err)
		}
		if !back.Equal(p) {
			t.Fatalf("round trip changed %v to %v", p, back)
		}
	})
}
