package polyvalue

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/condition"
	"repro/internal/value"
)

// opSequence describes a random history of uncertain updates applied to
// an item: each step either overwrites with a fresh simple value (the
// paper's Y parameter) or wraps the current value in a new layer of
// uncertainty.  It is the generator for the polyvalue invariant
// properties.
type opSequence struct {
	Seed int64
	N    int
}

func (opSequence) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(opSequence{Seed: r.Int63(), N: 1 + r.Intn(6)})
}

// run replays the sequence, returning the final polyvalue, the serial
// oracle (what the value would be under the chosen outcomes), and the
// outcome assignment.
func (s opSequence) run() (Poly, value.V, map[condition.TID]bool) {
	r := rand.New(rand.NewSource(s.Seed))
	outcomes := map[condition.TID]bool{}
	p := Simple(value.Int(0))
	oracle := value.V(value.Int(0))
	for i := 0; i < s.N; i++ {
		t := condition.TID(fmt.Sprintf("T%d", i))
		committed := r.Intn(2) == 0
		outcomes[t] = committed
		newVal := value.Int(r.Int63n(100))
		switch r.Intn(3) {
		case 0:
			// Certain overwrite: uncertainty is discarded (the paper's
			// "transactions overwrite polyvalues ... with simple values").
			p = Simple(newVal)
			oracle = newVal
		case 1:
			// In-doubt blind write (Y=1: new value independent of old).
			p = Uncertain(t, Simple(newVal), p)
			if committed {
				oracle = newVal
			}
		default:
			// In-doubt dependent write (Y=0): new value derived from old,
			// computed per alternative, exercising Compose flattening.
			alts := make([]Alternative, 0, p.NumPairs()+1)
			for _, pr := range p.Pairs() {
				old, _ := value.AsInt(pr.Val)
				alts = append(alts, Alternative{
					Cond: condition.Committed(t).And(pr.Cond),
					Val:  Simple(value.Int(old + 1)),
				})
			}
			alts = append(alts, Alternative{Cond: condition.Aborted(t), Val: p})
			p = Compose(alts)
			if committed {
				old, _ := value.AsInt(oracle)
				oracle = value.Int(old + 1)
			}
		}
	}
	return p, oracle, outcomes
}

var quickCfg = &quick.Config{MaxCount: 200}

// TestPropWellFormedUnderHistories: every polyvalue produced by a random
// update history satisfies the complete-and-disjoint invariant.
func TestPropWellFormedUnderHistories(t *testing.T) {
	f := func(s opSequence) bool {
		p, _, _ := s.run()
		return p.WellFormed()
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestPropSerialEquivalence: resolving every outcome yields exactly the
// value a serial execution produces — the paper's core correctness claim
// (§3.3: "when the outcome of every transaction is known, a single value
// pair will be left in each polyvalue, eliminating all uncertainty").
func TestPropSerialEquivalence(t *testing.T) {
	f := func(s opSequence) bool {
		p, oracle, outcomes := s.run()
		resolved := p.ResolveAll(outcomes)
		v, ok := resolved.IsCertain()
		return ok && v.Equal(oracle)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestPropValueUnderAgreesWithResolve: evaluating under an assignment and
// resolving with the same assignment must agree.
func TestPropValueUnderAgreesWithResolve(t *testing.T) {
	f := func(s opSequence) bool {
		p, _, outcomes := s.run()
		under, okU := p.ValueUnder(outcomes)
		resolved, okR := p.ResolveAll(outcomes).IsCertain()
		return okU && okR && under.Equal(resolved)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestPropResolveOrderIrrelevant: outcomes may arrive in any order (§3.3
// propagation is asynchronous); the final value must not depend on order.
func TestPropResolveOrderIrrelevant(t *testing.T) {
	f := func(s opSequence) bool {
		p, _, outcomes := s.run()
		tids := make([]condition.TID, 0, len(outcomes))
		for t := range outcomes {
			tids = append(tids, t)
		}
		forward := p
		for i := 0; i < len(tids); i++ {
			forward = forward.Resolve(tids[i], outcomes[tids[i]])
		}
		backward := p
		for i := len(tids) - 1; i >= 0; i-- {
			backward = backward.Resolve(tids[i], outcomes[tids[i]])
		}
		return forward.Equal(backward)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestPropEncodingStable: binary round trip is identity over random
// histories.
func TestPropEncodingStable(t *testing.T) {
	f := func(s opSequence) bool {
		p, _, _ := s.run()
		data, err := p.MarshalBinary()
		if err != nil {
			return false
		}
		var back Poly
		if err := back.UnmarshalBinary(data); err != nil {
			return false
		}
		return back.Equal(p)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestPropPartialResolveShrinksDependence: resolving any mentioned
// transaction removes it from the dependency set and never grows the
// pair count.
func TestPropPartialResolveShrinksDependence(t *testing.T) {
	f := func(s opSequence) bool {
		p, _, outcomes := s.run()
		for _, tid := range p.DependsOn() {
			r := p.Resolve(tid, outcomes[tid])
			if r.Mentions(tid) {
				return false
			}
			if r.NumPairs() > p.NumPairs() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}
