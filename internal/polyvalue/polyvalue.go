// Package polyvalue implements the paper's primary contribution: the
// polyvalue, "a bookkeeping tool for keeping more than one value for an
// item" (Montgomery, SOSP 1979, §3).
//
// A polyvalue is a set of ⟨v, c⟩ pairs where v is a simple value and c is
// a condition over transaction identifiers.  The conditions of a
// well-formed polyvalue are complete and disjoint: exactly one pair's
// condition holds under any assignment of outcomes to the transactions
// involved, and that pair's value is the item's true value.
//
// A simple (certain) value is represented as a polyvalue with a single
// pair ⟨v, true⟩, so one type flows through the whole system; IsCertain
// distinguishes the two.  Poly values are immutable.
package polyvalue

import (
	"bytes"
	"fmt"
	"sort"
	"strings"

	"repro/internal/condition"
	"repro/internal/value"
)

// Pair couples a simple value with the condition under which it is the
// item's true value.
type Pair struct {
	Val  value.V
	Cond condition.Cond
}

// String renders the pair in the paper's ⟨v,c⟩ notation.
func (p Pair) String() string {
	return fmt.Sprintf("<%s, %s>", p.Val, p.Cond)
}

// Poly is a polyvalue.  The zero value is not meaningful; construct with
// Simple, New, Uncertain, or Compose.  Invariants maintained by every
// constructor and operation:
//
//   - at least one pair;
//   - pair conditions are complete and disjoint;
//   - no pair's condition is false (simplification rule 3);
//   - no two pairs carry equal values (rule 2 merges them);
//   - pairs are in canonical order, so Equal is structural.
type Poly struct {
	pairs []Pair
}

// Simple wraps a certain value as the trivial polyvalue ⟨v, true⟩.
func Simple(v value.V) Poly {
	return Poly{pairs: []Pair{{Val: v, Cond: condition.True()}}}
}

// New builds a polyvalue from explicit pairs, simplifying and validating
// the completeness/disjointness invariant.
func New(pairs []Pair) (Poly, error) {
	p := simplify(pairs)
	if len(p.pairs) == 0 {
		return Poly{}, fmt.Errorf("polyvalue: no pair with satisfiable condition")
	}
	conds := make([]condition.Cond, len(p.pairs))
	for i, pr := range p.pairs {
		conds[i] = pr.Cond
	}
	if !condition.CompleteAndDisjoint(conds) {
		return Poly{}, fmt.Errorf("polyvalue: conditions not complete and disjoint: %s", p)
	}
	return p, nil
}

// MustNew is New that panics on invalid input; for tests and constants.
func MustNew(pairs []Pair) Poly {
	p, err := New(pairs)
	if err != nil {
		panic(err)
	}
	return p
}

// Uncertain constructs the polyvalue a site installs when transaction t's
// outcome is unknown (§3.1): the new value under "t committed", the
// previous value under "t aborted".  Both operands may themselves be
// polyvalues; nesting is flattened per simplification rule 1.
func Uncertain(t condition.TID, newV, oldV Poly) Poly {
	alts := []Alternative{
		{Cond: condition.Committed(t), Val: newV},
		{Cond: condition.Aborted(t), Val: oldV},
	}
	return Compose(alts)
}

// Alternative pairs a condition with the (possibly poly) value computed
// by one alternative transaction (§3.2).
type Alternative struct {
	Cond condition.Cond
	Val  Poly
}

// Compose builds the output polyvalue of a polytransaction from its
// alternatives.  Rule 1 flattening: each alternative's value may be a
// polyvalue ⟨v_i, c_i⟩; the result contains ⟨v_i, c ∧ c_i⟩.  Alternatives
// whose condition is false contribute nothing.  The caller guarantees the
// alternative conditions are complete and disjoint (the partitioning
// rules of §3.2 ensure this); Compose preserves that invariant.
func Compose(alts []Alternative) Poly {
	var flat []Pair
	for _, a := range alts {
		if a.Cond.IsFalse() {
			continue
		}
		for _, pr := range a.Val.pairs {
			flat = append(flat, Pair{Val: pr.Val, Cond: a.Cond.And(pr.Cond)})
		}
	}
	return simplify(flat)
}

// simplify applies the paper's three §3.1 simplification rules to raw
// pairs (rule 1, flattening, happens in Compose where nesting arises):
// rule 2 merges pairs with equal values by disjoining conditions; rule 3
// keeps SOP form and drops pairs with false conditions.  Pairs are then
// put in canonical order.
func simplify(pairs []Pair) Poly {
	var out []Pair
	for _, p := range pairs {
		if p.Cond.IsFalse() {
			continue // rule 3
		}
		merged := false
		for i := range out {
			if out[i].Val.Equal(p.Val) {
				out[i].Cond = out[i].Cond.Or(p.Cond) // rule 2
				merged = true
				break
			}
		}
		if !merged {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a := value.MarshalBinary(out[i].Val)
		b := value.MarshalBinary(out[j].Val)
		if c := bytes.Compare(a, b); c != 0 {
			return c < 0
		}
		return out[i].Cond.String() < out[j].Cond.String()
	})
	return Poly{pairs: out}
}

// Pairs returns a copy of the pairs in canonical order.
func (p Poly) Pairs() []Pair {
	out := make([]Pair, len(p.pairs))
	copy(out, p.pairs)
	return out
}

// NumPairs returns the number of alternatives the polyvalue tracks.
func (p Poly) NumPairs() int { return len(p.pairs) }

// IsCertain reports whether the polyvalue denotes a single known value,
// and returns it.  This is the paper's "simple value" case: exactly one
// pair, whose condition is then necessarily a tautology.
func (p Poly) IsCertain() (value.V, bool) {
	if len(p.pairs) == 1 {
		return p.pairs[0].Val, true
	}
	return nil, false
}

// Possible returns every value the item could turn out to hold, in
// canonical order.
func (p Poly) Possible() []value.V {
	out := make([]value.V, len(p.pairs))
	for i, pr := range p.pairs {
		out[i] = pr.Val
	}
	return out
}

// DependsOn returns the transaction identifiers whose outcomes the
// polyvalue depends on, sorted.  Certain values depend on nothing.
func (p Poly) DependsOn() []condition.TID {
	seen := map[condition.TID]bool{}
	var out []condition.TID
	for _, pr := range p.pairs {
		for _, t := range pr.Cond.Vars() {
			if !seen[t] {
				seen[t] = true
				out = append(out, t)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Mentions reports whether the polyvalue depends on transaction t.
func (p Poly) Mentions(t condition.TID) bool {
	for _, pr := range p.pairs {
		if pr.Cond.Mentions(t) {
			return true
		}
	}
	return false
}

// Resolve substitutes a now-known outcome for transaction t (§3.3) and
// returns the reduced polyvalue.  When every pending outcome has been
// resolved the result is a single certain value.
func (p Poly) Resolve(t condition.TID, committed bool) Poly {
	pairs := make([]Pair, len(p.pairs))
	for i, pr := range p.pairs {
		pairs[i] = Pair{Val: pr.Val, Cond: pr.Cond.Assign(t, committed)}
	}
	return simplify(pairs)
}

// ResolveAll applies Resolve for every recorded outcome.
func (p Poly) ResolveAll(outcomes map[condition.TID]bool) Poly {
	out := p
	for t, committed := range outcomes {
		out = out.Resolve(t, committed)
	}
	return out
}

// ValueUnder returns the value the polyvalue denotes under a complete
// outcome assignment.  ok is false if the assignment does not decide the
// polyvalue.  Well-formedness guarantees exactly one pair matches a
// deciding assignment.
func (p Poly) ValueUnder(asn map[condition.TID]bool) (value.V, bool) {
	for _, pr := range p.pairs {
		if v, ok := pr.Cond.Eval(asn); ok && v {
			return pr.Val, true
		}
	}
	return nil, false
}

// MinMax returns the smallest and largest possible numeric values.  The
// reservation application of §5 grants a booking when the largest
// possible count is still under capacity.  ok is false if any possible
// value is non-numeric.
func (p Poly) MinMax() (min, max float64, ok bool) {
	for i, pr := range p.pairs {
		f, isNum := value.AsFloat(pr.Val)
		if !isNum {
			return 0, 0, false
		}
		if i == 0 || f < min {
			min = f
		}
		if i == 0 || f > max {
			max = f
		}
	}
	return min, max, len(p.pairs) > 0
}

// Equal reports structural equality; canonical form makes this decide
// "same pairs with same canonical conditions".
func (p Poly) Equal(q Poly) bool {
	if len(p.pairs) != len(q.pairs) {
		return false
	}
	for i := range p.pairs {
		if !p.pairs[i].Val.Equal(q.pairs[i].Val) || !p.pairs[i].Cond.Equal(q.pairs[i].Cond) {
			return false
		}
	}
	return true
}

// String renders the polyvalue in the paper's notation,
// e.g. "{<101, T7>, <100, !T7>}"; certain values render bare.
func (p Poly) String() string {
	if v, ok := p.IsCertain(); ok {
		return v.String()
	}
	parts := make([]string, len(p.pairs))
	for i, pr := range p.pairs {
		parts[i] = pr.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// WellFormed re-checks the completeness/disjointness invariant; used by
// property tests and storage-recovery validation.
func (p Poly) WellFormed() bool {
	if len(p.pairs) == 0 {
		return false
	}
	conds := make([]condition.Cond, len(p.pairs))
	for i, pr := range p.pairs {
		if pr.Cond.IsFalse() {
			return false
		}
		conds[i] = pr.Cond
	}
	for i := range p.pairs {
		for j := i + 1; j < len(p.pairs); j++ {
			if p.pairs[i].Val.Equal(p.pairs[j].Val) {
				return false
			}
		}
	}
	return condition.CompleteAndDisjoint(conds)
}
